// Collusion: explores the attack the shared obfuscated path query must
// withstand. Eight users share one Q(S, T). One by one they defect and hand
// the server their true endpoints. We track how the remaining users' breach
// probability and anonymity-set sizes degrade, and how repeated queries by
// the same user (with fresh fakes each time) can be linked.
package main

import (
	"fmt"
	"log"

	"opaque"
	"opaque/internal/obfuscate"
	"opaque/internal/privacy"
)

func main() {
	log.SetFlags(0)

	netCfg := opaque.DefaultNetworkConfig()
	netCfg.Kind = opaque.TigerLikeNetwork
	netCfg.Nodes = 6000
	netCfg.Seed = 99
	graph, err := opaque.GenerateNetwork(netCfg)
	if err != nil {
		log.Fatalf("generating network: %v", err)
	}

	pairs, err := opaque.GenerateWorkload(graph, opaque.WorkloadConfig{
		Kind: "hotspot", Queries: 8, Hotspots: 2, HotspotSpread: 0.06, Seed: 100,
	})
	if err != nil {
		log.Fatalf("generating workload: %v", err)
	}
	batch := make([]obfuscate.Request, len(pairs))
	for i, p := range pairs {
		batch[i] = obfuscate.Request{
			User:   obfuscate.UserID(fmt.Sprintf("user-%d", i)),
			Source: p.Source,
			Dest:   p.Dest,
			FS:     4,
			FT:     4,
		}
	}

	// Force all eight users into one shared query so the collusion dynamics
	// are visible.
	cfg := opaque.DefaultConfig()
	cfg.Obfuscator.Obfuscation.Mode = opaque.Shared
	cfg.Obfuscator.Obfuscation.Cluster = obfuscate.ClusterRandom
	cfg.Obfuscator.Obfuscation.MaxClusterSize = len(batch)
	sys, err := opaque.NewSystem(graph, cfg)
	if err != nil {
		log.Fatalf("building system: %v", err)
	}
	plan, err := sys.Obfuscator.Obfuscator().Obfuscate(batch)
	if err != nil {
		log.Fatalf("obfuscating: %v", err)
	}
	if len(plan.Queries) != 1 {
		log.Fatalf("expected one shared query, got %d", len(plan.Queries))
	}
	q := plan.Queries[0]
	adv := opaque.NewUniformAdversary(graph)

	fmt.Printf("shared query: |S|=%d, |T|=%d, %d members, nominal breach probability %.4f\n\n",
		len(q.Sources), len(q.Dests), len(q.Members), q.BreachProbability())
	fmt.Println("colluders  victims  breach before  breach after  residual |S|  residual |T|")
	for _, rep := range adv.CollusionSweep(q) {
		if rep.Victims == 0 {
			continue
		}
		fmt.Printf("%9d  %7d  %13.4f  %12.4f  %12d  %12d\n",
			rep.Colluders, rep.Victims, rep.BreachBefore, rep.BreachAfter, rep.ResidualSources, rep.ResidualDests)
	}

	// Linkage: the same user asks the same query on three different days;
	// the obfuscator draws fresh fakes each time. Intersecting the three
	// obfuscated queries narrows the candidate endpoints — the reason the
	// obfuscator should keep per-user fake assignments sticky in a
	// longer-lived deployment.
	fmt.Println("\nrepeated-query linkage for user-0 (fresh fakes each day):")
	victim := batch[0]
	var observed []obfuscate.ObfuscatedQuery
	for day := 0; day < 3; day++ {
		obfCfg := cfg.Obfuscator.Obfuscation
		obfCfg.Mode = opaque.Independent
		obfCfg.Seed = uint64(1000 + day)
		obf, err := obfuscate.New(graph, obfCfg)
		if err != nil {
			log.Fatalf("building obfuscator: %v", err)
		}
		dayPlan, err := obf.Obfuscate([]obfuscate.Request{victim})
		if err != nil {
			log.Fatalf("obfuscating day %d: %v", day, err)
		}
		observed = append(observed, dayPlan.Queries[0])
		rep := privacy.AnalyzeLinkage(observed, victim)
		fmt.Printf("  after %d observation(s): %d persistent sources, %d persistent destinations (source pinned: %v, dest pinned: %v)\n",
			rep.Queries, len(rep.PersistentSources), len(rep.PersistentDests), rep.SourceIdentified, rep.DestIdentified)
	}
}
