// Loadtest: drives a networked OPAQUE deployment (server + obfuscator over
// loopback TCP) with many concurrent clients and reports throughput and
// latency percentiles, plus the privacy level every request enjoyed. It is
// the example to start from when sizing an OPAQUE installation.
//
//	go run ./examples/loadtest -clients 16 -requests 20 -mode shared
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"sort"
	"sync"
	"time"

	"opaque"
	"opaque/internal/obfsvc"
	"opaque/internal/obfuscate"
	"opaque/internal/protocol"
)

func main() {
	log.SetFlags(0)
	var (
		nClients  = flag.Int("clients", 8, "number of concurrent clients")
		nRequests = flag.Int("requests", 10, "path queries per client")
		nodes     = flag.Int("nodes", 8000, "road network size")
		mode      = flag.String("mode", "shared", "obfuscation mode: independent | shared")
		fs        = flag.Int("fs", 3, "source-set size fS")
		ft        = flag.Int("ft", 3, "destination-set size fT")
		window    = flag.Duration("window", 20*time.Millisecond, "obfuscator batching window")
	)
	flag.Parse()

	netCfg := opaque.DefaultNetworkConfig()
	netCfg.Kind = opaque.TigerLikeNetwork
	netCfg.Nodes = *nodes
	netCfg.Seed = 4242
	graph, err := opaque.GenerateNetwork(netCfg)
	if err != nil {
		log.Fatalf("generating network: %v", err)
	}

	// Directions search server.
	srv, err := opaque.NewServer(graph, opaque.DefaultServerConfig())
	if err != nil {
		log.Fatalf("building server: %v", err)
	}
	srvLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatalf("listen (server): %v", err)
	}
	go func() { _ = srv.ServeMux(srvLn, protocol.MuxServerConfig{}) }()

	// Trusted obfuscator, talking to the server over one multiplexed
	// connection shared by all its batches.
	exec, err := obfsvc.DialMuxExecutor(srvLn.Addr().String())
	if err != nil {
		log.Fatalf("dial server: %v", err)
	}
	defer exec.Close()
	obfCfg := opaque.DefaultObfuscatorConfig()
	obfCfg.BatchWindow = *window
	obfCfg.Obfuscation.Mode = obfuscate.Mode(*mode)
	svc, err := opaque.NewObfuscatorService(graph, exec, obfCfg)
	if err != nil {
		log.Fatalf("building obfuscator: %v", err)
	}
	obfLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatalf("listen (obfuscator): %v", err)
	}
	go func() { _ = svc.ServeMux(obfLn, protocol.MuxServerConfig{}) }()

	// Workload: one pair list per client.
	pairs, err := opaque.GenerateWorkload(graph, opaque.WorkloadConfig{
		Kind: "hotspot", Queries: *nClients * *nRequests, Hotspots: 4, HotspotSpread: 0.05, Seed: 4243,
	})
	if err != nil {
		log.Fatalf("generating workload: %v", err)
	}

	var (
		mu        sync.Mutex
		latencies []time.Duration
		failures  int
	)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < *nClients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl, err := opaque.DialClient(fmt.Sprintf("client-%02d", c), obfLn.Addr().String(), *fs, *ft)
			if err != nil {
				log.Printf("client %d: dial failed: %v", c, err)
				return
			}
			defer cl.Close()
			for r := 0; r < *nRequests; r++ {
				pr := pairs[c**nRequests+r]
				t0 := time.Now()
				res, err := cl.Query(pr.Source, pr.Dest)
				lat := time.Since(t0)
				mu.Lock()
				if err != nil || !res.Found {
					failures++
				} else {
					latencies = append(latencies, lat)
				}
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	pct := func(p float64) time.Duration {
		if len(latencies) == 0 {
			return 0
		}
		idx := int(p * float64(len(latencies)-1))
		return latencies[idx]
	}
	total := *nClients * *nRequests
	fmt.Printf("clients=%d requests/client=%d mode=%s fS=%d fT=%d (breach probability %.4f)\n",
		*nClients, *nRequests, *mode, *fs, *ft, opaque.BreachProbability(*fs, *ft))
	fmt.Printf("completed %d/%d queries in %v  (%.1f queries/s)\n",
		len(latencies), total, elapsed.Round(time.Millisecond), float64(len(latencies))/elapsed.Seconds())
	fmt.Printf("latency p50=%v p90=%v p99=%v max=%v\n",
		pct(0.50).Round(time.Microsecond), pct(0.90).Round(time.Microsecond), pct(0.99).Round(time.Microsecond), pct(1.0).Round(time.Microsecond))
	if failures > 0 {
		fmt.Printf("failures: %d\n", failures)
	}
	stats, queries := srv.TotalStats()
	fmt.Printf("server: %d obfuscated queries, %d nodes settled (%.0f per user query)\n",
		queries, stats.SettledNodes, float64(stats.SettledNodes)/float64(len(latencies)))

	// Component-level instrumentation: the same registries a production
	// operator would scrape.
	fmt.Println("\nserver metrics:")
	if _, err := srv.Metrics().Snapshot().WriteTo(log.Writer()); err != nil {
		log.Fatalf("writing server metrics: %v", err)
	}
	fmt.Println("obfuscator metrics:")
	if _, err := svc.Metrics().Snapshot().WriteTo(log.Writer()); err != nil {
		log.Fatalf("writing obfuscator metrics: %v", err)
	}
}
