// Quickstart: build a synthetic road network, wire up an in-process OPAQUE
// system (client → trusted obfuscator → directions search server), submit a
// path query with privacy protection, and verify the returned path is the
// exact shortest path even though the server never saw the true (s, t) pair.
package main

import (
	"fmt"
	"log"

	"opaque"
)

func main() {
	log.SetFlags(0)

	// 1. A road network. Real deployments load one (opaque.ReadNetwork);
	//    here we generate a 10k-node grid city.
	netCfg := opaque.DefaultNetworkConfig()
	netCfg.Nodes = 10000
	graph, err := opaque.GenerateNetwork(netCfg)
	if err != nil {
		log.Fatalf("generating network: %v", err)
	}
	fmt.Printf("road network: %d nodes, %d road segments\n", graph.NumNodes(), graph.NumArcs())

	// 2. An OPAQUE system: directions search server + trusted obfuscator.
	sys, err := opaque.NewSystem(graph, opaque.DefaultConfig())
	if err != nil {
		log.Fatalf("building system: %v", err)
	}

	// 3. A client with protection settings fS=3, fT=4: the server will see 3
	//    candidate sources and 4 candidate destinations, so the probability
	//    it guesses the true query is 1/12.
	alice, err := sys.NewClient("alice")
	if err != nil {
		log.Fatalf("creating client: %v", err)
	}

	source := graph.NearestNode(10000, 10000) // Alice's home
	dest := graph.NearestNode(80000, 65000)   // the clinic across town
	res, err := alice.QueryWithProtection(source, dest, 3, 4)
	if err != nil {
		log.Fatalf("query failed: %v", err)
	}
	if !res.Found {
		log.Fatalf("no path found from %d to %d", source, dest)
	}
	fmt.Printf("returned path: %d edges, cost %.0f, breach probability %.4f\n",
		res.Path.Len(), res.Path.Cost, opaque.BreachProbability(3, 4))

	// 4. Verify against ground truth: the path OPAQUE returned is the exact
	//    shortest path, even though the server never saw Q(source, dest).
	truth, err := opaque.ShortestPath(graph, source, dest)
	if err != nil {
		log.Fatalf("ground truth search failed: %v", err)
	}
	fmt.Printf("ground-truth shortest path cost: %.0f (match: %v)\n", truth.Cost, truth.Cost == res.Path.Cost)

	// 5. What did the server actually learn? Its query log contains only the
	//    obfuscated endpoint sets.
	for _, entry := range sys.Server.QueryLog() {
		fmt.Printf("server saw query %d: |S|=%d candidate sources, |T|=%d candidate destinations\n",
			entry.QueryID, len(entry.Sources), len(entry.Dests))
	}
}
