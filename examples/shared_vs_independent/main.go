// Shared vs independent: reproduces, at example scale, the trade-off of
// Section III-C. Sixteen users submit path queries at the same time with
// fS = fT = 4. We obfuscate the batch twice — once into independent
// obfuscated path queries and once into shared ones — evaluate both against
// the same directions search server, and compare the server work, the number
// of obfuscated queries sent, and the breach probability per user.
package main

import (
	"fmt"
	"log"

	"opaque"
	"opaque/internal/obfuscate"
	"opaque/internal/protocol"
)

func main() {
	log.SetFlags(0)

	netCfg := opaque.DefaultNetworkConfig()
	netCfg.Kind = opaque.TigerLikeNetwork
	netCfg.Nodes = 8000
	netCfg.Seed = 33
	graph, err := opaque.GenerateNetwork(netCfg)
	if err != nil {
		log.Fatalf("generating network: %v", err)
	}

	// Sixteen concurrent users drawn from a hotspot workload (everyone is
	// heading to a handful of popular destinations).
	pairs, err := opaque.GenerateWorkload(graph, opaque.WorkloadConfig{
		Kind: "hotspot", Queries: 16, Hotspots: 3, HotspotSpread: 0.05, Seed: 34,
	})
	if err != nil {
		log.Fatalf("generating workload: %v", err)
	}
	batch := make([]obfuscate.Request, len(pairs))
	for i, p := range pairs {
		batch[i] = obfuscate.Request{
			User:   obfuscate.UserID(fmt.Sprintf("user-%02d", i)),
			Source: p.Source,
			Dest:   p.Dest,
			FS:     4,
			FT:     4,
		}
	}

	for _, mode := range []obfuscate.Mode{obfuscate.Independent, obfuscate.Shared} {
		cfg := opaque.DefaultConfig()
		cfg.Obfuscator.Obfuscation.Mode = mode
		sys, err := opaque.NewSystem(graph, cfg)
		if err != nil {
			log.Fatalf("building system: %v", err)
		}

		plan, err := sys.Obfuscator.Obfuscator().Obfuscate(batch)
		if err != nil {
			log.Fatalf("obfuscating: %v", err)
		}
		for _, q := range plan.Queries {
			if _, err := sys.Server.Evaluate(protocol.ServerQuery{Sources: q.Sources, Dests: q.Dests}); err != nil {
				log.Fatalf("evaluating: %v", err)
			}
		}
		stats, queries := sys.Server.TotalStats()
		adv := opaque.NewUniformAdversary(graph)
		totalPairs := plan.TotalCandidatePairs()
		var meanBreach float64
		for i, r := range batch {
			q, _ := plan.QueryFor(i)
			meanBreach += adv.BreachProbability(q, r)
		}
		meanBreach /= float64(len(batch))

		fmt.Printf("%-12s: %2d obfuscated queries, %4d candidate pairs, %7d settled nodes at the server, mean breach probability %.4f\n",
			mode, queries, totalPairs, stats.SettledNodes, meanBreach)
	}

	fmt.Println("\nshared mode sends fewer queries and makes the server settle fewer nodes for the same (or better) protection,")
	fmt.Println("because each user's true endpoints double as decoys for the others — the core idea of Section III-C.")
}
