// Clinic: the paper's motivating scenario (Section II). Alice asks for
// directions from her home to an infertility clinic; Bob asks for directions
// to a different destination at the same time. With a shared obfuscated path
// query, both true queries are hidden in a single Q(S, T): each user's
// endpoints double as the other's decoys, and a semi-trusted server that
// cross-references its query log with public information cannot tell who is
// going where.
package main

import (
	"fmt"
	"log"

	"opaque"
	"opaque/internal/obfuscate"
	"opaque/internal/privacy"
)

func main() {
	log.SetFlags(0)

	// A clustered "county" map: several towns connected by highways, with
	// popular locations (clinics, malls) carrying higher association weight.
	netCfg := opaque.DefaultNetworkConfig()
	netCfg.Kind = opaque.TigerLikeNetwork
	netCfg.Nodes = 8000
	netCfg.Seed = 2009
	graph, err := opaque.GenerateNetwork(netCfg)
	if err != nil {
		log.Fatalf("generating network: %v", err)
	}

	cfg := opaque.DefaultConfig()
	cfg.Obfuscator.Obfuscation.Mode = opaque.Shared
	// Alice's clinic and Bob's stadium are in different towns; widen the
	// clustering span so their queries may share one obfuscated query.
	cfg.Obfuscator.Obfuscation.MaxClusterSpan = 0.6
	sys, err := opaque.NewSystem(graph, cfg)
	if err != nil {
		log.Fatalf("building system: %v", err)
	}

	// Alice: home in the north-west town, clinic in the south-east town.
	aliceHome := graph.NearestNode(20000, 75000)
	clinic := graph.NearestNode(78000, 22000)
	// Bob: home in the east, stadium in the centre.
	bobHome := graph.NearestNode(85000, 70000)
	stadium := graph.NearestNode(50000, 50000)

	// Both requests arrive at the obfuscator within the same batching
	// window, so it merges them into one shared obfuscated path query.
	batch := []obfuscate.Request{
		{User: "alice", Source: aliceHome, Dest: clinic, FS: 3, FT: 3},
		{User: "bob", Source: bobHome, Dest: stadium, FS: 2, FT: 3},
	}
	results, err := sys.ProcessBatch(batch)
	if err != nil {
		log.Fatalf("processing batch: %v", err)
	}
	for i, r := range results {
		if r.Err != nil {
			log.Fatalf("request %d failed: %v", i, r.Err)
		}
		truth, err := opaque.ShortestPath(graph, batch[i].Source, batch[i].Dest)
		if err != nil {
			log.Fatalf("ground truth: %v", err)
		}
		fmt.Printf("%-5s got a %d-edge path of cost %.0f (exact shortest path: %v)\n",
			batch[i].User, r.Path.Len(), r.Path.Cost, r.Path.Cost == truth.Cost)
	}

	// What the server saw and what it can infer.
	fmt.Println()
	for _, entry := range sys.Server.QueryLog() {
		fmt.Printf("server log: query %d with %d candidate sources x %d candidate destinations = %d possible trips\n",
			entry.QueryID, len(entry.Sources), len(entry.Dests), len(entry.Sources)*len(entry.Dests))
	}

	// Quantify the exposure with the adversary model: even an adversary that
	// weighs endpoints by popularity assigns Alice's true trip only a small
	// probability.
	obf := sys.Obfuscator.Obfuscator()
	plan, err := obf.Obfuscate(batch)
	if err != nil {
		log.Fatalf("obfuscating for analysis: %v", err)
	}
	uniform := opaque.NewUniformAdversary(graph)
	weighted := opaque.NewWeightedAdversary(graph)
	for i, req := range batch {
		q, _ := plan.QueryFor(i)
		fmt.Printf("%-5s breach probability: %.4f (uniform adversary), %.4f (popularity-weighted adversary)\n",
			req.User, uniform.BreachProbability(q, req), weighted.BreachProbability(q, req))
	}

	// For contrast: what a collusion between Bob and the server would reveal
	// about Alice.
	if len(plan.Queries) == 1 {
		sc := privacy.CollusionScenario{Query: plan.Queries[0], Colluders: []obfuscate.Request{batch[1]}}
		rep := uniform.EvaluateCollusion(sc)
		fmt.Printf("\nif bob colluded with the server, alice's breach probability would rise from %.4f to %.4f — still far from certainty\n",
			rep.BreachBefore, rep.BreachAfter)
	}
}
