// Networked: runs the three OPAQUE roles as separate network services inside
// one process — a directions search server and a trusted obfuscator listening
// on loopback TCP ports, and two clients connecting to the obfuscator — to
// demonstrate the deployment the cmd/ binaries provide, end to end.
package main

import (
	"fmt"
	"log"
	"net"

	"opaque"
	"opaque/internal/obfsvc"
	"opaque/internal/protocol"
)

func main() {
	log.SetFlags(0)

	netCfg := opaque.DefaultNetworkConfig()
	netCfg.Nodes = 5000
	netCfg.Seed = 7
	graph, err := opaque.GenerateNetwork(netCfg)
	if err != nil {
		log.Fatalf("generating network: %v", err)
	}

	// Directions search server on a loopback port.
	srv, err := opaque.NewServer(graph, opaque.DefaultServerConfig())
	if err != nil {
		log.Fatalf("building server: %v", err)
	}
	srvLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatalf("listening (server): %v", err)
	}
	go func() { _ = srv.ServeMux(srvLn, protocol.MuxServerConfig{}) }()
	fmt.Printf("directions search server listening on %s\n", srvLn.Addr())

	// Trusted obfuscator on another loopback port, connected to the server
	// over one persistent multiplexed connection.
	exec, err := obfsvc.DialMuxExecutor(srvLn.Addr().String())
	if err != nil {
		log.Fatalf("obfuscator connecting to server: %v", err)
	}
	defer exec.Close()
	obfCfg := opaque.DefaultObfuscatorConfig()
	obfCfg.BatchWindow = 0 // answer each request immediately in this demo
	svc, err := opaque.NewObfuscatorService(graph, exec, obfCfg)
	if err != nil {
		log.Fatalf("building obfuscator: %v", err)
	}
	obfLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatalf("listening (obfuscator): %v", err)
	}
	go func() { _ = svc.ServeMux(obfLn, protocol.MuxServerConfig{}) }()
	fmt.Printf("trusted obfuscator listening on %s\n", obfLn.Addr())

	// Two clients, each on its own TCP connection to the obfuscator.
	for i, who := range []string{"alice", "bob"} {
		c, err := opaque.DialClient(who, obfLn.Addr().String(), 2, 3)
		if err != nil {
			log.Fatalf("%s connecting: %v", who, err)
		}
		src := graph.NearestNode(float64(10000+20000*i), 20000)
		dst := graph.NearestNode(80000, float64(70000-30000*i))
		res, err := c.Query(src, dst)
		if err != nil {
			log.Fatalf("%s query failed: %v", who, err)
		}
		truth, err := opaque.ShortestPath(graph, src, dst)
		if err != nil {
			log.Fatalf("ground truth: %v", err)
		}
		fmt.Printf("%-5s received a path of cost %.0f over TCP (exact: %v, breach probability %.4f)\n",
			who, res.Path.Cost, res.Found && res.Path.Cost == truth.Cost, opaque.BreachProbability(2, 3))
		if err := c.Close(); err != nil {
			log.Fatalf("%s closing: %v", who, err)
		}
	}

	// The server-side view.
	stats, queries := srv.TotalStats()
	fmt.Printf("server processed %d obfuscated queries, settling %d nodes in total; it never saw a bare (s, t) pair\n",
		queries, stats.SettledNodes)
}
