module opaque

go 1.24
