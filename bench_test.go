// Benchmark harness for the OPAQUE reproduction.
//
// One benchmark per experiment of DESIGN.md §5 / EXPERIMENTS.md (E1–E15): each
// runs the corresponding experiment at small scale and reports the table it
// produces (with -v, via b.Log), so `go test -bench=.` regenerates every
// figure of the reproduction. Micro-benchmarks of the underlying primitives
// (Dijkstra, SSMD, the obfuscator, the end-to-end pipeline) follow, so the
// per-operation costs behind the experiment tables are visible too.
//
// Run everything:
//
//	go test -bench=. -benchmem
//
// Run a single experiment table at full (paper) scale:
//
//	go run ./cmd/opaque-bench -exp E5 -scale full
package opaque

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"testing"

	"opaque/internal/ch"
	"opaque/internal/experiments"
	"opaque/internal/gen"
	"opaque/internal/obfuscate"
	"opaque/internal/protocol"
	"opaque/internal/search"
	"opaque/internal/server"
	"opaque/internal/storage"
)

// benchmarkExperiment runs one experiment per iteration and logs its tables.
func benchmarkExperiment(b *testing.B, id string) {
	b.Helper()
	runner, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tables, err := runner.Run(experiments.Small)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, tbl := range tables {
				b.Log("\n" + tbl.String())
			}
		}
	}
}

// Experiment benchmarks (one per table of EXPERIMENTS.md).

func BenchmarkE1Baselines(b *testing.B)             { benchmarkExperiment(b, "E1") }
func BenchmarkE2Breach(b *testing.B)                { benchmarkExperiment(b, "E2") }
func BenchmarkE3CostModel(b *testing.B)             { benchmarkExperiment(b, "E3") }
func BenchmarkE4SSMD(b *testing.B)                  { benchmarkExperiment(b, "E4") }
func BenchmarkE5SharedVsIndependent(b *testing.B)   { benchmarkExperiment(b, "E5") }
func BenchmarkE6ObfuscatorOverhead(b *testing.B)    { benchmarkExperiment(b, "E6") }
func BenchmarkE7Scaling(b *testing.B)               { benchmarkExperiment(b, "E7") }
func BenchmarkE8Strategies(b *testing.B)            { benchmarkExperiment(b, "E8") }
func BenchmarkE9Collusion(b *testing.B)             { benchmarkExperiment(b, "E9") }
func BenchmarkE10Linkage(b *testing.B)              { benchmarkExperiment(b, "E10") }
func BenchmarkE11ServerLog(b *testing.B)            { benchmarkExperiment(b, "E11") }
func BenchmarkE12BatchThroughput(b *testing.B)      { benchmarkExperiment(b, "E12") }
func BenchmarkE13WorkspaceHotPath(b *testing.B)     { benchmarkExperiment(b, "E13") }
func BenchmarkE14ContractionHierarchy(b *testing.B) { benchmarkExperiment(b, "E14") }
func BenchmarkE15ManyToMany(b *testing.B)           { benchmarkExperiment(b, "E15") }
func BenchmarkE16LiveUpdates(b *testing.B)          { benchmarkExperiment(b, "E16") }

// Micro-benchmarks of the primitives behind the experiments.

// benchGraph returns a mid-sized grid and a workload, shared by the
// micro-benchmarks; sizes are chosen so a single iteration stays in the
// low-millisecond range.
func benchGraph(b *testing.B, nodes int) (*Graph, []QueryPair) {
	b.Helper()
	cfg := DefaultNetworkConfig()
	cfg.Nodes = nodes
	cfg.Seed = 201
	g, err := GenerateNetwork(cfg)
	if err != nil {
		b.Fatal(err)
	}
	wl, err := GenerateWorkload(g, WorkloadConfig{Kind: "uniform", Queries: 64, Seed: 202})
	if err != nil {
		b.Fatal(err)
	}
	return g, wl
}

func BenchmarkDijkstraPointToPoint(b *testing.B) {
	g, wl := benchGraph(b, 10000)
	acc := storage.NewMemoryGraph(g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pr := wl[i%len(wl)]
		if _, _, err := search.Dijkstra(acc, pr.Source, pr.Dest); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAStarPointToPoint(b *testing.B) {
	g, wl := benchGraph(b, 10000)
	acc := storage.NewMemoryGraph(g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pr := wl[i%len(wl)]
		if _, _, err := search.AStar(acc, pr.Source, pr.Dest); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSSMDByDestinations shows the Section III-B effect directly: cost
// of one SSMD search as |T| grows with destinations clustered near the true
// one.
func BenchmarkSSMDByDestinations(b *testing.B) {
	g, wl := benchGraph(b, 10000)
	acc := storage.NewMemoryGraph(g)
	for _, k := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("T=%d", k), func(b *testing.B) {
			// Pre-build destination sets.
			dests := make([][]NodeID, len(wl))
			for i, pr := range wl {
				n := g.Node(pr.Dest)
				near := g.NodesWithin(n.X, n.Y, 8000)
				set := []NodeID{pr.Dest}
				for _, id := range near {
					if id != pr.Dest && len(set) < k {
						set = append(set, id)
					}
				}
				dests[i] = set
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pr := wl[i%len(wl)]
				if _, err := search.SSMD(acc, pr.Source, dests[i%len(wl)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkObfuscatedQueryEvaluation compares the two server strategies on
// the same obfuscated queries (|S|=|T|=4).
func BenchmarkObfuscatedQueryEvaluation(b *testing.B) {
	g, wl := benchGraph(b, 10000)
	minX, minY, maxX, maxY := g.Bounds()
	extent := math.Max(maxX-minX, maxY-minY)
	obf := obfuscate.MustNew(g, obfuscate.Config{
		Mode:     obfuscate.Independent,
		Cluster:  obfuscate.ClusterNone,
		Selector: obfuscate.MustNewRingBandSelector(0.02*extent, 0.15*extent, 203),
		Seed:     204,
	})
	queries := make([]obfuscate.ObfuscatedQuery, len(wl))
	for i, pr := range wl {
		plan, err := obf.Obfuscate([]obfuscate.Request{{User: "bench", Source: pr.Source, Dest: pr.Dest, FS: 4, FT: 4}})
		if err != nil {
			b.Fatal(err)
		}
		queries[i] = plan.Queries[0]
	}
	acc := storage.NewMemoryGraph(g)
	for _, strat := range []search.Strategy{search.StrategySSMD, search.StrategyPairwise} {
		b.Run(string(strat), func(b *testing.B) {
			proc := search.NewProcessor(acc, search.WithStrategy(strat))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q := queries[i%len(queries)]
				if _, err := proc.Evaluate(q.Sources, q.Dests); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkObfuscation measures the obfuscator-side cost of turning a batch
// of 32 requests into obfuscated queries, for both variants.
func BenchmarkObfuscation(b *testing.B) {
	g, wl := benchGraph(b, 10000)
	minX, minY, maxX, maxY := g.Bounds()
	extent := math.Max(maxX-minX, maxY-minY)
	batch := make([]obfuscate.Request, 32)
	for i := 0; i < 32; i++ {
		pr := wl[i%len(wl)]
		batch[i] = obfuscate.Request{User: obfuscate.UserID(fmt.Sprintf("u%d", i)), Source: pr.Source, Dest: pr.Dest, FS: 4, FT: 4}
	}
	for _, mode := range []obfuscate.Mode{obfuscate.Independent, obfuscate.Shared} {
		b.Run(string(mode), func(b *testing.B) {
			obf := obfuscate.MustNew(g, obfuscate.Config{
				Mode:           mode,
				Cluster:        obfuscate.ClusterSpatialGreedy,
				Selector:       obfuscate.MustNewRingBandSelector(0.02*extent, 0.15*extent, 205),
				MaxClusterSize: 8,
				MaxClusterSpan: 0.3,
				Seed:           206,
			})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := obf.Obfuscate(batch); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEndToEndPipeline measures a full client→obfuscator→server→client
// round trip for a batch of 16 users through the in-process system.
func BenchmarkEndToEndPipeline(b *testing.B) {
	g, wl := benchGraph(b, 10000)
	sys, err := NewSystem(g, DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	batch := make([]Request, 16)
	for i := 0; i < 16; i++ {
		pr := wl[i%len(wl)]
		batch[i] = Request{User: obfuscate.UserID(fmt.Sprintf("u%d", i)), Source: pr.Source, Dest: pr.Dest, FS: 3, FT: 3}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results, err := sys.ProcessBatch(batch)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range results {
			if r.Err != nil {
				b.Fatal(r.Err)
			}
		}
	}
}

// BenchmarkBatchedThroughput is the headline batch-engine measurement: one
// shared-mode batching window (overlapping sources from sticky shared
// obfuscation) evaluated query-by-query with Evaluate versus as one
// EvaluateBatch call on a server with the worker pool and SSMD tree cache
// enabled. Each iteration processes the whole window; the queries/sec metric
// makes the throughput ratio directly readable. The batched variant should
// exceed sequential by well over 1.5x on any multi-core machine (parallelism
// across the window plus tree reuse across iterations).
func BenchmarkBatchedThroughput(b *testing.B) {
	g, wl := benchGraph(b, 10000)
	minX, minY, maxX, maxY := g.Bounds()
	extent := math.Max(maxX-minX, maxY-minY)
	obf := obfuscate.MustNew(g, obfuscate.Config{
		Mode:           obfuscate.Shared,
		Cluster:        obfuscate.ClusterSpatialGreedy,
		Selector:       obfuscate.NewStickySelector(obfuscate.MustNewRingBandSelector(0.02*extent, 0.15*extent, 207), 0),
		MaxClusterSize: 8,
		MaxClusterSpan: 0.3,
		Seed:           208,
	})
	batch := make([]obfuscate.Request, 32)
	for i := range batch {
		pr := wl[i%len(wl)]
		batch[i] = obfuscate.Request{User: obfuscate.UserID(fmt.Sprintf("u%d", i)), Source: pr.Source, Dest: pr.Dest, FS: 4, FT: 4}
	}
	plan, err := obf.Obfuscate(batch)
	if err != nil {
		b.Fatal(err)
	}
	window := make([]protocol.ServerQuery, len(plan.Queries))
	for i, q := range plan.Queries {
		window[i] = protocol.ServerQuery{Sources: q.Sources, Dests: q.Dests}
	}

	newServer := func(batched bool) *server.Server {
		cfg := server.DefaultConfig()
		cfg.KeepLog = false
		if batched {
			cfg.BatchWorkers = runtime.GOMAXPROCS(0)
			cfg.TreeCache = 256
			cfg.MaxConcurrentSearches = 2 * runtime.GOMAXPROCS(0)
		}
		return server.MustNew(g, cfg)
	}
	reportQPS := func(b *testing.B) {
		if s := b.Elapsed().Seconds(); s > 0 {
			b.ReportMetric(float64(b.N*len(window))/s, "queries/sec")
		}
	}

	b.Run("sequential", func(b *testing.B) {
		srv := newServer(false)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, q := range window {
				if _, err := srv.Evaluate(q); err != nil {
					b.Fatal(err)
				}
			}
		}
		reportQPS(b)
	})
	b.Run("batched", func(b *testing.B) {
		srv := newServer(true)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, r := range srv.EvaluateBatch(window) {
				if r.Err != nil {
					b.Fatal(r.Err)
				}
			}
		}
		reportQPS(b)
		b.Logf("tree cache hit ratio: %.3f", srv.Metrics().Gauge("tree_cache_hit_ratio"))
	})
}

// BenchmarkWorkspaceReuse is the headline hot-path measurement of the
// epoch-stamped search workspaces: local point queries on a large graph,
// where the fresh-slice implementation's O(n) per-query setup (two Inf-filled
// label arrays plus a map-indexed heap) dominates the O(touched-nodes)
// search itself.
//
//   - fresh-slices runs search.ReferenceDijkstra, the pre-workspace code
//     preserved in internal/search/reference.go;
//   - pooled-path runs the workspace-backed search.Dijkstra (allocations
//     left are the result path and SSMD bookkeeping only);
//   - pooled-distance runs search.DijkstraDistance, which terminates on
//     settling the destination, skips path reconstruction and reports
//     0 allocs/op in steady state.
//
// Expectation: pooled-path beats fresh-slices by well over 2x on this graph
// size, and pooled-distance shows 0 allocs/op.
func BenchmarkWorkspaceReuse(b *testing.B) {
	cfg := DefaultNetworkConfig()
	cfg.Nodes = 50000
	cfg.Seed = 209
	g, err := GenerateNetwork(cfg)
	if err != nil {
		b.Fatal(err)
	}
	minX, minY, maxX, maxY := g.Bounds()
	extent := math.Max(maxX-minX, maxY-minY)
	wl, err := GenerateWorkload(g, WorkloadConfig{
		Kind:        "distanceband",
		Queries:     128,
		MinDistance: 0.01 * extent,
		MaxDistance: 0.05 * extent,
		Seed:        210,
	})
	if err != nil {
		b.Fatal(err)
	}
	acc := storage.NewMemoryGraph(g)

	b.Run("fresh-slices", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			pr := wl[i%len(wl)]
			if _, _, err := search.ReferenceDijkstra(acc, pr.Source, pr.Dest); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("pooled-path", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			pr := wl[i%len(wl)]
			if _, _, err := search.Dijkstra(acc, pr.Source, pr.Dest); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("pooled-distance", func(b *testing.B) {
		// Hold one workspace for the whole loop, the way a server worker
		// does: the relax loop must report 0 allocs/op.
		w := search.AcquireWorkspace(acc.NumNodes())
		defer w.Release()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			pr := wl[i%len(wl)]
			if _, _, err := w.DijkstraDistance(acc, pr.Source, pr.Dest); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// chBench caches the 50k-node benchmark graph, its uniform workload and the
// contraction-hierarchy overlay across benchmark invocations: the one-off
// contraction pass (seconds) must not be charged to — or repeated for — the
// per-query measurements.
var chBench struct {
	once    sync.Once
	err     error
	graph   *Graph
	wl      []QueryPair
	overlay *ch.Overlay
}

func chBenchSetup(b *testing.B) (*Graph, []QueryPair, *ch.Overlay) {
	b.Helper()
	chBench.once.Do(func() {
		// Tiger-like topology, the repository's realistic road-network
		// generator: hierarchies thrive on the highway structure real maps
		// have (uniform grids, with their massive tie plateaus, understate
		// both engines' real-world gap).
		cfg := DefaultNetworkConfig()
		cfg.Kind = gen.TigerLike
		cfg.Nodes = 50000
		cfg.Seed = 209
		g, err := GenerateNetwork(cfg)
		if err != nil {
			chBench.err = err
			return
		}
		wl, err := GenerateWorkload(g, WorkloadConfig{Kind: "uniform", Queries: 128, Seed: 211})
		if err != nil {
			chBench.err = err
			return
		}
		overlay, err := ch.Build(g)
		if err != nil {
			chBench.err = err
			return
		}
		chBench.graph, chBench.wl, chBench.overlay = g, wl, overlay
	})
	if chBench.err != nil {
		b.Fatal(chBench.err)
	}
	return chBench.graph, chBench.wl, chBench.overlay
}

// BenchmarkCHQuery is the headline contraction-hierarchy measurement: point
// queries on the 50k-node benchmark graph with uniform (map-scale) pairs,
// the regime the overlay is built for.
//
//   - dijkstra-distance runs the workspace Dijkstra the server used for
//     point queries before the overlay existed (0 allocs/op, but its search
//     ball covers a large share of the map on long trips);
//   - ch-distance runs the bidirectional upward search on the overlay,
//     also at 0 allocs/op in steady state;
//   - ch-path additionally unpacks every shortcut into the full node path.
//
// Expectation (the PR's acceptance bar): ch-distance exceeds
// dijkstra-distance throughput by well over 5x at this graph size, with
// settled nodes per query dropping from thousands to hundreds.
func BenchmarkCHQuery(b *testing.B) {
	g, wl, overlay := chBenchSetup(b)
	acc := storage.NewMemoryGraph(g)

	b.Run("dijkstra-distance", func(b *testing.B) {
		w := search.AcquireWorkspace(acc.NumNodes())
		defer w.Release()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			pr := wl[i%len(wl)]
			if _, _, err := w.DijkstraDistance(acc, pr.Source, pr.Dest); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("ch-distance", func(b *testing.B) {
		eng := ch.NewEngine(overlay, nil)
		if _, _, err := eng.Distance(wl[0].Source, wl[0].Dest); err != nil {
			b.Fatal(err) // warm the engine's workspace pool
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			pr := wl[i%len(wl)]
			if _, _, err := eng.Distance(pr.Source, pr.Dest); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("ch-path", func(b *testing.B) {
		eng := ch.NewEngine(overlay, nil)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			pr := wl[i%len(wl)]
			if _, _, err := eng.Path(pr.Source, pr.Dest); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkMTMTable is the headline many-to-many measurement: a wide 64×64
// candidate table on the 50k-node benchmark graph, evaluated the four ways
// the server can.
//
//   - hybrid-pr3 is what the pre-MTM hybrid strategy routed a 64×64 table
//     to: the SSMD processor, one spanning tree per source;
//   - pairwise-ch runs all 4096 pairs through the bidirectional overlay
//     engine — the other pre-MTM option;
//   - mtm-table runs the many-to-many bucket engine with per-cell path
//     recording (what the server's ch-mtm strategy and wide hybrid queries
//     use);
//   - mtm-distance is the distance-only fast path on a reused output
//     buffer.
//
// Expectation (the PR's acceptance bar): mtm-table beats hybrid-pr3 — and
// pairwise-ch — by well over 3x, and mtm-distance reports 0 allocs/op in
// steady state.
func BenchmarkMTMTable(b *testing.B) {
	g, wl, overlay := chBenchSetup(b)
	acc := storage.NewMemoryGraph(g)
	const k = 64
	sources := make([]NodeID, k)
	targets := make([]NodeID, k)
	for i := 0; i < k; i++ {
		sources[i] = wl[i%len(wl)].Source
		targets[i] = wl[(i+37)%len(wl)].Dest
	}

	b.Run("hybrid-pr3/64x64", func(b *testing.B) {
		proc := search.NewProcessor(acc, search.WithStrategy(search.StrategySSMD))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := proc.Evaluate(sources, targets); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("pairwise-ch/64x64", func(b *testing.B) {
		proc := search.NewProcessor(acc,
			search.WithStrategy(search.StrategyPointEngine),
			search.WithPointEngine(ch.NewEngine(overlay, nil)))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := proc.Evaluate(sources, targets); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("mtm-table/64x64", func(b *testing.B) {
		m := ch.NewMTM(overlay, nil)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := m.Table(sources, targets); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("mtm-distance/64x64", func(b *testing.B) {
		m := ch.NewMTM(overlay, nil)
		var dst []float64
		var err error
		if dst, _, err = m.DistancesInto(dst, sources, targets); err != nil {
			b.Fatal(err) // warm the state pool so the loop is steady state
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if dst, _, err = m.DistancesInto(dst, sources, targets); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkNetworkGeneration measures the synthetic map generators used by
// every experiment.
func BenchmarkNetworkGeneration(b *testing.B) {
	for _, kind := range []gen.NetworkKind{gen.Grid, gen.TigerLike} {
		b.Run(string(kind), func(b *testing.B) {
			cfg := DefaultNetworkConfig()
			cfg.Kind = kind
			cfg.Nodes = 10000
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cfg.Seed = uint64(i + 1)
				if _, err := GenerateNetwork(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
