// Package opaque is the public façade of the OPAQUE path-privacy library, a
// from-scratch Go reproduction of "OPAQUE: Protecting Path Privacy in
// Directions Search" (Lee, Lee, Leong, Zheng — ICDE 2009).
//
// OPAQUE protects the privacy of directions searches: instead of sending the
// true path query Q(s, t) to a semi-trusted directions search server, a
// trusted obfuscator mixes the true source and destination with fake ones and
// sends an obfuscated path query Q(S, T) with s ∈ S, t ∈ T. The server
// evaluates all |S|·|T| candidate pairs efficiently with single-source
// multi-destination search, the obfuscator filters out the user's true path
// and discards the request.
//
// The façade re-exports the types a downstream application needs:
//
//   - build or load a road network (NewGraph, GenerateNetwork, ReadNetwork),
//   - assemble an in-process OPAQUE deployment (NewSystem) or the individual
//     roles (NewServer, NewObfuscatorService, NewClient),
//   - quantify privacy (BreachProbability, adversary models in
//     internal/privacy re-exported through Adversary helpers).
//
// The full machinery — search algorithms, storage simulation, baselines and
// the experiment harness — lives in the internal packages and is exercised by
// the examples, the test suite and the benchmark harness.
package opaque

import (
	"io"

	"opaque/internal/client"
	"opaque/internal/core"
	"opaque/internal/gen"
	"opaque/internal/obfsvc"
	"opaque/internal/obfuscate"
	"opaque/internal/privacy"
	"opaque/internal/roadnet"
	"opaque/internal/search"
	"opaque/internal/server"
	"opaque/internal/storage"
)

// Re-exported fundamental types. Aliases keep the internal packages as the
// single source of truth while giving downstream users stable names.
type (
	// Graph is a road network: a weighted graph embedded in the plane.
	Graph = roadnet.Graph
	// NodeID identifies a node (road intersection) in a Graph.
	NodeID = roadnet.NodeID
	// Path is a route through the network with its total cost.
	Path = search.Path
	// Request is a user's true path query plus its protection settings
	// ⟨u, (s,t), fS, fT⟩.
	Request = obfuscate.Request
	// ObfuscatedQuery is Q(S, T): the anonymised query the server sees.
	ObfuscatedQuery = obfuscate.ObfuscatedQuery
	// Plan is the result of obfuscating a batch of requests.
	Plan = obfuscate.Plan
	// System is a fully wired in-process OPAQUE deployment
	// (client ↔ obfuscator ↔ server).
	System = core.System
	// SystemConfig configures a System.
	SystemConfig = core.Config
	// Client submits path queries through the trusted obfuscator.
	Client = client.Client
	// ClientResult is the outcome of one path query.
	ClientResult = client.Result
	// Server is the directions search server with the obfuscated path query
	// processor.
	Server = server.Server
	// ServerConfig configures a Server.
	ServerConfig = server.Config
	// ObfuscatorService is the trusted middlebox between clients and the
	// server.
	ObfuscatorService = obfsvc.Service
	// ObfuscatorConfig configures the obfuscator service.
	ObfuscatorConfig = obfsvc.Config
	// ObfuscationConfig configures the path query obfuscator itself (mode,
	// clustering policy, fake endpoint selection).
	ObfuscationConfig = obfuscate.Config
	// EndpointSelector picks fake endpoints for obfuscation.
	EndpointSelector = obfuscate.EndpointSelector
	// QueryExecutor is the obfuscator's view of a directions search server:
	// anything that can evaluate an obfuscated path query. An in-process
	// Server's Evaluate method satisfies it via QueryExecutorFunc; a remote
	// server is reached through the networked deployment in cmd/.
	QueryExecutor = obfsvc.QueryExecutor
	// QueryExecutorFunc adapts a function to the QueryExecutor interface.
	QueryExecutorFunc = obfsvc.ExecutorFunc
	// NetworkConfig parameterises the synthetic road-network generators.
	NetworkConfig = gen.NetworkConfig
	// WorkloadConfig parameterises synthetic query workloads.
	WorkloadConfig = gen.WorkloadConfig
	// QueryPair is one (source, destination) pair of a workload.
	QueryPair = gen.QueryPair
	// Adversary models the semi-trusted server's inference power.
	Adversary = privacy.Adversary
)

// Obfuscation modes (Section III-C of the paper).
const (
	// Independent obfuscates each user's query into its own Q(Si, Ti).
	Independent = obfuscate.Independent
	// Shared merges several users' queries into one Q(S, T).
	Shared = obfuscate.Shared
)

// Network kinds understood by GenerateNetwork.
const (
	GridNetwork            = gen.Grid
	RandomGeometricNetwork = gen.RandomGeometric
	RingRadialNetwork      = gen.RingRadial
	TigerLikeNetwork       = gen.TigerLike
)

// NewGraph returns an empty mutable road network with capacity hints.
func NewGraph(nodes, edges int) *Graph { return roadnet.NewGraph(nodes, edges) }

// GenerateNetwork builds a synthetic road network; see NetworkConfig for the
// available topologies.
func GenerateNetwork(cfg NetworkConfig) (*Graph, error) { return gen.Generate(cfg) }

// DefaultNetworkConfig returns a mid-sized grid network configuration.
func DefaultNetworkConfig() NetworkConfig { return gen.DefaultNetworkConfig() }

// GenerateWorkload draws query pairs on g.
func GenerateWorkload(g *Graph, cfg WorkloadConfig) ([]QueryPair, error) {
	return gen.GenerateWorkload(g, cfg)
}

// ReadNetwork parses a road network from the text exchange format
// ("n id x y [w]" / "e from to cost" / "b a b cost" lines).
func ReadNetwork(r io.Reader) (*Graph, error) { return roadnet.ReadText(r) }

// WriteNetwork serialises a road network in the text exchange format.
func WriteNetwork(w io.Writer, g *Graph) error { return roadnet.WriteText(w, g) }

// DefaultConfig returns the default configuration for an in-process OPAQUE
// system: shared obfuscation, spatial query clustering, ring-band fake
// selection and an in-memory SSMD server.
func DefaultConfig() SystemConfig { return core.DefaultConfig() }

// NewSystem wires an in-process OPAQUE deployment over the road network g.
func NewSystem(g *Graph, cfg SystemConfig) (*System, error) { return core.NewSystem(g, cfg) }

// NewServer builds a stand-alone directions search server over g.
func NewServer(g *Graph, cfg ServerConfig) (*Server, error) { return server.New(g, cfg) }

// DefaultServerConfig returns the default server configuration.
func DefaultServerConfig() ServerConfig { return server.DefaultConfig() }

// NewObfuscatorService builds a stand-alone obfuscator middlebox over the
// simple road map g, forwarding obfuscated queries to exec.
func NewObfuscatorService(g *Graph, exec obfsvc.QueryExecutor, cfg ObfuscatorConfig) (*ObfuscatorService, error) {
	return obfsvc.New(g, exec, cfg)
}

// DefaultObfuscatorConfig returns the default obfuscator service
// configuration.
func DefaultObfuscatorConfig() ObfuscatorConfig { return obfsvc.DefaultConfig() }

// NewClient returns a client for the named user wired to an in-process
// obfuscator service with the given protection settings (fS, fT).
func NewClient(user string, svc *ObfuscatorService, fs, ft int) (*Client, error) {
	return client.NewLocal(user, svc, client.WithProtection(fs, ft))
}

// DialClient connects a client to a networked obfuscator.
func DialClient(user, addr string, fs, ft int) (*Client, error) {
	return client.Dial(user, addr, client.WithProtection(fs, ft))
}

// BreachProbability is Definition 2 of the paper: the probability that a true
// path query is revealed from an obfuscated query with source-set size fs and
// destination-set size ft, i.e. 1/(fs·ft).
func BreachProbability(fs, ft int) float64 { return obfuscate.BreachProbability(fs, ft) }

// NewUniformAdversary returns an adversary with no side knowledge; its breach
// probability matches Definition 2.
func NewUniformAdversary(g *Graph) *Adversary { return privacy.NewUniformAdversary(g) }

// NewWeightedAdversary returns an adversary that weighs candidate endpoints by
// node popularity (yellow-pages style side knowledge).
func NewWeightedAdversary(g *Graph) *Adversary { return privacy.NewWeightedAdversary(g) }

// ShortestPath computes the exact shortest path between two nodes of g with
// Dijkstra's algorithm — the ground-truth primitive applications can use to
// validate returned paths.
func ShortestPath(g *Graph, source, dest NodeID) (Path, error) {
	p, _, err := search.Dijkstra(storage.NewMemoryGraph(g), source, dest)
	return p, err
}

// ShortestPathAvoiding computes the shortest path that never enters any of
// the avoid nodes — the "additional specified conditions" kind of search the
// paper's introduction mentions (e.g. routing around closures).
func ShortestPathAvoiding(g *Graph, source, dest NodeID, avoid ...NodeID) (Path, error) {
	acc := storage.NewFilteredGraph(storage.NewMemoryGraph(g), storage.AvoidNodes(avoid...))
	p, _, err := search.Dijkstra(acc, source, dest)
	return p, err
}

// Fake endpoint selection strategies for ObfuscationConfig.Selector. The ring
// band keeps fakes within a distance band of the true endpoint (cheap,
// Lemma 1-friendly); the uniform strategy spreads them over the whole map
// (maximum diversity, highest cost); the density-aware strategy prefers
// popular nodes (robust against adversaries with public side knowledge); the
// sticky wrapper memoises fakes per endpoint so repeated queries cannot be
// intersected (see experiment E10).

// NewUniformSelector picks fake endpoints uniformly over the whole network.
func NewUniformSelector(seed uint64) EndpointSelector { return obfuscate.NewUniformSelector(seed) }

// NewRingBandSelector picks fake endpoints whose Euclidean distance from the
// true endpoint lies in [minRadius, maxRadius].
func NewRingBandSelector(minRadius, maxRadius float64, seed uint64) (EndpointSelector, error) {
	return obfuscate.NewRingBandSelector(minRadius, maxRadius, seed)
}

// NewDensityAwareSelector picks fake endpoints near the true endpoint with
// probability proportional to their popularity weight.
func NewDensityAwareSelector(radius float64, seed uint64) (EndpointSelector, error) {
	return obfuscate.NewDensityAwareSelector(radius, seed)
}

// NewStickySelector wraps another selector so that the same true endpoint
// always receives the same fakes, defeating repeated-query intersection
// attacks. maxEntries bounds the memo (0 = default).
func NewStickySelector(inner EndpointSelector, maxEntries int) EndpointSelector {
	return obfuscate.NewStickySelector(inner, maxEntries)
}
