package opaque

import (
	"bytes"
	"math"
	"testing"
)

func testNetwork(t testing.TB) *Graph {
	t.Helper()
	cfg := DefaultNetworkConfig()
	cfg.Nodes = 800
	cfg.Seed = 141
	g, err := GenerateNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBreachProbabilityFacade(t *testing.T) {
	if got := BreachProbability(2, 3); math.Abs(got-1.0/6) > 1e-12 {
		t.Errorf("BreachProbability(2,3) = %v, want 1/6", got)
	}
}

func TestGenerateAndSerializeNetwork(t *testing.T) {
	g := testNetwork(t)
	var buf bytes.Buffer
	if err := WriteNetwork(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadNetwork(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumNodes() != g.NumNodes() || back.NumArcs() != g.NumArcs() {
		t.Errorf("round trip changed the graph: %d/%d vs %d/%d", back.NumNodes(), back.NumArcs(), g.NumNodes(), g.NumArcs())
	}
}

func TestNewGraphManualConstruction(t *testing.T) {
	g := NewGraph(3, 4)
	a := g.AddNode(0, 0)
	b := g.AddNode(1, 0)
	c := g.AddNode(2, 0)
	if err := g.AddBidirectionalEdge(a, b, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddBidirectionalEdge(b, c, 1); err != nil {
		t.Fatal(err)
	}
	g.Freeze()
	p, err := ShortestPath(g, a, c)
	if err != nil {
		t.Fatal(err)
	}
	if p.Cost != 2 || p.Len() != 2 {
		t.Errorf("ShortestPath = %+v, want cost 2 with 2 edges", p)
	}
}

func TestEndToEndSystemThroughFacade(t *testing.T) {
	g := testNetwork(t)
	sys, err := NewSystem(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := GenerateWorkload(g, WorkloadConfig{Kind: "uniform", Queries: 3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	alice, err := sys.NewClient("alice")
	if err != nil {
		t.Fatal(err)
	}
	for _, pr := range pairs {
		res, err := alice.QueryWithProtection(pr.Source, pr.Dest, 2, 2)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Found {
			t.Fatalf("no path for %d->%d", pr.Source, pr.Dest)
		}
		truth, err := ShortestPath(g, pr.Source, pr.Dest)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(truth.Cost-res.Path.Cost) > 1e-6 {
			t.Errorf("returned cost %v, shortest %v", res.Path.Cost, truth.Cost)
		}
	}
	// Server log never exposes the bare pair.
	for _, entry := range sys.Server.QueryLog() {
		if len(entry.Sources)*len(entry.Dests) < 4 {
			t.Errorf("server saw a query with only %d candidate pairs", len(entry.Sources)*len(entry.Dests))
		}
	}
}

func TestStandaloneRolesThroughFacade(t *testing.T) {
	g := testNetwork(t)
	srv, err := NewServer(g, DefaultServerConfig())
	if err != nil {
		t.Fatal(err)
	}
	svcCfg := DefaultObfuscatorConfig()
	svcCfg.BatchWindow = 0
	svc, err := NewObfuscatorService(g, QueryExecutorFunc(srv.Evaluate), svcCfg)
	if err != nil {
		t.Fatal(err)
	}
	bob, err := NewClient("bob", svc, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := GenerateWorkload(g, WorkloadConfig{Kind: "uniform", Queries: 1, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	res, err := bob.Query(pairs[0].Source, pairs[0].Dest)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Error("standalone composition returned no path")
	}
}

func TestAdversariesThroughFacade(t *testing.T) {
	g := testNetwork(t)
	if NewUniformAdversary(g) == nil || NewWeightedAdversary(g) == nil {
		t.Error("adversary constructors returned nil")
	}
}
