package opaque

import (
	"math"
	"testing"
)

func TestShortestPathAvoiding(t *testing.T) {
	// 0 -1- 1 -1- 2 with a costly bypass 0 -5- 2.
	g := NewGraph(3, 6)
	a := g.AddNode(0, 0)
	b := g.AddNode(1, 0)
	c := g.AddNode(2, 0)
	if err := g.AddBidirectionalEdge(a, b, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddBidirectionalEdge(b, c, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddBidirectionalEdge(a, c, 5); err != nil {
		t.Fatal(err)
	}
	g.Freeze()
	direct, err := ShortestPath(g, a, c)
	if err != nil {
		t.Fatal(err)
	}
	if direct.Cost != 2 {
		t.Fatalf("unconstrained cost = %v, want 2", direct.Cost)
	}
	detour, err := ShortestPathAvoiding(g, a, c, b)
	if err != nil {
		t.Fatal(err)
	}
	if detour.Cost != 5 {
		t.Errorf("avoiding node %d should force the cost-5 bypass, got %v", b, detour.Cost)
	}
	for _, n := range detour.Nodes {
		if n == b {
			t.Error("avoided node appears on the path")
		}
	}
}

func TestSelectorConstructors(t *testing.T) {
	g := testNetwork(t)
	if NewUniformSelector(1) == nil {
		t.Error("NewUniformSelector returned nil")
	}
	ring, err := NewRingBandSelector(100, 10000, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewRingBandSelector(10, 5, 2); err == nil {
		t.Error("invalid ring band accepted")
	}
	dens, err := NewDensityAwareSelector(10000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewDensityAwareSelector(0, 3); err == nil {
		t.Error("invalid density radius accepted")
	}
	sticky := NewStickySelector(ring, 0)
	if sticky == nil || dens == nil {
		t.Fatal("selector constructors returned nil")
	}
	// A system wired with the sticky selector still answers correctly.
	cfg := DefaultConfig()
	cfg.Obfuscator.Obfuscation.Selector = sticky
	sys, err := NewSystem(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	client, err := sys.NewClient("carol")
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := GenerateWorkload(g, WorkloadConfig{Kind: "uniform", Queries: 1, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	res, err := client.QueryWithProtection(pairs[0].Source, pairs[0].Dest, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	truth, err := ShortestPath(g, pairs[0].Source, pairs[0].Dest)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || math.Abs(res.Path.Cost-truth.Cost) > 1e-6 {
		t.Errorf("sticky-selector system returned cost %v, want %v", res.Path.Cost, truth.Cost)
	}
}
