package obfsvc

import (
	"errors"
	"math"
	"net"
	"sync"
	"testing"
	"time"

	"opaque/internal/costmodel"
	"opaque/internal/gen"
	"opaque/internal/obfuscate"
	"opaque/internal/protocol"
	"opaque/internal/roadnet"
	"opaque/internal/search"
	"opaque/internal/server"
	"opaque/internal/storage"
)

func testGraph(t testing.TB) *roadnet.Graph {
	t.Helper()
	cfg := gen.DefaultNetworkConfig()
	cfg.Nodes = 800
	cfg.Seed = 81
	return gen.MustGenerate(cfg)
}

func testService(t testing.TB, g *roadnet.Graph, mode obfuscate.Mode, window time.Duration) (*Service, *server.Server) {
	t.Helper()
	srv := server.MustNew(g, server.DefaultConfig())
	cfg := DefaultConfig()
	cfg.BatchWindow = window
	cfg.Obfuscation.Mode = mode
	minX, minY, maxX, maxY := g.Bounds()
	extent := math.Max(maxX-minX, maxY-minY)
	cfg.Obfuscation.Selector = obfuscate.MustNewRingBandSelector(0.02*extent, 0.2*extent, 83)
	svc := MustNew(g, ExecutorFunc(srv.Evaluate), cfg)
	return svc, srv
}

func testRequests(t testing.TB, g *roadnet.Graph, n int) []obfuscate.Request {
	t.Helper()
	wl := gen.MustGenerateWorkload(g, gen.WorkloadConfig{Kind: gen.Uniform, Queries: n, Seed: 85})
	out := make([]obfuscate.Request, n)
	for i, p := range wl {
		out[i] = obfuscate.Request{User: obfuscate.UserID(string(rune('a' + i%26))), Source: p.Source, Dest: p.Dest, FS: 2, FT: 3}
	}
	return out
}

func TestNewValidation(t *testing.T) {
	g := testGraph(t)
	if _, err := New(g, nil, DefaultConfig()); err == nil {
		t.Error("nil executor accepted")
	}
	cfg := DefaultConfig()
	cfg.Obfuscation.Selector = nil
	if _, err := New(g, ExecutorFunc(func(protocol.ServerQuery) (protocol.ServerReply, error) { return protocol.ServerReply{}, nil }), cfg); err == nil {
		t.Error("config without selector accepted")
	}
}

func TestProcessBatchReturnsExactPaths(t *testing.T) {
	g := testGraph(t)
	for _, mode := range []obfuscate.Mode{obfuscate.Independent, obfuscate.Shared} {
		svc, srv := testService(t, g, mode, 0)
		batch := testRequests(t, g, 8)
		results, err := svc.ProcessBatch(batch)
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if len(results) != len(batch) {
			t.Fatalf("%s: %d results for %d requests", mode, len(results), len(batch))
		}
		acc := storage.NewMemoryGraph(g)
		for i, r := range results {
			if r.Err != nil {
				t.Fatalf("%s: request %d error: %v", mode, i, r.Err)
			}
			if !r.Found {
				t.Fatalf("%s: request %d path not found", mode, i)
			}
			truth, _, err := search.Dijkstra(acc, batch[i].Source, batch[i].Dest)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(truth.Cost-r.Path.Cost) > 1e-6 {
				t.Errorf("%s: request %d path cost %v, shortest path costs %v", mode, i, r.Path.Cost, truth.Cost)
			}
			if r.Path.Source() != batch[i].Source || r.Path.Dest() != batch[i].Dest {
				t.Errorf("%s: request %d path endpoints %d->%d, want %d->%d", mode, i, r.Path.Source(), r.Path.Dest(), batch[i].Source, batch[i].Dest)
			}
		}
		// The server must never have seen a bare true pair as a whole query:
		// every logged query must be at least fS x fT.
		for _, entry := range srv.QueryLog() {
			if len(entry.Sources) < 2 || len(entry.Dests) < 3 {
				t.Errorf("%s: server saw a query with |S|=%d |T|=%d, below the requested protection", mode, len(entry.Sources), len(entry.Dests))
			}
		}
		st := svc.Stats()
		if st.Requests != int64(len(batch)) || st.Batches != 1 || st.ObfuscatedSent == 0 {
			t.Errorf("%s: stats = %+v", mode, st)
		}
	}
}

func TestProcessBatchEmpty(t *testing.T) {
	svc, _ := testService(t, testGraph(t), obfuscate.Shared, 0)
	if _, err := svc.ProcessBatch(nil); err == nil {
		t.Error("empty batch accepted")
	}
}

func TestProcessBatchServerError(t *testing.T) {
	g := testGraph(t)
	boom := errors.New("server down")
	cfg := DefaultConfig()
	cfg.BatchWindow = 0
	minX, minY, maxX, maxY := g.Bounds()
	extent := math.Max(maxX-minX, maxY-minY)
	cfg.Obfuscation.Selector = obfuscate.MustNewRingBandSelector(0.02*extent, 0.2*extent, 83)
	svc := MustNew(g, ExecutorFunc(func(protocol.ServerQuery) (protocol.ServerReply, error) {
		return protocol.ServerReply{}, boom
	}), cfg)
	batch := testRequests(t, g, 3)
	results, err := svc.ProcessBatch(batch)
	if err != nil {
		t.Fatalf("batch-level error: %v", err)
	}
	for i, r := range results {
		if r.Err == nil {
			t.Errorf("request %d should carry the server error", i)
		}
	}
}

func TestSubmitBatchingWindow(t *testing.T) {
	g := testGraph(t)
	svc, srv := testService(t, g, obfuscate.Shared, 30*time.Millisecond)
	batch := testRequests(t, g, 6)
	var chans []<-chan ClientResult
	for _, req := range batch {
		chans = append(chans, svc.Submit(req))
	}
	for i, ch := range chans {
		select {
		case res := <-ch:
			if res.Err != nil {
				t.Fatalf("request %d: %v", i, res.Err)
			}
			if !res.Found {
				t.Errorf("request %d not found", i)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("request %d timed out", i)
		}
	}
	// All six requests arrived inside one window, so the obfuscator should
	// have sent far fewer than six queries to the server.
	if _, n := srv.TotalStats(); n >= 6 {
		t.Errorf("server processed %d obfuscated queries for 6 batched requests; expected sharing", n)
	}
}

func TestSubmitInvalidRequestFailsFast(t *testing.T) {
	g := testGraph(t)
	svc, _ := testService(t, g, obfuscate.Shared, time.Hour) // window never fires
	res := <-svc.Submit(obfuscate.Request{User: "", Source: 0, Dest: 1})
	if res.Err == nil {
		t.Error("invalid request did not fail")
	}
}

func TestSubmitMaxBatchFlushesImmediately(t *testing.T) {
	g := testGraph(t)
	srv := server.MustNew(g, server.DefaultConfig())
	cfg := DefaultConfig()
	cfg.BatchWindow = time.Hour // would never fire on its own
	cfg.MaxBatch = 2
	minX, minY, maxX, maxY := g.Bounds()
	extent := math.Max(maxX-minX, maxY-minY)
	cfg.Obfuscation.Selector = obfuscate.MustNewRingBandSelector(0.02*extent, 0.2*extent, 87)
	svc := MustNew(g, ExecutorFunc(srv.Evaluate), cfg)
	batch := testRequests(t, g, 2)
	var wg sync.WaitGroup
	for _, req := range batch {
		wg.Add(1)
		go func(r obfuscate.Request) {
			defer wg.Done()
			select {
			case res := <-svc.Submit(r):
				if res.Err != nil {
					t.Errorf("submit: %v", res.Err)
				}
			case <-time.After(10 * time.Second):
				t.Error("submit timed out despite MaxBatch flush")
			}
		}(req)
	}
	wg.Wait()
}

func TestFlushProcessesPending(t *testing.T) {
	g := testGraph(t)
	svc, _ := testService(t, g, obfuscate.Shared, time.Hour)
	req := testRequests(t, g, 1)[0]
	ch := svc.Submit(req)
	svc.Flush()
	select {
	case res := <-ch:
		if res.Err != nil || !res.Found {
			t.Errorf("flushed result = %+v", res)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Flush did not release the pending request")
	}
}

func TestHandlerAndServeOverTCP(t *testing.T) {
	g := testGraph(t)
	svc, _ := testService(t, g, obfuscate.Independent, 0)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = svc.Serve(ln) }()
	defer ln.Close()

	conn, err := protocol.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	wl := gen.MustGenerateWorkload(g, gen.WorkloadConfig{Kind: gen.Uniform, Queries: 1, Seed: 90})
	reply, err := conn.Call(protocol.ClientRequest{RequestID: 9, User: "tcp-user", Source: wl[0].Source, Dest: wl[0].Dest, FS: 2, FT: 2})
	if err != nil {
		t.Fatal(err)
	}
	cr, ok := reply.(protocol.ClientReply)
	if !ok {
		t.Fatalf("reply type %T", reply)
	}
	if !cr.Found || cr.RequestID != 9 || len(cr.Path) == 0 {
		t.Errorf("reply = %+v", cr)
	}
}

func TestRemoteExecutor(t *testing.T) {
	g := testGraph(t)
	srv := server.MustNew(g, server.DefaultConfig())
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(ln) }()
	defer ln.Close()
	conn, err := protocol.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	exec := NewRemoteExecutor(conn)
	reply, err := exec.Execute(protocol.ServerQuery{QueryID: 2, Sources: []roadnet.NodeID{0}, Dests: []roadnet.NodeID{5}})
	if err != nil {
		t.Fatal(err)
	}
	if reply.QueryID != 2 || len(reply.Paths) != 1 {
		t.Errorf("remote executor reply = %+v", reply)
	}
}

// TestProcessBatchGroupsByProfile: a mixed batch — live requests plus two
// different weight profiles — must reach the server as same-profile
// obfuscated queries only (one obfuscated query is one metric), with every
// request answered under its own profile's distances and the k-anonymous
// padding intact per group.
func TestProcessBatchGroupsByProfile(t *testing.T) {
	g := testGraph(t)
	srvCfg := server.DefaultConfig()
	srvCfg.Profiles = costmodel.TimeOfDayProfiles()
	srvCfg.PrewarmProfiles = true
	srv := server.MustNew(g, srvCfg)

	cfg := DefaultConfig()
	cfg.Obfuscation.Mode = obfuscate.Shared
	minX, minY, maxX, maxY := g.Bounds()
	extent := math.Max(maxX-minX, maxY-minY)
	cfg.Obfuscation.Selector = obfuscate.MustNewRingBandSelector(0.02*extent, 0.2*extent, 91)
	svc := MustNew(g, ExecutorFunc(srv.Evaluate), cfg)

	batch := testRequests(t, g, 9)
	profiles := []string{"", costmodel.ProfileAMPeak, costmodel.ProfileNight}
	for i := range batch {
		batch[i].Profile = profiles[i%len(profiles)]
	}

	results, err := svc.ProcessBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("request %d (profile %q): %v", i, batch[i].Profile, r.Err)
		}
		if !r.Found {
			t.Fatalf("request %d (profile %q): path not found", i, batch[i].Profile)
		}
		metric := g
		if batch[i].Profile != "" {
			metric, err = srv.ProfileGraph(batch[i].Profile)
			if err != nil {
				t.Fatal(err)
			}
		}
		truth, _, err := search.Dijkstra(storage.NewMemoryGraph(metric), batch[i].Source, batch[i].Dest)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(truth.Cost-r.Path.Cost) > 1e-6 {
			t.Errorf("request %d (profile %q): path cost %v, profile-metric shortest path costs %v", i, batch[i].Profile, r.Path.Cost, truth.Cost)
		}
	}

	// Every obfuscated query the server saw carries exactly one profile, the
	// protection level held per group, and all three groups reached it.
	seen := map[string]bool{}
	for _, entry := range srv.QueryLog() {
		seen[entry.Profile] = true
		if len(entry.Sources) < 2 || len(entry.Dests) < 3 {
			t.Errorf("profile %q: server saw |S|=%d |T|=%d, below the requested protection", entry.Profile, len(entry.Sources), len(entry.Dests))
		}
	}
	for _, p := range profiles {
		if !seen[p] {
			t.Errorf("no obfuscated query travelled under profile %q", p)
		}
	}
	if st := svc.Stats(); st.Requests != int64(len(batch)) || st.Batches != 1 {
		t.Errorf("stats = %+v", st)
	}
}
