// Package obfsvc implements the OPAQUE obfuscator service — the trusted
// middlebox of Figure 5 that sits between clients and the directions search
// server. It accepts client requests over a secure channel, batches them,
// runs the path query obfuscator, forwards the obfuscated path queries to the
// server, filters the returned candidate result paths, answers each client
// with its own path only, and then discards the satisfied request
// (Section IV).
package obfsvc

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"opaque/internal/filter"
	"opaque/internal/metrics"
	"opaque/internal/obfuscate"
	"opaque/internal/protocol"
	"opaque/internal/roadnet"
	"opaque/internal/search"
)

// QueryExecutor abstracts the connection to the directions search server: the
// in-process deployment calls the server directly, the networked deployment
// sends the query over TCP.
type QueryExecutor interface {
	Execute(q protocol.ServerQuery) (protocol.ServerReply, error)
}

// BatchExecutor is an optional extension of QueryExecutor for servers that
// can evaluate a whole batch of obfuscated queries in one exchange (the
// in-process server's batch engine, or a networked server via
// protocol.BatchQuery). ExecuteBatch returns one reply and one error slot per
// query, in query order; queries fail individually. When the executor
// implements it, ProcessBatch hands over every query of an obfuscation plan
// at once so the server can share SSMD trees across them.
type BatchExecutor interface {
	QueryExecutor
	ExecuteBatch(qs []protocol.ServerQuery) ([]protocol.ServerReply, []error)
}

// ExecutorFunc adapts a function to the QueryExecutor interface.
type ExecutorFunc func(q protocol.ServerQuery) (protocol.ServerReply, error)

// Execute implements QueryExecutor.
func (f ExecutorFunc) Execute(q protocol.ServerQuery) (protocol.ServerReply, error) { return f(q) }

// RemoteExecutor sends queries to a server over a protocol.Conn. It
// implements BatchExecutor: whole obfuscation plans travel as one
// protocol.BatchQuery round trip.
type RemoteExecutor struct {
	conn    *protocol.Conn
	batchID atomic.Uint64
}

// NewRemoteExecutor wraps an established connection to the server.
func NewRemoteExecutor(conn *protocol.Conn) *RemoteExecutor { return &RemoteExecutor{conn: conn} }

// Execute implements QueryExecutor.
func (r *RemoteExecutor) Execute(q protocol.ServerQuery) (protocol.ServerReply, error) {
	reply, err := r.conn.Call(q)
	if err != nil {
		return protocol.ServerReply{}, err
	}
	switch m := reply.(type) {
	case protocol.ServerReply:
		return m, nil
	case protocol.ErrorReply:
		return protocol.ServerReply{}, fmt.Errorf("obfsvc: server error: %s", m.Message)
	default:
		return protocol.ServerReply{}, fmt.Errorf("obfsvc: unexpected server reply type %T", reply)
	}
}

// ExecuteBatch implements BatchExecutor over one BatchQuery round trip. A
// transport or whole-batch failure is reported in every error slot.
func (r *RemoteExecutor) ExecuteBatch(qs []protocol.ServerQuery) ([]protocol.ServerReply, []error) {
	replies := make([]protocol.ServerReply, len(qs))
	errs := make([]error, len(qs))
	failAll := func(err error) ([]protocol.ServerReply, []error) {
		for i := range errs {
			errs[i] = err
		}
		return replies, errs
	}
	raw, err := r.conn.Call(protocol.BatchQuery{BatchID: r.batchID.Add(1), Queries: qs})
	if err != nil {
		return failAll(err)
	}
	switch m := raw.(type) {
	case protocol.BatchReply:
		if len(m.Replies) != len(qs) || len(m.Errors) > len(qs) {
			return failAll(fmt.Errorf("obfsvc: batch reply has %d replies / %d errors for %d queries", len(m.Replies), len(m.Errors), len(qs)))
		}
		copy(replies, m.Replies)
		for i, msg := range m.Errors {
			if msg != "" {
				errs[i] = fmt.Errorf("obfsvc: server error: %s", msg)
			}
		}
		return replies, errs
	case protocol.ErrorReply:
		return failAll(fmt.Errorf("obfsvc: server error: %s", m.Message))
	default:
		return failAll(fmt.Errorf("obfsvc: unexpected server reply type %T", raw))
	}
}

// Config parameterises the obfuscator service.
type Config struct {
	// Obfuscation is the path query obfuscator configuration.
	Obfuscation obfuscate.Config
	// BatchWindow is how long the service waits to accumulate concurrent
	// requests before obfuscating them together (shared mode benefits from
	// larger windows). Zero means every Submit call is processed
	// immediately as a batch of one.
	BatchWindow time.Duration
	// MaxBatch caps the number of requests obfuscated together.
	MaxBatch int
	// VerifyPaths validates returned candidate paths against the
	// obfuscator's road map before answering clients.
	VerifyPaths bool
}

// DefaultConfig returns a shared-mode service with a 50 ms batching window.
func DefaultConfig() Config {
	return Config{
		Obfuscation: obfuscate.DefaultConfig(),
		BatchWindow: 50 * time.Millisecond,
		MaxBatch:    64,
		VerifyPaths: true,
	}
}

// Stats counts the service's work.
type Stats struct {
	Requests         int64
	Batches          int64
	ObfuscatedSent   int64
	CandidatesRecv   int64
	ObfuscationNanos int64
	FilterNanos      int64
}

// Service is the obfuscator middlebox.
type Service struct {
	graph    *roadnet.Graph
	obf      *obfuscate.Obfuscator
	filt     *filter.Filter
	executor QueryExecutor
	cfg      Config

	queryID atomic.Uint64
	stats   Stats
	statsMu sync.Mutex
	metrics *metrics.Registry

	// obfMu serialises access to the obfuscator, whose seeded endpoint
	// selection is deliberately deterministic and therefore not safe for
	// concurrent use. Only the (cheap) obfuscation stage is serialised;
	// query evaluation and filtering run concurrently across batches.
	obfMu sync.Mutex

	// batching state used by the asynchronous Submit path.
	mu      sync.Mutex
	pending []pendingRequest
	timer   *time.Timer
}

type pendingRequest struct {
	req  obfuscate.Request
	done chan ClientResult
}

// ClientResult is what a client receives back: its own requested path.
type ClientResult struct {
	Request obfuscate.Request
	Path    search.Path
	Found   bool
	Err     error
}

// New builds the obfuscator service over the simple road map g.
func New(g *roadnet.Graph, executor QueryExecutor, cfg Config) (*Service, error) {
	if executor == nil {
		return nil, fmt.Errorf("obfsvc: nil query executor")
	}
	obf, err := obfuscate.New(g, cfg.Obfuscation)
	if err != nil {
		return nil, err
	}
	var filt *filter.Filter
	if cfg.VerifyPaths {
		filt = filter.NewVerifying(g)
	} else {
		filt = filter.New()
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 64
	}
	return &Service{graph: g, obf: obf, filt: filt, executor: executor, cfg: cfg, metrics: metrics.NewRegistry()}, nil
}

// MustNew is New but panics on error.
func MustNew(g *roadnet.Graph, executor QueryExecutor, cfg Config) *Service {
	s, err := New(g, executor, cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Obfuscator exposes the underlying path query obfuscator (used by
// experiments that need the plan without going through the server).
func (s *Service) Obfuscator() *obfuscate.Obfuscator { return s.obf }

// Stats returns a snapshot of the service counters.
func (s *Service) Stats() Stats {
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	return s.stats
}

// Metrics returns the service's instrumentation registry (request counters,
// obfuscation and filtering latency histograms).
func (s *Service) Metrics() *metrics.Registry { return s.metrics }

// ProcessBatch obfuscates the batch, evaluates every obfuscated query through
// the executor, filters the candidates and returns one result per request in
// batch order. This synchronous entry point is what experiments and the
// in-process deployment use; Submit builds on it for the asynchronous,
// batching-window flow.
//
// Requests carrying different weight profiles are obfuscated in separate
// groups: one obfuscated query is answered under exactly one metric, so a
// shared query mixing profiles would hand some of its members another
// regime's distances. The grouping costs nothing in anonymity — the
// k-anonymous padding pairs of each query are drawn per group exactly as they
// would be per batch — but it does mean the shared-mode amortisation only
// happens among same-profile requests. A group that fails to obfuscate fails
// only its own requests; the other groups still complete.
func (s *Service) ProcessBatch(batch []obfuscate.Request) ([]ClientResult, error) {
	if len(batch) == 0 {
		return nil, fmt.Errorf("obfsvc: empty batch")
	}
	results := make([]ClientResult, len(batch))
	for i := range results {
		results[i] = ClientResult{Request: batch[i]}
	}

	// Group batch positions by profile, preserving first-seen order so
	// single-profile batches (the common case) behave byte-for-byte like the
	// ungrouped path.
	order := make([]string, 0, 1)
	groups := make(map[string][]int, 1)
	for i, req := range batch {
		if _, ok := groups[req.Profile]; !ok {
			order = append(order, req.Profile)
		}
		groups[req.Profile] = append(groups[req.Profile], i)
	}

	var obfDur, filterDur time.Duration
	var sent, candidates int64
	for _, profile := range order {
		idxs := groups[profile]
		sub := make([]obfuscate.Request, len(idxs))
		for j, i := range idxs {
			sub[j] = batch[i]
		}
		g := s.processGroup(profile, sub)
		for j, i := range idxs {
			results[i] = g.results[j]
		}
		obfDur += g.obfDur
		filterDur += g.filterDur
		sent += g.sent
		candidates += g.candidates
	}

	s.statsMu.Lock()
	s.stats.Requests += int64(len(batch))
	s.stats.Batches++
	s.stats.ObfuscatedSent += sent
	s.stats.CandidatesRecv += candidates
	s.stats.ObfuscationNanos += obfDur.Nanoseconds()
	s.stats.FilterNanos += filterDur.Nanoseconds()
	s.statsMu.Unlock()

	s.metrics.Add("requests", int64(len(batch)))
	s.metrics.Add("batches", 1)
	s.metrics.Add("obfuscated_queries_sent", sent)
	s.metrics.Add("candidate_paths_received", candidates)
	s.metrics.Observe("obfuscation_latency", obfDur)
	s.metrics.Observe("filter_latency", filterDur)
	s.metrics.SetGauge("last_batch_size", float64(len(batch)))

	// "the satisfied requests are immediately discarded in the obfuscator"
	// — nothing about the batch is retained beyond the counters above.
	return results, nil
}

// groupOutcome is what processGroup hands back for one same-profile group.
type groupOutcome struct {
	results          []ClientResult
	obfDur           time.Duration
	filterDur        time.Duration
	sent, candidates int64
}

// processGroup runs the obfuscate → evaluate → filter pipeline for one
// same-profile group of requests, stamping the profile onto every outgoing
// ServerQuery.
func (s *Service) processGroup(profile string, batch []obfuscate.Request) groupOutcome {
	out := groupOutcome{results: make([]ClientResult, len(batch))}
	for i := range out.results {
		out.results[i] = ClientResult{Request: batch[i]}
	}

	start := time.Now()
	s.obfMu.Lock()
	plan, err := s.obf.Obfuscate(batch)
	s.obfMu.Unlock()
	out.obfDur = time.Since(start)
	if err != nil {
		err = fmt.Errorf("obfsvc: obfuscation failed: %w", err)
		for i := range out.results {
			out.results[i].Err = err
		}
		return out
	}
	out.sent = int64(len(plan.Queries))

	// Evaluate the whole obfuscation plan. Batch-capable executors receive
	// every query at once — one round trip in the networked deployment, and
	// the chance to share SSMD trees across queries in the server's batch
	// engine, whose workers run each per-source search on a pooled
	// epoch-stamped workspace; plain executors are driven query by query.
	queries := make([]protocol.ServerQuery, len(plan.Queries))
	for qi, q := range plan.Queries {
		queries[qi] = protocol.ServerQuery{
			QueryID: s.queryID.Add(1),
			Sources: q.Sources,
			Dests:   q.Dests,
			Profile: profile,
		}
	}
	var replies []protocol.ServerReply
	var errs []error
	if be, ok := s.executor.(BatchExecutor); ok {
		replies, errs = be.ExecuteBatch(queries)
	} else {
		replies = make([]protocol.ServerReply, len(queries))
		errs = make([]error, len(queries))
		for qi := range queries {
			replies[qi], errs[qi] = s.executor.Execute(queries[qi])
		}
	}

	for qi, q := range plan.Queries {
		reply, err := replies[qi], errs[qi]
		if err != nil {
			// Mark every member of this query as failed but keep processing
			// the other queries of the plan.
			for i := range batch {
				if qi, ok := plan.Assignment[i]; ok && qi == q.ID {
					out.results[i].Err = err
				}
			}
			continue
		}
		out.candidates += int64(len(reply.Paths))
		fstart := time.Now()
		set := newCandidateSet(reply)
		extracted, ferr := s.filt.Extract(q, set)
		out.filterDur += time.Since(fstart)
		if ferr != nil {
			for i := range batch {
				if qi, ok := plan.Assignment[i]; ok && qi == q.ID {
					out.results[i].Err = ferr
				}
			}
			continue
		}
		// Map member results back to batch positions by user and pair.
		for _, ext := range extracted {
			for i := range batch {
				if qi, ok := plan.Assignment[i]; !ok || qi != q.ID {
					continue
				}
				if batch[i].User == ext.Request.User && batch[i].Source == ext.Request.Source && batch[i].Dest == ext.Request.Dest {
					out.results[i].Path = ext.Path
					out.results[i].Found = ext.Found
				}
			}
		}
	}
	return out
}

// Submit enqueues one request and returns a channel that will receive the
// result once the current batching window closes. Requests arriving within
// BatchWindow of each other are obfuscated together, which is what makes the
// shared obfuscated path query variant effective.
func (s *Service) Submit(req obfuscate.Request) <-chan ClientResult {
	done := make(chan ClientResult, 1)
	if err := req.Validate(s.graph); err != nil {
		done <- ClientResult{Request: req, Err: err}
		return done
	}
	s.mu.Lock()
	s.pending = append(s.pending, pendingRequest{req: req, done: done})
	shouldFlushNow := len(s.pending) >= s.cfg.MaxBatch || s.cfg.BatchWindow <= 0
	if !shouldFlushNow && s.timer == nil {
		s.timer = time.AfterFunc(s.cfg.BatchWindow, s.flush)
	}
	s.mu.Unlock()
	if shouldFlushNow {
		s.flush()
	}
	return done
}

// flush processes all currently pending requests as one batch.
func (s *Service) flush() {
	s.mu.Lock()
	if s.timer != nil {
		s.timer.Stop()
		s.timer = nil
	}
	pending := s.pending
	s.pending = nil
	s.mu.Unlock()
	if len(pending) == 0 {
		return
	}
	batch := make([]obfuscate.Request, len(pending))
	for i, p := range pending {
		batch[i] = p.req
	}
	results, err := s.ProcessBatch(batch)
	for i, p := range pending {
		if err != nil {
			p.done <- ClientResult{Request: p.req, Err: err}
			continue
		}
		p.done <- results[i]
	}
}

// Flush forces any pending requests to be processed immediately; tests and
// shutdown paths use it.
func (s *Service) Flush() { s.flush() }

// Handler returns a protocol.Handler that answers ClientRequest messages from
// networked clients. Each request is submitted through the batching path and
// the reply is sent when its batch completes.
func (s *Service) Handler() protocol.Handler {
	return func(msg any) (any, error) {
		req, ok := msg.(protocol.ClientRequest)
		if !ok {
			return nil, fmt.Errorf("obfsvc: unexpected message type %T", msg)
		}
		res := <-s.Submit(obfuscate.Request{
			User:    obfuscate.UserID(req.User),
			Source:  req.Source,
			Dest:    req.Dest,
			FS:      req.FS,
			FT:      req.FT,
			Profile: req.Profile,
		})
		reply := protocol.ClientReply{RequestID: req.RequestID, Found: res.Found}
		if res.Err != nil {
			reply.Error = res.Err.Error()
		}
		if res.Found {
			reply.Path = res.Path.Nodes
			reply.Cost = res.Path.Cost
		}
		return reply, nil
	}
}

// Serve accepts client connections on ln until the listener closes. The
// channel between clients and the obfuscator is assumed secure (e.g. TLS in a
// real deployment); securing it is outside the paper's scope and ours.
func (s *Service) Serve(ln net.Listener) error {
	return protocol.ServeListener(ln, s.Handler())
}

// candidateSet adapts a ServerReply to the filter.CandidateSet interface.
// It indexes the wire candidates as-is and converts a candidate to a
// search.Path (which copies the node sequence) only when the filter actually
// extracts it — so the |S|·|T| − |members| candidate paths every obfuscated
// query is padded with are discarded without ever being materialised on
// this side of the wire.
type candidateSet struct {
	candidates map[[2]roadnet.NodeID]protocol.CandidatePath
}

func newCandidateSet(reply protocol.ServerReply) candidateSet {
	set := candidateSet{candidates: make(map[[2]roadnet.NodeID]protocol.CandidatePath, len(reply.Paths))}
	for _, c := range reply.Paths {
		set.candidates[[2]roadnet.NodeID{c.Source, c.Dest}] = c
	}
	return set
}

// Path implements filter.CandidateSet, materialising lazily.
func (c candidateSet) Path(source, dest roadnet.NodeID) (search.Path, bool) {
	cp, ok := c.candidates[[2]roadnet.NodeID{source, dest}]
	if !ok {
		return search.Path{}, false
	}
	return protocol.PathFromCandidate(cp), true
}
