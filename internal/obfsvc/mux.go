package obfsvc

// This file is the obfuscator's side of the multiplexed transport: the
// MuxExecutor that sends obfuscated queries to a directions search server —
// or to a fleet router, which serves the identical interface — over one
// persistent framed connection, and the service's own multiplexed listener
// for clients. The one-shot RemoteExecutor remains for the -legacy-oneshot
// compatibility path.

import (
	"fmt"
	"net"
	"sync/atomic"

	"opaque/internal/protocol"
)

// MuxExecutor sends queries over a multiplexed connection. It implements
// BatchExecutor: whole obfuscation plans travel as one streaming BatchQuery,
// with per-query replies arriving as they complete. Unlike the one-shot
// RemoteExecutor, any number of goroutines may execute queries concurrently
// on one connection.
type MuxExecutor struct {
	conn    *protocol.MuxClient
	batchID atomic.Uint64
}

// NewMuxExecutor wraps an established multiplexed connection.
func NewMuxExecutor(conn *protocol.MuxClient) *MuxExecutor { return &MuxExecutor{conn: conn} }

// DialMuxExecutor connects to a server (or fleet router) at addr over the
// multiplexed transport.
func DialMuxExecutor(addr string) (*MuxExecutor, error) {
	conn, err := protocol.DialMux(addr, protocol.Hello{Node: addr, Role: "obfuscator"})
	if err != nil {
		return nil, err
	}
	return NewMuxExecutor(conn), nil
}

// Conn exposes the underlying connection (peer identity, Close).
func (e *MuxExecutor) Conn() *protocol.MuxClient { return e.conn }

// Close tears down the connection.
func (e *MuxExecutor) Close() error { return e.conn.Close() }

// Execute implements QueryExecutor.
func (e *MuxExecutor) Execute(q protocol.ServerQuery) (protocol.ServerReply, error) {
	res, err := e.conn.Do(q)
	if err != nil {
		return protocol.ServerReply{}, fmt.Errorf("obfsvc: %w", err)
	}
	switch m := res.(type) {
	case protocol.ServerReply:
		return m, nil
	default:
		return protocol.ServerReply{}, fmt.Errorf("obfsvc: unexpected server reply type %T", res)
	}
}

// ExecuteBatch implements BatchExecutor over one streaming batch exchange. A
// transport or whole-batch failure is reported in every error slot.
func (e *MuxExecutor) ExecuteBatch(qs []protocol.ServerQuery) ([]protocol.ServerReply, []error) {
	replies := make([]protocol.ServerReply, len(qs))
	errs := make([]error, len(qs))
	br, err := e.conn.DoBatch(protocol.BatchQuery{BatchID: e.batchID.Add(1), Queries: qs})
	if err != nil {
		for i := range errs {
			errs[i] = fmt.Errorf("obfsvc: %w", err)
		}
		return replies, errs
	}
	if len(br.Replies) != len(qs) || len(br.Errors) != len(qs) {
		err := fmt.Errorf("obfsvc: batch reply has %d replies / %d errors for %d queries", len(br.Replies), len(br.Errors), len(qs))
		for i := range errs {
			errs[i] = err
		}
		return replies, errs
	}
	copy(replies, br.Replies)
	for i, msg := range br.Errors {
		if msg != "" {
			errs[i] = fmt.Errorf("obfsvc: server error: %s", msg)
		}
	}
	return replies, errs
}

// MuxHandler returns the service's handler for the multiplexed transport:
// client requests are answered through the batching path exactly like the
// one-shot Handler, but many requests share one connection.
func (s *Service) MuxHandler() protocol.MuxHandler {
	h := s.Handler()
	return protocol.MuxHandlerFunc(func(msg any, _ protocol.ReqInfo) (any, error) {
		// The obfuscator has no cheaper degraded answer to shed to — load
		// shedding happens downstream at the server/router.
		return h(msg)
	})
}

// ServeMux accepts multiplexed client connections on ln until the listener
// closes.
func (s *Service) ServeMux(ln net.Listener, cfg protocol.MuxServerConfig) error {
	if cfg.Hello == nil {
		cfg.Hello = func() protocol.Hello { return protocol.Hello{Role: "obfuscator"} }
	}
	return protocol.ServeMux(ln, s.MuxHandler(), cfg)
}
