package obfsvc

import (
	"testing"

	"opaque/internal/obfuscate"
)

func TestServiceRecordsMetrics(t *testing.T) {
	g := testGraph(t)
	svc, _ := testService(t, g, obfuscate.Shared, 0)
	batch := testRequests(t, g, 6)
	if _, err := svc.ProcessBatch(batch); err != nil {
		t.Fatal(err)
	}
	m := svc.Metrics()
	if got := m.Counter("requests"); got != 6 {
		t.Errorf("requests = %d, want 6", got)
	}
	if got := m.Counter("batches"); got != 1 {
		t.Errorf("batches = %d, want 1", got)
	}
	if m.Counter("obfuscated_queries_sent") < 1 {
		t.Error("obfuscated_queries_sent not recorded")
	}
	if m.Counter("candidate_paths_received") < m.Counter("obfuscated_queries_sent") {
		t.Error("candidate_paths_received should be at least the number of queries")
	}
	if h := m.Histogram("obfuscation_latency"); h == nil || h.Count() != 1 {
		t.Error("obfuscation_latency histogram not recorded")
	}
	if m.Gauge("last_batch_size") != 6 {
		t.Errorf("last_batch_size = %v, want 6", m.Gauge("last_batch_size"))
	}
}
