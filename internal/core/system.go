// Package core composes the three OPAQUE roles — clients, the trusted
// obfuscator, and the directions search server — into a runnable system
// (Figure 5 of the paper). It provides the in-process deployment used by
// examples, tests and experiments, and adapters that let the full OPAQUE
// pipeline be compared head-to-head with the baseline mechanisms.
package core

import (
	"fmt"
	"math"

	"opaque/internal/baseline"
	"opaque/internal/client"
	"opaque/internal/gen"
	"opaque/internal/obfsvc"
	"opaque/internal/obfuscate"
	"opaque/internal/protocol"
	"opaque/internal/roadnet"
	"opaque/internal/search"
	"opaque/internal/server"
)

// Config assembles the configuration of every component of an in-process
// OPAQUE system.
type Config struct {
	Server     server.Config
	Obfuscator obfsvc.Config
}

// DefaultConfig returns a shared-mode OPAQUE system over an in-memory server.
func DefaultConfig() Config {
	cfg := Config{
		Server:     server.DefaultConfig(),
		Obfuscator: obfsvc.DefaultConfig(),
	}
	// In-process experiments submit synchronous batches; no need for a
	// wall-clock batching window by default.
	cfg.Obfuscator.BatchWindow = 0
	return cfg
}

// System is a fully wired in-process OPAQUE deployment.
type System struct {
	Graph      *roadnet.Graph
	Server     *server.Server
	Obfuscator *obfsvc.Service
	cfg        Config
}

// NewSystem wires a system over graph g. The obfuscator uses the same graph
// as its simple road map; a deployment with a coarser obfuscator map can use
// NewSystemWithMaps.
func NewSystem(g *roadnet.Graph, cfg Config) (*System, error) {
	return NewSystemWithMaps(g, g, cfg)
}

// NewSystemWithMaps wires a system where the server and the obfuscator hold
// different road maps (the paper notes the obfuscator's map is a simple one
// without live traffic).
func NewSystemWithMaps(serverMap, obfuscatorMap *roadnet.Graph, cfg Config) (*System, error) {
	srv, err := server.New(serverMap, cfg.Server)
	if err != nil {
		return nil, fmt.Errorf("core: building server: %w", err)
	}
	svc, err := obfsvc.New(obfuscatorMap, serverExecutor{srv}, cfg.Obfuscator)
	if err != nil {
		return nil, fmt.Errorf("core: building obfuscator service: %w", err)
	}
	return &System{Graph: serverMap, Server: srv, Obfuscator: svc, cfg: cfg}, nil
}

// MustNewSystem is NewSystem but panics on error.
func MustNewSystem(g *roadnet.Graph, cfg Config) *System {
	s, err := NewSystem(g, cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// serverExecutor adapts the in-process server to obfsvc.BatchExecutor, so the
// obfuscator hands whole obfuscation plans to the server's batch engine
// (shared SSMD trees, worker-pool evaluation) instead of one query at a time.
type serverExecutor struct{ srv *server.Server }

// Execute implements obfsvc.QueryExecutor.
func (e serverExecutor) Execute(q protocol.ServerQuery) (protocol.ServerReply, error) {
	return e.srv.Evaluate(q)
}

// ExecuteBatch implements obfsvc.BatchExecutor.
func (e serverExecutor) ExecuteBatch(qs []protocol.ServerQuery) ([]protocol.ServerReply, []error) {
	results := e.srv.EvaluateBatch(qs)
	replies := make([]protocol.ServerReply, len(results))
	errs := make([]error, len(results))
	for i, r := range results {
		replies[i] = r.Reply
		errs[i] = r.Err
	}
	return replies, errs
}

// NewClient returns a client for the given user wired to the system's
// obfuscator.
func (s *System) NewClient(user string, opts ...client.Option) (*client.Client, error) {
	return client.NewLocal(user, s.Obfuscator, opts...)
}

// DirectClient returns a no-privacy client that queries the server directly.
func (s *System) DirectClient() *client.DirectClient {
	return client.MustNewDirect(obfsvc.ExecutorFunc(s.Server.Evaluate))
}

// ProcessBatch runs a batch of requests through the full OPAQUE pipeline
// (obfuscate → evaluate → filter) and returns one result per request.
func (s *System) ProcessBatch(batch []obfuscate.Request) ([]obfsvc.ClientResult, error) {
	return s.Obfuscator.ProcessBatch(batch)
}

// Config returns the system configuration.
func (s *System) Config() Config { return s.cfg }

// QuickSystem builds a complete demo system on a freshly generated network:
// the quickest way to get a runnable OPAQUE deployment, used by the
// quickstart example and documentation snippets.
func QuickSystem(networkCfg gen.NetworkConfig, cfg Config) (*System, error) {
	g, err := gen.Generate(networkCfg)
	if err != nil {
		return nil, fmt.Errorf("core: generating network: %w", err)
	}
	return NewSystem(g, cfg)
}

// Mechanism adapts the full OPAQUE pipeline to the baseline.Mechanism
// interface so experiment E1 can tabulate it alongside the Section II
// techniques. Each Run processes the request as a batch of one through the
// obfuscator (independent obfuscation semantics); SharedMechanism covers the
// shared variant, which needs whole batches.
type Mechanism struct {
	sys  *System
	name string
}

// NewMechanism wraps the system as a baseline mechanism named
// "opaque-<mode>".
func NewMechanism(sys *System) *Mechanism {
	mode := sys.cfg.Obfuscator.Obfuscation.Mode
	if mode == "" {
		mode = obfuscate.Shared
	}
	return &Mechanism{sys: sys, name: "opaque-" + string(mode)}
}

// Name implements baseline.Mechanism.
func (m *Mechanism) Name() string { return m.name }

// Run implements baseline.Mechanism.
func (m *Mechanism) Run(req obfuscate.Request, trueCost float64) (baseline.Outcome, error) {
	before, beforeQueries := m.sys.Server.TotalStats()
	ioBefore := m.sys.Server.IOStats()
	results, err := m.sys.ProcessBatch([]obfuscate.Request{req})
	if err != nil {
		return baseline.Outcome{}, err
	}
	after, afterQueries := m.sys.Server.TotalStats()
	ioAfter := m.sys.Server.IOStats()
	res := results[0]
	if res.Err != nil {
		return baseline.Outcome{}, res.Err
	}
	fs, ft := req.FS, req.FT
	if fs < 1 {
		fs = 1
	}
	if ft < 1 {
		ft = 1
	}
	out := baseline.Outcome{
		Mechanism:          m.name,
		ExactPath:          res.Found,
		ResultCost:         res.Path.Cost,
		TrueCost:           trueCost,
		BreachProbability:  obfuscate.BreachProbability(fs, ft),
		ServerSettledNodes: after.SettledNodes - before.SettledNodes,
		ServerPageFaults:   ioAfter.Faults - ioBefore.Faults,
		CandidatePairs:     fs * ft,
	}
	_ = beforeQueries
	_ = afterQueries
	if !res.Found {
		out.ResultCost = trueCost // unreachable in both views
	}
	return out, nil
}

// EvaluateObfuscatedQuery is a convenience wrapper evaluating one Q(S, T)
// directly against the system's server; experiments that construct obfuscated
// queries by hand use it.
func (s *System) EvaluateObfuscatedQuery(q obfuscate.ObfuscatedQuery) (search.MSMDResult, error) {
	reply, err := s.Server.Evaluate(protocol.ServerQuery{Sources: q.Sources, Dests: q.Dests})
	if err != nil {
		return search.MSMDResult{}, err
	}
	res := search.MSMDResult{
		Sources: append([]roadnet.NodeID(nil), q.Sources...),
		Dests:   append([]roadnet.NodeID(nil), q.Dests...),
		Paths:   make([][]search.Path, len(q.Sources)),
		Dists:   make([][]float64, len(q.Sources)),
	}
	res.Stats.SettledNodes = reply.SettledNodes
	index := make(map[[2]roadnet.NodeID]search.Path, len(reply.Paths))
	for _, c := range reply.Paths {
		index[[2]roadnet.NodeID{c.Source, c.Dest}] = protocol.PathFromCandidate(c)
	}
	for i, src := range q.Sources {
		res.Paths[i] = make([]search.Path, len(q.Dests))
		res.Dists[i] = make([]float64, len(q.Dests))
		for j, dst := range q.Dests {
			p := index[[2]roadnet.NodeID{src, dst}]
			res.Paths[i][j] = p
			// Wire candidates carry no cost for unreachable pairs; mirror
			// the processor's Dists convention (+Inf, 0 for s == t).
			if p.Empty() && src != dst {
				res.Dists[i][j] = math.Inf(1)
			} else {
				res.Dists[i][j] = p.Cost
			}
		}
	}
	return res, nil
}
