package core

import (
	"math"
	"testing"

	"opaque/internal/gen"
	"opaque/internal/obfuscate"
	"opaque/internal/roadnet"
	"opaque/internal/search"
	"opaque/internal/server"
	"opaque/internal/storage"
)

func testGraph(t testing.TB) *roadnet.Graph {
	t.Helper()
	cfg := gen.DefaultNetworkConfig()
	cfg.Nodes = 900
	cfg.Seed = 121
	return gen.MustGenerate(cfg)
}

func testConfig(g *roadnet.Graph, mode obfuscate.Mode) Config {
	cfg := DefaultConfig()
	cfg.Obfuscator.Obfuscation.Mode = mode
	minX, minY, maxX, maxY := g.Bounds()
	extent := math.Max(maxX-minX, maxY-minY)
	cfg.Obfuscator.Obfuscation.Selector = obfuscate.MustNewRingBandSelector(0.02*extent, 0.2*extent, 123)
	return cfg
}

func TestNewSystemValidation(t *testing.T) {
	g := testGraph(t)
	bad := DefaultConfig()
	bad.Server.Paged = true
	bad.Server.PageConfig.NodesPerPage = 0
	if _, err := NewSystem(g, bad); err == nil {
		t.Error("bad server config accepted")
	}
	bad2 := DefaultConfig()
	bad2.Obfuscator.Obfuscation.Selector = nil
	if _, err := NewSystem(g, bad2); err == nil {
		t.Error("bad obfuscator config accepted")
	}
}

func TestSystemEndToEnd(t *testing.T) {
	g := testGraph(t)
	sys := MustNewSystem(g, testConfig(g, obfuscate.Shared))
	alice, err := sys.NewClient("alice")
	if err != nil {
		t.Fatal(err)
	}
	wl := gen.MustGenerateWorkload(g, gen.WorkloadConfig{Kind: gen.Uniform, Queries: 5, Seed: 125})
	acc := storage.NewMemoryGraph(g)
	for _, pr := range wl {
		res, err := alice.QueryWithProtection(pr.Source, pr.Dest, 3, 3)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Found {
			t.Fatalf("no path for %d->%d", pr.Source, pr.Dest)
		}
		truth, _, err := search.Dijkstra(acc, pr.Source, pr.Dest)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(truth.Cost-res.Path.Cost) > 1e-6 {
			t.Errorf("OPAQUE path cost %v, shortest %v", res.Path.Cost, truth.Cost)
		}
	}
	// Every query in the server log must satisfy the 3x3 protection.
	for _, entry := range sys.Server.QueryLog() {
		if len(entry.Sources) < 3 || len(entry.Dests) < 3 {
			t.Errorf("server saw |S|=%d |T|=%d, below the 3x3 protection", len(entry.Sources), len(entry.Dests))
		}
	}
}

func TestSystemWithDifferentMaps(t *testing.T) {
	serverMap := testGraph(t)
	// The obfuscator holds a coarser map: same nodes, perturbed costs.
	obfMap := serverMap.Clone()
	obfMap.Freeze()
	cfg := testConfig(serverMap, obfuscate.Independent)
	sys, err := NewSystemWithMaps(serverMap, obfMap, cfg)
	if err != nil {
		t.Fatal(err)
	}
	wl := gen.MustGenerateWorkload(serverMap, gen.WorkloadConfig{Kind: gen.Uniform, Queries: 3, Seed: 127})
	batch := []obfuscate.Request{{User: "a", Source: wl[0].Source, Dest: wl[0].Dest, FS: 2, FT: 2}}
	results, err := sys.ProcessBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	if !results[0].Found {
		t.Error("path not found with split maps")
	}
}

func TestQuickSystem(t *testing.T) {
	netCfg := gen.DefaultNetworkConfig()
	netCfg.Nodes = 400
	sys, err := QuickSystem(netCfg, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if sys.Graph.NumNodes() == 0 {
		t.Error("QuickSystem produced an empty graph")
	}
	badNet := netCfg
	badNet.Nodes = 0
	if _, err := QuickSystem(badNet, DefaultConfig()); err == nil {
		t.Error("QuickSystem accepted an invalid network config")
	}
}

func TestDirectClientBypassesObfuscation(t *testing.T) {
	g := testGraph(t)
	sys := MustNewSystem(g, testConfig(g, obfuscate.Shared))
	direct := sys.DirectClient()
	wl := gen.MustGenerateWorkload(g, gen.WorkloadConfig{Kind: gen.Uniform, Queries: 1, Seed: 129})
	res, err := direct.Query(wl[0].Source, wl[0].Dest)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Error("direct query found no path")
	}
	log := sys.Server.QueryLog()
	if len(log) != 1 || len(log[0].Sources) != 1 || len(log[0].Dests) != 1 {
		t.Errorf("direct query should appear as a bare 1x1 query, log = %+v", log)
	}
}

func TestMechanismAdapter(t *testing.T) {
	g := testGraph(t)
	cfg := testConfig(g, obfuscate.Independent)
	cfg.Server = server.DefaultConfig()
	cfg.Server.Paged = true
	sys := MustNewSystem(g, cfg)
	mech := NewMechanism(sys)
	if mech.Name() != "opaque-independent" {
		t.Errorf("Name = %q", mech.Name())
	}
	wl := gen.MustGenerateWorkload(g, gen.WorkloadConfig{Kind: gen.Uniform, Queries: 3, Seed: 131})
	acc := storage.NewMemoryGraph(g)
	for i, pr := range wl {
		trueCost, err := search.DijkstraDistance(acc, pr.Source, pr.Dest)
		if err != nil {
			t.Fatal(err)
		}
		out, err := mech.Run(obfuscate.Request{User: obfuscate.UserID(string(rune('a' + i))), Source: pr.Source, Dest: pr.Dest, FS: 2, FT: 2}, trueCost)
		if err != nil {
			t.Fatal(err)
		}
		if !out.ExactPath {
			t.Errorf("request %d: OPAQUE mechanism must return the exact path", i)
		}
		if math.Abs(out.BreachProbability-0.25) > 1e-9 {
			t.Errorf("request %d: breach = %v, want 0.25", i, out.BreachProbability)
		}
		if out.ServerSettledNodes <= 0 {
			t.Errorf("request %d: no server work recorded", i)
		}
		if out.CandidatePairs != 4 {
			t.Errorf("request %d: candidate pairs = %d, want 4", i, out.CandidatePairs)
		}
	}
}

func TestEvaluateObfuscatedQuery(t *testing.T) {
	g := testGraph(t)
	sys := MustNewSystem(g, testConfig(g, obfuscate.Independent))
	q := obfuscate.ObfuscatedQuery{
		Sources: []roadnet.NodeID{0, 5},
		Dests:   []roadnet.NodeID{100, 200},
	}
	res, err := sys.EvaluateObfuscatedQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumCandidates() != 4 {
		t.Errorf("candidates = %d, want 4", res.NumCandidates())
	}
	acc := storage.NewMemoryGraph(g)
	for i, s := range q.Sources {
		for j, d := range q.Dests {
			truth, _, err := search.Dijkstra(acc, s, d)
			if err != nil {
				t.Fatal(err)
			}
			if !truth.Empty() && math.Abs(truth.Cost-res.Paths[i][j].Cost) > 1e-6 {
				t.Errorf("pair (%d,%d): cost %v, want %v", s, d, res.Paths[i][j].Cost, truth.Cost)
			}
		}
	}
}
