package core

import (
	"fmt"
	"math"
	"net"
	"sync"
	"testing"

	"opaque/internal/client"
	"opaque/internal/gen"
	"opaque/internal/obfsvc"
	"opaque/internal/obfuscate"
	"opaque/internal/protocol"
	"opaque/internal/search"
	"opaque/internal/server"
	"opaque/internal/storage"
)

// TestNetworkedDeploymentEndToEnd stands up the full three-role deployment
// over loopback TCP — directions search server, trusted obfuscator, multiple
// concurrent clients — and checks that every client receives its exact
// shortest path while the server only ever observes obfuscated queries. It is
// the integration test behind examples/networked and the cmd/ binaries.
func TestNetworkedDeploymentEndToEnd(t *testing.T) {
	g := testGraph(t)

	// Directions search server on a loopback listener.
	srv := server.MustNew(g, server.DefaultConfig())
	srvLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srvLn.Close()
	go func() { _ = srv.ServeMux(srvLn, protocol.MuxServerConfig{}) }()

	// Obfuscator connected to the server over the multiplexed transport.
	exec, err := obfsvc.DialMuxExecutor(srvLn.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer exec.Close()
	obfCfg := obfsvc.DefaultConfig()
	obfCfg.BatchWindow = 0
	obfCfg.Obfuscation.Mode = obfuscate.Independent
	obfCfg.Obfuscation.Selector = testConfig(g, obfuscate.Independent).Obfuscator.Obfuscation.Selector
	svc, err := obfsvc.New(g, exec, obfCfg)
	if err != nil {
		t.Fatal(err)
	}
	obfLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer obfLn.Close()
	go func() { _ = svc.ServeMux(obfLn, protocol.MuxServerConfig{}) }()

	// Several concurrent clients, each with its own TCP connection.
	wl := gen.MustGenerateWorkload(g, gen.WorkloadConfig{Kind: gen.Uniform, Queries: 6, Seed: 137})
	acc := storage.NewMemoryGraph(g)
	var wg sync.WaitGroup
	errCh := make(chan error, len(wl))
	for i, pr := range wl {
		wg.Add(1)
		go func(i int, pr gen.QueryPair) {
			defer wg.Done()
			c, err := client.Dial(fmt.Sprintf("user-%d", i), obfLn.Addr().String(), client.WithProtection(2, 3))
			if err != nil {
				errCh <- err
				return
			}
			defer c.Close()
			res, err := c.Query(pr.Source, pr.Dest)
			if err != nil {
				errCh <- err
				return
			}
			if !res.Found {
				errCh <- fmt.Errorf("no path for %d->%d", pr.Source, pr.Dest)
				return
			}
			truth, _, err := search.Dijkstra(acc, pr.Source, pr.Dest)
			if err != nil {
				errCh <- err
				return
			}
			if math.Abs(truth.Cost-res.Path.Cost) > 1e-6 {
				errCh <- fmt.Errorf("query %d: got cost %v, want %v", i, res.Path.Cost, truth.Cost)
			}
		}(i, pr)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	// Privacy check at the server: every logged query satisfies the 2x3
	// protection the clients requested.
	log := srv.QueryLog()
	if len(log) != len(wl) {
		t.Fatalf("server logged %d queries, want %d", len(log), len(wl))
	}
	for _, entry := range log {
		if len(entry.Sources) < 2 || len(entry.Dests) < 3 {
			t.Errorf("server saw an under-protected query |S|=%d |T|=%d", len(entry.Sources), len(entry.Dests))
		}
	}
	// Both components recorded their instrumentation.
	if srv.Metrics().Counter("queries_processed") != int64(len(wl)) {
		t.Errorf("server metrics recorded %d queries, want %d", srv.Metrics().Counter("queries_processed"), len(wl))
	}
	if svc.Metrics().Counter("requests") != int64(len(wl)) {
		t.Errorf("obfuscator metrics recorded %d requests, want %d", svc.Metrics().Counter("requests"), len(wl))
	}
}
