// Package roadnet models a road network as a weighted graph embedded in the
// plane, following the model of Section III-A of the OPAQUE paper: a graph
// G(N, E) whose nodes are road intersections (with planar coordinates) and
// whose edges are road segments carrying a non-negative travel cost.
//
// The package provides:
//
//   - a graph with stable integer node identifiers whose adjacency is stored
//     in compressed sparse row (CSR) form once frozen: one flat arc array
//     plus per-node offsets, so arc iteration is a contiguous scan with no
//     per-node allocation (ForEachArc / Arcs),
//   - a lazily built reverse CSR adjacency (ReverseArcs) for backward
//     traversals and weak-connectivity analysis,
//   - a spatial grid index for nearest-node and range lookups,
//   - connectivity analysis (components, reachability),
//   - text and binary (gob) serialization.
//
// All other OPAQUE packages (search, storage, obfuscation, …) are built on
// top of this package. The CSR layout is what the query hot path of
// internal/search leans on: the inner relax loop of every Dijkstra-family
// search walks g.arcs[offsets[u]:offsets[u+1]] directly and never
// materialises per-node adjacency slices on the heap.
package roadnet

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// NodeID identifies a node in a Graph. IDs are dense: a graph with n nodes
// uses IDs 0..n-1. InvalidNode marks "no node".
type NodeID int32

// InvalidNode is returned by lookups that find no node.
const InvalidNode NodeID = -1

// Node is a road intersection (or address point) embedded in the plane.
// Weight is an application-defined popularity/association weight used by the
// density-aware obfuscation strategy and by the adversary's prior model; it
// defaults to 1.
type Node struct {
	ID     NodeID
	X, Y   float64
	Weight float64
}

// Edge is a directed road segment from From to To with a non-negative cost
// (travel distance, time or toll).
type Edge struct {
	From NodeID
	To   NodeID
	Cost float64
}

// Arc is the adjacency-list entry stored per node: the head node and the
// traversal cost.
type Arc struct {
	To   NodeID
	Cost float64
}

// Graph is a weighted directed graph embedded in the plane. Road networks are
// usually symmetric; AddBidirectionalEdge inserts both directions. Graph is
// immutable once Freeze has been called; all search code operates on frozen
// graphs, which guarantees the CSR arrays are built and index lookups are
// valid.
type Graph struct {
	nodes []Node
	// adjacency in compressed sparse row form, built by Freeze.
	offsets []int32
	arcs    []Arc
	// staging adjacency used while the graph is mutable.
	staging [][]Arc
	frozen  bool

	// reverse adjacency in CSR form, built lazily on first use (frozen
	// graphs only): revArcs[revOffsets[v]:revOffsets[v+1]] are the arcs
	// entering v, each stored with To = the predecessor node.
	revOnce    sync.Once
	revOffsets []int32
	revArcs    []Arc

	// bounding box, maintained incrementally.
	minX, minY, maxX, maxY float64

	grid *gridIndex

	// cached topology/content checksums (checksum.go), populated lazily on
	// frozen graphs and seeded incrementally by WithUpdatedWeights.
	csum csumCache
}

// NewGraph returns an empty mutable graph with capacity hints for n nodes and
// m directed edges.
func NewGraph(n, m int) *Graph {
	g := &Graph{
		nodes:   make([]Node, 0, n),
		staging: make([][]Arc, 0, n),
		minX:    math.Inf(1),
		minY:    math.Inf(1),
		maxX:    math.Inf(-1),
		maxY:    math.Inf(-1),
	}
	_ = m
	return g
}

// AddNode appends a node at (x, y) with unit weight and returns its ID.
func (g *Graph) AddNode(x, y float64) NodeID {
	return g.AddWeightedNode(x, y, 1)
}

// AddWeightedNode appends a node at (x, y) with the given association weight
// and returns its ID.
func (g *Graph) AddWeightedNode(x, y, weight float64) NodeID {
	if g.frozen {
		panic("roadnet: AddWeightedNode on frozen graph")
	}
	id := NodeID(len(g.nodes))
	g.nodes = append(g.nodes, Node{ID: id, X: x, Y: y, Weight: weight})
	g.staging = append(g.staging, nil)
	if x < g.minX {
		g.minX = x
	}
	if y < g.minY {
		g.minY = y
	}
	if x > g.maxX {
		g.maxX = x
	}
	if y > g.maxY {
		g.maxY = y
	}
	return id
}

// AddEdge inserts a directed edge. It returns an error if either endpoint is
// out of range or the cost is negative or not finite.
func (g *Graph) AddEdge(from, to NodeID, cost float64) error {
	if g.frozen {
		return fmt.Errorf("roadnet: AddEdge on frozen graph")
	}
	if !g.validID(from) || !g.validID(to) {
		return fmt.Errorf("roadnet: edge (%d,%d) references unknown node (have %d nodes)", from, to, len(g.nodes))
	}
	if cost < 0 || math.IsNaN(cost) || math.IsInf(cost, 0) {
		return fmt.Errorf("roadnet: edge (%d,%d) has invalid cost %v", from, to, cost)
	}
	g.staging[from] = append(g.staging[from], Arc{To: to, Cost: cost})
	return nil
}

// AddBidirectionalEdge inserts the edge in both directions with the same cost.
func (g *Graph) AddBidirectionalEdge(a, b NodeID, cost float64) error {
	if err := g.AddEdge(a, b, cost); err != nil {
		return err
	}
	return g.AddEdge(b, a, cost)
}

// MustAddEdge is AddEdge but panics on error; intended for generators whose
// inputs are valid by construction.
func (g *Graph) MustAddEdge(from, to NodeID, cost float64) {
	if err := g.AddEdge(from, to, cost); err != nil {
		panic(err)
	}
}

// MustAddBidirectionalEdge is AddBidirectionalEdge but panics on error.
func (g *Graph) MustAddBidirectionalEdge(a, b NodeID, cost float64) {
	if err := g.AddBidirectionalEdge(a, b, cost); err != nil {
		panic(err)
	}
}

// Freeze converts the staged adjacency lists into compressed sparse row form,
// builds the spatial index and marks the graph immutable. Freeze is
// idempotent.
func (g *Graph) Freeze() {
	if g.frozen {
		return
	}
	n := len(g.nodes)
	g.offsets = make([]int32, n+1)
	total := 0
	for i := 0; i < n; i++ {
		// Deterministic arc order: by head node then cost.
		arcs := g.staging[i]
		sort.Slice(arcs, func(a, b int) bool {
			if arcs[a].To != arcs[b].To {
				return arcs[a].To < arcs[b].To
			}
			return arcs[a].Cost < arcs[b].Cost
		})
		total += len(arcs)
	}
	g.arcs = make([]Arc, 0, total)
	for i := 0; i < n; i++ {
		g.offsets[i] = int32(len(g.arcs))
		g.arcs = append(g.arcs, g.staging[i]...)
	}
	g.offsets[n] = int32(len(g.arcs))
	g.staging = nil
	g.frozen = true
	g.grid = buildGridIndex(g)
}

// Frozen reports whether Freeze has been called.
func (g *Graph) Frozen() bool { return g.frozen }

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumArcs returns the number of directed arcs. Valid only after Freeze.
func (g *Graph) NumArcs() int {
	if !g.frozen {
		n := 0
		for _, s := range g.staging {
			n += len(s)
		}
		return n
	}
	return len(g.arcs)
}

// Node returns the node with the given ID.
func (g *Graph) Node(id NodeID) Node {
	return g.nodes[id]
}

// Nodes returns the backing node slice. Callers must not modify it.
func (g *Graph) Nodes() []Node { return g.nodes }

// Arcs returns the outgoing arcs of node id. The returned slice aliases the
// graph's internal storage and must not be modified. Valid only after Freeze.
func (g *Graph) Arcs(id NodeID) []Arc {
	if !g.frozen {
		return g.staging[id]
	}
	return g.arcs[g.offsets[id]:g.offsets[id+1]]
}

// ForEachArc calls yield for every outgoing arc of id in adjacency order,
// stopping early when yield returns false. On a frozen graph this walks the
// CSR arc array directly; it is the allocation-free iteration the search hot
// path uses.
func (g *Graph) ForEachArc(id NodeID, yield func(Arc) bool) {
	for _, a := range g.Arcs(id) {
		if !yield(a) {
			return
		}
	}
}

// ensureReverse builds the reverse CSR adjacency on first use. It requires a
// frozen graph: the reverse layout is derived from the forward CSR arrays.
// The index costs as much memory as the forward arc array and is retained
// for the graph's lifetime — the deliberate trade for making every later
// reverse traversal (connectivity analysis, backward searches) a contiguous
// array scan instead of a per-call slice-of-slices rebuild.
func (g *Graph) ensureReverse() {
	if !g.frozen {
		panic("roadnet: reverse adjacency requires a frozen graph")
	}
	g.revOnce.Do(func() {
		n := len(g.nodes)
		g.revOffsets = make([]int32, n+1)
		for _, a := range g.arcs {
			g.revOffsets[a.To+1]++
		}
		for v := 0; v < n; v++ {
			g.revOffsets[v+1] += g.revOffsets[v]
		}
		g.revArcs = make([]Arc, len(g.arcs))
		next := make([]int32, n)
		copy(next, g.revOffsets[:n])
		// Iterating sources in ascending order keeps each reverse list
		// sorted by predecessor ID, matching the order a per-node rebuild
		// would produce.
		for u := 0; u < n; u++ {
			for _, a := range g.arcs[g.offsets[u]:g.offsets[u+1]] {
				g.revArcs[next[a.To]] = Arc{To: NodeID(u), Cost: a.Cost}
				next[a.To]++
			}
		}
	})
}

// ReverseArcs returns the incoming arcs of node id as Arc values whose To
// field holds the predecessor node. The returned slice aliases the graph's
// reverse CSR storage and must not be modified. Valid only after Freeze; the
// reverse layout is built once, on first use, and shared by all callers.
func (g *Graph) ReverseArcs(id NodeID) []Arc {
	g.ensureReverse()
	return g.revArcs[g.revOffsets[id]:g.revOffsets[id+1]]
}

// ForEachReverseArc calls yield for every incoming arc of id (To = the
// predecessor), stopping early when yield returns false. Valid only after
// Freeze.
func (g *Graph) ForEachReverseArc(id NodeID, yield func(Arc) bool) {
	for _, a := range g.ReverseArcs(id) {
		if !yield(a) {
			return
		}
	}
}

// InDegree returns the in-degree of node id. Valid only after Freeze.
func (g *Graph) InDegree(id NodeID) int { return len(g.ReverseArcs(id)) }

// Degree returns the out-degree of node id.
func (g *Graph) Degree(id NodeID) int { return len(g.Arcs(id)) }

// ArcCost returns the cost of the cheapest arc from "from" to "to" and true,
// or 0 and false when no such arc exists.
func (g *Graph) ArcCost(from, to NodeID) (float64, bool) {
	best := math.Inf(1)
	found := false
	for _, a := range g.Arcs(from) {
		if a.To == to && a.Cost < best {
			best = a.Cost
			found = true
		}
	}
	if !found {
		return 0, false
	}
	return best, true
}

// Bounds returns the bounding box (minX, minY, maxX, maxY) of all nodes. For
// an empty graph it returns zeroes.
func (g *Graph) Bounds() (minX, minY, maxX, maxY float64) {
	if len(g.nodes) == 0 {
		return 0, 0, 0, 0
	}
	return g.minX, g.minY, g.maxX, g.maxY
}

// Euclid returns the Euclidean distance between nodes a and b. It is the
// admissible heuristic used by A* when edge costs are planar distances.
func (g *Graph) Euclid(a, b NodeID) float64 {
	na, nb := g.nodes[a], g.nodes[b]
	dx, dy := na.X-nb.X, na.Y-nb.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// validID reports whether id references an existing node.
func (g *Graph) validID(id NodeID) bool {
	return id >= 0 && int(id) < len(g.nodes)
}

// ValidNode reports whether id references an existing node.
func (g *Graph) ValidNode(id NodeID) bool { return g.validID(id) }

// Reverse returns a new frozen graph with every arc reversed. Node IDs,
// coordinates and weights are preserved. Useful for backward searches.
func (g *Graph) Reverse() *Graph {
	r := NewGraph(g.NumNodes(), g.NumArcs())
	for _, n := range g.nodes {
		r.AddWeightedNode(n.X, n.Y, n.Weight)
	}
	for _, n := range g.nodes {
		for _, a := range g.Arcs(n.ID) {
			r.MustAddEdge(a.To, n.ID, a.Cost)
		}
	}
	r.Freeze()
	return r
}

// Clone returns a deep, mutable copy of the graph (unfrozen).
func (g *Graph) Clone() *Graph {
	c := NewGraph(g.NumNodes(), g.NumArcs())
	for _, n := range g.nodes {
		c.AddWeightedNode(n.X, n.Y, n.Weight)
	}
	for _, n := range g.nodes {
		for _, a := range g.Arcs(n.ID) {
			c.MustAddEdge(n.ID, a.To, a.Cost)
		}
	}
	return c
}

// String summarises the graph.
func (g *Graph) String() string {
	return fmt.Sprintf("roadnet.Graph{nodes: %d, arcs: %d, frozen: %v}", g.NumNodes(), g.NumArcs(), g.frozen)
}
