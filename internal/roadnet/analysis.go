package roadnet

import "fmt"

// ConnectedComponents returns, for every node, the identifier of its weakly
// connected component and the number of components. Components are numbered
// 0..k-1 in order of discovery from node 0 upward.
//
// Arcs are treated as undirected for "weak" connectivity. Road generators
// produce symmetric arcs, so following out-arcs alone is usually sufficient,
// but imported graphs may be asymmetric; the union with the reverse adjacency
// keeps the analysis correct for those too. On a frozen graph the reverse
// direction comes from the shared reverse CSR layout (ReverseArcs), so
// repeated calls — ComputeStats, IsConnected, generator validation — pay for
// the reverse index once instead of rebuilding a [][]NodeID slice-of-slices
// per call.
func (g *Graph) ConnectedComponents() (comp []int, count int) {
	n := g.NumNodes()
	comp = make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	// On a mutable (unfrozen) graph the CSR arrays do not exist yet; fall
	// back to a transient per-call reverse index.
	var staged [][]NodeID
	if !g.frozen {
		staged = make([][]NodeID, n)
		for id := 0; id < n; id++ {
			for _, a := range g.Arcs(NodeID(id)) {
				staged[a.To] = append(staged[a.To], NodeID(id))
			}
		}
	} else {
		g.ensureReverse()
	}
	queue := make([]NodeID, 0, n)
	for start := 0; start < n; start++ {
		if comp[start] != -1 {
			continue
		}
		comp[start] = count
		queue = queue[:0]
		queue = append(queue, NodeID(start))
		for len(queue) > 0 {
			u := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, a := range g.Arcs(u) {
				if comp[a.To] == -1 {
					comp[a.To] = count
					queue = append(queue, a.To)
				}
			}
			if g.frozen {
				for _, a := range g.ReverseArcs(u) {
					if comp[a.To] == -1 {
						comp[a.To] = count
						queue = append(queue, a.To)
					}
				}
			} else {
				for _, v := range staged[u] {
					if comp[v] == -1 {
						comp[v] = count
						queue = append(queue, v)
					}
				}
			}
		}
		count++
	}
	return comp, count
}

// LargestComponent returns the node IDs of the largest weakly connected
// component, in ascending ID order.
func (g *Graph) LargestComponent() []NodeID {
	comp, count := g.ConnectedComponents()
	if count == 0 {
		return nil
	}
	sizes := make([]int, count)
	for _, c := range comp {
		sizes[c]++
	}
	best := 0
	for c, s := range sizes {
		if s > sizes[best] {
			best = c
		}
	}
	out := make([]NodeID, 0, sizes[best])
	for id, c := range comp {
		if c == best {
			out = append(out, NodeID(id))
		}
	}
	return out
}

// IsConnected reports whether the graph is weakly connected (a single
// component). The empty graph is considered connected.
func (g *Graph) IsConnected() bool {
	if g.NumNodes() == 0 {
		return true
	}
	_, count := g.ConnectedComponents()
	return count == 1
}

// Validate performs structural sanity checks: every arc references a valid
// node and carries a finite non-negative cost. It returns the first problem
// found, or nil.
func (g *Graph) Validate() error {
	n := g.NumNodes()
	for id := 0; id < n; id++ {
		for _, a := range g.Arcs(NodeID(id)) {
			if !g.validID(a.To) {
				return fmt.Errorf("roadnet: node %d has arc to unknown node %d", id, a.To)
			}
			if a.Cost < 0 {
				return fmt.Errorf("roadnet: arc (%d,%d) has negative cost %v", id, a.To, a.Cost)
			}
		}
	}
	return nil
}

// Stats summarises a graph for reports and logs.
type Stats struct {
	Nodes      int
	Arcs       int
	Components int
	AvgDegree  float64
	MinCost    float64
	MaxCost    float64
	TotalCost  float64
}

// ComputeStats gathers summary statistics about the graph.
func (g *Graph) ComputeStats() Stats {
	s := Stats{Nodes: g.NumNodes(), Arcs: g.NumArcs()}
	if s.Nodes > 0 {
		s.AvgDegree = float64(s.Arcs) / float64(s.Nodes)
	}
	first := true
	for id := 0; id < s.Nodes; id++ {
		for _, a := range g.Arcs(NodeID(id)) {
			if first {
				s.MinCost, s.MaxCost = a.Cost, a.Cost
				first = false
			}
			if a.Cost < s.MinCost {
				s.MinCost = a.Cost
			}
			if a.Cost > s.MaxCost {
				s.MaxCost = a.Cost
			}
			s.TotalCost += a.Cost
		}
	}
	_, s.Components = g.ConnectedComponents()
	return s
}
