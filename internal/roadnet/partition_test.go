package roadnet

import (
	"math/rand"
	"testing"
)

// partitionTestGraph builds a frozen random geometric-ish graph: n nodes on
// a jittered grid, ring connectivity plus extra random bidirectional edges.
func partitionTestGraph(tb testing.TB, n, extra int, seed int64) *Graph {
	tb.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := NewGraph(n, 2*(n+extra))
	for i := 0; i < n; i++ {
		g.AddNode(rng.Float64()*100, rng.Float64()*100)
	}
	for i := 0; i < n; i++ {
		g.MustAddBidirectionalEdge(NodeID(i), NodeID((i+1)%n), 1+rng.Float64()*9)
	}
	for i := 0; i < extra; i++ {
		a := NodeID(rng.Intn(n))
		b := NodeID(rng.Intn(n))
		if a == b {
			continue
		}
		g.MustAddBidirectionalEdge(a, b, 1+rng.Float64()*9)
	}
	g.Freeze()
	return g
}

// checkPartitionInvariants asserts the structural contract every partition
// must satisfy against its graph.
func checkPartitionInvariants(tb testing.TB, g *Graph, p *Partition) {
	tb.Helper()
	n := g.NumNodes()
	if p.NumCells() < 1 {
		tb.Fatalf("partition has %d cells", p.NumCells())
	}
	// Every node in exactly one cell: the assignment is total and the
	// per-cell node lists are a disjoint cover.
	seen := make([]int, n)
	for c := 0; c < p.NumCells(); c++ {
		for _, v := range p.CellNodes(c) {
			if p.CellOf(v) != c {
				tb.Fatalf("node %d listed in cell %d but assigned to %d", v, c, p.CellOf(v))
			}
			seen[v]++
		}
	}
	for v, cnt := range seen {
		if cnt != 1 {
			tb.Fatalf("node %d appears in %d cells, want exactly 1", v, cnt)
		}
	}
	// Boundary set is exactly the cut: a node is boundary iff one of its
	// arcs (either direction) crosses cells.
	cut := 0
	arcTotal := 0
	onCut := make([]bool, n)
	for u := 0; u < n; u++ {
		arcTotal += len(g.Arcs(NodeID(u)))
		for _, a := range g.Arcs(NodeID(u)) {
			if p.CellOf(NodeID(u)) != p.CellOf(a.To) {
				cut++
				onCut[u] = true
				onCut[a.To] = true
			}
		}
	}
	nb := 0
	for v := 0; v < n; v++ {
		if onCut[v] != p.IsBoundary(NodeID(v)) {
			tb.Fatalf("node %d boundary=%v, cut incidence=%v", v, p.IsBoundary(NodeID(v)), onCut[v])
		}
		if onCut[v] {
			nb++
		}
	}
	if nb != p.NumBoundary() {
		tb.Fatalf("NumBoundary=%d, recount=%d", p.NumBoundary(), nb)
	}
	if cut != p.CutArcCount() {
		tb.Fatalf("CutArcCount=%d, recount=%d", p.CutArcCount(), cut)
	}
	perCell := 0
	for c := 0; c < p.NumCells(); c++ {
		perCell += p.CellArcCount(c)
	}
	if perCell != arcTotal {
		tb.Fatalf("per-cell arc counts sum to %d, graph has %d arcs", perCell, arcTotal)
	}
}

func TestBuildPartitionDeterministic(t *testing.T) {
	g := partitionTestGraph(t, 300, 200, 7)
	for _, cells := range []int{1, 2, 5, 16} {
		a, err := BuildPartition(g, PartitionConfig{Cells: cells, Seed: 42})
		if err != nil {
			t.Fatalf("BuildPartition(%d): %v", cells, err)
		}
		b, err := BuildPartition(g, PartitionConfig{Cells: cells, Seed: 42})
		if err != nil {
			t.Fatalf("BuildPartition(%d) second run: %v", cells, err)
		}
		for v := 0; v < g.NumNodes(); v++ {
			if a.CellOf(NodeID(v)) != b.CellOf(NodeID(v)) {
				t.Fatalf("cells=%d: node %d assigned to %d then %d with the same seed",
					cells, v, a.CellOf(NodeID(v)), b.CellOf(NodeID(v)))
			}
		}
		checkPartitionInvariants(t, g, a)
		if a.NumCells() != cells {
			t.Fatalf("asked for %d cells, got %d", cells, a.NumCells())
		}
	}
}

func TestBuildPartitionCellBalance(t *testing.T) {
	g := partitionTestGraph(t, 1000, 500, 11)
	p, err := BuildPartition(g, PartitionConfig{Cells: 7, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	checkPartitionInvariants(t, g, p)
	// The weighted median split keeps cells within a factor ~2 of ideal.
	ideal := g.NumNodes() / p.NumCells()
	for c := 0; c < p.NumCells(); c++ {
		size := len(p.CellNodes(c))
		if size < ideal/2 || size > ideal*2 {
			t.Errorf("cell %d has %d nodes, ideal %d", c, size, ideal)
		}
	}
}

func TestBuildPartitionSingleCellHasNoBoundary(t *testing.T) {
	g := partitionTestGraph(t, 64, 40, 3)
	p, err := BuildPartition(g, PartitionConfig{Cells: 1, Seed: 0})
	if err != nil {
		t.Fatal(err)
	}
	checkPartitionInvariants(t, g, p)
	if p.NumBoundary() != 0 || p.CutArcCount() != 0 {
		t.Fatalf("single-cell partition has boundary=%d cut=%d, want 0/0", p.NumBoundary(), p.CutArcCount())
	}
}

func TestBuildPartitionMoreCellsThanNodes(t *testing.T) {
	g := partitionTestGraph(t, 10, 5, 9)
	p, err := BuildPartition(g, PartitionConfig{Cells: 1000, Seed: 0})
	if err != nil {
		t.Fatalf("cells > nodes must clamp, got error: %v", err)
	}
	if p.NumCells() != g.NumNodes() {
		t.Fatalf("got %d cells for %d nodes, want clamp to node count", p.NumCells(), g.NumNodes())
	}
	checkPartitionInvariants(t, g, p)
	for c := 0; c < p.NumCells(); c++ {
		if len(p.CellNodes(c)) != 1 {
			t.Fatalf("cell %d has %d nodes, want exactly 1 after clamp", c, len(p.CellNodes(c)))
		}
	}
}

func TestBuildPartitionRejectsMisuse(t *testing.T) {
	if _, err := BuildPartition(nil, PartitionConfig{Cells: 2}); err == nil {
		t.Fatal("nil graph accepted")
	}
	g := NewGraph(4, 0)
	g.AddNode(0, 0)
	if _, err := BuildPartition(g, PartitionConfig{Cells: 2}); err == nil {
		t.Fatal("unfrozen graph accepted")
	}
}

func TestNewPartitionFromAssignment(t *testing.T) {
	g := partitionTestGraph(t, 20, 10, 5)
	asg := make([]int32, g.NumNodes())
	for v := range asg {
		asg[v] = int32(v % 3)
	}
	p, err := NewPartitionFromAssignment(g, asg, 5) // cells 3 and 4 empty
	if err != nil {
		t.Fatal(err)
	}
	checkPartitionInvariants(t, g, p)
	if len(p.CellNodes(3)) != 0 || len(p.CellNodes(4)) != 0 {
		t.Fatal("expected empty trailing cells")
	}
	// Out-of-range assignment rejected.
	asg[0] = 5
	if _, err := NewPartitionFromAssignment(g, asg, 5); err == nil {
		t.Fatal("out-of-range cell accepted")
	}
	asg[0] = -1
	if _, err := NewPartitionFromAssignment(g, asg, 5); err == nil {
		t.Fatal("negative cell accepted")
	}
	if _, err := NewPartitionFromAssignment(g, asg[:5], 5); err == nil {
		t.Fatal("short assignment accepted")
	}
}

// FuzzBuildPartition drives the partitioner over random graph shapes and
// cell counts and asserts the structural invariants hold: total assignment,
// boundary = cut, per-cell arc counts summing to the arc total.
func FuzzBuildPartition(f *testing.F) {
	f.Add(int64(1), uint16(30), uint16(20), uint16(4))
	f.Add(int64(2), uint16(1), uint16(0), uint16(9))
	f.Add(int64(3), uint16(100), uint16(0), uint16(100))
	f.Add(int64(4), uint16(17), uint16(40), uint16(1))
	f.Fuzz(func(t *testing.T, seed int64, n, extra, cells uint16) {
		nn := int(n%512) + 1
		g := partitionTestGraph(t, nn, int(extra%1024), seed)
		p, err := BuildPartition(g, PartitionConfig{Cells: int(cells), Seed: seed})
		if err != nil {
			t.Fatalf("BuildPartition(n=%d cells=%d): %v", nn, cells, err)
		}
		checkPartitionInvariants(t, g, p)
	})
}
