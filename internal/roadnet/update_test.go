package roadnet

import (
	"math"
	"testing"
)

// updateFixture builds a small frozen graph with a parallel arc pair.
func updateFixture(t *testing.T) *Graph {
	t.Helper()
	g := NewGraph(4, 8)
	for i := 0; i < 4; i++ {
		g.AddNode(float64(i), 0)
	}
	g.MustAddBidirectionalEdge(0, 1, 2)
	g.MustAddBidirectionalEdge(1, 2, 3)
	g.MustAddEdge(2, 3, 5)
	g.MustAddEdge(2, 3, 7) // parallel, more expensive
	g.Freeze()
	return g
}

func TestWithUpdatedWeightsCopyOnWrite(t *testing.T) {
	g := updateFixture(t)
	g2, err := g.WithUpdatedWeights([]ArcWeightChange{{From: 0, To: 1, NewCost: 9}})
	if err != nil {
		t.Fatal(err)
	}
	if c, _ := g.ArcCost(0, 1); c != 2 {
		t.Fatalf("receiver mutated: arc 0→1 cost %v", c)
	}
	if c, _ := g2.ArcCost(0, 1); c != 9 {
		t.Fatalf("derived graph: arc 0→1 cost %v, want 9", c)
	}
	if c, _ := g2.ArcCost(1, 0); c != 2 {
		t.Fatalf("reverse direction changed: arc 1→0 cost %v, want 2", c)
	}
	if !g2.Frozen() || g2.NumNodes() != g.NumNodes() || g2.NumArcs() != g.NumArcs() {
		t.Fatal("derived graph lost shape or frozenness")
	}
	// Reverse CSR of the derived graph reflects the new cost.
	found := false
	for _, a := range g2.ReverseArcs(1) {
		if a.To == 0 && a.Cost == 9 {
			found = true
		}
	}
	if !found {
		t.Fatal("derived graph's reverse adjacency does not carry the new cost")
	}
}

func TestWithUpdatedWeightsParallelArcs(t *testing.T) {
	g := updateFixture(t)
	g2, err := g.WithUpdatedWeights([]ArcWeightChange{{From: 2, To: 3, NewCost: 4}})
	if err != nil {
		t.Fatal(err)
	}
	// Every parallel 2→3 arc takes the new cost.
	for _, a := range g2.Arcs(2) {
		if a.To == 3 && a.Cost != 4 {
			t.Fatalf("parallel arc kept cost %v", a.Cost)
		}
	}
}

func TestWithUpdatedWeightsErrors(t *testing.T) {
	g := updateFixture(t)
	cases := []ArcWeightChange{
		{From: 0, To: 3, NewCost: 1},          // arc does not exist
		{From: 9, To: 1, NewCost: 1},          // unknown node
		{From: 0, To: 1, NewCost: -1},         // negative
		{From: 0, To: 1, NewCost: math.NaN()}, // NaN
		{From: 0, To: 1, NewCost: math.Inf(1)},
	}
	for _, c := range cases {
		if _, err := g.WithUpdatedWeights([]ArcWeightChange{c}); err == nil {
			t.Fatalf("change %+v accepted", c)
		}
	}
	unfrozen := NewGraph(2, 1)
	unfrozen.AddNode(0, 0)
	unfrozen.AddNode(1, 1)
	unfrozen.MustAddEdge(0, 1, 1)
	if _, err := unfrozen.WithUpdatedWeights(nil); err == nil {
		t.Fatal("unfrozen graph accepted")
	}
}

func TestChecksumsSplitTopologyFromContent(t *testing.T) {
	g := updateFixture(t)
	g2, err := g.WithUpdatedWeights([]ArcWeightChange{{From: 1, To: 2, NewCost: 11}})
	if err != nil {
		t.Fatal(err)
	}
	if g.TopologyChecksum() != g2.TopologyChecksum() {
		t.Fatal("weight update moved the topology checksum")
	}
	if g.ContentChecksum() == g2.ContentChecksum() {
		t.Fatal("weight update did not move the content checksum")
	}
	// Round-trip back to the original weights restores the original checksum
	// (XOR-fold property).
	g3, err := g2.WithUpdatedWeights([]ArcWeightChange{{From: 1, To: 2, NewCost: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if g3.ContentChecksum() != g.ContentChecksum() {
		t.Fatal("restoring the weight did not restore the content checksum")
	}
	// Different topology, same sizes → different topology checksum.
	h := NewGraph(4, 8)
	for i := 0; i < 4; i++ {
		h.AddNode(float64(i), 0)
	}
	h.MustAddBidirectionalEdge(0, 2, 2)
	h.MustAddBidirectionalEdge(1, 2, 3)
	h.MustAddEdge(2, 3, 5)
	h.MustAddEdge(2, 3, 7)
	h.Freeze()
	if h.TopologyChecksum() == g.TopologyChecksum() {
		t.Fatal("distinct topologies share a topology checksum")
	}
}
