package roadnet

import (
	"math"
	"testing"
	"testing/quick"
)

// scatterGraph builds a frozen graph with nodes at pseudo-random positions in
// [0,100)² produced from a simple LCG so the test is deterministic.
func scatterGraph(n int) *Graph {
	g := NewGraph(n, 0)
	state := uint64(12345)
	next := func() float64 {
		state = state*6364136223846793005 + 1442695040888963407
		return float64(state>>11) / (1 << 53) * 100
	}
	for i := 0; i < n; i++ {
		g.AddNode(next(), next())
	}
	g.Freeze()
	return g
}

func TestNearestNodeMatchesLinearScan(t *testing.T) {
	g := scatterGraph(500)
	probes := [][2]float64{{0, 0}, {50, 50}, {99, 1}, {-10, 110}, {33.3, 66.6}}
	for _, p := range probes {
		got := g.NearestNode(p[0], p[1])
		want := g.linearNearest(p[0], p[1])
		gd := math.Hypot(g.Node(got).X-p[0], g.Node(got).Y-p[1])
		wd := math.Hypot(g.Node(want).X-p[0], g.Node(want).Y-p[1])
		if math.Abs(gd-wd) > 1e-9 {
			t.Errorf("NearestNode(%v) distance %v, linear scan distance %v", p, gd, wd)
		}
	}
}

// Property: grid-based nearest node always matches the brute-force answer (in
// distance) for arbitrary probe points.
func TestNearestNodeProperty(t *testing.T) {
	g := scatterGraph(200)
	f := func(xRaw, yRaw uint16) bool {
		x := float64(xRaw) / 655.35 // 0..100
		y := float64(yRaw) / 655.35
		got := g.NearestNode(x, y)
		want := g.linearNearest(x, y)
		gd := math.Hypot(g.Node(got).X-x, g.Node(got).Y-y)
		wd := math.Hypot(g.Node(want).X-x, g.Node(want).Y-y)
		return math.Abs(gd-wd) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestNearestNodeEmptyGraph(t *testing.T) {
	g := NewGraph(0, 0)
	g.Freeze()
	if got := g.NearestNode(1, 2); got != InvalidNode {
		t.Errorf("NearestNode on empty graph = %d, want InvalidNode", got)
	}
}

func TestNearestNodeUnfrozenGraphFallsBack(t *testing.T) {
	g := NewGraph(2, 0)
	g.AddNode(0, 0)
	b := g.AddNode(10, 10)
	if got := g.NearestNode(9, 9); got != b {
		t.Errorf("NearestNode on mutable graph = %d, want %d", got, b)
	}
}

func TestNodesWithin(t *testing.T) {
	g := NewGraph(0, 0)
	ids := []NodeID{
		g.AddNode(0, 0),
		g.AddNode(1, 0),
		g.AddNode(3, 0),
		g.AddNode(10, 0),
	}
	g.Freeze()
	got := g.NodesWithin(0, 0, 3.5)
	want := []NodeID{ids[0], ids[1], ids[2]}
	if len(got) != len(want) {
		t.Fatalf("NodesWithin = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("NodesWithin[%d] = %d, want %d (results must be sorted by distance)", i, got[i], want[i])
		}
	}
}

func TestNodesWithinMatchesBruteForce(t *testing.T) {
	g := scatterGraph(300)
	for _, radius := range []float64{5, 20, 60} {
		got := g.NodesWithin(50, 50, radius)
		count := 0
		for _, n := range g.Nodes() {
			if math.Hypot(n.X-50, n.Y-50) <= radius {
				count++
			}
		}
		if len(got) != count {
			t.Errorf("NodesWithin(radius=%v) returned %d nodes, brute force found %d", radius, len(got), count)
		}
		// Results must be sorted by distance.
		for i := 1; i < len(got); i++ {
			d0 := math.Hypot(g.Node(got[i-1]).X-50, g.Node(got[i-1]).Y-50)
			d1 := math.Hypot(g.Node(got[i]).X-50, g.Node(got[i]).Y-50)
			if d0 > d1+1e-9 {
				t.Errorf("NodesWithin results not sorted at index %d", i)
				break
			}
		}
	}
}

func TestNodesInBand(t *testing.T) {
	g := scatterGraph(300)
	inner, outer := 10.0, 30.0
	got := g.NodesInBand(50, 50, inner, outer)
	for _, id := range got {
		d := math.Hypot(g.Node(id).X-50, g.Node(id).Y-50)
		if d < inner-1e-9 || d > outer+1e-9 {
			t.Errorf("node %d at distance %v outside band [%v,%v]", id, d, inner, outer)
		}
	}
	// Every node in the band must be reported.
	count := 0
	for _, n := range g.Nodes() {
		d := math.Hypot(n.X-50, n.Y-50)
		if d >= inner && d <= outer {
			count++
		}
	}
	if len(got) != count {
		t.Errorf("NodesInBand returned %d nodes, brute force found %d", len(got), count)
	}
}

func TestNodesWithinDegenerateGeometry(t *testing.T) {
	// All nodes on one vertical line: the grid has zero width in x.
	g := NewGraph(5, 0)
	for i := 0; i < 5; i++ {
		g.AddNode(7, float64(i))
	}
	g.Freeze()
	if got := g.NodesWithin(7, 0, 2.5); len(got) != 3 {
		t.Errorf("NodesWithin on collinear nodes = %d results, want 3", len(got))
	}
	if got := g.NearestNode(7, 4.4); g.Node(got).Y != 4 {
		t.Errorf("NearestNode on collinear nodes picked y=%v, want 4", g.Node(got).Y)
	}
}
