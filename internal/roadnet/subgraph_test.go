package roadnet

import "testing"

func TestSubgraphWithin(t *testing.T) {
	g := scatterGraph(200).Clone()
	// Add a ring of edges so the extract has arcs to keep.
	for i := 0; i < 200; i++ {
		g.MustAddBidirectionalEdge(NodeID(i), NodeID((i+1)%200), 1)
	}
	g.Freeze()

	sub, mapping := g.SubgraphWithin(25, 25, 75, 75)
	if sub.NumNodes() == 0 {
		t.Fatal("extraction returned no nodes")
	}
	if !sub.Frozen() {
		t.Error("extracted graph must be frozen")
	}
	// Every extracted node lies inside the rectangle and keeps its
	// coordinates and weight.
	for oldID, newID := range mapping {
		o, n := g.Node(oldID), sub.Node(newID)
		if o.X != n.X || o.Y != n.Y || o.Weight != n.Weight {
			t.Errorf("node %d attributes changed: %+v vs %+v", oldID, o, n)
		}
		if n.X < 25 || n.X > 75 || n.Y < 25 || n.Y > 75 {
			t.Errorf("node %d at (%v,%v) outside the rectangle", oldID, n.X, n.Y)
		}
	}
	// No node outside the rectangle is mapped.
	inside := 0
	for _, n := range g.Nodes() {
		if n.X >= 25 && n.X <= 75 && n.Y >= 25 && n.Y <= 75 {
			inside++
		}
	}
	if len(mapping) != inside {
		t.Errorf("mapping covers %d nodes, rectangle contains %d", len(mapping), inside)
	}
	// Arcs: every extracted arc corresponds to an original arc between two
	// extracted nodes, with the same cost.
	reverse := make(map[NodeID]NodeID, len(mapping))
	for oldID, newID := range mapping {
		reverse[newID] = oldID
	}
	for _, n := range sub.Nodes() {
		for _, a := range sub.Arcs(n.ID) {
			origFrom, origTo := reverse[n.ID], reverse[a.To]
			if cost, ok := g.ArcCost(origFrom, origTo); !ok || cost > a.Cost {
				t.Errorf("extracted arc (%d,%d) has no matching original arc", origFrom, origTo)
			}
		}
	}
	if err := sub.Validate(); err != nil {
		t.Errorf("extracted graph invalid: %v", err)
	}
}

func TestSubgraphWithinSwappedBoundsAndEmpty(t *testing.T) {
	g := scatterGraph(50)
	// Swapped bounds are normalised.
	sub, _ := g.SubgraphWithin(80, 80, 20, 20)
	if sub.NumNodes() == 0 {
		t.Error("swapped bounds should still extract the rectangle")
	}
	// A rectangle outside the graph extracts nothing.
	empty, mapping := g.SubgraphWithin(1000, 1000, 2000, 2000)
	if empty.NumNodes() != 0 || len(mapping) != 0 {
		t.Errorf("out-of-range rectangle extracted %d nodes", empty.NumNodes())
	}
}
