package roadnet

import "testing"

func TestConnectedComponents(t *testing.T) {
	g := NewGraph(6, 6)
	for i := 0; i < 6; i++ {
		g.AddNode(float64(i), 0)
	}
	// Component A: 0-1-2, component B: 3-4, isolated: 5.
	g.MustAddBidirectionalEdge(0, 1, 1)
	g.MustAddBidirectionalEdge(1, 2, 1)
	g.MustAddBidirectionalEdge(3, 4, 1)
	g.Freeze()

	comp, count := g.ConnectedComponents()
	if count != 3 {
		t.Fatalf("component count = %d, want 3", count)
	}
	if comp[0] != comp[1] || comp[1] != comp[2] {
		t.Error("nodes 0,1,2 should share a component")
	}
	if comp[3] != comp[4] {
		t.Error("nodes 3,4 should share a component")
	}
	if comp[5] == comp[0] || comp[5] == comp[3] {
		t.Error("node 5 should be its own component")
	}
	if g.IsConnected() {
		t.Error("IsConnected = true for a 3-component graph")
	}

	largest := g.LargestComponent()
	if len(largest) != 3 {
		t.Errorf("LargestComponent size = %d, want 3", len(largest))
	}
}

func TestConnectedComponentsDirectedAsymmetric(t *testing.T) {
	// A one-way chain is still weakly connected.
	g := NewGraph(3, 2)
	for i := 0; i < 3; i++ {
		g.AddNode(float64(i), 0)
	}
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(2, 1, 1)
	g.Freeze()
	if !g.IsConnected() {
		t.Error("weakly connected directed graph reported as disconnected")
	}
}

func TestIsConnectedEmptyAndSingle(t *testing.T) {
	empty := NewGraph(0, 0)
	if !empty.IsConnected() {
		t.Error("empty graph should count as connected")
	}
	single := NewGraph(1, 0)
	single.AddNode(0, 0)
	single.Freeze()
	if !single.IsConnected() {
		t.Error("single-node graph should be connected")
	}
}

func TestValidate(t *testing.T) {
	g := buildTriangle(t)
	if err := g.Validate(); err != nil {
		t.Errorf("Validate on healthy graph: %v", err)
	}
}

func TestComputeStats(t *testing.T) {
	g := buildTriangle(t)
	s := g.ComputeStats()
	if s.Nodes != 3 || s.Arcs != 6 || s.Components != 1 {
		t.Errorf("stats = %+v, want 3 nodes, 6 arcs, 1 component", s)
	}
	if s.MinCost != 1 || s.MaxCost != 5 {
		t.Errorf("cost range = [%v,%v], want [1,5]", s.MinCost, s.MaxCost)
	}
	if s.AvgDegree != 2 {
		t.Errorf("avg degree = %v, want 2", s.AvgDegree)
	}
	if s.TotalCost != 2*(1+2+5) {
		t.Errorf("total cost = %v, want 16", s.TotalCost)
	}
}
