package roadnet

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The text format is a line-oriented exchange format compatible in spirit
// with Tiger/Line derived node/edge lists commonly used by road-network
// papers:
//
//	# comment
//	n <id> <x> <y> [weight]
//	e <from> <to> <cost>
//	b <a> <b> <cost>        (bidirectional edge)
//
// Node lines must appear before any edge referencing them, and node IDs must
// be dense and in increasing order starting at 0 (the usual form of published
// road network files); the reader enforces this so that written files can be
// read back identically.

// WriteText serialises the graph in the text exchange format.
func WriteText(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# roadnet graph: %d nodes, %d arcs\n", g.NumNodes(), g.NumArcs()); err != nil {
		return err
	}
	for _, n := range g.Nodes() {
		if _, err := fmt.Fprintf(bw, "n %d %g %g %g\n", n.ID, n.X, n.Y, n.Weight); err != nil {
			return err
		}
	}
	for _, n := range g.Nodes() {
		for _, a := range g.Arcs(n.ID) {
			if _, err := fmt.Fprintf(bw, "e %d %d %g\n", n.ID, a.To, a.Cost); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadText parses a graph from the text exchange format and returns it
// frozen.
func ReadText(r io.Reader) (*Graph, error) {
	g := NewGraph(0, 0)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "n":
			if len(fields) < 4 {
				return nil, fmt.Errorf("roadnet: line %d: node needs id x y", lineNo)
			}
			id, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("roadnet: line %d: bad node id: %v", lineNo, err)
			}
			if id != g.NumNodes() {
				return nil, fmt.Errorf("roadnet: line %d: node ids must be dense and increasing (got %d, want %d)", lineNo, id, g.NumNodes())
			}
			x, err := strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("roadnet: line %d: bad x: %v", lineNo, err)
			}
			y, err := strconv.ParseFloat(fields[3], 64)
			if err != nil {
				return nil, fmt.Errorf("roadnet: line %d: bad y: %v", lineNo, err)
			}
			w := 1.0
			if len(fields) >= 5 {
				w, err = strconv.ParseFloat(fields[4], 64)
				if err != nil {
					return nil, fmt.Errorf("roadnet: line %d: bad weight: %v", lineNo, err)
				}
			}
			g.AddWeightedNode(x, y, w)
		case "e", "b":
			if len(fields) < 4 {
				return nil, fmt.Errorf("roadnet: line %d: edge needs from to cost", lineNo)
			}
			from, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("roadnet: line %d: bad from: %v", lineNo, err)
			}
			to, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, fmt.Errorf("roadnet: line %d: bad to: %v", lineNo, err)
			}
			cost, err := strconv.ParseFloat(fields[3], 64)
			if err != nil {
				return nil, fmt.Errorf("roadnet: line %d: bad cost: %v", lineNo, err)
			}
			if fields[0] == "e" {
				if err := g.AddEdge(NodeID(from), NodeID(to), cost); err != nil {
					return nil, fmt.Errorf("roadnet: line %d: %v", lineNo, err)
				}
			} else {
				if err := g.AddBidirectionalEdge(NodeID(from), NodeID(to), cost); err != nil {
					return nil, fmt.Errorf("roadnet: line %d: %v", lineNo, err)
				}
			}
		default:
			return nil, fmt.Errorf("roadnet: line %d: unknown record type %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	g.Freeze()
	return g, nil
}

// gobGraph is the gob wire representation of a Graph.
type gobGraph struct {
	Nodes []Node
	Edges []Edge
}

// WriteGob serialises the graph in a compact binary form.
func WriteGob(w io.Writer, g *Graph) error {
	gg := gobGraph{Nodes: g.Nodes()}
	for _, n := range g.Nodes() {
		for _, a := range g.Arcs(n.ID) {
			gg.Edges = append(gg.Edges, Edge{From: n.ID, To: a.To, Cost: a.Cost})
		}
	}
	return gob.NewEncoder(w).Encode(&gg)
}

// ReadGob deserialises a graph written by WriteGob and returns it frozen.
func ReadGob(r io.Reader) (*Graph, error) {
	var gg gobGraph
	if err := gob.NewDecoder(r).Decode(&gg); err != nil {
		return nil, err
	}
	g := NewGraph(len(gg.Nodes), len(gg.Edges))
	for _, n := range gg.Nodes {
		g.AddWeightedNode(n.X, n.Y, n.Weight)
	}
	for _, e := range gg.Edges {
		if err := g.AddEdge(e.From, e.To, e.Cost); err != nil {
			return nil, err
		}
	}
	g.Freeze()
	return g, nil
}
