package roadnet

import (
	"fmt"
	"math"
)

// Live weight updates (traffic, closures-as-high-cost, reopened roads) are
// modelled copy-on-write: a frozen graph never mutates, so every search and
// preprocessed structure in flight keeps reading a consistent snapshot, and
// WithUpdatedWeights derives a new frozen graph that shares everything
// weights cannot change — the node table, the CSR offsets, the spatial grid
// — and owns a fresh arc array with the new costs. Swapping the derived
// graph in (storage.MutableGraph does this atomically) is what makes
// concurrent update + query traffic race-free by construction.

// ArcWeightChange reassigns the cost of every arc From→To. A change applies
// to all parallel arcs between the pair (the update source — a traffic feed
// keyed by road segment — cannot address one parallel lane apart from
// another). Closing a road is modelled as a very large finite cost; arc
// insertion or removal is a topology change and requires rebuilding the
// graph.
type ArcWeightChange struct {
	From, To NodeID
	NewCost  float64
}

// WithUpdatedWeights returns a new frozen graph equal to g except that every
// arc named by changes carries its NewCost. The receiver is not modified and
// stays fully usable; the returned graph shares g's node table, CSR offsets
// and spatial index, and its content checksum is re-derived incrementally
// from g's (O(changes), not O(arcs)).
//
// Errors: the graph must be frozen; every change must reference an existing
// arc (both endpoints valid and at least one From→To arc present) and carry
// a finite non-negative cost. On error the returned graph is nil and g is
// untouched.
func (g *Graph) WithUpdatedWeights(changes []ArcWeightChange) (*Graph, error) {
	if !g.frozen {
		return nil, fmt.Errorf("roadnet: WithUpdatedWeights requires a frozen graph")
	}
	for _, c := range changes {
		if !g.validID(c.From) || !g.validID(c.To) {
			return nil, fmt.Errorf("roadnet: weight change (%d,%d) references unknown node (have %d nodes)", c.From, c.To, len(g.nodes))
		}
		if c.NewCost < 0 || math.IsNaN(c.NewCost) || math.IsInf(c.NewCost, 0) {
			return nil, fmt.Errorf("roadnet: weight change (%d,%d) has invalid cost %v", c.From, c.To, c.NewCost)
		}
	}

	// Compute the parent's checksums first so the child's can be derived
	// incrementally below (and so repeated updates never pay the full pass
	// more than once per lineage).
	parent := g.ensureChecksums()
	fold := parent.fold

	arcs := make([]Arc, len(g.arcs))
	copy(arcs, g.arcs)
	for _, c := range changes {
		lo, hi := g.offsets[c.From], g.offsets[c.From+1]
		found := false
		for i := lo; i < hi; i++ {
			if arcs[i].To != c.To {
				continue
			}
			found = true
			if arcs[i].Cost != c.NewCost {
				fold ^= arcWeightHash(int(i), math.Float64bits(arcs[i].Cost))
				fold ^= arcWeightHash(int(i), math.Float64bits(c.NewCost))
				arcs[i].Cost = c.NewCost
			}
		}
		if !found {
			return nil, fmt.Errorf("roadnet: weight change references nonexistent arc %d→%d", c.From, c.To)
		}
	}

	out := &Graph{
		nodes:   g.nodes,
		offsets: g.offsets,
		arcs:    arcs,
		frozen:  true,
		minX:    g.minX,
		minY:    g.minY,
		maxX:    g.maxX,
		maxY:    g.maxY,
		grid:    g.grid,
		// revOnce deliberately fresh: the reverse CSR carries costs, so it is
		// rebuilt lazily on first reverse traversal of the new graph.
	}
	out.csum.Store(&checksums{topo: parent.topo, fold: fold})
	return out, nil
}
