package roadnet

import (
	"bytes"
	"strings"
	"testing"
)

func TestTextRoundTrip(t *testing.T) {
	g := buildTriangle(t)
	var buf bytes.Buffer
	if err := WriteText(&buf, g); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	got, err := ReadText(&buf)
	if err != nil {
		t.Fatalf("ReadText: %v", err)
	}
	assertGraphsEqual(t, g, got)
}

func TestGobRoundTrip(t *testing.T) {
	g := buildTriangle(t)
	var buf bytes.Buffer
	if err := WriteGob(&buf, g); err != nil {
		t.Fatalf("WriteGob: %v", err)
	}
	got, err := ReadGob(&buf)
	if err != nil {
		t.Fatalf("ReadGob: %v", err)
	}
	assertGraphsEqual(t, g, got)
}

func assertGraphsEqual(t *testing.T, want, got *Graph) {
	t.Helper()
	if got.NumNodes() != want.NumNodes() || got.NumArcs() != want.NumArcs() {
		t.Fatalf("size %d/%d, want %d/%d", got.NumNodes(), got.NumArcs(), want.NumNodes(), want.NumArcs())
	}
	for _, n := range want.Nodes() {
		gn := got.Node(n.ID)
		if gn.X != n.X || gn.Y != n.Y || gn.Weight != n.Weight {
			t.Errorf("node %d = %+v, want %+v", n.ID, gn, n)
		}
		wantArcs := want.Arcs(n.ID)
		gotArcs := got.Arcs(n.ID)
		if len(wantArcs) != len(gotArcs) {
			t.Errorf("node %d arc count %d, want %d", n.ID, len(gotArcs), len(wantArcs))
			continue
		}
		for i := range wantArcs {
			if wantArcs[i] != gotArcs[i] {
				t.Errorf("node %d arc %d = %+v, want %+v", n.ID, i, gotArcs[i], wantArcs[i])
			}
		}
	}
}

func TestReadTextFormats(t *testing.T) {
	input := `
# a comment line

n 0 0.0 0.0 2.0
n 1 1.0 0.0
b 0 1 3.5
`
	g, err := ReadText(strings.NewReader(input))
	if err != nil {
		t.Fatalf("ReadText: %v", err)
	}
	if g.NumNodes() != 2 || g.NumArcs() != 2 {
		t.Fatalf("parsed %d nodes %d arcs, want 2/2", g.NumNodes(), g.NumArcs())
	}
	if g.Node(0).Weight != 2 {
		t.Errorf("node 0 weight = %v, want 2", g.Node(0).Weight)
	}
	if g.Node(1).Weight != 1 {
		t.Errorf("node 1 default weight = %v, want 1", g.Node(1).Weight)
	}
	if cost, ok := g.ArcCost(1, 0); !ok || cost != 3.5 {
		t.Errorf("bidirectional edge missing reverse direction (cost=%v ok=%v)", cost, ok)
	}
}

func TestReadTextErrors(t *testing.T) {
	cases := map[string]string{
		"non-dense node id":  "n 5 0 0\n",
		"short node line":    "n 0 0\n",
		"bad x":              "n 0 x 0\n",
		"edge unknown node":  "n 0 0 0\ne 0 7 1\n",
		"short edge line":    "n 0 0 0\nn 1 1 1\ne 0 1\n",
		"bad cost":           "n 0 0 0\nn 1 1 1\ne 0 1 abc\n",
		"negative cost":      "n 0 0 0\nn 1 1 1\ne 0 1 -2\n",
		"unknown record":     "x 1 2 3\n",
		"bad node id number": "n zero 0 0\n",
	}
	for name, input := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := ReadText(strings.NewReader(input)); err == nil {
				t.Errorf("ReadText accepted %q, want error", input)
			}
		})
	}
}

func TestReadGobError(t *testing.T) {
	if _, err := ReadGob(strings.NewReader("this is not gob")); err == nil {
		t.Error("ReadGob accepted garbage input")
	}
}

func TestTextRoundTripLargerGraph(t *testing.T) {
	g := scatterGraph(100)
	// add a ring of edges
	mutable := g.Clone()
	for i := 0; i < 100; i++ {
		mutable.MustAddBidirectionalEdge(NodeID(i), NodeID((i+1)%100), float64(i%7+1))
	}
	mutable.Freeze()
	var buf bytes.Buffer
	if err := WriteText(&buf, mutable); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	got, err := ReadText(&buf)
	if err != nil {
		t.Fatalf("ReadText: %v", err)
	}
	assertGraphsEqual(t, mutable, got)
}
