package roadnet

import (
	"fmt"
	"math"
	"sort"
)

// This file is the graph-partitioning layer: it cuts a frozen road network
// into k spatially coherent cells and records which nodes sit on the cut.
// The partition is the substrate for partition-aware contraction hierarchies
// (internal/ch): interiors of one cell can be re-customized independently of
// every other cell, so a weight update that touches one neighbourhood
// re-sweeps one cell instead of the whole overlay, and paged deployments can
// treat per-cell overlay weight layers as paging units.
//
// The partitioner is a recursive inertial bisection ("flat cuts"): each
// group of nodes is split at the median of its projection onto the group's
// principal axis (the leading eigenvector of the 2x2 coordinate covariance),
// which cuts perpendicular to the direction the group is most spread out in.
// Node order is seeded from the spatial grid built at Freeze time
// (spatial.go), so the initial scan order — and therefore tie-breaking — is
// spatially coherent rather than insertion-ordered; exact coordinate ties on
// the projection are broken by a seeded hash, making the whole construction
// deterministic for a fixed (graph, PartitionConfig).

// PartitionConfig controls BuildPartition.
type PartitionConfig struct {
	// Cells is the target number of cells. It is clamped to [1, NumNodes]:
	// asking for more cells than nodes yields one cell per node.
	Cells int
	// Seed feeds the tie-breaking hash used when several nodes project to
	// the same coordinate on a cut axis. Two calls with equal graph, Cells
	// and Seed produce identical partitions.
	Seed int64
}

// Partition assigns every node of a frozen graph to exactly one cell and
// records the boundary: the set of nodes incident to an arc whose endpoints
// lie in different cells. Cells are identified by dense integers 0..k-1.
type Partition struct {
	cells     int
	cellOf    []int32
	boundary  []bool
	nBoundary int
	// nodes grouped by cell in CSR form, ascending node ID within a cell.
	cellOff   []int32
	cellNodes []NodeID
	// arcOff[c] counts the arcs whose tail lies in cell c (the cell's arc
	// range in a tail-grouped layout); cut arcs are counted by cutArcs.
	arcCount []int32
	cutArcs  int
}

// BuildPartition cuts a frozen graph into cfg.Cells cells by recursive
// inertial bisection and returns the resulting Partition.
func BuildPartition(g *Graph, cfg PartitionConfig) (*Partition, error) {
	if g == nil {
		return nil, fmt.Errorf("roadnet: BuildPartition on nil graph")
	}
	if !g.frozen {
		return nil, fmt.Errorf("roadnet: BuildPartition requires a frozen graph")
	}
	n := g.NumNodes()
	k := cfg.Cells
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n // graceful clamp: at most one cell per node
	}
	if n == 0 {
		return &Partition{cells: 1, cellOff: []int32{0, 0}, arcCount: []int32{0}}, nil
	}

	// Seed the work list from the spatial grid: nodes in grid-cell scan
	// order, so neighbouring nodes are adjacent in the initial ordering.
	order := make([]NodeID, 0, n)
	for _, cell := range g.grid.cells {
		order = append(order, cell...)
	}
	if len(order) != n { // defensive: the grid always covers every node
		order = order[:0]
		for i := 0; i < n; i++ {
			order = append(order, NodeID(i))
		}
	}

	cellOf := make([]int32, n)
	proj := make([]float64, n) // scratch: projection onto the cut axis
	next := int32(0)
	var split func(nodes []NodeID, parts int)
	split = func(nodes []NodeID, parts int) {
		if parts <= 1 || len(nodes) <= 1 {
			for _, v := range nodes {
				cellOf[v] = next
			}
			next++
			return
		}
		ax, ay := inertialAxis(g, nodes)
		for _, v := range nodes {
			nd := g.nodes[v]
			proj[v] = nd.X*ax + nd.Y*ay + tieJitter(v, cfg.Seed)
		}
		sort.Slice(nodes, func(i, j int) bool {
			if proj[nodes[i]] != proj[nodes[j]] {
				return proj[nodes[i]] < proj[nodes[j]]
			}
			return nodes[i] < nodes[j]
		})
		// Weighted median cut: the left side carries parts/2 of the target
		// cells and a proportional share of the nodes, so a non-power-of-two
		// cell count still comes out balanced.
		lp := parts / 2
		cut := len(nodes) * lp / parts
		split(nodes[:cut], lp)
		split(nodes[cut:], parts-lp)
	}
	split(order, k)
	if int(next) != k {
		return nil, fmt.Errorf("roadnet: partitioner emitted %d cells, want %d", next, k)
	}
	return newPartition(g, cellOf, k)
}

// NewPartitionFromAssignment builds a Partition from an explicit node→cell
// assignment with the given cell count. Cells may be empty; every entry must
// lie in [0, cells). This is the constructor used by tests that need crafted
// partitions and by loaders that persist the assignment.
func NewPartitionFromAssignment(g *Graph, cellOf []int32, cells int) (*Partition, error) {
	if g == nil || !g.frozen {
		return nil, fmt.Errorf("roadnet: partition assignment requires a frozen graph")
	}
	if len(cellOf) != g.NumNodes() {
		return nil, fmt.Errorf("roadnet: partition assignment covers %d nodes, graph has %d", len(cellOf), g.NumNodes())
	}
	if cells < 1 {
		return nil, fmt.Errorf("roadnet: partition needs at least one cell, got %d", cells)
	}
	for v, c := range cellOf {
		if c < 0 || int(c) >= cells {
			return nil, fmt.Errorf("roadnet: node %d assigned to cell %d, valid range [0,%d)", v, c, cells)
		}
	}
	own := make([]int32, len(cellOf))
	copy(own, cellOf)
	return newPartition(g, own, cells)
}

// newPartition derives the boundary set, per-cell node CSR and arc counts
// from a complete assignment. It takes ownership of cellOf.
func newPartition(g *Graph, cellOf []int32, cells int) (*Partition, error) {
	n := g.NumNodes()
	p := &Partition{
		cells:    cells,
		cellOf:   cellOf,
		boundary: make([]bool, n),
		arcCount: make([]int32, cells),
	}
	for u := 0; u < n; u++ {
		cu := cellOf[u]
		p.arcCount[cu] += int32(len(g.Arcs(NodeID(u))))
		for _, a := range g.Arcs(NodeID(u)) {
			if cellOf[a.To] != cu {
				p.boundary[u] = true
				p.boundary[a.To] = true
				p.cutArcs++
			}
		}
	}
	for _, b := range p.boundary {
		if b {
			p.nBoundary++
		}
	}
	// Counting sort of node IDs by cell keeps each cell's node list in
	// ascending ID order.
	p.cellOff = make([]int32, cells+1)
	for _, c := range cellOf {
		p.cellOff[c+1]++
	}
	for c := 0; c < cells; c++ {
		p.cellOff[c+1] += p.cellOff[c]
	}
	p.cellNodes = make([]NodeID, n)
	fill := make([]int32, cells)
	copy(fill, p.cellOff[:cells])
	for v := 0; v < n; v++ {
		c := cellOf[v]
		p.cellNodes[fill[c]] = NodeID(v)
		fill[c]++
	}
	return p, nil
}

// NumCells returns the number of cells.
func (p *Partition) NumCells() int { return p.cells }

// CellOf returns the cell node v belongs to.
func (p *Partition) CellOf(v NodeID) int { return int(p.cellOf[v]) }

// IsBoundary reports whether v is incident to a cross-cell arc.
func (p *Partition) IsBoundary(v NodeID) bool { return p.boundary[v] }

// NumBoundary returns the number of boundary nodes.
func (p *Partition) NumBoundary() int { return p.nBoundary }

// CellNodes returns the nodes of cell c in ascending ID order. The returned
// slice aliases the partition's storage and must not be modified.
func (p *Partition) CellNodes(c int) []NodeID {
	return p.cellNodes[p.cellOff[c]:p.cellOff[c+1]]
}

// CellArcCount returns the number of arcs whose tail lies in cell c
// (including cut arcs leaving the cell).
func (p *Partition) CellArcCount(c int) int { return int(p.arcCount[c]) }

// CutArcCount returns the number of arcs whose endpoints lie in different
// cells.
func (p *Partition) CutArcCount() int { return p.cutArcs }

// Assignment returns the node→cell assignment. The returned slice aliases
// the partition's storage and must not be modified.
func (p *Partition) Assignment() []int32 { return p.cellOf }

// String summarises the partition.
func (p *Partition) String() string {
	return fmt.Sprintf("roadnet.Partition{cells: %d, boundary: %d, cut: %d}", p.cells, p.nBoundary, p.cutArcs)
}

// inertialAxis returns the unit principal axis of the node group: the
// leading eigenvector of the 2x2 covariance of the coordinates. Degenerate
// groups (all nodes coincident) fall back to the x axis.
func inertialAxis(g *Graph, nodes []NodeID) (float64, float64) {
	var cx, cy float64
	for _, v := range nodes {
		cx += g.nodes[v].X
		cy += g.nodes[v].Y
	}
	inv := 1 / float64(len(nodes))
	cx *= inv
	cy *= inv
	var sxx, sxy, syy float64
	for _, v := range nodes {
		dx := g.nodes[v].X - cx
		dy := g.nodes[v].Y - cy
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxy == 0 {
		if syy > sxx {
			return 0, 1
		}
		return 1, 0
	}
	// Leading eigenvalue of [[sxx, sxy], [sxy, syy]].
	lambda := (sxx + syy + math.Hypot(sxx-syy, 2*sxy)) / 2
	ax, ay := sxy, lambda-sxx
	norm := math.Hypot(ax, ay)
	if norm == 0 || math.IsNaN(norm) {
		return 1, 0
	}
	return ax / norm, ay / norm
}

// tieJitter is a tiny deterministic perturbation (splitmix64 of node ID and
// seed, scaled to ~1e-9) that breaks exact projection ties without moving
// any node measurably.
func tieJitter(v NodeID, seed int64) float64 {
	z := uint64(v)*0x9e3779b97f4a7c15 + uint64(seed)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z%(1<<20)) * 1e-15
}
