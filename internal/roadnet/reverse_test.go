package roadnet

import (
	"reflect"
	"testing"
)

// buildAsymmetric returns a small frozen graph with deliberately asymmetric
// arcs so the reverse adjacency differs from the forward one.
func buildAsymmetric(t *testing.T) *Graph {
	t.Helper()
	g := NewGraph(6, 8)
	for i := 0; i < 6; i++ {
		g.AddNode(float64(i), float64(i%2))
	}
	edges := []struct {
		from, to NodeID
		cost     float64
	}{
		{0, 1, 1}, {1, 2, 2}, {2, 0, 3}, // directed cycle
		{3, 2, 1.5},              // one-way into the cycle
		{4, 3, 0.5}, {3, 4, 0.5}, // symmetric pair
		// node 5 is isolated
	}
	for _, e := range edges {
		if err := g.AddEdge(e.from, e.to, e.cost); err != nil {
			t.Fatal(err)
		}
	}
	g.Freeze()
	return g
}

// TestReverseArcsMatchesBruteForce checks the lazily built reverse CSR
// against a per-node rebuild from the forward adjacency.
func TestReverseArcsMatchesBruteForce(t *testing.T) {
	g := buildAsymmetric(t)
	want := make([][]Arc, g.NumNodes())
	for u := 0; u < g.NumNodes(); u++ {
		for _, a := range g.Arcs(NodeID(u)) {
			want[a.To] = append(want[a.To], Arc{To: NodeID(u), Cost: a.Cost})
		}
	}
	total := 0
	for v := 0; v < g.NumNodes(); v++ {
		got := g.ReverseArcs(NodeID(v))
		if len(got) == 0 && len(want[v]) == 0 {
			continue
		}
		if !reflect.DeepEqual(append([]Arc(nil), got...), want[v]) {
			t.Fatalf("ReverseArcs(%d) = %v, want %v", v, got, want[v])
		}
		if g.InDegree(NodeID(v)) != len(want[v]) {
			t.Fatalf("InDegree(%d) = %d, want %d", v, g.InDegree(NodeID(v)), len(want[v]))
		}
		total += len(got)
	}
	if total != g.NumArcs() {
		t.Fatalf("reverse adjacency covers %d arcs, graph has %d", total, g.NumArcs())
	}
}

// TestForEachArcEarlyStop checks iteration order and early termination of
// both directions.
func TestForEachArcEarlyStop(t *testing.T) {
	g := buildAsymmetric(t)
	var seen []Arc
	g.ForEachArc(3, func(a Arc) bool {
		seen = append(seen, a)
		return true
	})
	if !reflect.DeepEqual(seen, append([]Arc(nil), g.Arcs(3)...)) {
		t.Fatalf("ForEachArc(3) = %v, want %v", seen, g.Arcs(3))
	}
	count := 0
	g.ForEachArc(3, func(Arc) bool {
		count++
		return false // stop after the first arc
	})
	if count != 1 {
		t.Fatalf("early-stop iteration visited %d arcs, want 1", count)
	}
	count = 0
	g.ForEachReverseArc(2, func(Arc) bool {
		count++
		return false
	})
	if count != 1 {
		t.Fatalf("reverse early-stop visited %d arcs, want 1", count)
	}
}

// TestConnectedComponentsFrozenMatchesUnfrozen checks that the reverse-CSR
// component analysis on a frozen graph agrees with the staged fallback on an
// identical unfrozen clone, including on asymmetric graphs where weak
// connectivity genuinely needs the reverse direction.
func TestConnectedComponentsFrozenMatchesUnfrozen(t *testing.T) {
	g := buildAsymmetric(t)
	clone := g.Clone() // unfrozen copy

	frozenComp, frozenCount := g.ConnectedComponents()
	unfrozenComp, unfrozenCount := clone.ConnectedComponents()
	if frozenCount != unfrozenCount || !reflect.DeepEqual(frozenComp, unfrozenComp) {
		t.Fatalf("frozen components (%v,%d) != unfrozen (%v,%d)",
			frozenComp, frozenCount, unfrozenComp, unfrozenCount)
	}
	// 0-1-2-3-4 are weakly connected (3->2 one-way still links them); 5 is
	// alone.
	if frozenCount != 2 {
		t.Fatalf("component count = %d, want 2", frozenCount)
	}
	if frozenComp[0] != frozenComp[3] || frozenComp[5] == frozenComp[0] {
		t.Fatalf("unexpected component assignment %v", frozenComp)
	}
}
