package roadnet

import (
	"math"
	"sort"
)

// gridIndex is a uniform spatial grid over the graph's bounding box used for
// nearest-node and range queries. It is built once at Freeze time.
type gridIndex struct {
	minX, minY   float64
	cellW, cellH float64
	cols, rows   int
	cells        [][]NodeID
}

// buildGridIndex builds a grid whose cell count is roughly the node count so
// that the expected occupancy per cell is O(1).
func buildGridIndex(g *Graph) *gridIndex {
	n := g.NumNodes()
	if n == 0 {
		return &gridIndex{cols: 1, rows: 1, cellW: 1, cellH: 1, cells: make([][]NodeID, 1)}
	}
	minX, minY, maxX, maxY := g.Bounds()
	w := maxX - minX
	h := maxY - minY
	if w <= 0 {
		w = 1
	}
	if h <= 0 {
		h = 1
	}
	side := int(math.Ceil(math.Sqrt(float64(n))))
	if side < 1 {
		side = 1
	}
	idx := &gridIndex{
		minX:  minX,
		minY:  minY,
		cols:  side,
		rows:  side,
		cellW: w / float64(side),
		cellH: h / float64(side),
	}
	idx.cells = make([][]NodeID, side*side)
	for _, node := range g.Nodes() {
		c := idx.cellOf(node.X, node.Y)
		idx.cells[c] = append(idx.cells[c], node.ID)
	}
	return idx
}

func (idx *gridIndex) cellOf(x, y float64) int {
	cx := int((x - idx.minX) / idx.cellW)
	cy := int((y - idx.minY) / idx.cellH)
	if cx < 0 {
		cx = 0
	}
	if cy < 0 {
		cy = 0
	}
	if cx >= idx.cols {
		cx = idx.cols - 1
	}
	if cy >= idx.rows {
		cy = idx.rows - 1
	}
	return cy*idx.cols + cx
}

// NearestNode returns the node closest (in Euclidean distance) to (x, y), or
// InvalidNode for an empty graph. The graph must be frozen.
func (g *Graph) NearestNode(x, y float64) NodeID {
	if g.NumNodes() == 0 {
		return InvalidNode
	}
	if !g.frozen {
		// Fallback linear scan on mutable graphs; rare and small.
		return g.linearNearest(x, y)
	}
	idx := g.grid
	cx := int((x - idx.minX) / idx.cellW)
	cy := int((y - idx.minY) / idx.cellH)
	best := InvalidNode
	bestD := math.Inf(1)
	// Expand rings of cells outward until a hit is found and the ring
	// distance exceeds the best distance (standard grid NN search).
	for ring := 0; ring < idx.cols+idx.rows; ring++ {
		hitPossible := false
		for dy := -ring; dy <= ring; dy++ {
			for dx := -ring; dx <= ring; dx++ {
				if abs(dx) != ring && abs(dy) != ring {
					continue // only the ring boundary
				}
				ccx, ccy := cx+dx, cy+dy
				if ccx < 0 || ccy < 0 || ccx >= idx.cols || ccy >= idx.rows {
					continue
				}
				hitPossible = true
				for _, id := range idx.cells[ccy*idx.cols+ccx] {
					n := g.nodes[id]
					d := (n.X-x)*(n.X-x) + (n.Y-y)*(n.Y-y)
					if d < bestD {
						bestD = d
						best = id
					}
				}
			}
		}
		if best != InvalidNode {
			// The nearest node in further rings is at least (ring-1) cells
			// away; stop once that lower bound exceeds the best found.
			minCell := math.Min(idx.cellW, idx.cellH)
			lower := float64(ring-1) * minCell
			if lower > 0 && lower*lower > bestD {
				break
			}
		}
		if !hitPossible && best != InvalidNode {
			break
		}
	}
	if best == InvalidNode {
		return g.linearNearest(x, y)
	}
	return best
}

func (g *Graph) linearNearest(x, y float64) NodeID {
	best := InvalidNode
	bestD := math.Inf(1)
	for _, n := range g.nodes {
		d := (n.X-x)*(n.X-x) + (n.Y-y)*(n.Y-y)
		if d < bestD {
			bestD = d
			best = n.ID
		}
	}
	return best
}

// NodesWithin returns the IDs of all nodes whose Euclidean distance from
// (x, y) is at most radius, sorted by increasing distance. The graph must be
// frozen for efficient lookup; on mutable graphs it scans linearly.
func (g *Graph) NodesWithin(x, y, radius float64) []NodeID {
	type cand struct {
		id NodeID
		d  float64
	}
	var out []cand
	collect := func(id NodeID) {
		n := g.nodes[id]
		d := math.Hypot(n.X-x, n.Y-y)
		if d <= radius {
			out = append(out, cand{id, d})
		}
	}
	if !g.frozen {
		for _, n := range g.nodes {
			collect(n.ID)
		}
	} else {
		idx := g.grid
		x0 := int((x - radius - idx.minX) / idx.cellW)
		x1 := int((x + radius - idx.minX) / idx.cellW)
		y0 := int((y - radius - idx.minY) / idx.cellH)
		y1 := int((y + radius - idx.minY) / idx.cellH)
		if x0 < 0 {
			x0 = 0
		}
		if y0 < 0 {
			y0 = 0
		}
		if x1 >= idx.cols {
			x1 = idx.cols - 1
		}
		if y1 >= idx.rows {
			y1 = idx.rows - 1
		}
		for cy := y0; cy <= y1; cy++ {
			for cx := x0; cx <= x1; cx++ {
				for _, id := range idx.cells[cy*idx.cols+cx] {
					collect(id)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].d != out[j].d {
			return out[i].d < out[j].d
		}
		return out[i].id < out[j].id
	})
	ids := make([]NodeID, len(out))
	for i, c := range out {
		ids[i] = c.id
	}
	return ids
}

// NodesInBand returns the IDs of all nodes whose Euclidean distance from
// (x, y) lies in [inner, outer], sorted by increasing distance. It is the
// primitive used by the ring-band fake-endpoint selection strategy.
func (g *Graph) NodesInBand(x, y, inner, outer float64) []NodeID {
	within := g.NodesWithin(x, y, outer)
	out := within[:0]
	for _, id := range within {
		n := g.nodes[id]
		if math.Hypot(n.X-x, n.Y-y) >= inner {
			out = append(out, id)
		}
	}
	return out
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
