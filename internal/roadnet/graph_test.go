package roadnet

import (
	"math"
	"testing"
	"testing/quick"
)

// buildTriangle returns a small frozen graph:
//
//	0 --1.0-- 1 --2.0-- 2, plus 0 --5.0-- 2 (all bidirectional)
func buildTriangle(t *testing.T) *Graph {
	t.Helper()
	g := NewGraph(3, 6)
	a := g.AddNode(0, 0)
	b := g.AddNode(1, 0)
	c := g.AddNode(2, 0)
	if err := g.AddBidirectionalEdge(a, b, 1); err != nil {
		t.Fatalf("AddBidirectionalEdge: %v", err)
	}
	if err := g.AddBidirectionalEdge(b, c, 2); err != nil {
		t.Fatalf("AddBidirectionalEdge: %v", err)
	}
	if err := g.AddBidirectionalEdge(a, c, 5); err != nil {
		t.Fatalf("AddBidirectionalEdge: %v", err)
	}
	g.Freeze()
	return g
}

func TestGraphAddAndCounts(t *testing.T) {
	g := buildTriangle(t)
	if got := g.NumNodes(); got != 3 {
		t.Errorf("NumNodes = %d, want 3", got)
	}
	if got := g.NumArcs(); got != 6 {
		t.Errorf("NumArcs = %d, want 6", got)
	}
	if !g.Frozen() {
		t.Error("graph should be frozen")
	}
}

func TestGraphNodeAccessors(t *testing.T) {
	g := NewGraph(0, 0)
	id := g.AddWeightedNode(3, 4, 2.5)
	n := g.Node(id)
	if n.X != 3 || n.Y != 4 || n.Weight != 2.5 || n.ID != id {
		t.Errorf("Node = %+v, want {ID:%d X:3 Y:4 Weight:2.5}", n, id)
	}
	if !g.ValidNode(id) {
		t.Error("ValidNode(id) = false, want true")
	}
	if g.ValidNode(99) || g.ValidNode(-1) {
		t.Error("ValidNode should reject out-of-range ids")
	}
}

func TestGraphAddEdgeErrors(t *testing.T) {
	g := NewGraph(2, 2)
	a := g.AddNode(0, 0)
	b := g.AddNode(1, 1)
	cases := []struct {
		name     string
		from, to NodeID
		cost     float64
	}{
		{"unknown from", 17, b, 1},
		{"unknown to", a, 42, 1},
		{"negative cost", a, b, -1},
		{"NaN cost", a, b, math.NaN()},
		{"inf cost", a, b, math.Inf(1)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := g.AddEdge(tc.from, tc.to, tc.cost); err == nil {
				t.Errorf("AddEdge(%d,%d,%v) succeeded, want error", tc.from, tc.to, tc.cost)
			}
		})
	}
}

func TestGraphFrozenMutationFails(t *testing.T) {
	g := buildTriangle(t)
	if err := g.AddEdge(0, 1, 1); err == nil {
		t.Error("AddEdge on frozen graph succeeded, want error")
	}
	defer func() {
		if recover() == nil {
			t.Error("AddNode on frozen graph did not panic")
		}
	}()
	g.AddNode(9, 9)
}

func TestGraphArcsAndArcCost(t *testing.T) {
	g := buildTriangle(t)
	arcs := g.Arcs(0)
	if len(arcs) != 2 {
		t.Fatalf("Arcs(0) has %d entries, want 2", len(arcs))
	}
	if cost, ok := g.ArcCost(0, 1); !ok || cost != 1 {
		t.Errorf("ArcCost(0,1) = %v,%v want 1,true", cost, ok)
	}
	if cost, ok := g.ArcCost(0, 2); !ok || cost != 5 {
		t.Errorf("ArcCost(0,2) = %v,%v want 5,true", cost, ok)
	}
	if _, ok := g.ArcCost(1, 1); ok {
		t.Error("ArcCost(1,1) reported an arc that does not exist")
	}
	if got := g.Degree(0); got != 2 {
		t.Errorf("Degree(0) = %d, want 2", got)
	}
}

func TestGraphParallelEdgesKeepCheapest(t *testing.T) {
	g := NewGraph(2, 4)
	a := g.AddNode(0, 0)
	b := g.AddNode(1, 0)
	g.MustAddEdge(a, b, 7)
	g.MustAddEdge(a, b, 3)
	g.Freeze()
	if cost, ok := g.ArcCost(a, b); !ok || cost != 3 {
		t.Errorf("ArcCost with parallel edges = %v,%v want 3,true", cost, ok)
	}
}

func TestGraphBounds(t *testing.T) {
	g := NewGraph(0, 0)
	if minX, minY, maxX, maxY := g.Bounds(); minX != 0 || minY != 0 || maxX != 0 || maxY != 0 {
		t.Errorf("empty graph Bounds = %v %v %v %v, want zeros", minX, minY, maxX, maxY)
	}
	g.AddNode(-2, 3)
	g.AddNode(5, -7)
	minX, minY, maxX, maxY := g.Bounds()
	if minX != -2 || minY != -7 || maxX != 5 || maxY != 3 {
		t.Errorf("Bounds = %v %v %v %v, want -2 -7 5 3", minX, minY, maxX, maxY)
	}
}

func TestGraphEuclid(t *testing.T) {
	g := NewGraph(2, 0)
	a := g.AddNode(0, 0)
	b := g.AddNode(3, 4)
	if d := g.Euclid(a, b); math.Abs(d-5) > 1e-12 {
		t.Errorf("Euclid = %v, want 5", d)
	}
	if d := g.Euclid(a, a); d != 0 {
		t.Errorf("Euclid(a,a) = %v, want 0", d)
	}
}

func TestGraphReverse(t *testing.T) {
	g := NewGraph(3, 2)
	a := g.AddNode(0, 0)
	b := g.AddNode(1, 0)
	c := g.AddNode(2, 0)
	g.MustAddEdge(a, b, 1)
	g.MustAddEdge(b, c, 2)
	g.Freeze()
	r := g.Reverse()
	if !r.Frozen() {
		t.Fatal("Reverse graph must be frozen")
	}
	if _, ok := r.ArcCost(b, a); !ok {
		t.Error("reverse graph missing arc b->a")
	}
	if _, ok := r.ArcCost(c, b); !ok {
		t.Error("reverse graph missing arc c->b")
	}
	if _, ok := r.ArcCost(a, b); ok {
		t.Error("reverse graph should not contain forward arc a->b")
	}
	if r.NumArcs() != g.NumArcs() {
		t.Errorf("reverse arcs = %d, want %d", r.NumArcs(), g.NumArcs())
	}
}

func TestGraphClone(t *testing.T) {
	g := buildTriangle(t)
	c := g.Clone()
	if c.Frozen() {
		t.Error("clone should be mutable")
	}
	if c.NumNodes() != g.NumNodes() || c.NumArcs() != g.NumArcs() {
		t.Errorf("clone size %d/%d, want %d/%d", c.NumNodes(), c.NumArcs(), g.NumNodes(), g.NumArcs())
	}
	// Mutating the clone must not affect the original.
	extra := c.AddNode(9, 9)
	c.MustAddEdge(extra, 0, 1)
	if g.NumNodes() != 3 {
		t.Error("mutating clone changed original node count")
	}
}

func TestGraphString(t *testing.T) {
	g := buildTriangle(t)
	if s := g.String(); s == "" {
		t.Error("String() returned empty")
	}
}

// TestGraphFreezeIdempotent ensures double-freeze does not corrupt adjacency.
func TestGraphFreezeIdempotent(t *testing.T) {
	g := buildTriangle(t)
	before := g.NumArcs()
	g.Freeze()
	if g.NumArcs() != before {
		t.Errorf("second Freeze changed arc count from %d to %d", before, g.NumArcs())
	}
}

// TestGraphArcOrderDeterministic verifies the CSR arc order is stable across
// builds of the same graph, which determinism of the whole pipeline relies
// on.
func TestGraphArcOrderDeterministic(t *testing.T) {
	build := func() *Graph {
		g := NewGraph(4, 8)
		for i := 0; i < 4; i++ {
			g.AddNode(float64(i), 0)
		}
		g.MustAddEdge(0, 3, 3)
		g.MustAddEdge(0, 1, 1)
		g.MustAddEdge(0, 2, 2)
		g.Freeze()
		return g
	}
	a, b := build(), build()
	arcsA, arcsB := a.Arcs(0), b.Arcs(0)
	if len(arcsA) != len(arcsB) {
		t.Fatalf("arc counts differ: %d vs %d", len(arcsA), len(arcsB))
	}
	for i := range arcsA {
		if arcsA[i] != arcsB[i] {
			t.Errorf("arc %d differs: %+v vs %+v", i, arcsA[i], arcsB[i])
		}
	}
	if arcsA[0].To != 1 || arcsA[1].To != 2 || arcsA[2].To != 3 {
		t.Errorf("arcs not sorted by head: %+v", arcsA)
	}
}

// Property: for any set of points, Euclid is symmetric and satisfies the
// triangle inequality.
func TestGraphEuclidProperties(t *testing.T) {
	f := func(coords [6]int8) bool {
		g := NewGraph(3, 0)
		a := g.AddNode(float64(coords[0]), float64(coords[1]))
		b := g.AddNode(float64(coords[2]), float64(coords[3]))
		c := g.AddNode(float64(coords[4]), float64(coords[5]))
		symmetric := math.Abs(g.Euclid(a, b)-g.Euclid(b, a)) < 1e-9
		triangle := g.Euclid(a, c) <= g.Euclid(a, b)+g.Euclid(b, c)+1e-9
		return symmetric && triangle
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
