package roadnet

import (
	"hash/fnv"
	"math"
	"sync/atomic"
)

// This file gives every frozen graph a content identity cheap enough to
// consult on the query hot path and cheap enough to *maintain* across live
// weight updates. The identity is split in two:
//
//   - TopologyChecksum covers everything weights cannot change — the node
//     count and every node's adjacency heads in CSR order. Preprocessed
//     structures whose shape only depends on connectivity (the CH overlay's
//     contraction order and shortcut structure) bind to this value and
//     survive weight updates.
//   - ContentChecksum additionally folds in every arc's cost bit pattern.
//     Structures whose numbers depend on the metric (shortcut weights,
//     cached spanning trees) bind to this value and must be refreshed when
//     it moves.
//
// The weight half is an XOR fold of independent per-arc hashes, so a weight
// update re-derives the content checksum incrementally: XOR out the touched
// arcs' old terms, XOR in the new ones — O(changes), not O(arcs). Both
// values are computed lazily once per graph and cached; WithUpdatedWeights
// (update.go) seeds the derived graph's cache from its parent's.

// checksums is the cached pair (computed together in one CSR pass).
type checksums struct {
	topo uint64 // FNV-1a over node count, per-node degree and head IDs
	fold uint64 // XOR over arcWeightHash(i, cost bits) for every arc index i
}

// FNV-1a constants (hash/fnv), inlined so the per-arc weight term costs no
// hasher allocation — the full pass runs once per graph lineage over every
// arc, and the incremental path hashes two terms per changed arc.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// arcWeightHash hashes one arc's weight term: FNV-1a over the arc's CSR
// index and its cost bit pattern (all little-endian, matching hash/fnv over
// the same 12 bytes). Including the index makes the XOR fold
// order-sensitive-by-position (two arcs swapping costs changes the fold)
// while keeping each term independently removable.
func arcWeightHash(i int, costBits uint64) uint64 {
	h := uint64(fnvOffset64)
	v := uint32(i)
	for k := 0; k < 4; k++ {
		h ^= uint64(byte(v >> (8 * k)))
		h *= fnvPrime64
	}
	for k := 0; k < 8; k++ {
		h ^= uint64(byte(costBits >> (8 * k)))
		h *= fnvPrime64
	}
	return h
}

// computeChecksums derives both halves in one pass over the adjacency.
func computeChecksums(g *Graph) *checksums {
	h := fnv.New64a()
	var buf [4]byte
	put32 := func(v uint32) {
		buf[0], buf[1], buf[2], buf[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
		h.Write(buf[:])
	}
	n := g.NumNodes()
	put32(uint32(n))
	fold := uint64(0)
	idx := 0
	for v := 0; v < n; v++ {
		arcs := g.Arcs(NodeID(v))
		put32(uint32(len(arcs)))
		for _, a := range arcs {
			put32(uint32(a.To))
			fold ^= arcWeightHash(idx, math.Float64bits(a.Cost))
			idx++
		}
	}
	return &checksums{topo: h.Sum64(), fold: fold}
}

// ensureChecksums returns the graph's cached checksum pair, computing it on
// first use. Only frozen graphs cache — an unfrozen graph's adjacency can
// still grow, so its checksums are recomputed per call and never stored.
func (g *Graph) ensureChecksums() *checksums {
	if !g.frozen {
		return computeChecksums(g)
	}
	if cs := g.csum.Load(); cs != nil {
		return cs
	}
	cs := computeChecksums(g)
	// A concurrent caller may have stored an identical pair first; either
	// value is correct, keep whichever won.
	g.csum.CompareAndSwap(nil, cs)
	return g.csum.Load()
}

// TopologyChecksum returns a checksum of the graph's connectivity — node
// count and adjacency heads in CSR order — that is invariant under weight
// updates. Two graphs with equal topology checksums (and equal node/arc
// counts) have identical arc structure and differ at most in costs.
func (g *Graph) TopologyChecksum() uint64 { return g.ensureChecksums().topo }

// ContentChecksum returns a checksum of the graph's full content: the
// topology checksum XOR-combined with a fold of every arc's cost bit
// pattern. It changes whenever any weight changes and is what preprocessed
// metric-dependent structures (the CH overlay's customized weights) bind to.
// The value is cached after the first call; graphs derived through
// WithUpdatedWeights maintain it incrementally in O(changes).
func (g *Graph) ContentChecksum() uint64 {
	cs := g.ensureChecksums()
	return cs.topo ^ cs.fold
}

// csumCache is the atomic cache cell embedded in Graph (kept in its own type
// so graph.go stays focused on adjacency).
type csumCache = atomic.Pointer[checksums]
