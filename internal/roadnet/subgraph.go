package roadnet

// SubgraphWithin extracts the part of the graph inside the axis-aligned
// rectangle [minX, maxX] × [minY, maxY]: nodes inside the rectangle, and the
// arcs between them. Node IDs are remapped densely; the returned mapping
// translates original IDs to IDs in the extracted graph (absent keys were
// outside the rectangle). The extracted graph is returned frozen.
//
// Note that node IDs are remapped, so an extract is suitable for focused
// analyses and test fixtures; components that must agree on node IDs with the
// server (such as the obfuscator) need the id mapping applied to any result
// they exchange.
func (g *Graph) SubgraphWithin(minX, minY, maxX, maxY float64) (*Graph, map[NodeID]NodeID) {
	if minX > maxX {
		minX, maxX = maxX, minX
	}
	if minY > maxY {
		minY, maxY = maxY, minY
	}
	mapping := make(map[NodeID]NodeID)
	sub := NewGraph(0, 0)
	for _, n := range g.Nodes() {
		if n.X < minX || n.X > maxX || n.Y < minY || n.Y > maxY {
			continue
		}
		mapping[n.ID] = sub.AddWeightedNode(n.X, n.Y, n.Weight)
	}
	for oldID, newID := range mapping {
		for _, a := range g.Arcs(oldID) {
			if to, ok := mapping[a.To]; ok {
				sub.MustAddEdge(newID, to, a.Cost)
			}
		}
	}
	sub.Freeze()
	return sub, mapping
}
