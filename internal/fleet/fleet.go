// Package fleet implements the OPAQUE sharded serving tier: a router that
// fronts N directions search servers ("shards") over the multiplexed
// transport and answers obfuscated path queries as if it were a single
// server.
//
// Two fleet shapes are supported. In partition mode every shard holds the
// full replicated road map, but each spatial partition cell (roadnet.
// Partition) is *owned* by exactly one shard: a query Q(S, T) is split by
// the cell ownership of its sources, each shard evaluates the partial
// distance table for the sources it owns (against all destinations), and
// the router stitches the partial tables back together in source-major
// order. Because every shard searches the same complete graph, the merged
// table is exactly the single-server answer — ownership controls work
// placement and cache locality (a shard re-customizes and keeps hot the
// cells its traffic concentrates in), not reachability. In replicate mode
// whole queries round-robin across shards.
//
// The merge is refused unless every partial table was computed under the
// same metric: replies carry the shard's weight-content checksum
// (protocol.ServerReply.ContentSum) and echoed profile, and the router
// requires all partials of one query to agree on a nonzero checksum and on
// the profile. A disagreement — one shard applied a weight update the other
// has not, or a shard could not pin a stable identity under churn — counts
// as fleet_generation_skew (or fleet_profile_skew), and the query retries
// after a short backoff rather than ever serving a mixed-metric table.
//
// Weight updates flow through the router (UpdateWeights): broadcast to every
// reachable shard, and accumulated as last-write-wins per-arc state that is
// replayed to a shard when it (re)connects — a shard restarting with base
// weights mid-churn converges to the fleet metric before it serves again.
package fleet

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"opaque/internal/metrics"
	"opaque/internal/protocol"
	"opaque/internal/roadnet"
)

// Mode selects how the router spreads queries across shards.
type Mode int

const (
	// ModePartition splits each query's sources by partition-cell ownership;
	// every shard answers the partial table for the sources it owns.
	ModePartition Mode = iota
	// ModeReplicate round-robins whole queries across shards.
	ModeReplicate
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModePartition:
		return "partition"
	case ModeReplicate:
		return "replicate"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Dialer establishes one multiplexed connection to a shard. The router
// redials through it after a connection failure, so it must be safe to call
// repeatedly.
type Dialer func() (*protocol.MuxClient, error)

// Config parameterises a Router.
type Config struct {
	// Mode is the fleet shape (default ModePartition).
	Mode Mode
	// Partition assigns road-map nodes to spatial cells; required in
	// partition mode with more than one shard.
	Partition *roadnet.Partition
	// CellOwner maps partition cell → shard index. Nil assigns cells
	// round-robin (cell c → shard c mod N).
	CellOwner []int
	// Retries is the per-shard transport retry budget: how many times a
	// failed subquery is retried (redialling between attempts) before the
	// shard is declared failed for that query. Default 3.
	Retries int
	// RetryBackoff is the base delay between retry attempts; each attempt
	// doubles it (capped at BackoffCap) and jitters the result uniformly in
	// [d/2, 3d/2). Default 10ms.
	RetryBackoff time.Duration
	// BackoffCap bounds one exponential backoff delay before jitter.
	// Default 16 × RetryBackoff.
	BackoffCap time.Duration
	// RetryTimeCap bounds the total wall-clock one shard call may spend in
	// retry backoff: once exceeded, the call fails with its last error
	// instead of starting another attempt. Default 2s.
	RetryTimeCap time.Duration
	// SkewRetries is how many times a query whose partial tables disagreed
	// on the metric identity is retried whole before failing. Default 5 —
	// skew is transient by construction (shards converge via update
	// broadcast and reconnect replay), so retrying is almost always enough.
	SkewRetries int
	// FailoverRetries is how many times a query that lost a shard (a
	// ShardError after the per-shard retry budget) is re-scattered whole.
	// By then the dead shard's breaker has tripped, so the re-scatter
	// routes its work to surviving shards — replicate mode picks another
	// replica, partition mode temporarily re-owns the cells. Default 2.
	FailoverRetries int
	// FailThreshold is the consecutive-transport-failure count that trips a
	// shard's circuit breaker open. Default 3.
	FailThreshold int
	// BreakerCooldown is how long an open breaker fast-fails connects
	// before letting one half-open probe through. Default 250ms.
	BreakerCooldown time.Duration
	// Heartbeat enables background health probing: every interval each
	// shard is pinged over the mux identity stream (live connections) or
	// re-dialled (down shards, respecting the breaker's half-open gate).
	// 0 disables the prober — health is then tracked from query traffic
	// alone. Heartbeats stop permanently at the router's first Close.
	Heartbeat time.Duration
	// UpdateQuorum is K in "UpdateWeights returns after K of N shards
	// ack": the call blocks until K acknowledgements, leaving stragglers
	// to converge through broadcast completion or reconnect replay.
	// Default 1 (any reachable shard); values above the fleet size clamp
	// to N.
	UpdateQuorum int
	// DefaultDeadline is applied on the router's serving side to requests
	// that carry no deadline of their own: the query must answer within
	// this budget or be dropped. 0 leaves deadline-less requests unbounded.
	DefaultDeadline time.Duration
	// Hello is announced to shards when dialling; Node/Role default to a
	// router identity.
	Hello protocol.Hello
}

// ShardError reports the failure of one shard after the retry budget.
type ShardError struct {
	Shard int
	Err   error
}

// Error implements error.
func (e *ShardError) Error() string {
	return fmt.Sprintf("fleet: shard %d failed: %v", e.Shard, e.Err)
}

// Unwrap exposes the underlying cause.
func (e *ShardError) Unwrap() error { return e.Err }

// Skew errors: the partial tables of one query disagreed on the metric they
// were computed under, and the retry budget did not outlast the skew.
var (
	// ErrGenerationSkew reports partial tables with differing (or unknown)
	// weight-content checksums.
	ErrGenerationSkew = errors.New("fleet: generation skew across partial tables")
	// ErrProfileSkew reports a partial table echoing the wrong weight
	// profile.
	ErrProfileSkew = errors.New("fleet: profile skew across partial tables")
)

// shardLink is the router's connection slot for one shard: at most one live
// multiplexed client, redialled (and replayed into) on demand, plus the
// shard's breaker state and the ordered-update bookkeeping.
type shardLink struct {
	idx  int
	dial Dialer

	mu     sync.Mutex
	client *protocol.MuxClient

	// hmu guards health; it is never held across dials or I/O.
	hmu    sync.Mutex
	health shardHealth

	// updMu serialises weight-update sends to this shard; lastUpd is the
	// highest update sequence delivered. An update arriving out of order
	// (a quorum return let a newer broadcast overtake it) is upgraded to a
	// full cumulative snapshot instead of regressing arcs the newer delta
	// did not touch.
	updMu   sync.Mutex
	lastUpd uint64
}

// arcKey identifies one directed arc in the cumulative weight state.
type arcKey struct {
	from, to roadnet.NodeID
}

// Router fronts a fleet of shards as one logical directions search server.
// It implements obfsvc.QueryExecutor and obfsvc.BatchExecutor, and (via
// HandleMux/ServeMux in serve.go) the serving side of the multiplexed
// transport, so obfuscators target a router exactly like a single server.
type Router struct {
	cfg    Config
	shards []*shardLink

	// Cumulative last-write-wins weight state, replayed to (re)connecting
	// shards so a restarted shard converges to the fleet metric before the
	// router sends it queries. latest holds the current cost per touched
	// arc; order preserves first-touch order for deterministic replay. seq
	// numbers every recorded update — assigned under wmu, so sequence order
	// equals fold order and a per-shard send that observes a gap can be
	// upgraded to a full snapshot.
	wmu    sync.Mutex
	latest map[arcKey]float64
	order  []arcKey
	seq    uint64

	batchID atomic.Uint64
	rr      atomic.Uint64 // replicate-mode round-robin cursor

	// quiesce interrupts in-flight retry backoff sleeps; Close closes the
	// current channel and installs a fresh one, so the router stays usable
	// (connections redial on demand) while no sleeper outlives a quiesce.
	qmu     sync.Mutex
	quiesce chan struct{}

	// hbStop ends the heartbeat probers (one goroutine per shard when
	// Config.Heartbeat > 0) at the first Close.
	hbStop chan struct{}
	hbOnce sync.Once

	metrics *metrics.Registry
	// Pre-resolved counters; fleet_generation_skew is the metric the
	// acceptance criteria pin — every refused merge shows up there.
	mQueries        *metrics.Counter
	mSubqueries     *metrics.Counter
	mGenSkew        *metrics.Counter
	mProfSkew       *metrics.Counter
	mRetries        *metrics.Counter
	mFailures       *metrics.Counter
	mDegraded       *metrics.Counter
	mWeightUpd      *metrics.Counter
	mReplays        *metrics.Counter
	mFailovers      *metrics.Counter
	mBreakerTrips   *metrics.Counter
	mHeartbeatFails *metrics.Counter
	mDeadlineDrops  *metrics.Counter
}

// New builds a router over one Dialer per shard.
func New(cfg Config, dialers []Dialer) (*Router, error) {
	if len(dialers) == 0 {
		return nil, fmt.Errorf("fleet: need at least one shard dialer")
	}
	if cfg.Mode == ModePartition && len(dialers) > 1 && cfg.Partition == nil {
		return nil, fmt.Errorf("fleet: partition mode with %d shards needs a Partition", len(dialers))
	}
	if cfg.CellOwner != nil && cfg.Partition != nil && len(cfg.CellOwner) != cfg.Partition.NumCells() {
		return nil, fmt.Errorf("fleet: CellOwner has %d entries for %d cells", len(cfg.CellOwner), cfg.Partition.NumCells())
	}
	if cfg.Retries <= 0 {
		cfg.Retries = 3
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 10 * time.Millisecond
	}
	if cfg.BackoffCap <= 0 {
		cfg.BackoffCap = 16 * cfg.RetryBackoff
	}
	if cfg.RetryTimeCap <= 0 {
		cfg.RetryTimeCap = 2 * time.Second
	}
	if cfg.SkewRetries <= 0 {
		cfg.SkewRetries = 5
	}
	if cfg.FailoverRetries <= 0 {
		cfg.FailoverRetries = 2
	}
	if cfg.FailThreshold <= 0 {
		cfg.FailThreshold = 3
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = 250 * time.Millisecond
	}
	if cfg.UpdateQuorum <= 0 {
		cfg.UpdateQuorum = 1
	}
	if cfg.UpdateQuorum > len(dialers) {
		cfg.UpdateQuorum = len(dialers)
	}
	if cfg.Hello.Role == "" {
		cfg.Hello.Role = "router"
	}
	r := &Router{
		cfg:     cfg,
		latest:  make(map[arcKey]float64),
		quiesce: make(chan struct{}),
		hbStop:  make(chan struct{}),
		metrics: metrics.NewRegistry(),
	}
	r.mQueries = r.metrics.CounterVar("fleet_queries")
	r.mSubqueries = r.metrics.CounterVar("fleet_subqueries")
	r.mGenSkew = r.metrics.CounterVar("fleet_generation_skew")
	r.mProfSkew = r.metrics.CounterVar("fleet_profile_skew")
	r.mRetries = r.metrics.CounterVar("fleet_shard_retries")
	r.mFailures = r.metrics.CounterVar("fleet_shard_failures")
	r.mDegraded = r.metrics.CounterVar("fleet_degraded_replies")
	r.mWeightUpd = r.metrics.CounterVar("fleet_weight_updates")
	r.mReplays = r.metrics.CounterVar("fleet_replays")
	r.mFailovers = r.metrics.CounterVar("fleet_failovers")
	r.mBreakerTrips = r.metrics.CounterVar("fleet_breaker_trips")
	r.mHeartbeatFails = r.metrics.CounterVar("fleet_heartbeat_failures")
	r.mDeadlineDrops = r.metrics.CounterVar("fleet_deadline_exceeded")
	for i, d := range dialers {
		if d == nil {
			return nil, fmt.Errorf("fleet: nil dialer for shard %d", i)
		}
		r.shards = append(r.shards, &shardLink{idx: i, dial: d})
		r.setStateGauge(i, ShardUp)
	}
	if cfg.Heartbeat > 0 {
		for _, l := range r.shards {
			go r.heartbeatLoop(l)
		}
	}
	return r, nil
}

// NumShards returns the fleet size.
func (r *Router) NumShards() int { return len(r.shards) }

// Metrics returns the router's instrumentation registry.
func (r *Router) Metrics() *metrics.Registry { return r.metrics }

// Close tears down every shard connection and interrupts every in-flight
// retry backoff sleep. The router can still be used afterwards — connections
// redial on demand and a fresh quiesce channel is installed — so Close is a
// quiesce, not a shutdown; only the heartbeat probers (if any) stop
// permanently at the first Close.
func (r *Router) Close() {
	r.hbOnce.Do(func() { close(r.hbStop) })
	r.qmu.Lock()
	close(r.quiesce)
	r.quiesce = make(chan struct{})
	r.qmu.Unlock()
	for _, l := range r.shards {
		l.mu.Lock()
		if l.client != nil {
			l.client.Close()
			l.client = nil
		}
		l.mu.Unlock()
	}
}

// connect returns the shard's live client, dialling (and replaying the
// cumulative weight state into the shard) if needed. While the shard's
// breaker is open and cooling the call fails fast with errShardDown; once
// the cooldown elapses the dial itself is the half-open probe, and success
// (dial + replay) closes the breaker.
func (r *Router) connect(l *shardLink) (*protocol.MuxClient, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.client != nil && l.client.Err() == nil {
		return l.client, nil
	}
	l.client = nil
	if !r.probeAllowed(l) {
		return nil, errShardDown
	}
	c, err := l.dial()
	if err != nil {
		r.noteFailure(l)
		return nil, err
	}
	if err := r.replayTo(l, c); err != nil {
		c.Close()
		r.noteFailure(l)
		return nil, fmt.Errorf("replaying weight state: %w", err)
	}
	l.client = c
	r.noteSuccess(l)
	return c, nil
}

// dropClient forgets a failed client so the next attempt redials. Only the
// exact client that failed is dropped — a concurrent redial's fresh client
// stays.
func (l *shardLink) dropClient(c *protocol.MuxClient) {
	l.mu.Lock()
	if l.client == c {
		l.client = nil
	}
	l.mu.Unlock()
	c.Close()
}

// snapshotUpdate builds one WeightUpdate carrying the whole cumulative
// last-write-wins state and the sequence it covers (every recorded update up
// to and including seq).
func (r *Router) snapshotUpdate() (protocol.WeightUpdate, uint64) {
	r.wmu.Lock()
	defer r.wmu.Unlock()
	changes := make([]roadnet.ArcWeightChange, len(r.order))
	for i, k := range r.order {
		changes[i] = roadnet.ArcWeightChange{From: k.from, To: k.to, NewCost: r.latest[k]}
	}
	return protocol.WeightUpdate{UpdateID: r.seq, Changes: changes}, r.seq
}

// replayTo brings a freshly connected shard up to the fleet's cumulative
// weight state. A shard that restarted with base weights receives every arc
// the fleet has touched (last-write-wins, one WeightUpdate) before the
// router admits it; a shard that never died receives an update it has
// already applied, which is idempotent.
func (r *Router) replayTo(l *shardLink, c *protocol.MuxClient) error {
	upd, seq := r.snapshotUpdate()
	if len(upd.Changes) == 0 {
		return nil
	}
	res, err := c.Do(upd)
	if err != nil {
		return err
	}
	if _, ok := res.(protocol.WeightUpdateAck); !ok {
		return fmt.Errorf("fleet: unexpected replay reply %T", res)
	}
	l.updMu.Lock()
	if seq > l.lastUpd {
		l.lastUpd = seq
	}
	l.updMu.Unlock()
	r.mReplays.Add(1)
	return nil
}

// record folds changes into the cumulative last-write-wins replay state and
// assigns the update's sequence number; sequence order equals fold order
// because both happen under wmu.
func (r *Router) record(changes []roadnet.ArcWeightChange) uint64 {
	r.wmu.Lock()
	for _, c := range changes {
		k := arcKey{from: c.From, to: c.To}
		if _, seen := r.latest[k]; !seen {
			r.order = append(r.order, k)
		}
		r.latest[k] = c.NewCost
	}
	r.seq++
	seq := r.seq
	r.wmu.Unlock()
	return seq
}

// sendUpdate delivers one weight update to one shard, keeping per-shard
// delivery ordered: sends are serialised on the link's updMu, and a delta
// that a newer broadcast already overtook (possible once UpdateWeights
// returns at quorum while stragglers run on) is upgraded to a full
// cumulative snapshot — last-write-wins and idempotent — instead of
// regressing arcs the newer delta did not touch.
func (r *Router) sendUpdate(l *shardLink, seq uint64, changes []roadnet.ArcWeightChange) error {
	c, err := r.connect(l)
	if err != nil {
		return err
	}
	// The send itself runs under updMu; failure handling (dropClient takes
	// l.mu) happens outside, keeping the lock order l.mu → updMu acyclic
	// with connect's replay path.
	err = func() error {
		l.updMu.Lock()
		defer l.updMu.Unlock()
		upd := protocol.WeightUpdate{UpdateID: seq, Changes: changes}
		if seq < l.lastUpd {
			upd, seq = r.snapshotUpdate()
		}
		res, err := c.Do(upd)
		if err != nil {
			return err
		}
		if _, ok := res.(protocol.WeightUpdateAck); !ok {
			return fmt.Errorf("unexpected ack type %T", res)
		}
		if seq > l.lastUpd {
			l.lastUpd = seq
		}
		return nil
	}()
	if err != nil {
		if !isRemoteError(err) {
			r.noteFailure(l)
			l.dropClient(c)
		}
		return err
	}
	r.noteSuccess(l)
	return nil
}

// UpdateWeights applies live weight changes fleet-wide: the cumulative
// replay state is folded first (so even a shard that is down right now
// converges on reconnect), then the update is broadcast to every shard in
// parallel and the call returns once Config.UpdateQuorum shards have
// acknowledged it. Broadcasts past the quorum finish in the background —
// their per-shard sends stay ordered, and a shard none of them reached
// converges through replay on its next connect. With the default quorum of
// 1 the error return is non-nil only when *no* shard could be updated or
// reached; a larger quorum that some but not all shards met reports
// ErrQuorumNotReached.
func (r *Router) UpdateWeights(changes []roadnet.ArcWeightChange) error {
	if len(changes) == 0 {
		return nil
	}
	seq := r.record(changes)
	r.mWeightUpd.Add(1)
	n := len(r.shards)
	results := make(chan error, n)
	for _, l := range r.shards {
		go func(l *shardLink) {
			err := r.sendUpdate(l, seq, changes)
			if err != nil {
				r.mFailures.Add(1)
			}
			results <- err
		}(l)
	}
	quorum := r.cfg.UpdateQuorum
	acks, failed := 0, 0
	var last error
	for acks < quorum && acks+failed < n {
		if err := <-results; err != nil {
			failed++
			last = err
		} else {
			acks++
		}
	}
	if acks >= quorum {
		return nil
	}
	if acks == 0 {
		return fmt.Errorf("fleet: weight update reached no shard: %w", last)
	}
	return fmt.Errorf("%w: %d of %d acks (need %d), last failure: %v", ErrQuorumNotReached, acks, n, quorum, last)
}

// isRemoteError reports whether err is a handler-level failure (the
// connection stays healthy) rather than a transport failure.
func isRemoteError(err error) bool {
	var re *protocol.RemoteError
	return errors.As(err, &re)
}

// callShard performs one request on one shard under the retry budget:
// transport failures drop the connection, count against the shard's breaker,
// redial and retry (counted in fleet_shard_retries) behind a jittered
// exponential backoff that the router's Close and the request deadline both
// interrupt; handler-level failures return immediately — the shard answered,
// retrying the same request cannot help. An open breaker fails the call fast
// so the caller can fail over instead of burning its retry budget on a
// corpse. Total in-retry wall time is capped by Config.RetryTimeCap.
func (r *Router) callShard(idx int, msg any, deadline time.Time) (any, error) {
	l := r.shards[idx]
	var lastErr error
	start := time.Now()
	for attempt := 0; attempt <= r.cfg.Retries; attempt++ {
		if attempt > 0 {
			if time.Since(start) > r.cfg.RetryTimeCap {
				break
			}
			r.mRetries.Add(1)
			if err := r.sleep(backoffDelay(attempt, r.cfg.RetryBackoff, r.cfg.BackoffCap), deadline); err != nil {
				lastErr = err
				break
			}
		}
		c, err := r.connect(l)
		if err != nil {
			lastErr = err
			if errors.Is(err, errShardDown) {
				break // circuit open: every retry would fast-fail the same way
			}
			continue
		}
		res, err := c.DoDeadline(msg, deadline)
		if err == nil {
			r.noteSuccess(l)
			return res, nil
		}
		if isRemoteError(err) {
			return nil, &ShardError{Shard: idx, Err: err}
		}
		lastErr = err
		r.noteFailure(l)
		l.dropClient(c)
		if protocol.IsDeadlineExceeded(err) {
			break // no time left for another attempt
		}
	}
	r.mFailures.Add(1)
	return nil, &ShardError{Shard: idx, Err: lastErr}
}

// subquery is one shard's share of a scattered query: the source rows it
// owns (in their original relative order) and their global positions.
type subquery struct {
	shard   int
	sources []roadnet.NodeID
	global  []int
}

// scatter splits q by shard ownership, consulting shard health. Partition
// mode groups sources by the (healthy) owner of their partition cell;
// replicate mode (and a one-shard fleet) assigns the whole query to the next
// available shard in round-robin order.
func (r *Router) scatter(q protocol.ServerQuery) []subquery {
	n := len(r.shards)
	if n == 1 || r.cfg.Mode == ModeReplicate {
		idx := r.routeShard(int(r.rr.Add(1)-1) % n)
		all := make([]int, len(q.Sources))
		for i := range all {
			all[i] = i
		}
		return []subquery{{shard: idx, sources: q.Sources, global: all}}
	}
	bySh := make(map[int]*subquery, n)
	order := make([]*subquery, 0, n)
	for gi, src := range q.Sources {
		shard := r.routeShard(r.ownerOf(src))
		sub, ok := bySh[shard]
		if !ok {
			sub = &subquery{shard: shard}
			bySh[shard] = sub
			order = append(order, sub)
		}
		sub.sources = append(sub.sources, src)
		sub.global = append(sub.global, gi)
	}
	out := make([]subquery, len(order))
	for i, sub := range order {
		out[i] = *sub
	}
	return out
}

// ownerOf resolves the shard owning a node's partition cell.
func (r *Router) ownerOf(v roadnet.NodeID) int {
	cell := r.cfg.Partition.CellOf(v)
	if r.cfg.CellOwner != nil {
		return r.cfg.CellOwner[cell] % len(r.shards)
	}
	return cell % len(r.shards)
}

// routeShard returns the shard that should actually receive work addressed
// to preferred: preferred itself while it is available, else the next
// available shard — in partition mode this temporarily re-owns the down
// shard's cells, which is answer-preserving because every shard holds the
// full replicated road map (ownership is work placement, not reachability).
// Ownership restores by construction when the preferred shard's breaker
// closes again. With no shard available the preferred one is returned and
// the call fails on it honestly.
func (r *Router) routeShard(preferred int) int {
	if r.available(r.shards[preferred]) {
		return preferred
	}
	n := len(r.shards)
	for k := 1; k < n; k++ {
		idx := (preferred + k) % n
		if r.available(r.shards[idx]) {
			r.mFailovers.Add(1)
			return idx
		}
	}
	return preferred
}

// checkIdentity verifies that every partial reply of one query was computed
// under one metric: all ContentSums equal and nonzero (zero = the shard
// could not pin a stable identity, which the router must treat as skew) and
// every echoed profile matching the query's. Counted per refusal.
func (r *Router) checkIdentity(q protocol.ServerQuery, replies []protocol.ServerReply) error {
	for _, rep := range replies {
		if rep.Profile != q.Profile {
			r.mProfSkew.Add(1)
			return fmt.Errorf("%w: reply under profile %q, query under %q", ErrProfileSkew, rep.Profile, q.Profile)
		}
	}
	sum := replies[0].ContentSum
	for _, rep := range replies[1:] {
		if rep.ContentSum != sum {
			r.mGenSkew.Add(1)
			return fmt.Errorf("%w: content checksums %x != %x", ErrGenerationSkew, rep.ContentSum, sum)
		}
	}
	if sum == 0 && len(replies) > 1 {
		// With a single partial there is nothing to mix; with several, an
		// unknown identity cannot be proven consistent with the others.
		r.mGenSkew.Add(1)
		return fmt.Errorf("%w: partial table with unknown identity", ErrGenerationSkew)
	}
	return nil
}

// merge stitches the partial tables back into the single-server reply:
// source-major, destinations in query order, rows ordered by the sources'
// global positions. Every shard searched the full graph, so concatenation
// (not minimisation) is exact.
func (r *Router) merge(q protocol.ServerQuery, subs []subquery, replies []protocol.ServerReply) (protocol.ServerReply, error) {
	if err := r.checkIdentity(q, replies); err != nil {
		return protocol.ServerReply{}, err
	}
	if len(subs) == 1 {
		// Whole query on one shard: the reply already is the answer.
		return replies[0], nil
	}
	nT := len(q.Dests)
	merged := protocol.ServerReply{
		QueryID:    q.QueryID,
		ContentSum: replies[0].ContentSum,
		Profile:    q.Profile,
		Paths:      make([]protocol.CandidatePath, len(q.Sources)*nT),
	}
	for si, sub := range subs {
		rep := replies[si]
		if len(rep.Paths) != len(sub.sources)*nT {
			return protocol.ServerReply{}, &ShardError{Shard: sub.shard, Err: fmt.Errorf("fleet: partial table has %d candidates for %d×%d", len(rep.Paths), len(sub.sources), nT)}
		}
		merged.SettledNodes += rep.SettledNodes
		merged.PageFaults += rep.PageFaults
		merged.Degraded = merged.Degraded || rep.Degraded
		for j, gi := range sub.global {
			copy(merged.Paths[gi*nT:(gi+1)*nT], rep.Paths[j*nT:(j+1)*nT])
		}
	}
	// Generation numbers are per-shard and not comparable across a merged
	// table; the content checksum is the fleet-wide identity.
	merged.Generation = 0
	return merged, nil
}

// executeOnce scatters q, gathers the partial tables and merges them. All
// subqueries run in parallel; a shard failure after the retry budget fails
// the query with its ShardError.
func (r *Router) executeOnce(q protocol.ServerQuery, deadline time.Time) (protocol.ServerReply, error) {
	subs := r.scatter(q)
	r.mSubqueries.Add(int64(len(subs)))
	replies := make([]protocol.ServerReply, len(subs))
	errs := make([]error, len(subs))
	var wg sync.WaitGroup
	for i, sub := range subs {
		wg.Add(1)
		go func(i int, sub subquery) {
			defer wg.Done()
			sq := protocol.ServerQuery{
				QueryID:      q.QueryID,
				Sources:      sub.sources,
				Dests:        q.Dests,
				Profile:      q.Profile,
				DistanceOnly: q.DistanceOnly,
			}
			res, err := r.callShard(sub.shard, sq, deadline)
			if err != nil {
				errs[i] = err
				return
			}
			rep, ok := res.(protocol.ServerReply)
			if !ok {
				errs[i] = &ShardError{Shard: sub.shard, Err: fmt.Errorf("fleet: unexpected reply type %T", res)}
				return
			}
			replies[i] = rep
		}(i, sub)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return protocol.ServerReply{}, err
		}
	}
	return r.merge(q, subs, replies)
}

// Execute answers one obfuscated query through the fleet; it implements
// obfsvc.QueryExecutor.
func (r *Router) Execute(q protocol.ServerQuery) (protocol.ServerReply, error) {
	return r.ExecuteDeadline(q, time.Time{})
}

// ExecuteDeadline is Execute bounded by an absolute deadline (zero = none)
// that rides in every shard sub-request and cuts retry backoff short.
// Queries refused for metric skew retry whole (the scatter re-runs, picking
// up converged shards) up to Config.SkewRetries times; queries that lost a
// shard (a transport-level ShardError after the per-shard budget — by which
// point the shard's breaker has tripped) re-scatter up to
// Config.FailoverRetries times, routing the dead shard's work to survivors.
func (r *Router) ExecuteDeadline(q protocol.ServerQuery, deadline time.Time) (protocol.ServerReply, error) {
	r.mQueries.Add(1)
	skewLeft := r.cfg.SkewRetries
	failLeft := r.cfg.FailoverRetries
	var lastErr error
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			if err := r.sleep(backoffDelay(attempt, r.cfg.RetryBackoff, r.cfg.BackoffCap), deadline); err != nil {
				if errors.Is(err, protocol.ErrDeadlineExceeded) {
					r.mDeadlineDrops.Add(1)
				}
				return protocol.ServerReply{}, err
			}
		}
		reply, err := r.executeOnce(q, deadline)
		if err == nil {
			if reply.Degraded {
				r.mDegraded.Add(1)
			}
			return reply, nil
		}
		lastErr = err
		switch {
		case protocol.IsDeadlineExceeded(err):
			// No budget left anywhere; retrying cannot beat the clock.
			r.mDeadlineDrops.Add(1)
			return protocol.ServerReply{}, err
		case errors.Is(err, ErrRouterClosed):
			// Close quiesced the router mid-query; a failover retry would
			// sleep against the fresh quiesce channel instead of returning.
			return protocol.ServerReply{}, err
		case errors.Is(err, ErrGenerationSkew) || errors.Is(err, ErrProfileSkew):
			if skewLeft == 0 {
				return protocol.ServerReply{}, lastErr
			}
			skewLeft--
		case isFailoverable(err):
			if failLeft == 0 {
				return protocol.ServerReply{}, lastErr
			}
			failLeft--
		default:
			return protocol.ServerReply{}, err
		}
	}
}

// isFailoverable reports whether a query error is worth a whole-query
// re-scatter: a shard failed at the transport level (dial or connection
// loss), so a re-scatter — consulting the now-tripped breaker — can route
// its work to a surviving shard. Handler-level failures are not retried:
// the shard answered, and every replica would answer the same.
func isFailoverable(err error) bool {
	var se *ShardError
	return errors.As(err, &se) && !isRemoteError(se.Err)
}

// ExecuteBatch answers a whole batch through the fleet; it implements
// obfsvc.BatchExecutor. Every query of the batch is scattered and the
// per-shard shares travel as one streaming BatchQuery per shard — one
// round of frames per shard for the whole batch, not one per subquery.
// Queries whose gather failed (shard failure or metric skew) fall back to
// the per-query Execute path with its own retry and failover budgets, so one
// sick shard degrades the queries it owns without poisoning the batch.
func (r *Router) ExecuteBatch(qs []protocol.ServerQuery) ([]protocol.ServerReply, []error) {
	return r.ExecuteBatchDeadline(qs, time.Time{})
}

// ExecuteBatchDeadline is ExecuteBatch bounded by an absolute deadline
// (zero = none) threaded through every per-shard batch and fallback query.
func (r *Router) ExecuteBatchDeadline(qs []protocol.ServerQuery, deadline time.Time) ([]protocol.ServerReply, []error) {
	replies := make([]protocol.ServerReply, len(qs))
	errs := make([]error, len(qs))
	if len(qs) == 0 {
		return replies, errs
	}
	r.mQueries.Add(int64(len(qs)))

	// Scatter every query and group the subqueries by shard.
	type slot struct {
		q    int // index into qs
		part int // index into that query's subs
	}
	subsPerQ := make([][]subquery, len(qs))
	gathered := make([][]protocol.ServerReply, len(qs))
	partErr := make([]error, len(qs))
	shardBatch := make(map[int][]protocol.ServerQuery)
	shardSlots := make(map[int][]slot)
	for qi, q := range qs {
		subs := r.scatter(q)
		subsPerQ[qi] = subs
		gathered[qi] = make([]protocol.ServerReply, len(subs))
		r.mSubqueries.Add(int64(len(subs)))
		for pi, sub := range subs {
			shardBatch[sub.shard] = append(shardBatch[sub.shard], protocol.ServerQuery{
				QueryID:      q.QueryID,
				Sources:      sub.sources,
				Dests:        q.Dests,
				Profile:      q.Profile,
				DistanceOnly: q.DistanceOnly,
			})
			shardSlots[sub.shard] = append(shardSlots[sub.shard], slot{q: qi, part: pi})
		}
	}

	// One streaming batch per shard, in parallel; per-item errors and
	// whole-shard failures both land in the owning query's partErr.
	var mu sync.Mutex
	var wg sync.WaitGroup
	for shard, batch := range shardBatch {
		wg.Add(1)
		go func(shard int, batch []protocol.ServerQuery, slots []slot) {
			defer wg.Done()
			br, err := r.callShardBatch(shard, batch, deadline)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				for _, sl := range slots {
					if partErr[sl.q] == nil {
						partErr[sl.q] = err
					}
				}
				return
			}
			for i, sl := range slots {
				if msg := br.Errors[i]; msg != "" {
					if partErr[sl.q] == nil {
						partErr[sl.q] = &ShardError{Shard: shard, Err: errors.New(msg)}
					}
					continue
				}
				gathered[sl.q][sl.part] = br.Replies[i]
			}
		}(shard, batch, shardSlots[shard])
	}
	wg.Wait()

	// Merge per query; anything that did not gather cleanly — or whose merge
	// was refused for skew — retries through the per-query path.
	for qi, q := range qs {
		if partErr[qi] == nil {
			merged, err := r.merge(q, subsPerQ[qi], gathered[qi])
			if err == nil {
				if merged.Degraded {
					r.mDegraded.Add(1)
				}
				replies[qi] = merged
				continue
			}
			partErr[qi] = err
		}
		// Execute bumps fleet_queries itself; this retry is a continuation of
		// an already-counted query, so compensate.
		r.mQueries.Add(-1)
		replies[qi], errs[qi] = r.ExecuteDeadline(q, deadline)
	}
	return replies, errs
}

// callShardBatch sends one shard its whole share of a batch under the retry
// budget, mirroring callShard: jittered cancellable backoff, breaker
// accounting, fast-fail on an open circuit and deadline propagation.
func (r *Router) callShardBatch(idx int, batch []protocol.ServerQuery, deadline time.Time) (protocol.BatchReply, error) {
	l := r.shards[idx]
	b := protocol.BatchQuery{BatchID: r.batchID.Add(1), Queries: batch}
	var lastErr error
	start := time.Now()
	for attempt := 0; attempt <= r.cfg.Retries; attempt++ {
		if attempt > 0 {
			if time.Since(start) > r.cfg.RetryTimeCap {
				break
			}
			r.mRetries.Add(1)
			if err := r.sleep(backoffDelay(attempt, r.cfg.RetryBackoff, r.cfg.BackoffCap), deadline); err != nil {
				lastErr = err
				break
			}
		}
		c, err := r.connect(l)
		if err != nil {
			lastErr = err
			if errors.Is(err, errShardDown) {
				break // circuit open: every retry would fast-fail the same way
			}
			continue
		}
		br, err := c.DoBatchDeadline(b, deadline)
		if err == nil {
			if len(br.Replies) != len(batch) || len(br.Errors) != len(batch) {
				return protocol.BatchReply{}, &ShardError{Shard: idx, Err: fmt.Errorf("fleet: batch reply shape %d/%d for %d queries", len(br.Replies), len(br.Errors), len(batch))}
			}
			r.noteSuccess(l)
			return br, nil
		}
		if isRemoteError(err) {
			return protocol.BatchReply{}, &ShardError{Shard: idx, Err: err}
		}
		lastErr = err
		r.noteFailure(l)
		l.dropClient(c)
		if protocol.IsDeadlineExceeded(err) {
			break // no time left for another attempt
		}
	}
	r.mFailures.Add(1)
	return protocol.BatchReply{}, &ShardError{Shard: idx, Err: lastErr}
}
