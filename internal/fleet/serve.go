package fleet

// The router's serving side: obfuscators connect to the router over the same
// multiplexed transport the router uses toward its shards, so a fleet is a
// drop-in replacement for a single opaque-server address. Shedding composes:
// a request arriving above the router connection's ShedAt watermark is
// rewritten to DistanceOnly before scattering, so every shard answers the
// degraded distance-only table.

import (
	"fmt"
	"net"
	"time"

	"opaque/internal/protocol"
)

// reqDeadline resolves the deadline one incoming request runs under: the
// caller's own deadline when it sent one, otherwise Config.DefaultDeadline
// from now (zero stays zero — unbounded).
func (r *Router) reqDeadline(info protocol.ReqInfo) time.Time {
	if !info.Deadline.IsZero() || r.cfg.DefaultDeadline <= 0 {
		return info.Deadline
	}
	return time.Now().Add(r.cfg.DefaultDeadline)
}

// HelloInfo returns the Hello the router greets connecting obfuscators with.
// The fleet has no single generation — shards converge through broadcast and
// replay — so the identity fields stay zero and per-reply ContentSums carry
// the metric identity instead.
func (r *Router) HelloInfo() protocol.Hello {
	h := protocol.Hello{Role: "router"}
	if r.cfg.Partition != nil {
		h.Cells = r.cfg.Partition.NumCells()
	}
	return h
}

// routerMuxHandler adapts the router to the serving side of the multiplexed
// transport; it implements protocol.MuxHandler and protocol.MuxBatchStreamer.
type routerMuxHandler struct {
	r *Router
}

// HandleMux implements protocol.MuxHandler. The request deadline (if any)
// propagates into the scatter/gather engine: shard sub-requests carry it and
// retry backoff never sleeps past it.
func (h routerMuxHandler) HandleMux(msg any, info protocol.ReqInfo) (any, error) {
	switch m := msg.(type) {
	case protocol.ServerQuery:
		if info.Shed {
			m.DistanceOnly = true
		}
		return h.r.ExecuteDeadline(m, h.r.reqDeadline(info))
	case protocol.BatchQuery:
		return h.r.batchReply(m, info), nil
	case protocol.WeightUpdate:
		if err := h.r.UpdateWeights(m.Changes); err != nil {
			return nil, err
		}
		// The fleet-wide identity is per-shard; the ack confirms receipt and
		// fold into the replay state, not one global generation.
		return protocol.WeightUpdateAck{UpdateID: m.UpdateID}, nil
	default:
		return nil, fmt.Errorf("fleet: unexpected message type %T", msg)
	}
}

// HandleMuxBatch implements protocol.MuxBatchStreamer: the batch is answered
// through the scatter/gather engine and its items stream back per query.
func (h routerMuxHandler) HandleMuxBatch(b protocol.BatchQuery, info protocol.ReqInfo, emit func(protocol.BatchItem)) error {
	qs := b.Queries
	if info.Shed {
		qs = make([]protocol.ServerQuery, len(b.Queries))
		copy(qs, b.Queries)
		for i := range qs {
			qs[i].DistanceOnly = true
		}
	}
	replies, errs := h.r.ExecuteBatchDeadline(qs, h.r.reqDeadline(info))
	for i := range replies {
		item := protocol.BatchItem{BatchID: b.BatchID, Index: i, Reply: replies[i]}
		if errs[i] != nil {
			item.Error = errs[i].Error()
		}
		emit(item)
	}
	return nil
}

// batchReply is the unary (non-streaming) batch answer.
func (r *Router) batchReply(b protocol.BatchQuery, info protocol.ReqInfo) protocol.BatchReply {
	qs := b.Queries
	if info.Shed {
		qs = make([]protocol.ServerQuery, len(b.Queries))
		copy(qs, b.Queries)
		for i := range qs {
			qs[i].DistanceOnly = true
		}
	}
	replies, errs := r.ExecuteBatchDeadline(qs, r.reqDeadline(info))
	reply := protocol.BatchReply{
		BatchID: b.BatchID,
		Replies: replies,
		Errors:  make([]string, len(errs)),
	}
	for i, err := range errs {
		if err != nil {
			reply.Errors[i] = err.Error()
		}
	}
	return reply
}

// MuxHandler returns the router's multiplexed-transport handler; its dynamic
// type implements protocol.MuxBatchStreamer, so batch replies stream.
func (r *Router) MuxHandler() protocol.MuxHandler {
	return routerMuxHandler{r: r}
}

// ServeMux accepts obfuscator connections on ln until the listener closes.
func (r *Router) ServeMux(ln net.Listener, cfg protocol.MuxServerConfig) error {
	if cfg.Hello == nil {
		cfg.Hello = r.HelloInfo
	}
	return protocol.ServeMux(ln, r.MuxHandler(), cfg)
}

// ServeMuxConn serves one established connection (in-process harnesses drive
// the router over net.Pipe through this).
func (r *Router) ServeMuxConn(conn net.Conn, cfg protocol.MuxServerConfig) error {
	if cfg.Hello == nil {
		cfg.Hello = r.HelloInfo
	}
	return protocol.ServeMuxConn(conn, r.MuxHandler(), cfg)
}
