package fleet_test

// The fleet churn soak: router + 2 shards under a sustained weight-update
// stream and concurrent query load, with a shard kill/restart in the middle.
// It asserts the invariants that must hold under arbitrary interleaving —
// every successful reply carries one consistent metric identity (the merge
// refusal makes mixed-generation tables impossible by construction), failures
// are only bounded-retry shard errors or skew, and after the churn stops the
// fleet converges back to exact reference answers.
//
// The default run is short enough for the ordinary test suite; CI's soak step
// stretches it with FLEET_SOAK_SECONDS=10 under -race.

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"opaque/internal/fleet"
	"opaque/internal/fleet/fleettest"
	"opaque/internal/protocol"
	"opaque/internal/roadnet"
	"opaque/internal/server"
)

func soakDuration(t *testing.T) time.Duration {
	if s := os.Getenv("FLEET_SOAK_SECONDS"); s != "" {
		secs, err := strconv.Atoi(s)
		if err != nil || secs <= 0 {
			t.Fatalf("FLEET_SOAK_SECONDS=%q is not a positive integer", s)
		}
		return time.Duration(secs) * time.Second
	}
	if testing.Short() {
		return 500 * time.Millisecond
	}
	return 2 * time.Second
}

func TestFleetChurnSoak(t *testing.T) {
	duration := soakDuration(t)
	g := testGraph(t, 400, 1901)
	cl, err := fleettest.New(g, fleettest.Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ref := server.MustNew(g, server.DefaultConfig())

	// The churn stream applies to the fleet and the reference in lockstep
	// under refMu, so the post-churn comparison has an exact oracle.
	var refMu sync.Mutex
	applyBoth := func(changes []roadnet.ArcWeightChange) error {
		refMu.Lock()
		defer refMu.Unlock()
		if err := cl.Router.UpdateWeights(changes); err != nil {
			return fmt.Errorf("fleet update: %w", err)
		}
		if _, err := ref.UpdateWeights(changes); err != nil {
			return fmt.Errorf("reference update: %w", err)
		}
		return nil
	}

	stop := make(chan struct{})
	errCh := make(chan error, 8)
	var updates, queries, degradedQueries atomic.Int64

	// Churn: a sustained stream of weight updates over a hot arc pool.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(6001))
		for {
			select {
			case <-stop:
				return
			default:
			}
			var changes []roadnet.ArcWeightChange
			for i := 0; i < 4; i++ {
				v := roadnet.NodeID(rng.Intn(g.NumNodes()))
				if arcs := g.Arcs(v); len(arcs) > 0 {
					changes = append(changes, roadnet.ArcWeightChange{From: v, To: arcs[0].To, NewCost: arcs[0].Cost * (0.5 + rng.Float64())})
				}
			}
			if err := applyBoth(changes); err != nil {
				errCh <- err
				return
			}
			updates.Add(1)
			time.Sleep(2 * time.Millisecond)
		}
	}()

	// Query load: several workers hammering the router while the metric
	// churns underneath. Failures must be typed — a shard error inside the
	// kill window or residual skew — never a malformed or mixed reply.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			qs := makeQueries(g, 10, int64(7000+w))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				q := qs[i%len(qs)]
				rep, err := cl.Router.Execute(q)
				queries.Add(1)
				if err != nil {
					var se *fleet.ShardError
					if errors.As(err, &se) || errors.Is(err, fleet.ErrGenerationSkew) || errors.Is(err, fleet.ErrProfileSkew) {
						degradedQueries.Add(1)
						continue
					}
					errCh <- fmt.Errorf("worker %d query %d: untyped failure: %w", w, q.QueryID, err)
					return
				}
				if len(rep.Paths) != len(q.Sources)*len(q.Dests) {
					errCh <- fmt.Errorf("worker %d query %d: table shape %d for %d×%d", w, q.QueryID, len(rep.Paths), len(q.Sources), len(q.Dests))
					return
				}
			}
		}(w)
	}

	// Fault injection mid-churn: kill and restart each shard in turn while
	// updates and queries keep flowing.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			case <-time.After(duration / 4):
			}
			shard := i % cl.NumShards()
			cl.Kill(shard)
			time.Sleep(20 * time.Millisecond)
			if err := cl.Restart(shard); err != nil {
				errCh <- fmt.Errorf("restarting shard %d: %w", shard, err)
				return
			}
		}
	}()

	time.Sleep(duration)
	close(stop)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if t.Failed() {
		return
	}

	// Quiesced fleet: every answer is exact against the reference again.
	for _, q := range makeQueries(g, 10, 7101) {
		want, err := ref.Evaluate(q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := cl.Router.Execute(q)
		if err != nil {
			t.Fatalf("post-soak query %d: %v", q.QueryID, err)
		}
		assertSameReply(t, fmt.Sprintf("post-soak q%d", q.QueryID), got, want, false)
	}

	m := cl.Router.Metrics()
	t.Logf("soak %v: %d updates, %d queries (%d failed in the kill windows), replays=%d gen-skew=%d retries=%d failures=%d",
		duration, updates.Load(), queries.Load(), degradedQueries.Load(),
		m.Counter("fleet_replays"), m.Counter("fleet_generation_skew"),
		m.Counter("fleet_shard_retries"), m.Counter("fleet_shard_failures"))
	if updates.Load() == 0 || queries.Load() == 0 {
		t.Errorf("soak exercised nothing: %d updates, %d queries", updates.Load(), queries.Load())
	}
	if m.Counter("fleet_replays") == 0 {
		t.Error("no reconnect replay happened across the kill/restart cycles")
	}
}

func chaosDuration(t *testing.T) time.Duration {
	if s := os.Getenv("FLEET_CHAOS_SECONDS"); s != "" {
		secs, err := strconv.Atoi(s)
		if err != nil || secs <= 0 {
			t.Fatalf("FLEET_CHAOS_SECONDS=%q is not a positive integer", s)
		}
		return time.Duration(secs) * time.Second
	}
	if testing.Short() {
		return 500 * time.Millisecond
	}
	return 2 * time.Second
}

// TestFleetChaosSoak is the full fault battery under churn: three shards with
// heartbeat probing and per-query deadlines, while a fault cycler walks the
// fleet injecting kills, connection blackholes, write latency and flaky
// dials — one faulted shard at a time, always restored before the next
// strike. The assertions are the fault-tolerance contract: availability
// stays above a floor during the chaos (failover routes around every fault
// the health model can see), every failure is typed (shard/skew/deadline —
// never a malformed or mixed-generation reply), and once the faults stop the
// fleet converges back to exact single-server answers via replay.
//
// Blackholes are the reason the heartbeat exists — a blackholed route
// swallows writes silently, so only the prober's ping deadline can condemn
// the connection — which is why this soak (unlike the churn soak) runs with
// Heartbeat enabled and would hang without it.
func TestFleetChaosSoak(t *testing.T) {
	for _, mode := range []fleet.Mode{fleet.ModePartition, fleet.ModeReplicate} {
		t.Run(mode.String(), func(t *testing.T) {
			chaosSoak(t, mode)
		})
	}
}

func chaosSoak(t *testing.T, mode fleet.Mode) {
	duration := chaosDuration(t)
	g := testGraph(t, 400, 2101)
	cl, err := fleettest.New(g, fleettest.Options{
		Shards: 3,
		Mode:   mode,
		Fleet: fleet.Config{
			Retries: 2, RetryBackoff: 2 * time.Millisecond,
			FailThreshold: 2, BreakerCooldown: 40 * time.Millisecond,
			FailoverRetries: 3,
			Heartbeat:       15 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ref := server.MustNew(g, server.DefaultConfig())

	var refMu sync.Mutex
	applyBoth := func(changes []roadnet.ArcWeightChange) error {
		refMu.Lock()
		defer refMu.Unlock()
		// Quorum 1: one reachable shard is enough mid-chaos; replay and the
		// broadcast stragglers converge the rest.
		if err := cl.Router.UpdateWeights(changes); err != nil {
			return fmt.Errorf("fleet update: %w", err)
		}
		if _, err := ref.UpdateWeights(changes); err != nil {
			return fmt.Errorf("reference update: %w", err)
		}
		return nil
	}

	stop := make(chan struct{})
	errCh := make(chan error, 8)
	var updates, attempts, failures atomic.Int64

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(6101))
		for {
			select {
			case <-stop:
				return
			default:
			}
			var changes []roadnet.ArcWeightChange
			for i := 0; i < 4; i++ {
				v := roadnet.NodeID(rng.Intn(g.NumNodes()))
				if arcs := g.Arcs(v); len(arcs) > 0 {
					changes = append(changes, roadnet.ArcWeightChange{From: v, To: arcs[0].To, NewCost: arcs[0].Cost * (0.5 + rng.Float64())})
				}
			}
			if err := applyBoth(changes); err != nil {
				errCh <- err
				return
			}
			updates.Add(1)
			time.Sleep(3 * time.Millisecond)
		}
	}()

	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			qs := makeQueries(g, 10, int64(8000+w))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				q := qs[i%len(qs)]
				rep, err := cl.Router.ExecuteDeadline(q, time.Now().Add(2*time.Second))
				attempts.Add(1)
				if err != nil {
					var se *fleet.ShardError
					switch {
					case errors.As(err, &se),
						errors.Is(err, fleet.ErrGenerationSkew),
						errors.Is(err, fleet.ErrProfileSkew),
						protocol.IsDeadlineExceeded(err):
						failures.Add(1)
						continue
					default:
						errCh <- fmt.Errorf("worker %d query %d: untyped failure: %w", w, q.QueryID, err)
						return
					}
				}
				if len(rep.Paths) != len(q.Sources)*len(q.Dests) {
					errCh <- fmt.Errorf("worker %d query %d: table shape %d for %d×%d", w, q.QueryID, len(rep.Paths), len(q.Sources), len(q.Dests))
					return
				}
			}
		}(w)
	}

	// The fault cycler: strike one shard at a time, hold the fault, restore,
	// move on. Every fault is restored before the cycler exits, so the
	// post-quiesce phase starts from a whole (if unconverged) fleet.
	wg.Add(1)
	go func() {
		defer wg.Done()
		hold := 50 * time.Millisecond
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			case <-time.After(20 * time.Millisecond):
			}
			sh := i % cl.NumShards()
			switch i % 4 {
			case 0: // crash + restart: exercises dial refusal and replay
				cl.Kill(sh)
				time.Sleep(hold)
				if err := cl.Restart(sh); err != nil {
					errCh <- fmt.Errorf("restarting shard %d: %w", sh, err)
					return
				}
			case 1: // blackhole: silent route death only the heartbeat can see
				cl.Shard(sh).Blackhole(true)
				time.Sleep(hold)
				cl.Shard(sh).Blackhole(false)
			case 2: // latency: a slow link that must not trip anything
				cl.Shard(sh).SetLatency(3 * time.Millisecond)
				time.Sleep(hold)
				cl.Shard(sh).SetLatency(0)
			case 3: // flaky dials: reconnects fail half the time
				cl.Shard(sh).SetDialFailProb(0.5)
				time.Sleep(hold)
				cl.Shard(sh).SetDialFailProb(0)
			}
		}
	}()

	time.Sleep(duration)
	close(stop)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if t.Failed() {
		return
	}

	att, fail := attempts.Load(), failures.Load()
	if att == 0 || updates.Load() == 0 {
		t.Fatalf("chaos exercised nothing: %d attempts, %d updates", att, updates.Load())
	}
	availability := 1 - float64(fail)/float64(att)
	m := cl.Router.Metrics()
	t.Logf("chaos %v (%s): %d updates, %d queries, availability %.4f; trips=%d heartbeat-fails=%d failovers=%d replays=%d deadline-drops=%d gen-skew=%d",
		duration, mode, updates.Load(), att, availability,
		m.Counter("fleet_breaker_trips"), m.Counter("fleet_heartbeat_failures"),
		m.Counter("fleet_failovers"), m.Counter("fleet_replays"),
		m.Counter("fleet_deadline_exceeded"), m.Counter("fleet_generation_skew"))
	// The floor: with one faulted shard at a time and failover re-owning its
	// work, the overwhelming majority of queries must keep answering.
	if availability < 0.9 {
		t.Errorf("availability %.4f under single-shard faults, want ≥ 0.90", availability)
	}
	if m.Counter("fleet_replays") == 0 {
		t.Error("no reconnect replay happened across the kill/restart cycles")
	}

	// Post-quiesce: wait out the breaker cooldown so every shard is
	// re-admitted, then demand exact reference answers — replay must have
	// converged every shard back to the fleet metric.
	time.Sleep(60 * time.Millisecond)
	for _, q := range makeQueries(g, 10, 8101) {
		want, err := ref.Evaluate(q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := cl.Router.Execute(q)
		if err != nil {
			t.Fatalf("post-chaos query %d: %v", q.QueryID, err)
		}
		assertSameReply(t, fmt.Sprintf("post-chaos q%d", q.QueryID), got, want, false)
	}
	states := cl.Router.ShardStates()
	for i, s := range states {
		if s != fleet.ShardUp {
			t.Errorf("shard %d state = %v after quiesce, want up", i, s)
		}
	}
}

// TestFleetServedThroughObfuscator wires the router behind an obfuscator-side
// MuxExecutor over the harness's DialRouter pipe — the full networked
// deployment shape — and checks a batch round trip.
func TestFleetServedThroughObfuscator(t *testing.T) {
	g := testGraph(t, 300, 2001)
	cl, err := fleettest.New(g, fleettest.Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ref := server.MustNew(g, server.DefaultConfig())

	mc, err := cl.DialRouter(protocol.MuxServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer mc.Close()
	if role := mc.Peer().Role; role != "router" {
		t.Errorf("router welcome role = %q", role)
	}

	qs := makeQueries(g, 6, 7201)
	br, err := mc.DoBatch(protocol.BatchQuery{BatchID: 1, Queries: qs})
	if err != nil {
		t.Fatal(err)
	}
	for i := range qs {
		if br.Errors[i] != "" {
			t.Fatalf("batch slot %d: %s", i, br.Errors[i])
		}
		want, err := ref.Evaluate(qs[i])
		if err != nil {
			t.Fatal(err)
		}
		assertSameReply(t, fmt.Sprintf("via-obfuscator q%d", qs[i].QueryID), br.Replies[i], want, false)
	}
}
