// Package fleettest is the in-process fleet harness: a router and N shard
// servers wired together over net.Pipe connections, with kill/restart
// controls for fault-injection tests. Nothing here depends on testing — the
// E19 fleet-throughput experiment builds the same cluster the test battery
// does.
//
// Each shard is a complete server.Server over the full road map; killing a
// shard severs its live connections and makes its dialer refuse, and
// restarting it builds a *fresh* server from the base graph — deliberately
// forgetting every weight update, so reconnect replay (the router bringing a
// restarted shard back to the fleet metric) is exercised by construction.
package fleettest

import (
	"fmt"
	"net"
	"sync"

	"opaque/internal/fleet"
	"opaque/internal/protocol"
	"opaque/internal/roadnet"
	"opaque/internal/server"
)

// Options parameterises a cluster.
type Options struct {
	// Shards is the fleet size (default 2).
	Shards int
	// Mode is the fleet shape (default fleet.ModePartition).
	Mode fleet.Mode
	// Cells is the partition cell count the router scatters by (default
	// 4 × Shards).
	Cells int
	// Server configures every shard (and should match the single-server
	// reference an equivalence test compares against).
	Server server.Config
	// Fleet overrides router knobs (Retries, RetryBackoff, SkewRetries);
	// Mode, Partition and CellOwner are set by the harness.
	Fleet fleet.Config
	// Mux configures each shard's serving side (MaxInFlight, ShedAt).
	Mux protocol.MuxServerConfig
}

// Shard is one in-process shard: a server plus the live server-side pipe
// ends, with a kill switch.
type Shard struct {
	idx    int
	g      *roadnet.Graph
	cfg    server.Config
	mux    protocol.MuxServerConfig
	faults *faultState

	mu    sync.Mutex
	srv   *server.Server
	down  bool
	conns []net.Conn
}

// dial is the fleet.Dialer for this shard: one net.Pipe, the server side
// served on its own goroutine, the client side handed to the router.
func (sh *Shard) dial() (*protocol.MuxClient, error) {
	if sh.faults.dialShouldFail() {
		return nil, fmt.Errorf("fleettest: shard %d dial lost (injected)", sh.idx)
	}
	if sh.Blackholed() {
		// A dial into a blackholed route times out; failing immediately keeps
		// the breaker semantics without a wall-clock wait per attempt.
		return nil, fmt.Errorf("fleettest: shard %d dial timed out (blackholed)", sh.idx)
	}
	sh.mu.Lock()
	if sh.down {
		sh.mu.Unlock()
		return nil, fmt.Errorf("fleettest: shard %d is down", sh.idx)
	}
	srv := sh.srv
	rawRouterEnd, shardEnd := net.Pipe()
	routerEnd := sh.faults.wrap(rawRouterEnd)
	sh.conns = append(sh.conns, shardEnd, routerEnd)
	mux := sh.mux
	sh.mu.Unlock()
	go func() { _ = srv.ServeMuxConn(shardEnd, mux) }()
	c, err := protocol.NewMuxClient(routerEnd, protocol.Hello{Node: "router", Role: "router"})
	if err != nil {
		routerEnd.Close()
		shardEnd.Close()
		return nil, err
	}
	return c, nil
}

// Server returns the shard's current server (a fresh instance after every
// Restart) for direct metric and state assertions.
func (sh *Shard) Server() *server.Server {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.srv
}

// Down reports whether the shard is killed.
func (sh *Shard) Down() bool {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.down
}

// Cluster is a router fronting N in-process shards.
type Cluster struct {
	Graph     *roadnet.Graph
	Partition *roadnet.Partition
	Router    *fleet.Router
	shards    []*Shard
}

// New builds the cluster: partition, shards, router.
func New(g *roadnet.Graph, opts Options) (*Cluster, error) {
	if opts.Shards <= 0 {
		opts.Shards = 2
	}
	if opts.Cells <= 0 {
		opts.Cells = 4 * opts.Shards
	}
	part, err := roadnet.BuildPartition(g, roadnet.PartitionConfig{Cells: opts.Cells})
	if err != nil {
		return nil, fmt.Errorf("fleettest: partitioning: %w", err)
	}
	c := &Cluster{Graph: g, Partition: part}
	dialers := make([]fleet.Dialer, opts.Shards)
	for i := 0; i < opts.Shards; i++ {
		srv, err := server.New(g, opts.Server)
		if err != nil {
			return nil, fmt.Errorf("fleettest: building shard %d: %w", i, err)
		}
		sh := &Shard{idx: i, g: g, cfg: opts.Server, mux: opts.Mux, srv: srv, faults: newFaultState()}
		c.shards = append(c.shards, sh)
		dialers[i] = sh.dial
	}
	fcfg := opts.Fleet
	fcfg.Mode = opts.Mode
	fcfg.Partition = part
	router, err := fleet.New(fcfg, dialers)
	if err != nil {
		return nil, fmt.Errorf("fleettest: building router: %w", err)
	}
	c.Router = router
	return c, nil
}

// NumShards returns the fleet size.
func (c *Cluster) NumShards() int { return len(c.shards) }

// Shard returns shard i.
func (c *Cluster) Shard(i int) *Shard { return c.shards[i] }

// Kill severs shard i: its dialer refuses and every live connection is cut,
// failing the shard's in-flight requests at the router.
func (c *Cluster) Kill(i int) {
	sh := c.shards[i]
	sh.mu.Lock()
	sh.down = true
	conns := sh.conns
	sh.conns = nil
	sh.mu.Unlock()
	for _, cn := range conns {
		cn.Close()
	}
}

// Restart brings shard i back as a fresh server built from the base graph —
// with base weights, so the router's reconnect replay must bring it back to
// the fleet metric before it answers queries.
func (c *Cluster) Restart(i int) error {
	sh := c.shards[i]
	srv, err := server.New(sh.g, sh.cfg)
	if err != nil {
		return fmt.Errorf("fleettest: restarting shard %d: %w", i, err)
	}
	sh.mu.Lock()
	sh.srv = srv
	sh.down = false
	sh.mu.Unlock()
	return nil
}

// DialRouter connects a multiplexed client to the router's own serving side
// over net.Pipe — how an obfuscator in the networked deployment would see
// the fleet.
func (c *Cluster) DialRouter(mux protocol.MuxServerConfig) (*protocol.MuxClient, error) {
	clientEnd, routerEnd := net.Pipe()
	go func() { _ = c.Router.ServeMuxConn(routerEnd, mux) }()
	mc, err := protocol.NewMuxClient(clientEnd, protocol.Hello{Node: "obfuscator", Role: "obfuscator"})
	if err != nil {
		clientEnd.Close()
		routerEnd.Close()
		return nil, err
	}
	return mc, nil
}

// Close kills every shard and quiesces the router.
func (c *Cluster) Close() {
	c.Router.Close()
	for i := range c.shards {
		c.Kill(i)
	}
}
