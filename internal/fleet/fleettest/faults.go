package fleettest

// Fault injection beyond kill/restart: per-shard write latency, connection
// blackholes and flaky dials. Faults apply to the router-side end of every
// live (and future) connection to the shard, so they model the network
// between router and shard rather than a crashed process: a blackholed shard
// is alive and healthy but unreachable — writes vanish, replies stall —
// which is exactly the failure the mux-level heartbeat and per-request
// deadlines exist to catch (a killed shard fails fast at dial time; a
// blackholed one fails silently).

import (
	"math/rand"
	"net"
	"sync"
	"time"
)

// faultState is the shared fault configuration for one shard; every
// connection the shard's dialer hands to the router consults it on each
// read/write, so toggling a fault affects live connections immediately.
type faultState struct {
	mu        sync.Mutex
	latency   time.Duration
	blackhole bool
	release   chan struct{} // closed when the blackhole lifts
	dialFail  float64
	rng       *rand.Rand
}

func newFaultState() *faultState {
	return &faultState{
		release: make(chan struct{}),
		rng:     rand.New(rand.NewSource(1)),
	}
}

// SetLatency delays every write on the shard's connections by d (0 restores
// a fast link). The delay applies before the bytes enter the pipe, so it
// models one-way network latency in both directions of the framed stream.
func (sh *Shard) SetLatency(d time.Duration) {
	sh.faults.mu.Lock()
	sh.faults.latency = d
	sh.faults.mu.Unlock()
}

// Blackhole makes the shard's connections silently swallow router-bound
// writes and stall reads while on: the shard process stays healthy but the
// route to it is dead — requests vanish without an error, the failure mode
// only deadlines and heartbeats can detect. Turning the blackhole off
// releases stalled readers.
func (sh *Shard) Blackhole(on bool) {
	sh.faults.mu.Lock()
	if on && !sh.faults.blackhole {
		sh.faults.blackhole = true
		sh.faults.release = make(chan struct{})
	} else if !on && sh.faults.blackhole {
		sh.faults.blackhole = false
		close(sh.faults.release)
	}
	sh.faults.mu.Unlock()
}

// Blackholed reports whether the shard's route is currently blackholed.
func (sh *Shard) Blackholed() bool {
	sh.faults.mu.Lock()
	defer sh.faults.mu.Unlock()
	return sh.faults.blackhole
}

// SetDialFailProb makes the shard's dialer fail with probability p ∈ [0, 1]
// (before the handshake), modelling a flaky network path that the router's
// retry backoff and circuit breaker must absorb.
func (sh *Shard) SetDialFailProb(p float64) {
	sh.faults.mu.Lock()
	sh.faults.dialFail = p
	sh.faults.mu.Unlock()
}

// dialShouldFail rolls the flaky-dial dice.
func (fs *faultState) dialShouldFail() bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.dialFail > 0 && fs.rng.Float64() < fs.dialFail
}

// wrap dresses the router-side end of a shard connection in the shard's
// fault state.
func (fs *faultState) wrap(c net.Conn) net.Conn {
	return &faultConn{Conn: c, fs: fs, closed: make(chan struct{})}
}

// faultConn applies a shard's fault state to one connection end.
type faultConn struct {
	net.Conn
	fs        *faultState
	closed    chan struct{}
	closeOnce sync.Once
}

func (fc *faultConn) Close() error {
	fc.closeOnce.Do(func() { close(fc.closed) })
	return fc.Conn.Close()
}

// Write sleeps the injected latency, then either delivers the bytes or — in
// a blackhole — swallows them whole, reporting success like a route that
// lost the packets after the local send buffer accepted them.
func (fc *faultConn) Write(p []byte) (int, error) {
	fc.fs.mu.Lock()
	latency := fc.fs.latency
	blackhole := fc.fs.blackhole
	fc.fs.mu.Unlock()
	if latency > 0 {
		select {
		case <-time.After(latency):
		case <-fc.closed:
			return 0, net.ErrClosed
		}
	}
	if blackhole {
		return len(p), nil
	}
	return fc.Conn.Write(p)
}

// Read stalls while the route is blackholed (net.Pipe is synchronous, so the
// peer's writes block too — nothing crosses a dead route in either
// direction), resuming when the blackhole lifts or the connection closes.
func (fc *faultConn) Read(p []byte) (int, error) {
	for {
		fc.fs.mu.Lock()
		blackhole := fc.fs.blackhole
		release := fc.fs.release
		fc.fs.mu.Unlock()
		if !blackhole {
			break
		}
		select {
		case <-release:
		case <-fc.closed:
			return 0, net.ErrClosed
		}
	}
	return fc.Conn.Read(p)
}
