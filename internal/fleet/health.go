package fleet

// Per-shard health: a consecutive-failure circuit breaker with half-open
// probing, and an optional mux-level heartbeat that probes shards over the
// OPMX1 identity stream (protocol.MuxClient.Ping — answered by the serving
// side before admission control, so a saturated shard still proves it is
// alive).
//
// The breaker state machine is deliberately small. A shard is ShardUp until
// FailThreshold consecutive transport failures (dial errors, dropped
// connections, missed pongs) trip it to ShardDown; while down and inside
// BreakerCooldown every connect attempt fails fast with errShardDown, so the
// scatter path routes the shard's work elsewhere (failover) without paying a
// dial timeout per query. When the cooldown elapses the breaker is half-open:
// exactly the next connect attempt — a query routed there, or the heartbeat
// prober — performs a real dial as the probe. Success (dial + replay) closes
// the breaker and, in partition mode, implicitly restores the shard's cell
// ownership, because routing always consults the current health state.
//
// Health bookkeeping lives on its own mutex (shardLink.health.mu), never held
// across dials or I/O, so readers (scatter, ShardStates, metrics) stay cheap.

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"opaque/internal/protocol"
)

// ShardState is the router's health verdict for one shard.
type ShardState int

const (
	// ShardUp: the shard answers (or has not yet failed enough to distrust).
	ShardUp ShardState = iota
	// ShardDown: the circuit breaker is open; work is routed around the
	// shard and only half-open probes (after BreakerCooldown) reach it.
	ShardDown
)

// String implements fmt.Stringer.
func (s ShardState) String() string {
	switch s {
	case ShardUp:
		return "up"
	case ShardDown:
		return "down"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// errShardDown is the fast-fail connect result while a shard's breaker is
// open and cooling; it is always wrapped in a ShardError before reaching a
// caller.
var errShardDown = errors.New("fleet: shard unavailable (circuit open)")

// ErrQuorumNotReached reports a weight update acknowledged by at least one
// but fewer than UpdateQuorum shards. The update is not lost — it is folded
// into the cumulative replay state and reaches stragglers on reconnect — but
// the caller asked for a stronger durability signal than the fleet could
// give.
var ErrQuorumNotReached = errors.New("fleet: weight update quorum not reached")

// shardHealth is the per-shard breaker state, guarded by its own mutex that
// is never held across I/O.
type shardHealth struct {
	state       ShardState
	consecFails int
	downUntil   time.Time // half-open probe gate while state == ShardDown
}

// ShardStates returns the router's current health verdict per shard.
func (r *Router) ShardStates() []ShardState {
	states := make([]ShardState, len(r.shards))
	for i, l := range r.shards {
		l.hmu.Lock()
		states[i] = l.health.state
		l.hmu.Unlock()
	}
	return states
}

// available reports whether routing should send a shard new work: the
// breaker is closed, or it is half-open (cooldown elapsed) and the next
// attempt doubles as the probe.
func (r *Router) available(l *shardLink) bool {
	l.hmu.Lock()
	defer l.hmu.Unlock()
	return l.health.state == ShardUp || !time.Now().Before(l.health.downUntil)
}

// probeAllowed reports whether a connect attempt may really dial right now:
// always while up, and once the cooldown elapses while down (the half-open
// probe). Extends the gate so concurrent callers do not stampede the probe.
func (r *Router) probeAllowed(l *shardLink) bool {
	l.hmu.Lock()
	defer l.hmu.Unlock()
	if l.health.state == ShardUp {
		return true
	}
	if time.Now().Before(l.health.downUntil) {
		return false
	}
	l.health.downUntil = time.Now().Add(r.cfg.BreakerCooldown)
	return true
}

// noteSuccess records a successful exchange: the failure streak resets and a
// down shard comes back up (restoring its cell ownership implicitly — the
// scatter path consults health on every query).
func (r *Router) noteSuccess(l *shardLink) {
	l.hmu.Lock()
	l.health.consecFails = 0
	recovered := l.health.state == ShardDown
	l.health.state = ShardUp
	l.hmu.Unlock()
	if recovered {
		r.setStateGauge(l.idx, ShardUp)
	}
}

// noteFailure records a transport failure; FailThreshold consecutive
// failures trip the breaker open for BreakerCooldown.
func (r *Router) noteFailure(l *shardLink) {
	l.hmu.Lock()
	l.health.consecFails++
	tripped := false
	if l.health.consecFails >= r.cfg.FailThreshold {
		if l.health.state == ShardUp {
			tripped = true
		}
		l.health.state = ShardDown
		l.health.downUntil = time.Now().Add(r.cfg.BreakerCooldown)
	}
	l.hmu.Unlock()
	if tripped {
		r.mBreakerTrips.Add(1)
		r.setStateGauge(l.idx, ShardDown)
	}
}

// setStateGauge publishes one shard's health as fleet_shard_state_<idx>
// (0 = up, 1 = down).
func (r *Router) setStateGauge(idx int, s ShardState) {
	r.metrics.SetGauge(fmt.Sprintf("fleet_shard_state_%d", idx), float64(s))
}

// heartbeatLoop probes one shard every Config.Heartbeat until the router
// closes: a live connection is pinged over the identity stream (a missed
// pong is a health failure and drops the connection), and a down or
// unconnected shard gets a connect attempt, which respects the half-open
// gate and — on success — replays the weight state and closes the breaker.
func (r *Router) heartbeatLoop(l *shardLink) {
	t := time.NewTicker(r.cfg.Heartbeat)
	defer t.Stop()
	for {
		select {
		case <-r.hbStop:
			return
		case <-t.C:
		}
		r.probeShard(l)
	}
}

// probeShard performs one heartbeat round against a shard.
func (r *Router) probeShard(l *shardLink) {
	l.mu.Lock()
	c := l.client
	l.mu.Unlock()
	if c != nil && c.Err() == nil {
		if _, err := c.Ping(time.Now().Add(r.cfg.Heartbeat)); err != nil {
			r.mHeartbeatFails.Add(1)
			r.noteFailure(l)
			l.dropClient(c)
		} else {
			r.noteSuccess(l)
		}
		return
	}
	// No live connection: try to establish one. connect respects the
	// breaker's half-open gate, replays the weight state, and marks the
	// shard up on success.
	if _, err := r.connect(l); err != nil && !errors.Is(err, errShardDown) {
		r.mHeartbeatFails.Add(1)
	}
}

// backoffDelay returns the jittered exponential delay before retry attempt
// (1-based): raw = min(base << (attempt-1), cap), jittered uniformly in
// [raw/2, 3·raw/2). The jitter decorrelates retry storms — with a fixed
// backoff every query that lost the same shard redials it in lockstep.
func backoffDelay(attempt int, base, cap time.Duration) time.Duration {
	if base <= 0 {
		return 0
	}
	if attempt < 1 {
		attempt = 1
	}
	raw := base
	for i := 1; i < attempt; i++ {
		raw *= 2
		if raw >= cap {
			raw = cap
			break
		}
	}
	if cap > 0 && raw > cap {
		raw = cap
	}
	half := raw / 2
	return half + time.Duration(rand.Int63n(int64(raw)))
}

// sleep blocks for d, interruptible by Router.Close (quiesce) and by the
// request deadline (zero = none). It returns nil when the full delay was
// slept, ErrRouterClosed on quiesce, and protocol.ErrDeadlineExceeded when
// the deadline cuts the wait short — retrying past the deadline would only
// produce an answer nobody is waiting for.
func (r *Router) sleep(d time.Duration, deadline time.Time) error {
	if !deadline.IsZero() {
		until := time.Until(deadline)
		if until <= 0 {
			return fmt.Errorf("%w: during retry backoff", protocol.ErrDeadlineExceeded)
		}
		if until < d {
			d = until
		}
	}
	r.qmu.Lock()
	quiesce := r.quiesce
	r.qmu.Unlock()
	tm := time.NewTimer(d)
	defer tm.Stop()
	select {
	case <-tm.C:
		if !deadline.IsZero() && !time.Now().Before(deadline) {
			return fmt.Errorf("%w: during retry backoff", protocol.ErrDeadlineExceeded)
		}
		return nil
	case <-quiesce:
		return ErrRouterClosed
	}
}

// ErrRouterClosed interrupts retry backoff when Router.Close quiesces the
// fleet: in-flight retry loops stop sleeping and surface instead of leaking
// a sleeping goroutine per retrying query.
var ErrRouterClosed = errors.New("fleet: router closed")
