package fleet

// In-package unit tests for the retry-backoff schedule: the jitter and cap
// bounds the satellite task pins, checked sample-by-sample because the jitter
// is random.

import (
	"testing"
	"time"
)

func TestBackoffBounds(t *testing.T) {
	const base = 10 * time.Millisecond
	const cap = 160 * time.Millisecond
	for attempt := 1; attempt <= 10; attempt++ {
		raw := base << (attempt - 1)
		if raw > cap {
			raw = cap
		}
		lo, hi := raw/2, raw/2+raw // [raw/2, 3·raw/2)
		for sample := 0; sample < 200; sample++ {
			d := backoffDelay(attempt, base, cap)
			if d < lo || d >= hi {
				t.Fatalf("attempt %d sample %d: delay %v outside [%v, %v)", attempt, sample, d, lo, hi)
			}
		}
	}
}

func TestBackoffDegenerateInputs(t *testing.T) {
	if d := backoffDelay(1, 0, time.Second); d != 0 {
		t.Errorf("zero base: delay %v, want 0", d)
	}
	if d := backoffDelay(0, 10*time.Millisecond, 160*time.Millisecond); d < 5*time.Millisecond || d >= 15*time.Millisecond {
		t.Errorf("attempt 0 clamps to 1: delay %v outside [5ms, 15ms)", d)
	}
	// A cap below the base still bounds the raw delay.
	if d := backoffDelay(5, 100*time.Millisecond, 20*time.Millisecond); d >= 30*time.Millisecond {
		t.Errorf("capped delay %v ≥ 30ms with a 20ms cap", d)
	}
}
