package fleet_test

// Fault-tolerance battery beyond the kill-mid-batch test: replicate-mode
// failover (the acceptance criteria demand a shard killed mid-run in *each*
// mode), update-ack quorums, prompt Close interruption of retry backoff,
// deadline propagation, and the small contracts — ShardError unwrapping and
// Mode.String on unknown modes.

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"opaque/internal/fleet"
	"opaque/internal/fleet/fleettest"
	"opaque/internal/protocol"
	"opaque/internal/roadnet"
	"opaque/internal/server"
)

func TestModeString(t *testing.T) {
	cases := []struct {
		mode fleet.Mode
		want string
	}{
		{fleet.ModePartition, "partition"},
		{fleet.ModeReplicate, "replicate"},
		{fleet.Mode(7), "mode(7)"},
		{fleet.Mode(-1), "mode(-1)"},
	}
	for _, c := range cases {
		if got := c.mode.String(); got != c.want {
			t.Errorf("Mode(%d).String() = %q, want %q", int(c.mode), got, c.want)
		}
	}
}

func TestShardErrorUnwrap(t *testing.T) {
	sentinel := errors.New("dial refused")
	err := fmt.Errorf("query 7: %w", &fleet.ShardError{Shard: 2, Err: sentinel})
	if !errors.Is(err, sentinel) {
		t.Error("errors.Is does not reach the cause through ShardError")
	}
	var se *fleet.ShardError
	if !errors.As(err, &se) {
		t.Fatal("errors.As does not find the ShardError through wrapping")
	}
	if se.Shard != 2 {
		t.Errorf("unwrapped ShardError.Shard = %d, want 2", se.Shard)
	}
	if !errors.Is(se, sentinel) {
		t.Error("ShardError.Unwrap does not expose the cause")
	}
}

// TestFleetFailoverReplicate kills one of three replicas mid-workload: every
// query keeps answering the exact single-server table (the round-robin
// routes around the open breaker, and queries that had already been assigned
// the dead replica re-scatter to a survivor), and the healed shard rejoins
// after its breaker cooldown.
func TestFleetFailoverReplicate(t *testing.T) {
	g := testGraph(t, 300, 1601)
	cl, err := fleettest.New(g, fleettest.Options{
		Shards: 3,
		Mode:   fleet.ModeReplicate,
		Fleet: fleet.Config{
			Retries: 1, RetryBackoff: time.Millisecond,
			FailThreshold: 2, BreakerCooldown: 50 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ref := server.MustNew(g, server.DefaultConfig())

	qs := makeQueries(g, 12, 4701)
	// Warm a connection to every replica, then kill one.
	for i := 0; i < 3; i++ {
		if _, err := cl.Router.Execute(qs[i]); err != nil {
			t.Fatal(err)
		}
	}
	cl.Kill(1)

	for _, q := range qs {
		got, err := cl.Router.Execute(q)
		if err != nil {
			t.Errorf("query %d failed during the outage (round-robin should have skipped the dead replica): %v", q.QueryID, err)
			continue
		}
		want, werr := ref.Evaluate(q)
		if werr != nil {
			t.Fatal(werr)
		}
		assertSameReply(t, fmt.Sprintf("outage q%d", q.QueryID), got, want, false)
	}
	m := cl.Router.Metrics()
	if m.Counter("fleet_shard_retries") == 0 {
		t.Error("fleet_shard_retries = 0: the dead replica was never retried before failing over")
	}
	if m.Counter("fleet_shard_failures") == 0 {
		t.Error("fleet_shard_failures never counted the dead replica")
	}
	if m.Counter("fleet_breaker_trips") == 0 {
		t.Error("fleet_breaker_trips = 0: the dead replica's circuit never opened")
	}
	if m.Counter("fleet_failovers") == 0 {
		t.Error("fleet_failovers = 0: no query was re-routed to a survivor")
	}
	if s := cl.Router.ShardStates(); s[1] != fleet.ShardDown {
		t.Errorf("shard 1 state = %v after the outage, want down", s[1])
	}

	// Heal: once the breaker cooldown elapses, the next query preferring the
	// restarted replica is the half-open probe and closes the circuit.
	if err := cl.Restart(1); err != nil {
		t.Fatal(err)
	}
	time.Sleep(75 * time.Millisecond)
	for _, q := range qs {
		got, err := cl.Router.Execute(q)
		if err != nil {
			t.Fatalf("query %d still failing after restart: %v", q.QueryID, err)
		}
		want, werr := ref.Evaluate(q)
		if werr != nil {
			t.Fatal(werr)
		}
		assertSameReply(t, fmt.Sprintf("healed q%d", q.QueryID), got, want, false)
	}
	if s := cl.Router.ShardStates(); s[1] != fleet.ShardUp {
		t.Errorf("shard 1 state = %v after restart + cooldown, want up", s[1])
	}
}

// TestFleetUpdateQuorum pins the K-of-N ack contract: a quorum-2 update over
// a two-shard fleet fails with ErrQuorumNotReached while one shard is dead,
// but the change is still recorded — reconnect replay brings the restarted
// shard to the full cumulative state, and the fleet answers exactly like a
// single server that saw every update.
func TestFleetUpdateQuorum(t *testing.T) {
	g := testGraph(t, 300, 1701)
	cl, err := fleettest.New(g, fleettest.Options{
		Shards: 2,
		Fleet: fleet.Config{
			Retries: 1, RetryBackoff: time.Millisecond,
			UpdateQuorum: 2,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ref := server.MustNew(g, server.DefaultConfig())

	rng := rand.New(rand.NewSource(5701))
	change := func() []roadnet.ArcWeightChange {
		var cs []roadnet.ArcWeightChange
		for len(cs) == 0 {
			v := roadnet.NodeID(rng.Intn(g.NumNodes()))
			for _, a := range g.Arcs(v) {
				cs = append(cs, roadnet.ArcWeightChange{From: v, To: a.To, NewCost: a.Cost * (0.5 + rng.Float64())})
			}
		}
		return cs
	}
	apply := func(cs []roadnet.ArcWeightChange) {
		t.Helper()
		if _, err := ref.UpdateWeights(cs); err != nil {
			t.Fatal(err)
		}
	}

	// Both shards up: quorum 2 is reachable.
	cs := change()
	if err := cl.Router.UpdateWeights(cs); err != nil {
		t.Fatalf("update with the full fleet up: %v", err)
	}
	apply(cs)

	// One shard dead: one ack is below quorum — and the error says so
	// without hiding that a shard did apply the update.
	cl.Kill(1)
	cs = change()
	err = cl.Router.UpdateWeights(cs)
	if !errors.Is(err, fleet.ErrQuorumNotReached) {
		t.Fatalf("update with one shard dead: %v, want ErrQuorumNotReached", err)
	}
	apply(cs)

	// Restart: reconnect replay covers the missed update, the next quorum-2
	// update succeeds, and the whole fleet matches the reference.
	if err := cl.Restart(1); err != nil {
		t.Fatal(err)
	}
	cs = change()
	if err := cl.Router.UpdateWeights(cs); err != nil {
		t.Fatalf("update after restart: %v", err)
	}
	apply(cs)
	if cl.Router.Metrics().Counter("fleet_replays") == 0 {
		t.Error("fleet_replays = 0: the restarted shard was never brought back to the fleet metric")
	}

	for _, q := range makeQueries(g, 8, 4801) {
		want, err := ref.Evaluate(q)
		if err != nil {
			t.Fatal(err)
		}
		got, rerr := cl.Router.Execute(q)
		if rerr != nil {
			t.Fatalf("query %d: %v", q.QueryID, rerr)
		}
		assertSameReply(t, fmt.Sprintf("q%d", q.QueryID), got, want, false)
	}
}

// TestRouterCloseInterruptsBackoff pins the cancellable-backoff contract:
// a query stuck in a long retry backoff against a dead shard returns
// promptly with ErrRouterClosed when the router is quiesced, instead of
// sleeping out a multi-second schedule.
func TestRouterCloseInterruptsBackoff(t *testing.T) {
	g := testGraph(t, 120, 1801)
	cl, err := fleettest.New(g, fleettest.Options{
		Shards: 1,
		Fleet: fleet.Config{
			Retries: 3, RetryBackoff: 20 * time.Second,
			// A threshold the retry budget cannot reach, so the breaker never
			// opens and every attempt really dials and sleeps.
			FailThreshold: 100,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	cl.Kill(0)
	q := makeQueries(g, 1, 4901)[0]
	done := make(chan error, 1)
	go func() {
		_, err := cl.Router.Execute(q)
		done <- err
	}()
	time.Sleep(50 * time.Millisecond) // let the query enter its backoff sleep
	start := time.Now()
	cl.Router.Close()
	select {
	case err := <-done:
		if !errors.Is(err, fleet.ErrRouterClosed) {
			t.Fatalf("interrupted query returned %v, want ErrRouterClosed", err)
		}
		if waited := time.Since(start); waited > 2*time.Second {
			t.Errorf("Close took %v to interrupt the backoff sleep", waited)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("query still sleeping 5s after Close — backoff is not cancellable")
	}
}

// TestFleetDeadline pins deadline propagation: an expired deadline fails
// fast with a deadline error (counted on fleet_deadline_exceeded), a
// generous one answers normally, and neither leaves the fleet unhealthy.
func TestFleetDeadline(t *testing.T) {
	g := testGraph(t, 300, 1901)
	cl, err := fleettest.New(g, fleettest.Options{
		Shards: 2,
		Fleet:  fleet.Config{Retries: 1, RetryBackoff: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	qs := makeQueries(g, 2, 5001)
	if _, err := cl.Router.ExecuteDeadline(qs[0], time.Now().Add(10*time.Second)); err != nil {
		t.Fatalf("query with a generous deadline: %v", err)
	}
	_, err = cl.Router.ExecuteDeadline(qs[1], time.Now().Add(-time.Millisecond))
	if err == nil {
		t.Fatal("query with an expired deadline answered anyway")
	}
	if !protocol.IsDeadlineExceeded(err) {
		t.Fatalf("expired-deadline error = %v, want a deadline error", err)
	}
	if cl.Router.Metrics().Counter("fleet_deadline_exceeded") == 0 {
		t.Error("fleet_deadline_exceeded = 0 after an expired-deadline query")
	}
	// The deadline was the caller's problem, not the shards': a plain query
	// still answers.
	if _, err := cl.Router.Execute(qs[1]); err != nil {
		t.Fatalf("plain query after the deadline miss: %v", err)
	}
}
