package fleet_test

// The fleet test battery: the scatter/gather equivalence property (a router
// over partition or replicate shards answers exactly like one server), the
// fault-injection battery (shard kill and restart mid-batch and mid-churn,
// bounded retry, reconnect replay) and the merge-refusal guarantee (no reply
// ever mixes weight generations across shards). Everything runs in-process
// over net.Pipe via the fleettest harness, and the whole file is exercised
// under -race in CI.

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"

	"opaque/internal/costmodel"
	"opaque/internal/fleet"
	"opaque/internal/fleet/fleettest"
	"opaque/internal/gen"
	"opaque/internal/protocol"
	"opaque/internal/roadnet"
	"opaque/internal/server"
)

func testGraph(t testing.TB, nodes int, seed uint64) *roadnet.Graph {
	t.Helper()
	cfg := gen.DefaultNetworkConfig()
	cfg.Nodes = nodes
	cfg.Seed = seed
	return gen.MustGenerate(cfg)
}

// makeQueries generates E15-style obfuscated query shapes: source and
// destination sets of mixed sizes |S|,|T| ∈ [1,4] drawn uniformly from the
// map, the workload shape the obfuscator produces for mixed fS/fT client
// populations.
func makeQueries(g *roadnet.Graph, n int, seed int64) []protocol.ServerQuery {
	rng := rand.New(rand.NewSource(seed))
	qs := make([]protocol.ServerQuery, n)
	for i := range qs {
		nS, nT := 1+rng.Intn(4), 1+rng.Intn(4)
		q := protocol.ServerQuery{QueryID: uint64(i + 1)}
		for s := 0; s < nS; s++ {
			q.Sources = append(q.Sources, roadnet.NodeID(rng.Intn(g.NumNodes())))
		}
		for d := 0; d < nT; d++ {
			q.Dests = append(q.Dests, roadnet.NodeID(rng.Intn(g.NumNodes())))
		}
		qs[i] = q
	}
	return qs
}

// assertSameReply compares a fleet reply against the single-server reference
// table. Costs and reachability must agree exactly for every (s, t) slot;
// node sequences must match exactly unless pathsMayDiffer (hybrid routing
// picks CH or MTM by |S|·|T|, which the partition split changes, so equal-cost
// ties can unpack differently).
func assertSameReply(t *testing.T, label string, got, want protocol.ServerReply, pathsMayDiffer bool) {
	t.Helper()
	if len(got.Paths) != len(want.Paths) {
		t.Fatalf("%s: table has %d candidates, reference %d", label, len(got.Paths), len(want.Paths))
	}
	for i := range want.Paths {
		g, w := got.Paths[i], want.Paths[i]
		if g.Source != w.Source || g.Dest != w.Dest {
			t.Fatalf("%s[%d]: slot (%d,%d), reference (%d,%d) — merge reordered the table", label, i, g.Source, g.Dest, w.Source, w.Dest)
		}
		if g.Found != w.Found {
			t.Fatalf("%s[%d]: found=%v, reference %v", label, i, g.Found, w.Found)
		}
		if !g.Found {
			continue
		}
		if math.Abs(g.Cost-w.Cost) > 1e-9 {
			t.Fatalf("%s[%d]: cost %v, reference %v", label, i, g.Cost, w.Cost)
		}
		if pathsMayDiffer {
			if len(g.Nodes) > 0 && (g.Nodes[0] != g.Source || g.Nodes[len(g.Nodes)-1] != g.Dest) {
				t.Fatalf("%s[%d]: path endpoints %d..%d for pair (%d,%d)", label, i, g.Nodes[0], g.Nodes[len(g.Nodes)-1], g.Source, g.Dest)
			}
			continue
		}
		if len(g.Nodes) != len(w.Nodes) {
			t.Fatalf("%s[%d]: path length %d, reference %d", label, i, len(g.Nodes), len(w.Nodes))
		}
		for j := range w.Nodes {
			if g.Nodes[j] != w.Nodes[j] {
				t.Fatalf("%s[%d]: node %d is %d, reference %d", label, i, j, g.Nodes[j], w.Nodes[j])
			}
		}
	}
}

// TestFleetEquivalence is the scatter/gather property test behind the
// acceptance criteria: for every evaluation strategy and both fleet shapes, a
// router over two shards answers an E15-style workload with exactly the
// distance tables and paths a single server produces.
func TestFleetEquivalence(t *testing.T) {
	g := testGraph(t, 400, 1201)
	qs := makeQueries(g, 20, 4301)

	strategies := []struct {
		name           string
		cfg            func() server.Config
		pathsMayDiffer bool
	}{
		{"ssmd", server.DefaultConfig, false},
		{"ch", func() server.Config {
			c := server.DefaultConfig()
			c.Strategy = server.StrategyCH
			c.BuildCH = true
			return c
		}, false},
		{"ch-mtm", func() server.Config {
			c := server.DefaultConfig()
			c.Strategy = server.StrategyCHMTM
			c.BuildCH = true
			return c
		}, false},
		{"hybrid", func() server.Config {
			c := server.DefaultConfig()
			c.Strategy = server.StrategyHybrid
			c.BuildCH = true
			return c
		}, true},
	}
	for _, st := range strategies {
		for _, mode := range []fleet.Mode{fleet.ModePartition, fleet.ModeReplicate} {
			t.Run(fmt.Sprintf("%s/%s", st.name, mode), func(t *testing.T) {
				ref := server.MustNew(g, st.cfg())
				cl, err := fleettest.New(g, fleettest.Options{Shards: 2, Mode: mode, Server: st.cfg()})
				if err != nil {
					t.Fatal(err)
				}
				defer cl.Close()

				for _, q := range qs {
					want, err := ref.Evaluate(q)
					if err != nil {
						t.Fatal(err)
					}
					got, err := cl.Router.Execute(q)
					if err != nil {
						t.Fatalf("query %d: %v", q.QueryID, err)
					}
					assertSameReply(t, fmt.Sprintf("q%d", q.QueryID), got, want, st.pathsMayDiffer)
				}

				// The whole workload again as one scattered batch.
				replies, errs := cl.Router.ExecuteBatch(qs)
				for i, err := range errs {
					if err != nil {
						t.Fatalf("batch query %d: %v", qs[i].QueryID, err)
					}
					want, err := ref.Evaluate(qs[i])
					if err != nil {
						t.Fatal(err)
					}
					assertSameReply(t, fmt.Sprintf("batch q%d", qs[i].QueryID), replies[i], want, st.pathsMayDiffer)
				}

				if mode == fleet.ModePartition {
					m := cl.Router.Metrics()
					if m.Counter("fleet_subqueries") <= m.Counter("fleet_queries") {
						t.Errorf("partition mode never split a query: %d subqueries for %d queries",
							m.Counter("fleet_subqueries"), m.Counter("fleet_queries"))
					}
				}
			})
		}
	}
}

// TestFleetProfileEquivalence runs the property over precustomized weight
// profile layers: every shard resolves the named profile to the same metric,
// so the merged table equals the reference and no profile skew is counted.
func TestFleetProfileEquivalence(t *testing.T) {
	g := testGraph(t, 300, 1301)
	cfg := server.DefaultConfig()
	cfg.Profiles = costmodel.TimeOfDayProfiles()
	cfg.PrewarmProfiles = true

	ref := server.MustNew(g, cfg)
	cl, err := fleettest.New(g, fleettest.Options{Shards: 2, Server: cfg})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	qs := makeQueries(g, 8, 4401)
	for qi := range qs {
		qs[qi].Profile = cfg.Profiles[qi%len(cfg.Profiles)].Name
	}
	for _, q := range qs {
		want, err := ref.Evaluate(q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := cl.Router.Execute(q)
		if err != nil {
			t.Fatalf("profile %q query %d: %v", q.Profile, q.QueryID, err)
		}
		if got.Profile != q.Profile {
			t.Errorf("query %d echoed profile %q, want %q", q.QueryID, got.Profile, q.Profile)
		}
		assertSameReply(t, fmt.Sprintf("profile %q q%d", q.Profile, q.QueryID), got, want, false)
	}
	if n := cl.Router.Metrics().Counter("fleet_profile_skew"); n != 0 {
		t.Errorf("fleet_profile_skew = %d on a uniform fleet", n)
	}
}

// TestFleetWeightUpdateEquivalence drives live weight updates through the
// router and checks the fleet keeps answering exactly like a single server
// receiving the same updates.
func TestFleetWeightUpdateEquivalence(t *testing.T) {
	g := testGraph(t, 300, 1401)
	ref := server.MustNew(g, server.DefaultConfig())
	cl, err := fleettest.New(g, fleettest.Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	rng := rand.New(rand.NewSource(5501))
	qs := makeQueries(g, 4, 4501)
	for round := 0; round < 5; round++ {
		var changes []roadnet.ArcWeightChange
		for i := 0; i < 8; i++ {
			v := roadnet.NodeID(rng.Intn(g.NumNodes()))
			arcs := g.Arcs(v)
			if len(arcs) == 0 {
				continue
			}
			a := arcs[rng.Intn(len(arcs))]
			changes = append(changes, roadnet.ArcWeightChange{From: v, To: a.To, NewCost: a.Cost * (0.5 + rng.Float64())})
		}
		if err := cl.Router.UpdateWeights(changes); err != nil {
			t.Fatalf("round %d: fleet update: %v", round, err)
		}
		if _, err := ref.UpdateWeights(changes); err != nil {
			t.Fatalf("round %d: reference update: %v", round, err)
		}
		for _, q := range qs {
			want, err := ref.Evaluate(q)
			if err != nil {
				t.Fatal(err)
			}
			got, err := cl.Router.Execute(q)
			if err != nil {
				t.Fatalf("round %d query %d: %v", round, q.QueryID, err)
			}
			assertSameReply(t, fmt.Sprintf("round %d q%d", round, q.QueryID), got, want, false)
		}
	}
	if n := cl.Router.Metrics().Counter("fleet_weight_updates"); n != 5 {
		t.Errorf("fleet_weight_updates = %d, want 5", n)
	}
}

// TestFleetKillMidBatch kills one shard under a live batch workload: the
// dead shard's queries fail over to the survivor — its breaker trips after
// the bounded retry budget and the re-scatter re-owns its work — so every
// query keeps answering the exact single-server table and no ShardError
// surfaces to callers; a restart brings the fleet back whole.
func TestFleetKillMidBatch(t *testing.T) {
	g := testGraph(t, 300, 1501)
	cl, err := fleettest.New(g, fleettest.Options{
		Shards: 2,
		Fleet: fleet.Config{
			Retries: 1, RetryBackoff: time.Millisecond, SkewRetries: 1,
			FailThreshold: 2, BreakerCooldown: time.Second,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ref := server.MustNew(g, server.DefaultConfig())

	qs := makeQueries(g, 12, 4601)
	// Warm every connection, then kill shard 1 mid-workload.
	if _, err := cl.Router.Execute(qs[0]); err != nil {
		t.Fatal(err)
	}
	cl.Kill(1)

	replies, errs := cl.Router.ExecuteBatch(qs)
	for i, err := range errs {
		if err != nil {
			t.Errorf("query %d failed during the outage (failover should have re-owned it): %v", qs[i].QueryID, err)
			continue
		}
		want, werr := ref.Evaluate(qs[i])
		if werr != nil {
			t.Fatal(werr)
		}
		assertSameReply(t, fmt.Sprintf("failover q%d", qs[i].QueryID), replies[i], want, false)
	}
	m := cl.Router.Metrics()
	if m.Counter("fleet_shard_failures") == 0 {
		t.Error("fleet_shard_failures never counted the dead shard")
	}
	if m.Counter("fleet_breaker_trips") == 0 {
		t.Error("fleet_breaker_trips = 0: the dead shard's circuit never opened")
	}
	if m.Counter("fleet_failovers") == 0 {
		t.Error("fleet_failovers = 0: no work was re-owned to the survivor")
	}
	states := cl.Router.ShardStates()
	if states[1] != fleet.ShardDown {
		t.Errorf("shard 1 state = %v after the outage, want down", states[1])
	}
	if states[0] != fleet.ShardUp {
		t.Errorf("shard 0 state = %v, want up", states[0])
	}

	// Restart heals the fleet: the breaker's half-open probe re-admits the
	// shard (after the cooldown) and everything answers again.
	if err := cl.Restart(1); err != nil {
		t.Fatal(err)
	}
	replies, errs = cl.Router.ExecuteBatch(qs)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("query %d still failing after restart: %v", qs[i].QueryID, err)
		}
		want, werr := ref.Evaluate(qs[i])
		if werr != nil {
			t.Fatal(werr)
		}
		assertSameReply(t, fmt.Sprintf("healed q%d", qs[i].QueryID), replies[i], want, false)
	}
}

// TestFleetRestartMidChurn restarts a shard in the middle of a weight-update
// stream. The restarted shard comes back with base weights; the router's
// reconnect replay must bring it to the fleet metric before it serves, so the
// fleet answer equals the reference server that saw every update — and the
// router never merges the restarted shard's stale table into a reply.
func TestFleetRestartMidChurn(t *testing.T) {
	g := testGraph(t, 300, 1601)
	ref := server.MustNew(g, server.DefaultConfig())
	cl, err := fleettest.New(g, fleettest.Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	rng := rand.New(rand.NewSource(5701))
	update := func() {
		var changes []roadnet.ArcWeightChange
		for i := 0; i < 6; i++ {
			v := roadnet.NodeID(rng.Intn(g.NumNodes()))
			if arcs := g.Arcs(v); len(arcs) > 0 {
				a := arcs[0]
				changes = append(changes, roadnet.ArcWeightChange{From: v, To: a.To, NewCost: a.Cost * (0.5 + rng.Float64())})
			}
		}
		if err := cl.Router.UpdateWeights(changes); err != nil {
			t.Fatalf("fleet update: %v", err)
		}
		if _, err := ref.UpdateWeights(changes); err != nil {
			t.Fatalf("reference update: %v", err)
		}
	}

	update()
	update()
	cl.Kill(0)
	update() // lands while shard 0 is down; only the replay can deliver it
	if err := cl.Restart(0); err != nil {
		t.Fatal(err)
	}
	update()

	for _, q := range makeQueries(g, 10, 4701) {
		want, err := ref.Evaluate(q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := cl.Router.Execute(q)
		if err != nil {
			t.Fatalf("query %d after restart: %v", q.QueryID, err)
		}
		assertSameReply(t, fmt.Sprintf("churn q%d", q.QueryID), got, want, false)
	}
	if cl.Router.Metrics().Counter("fleet_replays") == 0 {
		t.Error("fleet_replays = 0: the restarted shard was admitted without a weight replay")
	}
}

// TestFleetMergeRefusal pins the generation handshake: when one shard's
// metric diverges (an update applied behind the router's back), the router
// refuses to merge the mixed-generation partial tables — surfacing
// ErrGenerationSkew and the fleet_generation_skew counter — rather than ever
// serving a table that mixes weight generations.
func TestFleetMergeRefusal(t *testing.T) {
	g := testGraph(t, 300, 1701)
	cl, err := fleettest.New(g, fleettest.Options{
		Shards: 2,
		Fleet:  fleet.Config{SkewRetries: 2, RetryBackoff: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Find a query the partition actually splits across both shards.
	var split protocol.ServerQuery
	for _, q := range makeQueries(g, 50, 4801) {
		owners := make(map[int]bool)
		for _, s := range q.Sources {
			owners[cl.Partition.CellOf(s)%2] = true
		}
		if len(owners) == 2 {
			split = q
			break
		}
	}
	if split.QueryID == 0 {
		t.Fatal("no query split across both shards in 50 samples")
	}
	if _, err := cl.Router.Execute(split); err != nil {
		t.Fatalf("pre-divergence query: %v", err)
	}

	// Diverge shard 0 behind the router's back: its ContentSum now differs
	// from shard 1's on every reply.
	v := split.Sources[0]
	arcs := g.Arcs(v)
	if len(arcs) == 0 {
		v = roadnet.NodeID(0)
		arcs = g.Arcs(v)
	}
	if _, err := cl.Shard(0).Server().UpdateWeights([]roadnet.ArcWeightChange{
		{From: v, To: arcs[0].To, NewCost: arcs[0].Cost * 3},
	}); err != nil {
		t.Fatal(err)
	}

	_, err = cl.Router.Execute(split)
	if !errors.Is(err, fleet.ErrGenerationSkew) {
		t.Fatalf("query across diverged shards: err = %v, want ErrGenerationSkew", err)
	}
	if cl.Router.Metrics().Counter("fleet_generation_skew") == 0 {
		t.Error("fleet_generation_skew never counted the refused merge")
	}

	// Converging the fleet through the router heals it: the same update
	// broadcast everywhere makes the checksums agree again.
	if err := cl.Router.UpdateWeights([]roadnet.ArcWeightChange{
		{From: v, To: arcs[0].To, NewCost: arcs[0].Cost * 3},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Router.Execute(split); err != nil {
		t.Fatalf("query after convergence: %v", err)
	}
}

// TestFleetOverloadShedding puts every shard behind a ShedAt=1 admission
// watermark: all replies come back Degraded (distance-only), with the exact
// reference costs — overload degrades fidelity, never correctness.
func TestFleetOverloadShedding(t *testing.T) {
	g := testGraph(t, 300, 1801)
	ref := server.MustNew(g, server.DefaultConfig())
	cl, err := fleettest.New(g, fleettest.Options{
		Shards: 2,
		Mux:    protocol.MuxServerConfig{ShedAt: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	for _, q := range makeQueries(g, 6, 4901) {
		got, err := cl.Router.Execute(q)
		if err != nil {
			t.Fatalf("query %d: %v", q.QueryID, err)
		}
		if !got.Degraded {
			t.Fatalf("query %d not marked Degraded under ShedAt=1", q.QueryID)
		}
		want, err := ref.Evaluate(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Paths) != len(want.Paths) {
			t.Fatalf("query %d: %d candidates, reference %d", q.QueryID, len(got.Paths), len(want.Paths))
		}
		for i, cand := range got.Paths {
			if len(cand.Nodes) != 0 {
				t.Errorf("query %d[%d]: shed reply materialised a %d-node path", q.QueryID, i, len(cand.Nodes))
			}
			if cand.Found != want.Paths[i].Found {
				t.Errorf("query %d[%d]: found=%v, reference %v", q.QueryID, i, cand.Found, want.Paths[i].Found)
			}
			if cand.Found && math.Abs(cand.Cost-want.Paths[i].Cost) > 1e-9 {
				t.Errorf("query %d[%d]: shed cost %v, reference %v", q.QueryID, i, cand.Cost, want.Paths[i].Cost)
			}
		}
	}
	if cl.Router.Metrics().Counter("fleet_degraded_replies") == 0 {
		t.Error("fleet_degraded_replies = 0 with every reply shed")
	}
}
