package gen

import (
	"testing"
	"testing/quick"

	"opaque/internal/roadnet"
)

func TestGenerateAllKinds(t *testing.T) {
	kinds := []NetworkKind{Grid, RandomGeometric, RingRadial, TigerLike}
	for _, kind := range kinds {
		t.Run(string(kind), func(t *testing.T) {
			cfg := DefaultNetworkConfig()
			cfg.Kind = kind
			cfg.Nodes = 600
			cfg.Seed = 9
			g, err := Generate(cfg)
			if err != nil {
				t.Fatalf("Generate(%s): %v", kind, err)
			}
			if !g.Frozen() {
				t.Error("generated graph must be frozen")
			}
			if g.NumNodes() < cfg.Nodes/3 {
				t.Errorf("node count %d unexpectedly small for target %d", g.NumNodes(), cfg.Nodes)
			}
			if g.NumArcs() == 0 {
				t.Error("generated graph has no arcs")
			}
			if err := g.Validate(); err != nil {
				t.Errorf("Validate: %v", err)
			}
			if !g.IsConnected() {
				t.Error("generated graph must be weakly connected")
			}
		})
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultNetworkConfig()
	cfg.Kind = TigerLike
	cfg.Nodes = 500
	cfg.Seed = 77
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumNodes() != b.NumNodes() || a.NumArcs() != b.NumArcs() {
		t.Fatalf("same seed produced different sizes: %d/%d vs %d/%d", a.NumNodes(), a.NumArcs(), b.NumNodes(), b.NumArcs())
	}
	for i := 0; i < a.NumNodes(); i++ {
		na, nb := a.Node(int32ID(i)), b.Node(int32ID(i))
		if na.X != nb.X || na.Y != nb.Y || na.Weight != nb.Weight {
			t.Fatalf("node %d differs between runs: %+v vs %+v", i, na, nb)
		}
	}
}

func TestGenerateDifferentSeedsDiffer(t *testing.T) {
	cfg := DefaultNetworkConfig()
	cfg.Nodes = 400
	cfg.Seed = 1
	a := MustGenerate(cfg)
	cfg.Seed = 2
	b := MustGenerate(cfg)
	same := a.NumNodes() == b.NumNodes()
	if same {
		diff := false
		for i := 0; i < a.NumNodes(); i++ {
			if a.Node(int32ID(i)).X != b.Node(int32ID(i)).X {
				diff = true
				break
			}
		}
		if !diff {
			t.Error("different seeds produced identical node placements")
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	cases := []NetworkConfig{
		{Kind: Grid, Nodes: 1, Extent: 100},
		{Kind: Grid, Nodes: 100, Extent: 0},
		{Kind: Grid, Nodes: 100, Extent: 100, CostJitter: -1},
		{Kind: Grid, Nodes: 100, Extent: 100, RemoveFraction: 1.5},
		{Kind: "mystery", Nodes: 100, Extent: 100},
	}
	for _, cfg := range cases {
		if _, err := Generate(cfg); err == nil {
			t.Errorf("Generate(%+v) succeeded, want error", cfg)
		}
	}
}

func TestEdgeCostsPositiveAndBounded(t *testing.T) {
	cfg := DefaultNetworkConfig()
	cfg.Nodes = 400
	cfg.CostJitter = 0.3
	g := MustGenerate(cfg)
	for id := 0; id < g.NumNodes(); id++ {
		for _, a := range g.Arcs(int32ID(id)) {
			if a.Cost <= 0 {
				t.Fatalf("non-positive edge cost %v", a.Cost)
			}
			// Costs are Euclidean length × factor in [0.8, 1+jitter]; allow
			// the highway discount.
			euclid := g.Euclid(int32ID(id), a.To)
			if a.Cost < 0.79*euclid || a.Cost > (1+cfg.CostJitter)*euclid+1e-6 {
				t.Fatalf("edge cost %v outside [%v, %v] for Euclid %v", a.Cost, 0.79*euclid, (1+cfg.CostJitter)*euclid, euclid)
			}
		}
	}
}

// Property: the deterministic RNG produces values in range and Perm returns a
// valid permutation.
func TestRNGProperties(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		r := newRNG(seed)
		v := r.Float64()
		if v < 0 || v >= 1 {
			return false
		}
		size := int(n%32) + 1
		p := r.Perm(size)
		seen := make([]bool, size)
		for _, x := range p {
			if x < 0 || x >= size || seen[x] {
				return false
			}
			seen[x] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestRNGIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	newRNG(1).Intn(0)
}

// int32ID keeps the tests readable: node IDs are int32-backed.
func int32ID(i int) roadnet.NodeID { return roadnet.NodeID(i) }
