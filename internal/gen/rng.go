// Package gen builds synthetic road networks and query workloads for the
// OPAQUE experiments.
//
// The paper evaluates on real road maps (Tiger/Line). Those data files are
// not available offline, so this package provides generators that reproduce
// the structural properties the OPAQUE algorithms depend on: planar
// embedding, locality (most edges connect nearby nodes), non-negative edge
// costs roughly proportional to Euclidean length, and heterogeneous node
// density (downtown cores vs. suburbs). All generators are deterministic
// given a seed, so every experiment is reproducible.
package gen

// rng is a small, allocation-free deterministic pseudo-random generator
// (SplitMix64 core) used by all generators and workloads. Using our own
// generator keeps network construction byte-for-byte reproducible across Go
// releases, unlike math/rand whose stream is not guaranteed stable.
type rng struct {
	state uint64
}

// newRNG returns a generator seeded with seed (0 is remapped to a fixed
// non-zero constant so the stream is never degenerate).
func newRNG(seed uint64) *rng {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &rng{state: seed}
}

// next64 advances the state and returns 64 random bits.
func (r *rng) next64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *rng) Float64() float64 {
	return float64(r.next64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *rng) Intn(n int) int {
	if n <= 0 {
		panic("gen: Intn with non-positive n")
	}
	return int(r.next64() % uint64(n))
}

// Range returns a uniform value in [lo, hi).
func (r *rng) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Norm returns an approximately standard-normal value using the sum of 12
// uniforms (Irwin–Hall); adequate for placing hotspot clusters.
func (r *rng) Norm() float64 {
	s := 0.0
	for i := 0; i < 12; i++ {
		s += r.Float64()
	}
	return s - 6
}

// Perm returns a random permutation of [0, n).
func (r *rng) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the provided slice of ints in place.
func (r *rng) Shuffle(s []int) {
	for i := len(s) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		s[i], s[j] = s[j], s[i]
	}
}
