package gen

import (
	"os"

	"opaque/internal/roadnet"
)

// LoadOrGenerate is the shared map-acquisition helper behind the cmd/
// binaries' -network/-generate flags: a non-empty networkFile is read in the
// roadnet text format, otherwise a network is generated with the given kind
// (empty = the default kind), node count and seed. Every role of a
// deployment resolves its map through this one function, so the same flags
// describe the same graph to all of them.
func LoadOrGenerate(networkFile, kind string, nodes int, seed uint64) (*roadnet.Graph, error) {
	if networkFile != "" {
		f, err := os.Open(networkFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return roadnet.ReadText(f)
	}
	cfg := DefaultNetworkConfig()
	if kind != "" {
		cfg.Kind = NetworkKind(kind)
	}
	cfg.Nodes = nodes
	cfg.Seed = seed
	return Generate(cfg)
}
