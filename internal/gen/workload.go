package gen

import (
	"fmt"
	"math"

	"opaque/internal/roadnet"
)

// QueryPair is a source/destination pair on the network: one user's true path
// query Q(s, t).
type QueryPair struct {
	Source roadnet.NodeID
	Dest   roadnet.NodeID
}

// WorkloadKind selects how query endpoints are drawn.
type WorkloadKind string

const (
	// Uniform draws sources and destinations uniformly at random.
	Uniform WorkloadKind = "uniform"
	// Hotspot draws endpoints around a small number of popular centres
	// (clinics, malls, stadiums), modelling the skewed interest distribution
	// the paper's motivation describes.
	Hotspot WorkloadKind = "hotspot"
	// DistanceBand draws pairs whose Euclidean separation falls inside
	// [MinDistance, MaxDistance], used to control the ||s,t|| term of
	// Lemma 1 experiments.
	DistanceBand WorkloadKind = "distanceband"
)

// WorkloadConfig parameterises a query workload.
type WorkloadConfig struct {
	Kind    WorkloadKind
	Queries int
	// Hotspots is the number of popular centres for the Hotspot kind.
	Hotspots int
	// HotspotSpread is the standard deviation (as a fraction of the network
	// extent) of endpoint placement around a hotspot centre.
	HotspotSpread float64
	// MinDistance and MaxDistance bound the Euclidean separation of pairs
	// for the DistanceBand kind, in the network's cost units.
	MinDistance float64
	MaxDistance float64
	Seed        uint64
}

// DefaultWorkloadConfig returns 200 uniform queries.
func DefaultWorkloadConfig() WorkloadConfig {
	return WorkloadConfig{Kind: Uniform, Queries: 200, Hotspots: 5, HotspotSpread: 0.05, Seed: 7}
}

// GenerateWorkload draws query pairs on g according to cfg. Sources always
// differ from destinations.
func GenerateWorkload(g *roadnet.Graph, cfg WorkloadConfig) ([]QueryPair, error) {
	if g.NumNodes() < 2 {
		return nil, fmt.Errorf("gen: workload needs a graph with at least 2 nodes")
	}
	if cfg.Queries <= 0 {
		return nil, fmt.Errorf("gen: workload needs a positive query count, got %d", cfg.Queries)
	}
	r := newRNG(cfg.Seed)
	switch cfg.Kind {
	case Uniform, "":
		return uniformWorkload(g, cfg, r), nil
	case Hotspot:
		return hotspotWorkload(g, cfg, r)
	case DistanceBand:
		return distanceBandWorkload(g, cfg, r)
	default:
		return nil, fmt.Errorf("gen: unknown workload kind %q", cfg.Kind)
	}
}

// MustGenerateWorkload is GenerateWorkload but panics on error.
func MustGenerateWorkload(g *roadnet.Graph, cfg WorkloadConfig) []QueryPair {
	w, err := GenerateWorkload(g, cfg)
	if err != nil {
		panic(err)
	}
	return w
}

func uniformWorkload(g *roadnet.Graph, cfg WorkloadConfig, r *rng) []QueryPair {
	n := g.NumNodes()
	out := make([]QueryPair, 0, cfg.Queries)
	for len(out) < cfg.Queries {
		s := roadnet.NodeID(r.Intn(n))
		t := roadnet.NodeID(r.Intn(n))
		if s == t {
			continue
		}
		out = append(out, QueryPair{Source: s, Dest: t})
	}
	return out
}

func hotspotWorkload(g *roadnet.Graph, cfg WorkloadConfig, r *rng) ([]QueryPair, error) {
	hotspots := cfg.Hotspots
	if hotspots < 1 {
		hotspots = 1
	}
	spread := cfg.HotspotSpread
	if spread <= 0 {
		spread = 0.05
	}
	minX, minY, maxX, maxY := g.Bounds()
	extentX, extentY := maxX-minX, maxY-minY
	if extentX <= 0 {
		extentX = 1
	}
	if extentY <= 0 {
		extentY = 1
	}
	type centre struct{ x, y float64 }
	centres := make([]centre, hotspots)
	for i := range centres {
		centres[i] = centre{r.Range(minX, maxX), r.Range(minY, maxY)}
	}
	draw := func() roadnet.NodeID {
		c := centres[r.Intn(hotspots)]
		x := c.x + r.Norm()*spread*extentX
		y := c.y + r.Norm()*spread*extentY
		return g.NearestNode(x, y)
	}
	out := make([]QueryPair, 0, cfg.Queries)
	for len(out) < cfg.Queries {
		// Sources are homes (uniform); destinations are hotspots, matching
		// the paper's motivating scenario (home -> clinic).
		s := roadnet.NodeID(r.Intn(g.NumNodes()))
		t := draw()
		if s == t || t == roadnet.InvalidNode {
			continue
		}
		out = append(out, QueryPair{Source: s, Dest: t})
	}
	return out, nil
}

func distanceBandWorkload(g *roadnet.Graph, cfg WorkloadConfig, r *rng) ([]QueryPair, error) {
	if cfg.MaxDistance <= 0 || cfg.MaxDistance < cfg.MinDistance {
		return nil, fmt.Errorf("gen: distance band workload requires 0 <= MinDistance <= MaxDistance, got [%v, %v]", cfg.MinDistance, cfg.MaxDistance)
	}
	n := g.NumNodes()
	out := make([]QueryPair, 0, cfg.Queries)
	attempts := 0
	maxAttempts := cfg.Queries * 2000
	for len(out) < cfg.Queries {
		attempts++
		if attempts > maxAttempts {
			return nil, fmt.Errorf("gen: could not find %d pairs in distance band [%v, %v] after %d attempts (found %d)",
				cfg.Queries, cfg.MinDistance, cfg.MaxDistance, attempts, len(out))
		}
		s := roadnet.NodeID(r.Intn(n))
		ns := g.Node(s)
		// Sample a target point in the band around s, then snap to the
		// nearest node; this is much faster than rejection sampling pairs on
		// large sparse networks.
		angle := r.Range(0, 2*math.Pi)
		radius := r.Range(cfg.MinDistance, cfg.MaxDistance)
		t := g.NearestNode(ns.X+radius*math.Cos(angle), ns.Y+radius*math.Sin(angle))
		if t == roadnet.InvalidNode || t == s {
			continue
		}
		d := g.Euclid(s, t)
		if d < cfg.MinDistance || d > cfg.MaxDistance {
			continue
		}
		out = append(out, QueryPair{Source: s, Dest: t})
	}
	return out, nil
}
