package gen

import (
	"testing"

	"opaque/internal/roadnet"
)

func testNetwork(t *testing.T) *roadnet.Graph {
	t.Helper()
	cfg := DefaultNetworkConfig()
	cfg.Nodes = 900
	cfg.Seed = 5
	return MustGenerate(cfg)
}

func TestUniformWorkload(t *testing.T) {
	g := testNetwork(t)
	wl, err := GenerateWorkload(g, WorkloadConfig{Kind: Uniform, Queries: 50, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(wl) != 50 {
		t.Fatalf("got %d queries, want 50", len(wl))
	}
	for i, q := range wl {
		if q.Source == q.Dest {
			t.Errorf("query %d has identical source and destination", i)
		}
		if !g.ValidNode(q.Source) || !g.ValidNode(q.Dest) {
			t.Errorf("query %d references invalid nodes %d/%d", i, q.Source, q.Dest)
		}
	}
}

func TestHotspotWorkloadConcentratesDestinations(t *testing.T) {
	g := testNetwork(t)
	wl, err := GenerateWorkload(g, WorkloadConfig{Kind: Hotspot, Queries: 200, Hotspots: 2, HotspotSpread: 0.02, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// With 2 tight hotspots, distinct destinations should be far fewer than
	// distinct sources.
	srcs := map[roadnet.NodeID]struct{}{}
	dsts := map[roadnet.NodeID]struct{}{}
	for _, q := range wl {
		srcs[q.Source] = struct{}{}
		dsts[q.Dest] = struct{}{}
	}
	if len(dsts) >= len(srcs) {
		t.Errorf("hotspot workload destinations (%d distinct) are not more concentrated than sources (%d distinct)", len(dsts), len(srcs))
	}
}

func TestDistanceBandWorkload(t *testing.T) {
	g := testNetwork(t)
	cfg := DefaultNetworkConfig()
	minD, maxD := 0.2*cfg.Extent, 0.4*cfg.Extent
	wl, err := GenerateWorkload(g, WorkloadConfig{Kind: DistanceBand, Queries: 40, MinDistance: minD, MaxDistance: maxD, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range wl {
		d := g.Euclid(q.Source, q.Dest)
		if d < minD || d > maxD {
			t.Errorf("query %d distance %v outside band [%v, %v]", i, d, minD, maxD)
		}
	}
}

func TestWorkloadDeterministic(t *testing.T) {
	g := testNetwork(t)
	cfg := WorkloadConfig{Kind: Uniform, Queries: 30, Seed: 11}
	a := MustGenerateWorkload(g, cfg)
	b := MustGenerateWorkload(g, cfg)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("workloads differ at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestWorkloadErrors(t *testing.T) {
	g := testNetwork(t)
	small := roadnet.NewGraph(1, 0)
	small.AddNode(0, 0)
	small.Freeze()
	cases := []struct {
		name string
		g    *roadnet.Graph
		cfg  WorkloadConfig
	}{
		{"tiny graph", small, WorkloadConfig{Kind: Uniform, Queries: 5}},
		{"zero queries", g, WorkloadConfig{Kind: Uniform, Queries: 0}},
		{"unknown kind", g, WorkloadConfig{Kind: "nope", Queries: 5}},
		{"bad band", g, WorkloadConfig{Kind: DistanceBand, Queries: 5, MinDistance: 10, MaxDistance: 5}},
		{"impossible band", g, WorkloadConfig{Kind: DistanceBand, Queries: 5, MinDistance: 1e9, MaxDistance: 2e9}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := GenerateWorkload(tc.g, tc.cfg); err == nil {
				t.Errorf("GenerateWorkload(%+v) succeeded, want error", tc.cfg)
			}
		})
	}
}
