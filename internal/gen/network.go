package gen

import (
	"fmt"
	"math"

	"opaque/internal/roadnet"
)

// NetworkKind selects a synthetic road-network topology.
type NetworkKind string

const (
	// Grid is a Manhattan-style rectangular street grid with light random
	// perturbation of intersection positions and a fraction of streets
	// removed to create irregularity.
	Grid NetworkKind = "grid"
	// RandomGeometric scatters intersections uniformly and connects each to
	// its nearby neighbours, producing an unstructured rural-style network.
	RandomGeometric NetworkKind = "geometric"
	// RingRadial is a city with concentric ring roads and radial avenues
	// meeting in a dense core.
	RingRadial NetworkKind = "ringradial"
	// TigerLike combines several dense urban clusters connected by sparse
	// highways, mimicking the suburban structure of Tiger/Line county maps.
	TigerLike NetworkKind = "tigerlike"
)

// NetworkConfig parameterises a synthetic network.
type NetworkConfig struct {
	Kind NetworkKind
	// Nodes is the target node count. Generators may produce slightly more
	// or fewer nodes to keep the topology regular; Generate reports the
	// actual count in the returned graph.
	Nodes int
	// Extent is the side length of the square region the network covers, in
	// cost units (e.g. metres). Edge costs are Euclidean lengths scaled by a
	// per-edge factor in [1, 1+CostJitter].
	Extent float64
	// CostJitter adds multiplicative noise to edge costs to model speed
	// differences between roads. 0 means costs equal Euclidean lengths.
	CostJitter float64
	// RemoveFraction is the fraction of candidate edges dropped at random to
	// create irregularity (dead ends, missing streets). The generator always
	// keeps the graph connected by restricting output to the largest
	// component when removal disconnects it.
	RemoveFraction float64
	// Clusters is the number of urban cores for the TigerLike kind.
	Clusters int
	// Seed makes generation deterministic.
	Seed uint64
}

// DefaultNetworkConfig returns a mid-sized grid network configuration used by
// the examples and as the baseline for experiments.
func DefaultNetworkConfig() NetworkConfig {
	return NetworkConfig{
		Kind:           Grid,
		Nodes:          10000,
		Extent:         100000, // 100 km square
		CostJitter:     0.2,
		RemoveFraction: 0.05,
		Clusters:       6,
		Seed:           42,
	}
}

// Generate builds a road network according to cfg. The returned graph is
// frozen, validated and weakly connected.
func Generate(cfg NetworkConfig) (*roadnet.Graph, error) {
	if cfg.Nodes <= 1 {
		return nil, fmt.Errorf("gen: need at least 2 nodes, got %d", cfg.Nodes)
	}
	if cfg.Extent <= 0 {
		return nil, fmt.Errorf("gen: extent must be positive, got %v", cfg.Extent)
	}
	if cfg.CostJitter < 0 {
		return nil, fmt.Errorf("gen: cost jitter must be non-negative, got %v", cfg.CostJitter)
	}
	if cfg.RemoveFraction < 0 || cfg.RemoveFraction >= 1 {
		return nil, fmt.Errorf("gen: remove fraction must be in [0,1), got %v", cfg.RemoveFraction)
	}
	r := newRNG(cfg.Seed)
	var g *roadnet.Graph
	switch cfg.Kind {
	case Grid, "":
		g = generateGrid(cfg, r)
	case RandomGeometric:
		g = generateGeometric(cfg, r)
	case RingRadial:
		g = generateRingRadial(cfg, r)
	case TigerLike:
		g = generateTigerLike(cfg, r)
	default:
		return nil, fmt.Errorf("gen: unknown network kind %q", cfg.Kind)
	}
	g.Freeze()
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if !g.IsConnected() {
		g = restrictToLargestComponent(g)
	}
	return g, nil
}

// MustGenerate is Generate but panics on error; used in tests and examples
// whose configurations are valid by construction.
func MustGenerate(cfg NetworkConfig) *roadnet.Graph {
	g, err := Generate(cfg)
	if err != nil {
		panic(err)
	}
	return g
}

// edgeCost computes the cost of an edge between two placed nodes: Euclidean
// length times a jitter factor in [1, 1+CostJitter]. A tiny floor keeps
// zero-length duplicate placements usable.
func edgeCost(cfg NetworkConfig, r *rng, x1, y1, x2, y2 float64) float64 {
	d := math.Hypot(x2-x1, y2-y1)
	if d < 1e-9 {
		d = 1e-9
	}
	return d * (1 + cfg.CostJitter*r.Float64())
}

// generateGrid builds a rows×cols Manhattan grid with perturbed intersection
// positions.
func generateGrid(cfg NetworkConfig, r *rng) *roadnet.Graph {
	side := int(math.Round(math.Sqrt(float64(cfg.Nodes))))
	if side < 2 {
		side = 2
	}
	spacing := cfg.Extent / float64(side-1)
	g := roadnet.NewGraph(side*side, 4*side*side)
	ids := make([][]roadnet.NodeID, side)
	for i := 0; i < side; i++ {
		ids[i] = make([]roadnet.NodeID, side)
		for j := 0; j < side; j++ {
			// Perturb positions by up to 20% of the spacing to avoid a
			// perfectly regular lattice.
			x := float64(j)*spacing + r.Range(-0.2, 0.2)*spacing
			y := float64(i)*spacing + r.Range(-0.2, 0.2)*spacing
			ids[i][j] = g.AddNode(x, y)
		}
	}
	addStreet := func(a, b roadnet.NodeID) {
		if cfg.RemoveFraction > 0 && r.Float64() < cfg.RemoveFraction {
			return
		}
		na, nb := g.Node(a), g.Node(b)
		g.MustAddBidirectionalEdge(a, b, edgeCost(cfg, r, na.X, na.Y, nb.X, nb.Y))
	}
	for i := 0; i < side; i++ {
		for j := 0; j < side; j++ {
			if j+1 < side {
				addStreet(ids[i][j], ids[i][j+1])
			}
			if i+1 < side {
				addStreet(ids[i][j], ids[i+1][j])
			}
		}
	}
	return g
}

// generateGeometric scatters nodes uniformly and connects each node to its k
// nearest neighbours (k drawn from {2,3,4}), a standard random geometric road
// approximation.
func generateGeometric(cfg NetworkConfig, r *rng) *roadnet.Graph {
	n := cfg.Nodes
	g := roadnet.NewGraph(n, 6*n)
	for i := 0; i < n; i++ {
		g.AddNode(r.Range(0, cfg.Extent), r.Range(0, cfg.Extent))
	}
	// Spatial bucketing for neighbour search while still mutable: simple
	// uniform grid built locally (the graph's own index requires Freeze).
	cells := int(math.Ceil(math.Sqrt(float64(n))))
	if cells < 1 {
		cells = 1
	}
	cellSize := cfg.Extent / float64(cells)
	bucket := make([][]roadnet.NodeID, cells*cells)
	cellOf := func(x, y float64) int {
		cx := int(x / cellSize)
		cy := int(y / cellSize)
		if cx >= cells {
			cx = cells - 1
		}
		if cy >= cells {
			cy = cells - 1
		}
		if cx < 0 {
			cx = 0
		}
		if cy < 0 {
			cy = 0
		}
		return cy*cells + cx
	}
	for _, node := range g.Nodes() {
		bucket[cellOf(node.X, node.Y)] = append(bucket[cellOf(node.X, node.Y)], node.ID)
	}
	type cand struct {
		id roadnet.NodeID
		d  float64
	}
	for _, node := range g.Nodes() {
		k := 2 + r.Intn(3)
		// Gather candidates from the 3x3 cell neighbourhood, expanding if
		// needed.
		var cands []cand
		for radius := 1; radius <= cells && len(cands) <= k; radius++ {
			cands = cands[:0]
			cx := int(node.X / cellSize)
			cy := int(node.Y / cellSize)
			for dy := -radius; dy <= radius; dy++ {
				for dx := -radius; dx <= radius; dx++ {
					bx, by := cx+dx, cy+dy
					if bx < 0 || by < 0 || bx >= cells || by >= cells {
						continue
					}
					for _, other := range bucket[by*cells+bx] {
						if other == node.ID {
							continue
						}
						o := g.Node(other)
						cands = append(cands, cand{other, math.Hypot(o.X-node.X, o.Y-node.Y)})
					}
				}
			}
		}
		// Partial selection sort of the k nearest.
		for sel := 0; sel < k && sel < len(cands); sel++ {
			best := sel
			for j := sel + 1; j < len(cands); j++ {
				if cands[j].d < cands[best].d {
					best = j
				}
			}
			cands[sel], cands[best] = cands[best], cands[sel]
			if cfg.RemoveFraction > 0 && r.Float64() < cfg.RemoveFraction {
				continue
			}
			o := g.Node(cands[sel].id)
			g.MustAddBidirectionalEdge(node.ID, cands[sel].id, edgeCost(cfg, r, node.X, node.Y, o.X, o.Y))
		}
	}
	return g
}

// generateRingRadial builds concentric rings crossed by radial avenues.
func generateRingRadial(cfg NetworkConfig, r *rng) *roadnet.Graph {
	// nodes ≈ rings × spokes; pick a roughly square decomposition.
	spokes := int(math.Round(math.Sqrt(float64(cfg.Nodes) * 2)))
	if spokes < 4 {
		spokes = 4
	}
	rings := cfg.Nodes / spokes
	if rings < 2 {
		rings = 2
	}
	cx, cy := cfg.Extent/2, cfg.Extent/2
	maxR := cfg.Extent / 2
	g := roadnet.NewGraph(rings*spokes+1, 4*rings*spokes)
	center := g.AddWeightedNode(cx, cy, 4) // dense core gets a high weight
	ids := make([][]roadnet.NodeID, rings)
	for ri := 0; ri < rings; ri++ {
		ids[ri] = make([]roadnet.NodeID, spokes)
		radius := maxR * float64(ri+1) / float64(rings)
		for si := 0; si < spokes; si++ {
			angle := 2 * math.Pi * float64(si) / float64(spokes)
			x := cx + radius*math.Cos(angle) + r.Range(-0.01, 0.01)*cfg.Extent
			y := cy + radius*math.Sin(angle) + r.Range(-0.01, 0.01)*cfg.Extent
			// Inner rings are denser/more popular: weight decays with radius.
			w := 1 + 3*(1-float64(ri)/float64(rings))
			ids[ri][si] = g.AddWeightedNode(x, y, w)
		}
	}
	connect := func(a, b roadnet.NodeID) {
		if cfg.RemoveFraction > 0 && r.Float64() < cfg.RemoveFraction {
			return
		}
		na, nb := g.Node(a), g.Node(b)
		g.MustAddBidirectionalEdge(a, b, edgeCost(cfg, r, na.X, na.Y, nb.X, nb.Y))
	}
	for si := 0; si < spokes; si++ {
		connect(center, ids[0][si])
		for ri := 0; ri < rings; ri++ {
			connect(ids[ri][si], ids[ri][(si+1)%spokes]) // along the ring
			if ri+1 < rings {
				connect(ids[ri][si], ids[ri+1][si]) // radial
			}
		}
	}
	return g
}

// generateTigerLike builds several dense grid clusters ("towns") scattered in
// the extent, connected by sparse highway edges, echoing the structure of
// Tiger/Line county maps used by the paper.
func generateTigerLike(cfg NetworkConfig, r *rng) *roadnet.Graph {
	clusters := cfg.Clusters
	if clusters < 2 {
		clusters = 2
	}
	perCluster := cfg.Nodes / clusters
	if perCluster < 4 {
		perCluster = 4
	}
	g := roadnet.NewGraph(cfg.Nodes+clusters, 5*cfg.Nodes)
	type cluster struct {
		cx, cy  float64
		members []roadnet.NodeID
	}
	cls := make([]cluster, clusters)
	for c := 0; c < clusters; c++ {
		cls[c].cx = r.Range(0.1, 0.9) * cfg.Extent
		cls[c].cy = r.Range(0.1, 0.9) * cfg.Extent
		side := int(math.Round(math.Sqrt(float64(perCluster))))
		if side < 2 {
			side = 2
		}
		// town diameter ~ extent / (2*clusters^0.5)
		townSize := cfg.Extent / (2 * math.Sqrt(float64(clusters)))
		spacing := townSize / float64(side-1)
		ids := make([][]roadnet.NodeID, side)
		for i := 0; i < side; i++ {
			ids[i] = make([]roadnet.NodeID, side)
			for j := 0; j < side; j++ {
				x := cls[c].cx - townSize/2 + float64(j)*spacing + r.Range(-0.25, 0.25)*spacing
				y := cls[c].cy - townSize/2 + float64(i)*spacing + r.Range(-0.25, 0.25)*spacing
				// Town centres carry higher association weight (businesses).
				dist := math.Hypot(float64(i)-float64(side)/2, float64(j)-float64(side)/2)
				w := 1 + 3*math.Exp(-dist/float64(side))
				ids[i][j] = g.AddWeightedNode(x, y, w)
				cls[c].members = append(cls[c].members, ids[i][j])
			}
		}
		for i := 0; i < side; i++ {
			for j := 0; j < side; j++ {
				if cfg.RemoveFraction > 0 && r.Float64() < cfg.RemoveFraction {
					continue
				}
				if j+1 < side {
					a, b := g.Node(ids[i][j]), g.Node(ids[i][j+1])
					g.MustAddBidirectionalEdge(ids[i][j], ids[i][j+1], edgeCost(cfg, r, a.X, a.Y, b.X, b.Y))
				}
				if i+1 < side {
					a, b := g.Node(ids[i][j]), g.Node(ids[i+1][j])
					g.MustAddBidirectionalEdge(ids[i][j], ids[i+1][j], edgeCost(cfg, r, a.X, a.Y, b.X, b.Y))
				}
			}
		}
	}
	// Highways: connect each cluster to its two nearest clusters through the
	// member node closest to the other cluster's centre. Highway costs get a
	// 0.8 factor (faster travel) on top of the Euclidean length.
	for c := range cls {
		type link struct {
			other int
			d     float64
		}
		links := make([]link, 0, clusters-1)
		for o := range cls {
			if o == c {
				continue
			}
			links = append(links, link{o, math.Hypot(cls[o].cx-cls[c].cx, cls[o].cy-cls[c].cy)})
		}
		// two nearest
		for pick := 0; pick < 2 && pick < len(links); pick++ {
			best := pick
			for j := pick + 1; j < len(links); j++ {
				if links[j].d < links[best].d {
					best = j
				}
			}
			links[pick], links[best] = links[best], links[pick]
			o := links[pick].other
			a := nearestMember(g, cls[c].members, cls[o].cx, cls[o].cy)
			b := nearestMember(g, cls[o].members, cls[c].cx, cls[c].cy)
			na, nb := g.Node(a), g.Node(b)
			cost := 0.8 * edgeCost(cfg, r, na.X, na.Y, nb.X, nb.Y)
			g.MustAddBidirectionalEdge(a, b, cost)
		}
	}
	return g
}

func nearestMember(g *roadnet.Graph, members []roadnet.NodeID, x, y float64) roadnet.NodeID {
	best := members[0]
	bestD := math.Inf(1)
	for _, id := range members {
		n := g.Node(id)
		d := math.Hypot(n.X-x, n.Y-y)
		if d < bestD {
			bestD = d
			best = id
		}
	}
	return best
}

// restrictToLargestComponent rebuilds the graph keeping only the largest
// weakly connected component, remapping node IDs densely.
func restrictToLargestComponent(g *roadnet.Graph) *roadnet.Graph {
	keep := g.LargestComponent()
	remap := make(map[roadnet.NodeID]roadnet.NodeID, len(keep))
	out := roadnet.NewGraph(len(keep), g.NumArcs())
	for _, id := range keep {
		n := g.Node(id)
		remap[id] = out.AddWeightedNode(n.X, n.Y, n.Weight)
	}
	for _, id := range keep {
		for _, a := range g.Arcs(id) {
			if to, ok := remap[a.To]; ok {
				out.MustAddEdge(remap[id], to, a.Cost)
			}
		}
	}
	out.Freeze()
	return out
}
