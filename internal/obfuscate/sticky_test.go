package obfuscate

import (
	"testing"

	"opaque/internal/roadnet"
)

func TestStickySelectorReusesFakes(t *testing.T) {
	g := testGraph(t)
	sticky := NewStickySelector(testSelector(g, 301), 0)
	if sticky.Name() != "sticky-ringband" {
		t.Errorf("Name = %q", sticky.Name())
	}
	truth := roadnet.NodeID(42)
	first := sticky.SelectFakes(g, truth, 5, nil)
	second := sticky.SelectFakes(g, truth, 5, nil)
	if len(first) != 5 || len(second) != 5 {
		t.Fatalf("selection sizes %d/%d, want 5/5", len(first), len(second))
	}
	asSet := func(ids []roadnet.NodeID) map[roadnet.NodeID]struct{} {
		m := map[roadnet.NodeID]struct{}{}
		for _, id := range ids {
			m[id] = struct{}{}
		}
		return m
	}
	fs, ss := asSet(first), asSet(second)
	for id := range ss {
		if _, ok := fs[id]; !ok {
			t.Errorf("second selection drew a fresh fake %d; sticky selection must reuse the first draw", id)
		}
	}
	if sticky.Entries() != 1 {
		t.Errorf("memo entries = %d, want 1", sticky.Entries())
	}
}

func TestStickySelectorDifferentEndpointsIndependent(t *testing.T) {
	g := testGraph(t)
	sticky := NewStickySelector(testSelector(g, 303), 0)
	a := sticky.SelectFakes(g, 10, 4, nil)
	b := sticky.SelectFakes(g, 700, 4, nil)
	if len(a) == 0 || len(b) == 0 {
		t.Fatal("no fakes selected")
	}
	if sticky.Entries() != 2 {
		t.Errorf("memo entries = %d, want 2", sticky.Entries())
	}
}

func TestStickySelectorHonoursExclusions(t *testing.T) {
	g := testGraph(t)
	sticky := NewStickySelector(testSelector(g, 305), 0)
	truth := roadnet.NodeID(99)
	first := sticky.SelectFakes(g, truth, 4, nil)
	if len(first) != 4 {
		t.Fatalf("want 4 fakes, got %d", len(first))
	}
	// Exclude one of the cached fakes; the next selection must avoid it and
	// top up from the inner selector.
	exclude := map[roadnet.NodeID]struct{}{first[0]: {}}
	second := sticky.SelectFakes(g, truth, 4, exclude)
	if len(second) != 4 {
		t.Fatalf("want 4 fakes after exclusion, got %d", len(second))
	}
	for _, id := range second {
		if id == first[0] {
			t.Error("excluded node returned")
		}
		if id == truth {
			t.Error("true endpoint returned")
		}
	}
}

func TestStickySelectorGrowsPool(t *testing.T) {
	g := testGraph(t)
	sticky := NewStickySelector(testSelector(g, 307), 0)
	truth := roadnet.NodeID(123)
	small := sticky.SelectFakes(g, truth, 2, nil)
	large := sticky.SelectFakes(g, truth, 6, nil)
	if len(large) != 6 {
		t.Fatalf("want 6 fakes, got %d", len(large))
	}
	// The larger draw must start with the previously cached fakes.
	cached := map[roadnet.NodeID]struct{}{}
	for _, id := range small {
		cached[id] = struct{}{}
	}
	hit := 0
	for _, id := range large {
		if _, ok := cached[id]; ok {
			hit++
		}
	}
	if hit != len(small) {
		t.Errorf("larger selection reused %d of %d cached fakes", hit, len(small))
	}
}

func TestStickySelectorEvictionAndReset(t *testing.T) {
	g := testGraph(t)
	sticky := NewStickySelector(testSelector(g, 309), 3)
	for i := 0; i < 6; i++ {
		sticky.SelectFakes(g, roadnet.NodeID(i*50), 2, nil)
	}
	if sticky.Entries() > 3 {
		t.Errorf("memo grew to %d entries, cap is 3", sticky.Entries())
	}
	sticky.Reset()
	if sticky.Entries() != 0 {
		t.Error("Reset did not clear the memo")
	}
}

func TestMergeNodeSets(t *testing.T) {
	got := mergeNodeSets([]roadnet.NodeID{3, 1}, []roadnet.NodeID{2, 3})
	want := []roadnet.NodeID{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("mergeNodeSets = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("mergeNodeSets[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

// TestStickyDefeatsLinkage is the unit-level version of experiment E10: the
// intersection of repeated observations stays at the full obfuscated size
// when fakes are sticky, instead of collapsing to the true endpoints.
func TestStickyDefeatsLinkage(t *testing.T) {
	g := testGraph(t)
	truth := Request{User: "alice", Source: 7, Dest: 900, FS: 4, FT: 4}

	observe := func(sel EndpointSelector, rounds int) (minSrcSetSize int) {
		minSrcSetSize = 1 << 30
		persistent := map[roadnet.NodeID]int{}
		for r := 0; r < rounds; r++ {
			o := MustNew(g, Config{Mode: Independent, Cluster: ClusterNone, Selector: sel, Seed: uint64(400 + r)})
			plan, err := o.Obfuscate([]Request{truth})
			if err != nil {
				t.Fatal(err)
			}
			for _, s := range plan.Queries[0].Sources {
				persistent[s]++
			}
			count := 0
			for _, c := range persistent {
				if c == r+1 {
					count++
				}
			}
			if count < minSrcSetSize {
				minSrcSetSize = count
			}
		}
		return minSrcSetSize
	}

	sticky := NewStickySelector(testSelector(g, 401), 0)
	stickyResidual := observe(sticky, 5)
	if stickyResidual < 4 {
		t.Errorf("sticky fakes: intersection shrank to %d candidate sources, want the full 4", stickyResidual)
	}

	freshResidual := observe(testSelector(g, 402), 5)
	// With one fresh selector reused across rounds the draws differ because
	// its internal RNG advances; after 5 observations the intersection is
	// expected to be (nearly) pinned to the true source.
	if freshResidual >= stickyResidual {
		t.Errorf("fresh fakes left %d persistent sources, sticky left %d — sticky must preserve at least as much anonymity", freshResidual, stickyResidual)
	}
}
