package obfuscate

import (
	"math"
	"testing"
	"testing/quick"

	"opaque/internal/gen"
	"opaque/internal/roadnet"
)

func testGraph(t testing.TB) *roadnet.Graph {
	t.Helper()
	cfg := gen.DefaultNetworkConfig()
	cfg.Kind = gen.TigerLike
	cfg.Nodes = 1200
	cfg.Seed = 41
	return gen.MustGenerate(cfg)
}

func testSelector(g *roadnet.Graph, seed uint64) EndpointSelector {
	minX, minY, maxX, maxY := g.Bounds()
	extent := math.Max(maxX-minX, maxY-minY)
	return MustNewRingBandSelector(0.02*extent, 0.2*extent, seed)
}

func testRequests(g *roadnet.Graph, n, fs, ft int, seed uint64) []Request {
	wl := gen.MustGenerateWorkload(g, gen.WorkloadConfig{Kind: gen.Uniform, Queries: n, Seed: seed})
	out := make([]Request, n)
	for i, p := range wl {
		out[i] = Request{User: UserID("u"+string(rune('a'+i%26))) + UserID(rune('0'+i/26)), Source: p.Source, Dest: p.Dest, FS: fs, FT: ft}
	}
	return out
}

func TestBreachProbability(t *testing.T) {
	cases := []struct {
		fs, ft int
		want   float64
	}{
		{1, 1, 1},
		{2, 3, 1.0 / 6},
		{4, 4, 1.0 / 16},
		{0, 5, 1.0 / 5}, // clamped fS
		{-3, -2, 1},     // both clamped
		{16, 16, 1.0 / 256},
	}
	for _, tc := range cases {
		if got := BreachProbability(tc.fs, tc.ft); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("BreachProbability(%d,%d) = %v, want %v", tc.fs, tc.ft, got, tc.want)
		}
	}
}

// Property: breach probability is always in (0, 1] and decreases (weakly)
// when either set grows.
func TestBreachProbabilityProperty(t *testing.T) {
	f := func(fs, ft uint8) bool {
		a := BreachProbability(int(fs), int(ft))
		b := BreachProbability(int(fs)+1, int(ft))
		c := BreachProbability(int(fs), int(ft)+1)
		return a > 0 && a <= 1 && b <= a && c <= a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRequestValidate(t *testing.T) {
	g := testGraph(t)
	good := Request{User: "alice", Source: 0, Dest: 1, FS: 2, FT: 2}
	if err := good.Validate(g); err != nil {
		t.Errorf("valid request rejected: %v", err)
	}
	cases := []Request{
		{User: "", Source: 0, Dest: 1},
		{User: "x", Source: -1, Dest: 1},
		{User: "x", Source: 0, Dest: roadnet.NodeID(g.NumNodes())},
		{User: "x", Source: 5, Dest: 5},
		{User: "x", Source: 0, Dest: 1, FS: -1},
	}
	for i, r := range cases {
		if err := r.Validate(g); err == nil {
			t.Errorf("case %d: invalid request %+v accepted", i, r)
		}
	}
}

func TestObfuscatedQueryHelpers(t *testing.T) {
	q := ObfuscatedQuery{
		Sources: []roadnet.NodeID{1, 2},
		Dests:   []roadnet.NodeID{3, 4, 5},
		Members: []Request{{User: "a", Source: 1, Dest: 3}},
	}
	if got := q.BreachProbability(); math.Abs(got-1.0/6) > 1e-12 {
		t.Errorf("BreachProbability = %v, want 1/6", got)
	}
	if !q.ContainsPair(2, 5) || q.ContainsPair(3, 5) {
		t.Error("ContainsPair misbehaves")
	}
	if !q.Covers(q.Members[0]) {
		t.Error("Covers should accept its own member")
	}
	if q.NumCandidatePairs() != 6 {
		t.Errorf("NumCandidatePairs = %d, want 6", q.NumCandidatePairs())
	}
	if q.String() == "" {
		t.Error("String empty")
	}
}

func TestUniformSelector(t *testing.T) {
	g := testGraph(t)
	sel := NewUniformSelector(7)
	truth := roadnet.NodeID(10)
	exclude := map[roadnet.NodeID]struct{}{20: {}, 30: {}}
	fakes := sel.SelectFakes(g, truth, 15, exclude)
	if len(fakes) != 15 {
		t.Fatalf("got %d fakes, want 15", len(fakes))
	}
	seen := map[roadnet.NodeID]struct{}{}
	for _, f := range fakes {
		if f == truth {
			t.Error("selector returned the true endpoint")
		}
		if _, excluded := exclude[f]; excluded {
			t.Error("selector returned an excluded endpoint")
		}
		if _, dup := seen[f]; dup {
			t.Error("selector returned duplicates")
		}
		seen[f] = struct{}{}
	}
	if sel.Name() != "uniform" {
		t.Errorf("Name = %q", sel.Name())
	}
}

func TestUniformSelectorSmallGraph(t *testing.T) {
	g := roadnet.NewGraph(3, 0)
	g.AddNode(0, 0)
	g.AddNode(1, 0)
	g.AddNode(2, 0)
	g.Freeze()
	sel := NewUniformSelector(1)
	fakes := sel.SelectFakes(g, 0, 10, nil)
	if len(fakes) != 2 {
		t.Errorf("tiny graph should yield 2 fakes, got %d", len(fakes))
	}
}

func TestRingBandSelector(t *testing.T) {
	g := testGraph(t)
	minX, minY, maxX, maxY := g.Bounds()
	extent := math.Max(maxX-minX, maxY-minY)
	minR, maxR := 0.05*extent, 0.2*extent
	sel := MustNewRingBandSelector(minR, maxR, 3)
	if sel.Name() != "ringband" {
		t.Errorf("Name = %q", sel.Name())
	}
	truth := roadnet.NodeID(g.NumNodes() / 2)
	fakes := sel.SelectFakes(g, truth, 8, nil)
	if len(fakes) == 0 {
		t.Fatal("no fakes selected")
	}
	for _, f := range fakes {
		if f == truth {
			t.Error("true endpoint returned as fake")
		}
		d := g.Euclid(truth, f)
		// The band may be widened when sparse, but never narrowed below min.
		if d < minR-1e-9 {
			t.Errorf("fake at distance %v inside the minimum radius %v", d, minR)
		}
	}
	if _, err := NewRingBandSelector(5, 5, 1); err == nil {
		t.Error("degenerate band accepted")
	}
	if _, err := NewRingBandSelector(-1, 5, 1); err == nil {
		t.Error("negative min radius accepted")
	}
}

func TestDensityAwareSelector(t *testing.T) {
	g := testGraph(t)
	minX, minY, maxX, maxY := g.Bounds()
	extent := math.Max(maxX-minX, maxY-minY)
	sel := MustNewDensityAwareSelector(0.2*extent, 5)
	if sel.Name() != "density" {
		t.Errorf("Name = %q", sel.Name())
	}
	truth := roadnet.NodeID(0)
	fakes := sel.SelectFakes(g, truth, 10, map[roadnet.NodeID]struct{}{1: {}})
	if len(fakes) == 0 {
		t.Fatal("no fakes selected")
	}
	seen := map[roadnet.NodeID]struct{}{}
	for _, f := range fakes {
		if f == truth || f == 1 {
			t.Error("selector returned truth or excluded node")
		}
		if _, dup := seen[f]; dup {
			t.Error("duplicate fake")
		}
		seen[f] = struct{}{}
	}
	if _, err := NewDensityAwareSelector(0, 1); err == nil {
		t.Error("zero radius accepted")
	}
}

// TestDensityAwarePrefersPopularNodes draws many fakes and checks the mean
// weight of selected nodes exceeds the graph's mean node weight.
func TestDensityAwarePrefersPopularNodes(t *testing.T) {
	g := testGraph(t)
	minX, minY, maxX, maxY := g.Bounds()
	extent := math.Max(maxX-minX, maxY-minY)
	sel := MustNewDensityAwareSelector(0.5*extent, 9)
	graphMean := 0.0
	for _, n := range g.Nodes() {
		graphMean += n.Weight
	}
	graphMean /= float64(g.NumNodes())

	totalWeight, count := 0.0, 0
	for trial := 0; trial < 20; trial++ {
		truth := roadnet.NodeID((trial * 37) % g.NumNodes())
		for _, f := range sel.SelectFakes(g, truth, 5, nil) {
			totalWeight += g.Node(f).Weight
			count++
		}
	}
	if count == 0 {
		t.Fatal("no fakes drawn")
	}
	if totalWeight/float64(count) <= graphMean {
		t.Errorf("density-aware mean fake weight %.3f not above graph mean %.3f", totalWeight/float64(count), graphMean)
	}
}

func TestSelectorsDeterministic(t *testing.T) {
	g := testGraph(t)
	a := testSelector(g, 42).SelectFakes(g, 5, 6, nil)
	b := testSelector(g, 42).SelectFakes(g, 5, 6, nil)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("selection differs at %d: %d vs %d", i, a[i], b[i])
		}
	}
}
