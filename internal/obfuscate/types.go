// Package obfuscate implements the path query obfuscator of the OPAQUE
// system (Section III and IV of the paper): it turns true path queries
// Q(s, t) into obfuscated path queries Q(S, T) with s ∈ S and t ∈ T, either
// independently (one Q(Si, Ti) per user) or shared (several users' true
// endpoints merged into one Q(S, T)), and quantifies the resulting privacy
// protection via the breach probability of Definition 2.
package obfuscate

import (
	"fmt"

	"opaque/internal/roadnet"
)

// UserID identifies a client of the obfuscator.
type UserID string

// Request is the message a client sends to the obfuscator over the secure
// channel: its true path query and the desired obfuscation power
// ⟨u, (s, t), fS, fT⟩ (Section IV, Figure 6).
type Request struct {
	User   UserID
	Source roadnet.NodeID
	Dest   roadnet.NodeID
	// FS and FT are the user's desired sizes of the source and destination
	// sets of the obfuscated query (fS and fT in the paper). Values below 1
	// are treated as 1 (no obfuscation on that side).
	FS int
	FT int
	// Profile optionally names the server-side weight profile (time-of-day
	// metric) the query should be answered under; empty means the live
	// metric. Requests are only ever obfuscated together with requests of
	// the same profile — one obfuscated query is evaluated under exactly one
	// metric.
	Profile string
}

// Validate checks the request against the graph it will be evaluated on.
func (r Request) Validate(g *roadnet.Graph) error {
	if r.User == "" {
		return fmt.Errorf("obfuscate: request has empty user id")
	}
	if !g.ValidNode(r.Source) {
		return fmt.Errorf("obfuscate: request %q has invalid source %d", r.User, r.Source)
	}
	if !g.ValidNode(r.Dest) {
		return fmt.Errorf("obfuscate: request %q has invalid destination %d", r.User, r.Dest)
	}
	if r.Source == r.Dest {
		return fmt.Errorf("obfuscate: request %q has identical source and destination %d", r.User, r.Source)
	}
	if r.FS < 0 || r.FT < 0 {
		return fmt.Errorf("obfuscate: request %q has negative protection setting (fS=%d, fT=%d)", r.User, r.FS, r.FT)
	}
	return nil
}

// normalizedFS returns fS clamped to at least 1.
func (r Request) normalizedFS() int {
	if r.FS < 1 {
		return 1
	}
	return r.FS
}

// normalizedFT returns fT clamped to at least 1.
func (r Request) normalizedFT() int {
	if r.FT < 1 {
		return 1
	}
	return r.FT
}

// ObfuscatedQuery is one obfuscated path query Q(S, T) as sent to the
// directions search server. Only S and T leave the obfuscator; Members is the
// obfuscator-side record of which true requests it protects and is used by
// the candidate result path filter.
type ObfuscatedQuery struct {
	// ID distinguishes queries within one batch.
	ID int
	// Sources is the source set S; Dests is the destination set T. Both are
	// deduplicated and order-randomised so position leaks nothing.
	Sources []roadnet.NodeID
	Dests   []roadnet.NodeID
	// Members are the true requests hidden inside this query.
	Members []Request
}

// BreachProbability returns the probability 1/(|S|·|T|) that an adversary
// holding only the obfuscated query identifies the true (s, t) pair of one
// member by guessing uniformly (Definition 2 of the paper).
func (q ObfuscatedQuery) BreachProbability() float64 {
	return BreachProbability(len(q.Sources), len(q.Dests))
}

// ContainsPair reports whether (s, t) ∈ S×T.
func (q ObfuscatedQuery) ContainsPair(s, t roadnet.NodeID) bool {
	return containsNode(q.Sources, s) && containsNode(q.Dests, t)
}

// Covers reports whether the query hides the given request: its true source
// is in S and its true destination is in T.
func (q ObfuscatedQuery) Covers(r Request) bool {
	return q.ContainsPair(r.Source, r.Dest)
}

// NumCandidatePairs returns |S|·|T|, the number of path queries the server
// evaluates for this obfuscated query.
func (q ObfuscatedQuery) NumCandidatePairs() int { return len(q.Sources) * len(q.Dests) }

// String summarises the query without exposing member identities.
func (q ObfuscatedQuery) String() string {
	return fmt.Sprintf("Q(|S|=%d, |T|=%d, members=%d, breach=%.4f)", len(q.Sources), len(q.Dests), len(q.Members), q.BreachProbability())
}

// BreachProbability is Definition 2: the probability that a specific true
// path query is revealed from an obfuscated query with |S| = sizeS and
// |T| = sizeT, i.e. 1/(|S|·|T|). Sizes below 1 are clamped to 1.
func BreachProbability(sizeS, sizeT int) float64 {
	if sizeS < 1 {
		sizeS = 1
	}
	if sizeT < 1 {
		sizeT = 1
	}
	return 1 / (float64(sizeS) * float64(sizeT))
}

// Plan is the output of obfuscating one batch of requests: the obfuscated
// queries to send to the server plus bookkeeping that stays in the
// obfuscator.
type Plan struct {
	Queries []ObfuscatedQuery
	// Assignment maps each request (by batch index) to the query that covers
	// it.
	Assignment map[int]int
	// Requests is the batch, in the order received.
	Requests []Request
}

// TotalCandidatePairs returns the total number of (s, t) pairs the server
// will evaluate across all queries of the plan — the plan's processing-load
// proxy before the Lemma 1 model is applied.
func (p Plan) TotalCandidatePairs() int {
	total := 0
	for _, q := range p.Queries {
		total += q.NumCandidatePairs()
	}
	return total
}

// QueryFor returns the obfuscated query covering the i-th request of the
// batch.
func (p Plan) QueryFor(i int) (ObfuscatedQuery, bool) {
	qi, ok := p.Assignment[i]
	if !ok || qi < 0 || qi >= len(p.Queries) {
		return ObfuscatedQuery{}, false
	}
	return p.Queries[qi], true
}

// Validate checks the structural invariants the rest of the system relies
// on: every request is assigned to exactly one query, that query covers it,
// and the query's S/T sizes are at least the request's fS/fT.
func (p Plan) Validate() error {
	if len(p.Assignment) != len(p.Requests) {
		return fmt.Errorf("obfuscate: plan assigns %d of %d requests", len(p.Assignment), len(p.Requests))
	}
	for i, r := range p.Requests {
		q, ok := p.QueryFor(i)
		if !ok {
			return fmt.Errorf("obfuscate: request %d (%q) has no covering query", i, r.User)
		}
		if !q.Covers(r) {
			return fmt.Errorf("obfuscate: query %d does not cover request %d (%q): s=%d t=%d S=%v T=%v", q.ID, i, r.User, r.Source, r.Dest, q.Sources, q.Dests)
		}
		if len(q.Sources) < r.normalizedFS() {
			return fmt.Errorf("obfuscate: query %d has |S|=%d < fS=%d for request %q", q.ID, len(q.Sources), r.normalizedFS(), r.User)
		}
		if len(q.Dests) < r.normalizedFT() {
			return fmt.Errorf("obfuscate: query %d has |T|=%d < fT=%d for request %q", q.ID, len(q.Dests), r.normalizedFT(), r.User)
		}
	}
	return nil
}

func containsNode(ids []roadnet.NodeID, id roadnet.NodeID) bool {
	for _, v := range ids {
		if v == id {
			return true
		}
	}
	return false
}
