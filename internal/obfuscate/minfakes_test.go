package obfuscate

import (
	"testing"

	"opaque/internal/roadnet"
)

func TestMinFakesPerSideValidation(t *testing.T) {
	g := testGraph(t)
	if _, err := New(g, Config{Selector: testSelector(g, 1), MinFakesPerSide: -1}); err == nil {
		t.Error("negative MinFakesPerSide accepted")
	}
}

// TestMinFakesPerSideProtectsAgainstFullCollusion builds a shared query from
// enough true endpoints to satisfy fS/fT without any fakes, and checks that
// the fake floor still inserts decoys so the sets are strictly larger than
// the member endpoints — the mitigation for the E9 finding that a fake-free
// shared query is fully exposed to an (k−1)-coalition.
func TestMinFakesPerSideProtectsAgainstFullCollusion(t *testing.T) {
	g := testGraph(t)
	reqs := testRequests(g, 6, 4, 4, 55) // 6 true sources/dests >= fS=fT=4

	countTrue := func(q ObfuscatedQuery) (srcTrue, dstTrue int) {
		trueSrc := map[roadnet.NodeID]struct{}{}
		trueDst := map[roadnet.NodeID]struct{}{}
		for _, m := range q.Members {
			trueSrc[m.Source] = struct{}{}
			trueDst[m.Dest] = struct{}{}
		}
		return len(trueSrc), len(trueDst)
	}

	build := func(minFakes int) ObfuscatedQuery {
		o := MustNew(g, Config{
			Mode:            Shared,
			Cluster:         ClusterRandom,
			Selector:        testSelector(g, 56),
			MaxClusterSize:  len(reqs),
			MinFakesPerSide: minFakes,
			Seed:            57,
		})
		plan, err := o.Obfuscate(reqs)
		if err != nil {
			t.Fatal(err)
		}
		if len(plan.Queries) != 1 {
			t.Fatalf("expected one shared query, got %d", len(plan.Queries))
		}
		return plan.Queries[0]
	}

	bare := build(0)
	srcTrue, dstTrue := countTrue(bare)
	if len(bare.Sources) != srcTrue || len(bare.Dests) != dstTrue {
		t.Fatalf("without a floor the shared query should contain only true endpoints (got |S|=%d true=%d, |T|=%d true=%d)",
			len(bare.Sources), srcTrue, len(bare.Dests), dstTrue)
	}

	floored := build(3)
	srcTrue, dstTrue = countTrue(floored)
	if len(floored.Sources) < srcTrue+3 {
		t.Errorf("|S|=%d, want at least %d true + 3 fakes", len(floored.Sources), srcTrue)
	}
	if len(floored.Dests) < dstTrue+3 {
		t.Errorf("|T|=%d, want at least %d true + 3 fakes", len(floored.Dests), dstTrue)
	}
	if err := (Plan{Queries: []ObfuscatedQuery{floored}, Requests: reqs, Assignment: allToFirst(len(reqs))}).Validate(); err != nil {
		t.Errorf("floored plan invalid: %v", err)
	}
}

func allToFirst(n int) map[int]int {
	m := make(map[int]int, n)
	for i := 0; i < n; i++ {
		m[i] = 0
	}
	return m
}
