package obfuscate

import (
	"testing"
	"testing/quick"
)

// Property: for arbitrary protection settings, modes, clustering policies and
// batch sizes, the obfuscator always produces a plan that validates — every
// request is covered by exactly one query whose S/T sizes meet the request's
// fS/fT — and the nominal breach probability of every covering query is at
// most 1/(fS·fT).
func TestObfuscationPlanInvariantProperty(t *testing.T) {
	g := testGraph(t)
	modes := []Mode{Independent, Shared}
	policies := []ClusterPolicy{ClusterNone, ClusterRandom, ClusterSpatialGreedy}
	f := func(fsRaw, ftRaw, nRaw, modeRaw, policyRaw, floorRaw uint8, seed uint64) bool {
		fs := int(fsRaw%5) + 1
		ft := int(ftRaw%5) + 1
		n := int(nRaw%8) + 1
		mode := modes[int(modeRaw)%len(modes)]
		policy := policies[int(policyRaw)%len(policies)]
		floor := int(floorRaw % 3)
		o, err := New(g, Config{
			Mode:            mode,
			Cluster:         policy,
			Selector:        testSelector(g, seed),
			MaxClusterSize:  4,
			MaxClusterSpan:  0.4,
			MinFakesPerSide: floor,
			Seed:            seed,
		})
		if err != nil {
			return false
		}
		reqs := testRequests(g, n, fs, ft, seed+1)
		plan, err := o.Obfuscate(reqs)
		if err != nil {
			return false
		}
		if err := plan.Validate(); err != nil {
			return false
		}
		for i, r := range reqs {
			q, ok := plan.QueryFor(i)
			if !ok {
				return false
			}
			if q.BreachProbability() > BreachProbability(fs, ft)+1e-12 {
				return false
			}
			if floor > 0 {
				// The fake floor guarantees more candidates than true
				// endpoints on each side.
				trueSrc := map[int32]struct{}{}
				trueDst := map[int32]struct{}{}
				for _, m := range q.Members {
					trueSrc[int32(m.Source)] = struct{}{}
					trueDst[int32(m.Dest)] = struct{}{}
				}
				if len(q.Sources) < len(trueSrc)+floor || len(q.Dests) < len(trueDst)+floor {
					return false
				}
			}
			_ = r
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
