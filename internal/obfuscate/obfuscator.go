package obfuscate

import (
	"fmt"
	"math"
	"sort"

	"opaque/internal/roadnet"
)

// Mode selects the obfuscated-path-query variant (Section III-C).
type Mode string

const (
	// Independent obfuscates every request into its own Q(Si, Ti).
	Independent Mode = "independent"
	// Shared merges the requests of each cluster into a single Q(S, T) whose
	// source set contains all members' true sources and whose destination
	// set contains all members' true destinations.
	Shared Mode = "shared"
)

// ClusterPolicy selects how a batch of requests is partitioned into disjoint
// query sets before obfuscation (the "path query clustering" step of
// Section IV).
type ClusterPolicy string

const (
	// ClusterSpatialGreedy groups requests whose sources and destinations
	// are mutually close, keeping the span of each shared query — and hence
	// its Lemma 1 cost — small. This is the default.
	ClusterSpatialGreedy ClusterPolicy = "spatial"
	// ClusterRandom groups requests arbitrarily in arrival order; the
	// ablation policy showing why clustering matters.
	ClusterRandom ClusterPolicy = "random"
	// ClusterNone puts every request in its own cluster; combined with the
	// Shared mode it degenerates to Independent.
	ClusterNone ClusterPolicy = "none"
)

// Config parameterises an Obfuscator.
type Config struct {
	Mode     Mode
	Cluster  ClusterPolicy
	Selector EndpointSelector
	// MaxClusterSize caps how many requests may share one obfuscated query
	// (0 = unlimited). Larger clusters amortise fake endpoints across more
	// users but widen the search span.
	MaxClusterSize int
	// MaxClusterSpan caps the Euclidean diameter of a cluster's endpoints as
	// a fraction of the network extent (0 = unlimited); only the spatial
	// policy honours it.
	MaxClusterSpan float64
	// MinFakesPerSide forces at least this many fake endpoints into each of
	// S and T even when the cluster's true endpoints already satisfy every
	// member's fS/fT. A shared query built purely from true endpoints is
	// fully exposed once every other member colludes (experiment E9); a
	// floor of fakes bounds what even an (k−1)-coalition can learn, at the
	// cost of a slightly larger search radius.
	MinFakesPerSide int
	// Seed drives tie-breaking randomisation such as member order shuffling.
	Seed uint64
}

// DefaultConfig returns a shared-mode obfuscator with spatial clustering and
// a ring-band selector sized for a 100 km network extent.
func DefaultConfig() Config {
	return Config{
		Mode:           Shared,
		Cluster:        ClusterSpatialGreedy,
		Selector:       MustNewRingBandSelector(2000, 15000, 11),
		MaxClusterSize: 8,
		MaxClusterSpan: 0.25,
		Seed:           11,
	}
}

// Obfuscator is the path query obfuscator component installed in the trusted
// obfuscator middlebox. It is not safe for concurrent use; the obfuscator
// service serialises batches.
type Obfuscator struct {
	g   *roadnet.Graph
	cfg Config
	rng *rngLike
}

// New builds an obfuscator over the simple road map g (the obfuscator's own
// map, without live traffic — Section IV).
func New(g *roadnet.Graph, cfg Config) (*Obfuscator, error) {
	if g == nil || g.NumNodes() == 0 {
		return nil, fmt.Errorf("obfuscate: obfuscator needs a non-empty road map")
	}
	if cfg.Selector == nil {
		return nil, fmt.Errorf("obfuscate: obfuscator needs an endpoint selector")
	}
	switch cfg.Mode {
	case Independent, Shared, "":
	default:
		return nil, fmt.Errorf("obfuscate: unknown mode %q", cfg.Mode)
	}
	switch cfg.Cluster {
	case ClusterSpatialGreedy, ClusterRandom, ClusterNone, "":
	default:
		return nil, fmt.Errorf("obfuscate: unknown cluster policy %q", cfg.Cluster)
	}
	if cfg.MaxClusterSize < 0 {
		return nil, fmt.Errorf("obfuscate: MaxClusterSize must be >= 0, got %d", cfg.MaxClusterSize)
	}
	if cfg.MinFakesPerSide < 0 {
		return nil, fmt.Errorf("obfuscate: MinFakesPerSide must be >= 0, got %d", cfg.MinFakesPerSide)
	}
	return &Obfuscator{g: g, cfg: cfg, rng: newSelectorRNG(cfg.Seed)}, nil
}

// MustNew is New but panics on error.
func MustNew(g *roadnet.Graph, cfg Config) *Obfuscator {
	o, err := New(g, cfg)
	if err != nil {
		panic(err)
	}
	return o
}

// Config returns the obfuscator's configuration.
func (o *Obfuscator) Config() Config { return o.cfg }

// Graph returns the obfuscator's road map.
func (o *Obfuscator) Graph() *roadnet.Graph { return o.g }

// Obfuscate turns a batch of requests into a Plan containing the obfuscated
// path queries for the server. The returned plan always satisfies
// Plan.Validate.
func (o *Obfuscator) Obfuscate(batch []Request) (Plan, error) {
	if len(batch) == 0 {
		return Plan{}, fmt.Errorf("obfuscate: empty batch")
	}
	for i, r := range batch {
		if err := r.Validate(o.g); err != nil {
			return Plan{}, fmt.Errorf("obfuscate: batch item %d: %w", i, err)
		}
	}
	plan := Plan{
		Requests:   append([]Request(nil), batch...),
		Assignment: make(map[int]int, len(batch)),
	}
	mode := o.cfg.Mode
	if mode == "" {
		mode = Shared
	}
	switch mode {
	case Independent:
		for i, r := range batch {
			q, err := o.obfuscateGroup([]Request{r})
			if err != nil {
				return Plan{}, err
			}
			q.ID = len(plan.Queries)
			plan.Queries = append(plan.Queries, q)
			plan.Assignment[i] = q.ID
		}
	case Shared:
		clusters := o.clusterBatch(batch)
		for _, members := range clusters {
			group := make([]Request, len(members))
			for i, idx := range members {
				group[i] = batch[idx]
			}
			q, err := o.obfuscateGroup(group)
			if err != nil {
				return Plan{}, err
			}
			q.ID = len(plan.Queries)
			plan.Queries = append(plan.Queries, q)
			for _, idx := range members {
				plan.Assignment[idx] = q.ID
			}
		}
	}
	if err := plan.Validate(); err != nil {
		return Plan{}, fmt.Errorf("obfuscate: internal error: produced invalid plan: %w", err)
	}
	return plan, nil
}

// obfuscateGroup builds one obfuscated query covering all requests in group.
// The source set starts from the members' true sources and is padded with
// fakes up to the maximum fS demanded by any member; likewise for the
// destination set and fT.
func (o *Obfuscator) obfuscateGroup(group []Request) (ObfuscatedQuery, error) {
	if len(group) == 0 {
		return ObfuscatedQuery{}, fmt.Errorf("obfuscate: empty group")
	}
	srcSet := make(map[roadnet.NodeID]struct{})
	dstSet := make(map[roadnet.NodeID]struct{})
	needS, needT := 1, 1
	for _, r := range group {
		srcSet[r.Source] = struct{}{}
		dstSet[r.Dest] = struct{}{}
		if r.normalizedFS() > needS {
			needS = r.normalizedFS()
		}
		if r.normalizedFT() > needT {
			needT = r.normalizedFT()
		}
	}
	// Shared queries must satisfy |S| >= max fS and |T| >= max fT
	// (Section III-C); true endpoints of other members count toward the
	// quota, so fewer fakes are needed than in the independent case. A
	// configured fake floor raises the targets beyond the true endpoints so
	// collusion can never strip the sets bare.
	if o.cfg.MinFakesPerSide > 0 {
		if floor := len(srcSet) + o.cfg.MinFakesPerSide; floor > needS {
			needS = floor
		}
		if floor := len(dstSet) + o.cfg.MinFakesPerSide; floor > needT {
			needT = floor
		}
	}
	o.padWithFakes(srcSet, dstSet, group, needS, true)
	o.padWithFakes(dstSet, srcSet, group, needT, false)

	q := ObfuscatedQuery{
		Sources: setToShuffledSlice(srcSet, o.rng),
		Dests:   setToShuffledSlice(dstSet, o.rng),
		Members: append([]Request(nil), group...),
	}
	return q, nil
}

// padWithFakes grows target (the S or T set under construction) to at least
// need entries using the endpoint selector, anchoring fake selection at each
// member's true endpoint in turn so fakes are spread across the group's
// geography. other is the opposite set; its nodes are excluded so S and T
// stay disjoint (a node playing both roles would let the server rule pairs
// out).
func (o *Obfuscator) padWithFakes(target, other map[roadnet.NodeID]struct{}, group []Request, need int, isSource bool) {
	if len(target) >= need {
		return
	}
	exclude := make(map[roadnet.NodeID]struct{}, len(target)+len(other))
	for id := range target {
		exclude[id] = struct{}{}
	}
	for id := range other {
		exclude[id] = struct{}{}
	}
	anchor := 0
	for len(target) < need {
		r := group[anchor%len(group)]
		anchor++
		truth := r.Source
		if !isSource {
			truth = r.Dest
		}
		missing := need - len(target)
		fakes := o.cfg.Selector.SelectFakes(o.g, truth, missing, exclude)
		if len(fakes) == 0 {
			// The network cannot supply more distinct nodes; stop rather
			// than loop forever. Plan.Validate will report the shortfall
			// only if it violates a member's requirement, which can happen
			// solely on degenerate tiny graphs.
			return
		}
		for _, id := range fakes {
			if _, dup := target[id]; dup {
				continue
			}
			target[id] = struct{}{}
			exclude[id] = struct{}{}
			if len(target) >= need {
				break
			}
		}
	}
}

// clusterBatch partitions batch indices into clusters according to the
// configured policy.
func (o *Obfuscator) clusterBatch(batch []Request) [][]int {
	policy := o.cfg.Cluster
	if policy == "" {
		policy = ClusterSpatialGreedy
	}
	maxSize := o.cfg.MaxClusterSize
	if maxSize <= 0 {
		maxSize = len(batch)
	}
	switch policy {
	case ClusterNone:
		out := make([][]int, len(batch))
		for i := range batch {
			out[i] = []int{i}
		}
		return out
	case ClusterRandom:
		perm := make([]int, len(batch))
		for i := range perm {
			perm[i] = i
		}
		for i := len(perm) - 1; i > 0; i-- {
			j := o.rng.intn(i + 1)
			perm[i], perm[j] = perm[j], perm[i]
		}
		var out [][]int
		for start := 0; start < len(perm); start += maxSize {
			end := start + maxSize
			if end > len(perm) {
				end = len(perm)
			}
			out = append(out, append([]int(nil), perm[start:end]...))
		}
		return out
	default: // ClusterSpatialGreedy
		return o.spatialClusters(batch, maxSize)
	}
}

// spatialClusters greedily groups requests whose destinations are close. The
// cost of a shared query (Lemma 1) is Σ_{s∈S} max_{t∈T} ||s,t||²: each source
// grows its own spanning tree regardless of the other sources, so merging
// requests is cheap exactly when their destinations are mutually close (the
// max over T barely grows), while source proximity is irrelevant to the
// server cost. We therefore sort requests by destination coordinates and grow
// a cluster while its destination bounding box stays within MaxClusterSpan
// and the size cap allows.
func (o *Obfuscator) spatialClusters(batch []Request, maxSize int) [][]int {
	minX, minY, maxX, maxY := o.g.Bounds()
	extent := math.Max(maxX-minX, maxY-minY)
	if extent <= 0 {
		extent = 1
	}
	maxSpan := o.cfg.MaxClusterSpan * extent
	if o.cfg.MaxClusterSpan <= 0 {
		maxSpan = math.Inf(1)
	}
	type item struct {
		idx    int
		dx, dy float64
	}
	items := make([]item, len(batch))
	for i, r := range batch {
		d := o.g.Node(r.Dest)
		items[i] = item{idx: i, dx: d.X, dy: d.Y}
	}
	// Sort by a coarse grid cell (row-major) and then by x within the cell so
	// destinations that are close in the plane end up adjacent in the sweep.
	cell := maxSpan
	if math.IsInf(cell, 1) || cell <= 0 {
		cell = extent
	}
	sort.Slice(items, func(a, b int) bool {
		ra := int((items[a].dy - minY) / cell)
		rb := int((items[b].dy - minY) / cell)
		if ra != rb {
			return ra < rb
		}
		if items[a].dx != items[b].dx {
			return items[a].dx < items[b].dx
		}
		if items[a].dy != items[b].dy {
			return items[a].dy < items[b].dy
		}
		return items[a].idx < items[b].idx
	})
	var out [][]int
	var cur []int
	var curMinX, curMinY, curMaxX, curMaxY float64
	flush := func() {
		if len(cur) > 0 {
			out = append(out, append([]int(nil), cur...))
		}
		cur = nil
	}
	for _, it := range items {
		if len(cur) == 0 {
			cur = []int{it.idx}
			curMinX, curMaxX, curMinY, curMaxY = it.dx, it.dx, it.dy, it.dy
			continue
		}
		nMinX := math.Min(curMinX, it.dx)
		nMaxX := math.Max(curMaxX, it.dx)
		nMinY := math.Min(curMinY, it.dy)
		nMaxY := math.Max(curMaxY, it.dy)
		span := math.Max(nMaxX-nMinX, nMaxY-nMinY)
		if len(cur) >= maxSize || span > maxSpan {
			flush()
			cur = []int{it.idx}
			curMinX, curMaxX, curMinY, curMaxY = it.dx, it.dx, it.dy, it.dy
			continue
		}
		cur = append(cur, it.idx)
		curMinX, curMaxX, curMinY, curMaxY = nMinX, nMaxX, nMinY, nMaxY
	}
	flush()
	return out
}

// setToShuffledSlice converts a node set to a slice in randomised order so
// that the position of true endpoints within S or T carries no information.
func setToShuffledSlice(set map[roadnet.NodeID]struct{}, rng *rngLike) []roadnet.NodeID {
	out := make([]roadnet.NodeID, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	// Sort first for determinism across map iteration order, then shuffle
	// with the seeded generator.
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	for i := len(out) - 1; i > 0; i-- {
		j := rng.intn(i + 1)
		out[i], out[j] = out[j], out[i]
	}
	return out
}
