package obfuscate

import (
	"sort"
	"sync"

	"opaque/internal/roadnet"
)

// StickySelector wraps another EndpointSelector and memoises its choices per
// true endpoint: repeated obfuscations of the same endpoint reuse the same
// fakes instead of drawing fresh ones.
//
// Why this matters: Section II notes the server "can accumulate all the path
// queries received". If a user asks for the same trip repeatedly and the
// obfuscator draws fresh fakes every time, intersecting the observed S (and
// T) sets across requests isolates the endpoints that appear every time —
// the true ones (see privacy.AnalyzeLinkage and experiment E10). Reusing the
// same fakes makes every observation identical, so the intersection never
// shrinks and repeated queries leak nothing beyond the first.
//
// The memo is keyed by the true endpoint alone, not by user, because the
// obfuscator discards per-request state once a request is answered
// (Section IV); endpoint-keyed memoisation preserves that property while
// still defeating intersection attacks. Capacity is bounded; when full, the
// memo evicts the entry for the lowest-numbered node, which keeps eviction
// deterministic.
type StickySelector struct {
	inner EndpointSelector
	// MaxEntries bounds the memo (0 means DefaultStickyEntries).
	maxEntries int

	mu   sync.Mutex
	memo map[roadnet.NodeID][]roadnet.NodeID
}

// DefaultStickyEntries is the default memo capacity.
const DefaultStickyEntries = 65536

// NewStickySelector wraps inner with per-endpoint memoisation.
func NewStickySelector(inner EndpointSelector, maxEntries int) *StickySelector {
	if maxEntries <= 0 {
		maxEntries = DefaultStickyEntries
	}
	return &StickySelector{
		inner:      inner,
		maxEntries: maxEntries,
		memo:       make(map[roadnet.NodeID][]roadnet.NodeID),
	}
}

// Name implements EndpointSelector.
func (s *StickySelector) Name() string { return "sticky-" + s.inner.Name() }

// SelectFakes implements EndpointSelector. Cached fakes are reused when they
// satisfy the count and exclusion constraints; otherwise the inner selector
// tops them up and the cache is updated.
func (s *StickySelector) SelectFakes(g *roadnet.Graph, truth roadnet.NodeID, count int, exclude map[roadnet.NodeID]struct{}) []roadnet.NodeID {
	s.mu.Lock()
	cached := s.memo[truth]
	s.mu.Unlock()

	out := make([]roadnet.NodeID, 0, count)
	used := make(map[roadnet.NodeID]struct{}, count)
	for _, id := range cached {
		if len(out) >= count {
			break
		}
		if id == truth {
			continue
		}
		if _, skip := exclude[id]; skip {
			continue
		}
		if _, dup := used[id]; dup {
			continue
		}
		out = append(out, id)
		used[id] = struct{}{}
	}
	if len(out) < count {
		// Ask the inner selector for the remainder, excluding what we have.
		innerExclude := make(map[roadnet.NodeID]struct{}, len(exclude)+len(used))
		for id := range exclude {
			innerExclude[id] = struct{}{}
		}
		for id := range used {
			innerExclude[id] = struct{}{}
		}
		fresh := s.inner.SelectFakes(g, truth, count-len(out), innerExclude)
		out = append(out, fresh...)
	}

	// Update the memo with the union of cached and newly drawn fakes so that
	// future, larger requests still start from the same pool.
	s.mu.Lock()
	defer s.mu.Unlock()
	merged := mergeNodeSets(cached, out)
	if _, exists := s.memo[truth]; !exists && len(s.memo) >= s.maxEntries {
		s.evictLocked()
	}
	s.memo[truth] = merged
	return out
}

// Entries returns the number of memoised endpoints (for tests and metrics).
func (s *StickySelector) Entries() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.memo)
}

// Reset clears the memo.
func (s *StickySelector) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.memo = make(map[roadnet.NodeID][]roadnet.NodeID)
}

// evictLocked removes the entry with the smallest node ID. Callers hold mu.
func (s *StickySelector) evictLocked() {
	first := roadnet.InvalidNode
	for id := range s.memo {
		if first == roadnet.InvalidNode || id < first {
			first = id
		}
	}
	if first != roadnet.InvalidNode {
		delete(s.memo, first)
	}
}

// mergeNodeSets unions two id slices, deduplicated, in ascending order.
func mergeNodeSets(a, b []roadnet.NodeID) []roadnet.NodeID {
	set := make(map[roadnet.NodeID]struct{}, len(a)+len(b))
	for _, id := range a {
		set[id] = struct{}{}
	}
	for _, id := range b {
		set[id] = struct{}{}
	}
	out := make([]roadnet.NodeID, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
