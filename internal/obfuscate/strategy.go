package obfuscate

import (
	"fmt"
	"math"
	"sort"

	"opaque/internal/roadnet"
)

// EndpointSelector picks fake endpoint nodes to mix with a true endpoint. The
// selection requires knowledge of the underlying road network; the obfuscator
// keeps a simple map for exactly this purpose (Section IV of the paper).
//
// Implementations must not return the true node or nodes already in exclude,
// and should return fewer than count nodes only when the network genuinely
// cannot supply enough distinct candidates.
type EndpointSelector interface {
	// SelectFakes returns up to count fake endpoints for the given true
	// endpoint.
	SelectFakes(g *roadnet.Graph, truth roadnet.NodeID, count int, exclude map[roadnet.NodeID]struct{}) []roadnet.NodeID
	// Name identifies the strategy in reports.
	Name() string
}

// rngLike is the minimal deterministic random source the selectors need.
// A tiny local SplitMix64 keeps the package free of a dependency on
// internal/gen while remaining reproducible.
type rngLike struct{ state uint64 }

func newSelectorRNG(seed uint64) *rngLike {
	if seed == 0 {
		seed = 0x853c49e6748fea9b
	}
	return &rngLike{state: seed}
}

func (r *rngLike) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *rngLike) intn(n int) int {
	if n <= 0 {
		panic("obfuscate: intn with non-positive n")
	}
	return int(r.next() % uint64(n))
}

func (r *rngLike) float64() float64 { return float64(r.next()>>11) / (1 << 53) }

// UniformSelector picks fake endpoints uniformly at random from the whole
// network. Maximum endpoint diversity, but fake endpoints may be very far
// from the true one, which inflates the Lemma 1 radius max_t ||s,t|| and thus
// the processing cost (experiment E8 quantifies this).
type UniformSelector struct {
	rng *rngLike
}

// NewUniformSelector builds a uniform selector with the given seed.
func NewUniformSelector(seed uint64) *UniformSelector {
	return &UniformSelector{rng: newSelectorRNG(seed)}
}

// Name implements EndpointSelector.
func (u *UniformSelector) Name() string { return "uniform" }

// SelectFakes implements EndpointSelector.
func (u *UniformSelector) SelectFakes(g *roadnet.Graph, truth roadnet.NodeID, count int, exclude map[roadnet.NodeID]struct{}) []roadnet.NodeID {
	n := g.NumNodes()
	out := make([]roadnet.NodeID, 0, count)
	seen := make(map[roadnet.NodeID]struct{}, count+len(exclude)+1)
	seen[truth] = struct{}{}
	for id := range exclude {
		seen[id] = struct{}{}
	}
	// Rejection sampling with a cap proportional to the need; on tiny graphs
	// fall back to a scan.
	maxAttempts := 50 * (count + 1)
	for attempts := 0; len(out) < count && attempts < maxAttempts; attempts++ {
		id := roadnet.NodeID(u.rng.intn(n))
		if _, dup := seen[id]; dup {
			continue
		}
		seen[id] = struct{}{}
		out = append(out, id)
	}
	if len(out) < count {
		for id := 0; id < n && len(out) < count; id++ {
			nid := roadnet.NodeID(id)
			if _, dup := seen[nid]; dup {
				continue
			}
			seen[nid] = struct{}{}
			out = append(out, nid)
		}
	}
	return out
}

// RingBandSelector picks fake endpoints from an annulus around the true
// endpoint: at least MinRadius away (so fakes are not trivially equivalent to
// the truth) and at most MaxRadius away (so the obfuscated query's search
// radius — and hence the Lemma 1 cost — stays bounded). This is the
// cost-aware strategy OPAQUE's design motivates.
type RingBandSelector struct {
	// MinRadius and MaxRadius bound the Euclidean distance between the true
	// endpoint and its fakes, in the network's coordinate units.
	MinRadius float64
	MaxRadius float64
	rng       *rngLike
}

// NewRingBandSelector builds a ring-band selector. MaxRadius must exceed
// MinRadius ≥ 0.
func NewRingBandSelector(minRadius, maxRadius float64, seed uint64) (*RingBandSelector, error) {
	if minRadius < 0 || maxRadius <= minRadius {
		return nil, fmt.Errorf("obfuscate: ring band needs 0 <= min < max, got [%v, %v]", minRadius, maxRadius)
	}
	return &RingBandSelector{MinRadius: minRadius, MaxRadius: maxRadius, rng: newSelectorRNG(seed)}, nil
}

// MustNewRingBandSelector is NewRingBandSelector but panics on error.
func MustNewRingBandSelector(minRadius, maxRadius float64, seed uint64) *RingBandSelector {
	s, err := NewRingBandSelector(minRadius, maxRadius, seed)
	if err != nil {
		panic(err)
	}
	return s
}

// Name implements EndpointSelector.
func (s *RingBandSelector) Name() string { return "ringband" }

// SelectFakes implements EndpointSelector.
func (s *RingBandSelector) SelectFakes(g *roadnet.Graph, truth roadnet.NodeID, count int, exclude map[roadnet.NodeID]struct{}) []roadnet.NodeID {
	t := g.Node(truth)
	candidates := g.NodesInBand(t.X, t.Y, s.MinRadius, s.MaxRadius)
	// Widen the band progressively if the annulus is too sparse.
	widen := s.MaxRadius
	for len(candidates) < count+len(exclude)+1 && widen < 64*s.MaxRadius {
		widen *= 2
		candidates = g.NodesInBand(t.X, t.Y, s.MinRadius, widen)
	}
	return sampleExcluding(candidates, truth, count, exclude, s.rng)
}

// DensityAwareSelector picks fake endpoints with probability proportional to
// their association weight (node popularity) within a radius around the true
// endpoint. Popular nodes are plausible destinations — an adversary who
// discounts implausible endpoints gains less, at a modest cost increase
// relative to the plain ring band (experiment E8).
type DensityAwareSelector struct {
	Radius float64
	rng    *rngLike
}

// NewDensityAwareSelector builds a density-aware selector restricted to the
// given radius around the true endpoint.
func NewDensityAwareSelector(radius float64, seed uint64) (*DensityAwareSelector, error) {
	if radius <= 0 {
		return nil, fmt.Errorf("obfuscate: density-aware selector needs positive radius, got %v", radius)
	}
	return &DensityAwareSelector{Radius: radius, rng: newSelectorRNG(seed)}, nil
}

// MustNewDensityAwareSelector is NewDensityAwareSelector but panics on error.
func MustNewDensityAwareSelector(radius float64, seed uint64) *DensityAwareSelector {
	s, err := NewDensityAwareSelector(radius, seed)
	if err != nil {
		panic(err)
	}
	return s
}

// Name implements EndpointSelector.
func (s *DensityAwareSelector) Name() string { return "density" }

// SelectFakes implements EndpointSelector.
func (s *DensityAwareSelector) SelectFakes(g *roadnet.Graph, truth roadnet.NodeID, count int, exclude map[roadnet.NodeID]struct{}) []roadnet.NodeID {
	t := g.Node(truth)
	radius := s.Radius
	candidates := g.NodesWithin(t.X, t.Y, radius)
	for len(candidates) < count+len(exclude)+1 && radius < 64*s.Radius {
		radius *= 2
		candidates = g.NodesWithin(t.X, t.Y, radius)
	}
	// Weighted sampling without replacement by exponential sort keys
	// (Efraimidis–Spirakis): key = u^(1/w); take the largest keys.
	type keyed struct {
		id  roadnet.NodeID
		key float64
	}
	var pool []keyed
	for _, id := range candidates {
		if id == truth {
			continue
		}
		if _, skip := exclude[id]; skip {
			continue
		}
		w := g.Node(id).Weight
		if w <= 0 {
			w = 1e-6
		}
		u := s.rng.float64()
		if u == 0 {
			u = 1e-12
		}
		pool = append(pool, keyed{id: id, key: math.Pow(u, 1/w)})
	}
	sort.Slice(pool, func(i, j int) bool {
		if pool[i].key != pool[j].key {
			return pool[i].key > pool[j].key
		}
		return pool[i].id < pool[j].id
	})
	if count > len(pool) {
		count = len(pool)
	}
	out := make([]roadnet.NodeID, count)
	for i := 0; i < count; i++ {
		out[i] = pool[i].id
	}
	return out
}

// sampleExcluding uniformly samples up to count node IDs from candidates,
// skipping the truth and excluded nodes.
func sampleExcluding(candidates []roadnet.NodeID, truth roadnet.NodeID, count int, exclude map[roadnet.NodeID]struct{}, rng *rngLike) []roadnet.NodeID {
	pool := make([]roadnet.NodeID, 0, len(candidates))
	for _, id := range candidates {
		if id == truth {
			continue
		}
		if _, skip := exclude[id]; skip {
			continue
		}
		pool = append(pool, id)
	}
	if count >= len(pool) {
		return pool
	}
	// Partial Fisher–Yates.
	for i := 0; i < count; i++ {
		j := i + rng.intn(len(pool)-i)
		pool[i], pool[j] = pool[j], pool[i]
	}
	return pool[:count]
}
