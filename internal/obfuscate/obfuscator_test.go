package obfuscate

import (
	"testing"

	"opaque/internal/roadnet"
)

func TestNewValidation(t *testing.T) {
	g := testGraph(t)
	if _, err := New(nil, Config{Selector: testSelector(g, 1)}); err == nil {
		t.Error("nil graph accepted")
	}
	if _, err := New(g, Config{}); err == nil {
		t.Error("missing selector accepted")
	}
	if _, err := New(g, Config{Selector: testSelector(g, 1), Mode: "bogus"}); err == nil {
		t.Error("unknown mode accepted")
	}
	if _, err := New(g, Config{Selector: testSelector(g, 1), Cluster: "bogus"}); err == nil {
		t.Error("unknown cluster policy accepted")
	}
	if _, err := New(g, Config{Selector: testSelector(g, 1), MaxClusterSize: -1}); err == nil {
		t.Error("negative cluster size accepted")
	}
}

func TestObfuscateEmptyAndInvalidBatch(t *testing.T) {
	g := testGraph(t)
	o := MustNew(g, Config{Mode: Independent, Selector: testSelector(g, 1)})
	if _, err := o.Obfuscate(nil); err == nil {
		t.Error("empty batch accepted")
	}
	if _, err := o.Obfuscate([]Request{{User: "", Source: 0, Dest: 1}}); err == nil {
		t.Error("invalid request accepted")
	}
}

func TestIndependentObfuscation(t *testing.T) {
	g := testGraph(t)
	o := MustNew(g, Config{Mode: Independent, Cluster: ClusterNone, Selector: testSelector(g, 2), Seed: 3})
	reqs := testRequests(g, 10, 3, 5, 7)
	plan, err := o.Obfuscate(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Validate(); err != nil {
		t.Fatalf("plan invalid: %v", err)
	}
	if len(plan.Queries) != len(reqs) {
		t.Fatalf("independent mode produced %d queries for %d requests", len(plan.Queries), len(reqs))
	}
	for i, r := range reqs {
		q, ok := plan.QueryFor(i)
		if !ok {
			t.Fatalf("request %d unassigned", i)
		}
		if len(q.Sources) != 3 || len(q.Dests) != 5 {
			t.Errorf("request %d: |S|=%d |T|=%d, want 3/5", i, len(q.Sources), len(q.Dests))
		}
		if !q.Covers(r) {
			t.Errorf("request %d not covered by its query", i)
		}
		if len(q.Members) != 1 {
			t.Errorf("independent query has %d members, want 1", len(q.Members))
		}
		// S and T must be disjoint so the server cannot rule out pairs.
		for _, s := range q.Sources {
			for _, d := range q.Dests {
				if s == d {
					t.Errorf("request %d: node %d appears in both S and T", i, s)
				}
			}
		}
	}
}

func TestSharedObfuscation(t *testing.T) {
	g := testGraph(t)
	o := MustNew(g, Config{
		Mode:           Shared,
		Cluster:        ClusterSpatialGreedy,
		Selector:       testSelector(g, 4),
		MaxClusterSize: 6,
		MaxClusterSpan: 0.5,
		Seed:           5,
	})
	reqs := testRequests(g, 24, 4, 4, 11)
	plan, err := o.Obfuscate(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Validate(); err != nil {
		t.Fatalf("plan invalid: %v", err)
	}
	if len(plan.Queries) >= len(reqs) {
		t.Errorf("shared mode produced %d queries for %d requests — expected fewer", len(plan.Queries), len(reqs))
	}
	totalMembers := 0
	for _, q := range plan.Queries {
		totalMembers += len(q.Members)
		if len(q.Members) > 6 {
			t.Errorf("cluster size %d exceeds cap 6", len(q.Members))
		}
		if len(q.Sources) < 4 || len(q.Dests) < 4 {
			t.Errorf("shared query smaller than required protection: |S|=%d |T|=%d", len(q.Sources), len(q.Dests))
		}
	}
	if totalMembers != len(reqs) {
		t.Errorf("members across queries = %d, want %d", totalMembers, len(reqs))
	}
	// Shared plans should need fewer total endpoints than independent ones.
	oInd := MustNew(g, Config{Mode: Independent, Cluster: ClusterNone, Selector: testSelector(g, 4), Seed: 5})
	indPlan, err := oInd.Obfuscate(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if plan.TotalCandidatePairs() >= indPlan.TotalCandidatePairs() {
		t.Errorf("shared candidate pairs %d not below independent %d", plan.TotalCandidatePairs(), indPlan.TotalCandidatePairs())
	}
}

func TestSharedHonoursMaxProtectionOfMembers(t *testing.T) {
	g := testGraph(t)
	o := MustNew(g, Config{Mode: Shared, Cluster: ClusterRandom, Selector: testSelector(g, 6), MaxClusterSize: 4, Seed: 7})
	reqs := testRequests(g, 4, 2, 2, 13)
	// One member demands much stronger protection.
	reqs[2].FS, reqs[2].FT = 9, 7
	plan, err := o.Obfuscate(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Validate(); err != nil {
		t.Fatalf("plan invalid: %v", err)
	}
	q, _ := plan.QueryFor(2)
	if len(q.Sources) < 9 || len(q.Dests) < 7 {
		t.Errorf("query covering the demanding member has |S|=%d |T|=%d, want >= 9/7", len(q.Sources), len(q.Dests))
	}
}

func TestClusterPolicies(t *testing.T) {
	g := testGraph(t)
	reqs := testRequests(g, 12, 2, 2, 17)
	for _, policy := range []ClusterPolicy{ClusterNone, ClusterRandom, ClusterSpatialGreedy} {
		o := MustNew(g, Config{Mode: Shared, Cluster: policy, Selector: testSelector(g, 8), MaxClusterSize: 5, Seed: 9})
		plan, err := o.Obfuscate(reqs)
		if err != nil {
			t.Fatalf("%s: %v", policy, err)
		}
		if err := plan.Validate(); err != nil {
			t.Fatalf("%s: invalid plan: %v", policy, err)
		}
		if policy == ClusterNone && len(plan.Queries) != len(reqs) {
			t.Errorf("ClusterNone produced %d queries, want %d", len(plan.Queries), len(reqs))
		}
		for _, q := range plan.Queries {
			if len(q.Members) > 5 && policy != ClusterNone {
				t.Errorf("%s: cluster of %d members exceeds cap 5", policy, len(q.Members))
			}
		}
	}
}

func TestObfuscateDeterministicForSeed(t *testing.T) {
	g := testGraph(t)
	reqs := testRequests(g, 8, 3, 3, 19)
	mk := func() Plan {
		o := MustNew(g, Config{Mode: Shared, Cluster: ClusterSpatialGreedy, Selector: testSelector(g, 21), MaxClusterSize: 4, Seed: 22})
		p, err := o.Obfuscate(reqs)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	a, b := mk(), mk()
	if len(a.Queries) != len(b.Queries) {
		t.Fatalf("query counts differ: %d vs %d", len(a.Queries), len(b.Queries))
	}
	for i := range a.Queries {
		if len(a.Queries[i].Sources) != len(b.Queries[i].Sources) || len(a.Queries[i].Dests) != len(b.Queries[i].Dests) {
			t.Errorf("query %d sizes differ between identical runs", i)
		}
		for j := range a.Queries[i].Sources {
			if a.Queries[i].Sources[j] != b.Queries[i].Sources[j] {
				t.Fatalf("query %d source order differs", i)
			}
		}
	}
}

func TestPlanHelpers(t *testing.T) {
	g := testGraph(t)
	o := MustNew(g, Config{Mode: Independent, Cluster: ClusterNone, Selector: testSelector(g, 23), Seed: 24})
	reqs := testRequests(g, 3, 2, 2, 25)
	plan, err := o.Obfuscate(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := plan.QueryFor(99); ok {
		t.Error("QueryFor out-of-range index returned ok")
	}
	if plan.TotalCandidatePairs() < 3*4 {
		t.Errorf("TotalCandidatePairs = %d, want >= 12", plan.TotalCandidatePairs())
	}
	// A corrupted plan must fail validation.
	bad := plan
	bad.Assignment = map[int]int{0: 0, 1: 0, 2: 0}
	if err := bad.Validate(); err == nil {
		t.Error("plan whose queries do not cover their requests passed validation")
	}
}

func TestFakesExcludeOtherMembersEndpoints(t *testing.T) {
	// The fake padding must keep S and T disjoint even when several members
	// are merged.
	g := testGraph(t)
	o := MustNew(g, Config{Mode: Shared, Cluster: ClusterRandom, Selector: testSelector(g, 31), MaxClusterSize: 8, Seed: 32})
	reqs := testRequests(g, 8, 6, 6, 33)
	plan, err := o.Obfuscate(reqs)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range plan.Queries {
		inS := map[roadnet.NodeID]struct{}{}
		for _, s := range q.Sources {
			inS[s] = struct{}{}
		}
		for _, d := range q.Dests {
			if _, both := inS[d]; both {
				// Only allowed when a member's true source equals another
				// member's true destination.
				legitimate := false
				for _, m := range q.Members {
					if m.Source == d || m.Dest == d {
						legitimate = true
					}
				}
				if !legitimate {
					t.Errorf("fake node %d appears in both S and T", d)
				}
			}
		}
	}
}

// TestSharedDegeneratesToIndependentWithClusterNone checks that Shared +
// ClusterNone behaves exactly like Independent in structure.
func TestSharedDegeneratesToIndependentWithClusterNone(t *testing.T) {
	g := testGraph(t)
	reqs := testRequests(g, 5, 2, 3, 35)
	shared := MustNew(g, Config{Mode: Shared, Cluster: ClusterNone, Selector: testSelector(g, 36), Seed: 37})
	plan, err := shared.Obfuscate(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Queries) != len(reqs) {
		t.Errorf("Shared+ClusterNone produced %d queries, want %d", len(plan.Queries), len(reqs))
	}
	for _, q := range plan.Queries {
		if len(q.Members) != 1 {
			t.Errorf("query has %d members, want 1", len(q.Members))
		}
	}
}

func TestTinyGraphObfuscation(t *testing.T) {
	// A 4-node graph cannot supply many distinct fakes; the obfuscator must
	// still produce a covering (if weaker) plan rather than loop forever.
	g := roadnet.NewGraph(4, 6)
	for i := 0; i < 4; i++ {
		g.AddNode(float64(i), 0)
	}
	for i := 0; i < 3; i++ {
		g.MustAddBidirectionalEdge(roadnet.NodeID(i), roadnet.NodeID(i+1), 1)
	}
	g.Freeze()
	o := MustNew(g, Config{Mode: Independent, Cluster: ClusterNone, Selector: NewUniformSelector(1), Seed: 2})
	plan, err := o.Obfuscate([]Request{{User: "a", Source: 0, Dest: 3, FS: 2, FT: 2}})
	if err != nil {
		t.Fatal(err)
	}
	q := plan.Queries[0]
	if !q.Covers(plan.Requests[0]) {
		t.Error("query does not cover the request")
	}
}
