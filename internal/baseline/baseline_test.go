package baseline

import (
	"math"
	"testing"

	"opaque/internal/gen"
	"opaque/internal/obfsvc"
	"opaque/internal/obfuscate"
	"opaque/internal/roadnet"
	"opaque/internal/search"
	"opaque/internal/server"
	"opaque/internal/storage"
)

type fixture struct {
	g    *roadnet.Graph
	srv  *server.Server
	exec QueryExecutor
	reqs []obfuscate.Request
	cost []float64
}

func newFixture(t testing.TB) *fixture {
	t.Helper()
	cfg := gen.DefaultNetworkConfig()
	cfg.Kind = gen.TigerLike
	cfg.Nodes = 900
	cfg.Seed = 111
	g := gen.MustGenerate(cfg)
	srv := server.MustNew(g, server.DefaultConfig())
	wl := gen.MustGenerateWorkload(g, gen.WorkloadConfig{Kind: gen.Uniform, Queries: 10, Seed: 112})
	acc := storage.NewMemoryGraph(g)
	fx := &fixture{g: g, srv: srv, exec: obfsvc.ExecutorFunc(srv.Evaluate)}
	for i, p := range wl {
		fx.reqs = append(fx.reqs, obfuscate.Request{User: obfuscate.UserID(string(rune('a' + i))), Source: p.Source, Dest: p.Dest, FS: 2, FT: 2})
		d, err := search.DijkstraDistance(acc, p.Source, p.Dest)
		if err != nil {
			t.Fatal(err)
		}
		fx.cost = append(fx.cost, d)
	}
	return fx
}

func TestNoPrivacy(t *testing.T) {
	fx := newFixture(t)
	m := NoPrivacy{Exec: fx.exec}
	for i, req := range fx.reqs {
		out, err := m.Run(req, fx.cost[i])
		if err != nil {
			t.Fatal(err)
		}
		if !out.ExactPath {
			t.Errorf("request %d: no-privacy mechanism must return the exact path", i)
		}
		if math.Abs(out.ResultCost-fx.cost[i]) > 1e-6 {
			t.Errorf("request %d: result cost %v, true cost %v", i, out.ResultCost, fx.cost[i])
		}
		if out.BreachProbability != 1 {
			t.Errorf("request %d: breach = %v, want 1", i, out.BreachProbability)
		}
		if out.CandidatePairs != 1 {
			t.Errorf("request %d: candidate pairs = %d, want 1", i, out.CandidatePairs)
		}
	}
}

func TestLandmark(t *testing.T) {
	fx := newFixture(t)
	minX, minY, maxX, maxY := fx.g.Bounds()
	extent := math.Max(maxX-minX, maxY-minY)
	m := Landmark{Exec: fx.exec, Graph: fx.g, MinShift: 0.05 * extent, MaxShift: 0.15 * extent, Seed: 7}
	for i, req := range fx.reqs {
		out, err := m.Run(req, fx.cost[i])
		if err != nil {
			t.Fatal(err)
		}
		if out.ExactPath {
			t.Errorf("request %d: landmark mechanism should never return the exact requested path", i)
		}
		if out.BreachProbability != 0 {
			t.Errorf("request %d: landmark breach = %v, want 0 (true pair never sent)", i, out.BreachProbability)
		}
	}
	if _, err := (Landmark{Exec: fx.exec}).Run(fx.reqs[0], fx.cost[0]); err == nil {
		t.Error("landmark without a graph accepted")
	}
}

func TestCloaking(t *testing.T) {
	fx := newFixture(t)
	minX, minY, maxX, maxY := fx.g.Bounds()
	extent := math.Max(maxX-minX, maxY-minY)
	m := Cloaking{Exec: fx.exec, Graph: fx.g, CloakRadius: 0.08 * extent, Seed: 9}
	exact := 0
	for i, req := range fx.reqs {
		out, err := m.Run(req, fx.cost[i])
		if err != nil {
			t.Fatal(err)
		}
		if out.BreachProbability <= 0 || out.BreachProbability > 1 {
			t.Errorf("request %d: breach %v out of range", i, out.BreachProbability)
		}
		if out.ExactPath {
			exact++
		}
	}
	// With a generous cloaking radius the server's arbitrary pick almost
	// never coincides with the true endpoints.
	if exact == len(fx.reqs) {
		t.Error("cloaking returned the exact path for every request, which defeats the point of the comparison")
	}
	if _, err := (Cloaking{Exec: fx.exec}).Run(fx.reqs[0], fx.cost[0]); err == nil {
		t.Error("cloaking without a graph accepted")
	}
}

func TestNaiveDecoys(t *testing.T) {
	fx := newFixture(t)
	m := NaiveDecoys{Exec: fx.exec, Graph: fx.g, Decoys: 3, Seed: 10}
	for i, req := range fx.reqs {
		out, err := m.Run(req, fx.cost[i])
		if err != nil {
			t.Fatal(err)
		}
		if !out.ExactPath {
			t.Errorf("request %d: decoy mechanism must still return the exact path", i)
		}
		if out.CandidatePairs != 4 {
			t.Errorf("request %d: candidate pairs = %d, want 4 (1 true + 3 decoys)", i, out.CandidatePairs)
		}
		if math.Abs(out.BreachProbability-0.25) > 1e-9 {
			t.Errorf("request %d: breach = %v, want 0.25", i, out.BreachProbability)
		}
	}
	if _, err := (NaiveDecoys{Exec: fx.exec, Decoys: 2}).Run(fx.reqs[0], fx.cost[0]); err == nil {
		t.Error("decoys without a graph accepted")
	}
}

func TestNaiveDecoysCostExceedsNoPrivacy(t *testing.T) {
	fx := newFixture(t)
	nop := NoPrivacy{Exec: fx.exec}
	dec := NaiveDecoys{Exec: fx.exec, Graph: fx.g, Decoys: 3, Seed: 11}
	var nopSettled, decSettled int
	for i, req := range fx.reqs {
		a, err := nop.Run(req, fx.cost[i])
		if err != nil {
			t.Fatal(err)
		}
		b, err := dec.Run(req, fx.cost[i])
		if err != nil {
			t.Fatal(err)
		}
		nopSettled += a.ServerSettledNodes
		decSettled += b.ServerSettledNodes
	}
	if decSettled <= nopSettled {
		t.Errorf("decoy mechanism settled %d nodes, no-privacy %d — decoys must cost more", decSettled, nopSettled)
	}
}

func TestMechanismNames(t *testing.T) {
	names := map[string]Mechanism{
		"none":         NoPrivacy{},
		"landmark":     Landmark{},
		"cloaking":     Cloaking{},
		"naive-decoys": NaiveDecoys{},
	}
	for want, m := range names {
		if got := m.Name(); got != want {
			t.Errorf("Name() = %q, want %q", got, want)
		}
	}
}
