// Package baseline implements the existing location-privacy techniques the
// OPAQUE paper compares against in Section II / Figure 2, adapted to path
// queries:
//
//   - NoPrivacy     — submit the true Q(s, t) directly (Figure 2a).
//   - Landmark      — replace s and t with nearby landmarks and query the
//     substituted pair (Figure 2b); the result path does not connect the
//     true endpoints.
//   - Cloaking      — suppress address detail by snapping each endpoint to an
//     arbitrary node inside a cloaking region; the server picks a point for
//     the imprecise address (Figure 2c).
//   - NaiveDecoys   — mix the true query with k fully independent fake path
//     queries (Figure 2d, Duckham & Kulik style obfuscation); exact results,
//     but the server evaluates k+1 unrelated point-to-point queries.
//
// Each mechanism reports the same Outcome structure so experiment E1 can
// tabulate privacy (breach probability), result relevance (is the exact
// requested path returned?) and processing cost side by side with OPAQUE.
package baseline

import (
	"fmt"
	"math"

	"opaque/internal/obfuscate"
	"opaque/internal/protocol"
	"opaque/internal/roadnet"
	"opaque/internal/search"
)

// QueryExecutor matches obfsvc.QueryExecutor; redeclared here to keep the
// baselines importable without the obfuscator service.
type QueryExecutor interface {
	Execute(q protocol.ServerQuery) (protocol.ServerReply, error)
}

// Outcome describes what one mechanism achieved for one request.
type Outcome struct {
	Mechanism string
	// ExactPath reports whether the user obtained the exact shortest path
	// for its true (s, t) pair.
	ExactPath bool
	// ResultCost is the cost of the path actually returned to the user
	// (whatever pair it connects); +Inf when nothing was returned.
	ResultCost float64
	// TrueCost is the cost of the true shortest path P(s, t), for relevance
	// comparisons.
	TrueCost float64
	// BreachProbability is the probability the server identifies the true
	// (s, t) pair from what it received (Definition 2 semantics: 1 when the
	// pair is sent in the clear, 1/(k+1) style for decoys, 0 when the true
	// pair never reaches the server).
	BreachProbability float64
	// ServerSettledNodes and ServerPageFaults measure the processing cost
	// the mechanism imposed on the server for this request.
	ServerSettledNodes int
	ServerPageFaults   int64
	// CandidatePairs is how many (s, t) pairs the server evaluated.
	CandidatePairs int
}

// Mechanism evaluates one request under a privacy technique.
type Mechanism interface {
	Name() string
	// Run processes the user's true query through the mechanism and reports
	// the outcome. trueCost is supplied by the harness (computed once) so
	// mechanisms do not pay for it.
	Run(req obfuscate.Request, trueCost float64) (Outcome, error)
}

// execPair asks the server for a single (s, t) pair and returns its candidate
// path plus the reply's cost counters.
func execPair(exec QueryExecutor, s, t roadnet.NodeID) (search.Path, protocol.ServerReply, error) {
	reply, err := exec.Execute(protocol.ServerQuery{Sources: []roadnet.NodeID{s}, Dests: []roadnet.NodeID{t}})
	if err != nil {
		return search.Path{}, protocol.ServerReply{}, err
	}
	for _, c := range reply.Paths {
		if c.Source == s && c.Dest == t {
			return protocol.PathFromCandidate(c), reply, nil
		}
	}
	return search.Path{}, reply, fmt.Errorf("baseline: server reply missing pair (%d,%d)", s, t)
}

// NoPrivacy submits the true query in the clear.
type NoPrivacy struct {
	Exec QueryExecutor
}

// Name implements Mechanism.
func (NoPrivacy) Name() string { return "none" }

// Run implements Mechanism.
func (m NoPrivacy) Run(req obfuscate.Request, trueCost float64) (Outcome, error) {
	p, reply, err := execPair(m.Exec, req.Source, req.Dest)
	if err != nil {
		return Outcome{}, err
	}
	out := Outcome{
		Mechanism:          m.Name(),
		ExactPath:          !p.Empty(),
		ResultCost:         pathCostOrInf(p),
		TrueCost:           trueCost,
		BreachProbability:  1,
		ServerSettledNodes: reply.SettledNodes,
		ServerPageFaults:   reply.PageFaults,
		CandidatePairs:     1,
	}
	return out, nil
}

// Landmark replaces both endpoints with landmarks at least MinShift away
// (Figure 2b): the server never sees the true pair, but the returned path is
// irrelevant to the user's trip.
type Landmark struct {
	Exec QueryExecutor
	// Graph is the client-side map used to pick landmarks.
	Graph *roadnet.Graph
	// MinShift and MaxShift bound how far (Euclidean) the landmark may be
	// from the true endpoint.
	MinShift float64
	MaxShift float64
	// Seed drives landmark selection.
	Seed uint64
}

// Name implements Mechanism.
func (Landmark) Name() string { return "landmark" }

// Run implements Mechanism.
func (m Landmark) Run(req obfuscate.Request, trueCost float64) (Outcome, error) {
	if m.Graph == nil {
		return Outcome{}, fmt.Errorf("baseline: landmark mechanism needs a graph")
	}
	sel := obfuscate.MustNewRingBandSelector(m.MinShift, m.MaxShift, m.Seed)
	exclude := map[roadnet.NodeID]struct{}{req.Dest: {}}
	sFakes := sel.SelectFakes(m.Graph, req.Source, 1, exclude)
	exclude[req.Source] = struct{}{}
	tFakes := sel.SelectFakes(m.Graph, req.Dest, 1, exclude)
	if len(sFakes) == 0 || len(tFakes) == 0 {
		return Outcome{}, fmt.Errorf("baseline: landmark selection failed (network too small for shift band [%v,%v])", m.MinShift, m.MaxShift)
	}
	p, reply, err := execPair(m.Exec, sFakes[0], tFakes[0])
	if err != nil {
		return Outcome{}, err
	}
	// The returned path answers the landmark pair, not the user's pair, so
	// it is never the exact requested path (unless the landmarks happen to
	// coincide with the truth, which selection forbids).
	return Outcome{
		Mechanism:          m.Name(),
		ExactPath:          false,
		ResultCost:         pathCostOrInf(p),
		TrueCost:           trueCost,
		BreachProbability:  0,
		ServerSettledNodes: reply.SettledNodes,
		ServerPageFaults:   reply.PageFaults,
		CandidatePairs:     1,
	}, nil
}

// Cloaking suppresses address detail: each endpoint is blurred to a cloaking
// region of radius CloakRadius and the server arbitrarily picks a node inside
// the region to answer (Figure 2c). The returned path is relevant only if the
// picked nodes happen to be the true ones.
type Cloaking struct {
	Exec  QueryExecutor
	Graph *roadnet.Graph
	// CloakRadius is the radius of the cloaked region around each true
	// endpoint.
	CloakRadius float64
	Seed        uint64
}

// Name implements Mechanism.
func (Cloaking) Name() string { return "cloaking" }

// Run implements Mechanism.
func (m Cloaking) Run(req obfuscate.Request, trueCost float64) (Outcome, error) {
	if m.Graph == nil {
		return Outcome{}, fmt.Errorf("baseline: cloaking mechanism needs a graph")
	}
	rng := newRNG(m.Seed ^ uint64(req.Source)<<20 ^ uint64(req.Dest))
	pickIn := func(center roadnet.NodeID) (roadnet.NodeID, int) {
		c := m.Graph.Node(center)
		region := m.Graph.NodesWithin(c.X, c.Y, m.CloakRadius)
		if len(region) == 0 {
			return center, 1
		}
		return region[rng.intn(len(region))], len(region)
	}
	s, sizeS := pickIn(req.Source)
	t, sizeT := pickIn(req.Dest)
	p, reply, err := execPair(m.Exec, s, t)
	if err != nil {
		return Outcome{}, err
	}
	return Outcome{
		Mechanism: m.Name(),
		// Exact only when the server's arbitrary picks are the true nodes.
		ExactPath:          s == req.Source && t == req.Dest && !p.Empty(),
		ResultCost:         pathCostOrInf(p),
		TrueCost:           trueCost,
		BreachProbability:  1 / float64(sizeS*sizeT),
		ServerSettledNodes: reply.SettledNodes,
		ServerPageFaults:   reply.PageFaults,
		CandidatePairs:     1,
	}, nil
}

// NaiveDecoys mixes the true query with Decoys fully independent fake
// (s, t) queries and submits them all (Figure 2d). The exact path is always
// retrieved and the breach probability is 1/(Decoys+1), but the server pays
// for Decoys+1 unrelated point-to-point searches.
type NaiveDecoys struct {
	Exec   QueryExecutor
	Graph  *roadnet.Graph
	Decoys int
	Seed   uint64
}

// Name implements Mechanism.
func (NaiveDecoys) Name() string { return "naive-decoys" }

// Run implements Mechanism.
func (m NaiveDecoys) Run(req obfuscate.Request, trueCost float64) (Outcome, error) {
	if m.Graph == nil {
		return Outcome{}, fmt.Errorf("baseline: naive decoy mechanism needs a graph")
	}
	decoys := m.Decoys
	if decoys < 0 {
		decoys = 0
	}
	sel := obfuscate.NewUniformSelector(m.Seed ^ 0xdecafbad)
	exclude := map[roadnet.NodeID]struct{}{req.Source: {}, req.Dest: {}}
	fakeSources := sel.SelectFakes(m.Graph, req.Source, decoys, exclude)
	for _, f := range fakeSources {
		exclude[f] = struct{}{}
	}
	fakeDests := sel.SelectFakes(m.Graph, req.Dest, decoys, exclude)

	out := Outcome{Mechanism: m.Name(), TrueCost: trueCost}
	// True pair first (submission order carries no meaning to the server in
	// this simulation; each pair is an independent query).
	p, reply, err := execPair(m.Exec, req.Source, req.Dest)
	if err != nil {
		return Outcome{}, err
	}
	out.ExactPath = !p.Empty()
	out.ResultCost = pathCostOrInf(p)
	out.ServerSettledNodes += reply.SettledNodes
	out.ServerPageFaults += reply.PageFaults
	out.CandidatePairs++
	for i := 0; i < decoys && i < len(fakeSources) && i < len(fakeDests); i++ {
		_, reply, err := execPair(m.Exec, fakeSources[i], fakeDests[i])
		if err != nil {
			return Outcome{}, err
		}
		out.ServerSettledNodes += reply.SettledNodes
		out.ServerPageFaults += reply.PageFaults
		out.CandidatePairs++
	}
	out.BreachProbability = 1 / float64(out.CandidatePairs)
	return out, nil
}

func pathCostOrInf(p search.Path) float64 {
	if p.Empty() {
		return math.Inf(1)
	}
	return p.Cost
}

// newRNG mirrors the deterministic generator used elsewhere; local copy keeps
// the package dependency-free.
type baselineRNG struct{ state uint64 }

func newRNG(seed uint64) *baselineRNG {
	if seed == 0 {
		seed = 0x2545f4914f6cdd1d
	}
	return &baselineRNG{state: seed}
}

func (r *baselineRNG) intn(n int) int {
	if n <= 0 {
		panic("baseline: intn with non-positive n")
	}
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int((z ^ (z >> 31)) % uint64(n))
}
