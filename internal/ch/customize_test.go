package ch

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"

	"opaque/internal/roadnet"
	"opaque/internal/search"
	"opaque/internal/storage"
)

// randomWeightChanges picks k existing arcs of g uniformly and assigns them
// fresh small-integer costs.
func randomWeightChanges(g *roadnet.Graph, rng *rand.Rand, k int) []roadnet.ArcWeightChange {
	changes := make([]roadnet.ArcWeightChange, 0, k)
	n := g.NumNodes()
	for len(changes) < k {
		v := roadnet.NodeID(rng.Intn(n))
		arcs := g.Arcs(v)
		if len(arcs) == 0 {
			continue
		}
		a := arcs[rng.Intn(len(arcs))]
		changes = append(changes, roadnet.ArcWeightChange{From: v, To: a.To, NewCost: float64(1 + rng.Intn(30))})
	}
	return changes
}

// checkAgainstReference asserts, for sampled pairs, that the engine's
// distances and the MTM engine's table cells equal reference Dijkstra on
// exactly the graph acc presents — the current metric, never a stale one.
// Integer costs make the comparison exact.
func checkAgainstReference(t *testing.T, acc storage.Accessor, o *Overlay, queries int, seed int64) {
	t.Helper()
	g := acc.Graph()
	eng := NewEngine(o, nil)
	mtm := NewMTM(o, nil)
	rng := rand.New(rand.NewSource(seed))
	n := g.NumNodes()
	S := make([]roadnet.NodeID, 4)
	T := make([]roadnet.NodeID, 4)
	for i := range S {
		S[i] = roadnet.NodeID(rng.Intn(n))
		T[i] = roadnet.NodeID(rng.Intn(n))
	}
	tbl, _, err := mtm.Distances(S, T)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range S {
		for j, d := range T {
			want, _, err := search.ReferenceDijkstra(acc, s, d)
			if err != nil {
				t.Fatal(err)
			}
			wantDist := want.Cost
			if len(want.Nodes) == 0 && s != d {
				wantDist = math.Inf(1)
			}
			if got := tbl[i*len(T)+j]; got != wantDist {
				t.Fatalf("MTM cell (%d,%d): got %v, reference %v", s, d, got, wantDist)
			}
		}
	}
	for q := 0; q < queries; q++ {
		s := roadnet.NodeID(rng.Intn(n))
		d := roadnet.NodeID(rng.Intn(n))
		want, _, err := search.ReferenceDijkstra(acc, s, d)
		if err != nil {
			t.Fatal(err)
		}
		wantDist := want.Cost
		if len(want.Nodes) == 0 && s != d {
			wantDist = math.Inf(1)
		}
		gotDist, _, err := eng.Distance(s, d)
		if err != nil {
			t.Fatal(err)
		}
		if gotDist != wantDist {
			t.Fatalf("pair (%d,%d): CH distance %v, reference %v", s, d, gotDist, wantDist)
		}
		if math.IsInf(wantDist, 1) {
			continue
		}
		gotPath, _, err := eng.Path(s, d)
		if err != nil {
			t.Fatal(err)
		}
		if gotPath.Cost != wantDist {
			t.Fatalf("pair (%d,%d): CH path cost %v, reference %v", s, d, gotPath.Cost, wantDist)
		}
		checkPathValid(t, g, s, d, gotPath)
	}
}

// TestCustomizableBuildMatchesReference: a customizable overlay (structure
// from metric-independent contraction, weights from the customization pass)
// answers exactly like the witness-pruned one — equal to reference Dijkstra.
func TestCustomizableBuildMatchesReference(t *testing.T) {
	cases := []struct {
		n, extra int
		seed     int64
	}{
		{n: 30, extra: 40, seed: 11},
		{n: 120, extra: 150, seed: 12},
		{n: 80, extra: 0, seed: 13},   // tree-ish: unique paths
		{n: 50, extra: 400, seed: 14}, // dense: many triangles
	}
	for _, tc := range cases {
		g := randomIntCostGraph(t, tc.n, tc.extra, tc.seed)
		o, err := BuildCustomizable(g)
		if err != nil {
			t.Fatalf("BuildCustomizable(n=%d): %v", tc.n, err)
		}
		if !o.Customizable() {
			t.Fatal("BuildCustomizable produced a non-customizable overlay")
		}
		if o.Checksum() != GraphChecksum(g) || o.TopologyChecksum() != g.TopologyChecksum() {
			t.Fatal("customizable overlay checksums do not bind to the source graph")
		}
		checkAgainstReference(t, storage.NewMemoryGraph(g), o, 120, tc.seed*31)
	}
}

// TestRecustomizeTracksWeightUpdates is the acceptance property: after a
// random sequence of weight updates, a re-customized overlay answers every
// sampled query (point engine and many-to-many engine) exactly like
// reference Dijkstra on the *current* graph — never the pre-update one —
// including save/load round-trips between updates.
func TestRecustomizeTracksWeightUpdates(t *testing.T) {
	for _, tc := range []struct {
		n, extra int
		seed     int64
	}{
		{n: 60, extra: 80, seed: 21},
		{n: 150, extra: 200, seed: 22},
	} {
		g := randomIntCostGraph(t, tc.n, tc.extra, tc.seed)
		o, err := BuildCustomizable(g)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(tc.seed * 101))
		for round := 0; round < 6; round++ {
			g2, err := g.WithUpdatedWeights(randomWeightChanges(g, rng, 1+rng.Intn(12)))
			if err != nil {
				t.Fatal(err)
			}
			// The pre-update overlay must refuse to serve the new graph.
			if err := o.Matches(g2); err == nil {
				t.Fatal("stale overlay claims to match the updated graph")
			}
			o2, err := o.Recustomize(g2)
			if err != nil {
				t.Fatalf("round %d: Recustomize: %v", round, err)
			}
			if err := o2.Matches(g2); err != nil {
				t.Fatalf("round %d: recustomized overlay does not match updated graph: %v", round, err)
			}
			checkAgainstReference(t, storage.NewMemoryGraph(g2), o2, 60, tc.seed*7+int64(round))
			// The old overlay still matches — and answers for — its own graph.
			if err := o.Matches(g); err != nil {
				t.Fatalf("round %d: old overlay lost its own graph: %v", round, err)
			}
			if round == 3 {
				// Round-trip the recustomized overlay through persistence.
				var buf bytes.Buffer
				if err := Write(o2, &buf); err != nil {
					t.Fatal(err)
				}
				loaded, err := Read(&buf)
				if err != nil {
					t.Fatalf("round %d: reading recustomized overlay: %v", round, err)
				}
				if !loaded.Customizable() {
					t.Fatal("customizable flag lost in round-trip")
				}
				checkAgainstReference(t, storage.NewMemoryGraph(g2), loaded, 30, tc.seed*13)
				o2 = loaded
			}
			g, o = g2, o2
		}
	}
}

// TestRecustomizeRejectsMisuse pins the error paths: witness-pruned overlays
// cannot re-customize, and topology changes are refused.
func TestRecustomizeRejectsMisuse(t *testing.T) {
	g := randomIntCostGraph(t, 40, 60, 31)
	witness, err := Build(g)
	if err != nil {
		t.Fatal(err)
	}
	if witness.Customizable() {
		t.Fatal("witness-pruned build claims to be customizable")
	}
	if _, err := witness.Recustomize(g); err == nil || !strings.Contains(err.Error(), "witness-pruned") {
		t.Fatalf("witness overlay Recustomize: got %v, want witness-pruned refusal", err)
	}

	o, err := BuildCustomizable(g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.Recustomize(nil); err == nil {
		t.Fatal("Recustomize(nil) succeeded")
	}
	other := randomIntCostGraph(t, 40, 60, 32) // same sizes, different topology
	if other.NumArcs() == g.NumArcs() {
		if _, err := o.Recustomize(other); err == nil {
			t.Fatal("Recustomize accepted a graph with different topology")
		}
	}
}

// TestIncrementalChecksumMatchesRecompute: the checksum carried across
// WithUpdatedWeights (XOR-fold delta) equals a from-scratch recompute of the
// updated graph, and the topology checksum never moves.
func TestIncrementalChecksumMatchesRecompute(t *testing.T) {
	g := randomIntCostGraph(t, 80, 120, 41)
	topo := g.TopologyChecksum()
	rng := rand.New(rand.NewSource(42))
	cur := g
	for round := 0; round < 10; round++ {
		next, err := cur.WithUpdatedWeights(randomWeightChanges(cur, rng, 1+rng.Intn(8)))
		if err != nil {
			t.Fatal(err)
		}
		// Rebuild an identical graph from scratch and compare checksums.
		fresh := next.Clone()
		fresh.Freeze()
		if got, want := next.ContentChecksum(), fresh.ContentChecksum(); got != want {
			t.Fatalf("round %d: incremental checksum %016x, recomputed %016x", round, got, want)
		}
		if next.TopologyChecksum() != topo {
			t.Fatalf("round %d: topology checksum moved on a weight-only update", round)
		}
		cur = next
	}
	// A no-op update (same costs) must not move the content checksum.
	arcs := cur.Arcs(0)
	if len(arcs) > 0 {
		same, err := cur.WithUpdatedWeights([]roadnet.ArcWeightChange{{From: 0, To: arcs[0].To, NewCost: arcs[0].Cost}})
		if err != nil {
			t.Fatal(err)
		}
		if same.ContentChecksum() != cur.ContentChecksum() {
			t.Fatal("no-op weight update moved the content checksum")
		}
	}
}
