package ch

import (
	"fmt"
	"sync"

	"opaque/internal/roadnet"
)

// This file implements multi-layer overlay weight storage keyed by profile
// name. A customizable overlay separates its frozen half (contraction order,
// shortcut structure, CSR topology — identical for every metric) from its
// weight layer (customized costs — one per metric). Recustomize exploits
// that split to produce a sibling overlay sharing the frozen half with fresh
// weights, and a ProfileSet keeps N such siblings hot: one precustomized
// weight layer per named weight profile (time-of-day multipliers and the
// like), built once and then served with zero customization work on the
// query path. An LRU bounds residency — each layer costs O(arcs+shortcuts)
// float64s — and an eviction hook lets the owner drop derived state (engines,
// processors) in the same breath.

// ProfileSetStats counts a ProfileSet's traffic.
type ProfileSetStats struct {
	// Hits counts Layer calls that found the layer hot; Misses counts
	// Install calls (every miss costs one customization pass).
	Hits   int64
	Misses int64
	// Evictions counts layers dropped by the LRU bound.
	Evictions int64
	// Layers is the number of layers currently resident.
	Layers int
}

// HitRatio returns Hits/(Hits+Misses), or 0 before any traffic.
func (s ProfileSetStats) HitRatio() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// ProfileSet is an LRU-bounded set of precustomized overlay weight layers
// sharing one frozen topology. Safe for concurrent use; the customization
// pass itself (Install's input) is the caller's to run outside any lock.
type ProfileSet struct {
	base     *Overlay
	capacity int

	mu      sync.Mutex
	entries map[string]*profileLayer
	order   []string // LRU order, least recently used first
	onEvict func(name string)

	hits, misses, evictions int64
}

// profileLayer pairs a customized weight layer with the profile graph it was
// customized for — the graph queries on this layer must be verified against.
type profileLayer struct {
	layer *Overlay
	graph *roadnet.Graph
}

// NewProfileSet builds an empty set over base, keeping at most capacity
// layers hot (capacity <= 0 defaults to 8). The base must be customizable:
// witness-pruned overlays carry metric-dependent shortcut prunings and
// cannot host other metrics' weight layers.
func NewProfileSet(base *Overlay, capacity int) (*ProfileSet, error) {
	if base == nil {
		return nil, fmt.Errorf("ch: profile set needs a base overlay")
	}
	if !base.Customizable() {
		return nil, fmt.Errorf("ch: profile set needs a customizable base overlay (witness-pruned shortcuts are valid for one metric only)")
	}
	if capacity <= 0 {
		capacity = 8
	}
	return &ProfileSet{
		base:     base,
		capacity: capacity,
		entries:  make(map[string]*profileLayer),
	}, nil
}

// SetOnEvict installs a hook called (under the set's lock — it must not call
// back into the set) with the name of every evicted layer, so the owner can
// drop engines and processors derived from it.
func (ps *ProfileSet) SetOnEvict(fn func(name string)) {
	ps.mu.Lock()
	ps.onEvict = fn
	ps.mu.Unlock()
}

// Layer returns the hot layer for name and the profile graph it was
// customized for, marking it most recently used. A miss returns ok=false
// without counting (Install counts the miss when the rebuilt layer lands).
func (ps *ProfileSet) Layer(name string) (layer *Overlay, graph *roadnet.Graph, ok bool) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	e, ok := ps.entries[name]
	if !ok {
		return nil, nil, false
	}
	ps.hits++
	ps.touch(name)
	return e.layer, e.graph, true
}

// Install customizes the base overlay's weight layer for the profile graph g
// (one full customization pass — seconds on large maps, so callers build at
// startup or accept the latency on first use) and inserts it under name,
// evicting the least recently used layer beyond capacity. Reinstalling a
// name replaces its layer.
func (ps *ProfileSet) Install(name string, g *roadnet.Graph) (*Overlay, error) {
	if name == "" {
		return nil, fmt.Errorf("ch: profile layer needs a non-empty name")
	}
	layer, err := ps.base.Recustomize(g)
	if err != nil {
		return nil, fmt.Errorf("ch: customizing profile layer %q: %w", name, err)
	}
	ps.mu.Lock()
	defer ps.mu.Unlock()
	ps.misses++
	if _, exists := ps.entries[name]; exists {
		ps.touch(name)
	} else {
		ps.order = append(ps.order, name)
	}
	ps.entries[name] = &profileLayer{layer: layer, graph: g}
	for len(ps.order) > ps.capacity {
		victim := ps.order[0]
		ps.order = ps.order[1:]
		delete(ps.entries, victim)
		ps.evictions++
		if ps.onEvict != nil {
			ps.onEvict(victim)
		}
	}
	return layer, nil
}

// touch moves name to the most-recently-used end. Caller holds ps.mu.
func (ps *ProfileSet) touch(name string) {
	for i, n := range ps.order {
		if n == name {
			copy(ps.order[i:], ps.order[i+1:])
			ps.order[len(ps.order)-1] = name
			return
		}
	}
}

// Names returns the resident layer names, least recently used first.
func (ps *ProfileSet) Names() []string {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	return append([]string(nil), ps.order...)
}

// Stats returns a snapshot of the set's counters.
func (ps *ProfileSet) Stats() ProfileSetStats {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	return ProfileSetStats{
		Hits:      ps.hits,
		Misses:    ps.misses,
		Evictions: ps.evictions,
		Layers:    len(ps.entries),
	}
}
