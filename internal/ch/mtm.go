package ch

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"opaque/internal/roadnet"
	"opaque/internal/search"
	"opaque/internal/storage"
)

// This file implements the many-to-many bucket algorithm on the CH overlay —
// the evaluation engine for *wide* obfuscated queries. Where the pairwise
// Engine answers Q(S, T) with |S|·|T| bidirectional searches, MTM computes
// the whole |S|×|T| distance table in |S| + |T| upward sweeps:
//
//  1. One backward upward search per target t_j deposits a bucket entry
//     (j, d↑(u, t_j)) at every node u it settles. Buckets live in a flat,
//     epoch-stamped arena (per-node chain heads into one entries array), so
//     the deposit phase allocates nothing once the arena has grown to its
//     working size.
//  2. One forward upward search per source s_i scans the bucket of every
//     node u it settles and relaxes table cells:
//     dist[i][j] = min(dist[i][j], d↑(s_i, u) + d↑(u, t_j)).
//
// Correctness rests on the standard CH theorem the bidirectional query
// already relies on: for every pair (s, t) some shortest path is an up-down
// path, its apex is settled by both the forward sweep from s and the
// backward sweep from t with exact prefix/suffix distances, so the minimum
// over meeting nodes equals the true distance. Meeting nodes whose upward
// labels exceed the true distance only ever produce over-estimates, never
// under-estimates, so they cannot corrupt the minimum.
//
// Distance-only callers (candidate filtering, experiments) use DistancesInto
// with a reused output buffer: the steady-state evaluation performs zero
// heap allocations. Path callers use Table, which additionally records, per
// cell, the overlay arc chain source→apex→target; the expensive part — the
// recursive shortcut unpacking into original-arc node sequences — happens
// lazily in Table.Path, so even a path-capable table only materialises the
// cells actually read.

// bucketEntry is one deposit of a backward sweep: "target tgt is reachable
// downward from this node at cost dist". Entries for one node form a chain
// through next (-1 terminates) in the state's flat arena. via is the arena
// arc the backward search relaxed to reach this node (-1 at the target
// itself, and in distance-only sweeps, which skip via recovery entirely);
// it is what lets Table.Path walk the apex→target half of a route without
// retaining |T| search trees.
type bucketEntry struct {
	next   int32
	target int32
	via    int32
	dist   float64
}

// mtmState is the reusable per-evaluation state of one many-to-many table:
// the bucket arena and the per-row reduction scratch. Like search.Workspace
// it is epoch-stamped — resetting the per-node chain heads for the next
// table is a counter bump, not an O(n) fill — and pooled, so steady-state
// tables allocate nothing.
type mtmState struct {
	epoch   uint32
	stamp   []uint32 // head[v] valid iff stamp[v] == epoch
	head    []int32
	entries []bucketEntry

	// Per-row scratch for path-recording sweeps: the bucket entry and
	// meeting node realising the current best of each cell. Only read for
	// cells whose distance is finite, so no per-row reset is needed.
	bestEntry []int32
	bestMeet  []roadnet.NodeID
	chain     []roadnet.NodeID // forward parent-chain scratch
}

// reset prepares the state for the next table over an n-node overlay.
func (st *mtmState) reset(n int) {
	if n > len(st.stamp) {
		grow := n - len(st.stamp)
		st.stamp = append(st.stamp, make([]uint32, grow)...)
		st.head = append(st.head, make([]int32, grow)...)
	}
	if st.epoch == ^uint32(0) {
		for i := range st.stamp {
			st.stamp[i] = 0
		}
		st.epoch = 0
	}
	st.epoch++
	st.entries = st.entries[:0]
}

// ensureRow sizes the per-row scratch for t targets.
func (st *mtmState) ensureRow(t int) {
	if t > len(st.bestEntry) {
		grow := t - len(st.bestEntry)
		st.bestEntry = append(st.bestEntry, make([]int32, grow)...)
		st.bestMeet = append(st.bestMeet, make([]roadnet.NodeID, grow)...)
	}
}

// deposit appends a bucket entry for node u and links it as u's chain head.
func (st *mtmState) deposit(u roadnet.NodeID, target, via int32, dist float64) {
	prev := int32(-1)
	if st.stamp[u] == st.epoch {
		prev = st.head[u]
	}
	st.entries = append(st.entries, bucketEntry{next: prev, target: target, via: via, dist: dist})
	st.head[u] = int32(len(st.entries) - 1)
	st.stamp[u] = st.epoch
}

// headOf returns the first entry index of u's bucket chain, -1 when empty.
func (st *mtmState) headOf(u roadnet.NodeID) int32 {
	if st.stamp[u] != st.epoch {
		return -1
	}
	return st.head[u]
}

// findEntry returns the index of target's entry in u's bucket, -1 when the
// backward sweep never settled u — which, for nodes on a recorded route, is
// an internal invariant violation.
func (st *mtmState) findEntry(u roadnet.NodeID, target int32) int32 {
	for e := st.headOf(u); e >= 0; e = st.entries[e].next {
		if st.entries[e].target == target {
			return e
		}
	}
	return -1
}

// MTMStats is a snapshot of an MTM engine's lifetime instrumentation; the
// server mirrors it into its metrics registry and -stats-interval log.
type MTMStats struct {
	// Tables counts completed many-to-many evaluations.
	Tables int64
	// BucketEntries counts entries deposited by backward sweeps.
	BucketEntries int64
	// BucketEntriesScanned counts entries examined by forward sweeps — the
	// join cost the bucket layout is meant to keep proportional to the
	// upward search spaces, not to |S|·|T|.
	BucketEntriesScanned int64
	// ArenaHighWater is the largest bucket arena (entries in one table)
	// observed, i.e. the steady-state memory the pooled state retains.
	ArenaHighWater int64
}

// MTM is the many-to-many table engine on an Overlay. It is safe for
// concurrent use: every evaluation checks a private mtmState out of the
// engine's pool and a search workspace out of the shared WorkspacePool, and
// the overlay itself is read-only.
//
// MTM implements search.TableEngine, which is how the server installs it for
// the "ch-mtm" strategy and the wide half of "hybrid" routing.
type MTM struct {
	o      *Overlay
	pool   *search.WorkspacePool
	states sync.Pool
	// verified memoises the accessor graph proven to match the overlay,
	// exactly like Engine.verified.
	verified atomic.Pointer[roadnet.Graph]
	// gen is the accessor data generation the overlay's weights are valid
	// for, exactly like Engine.gen (search.Generational).
	gen atomic.Uint64

	tables    atomic.Int64
	deposited atomic.Int64
	scanned   atomic.Int64
	highWater atomic.Int64
}

// NewMTM returns a many-to-many engine over o drawing search workspaces from
// wp. A nil wp gets a private pool; servers pass their own so MTM sweeps,
// pairwise CH queries and SSMD searches all recycle the same workspaces.
func NewMTM(o *Overlay, wp *search.WorkspacePool) *MTM {
	if wp == nil {
		wp = search.NewWorkspacePool()
	}
	m := &MTM{o: o, pool: wp}
	m.states.New = func() any { return &mtmState{} }
	return m
}

// Overlay returns the overlay the engine evaluates on.
func (m *MTM) Overlay() *Overlay { return m.o }

// BindGeneration records the accessor data generation the overlay's weights
// were customized for (see Engine.BindGeneration).
func (m *MTM) BindGeneration(gen uint64) { m.gen.Store(gen) }

// Generation implements search.Generational.
func (m *MTM) Generation() uint64 { return m.gen.Load() }

// Stats returns a snapshot of the engine's lifetime counters.
func (m *MTM) Stats() MTMStats {
	return MTMStats{
		Tables:               m.tables.Load(),
		BucketEntries:        m.deposited.Load(),
		BucketEntriesScanned: m.scanned.Load(),
		ArenaHighWater:       m.highWater.Load(),
	}
}

// DistancesInto computes the |S|×|T| distance table into dst (grown as
// needed and returned; row-major: dst[i*|T|+j] is sources[i]→targets[j],
// +Inf when unreachable). Passing a previously returned dst makes the
// steady-state evaluation allocation-free — this is the hot path wide
// obfuscated queries are routed through when candidate paths are not
// needed.
//
//opaque:noalloc
func (m *MTM) DistancesInto(dst []float64, sources, targets []roadnet.NodeID) ([]float64, search.Stats, error) {
	cells := len(sources) * len(targets)
	if cap(dst) < cells {
		dst = make([]float64, cells) //opaque:allow(noalloc) cold grow path: steady state reuses the previously returned dst
	}
	dst = dst[:cells]
	stats, _, err := m.evaluate(dst, sources, targets, false)
	return dst, stats, err
}

// Distances is DistancesInto with a freshly allocated output table.
func (m *MTM) Distances(sources, targets []roadnet.NodeID) ([]float64, search.Stats, error) {
	return m.DistancesInto(nil, sources, targets)
}

// Table computes the full |S|×|T| table with per-cell path support: the
// distances are computed exactly as DistancesInto does, and each reachable
// cell additionally records its overlay arc chain so Table.Path can unpack
// the route lazily. The returned table is self-contained — it shares no
// state with the engine and stays valid indefinitely.
func (m *MTM) Table(sources, targets []roadnet.NodeID) (*Table, error) {
	tbl := &Table{
		o:       m.o,
		sources: append([]roadnet.NodeID(nil), sources...),
		targets: append([]roadnet.NodeID(nil), targets...),
		dist:    make([]float64, len(sources)*len(targets)),
	}
	stats, arcs, err := m.evaluate(tbl.dist, sources, targets, true)
	if err != nil {
		return nil, err
	}
	tbl.stats = stats
	tbl.arcs = arcs.arcs
	tbl.cellOff = arcs.cellOff
	return tbl, nil
}

// cellChains is the per-cell overlay arc recording a path-capable evaluation
// produces: cell c's chain is arcs[cellOff[c]:cellOff[c+1]], in travel order
// source→apex→target.
type cellChains struct {
	arcs    []int32
	cellOff []int32
}

// evaluate is the shared core: the backward deposit phase followed by the
// forward scan phase. dist must have len(sources)*len(targets) cells; it is
// +Inf-initialised here. When needPaths is set, each finite cell's overlay
// arc chain is recorded and returned.
func (m *MTM) evaluate(dist []float64, sources, targets []roadnet.NodeID, needPaths bool) (search.Stats, cellChains, error) {
	o := m.o
	var stats search.Stats
	var chains cellChains
	if len(sources) == 0 || len(targets) == 0 {
		return stats, chains, fmt.Errorf("ch: many-to-many table needs at least one source and one target (got |S|=%d, |T|=%d): %w",
			len(sources), len(targets), search.ErrEmptyQuery)
	}
	for _, s := range sources {
		if !validNode(o, s) {
			return stats, chains, fmt.Errorf("ch: invalid source node %d", s)
		}
	}
	for _, t := range targets {
		if !validNode(o, t) {
			return stats, chains, fmt.Errorf("ch: invalid target node %d", t)
		}
	}

	st := m.states.Get().(*mtmState)
	defer m.states.Put(st)
	st.reset(o.n)
	w := m.pool.Get(o.n)
	defer w.Release()

	// Phase 1: one backward upward sweep per target deposits buckets.
	for j, t := range targets {
		if err := m.backwardSweep(st, w, t, int32(j), needPaths, &stats); err != nil {
			return stats, chains, err
		}
	}
	m.deposited.Add(int64(len(st.entries)))
	for {
		cur := m.highWater.Load()
		if int64(len(st.entries)) <= cur || m.highWater.CompareAndSwap(cur, int64(len(st.entries))) {
			break
		}
	}

	if needPaths {
		st.ensureRow(len(targets))
		chains.cellOff = make([]int32, 1, len(dist)+1)
	}

	// Phase 2: one forward upward sweep per source scans buckets and, when
	// paths were requested, records each finite cell's arc chain while the
	// forward tree is still on the workspace.
	scanned := int64(0)
	for i, s := range sources {
		row := dist[i*len(targets) : (i+1)*len(targets)]
		for j := range row {
			row[j] = math.Inf(1)
		}
		scanned += m.forwardSweep(st, w, s, row, needPaths, &stats)
		if needPaths {
			var err error
			chains.arcs, chains.cellOff, err = m.recordChains(st, w, s, row, chains.arcs, chains.cellOff)
			if err != nil {
				return stats, chains, err
			}
		}
	}
	m.scanned.Add(scanned)
	m.tables.Add(1)
	return stats, chains, nil
}

// backwardSweep runs the upward search from target t over the backward CSR
// view, depositing a bucket entry at every settled node. In path mode each
// deposit carries the arena arc the search stepped through, recovered from
// the parent label the same way the bidirectional query's unpacking does.
//
//opaque:noalloc
func (m *MTM) backwardSweep(st *mtmState, w *search.Workspace, t roadnet.NodeID, j int32, needPaths bool, stats *search.Stats) error {
	o := m.o
	w.Reset(o.n)
	w.Label(t, 0, roadnet.InvalidNode)
	h := w.Heap()
	h.Push(int32(t), 0)
	stats.QueueOps++
	for !h.Empty() {
		if h.Len() > stats.MaxFrontier {
			stats.MaxFrontier = h.Len()
		}
		item := h.Pop()
		u := roadnet.NodeID(item.Value)
		if item.Priority > w.DistOf(u) {
			continue // stale entry
		}
		stats.SettledNodes++
		via := int32(-1)
		if needPaths {
			if p := w.ParentOf(u); p != roadnet.InvalidNode {
				via = o.findArc(o.bwdOff, o.bwdTo, o.bwdCost, o.bwdArc, p, u, w.DistOf(p), item.Priority)
				if via < 0 {
					//opaque:allow(noalloc) unreachable unless the overlay is corrupt; allocating here is already a failed sweep
					return fmt.Errorf("ch: internal error: no upward arc %d→%d on backward sweep for target %d", u, p, t)
				}
			}
		}
		st.deposit(u, j, via, item.Priority)
		for i := o.bwdOff[u]; i < o.bwdOff[u+1]; i++ {
			stats.RelaxedArcs++
			head := o.bwdTo[i]
			nd := item.Priority + o.bwdCost[i]
			if nd < w.DistOf(head) {
				w.Label(head, nd, u)
				h.Push(int32(head), nd)
				stats.QueueOps++
			}
		}
	}
	return nil
}

// forwardSweep runs the upward search from source s over the forward CSR
// view, scanning the bucket of every settled node to relax the row's cells.
// It returns the number of bucket entries examined. In path mode the best
// entry and meeting node of each improved cell are recorded in the row
// scratch; the forward tree is left on w for recordChains.
//
//opaque:noalloc
func (m *MTM) forwardSweep(st *mtmState, w *search.Workspace, s roadnet.NodeID, row []float64, needPaths bool, stats *search.Stats) int64 {
	o := m.o
	w.Reset(o.n)
	w.Label(s, 0, roadnet.InvalidNode)
	h := w.Heap()
	h.Push(int32(s), 0)
	stats.QueueOps++
	scanned := int64(0)
	for !h.Empty() {
		if h.Len() > stats.MaxFrontier {
			stats.MaxFrontier = h.Len()
		}
		item := h.Pop()
		u := roadnet.NodeID(item.Value)
		if item.Priority > w.DistOf(u) {
			continue
		}
		stats.SettledNodes++
		for e := st.headOf(u); e >= 0; e = st.entries[e].next {
			scanned++
			en := &st.entries[e]
			if nd := item.Priority + en.dist; nd < row[en.target] {
				row[en.target] = nd
				if needPaths {
					st.bestEntry[en.target] = e
					st.bestMeet[en.target] = u
				}
			}
		}
		for i := o.fwdOff[u]; i < o.fwdOff[u+1]; i++ {
			stats.RelaxedArcs++
			head := o.fwdTo[i]
			nd := item.Priority + o.fwdCost[i]
			if nd < w.DistOf(head) {
				w.Label(head, nd, u)
				h.Push(int32(head), nd)
				stats.QueueOps++
			}
		}
	}
	return scanned
}

// recordChains appends, for every finite cell of s's row, the overlay arc
// chain source→apex (walked off the forward tree still on w) followed by
// apex→target (walked through the bucket entries' via arcs), and closes the
// row's cell offsets.
func (m *MTM) recordChains(st *mtmState, w *search.Workspace, s roadnet.NodeID, row []float64, arcs []int32, cellOff []int32) ([]int32, []int32, error) {
	o := m.o
	for j := range row {
		if !math.IsInf(row[j], 1) {
			meet := st.bestMeet[j]
			// Forward half: meet→source through the forward parents, emitted
			// in source→meet travel order.
			st.chain = st.chain[:0]
			for at := meet; at != roadnet.InvalidNode; at = w.ParentOf(at) {
				st.chain = append(st.chain, at)
			}
			if st.chain[len(st.chain)-1] != s {
				return nil, nil, fmt.Errorf("ch: internal error: forward sweep tree does not reach source %d", s)
			}
			for k := len(st.chain) - 1; k > 0; k-- {
				from, to := st.chain[k], st.chain[k-1]
				idx := o.findArc(o.fwdOff, o.fwdTo, o.fwdCost, o.fwdArc, from, to, w.DistOf(from), w.DistOf(to))
				if idx < 0 {
					return nil, nil, fmt.Errorf("ch: internal error: no upward arc %d→%d on forward sweep from %d", from, to, s)
				}
				arcs = append(arcs, idx)
			}
			// Backward half: follow the via arcs from the meeting node's
			// bucket entry down to the target.
			for e := st.bestEntry[j]; ; {
				en := st.entries[e]
				if en.via < 0 {
					break
				}
				arcs = append(arcs, en.via)
				next := roadnet.NodeID(o.arcs[en.via].to)
				if e = st.findEntry(next, en.target); e < 0 {
					return nil, nil, fmt.Errorf("ch: internal error: backward sweep chain broken at node %d", next)
				}
			}
		}
		cellOff = append(cellOff, int32(len(arcs)))
	}
	return arcs, cellOff, nil
}

// Table is a completed many-to-many result: the distance matrix plus the
// per-cell overlay arc chains path reconstruction needs. Distances are
// available immediately; Path unpacks a cell's shortcut chain into the
// original-arc route on demand, so callers that read only a few cells (or
// none) never pay for the rest.
type Table struct {
	o                *Overlay
	sources, targets []roadnet.NodeID
	dist             []float64
	arcs             []int32
	cellOff          []int32
	stats            search.Stats
}

// NumSources returns |S|.
func (t *Table) NumSources() int { return len(t.sources) }

// NumTargets returns |T|.
func (t *Table) NumTargets() int { return len(t.targets) }

// Sources returns the source set the table was computed for.
func (t *Table) Sources() []roadnet.NodeID { return t.sources }

// Targets returns the target set the table was computed for.
func (t *Table) Targets() []roadnet.NodeID { return t.targets }

// Stats returns the search work the evaluation performed.
func (t *Table) Stats() search.Stats { return t.stats }

// Dist returns the shortest-path distance sources[i]→targets[j], +Inf when
// unreachable.
func (t *Table) Dist(i, j int) float64 { return t.dist[i*len(t.targets)+j] }

// Path unpacks and returns the shortest path for cell (i, j), or an empty
// path when the target is unreachable. Each call materialises the route
// afresh from the recorded arc chain.
func (t *Table) Path(i, j int) search.Path {
	cell := i*len(t.targets) + j
	d := t.dist[cell]
	if math.IsInf(d, 1) {
		return search.Path{}
	}
	chain := t.arcs[t.cellOff[cell]:t.cellOff[cell+1]]
	nodes := make([]roadnet.NodeID, 1, len(chain)+1)
	nodes[0] = t.sources[i]
	emit := func(v roadnet.NodeID) { nodes = append(nodes, v) }
	for _, a := range chain {
		t.o.unpackArc(a, emit)
	}
	return search.Path{Nodes: nodes, Cost: d}
}

// verifyAccessor mirrors Engine.ShortestPath's binding rules: filtered
// accessors are rejected outright and any other accessor's graph must
// checksum-match the overlay (memoised per graph).
func (m *MTM) verifyAccessor(acc storage.Accessor) error {
	if acc == nil {
		return nil
	}
	if _, filtered := acc.(*storage.FilteredGraph); filtered {
		return fmt.Errorf("ch: overlay cannot serve a filtered accessor — the hierarchy was contracted over the unfiltered arcs; query the filtered graph with the flat searches instead")
	}
	g := acc.Graph()
	if m.verified.Load() != g {
		if err := m.o.Matches(g); err != nil {
			return fmt.Errorf("ch: accessor does not present the overlay's graph (%v): %w", err, search.ErrStaleEngine)
		}
		m.verified.Store(g)
	}
	return nil
}

// EvaluateTable implements search.TableEngine: the full Q(S, T) result with
// candidate paths materialised (the wire reply needs every cell) and the
// distance matrix filled.
func (m *MTM) EvaluateTable(acc storage.Accessor, sources, dests []roadnet.NodeID) (search.MSMDResult, error) {
	if err := m.verifyAccessor(acc); err != nil {
		return search.MSMDResult{}, err
	}
	tbl, err := m.Table(sources, dests)
	if err != nil {
		return search.MSMDResult{}, err
	}
	res := search.MSMDResult{
		Sources: tbl.sources,
		Dests:   tbl.targets,
		Paths:   make([][]search.Path, len(sources)),
		Dists:   make([][]float64, len(sources)),
		Stats:   tbl.stats,
	}
	for i := range sources {
		res.Paths[i] = make([]search.Path, len(dests))
		res.Dists[i] = tbl.dist[i*len(dests) : (i+1)*len(dests)]
		for j := range dests {
			res.Paths[i][j] = tbl.Path(i, j)
		}
	}
	return res, nil
}

// EvaluateDistances implements search.TableEngine's distance-only fast path:
// Dists is filled, Paths stays nil, and no route is ever unpacked.
func (m *MTM) EvaluateDistances(acc storage.Accessor, sources, dests []roadnet.NodeID) (search.MSMDResult, error) {
	if err := m.verifyAccessor(acc); err != nil {
		return search.MSMDResult{}, err
	}
	flat, stats, err := m.Distances(sources, dests)
	if err != nil {
		return search.MSMDResult{}, err
	}
	res := search.MSMDResult{
		Sources: append([]roadnet.NodeID(nil), sources...),
		Dests:   append([]roadnet.NodeID(nil), dests...),
		Dists:   make([][]float64, len(sources)),
		Stats:   stats,
	}
	for i := range sources {
		res.Dists[i] = flat[i*len(dests) : (i+1)*len(dests)]
	}
	return res, nil
}
