package ch

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"opaque/internal/roadnet"
)

// This file is the re-customizable weight layer of the overlay — the half a
// live weight update refreshes. The frozen half (contraction order, shortcut
// structure, the two upward CSR views) never changes after Build; what a
// weight update invalidates is every arc cost and every shortcut's unpack
// provenance, and both are recomputed here with the bottom-up triangle pass
// of customizable contraction hierarchies:
//
//	for each node v in increasing contraction rank:
//	    for each arena arc u→v with rank(u) > rank(v)   (v's upward in-arcs)
//	    for each arena arc v→w with rank(w) > rank(v)   (v's upward out-arcs)
//	        relax every arena arc u→w with cost(u→v) + cost(v→w)
//
// Processing nodes bottom-up makes every arc final before it is used as a
// triangle leg: the legs u→v and v→w have lower endpoint v, and all
// triangles that could still improve them route through nodes ranked below
// v, which were already processed. Customizable contraction guarantees the
// structure is closed under these triangles (contracting v inserted an arc
// x→w for every in/out pair), which is exactly the property that makes the
// relaxation sufficient for any weight assignment: after the pass, every
// shortest path of the current graph is realised by an up-down path over
// the overlay, so the bidirectional query and the many-to-many sweeps
// return current-graph distances.
//
// When a relaxation improves an arc it also rewrites the arc's unpack
// children to the two triangle legs, so path unpacking follows the metric:
// a "direct" road segment undercut by a detour through a lower-ranked node
// unpacks into that detour. Recursion terminates because a child's via node
// is always ranked below both of its endpoints.
//
// The pass is linear in the number of triangles of the structure — on
// road-shaped graphs a few multiples of the arena size — and runs orders of
// magnitude faster than a re-contraction (experiment E16 measures the
// ratio), which is the whole point: weight updates cost milliseconds, not a
// rebuild.

// Recustomize derives a fresh overlay whose weight layer matches g's current
// arc costs, sharing the frozen topology (ranks, levels, CSR structure) with
// the receiver. The receiver is not modified and keeps serving its own
// metric; callers swap the returned overlay in atomically.
//
// g must be weight-update-compatible with the overlay's source graph: same
// node count, same arc structure (topology checksum), only costs may differ.
// The overlay must have been built customizable (BuildCustomizable); a
// witness-pruned overlay's shortcut set is bound to the metric it was
// contracted under and cannot be refreshed without a full Build.
//
// Recustomize always re-runs every cell of a partitioned overlay; when only
// a few arcs changed, RecustomizeIncremental re-customizes just the touched
// cells.
func (o *Overlay) Recustomize(g *roadnet.Graph) (*Overlay, error) {
	out, err := o.recustomizeClone(g)
	if err != nil {
		return nil, err
	}
	if err := out.customizeAll(g, nil); err != nil {
		return nil, err
	}
	return out, nil
}

// RecustomizeStats reports what a partition-aware re-customization did.
type RecustomizeStats struct {
	// Cells is the number of partition cells (0 for unpartitioned overlays).
	Cells int
	// Recustomized lists the cells whose weight layer was re-derived, and
	// CellDuration the wall time of each cell's pass, index-aligned.
	Recustomized []int
	CellDuration []time.Duration
	// TopRefreshed reports whether any of the boundary top layer was
	// re-derived. An incremental pass leaves it false when the update changed
	// no top arc — no boundary–boundary original and no cell export moved.
	TopRefreshed bool
	// Full reports a fall-back to full re-customization: the overlay is
	// unpartitioned, or it was loaded from disk and its incremental state
	// (per-arc base costs, per-cell exports) is not primed yet.
	Full bool
}

// RecustomizeIncremental is the cell-local variant of Recustomize: it diffs
// g's arc costs against the base costs the overlay was last customized for,
// maps every changed arc to the partition cell owning it, re-customizes only
// the touched cells (in parallel, one goroutine per cell) and then refreshes
// the boundary top layer from the per-cell exports. Changes confined to
// boundary–boundary arcs skip the cell passes entirely and refresh only the
// top layer. The result is identical to a full Recustomize against the same
// graph; only the work differs.
//
// Unpartitioned overlays, and partitioned overlays freshly loaded from disk
// (whose incremental state is not primed), fall back to a full
// re-customization — reported in the returned stats — after which the
// returned overlay supports cell-local updates.
func (o *Overlay) RecustomizeIncremental(g *roadnet.Graph) (*Overlay, RecustomizeStats, error) {
	stats := RecustomizeStats{Cells: o.PartitionCells()}
	if o.part == nil || !o.incReady {
		out, err := o.Recustomize(g)
		stats.Full = true
		if err == nil && out.part != nil {
			stats.TopRefreshed = true
			for c := 0; c < out.part.cells; c++ {
				stats.Recustomized = append(stats.Recustomized, c)
			}
		}
		return out, stats, err
	}
	out, err := o.recustomizeClone(g)
	if err != nil {
		return nil, stats, err
	}
	// Diff against the receiver's base costs: every changed original arc
	// marks the layer that owns it, and the clone's base-cost record is
	// updated in the same walk — it is what the next diff runs against. The
	// walk is O(arcs) — trivial next to even one cell's triangle pass.
	touched := make([]bool, o.part.cells)
	var seeds []topSeed
	top := o.part.topLayer()
	err = o.forEachOriginalArc(g, func(idx int, cost float64) {
		if cost == o.baseCost[idx] {
			return
		}
		out.baseCost[idx] = cost
		if layer := o.part.arcLayer[idx]; layer != top {
			touched[layer] = true
		} else {
			kind := dirtyInc
			if cost < o.baseCost[idx] {
				kind = dirtyDec
			}
			seeds = append(seeds, topSeed{arc: int32(idx), kind: kind})
		}
	})
	if err != nil {
		return nil, stats, err
	}
	if err := out.customizeCellsIncremental(touched, seeds, &stats); err != nil {
		return nil, stats, err
	}
	return out, stats, nil
}

// recustomizeClone validates g against the overlay's frozen half and returns
// a new overlay sharing that frozen half, with private copies of the weight
// state (arena costs, base costs, export lists) ready for (re)customization.
func (o *Overlay) recustomizeClone(g *roadnet.Graph) (*Overlay, error) {
	if !o.customizable {
		return nil, fmt.Errorf("ch: overlay was built witness-pruned and cannot be re-customized; rebuild with BuildCustomizable to absorb weight updates")
	}
	if g == nil {
		return nil, fmt.Errorf("ch: recustomize against nil graph")
	}
	if g.NumNodes() != o.n || g.NumArcs() != o.graphArcs {
		return nil, fmt.Errorf("ch: overlay topology is %d nodes/%d arcs, graph has %d/%d",
			o.n, o.graphArcs, g.NumNodes(), g.NumArcs())
	}
	if ts := g.TopologyChecksum(); ts != o.topoSum {
		return nil, fmt.Errorf("ch: graph topology checksum %016x does not match overlay topology %016x (arc structure changed; weight updates may only change costs)", ts, o.topoSum)
	}
	out := &Overlay{
		n:         o.n,
		nOriginal: o.nOriginal,
		rank:      o.rank,
		level:     o.level,
		arcs:      append([]arc(nil), o.arcs...),
		fwdOff:    o.fwdOff,
		bwdOff:    o.bwdOff,
		fwdTo:     o.fwdTo,
		bwdTo:     o.bwdTo,
		fwdArc:    o.fwdArc,
		bwdArc:    o.bwdArc,
		// The CSR cost copies start as copies, not zeroed arrays: the full
		// passes overwrite every entry anyway, and the incremental pass
		// patches only the entries of re-derived arcs.
		fwdCost:      append([]float64(nil), o.fwdCost...),
		bwdCost:      append([]float64(nil), o.bwdCost...),
		graphArcs:    o.graphArcs,
		checksum:     GraphChecksum(g),
		topoSum:      o.topoSum,
		customizable: true,
		part:         o.part,
	}
	if o.baseCost != nil {
		out.baseCost = append([]float64(nil), o.baseCost...)
	}
	if o.exports != nil {
		out.exports = append([][]topExport(nil), o.exports...)
	}
	return out, nil
}

// customizeAll re-derives the full weight layer: the single global pass for
// unpartitioned overlays, every cell pass plus the top refresh for
// partitioned ones. Afterwards a partitioned overlay's incremental state is
// primed.
func (o *Overlay) customizeAll(g *roadnet.Graph, stats *RecustomizeStats) error {
	if o.part == nil {
		return o.customize(g)
	}
	touched := make([]bool, o.part.cells)
	for c := range touched {
		touched[c] = true
	}
	return o.customizeCells(g, touched, true, stats)
}

// customizeInPlace is the build-time variant: the overlay is still private
// to the builder, so the pass runs directly on its arrays. It panics on the
// structural errors customize reports, which for a freshly contracted arena
// are internal invariant violations.
func (o *Overlay) customizeInPlace(g *roadnet.Graph) {
	if err := o.customizeAll(g, nil); err != nil {
		panic(err)
	}
}

// forEachOriginalArc re-walks the graph's non-loop arcs in the order the
// arena seeded its originals, verifying the alignment arc by arc — a
// mismatched graph fails loudly instead of producing a silently wrong
// metric — and calls fn with each original's arena index and current graph
// cost.
func (o *Overlay) forEachOriginalArc(g *roadnet.Graph, fn func(idx int, cost float64)) error {
	idx := 0
	for v := 0; v < o.n; v++ {
		for _, ga := range g.Arcs(roadnet.NodeID(v)) {
			if ga.To == roadnet.NodeID(v) {
				continue // self-loops never enter the arena
			}
			if idx >= o.nOriginal {
				return fmt.Errorf("ch: customize: graph has more non-loop arcs than the overlay's %d originals", o.nOriginal)
			}
			a := &o.arcs[idx]
			if a.from != int32(v) || a.to != int32(ga.To) {
				return fmt.Errorf("ch: customize: arena arc %d is %d→%d but graph walk expects %d→%d", idx, a.from, a.to, v, ga.To)
			}
			fn(idx, ga.Cost)
			idx++
		}
	}
	if idx != o.nOriginal {
		return fmt.Errorf("ch: customize: graph has %d non-loop arcs, overlay has %d originals", idx, o.nOriginal)
	}
	return nil
}

// customize recomputes o.arcs costs and children for g's weights and
// refreshes the CSR cost copies. The caller owns o.arcs, o.fwdCost and
// o.bwdCost exclusively; all other arrays are only read.
func (o *Overlay) customize(g *roadnet.Graph) error {
	// Base weights: original arena arcs take their road segment's current
	// cost, shortcuts start unreachable.
	err := o.forEachOriginalArc(g, func(idx int, cost float64) {
		a := &o.arcs[idx]
		a.cost = cost
		a.childA, a.childB = -1, -1
	})
	if err != nil {
		return err
	}
	for i := o.nOriginal; i < len(o.arcs); i++ {
		o.arcs[i].cost = math.Inf(1)
	}

	// Bottom-up triangle relaxation in contraction order. byRank inverts the
	// rank permutation: byRank[r] is the node contracted r-th.
	byRank := make([]int32, o.n)
	for v, r := range o.rank {
		byRank[r] = int32(v)
	}
	// Each triangle (u→v, v→w) relaxes the arena arc u→w, which is stored
	// under its lower-ranked endpoint: in fwd[u] when rank(w) > rank(u), in
	// bwd[w] otherwise. Both cases are handled as sorted merge-joins against
	// v's own segments (buildCSR keeps every segment head-sorted), so the
	// pass streams contiguous CSR ranges instead of performing a random
	// lookup per triangle — the difference between a memory-latency-bound
	// and a bandwidth-bound customization on tens of millions of triangles.
	for _, v := range byRank {
		bw0, bw1 := o.bwdOff[v], o.bwdOff[v+1]
		fw0, fw1 := o.fwdOff[v], o.fwdOff[v+1]
		if bw0 == bw1 || fw0 == fw1 {
			continue
		}
		// Arcs u→w with rank(u) < rank(w): merge fwd[u] with fwd[v];
		// childA is the in-leg u→v, childB the matched out-leg v→w.
		for j := bw0; j < bw1; j++ {
			u := o.bwdTo[j]
			aUV := o.bwdArc[j]
			cUV := o.arcs[aUV].cost
			if math.IsInf(cUV, 1) {
				continue
			}
			o.mergeRelax(
				o.fwdTo[o.fwdOff[u]:o.fwdOff[u+1]], o.fwdArc[o.fwdOff[u]:o.fwdOff[u+1]],
				o.fwdTo[fw0:fw1], o.fwdArc[fw0:fw1],
				cUV, aUV, true)
		}
		// Arcs u→w with rank(u) > rank(w): merge bwd[w] with bwd[v];
		// childA is the matched in-leg u→v, childB the out-leg v→w.
		for k := fw0; k < fw1; k++ {
			w := o.fwdTo[k]
			aVW := o.fwdArc[k]
			cVW := o.arcs[aVW].cost
			if math.IsInf(cVW, 1) {
				continue
			}
			o.mergeRelax(
				o.bwdTo[o.bwdOff[w]:o.bwdOff[w+1]], o.bwdArc[o.bwdOff[w]:o.bwdOff[w+1]],
				o.bwdTo[bw0:bw1], o.bwdArc[bw0:bw1],
				cVW, aVW, false)
		}
	}

	// A customizable arena cannot hold an unreachable shortcut: the shortcut
	// x→w inserted when contracting v coexists with arena arcs x→v and v→w,
	// so its own triangle always relaxes it to a finite cost.
	for i := o.nOriginal; i < len(o.arcs); i++ {
		if math.IsInf(o.arcs[i].cost, 1) {
			return fmt.Errorf("ch: customize: shortcut %d (%d→%d) has no supporting triangle", i, o.arcs[i].from, o.arcs[i].to)
		}
	}

	// Refresh the flat CSR cost copies the query inner loops read.
	for i, ai := range o.fwdArc {
		o.fwdCost[i] = o.arcs[ai].cost
	}
	for i, ai := range o.bwdArc {
		o.bwdCost[i] = o.arcs[ai].cost
	}
	return nil
}

// topExport is one relaxation of a boundary–boundary (top layer) arc
// discovered inside a cell pass: the cell's best triangle through its own
// interiors for that arc. Exports are folded into the top layer before the
// boundary-node pass runs; keeping them per cell is what lets an untouched
// cell's contribution survive a cell-local re-customization without
// re-running the cell.
type topExport struct {
	arc            int32 // arena index of the top arc
	childA, childB int32
	cost           float64
}

// exportAcc accumulates a cell pass's top-arc relaxations, keyed by the
// partition's dense top-arc numbering. Entries start at +Inf; touched tracks
// which ones improved so the emitted export list stays proportional to the
// cell's actual boundary coupling.
type exportAcc struct {
	cost           []float64
	childA, childB []int32
	touched        []int32
}

// customizeCells is the partitioned customization pass: it re-derives the
// weight layers of the touched cells (in parallel, one goroutine per cell)
// and, when refreshTop is set, re-folds every cell's exports into the top
// layer and re-runs the boundary-node triangle pass. Untouched cells keep
// the costs, children and exports carried over by recustomizeClone, which is
// sound because no triangle leg or target ever crosses from one cell's
// interior into another's (see partition.go). The caller guarantees the
// touched set covers every arc whose graph cost differs from the carried
// base costs, and that refreshTop is set whenever any cell is touched.
func (o *Overlay) customizeCells(g *roadnet.Graph, touched []bool, refreshTop bool, stats *RecustomizeStats) error {
	p := o.part
	top := p.topLayer()
	if o.baseCost == nil {
		o.baseCost = make([]float64, o.nOriginal)
	}
	if o.exports == nil {
		o.exports = make([][]topExport, p.cells)
	}
	// Base weights, restricted to the layers being re-derived: originals of
	// a touched layer take their road segment's current cost, shortcuts
	// start unreachable. The base-cost record is refreshed for every
	// original — it is what the next incremental diff runs against.
	err := o.forEachOriginalArc(g, func(idx int, cost float64) {
		o.baseCost[idx] = cost
		layer := p.arcLayer[idx]
		if (layer == top && refreshTop) || (layer != top && touched[layer]) {
			a := &o.arcs[idx]
			a.cost = cost
			a.childA, a.childB = -1, -1
		}
	})
	if err != nil {
		return err
	}
	for c, t := range touched {
		if t {
			p.layerShortcuts(o.nOriginal, int32(c), func(ai int32) { o.arcs[ai].cost = math.Inf(1) })
		}
	}
	if refreshTop {
		p.layerShortcuts(o.nOriginal, top, func(ai int32) { o.arcs[ai].cost = math.Inf(1) })
	}

	// Cell passes write disjoint arc sets (their own layer) and read only
	// their own layer plus the private export accumulator, so they run
	// concurrently without synchronisation beyond the join.
	var wg sync.WaitGroup
	durations := make([]time.Duration, p.cells)
	for c, t := range touched {
		if !t {
			continue
		}
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			start := time.Now()
			o.exports[c] = o.cellPass(c)
			durations[c] = time.Since(start)
		}(c)
	}
	wg.Wait()
	if stats != nil {
		stats.Cells = p.cells
		stats.TopRefreshed = refreshTop
		for c, t := range touched {
			if t {
				stats.Recustomized = append(stats.Recustomized, c)
				stats.CellDuration = append(stats.CellDuration, durations[c])
			}
		}
	}

	if refreshTop {
		// Fold every cell's exports into the (reset) top layer, then run the
		// boundary-node triangle pass. Folding before the pass reproduces the
		// global bottom-up order: every interior node ranks below every
		// boundary node, so all interior relaxations of top arcs precede all
		// boundary-node triangles.
		for _, exp := range o.exports {
			for i := range exp {
				e := &exp[i]
				if a := &o.arcs[e.arc]; e.cost < a.cost {
					a.cost = e.cost
					a.childA, a.childB = e.childA, e.childB
				}
			}
		}
		o.topPass()
	}

	// Every shortcut of a re-derived layer must have been relaxed to a
	// finite cost (see customize's closing invariant); untouched layers kept
	// their previous finite costs.
	var infErr error
	checkLayer := func(layer int32) {
		p.layerShortcuts(o.nOriginal, layer, func(ai int32) {
			if infErr == nil && math.IsInf(o.arcs[ai].cost, 1) {
				infErr = fmt.Errorf("ch: customize: shortcut %d (%d→%d) has no supporting triangle", ai, o.arcs[ai].from, o.arcs[ai].to)
			}
		})
	}
	for c, t := range touched {
		if t {
			checkLayer(int32(c))
		}
	}
	if refreshTop {
		checkLayer(top)
	}
	if infErr != nil {
		return infErr
	}

	// Refresh the flat CSR cost copies the query inner loops read.
	for i, ai := range o.fwdArc {
		o.fwdCost[i] = o.arcs[ai].cost
	}
	for i, ai := range o.bwdArc {
		o.bwdCost[i] = o.arcs[ai].cost
	}
	o.incReady = true
	return nil
}

// Dirty kinds of the incremental top refresh. A dirty arc is re-derived from
// scratch either way; the kind bits bound how its *cost* can move, which is
// what decides whether its triangles can move their targets:
//
//   - dirtyDec: the arc's cost may decrease — every triangle through it may
//     improve its target, so the target is dirtied unconditionally;
//   - dirtyInc: the arc's cost may increase — a triangle through it can only
//     move targets it currently supports (old target cost == old leg sum);
//   - neither bit (dirtySet alone) never propagates: the arc's cost is
//     unchanged and only its unpack children need re-deriving.
const (
	dirtyDec = uint8(1)
	dirtyInc = uint8(2)
	dirtySet = uint8(4) // membership bit: the arc is re-derived
)

// topSeed is one boundary–boundary original arc whose base cost changed — a
// seed of the incremental top refresh's dirty set.
type topSeed struct {
	arc  int32
	kind uint8
}

// customizeCellsIncremental is the diff-driven variant of customizeCells,
// called with the touched cells and the changed boundary–boundary originals
// (the clone's base costs already reflect the new graph). It re-runs the
// touched cell passes and then refreshes the top layer *incrementally*:
// instead of resetting and re-relaxing all top arcs, it seeds a dirty set
// from the changed top originals and a merge-diff of each touched cell's old
// vs new export list, closes it under the boundary triangles in rank order
// (value-aware, against the still-intact old arena costs: see topMarkClosure)
// and then resets, re-folds and re-relaxes only the dirty arcs. Clean top
// arcs keep their carried costs and children, which is exact: an arc whose
// fold input is unchanged, whose decrease-capable legs are all clean and
// whose support triangles kept their leg sums relaxes to its previous value,
// by induction in rank order.
func (o *Overlay) customizeCellsIncremental(touched []bool, seeds []topSeed, stats *RecustomizeStats) error {
	p := o.part

	// Reset the touched cell layers: originals take their (already updated)
	// base cost, shortcuts start unreachable. Untouched layers are not walked
	// at all — this is what keeps a small update's cost proportional to the
	// touched cells, not the arena.
	for c, t := range touched {
		if !t {
			continue
		}
		for _, ai := range p.layerArcs[p.layerOff[c]:p.layerOff[c+1]] {
			a := &o.arcs[ai]
			if int(ai) < o.nOriginal {
				a.cost = o.baseCost[ai]
				a.childA, a.childB = -1, -1
			} else {
				a.cost = math.Inf(1)
			}
		}
	}

	// Dirty top arcs, keyed by the partition's dense top numbering.
	// nodeDirty[v] records that v owns a dirty arc — the closure and relax
	// passes use it to skip the (vast) clean majority of segment merges.
	dirty := make([]uint8, p.numTop)
	nodeDirty := make([]bool, o.n)
	anyDirty := false
	markTop := func(ai int32, kind uint8) {
		ti := p.topIndex[ai]
		if dirty[ti] != 0 {
			dirty[ti] |= kind
			return
		}
		dirty[ti] = dirtySet | kind
		anyDirty = true
		a := &o.arcs[ai]
		own := a.from
		if o.rank[a.to] < o.rank[a.from] {
			own = a.to
		}
		nodeDirty[own] = true
	}
	for _, s := range seeds {
		markTop(s.arc, s.kind)
	}

	// Touched cell passes, in parallel (disjoint arc sets, private export
	// accumulators). The old export lists are kept for the diff below.
	var wg sync.WaitGroup
	durations := make([]time.Duration, p.cells)
	oldExports := make([][]topExport, p.cells)
	for c, t := range touched {
		if !t {
			continue
		}
		oldExports[c] = o.exports[c]
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			start := time.Now()
			o.exports[c] = o.cellPass(c)
			durations[c] = time.Since(start)
		}(c)
	}
	wg.Wait()
	for c, t := range touched {
		if t {
			diffExports(oldExports[c], o.exports[c], markTop)
		}
	}
	if stats != nil {
		stats.Cells = p.cells
		for c, t := range touched {
			if t {
				stats.Recustomized = append(stats.Recustomized, c)
				stats.CellDuration = append(stats.CellDuration, durations[c])
			}
		}
	}

	if anyDirty {
		// Close the dirty set under the boundary triangles (value-aware,
		// against the old costs still in the arena), then rebuild exactly the
		// dirty arcs: reset to base weights, re-fold every cell's export
		// entries that hit a dirty arc, re-run the boundary triangle pass
		// restricted to dirty targets.
		o.topMarkClosure(dirty, nodeDirty)
		for ti, d := range dirty {
			if d == 0 {
				continue
			}
			ai := p.topArcs[ti]
			a := &o.arcs[ai]
			if int(ai) < o.nOriginal {
				a.cost = o.baseCost[ai]
				a.childA, a.childB = -1, -1
			} else {
				a.cost = math.Inf(1)
			}
		}
		for _, exp := range o.exports {
			for i := range exp {
				e := &exp[i]
				if dirty[p.topIndex[e.arc]] == 0 {
					continue
				}
				if a := &o.arcs[e.arc]; e.cost < a.cost {
					a.cost = e.cost
					a.childA, a.childB = e.childA, e.childB
				}
			}
		}
		o.topPassDirty(dirty, nodeDirty)
	}
	if stats != nil {
		stats.TopRefreshed = anyDirty
	}

	// Invariant check (see customize): every re-derived shortcut must have
	// relaxed to a finite cost. Restricted to what this pass re-derived.
	var infErr error
	checkArc := func(ai int32) {
		if infErr == nil && math.IsInf(o.arcs[ai].cost, 1) {
			infErr = fmt.Errorf("ch: customize: shortcut %d (%d→%d) has no supporting triangle", ai, o.arcs[ai].from, o.arcs[ai].to)
		}
	}
	for c, t := range touched {
		if t {
			p.layerShortcuts(o.nOriginal, int32(c), checkArc)
		}
	}
	for ti, d := range dirty {
		if d != 0 && int(p.topArcs[ti]) >= o.nOriginal {
			checkArc(p.topArcs[ti])
		}
	}
	if infErr != nil {
		return infErr
	}

	// Patch the flat CSR cost copies for exactly the re-derived arcs; the
	// rest were carried over by recustomizeClone.
	pos := o.csrPositions()
	patch := func(ai int32) {
		if j := pos[ai]; j >= 0 {
			o.fwdCost[j] = o.arcs[ai].cost
		} else {
			o.bwdCost[^j] = o.arcs[ai].cost
		}
	}
	for c, t := range touched {
		if !t {
			continue
		}
		for _, ai := range p.layerArcs[p.layerOff[c]:p.layerOff[c+1]] {
			patch(ai)
		}
	}
	for ti, d := range dirty {
		if d != 0 {
			patch(p.topArcs[ti])
		}
	}
	o.incReady = true
	return nil
}

// diffExports walks two arena-index-sorted export lists in lockstep and
// calls mark for every arc whose entry appears in only one list or differs
// between the two — the arcs whose fold input the cell's re-customization
// moved — classified by how the fold input moved: a cheaper or added entry
// may lower the arc (dirtyDec), a dearer or removed one may raise it
// (dirtyInc), and an entry that changed only its children re-derives the arc
// without propagating (no kind bits).
func diffExports(old, new []topExport, mark func(int32, uint8)) {
	i, j := 0, 0
	for i < len(old) && j < len(new) {
		switch {
		case old[i].arc < new[j].arc:
			mark(old[i].arc, dirtyInc)
			i++
		case old[i].arc > new[j].arc:
			mark(new[j].arc, dirtyDec)
			j++
		default:
			switch {
			case new[j].cost < old[i].cost:
				mark(old[i].arc, dirtyDec)
			case new[j].cost > old[i].cost:
				mark(old[i].arc, dirtyInc)
			case old[i].childA != new[j].childA || old[i].childB != new[j].childB:
				mark(old[i].arc, 0)
			}
			i++
			j++
		}
	}
	for ; i < len(old); i++ {
		mark(old[i].arc, dirtyInc)
	}
	for ; j < len(new); j++ {
		mark(new[j].arc, dirtyDec)
	}
}

// topMarkClosure closes the dirty top-arc set under the boundary triangles:
// in boundary rank order, every triangle whose legs could move marks its
// target arc dirty (and the target's owner node, which propagates the
// marking when that owner's rank is reached). The marking is value-aware
// against the old costs still sitting in the arena:
//
//   - a decrease-capable leg dirties every target of its triangles — a
//     cheaper leg can improve any of them;
//   - an increase-capable leg dirties only targets its triangle currently
//     supports (old target cost == old leg sum) — a dearer triangle that was
//     already beaten cannot move a target, because increase-capable arcs
//     never end up below their old cost (their fold inputs and legs only
//     rose, by induction in rank order).
//
// The result is a conservative superset of the arcs whose value or children
// can change; the restricted relax pass then recomputes exactly that set.
func (o *Overlay) topMarkClosure(dirty []uint8, nodeDirty []bool) {
	p := o.part
	for _, v := range p.boundaryByRank {
		if !nodeDirty[v] {
			continue
		}
		bw0, bw1 := o.bwdOff[v], o.bwdOff[v+1]
		fw0, fw1 := o.fwdOff[v], o.fwdOff[v+1]
		if bw0 == bw1 || fw0 == fw1 {
			continue
		}
		for j := bw0; j < bw1; j++ {
			u := o.bwdTo[j]
			aUV := o.bwdArc[j]
			o.mergeMark(
				o.fwdTo[o.fwdOff[u]:o.fwdOff[u+1]], o.fwdArc[o.fwdOff[u]:o.fwdOff[u+1]],
				o.fwdTo[fw0:fw1], o.fwdArc[fw0:fw1],
				dirty[p.topIndex[aUV]], o.arcs[aUV].cost, dirty, nodeDirty)
		}
		for k := fw0; k < fw1; k++ {
			w := o.fwdTo[k]
			aVW := o.fwdArc[k]
			o.mergeMark(
				o.bwdTo[o.bwdOff[w]:o.bwdOff[w+1]], o.bwdArc[o.bwdOff[w]:o.bwdOff[w+1]],
				o.bwdTo[bw0:bw1], o.bwdArc[bw0:bw1],
				dirty[p.topIndex[aVW]], o.arcs[aVW].cost, dirty, nodeDirty)
		}
	}
}

// mergeMark is the marking twin of mergeRelax: for every common head of the
// target and leg segments it combines the fixed leg's and the matched leg's
// dirty kinds and marks the matched target arc when the triangle could move
// it — unconditionally for a possible decrease, only at support equality
// (old target cost == old fixed + old leg cost) for a possible increase.
// Marked targets inherit the triangle's direction bits, so propagation stays
// value-aware across ranks.
func (o *Overlay) mergeMark(tHeads []roadnet.NodeID, tArcs []int32,
	lHeads []roadnet.NodeID, lArcs []int32,
	fixedKind uint8, fixedCost float64, dirty []uint8, nodeDirty []bool) {
	p := o.part
	i, j := 0, 0
	for i < len(tHeads) && j < len(lHeads) {
		switch {
		case tHeads[i] < lHeads[j]:
			i++
		case tHeads[i] > lHeads[j]:
			j++
		default:
			h := tHeads[i]
			i2 := i + 1
			for i2 < len(tHeads) && tHeads[i2] == h {
				i2++
			}
			j2 := j + 1
			for j2 < len(lHeads) && lHeads[j2] == h {
				j2++
			}
			for jj := j; jj < j2; jj++ {
				leg := lArcs[jj]
				k := (fixedKind | dirty[p.topIndex[leg]]) & (dirtyDec | dirtyInc)
				if k == 0 {
					continue
				}
				oldCand := fixedCost + o.arcs[leg].cost
				for ii := i; ii < i2; ii++ {
					ai := tArcs[ii]
					prop := k & dirtyDec
					if k&dirtyInc != 0 && o.arcs[ai].cost == oldCand {
						prop |= dirtyInc
					}
					if prop == 0 {
						continue
					}
					ti := p.topIndex[ai]
					if dirty[ti] != 0 {
						dirty[ti] |= prop
						continue
					}
					dirty[ti] = dirtySet | prop
					a := &o.arcs[ai]
					own := a.from
					if o.rank[a.to] < o.rank[a.from] {
						own = a.to
					}
					nodeDirty[own] = true
				}
			}
			i, j = i2, j2
		}
	}
}

// topPassDirty is topPass restricted to the closed dirty set: it visits
// every boundary node in rank order (a clean pivot can still support a dirty
// target's triangle) but skips segment merges whose target owner holds no
// dirty arc, and writes only dirty targets. Clean arcs keep their carried
// values, which the closure guarantees are final.
func (o *Overlay) topPassDirty(dirty []uint8, nodeDirty []bool) {
	for _, v := range o.part.boundaryByRank {
		bw0, bw1 := o.bwdOff[v], o.bwdOff[v+1]
		fw0, fw1 := o.fwdOff[v], o.fwdOff[v+1]
		if bw0 == bw1 || fw0 == fw1 {
			continue
		}
		for j := bw0; j < bw1; j++ {
			u := o.bwdTo[j]
			if !nodeDirty[u] {
				continue
			}
			aUV := o.bwdArc[j]
			cUV := o.arcs[aUV].cost
			if math.IsInf(cUV, 1) {
				continue
			}
			o.mergeRelaxDirty(
				o.fwdTo[o.fwdOff[u]:o.fwdOff[u+1]], o.fwdArc[o.fwdOff[u]:o.fwdOff[u+1]],
				o.fwdTo[fw0:fw1], o.fwdArc[fw0:fw1],
				cUV, aUV, true, dirty)
		}
		for k := fw0; k < fw1; k++ {
			w := o.fwdTo[k]
			if !nodeDirty[w] {
				continue
			}
			aVW := o.fwdArc[k]
			cVW := o.arcs[aVW].cost
			if math.IsInf(cVW, 1) {
				continue
			}
			o.mergeRelaxDirty(
				o.bwdTo[o.bwdOff[w]:o.bwdOff[w+1]], o.bwdArc[o.bwdOff[w]:o.bwdOff[w+1]],
				o.bwdTo[bw0:bw1], o.bwdArc[bw0:bw1],
				cVW, aVW, false, dirty)
		}
	}
}

// mergeRelaxDirty is mergeRelax with the write side masked to dirty targets.
func (o *Overlay) mergeRelaxDirty(tHeads []roadnet.NodeID, tArcs []int32,
	lHeads []roadnet.NodeID, lArcs []int32,
	base float64, fixedLeg int32, fixedIsA bool, dirty []uint8) {
	p := o.part
	i, j := 0, 0
	for i < len(tHeads) && j < len(lHeads) {
		switch {
		case tHeads[i] < lHeads[j]:
			i++
		case tHeads[i] > lHeads[j]:
			j++
		default:
			h := tHeads[i]
			i2 := i + 1
			for i2 < len(tHeads) && tHeads[i2] == h {
				i2++
			}
			j2 := j + 1
			for j2 < len(lHeads) && lHeads[j2] == h {
				j2++
			}
			for jj := j; jj < j2; jj++ {
				leg := lArcs[jj]
				cand := base + o.arcs[leg].cost
				if math.IsInf(cand, 1) {
					continue
				}
				for ii := i; ii < i2; ii++ {
					if dirty[p.topIndex[tArcs[ii]]] == 0 {
						continue
					}
					if a := &o.arcs[tArcs[ii]]; cand < a.cost {
						a.cost = cand
						if fixedIsA {
							a.childA, a.childB = fixedLeg, leg
						} else {
							a.childA, a.childB = leg, fixedLeg
						}
					}
				}
			}
			i, j = i2, j2
		}
	}
}

// cellPass runs the bottom-up triangle pass over cell c's interior nodes in
// rank order. Targets owned by the cell are relaxed in place; targets owned
// by the top layer (segments of boundary neighbours) are accumulated into
// the returned export list instead, keyed and sorted by arena index.
func (o *Overlay) cellPass(c int) []topExport {
	p := o.part
	acc := exportAcc{
		cost:   make([]float64, p.numTop),
		childA: make([]int32, p.numTop),
		childB: make([]int32, p.numTop),
	}
	for i := range acc.cost {
		acc.cost[i] = math.Inf(1)
	}
	for _, v := range p.cellRank[c] {
		bw0, bw1 := o.bwdOff[v], o.bwdOff[v+1]
		fw0, fw1 := o.fwdOff[v], o.fwdOff[v+1]
		if bw0 == bw1 || fw0 == fw1 {
			continue
		}
		// See customize for the triangle orientation; the only difference
		// here is the target segment's owner deciding in-place vs export.
		// A neighbour u of interior v is either an interior of the same
		// cell (its segment is cell-c arcs) or a boundary node (its segment
		// is top arcs) — never an interior of another cell.
		for j := bw0; j < bw1; j++ {
			u := o.bwdTo[j]
			aUV := o.bwdArc[j]
			cUV := o.arcs[aUV].cost
			if math.IsInf(cUV, 1) {
				continue
			}
			tHeads := o.fwdTo[o.fwdOff[u]:o.fwdOff[u+1]]
			tArcs := o.fwdArc[o.fwdOff[u]:o.fwdOff[u+1]]
			if p.isBoundary[u] {
				o.mergeRelaxExport(tHeads, tArcs, o.fwdTo[fw0:fw1], o.fwdArc[fw0:fw1], cUV, aUV, true, &acc)
			} else {
				o.mergeRelax(tHeads, tArcs, o.fwdTo[fw0:fw1], o.fwdArc[fw0:fw1], cUV, aUV, true)
			}
		}
		for k := fw0; k < fw1; k++ {
			w := o.fwdTo[k]
			aVW := o.fwdArc[k]
			cVW := o.arcs[aVW].cost
			if math.IsInf(cVW, 1) {
				continue
			}
			tHeads := o.bwdTo[o.bwdOff[w]:o.bwdOff[w+1]]
			tArcs := o.bwdArc[o.bwdOff[w]:o.bwdOff[w+1]]
			if p.isBoundary[w] {
				o.mergeRelaxExport(tHeads, tArcs, o.bwdTo[bw0:bw1], o.bwdArc[bw0:bw1], cVW, aVW, false, &acc)
			} else {
				o.mergeRelax(tHeads, tArcs, o.bwdTo[bw0:bw1], o.bwdArc[bw0:bw1], cVW, aVW, false)
			}
		}
	}
	if len(acc.touched) == 0 {
		return nil
	}
	// Dense top indices follow arena order, so sorting them makes the
	// export list — and therefore the fold — deterministic.
	sort.Slice(acc.touched, func(i, j int) bool { return acc.touched[i] < acc.touched[j] })
	out := make([]topExport, len(acc.touched))
	for i, ti := range acc.touched {
		out[i] = topExport{
			arc:    p.topArcs[ti],
			childA: acc.childA[ti],
			childB: acc.childB[ti],
			cost:   acc.cost[ti],
		}
	}
	return out
}

// topPass runs the triangle pass over the boundary nodes in rank order. By
// the rank layering every neighbour of a boundary node with a higher rank is
// itself a boundary node, so every leg and every target is a top arc and the
// relaxations write in place.
func (o *Overlay) topPass() {
	for _, v := range o.part.boundaryByRank {
		bw0, bw1 := o.bwdOff[v], o.bwdOff[v+1]
		fw0, fw1 := o.fwdOff[v], o.fwdOff[v+1]
		if bw0 == bw1 || fw0 == fw1 {
			continue
		}
		for j := bw0; j < bw1; j++ {
			u := o.bwdTo[j]
			aUV := o.bwdArc[j]
			cUV := o.arcs[aUV].cost
			if math.IsInf(cUV, 1) {
				continue
			}
			o.mergeRelax(
				o.fwdTo[o.fwdOff[u]:o.fwdOff[u+1]], o.fwdArc[o.fwdOff[u]:o.fwdOff[u+1]],
				o.fwdTo[fw0:fw1], o.fwdArc[fw0:fw1],
				cUV, aUV, true)
		}
		for k := fw0; k < fw1; k++ {
			w := o.fwdTo[k]
			aVW := o.fwdArc[k]
			cVW := o.arcs[aVW].cost
			if math.IsInf(cVW, 1) {
				continue
			}
			o.mergeRelax(
				o.bwdTo[o.bwdOff[w]:o.bwdOff[w+1]], o.bwdArc[o.bwdOff[w]:o.bwdOff[w+1]],
				o.bwdTo[bw0:bw1], o.bwdArc[bw0:bw1],
				cVW, aVW, false)
		}
	}
}

// mergeRelaxExport is mergeRelax with the write side redirected: the target
// segment is owned by the top layer, so improvements go to the cell's export
// accumulator (compared against the accumulator, not the arena — the arena's
// top costs belong to other cells' metrics until the fold) instead of the
// arena.
func (o *Overlay) mergeRelaxExport(tHeads []roadnet.NodeID, tArcs []int32,
	lHeads []roadnet.NodeID, lArcs []int32,
	base float64, fixedLeg int32, fixedIsA bool, acc *exportAcc) {
	p := o.part
	i, j := 0, 0
	for i < len(tHeads) && j < len(lHeads) {
		switch {
		case tHeads[i] < lHeads[j]:
			i++
		case tHeads[i] > lHeads[j]:
			j++
		default:
			h := tHeads[i]
			i2 := i + 1
			for i2 < len(tHeads) && tHeads[i2] == h {
				i2++
			}
			j2 := j + 1
			for j2 < len(lHeads) && lHeads[j2] == h {
				j2++
			}
			for jj := j; jj < j2; jj++ {
				leg := lArcs[jj]
				cand := base + o.arcs[leg].cost
				if math.IsInf(cand, 1) {
					continue
				}
				for ii := i; ii < i2; ii++ {
					ti := p.topIndex[tArcs[ii]]
					if cand < acc.cost[ti] {
						if math.IsInf(acc.cost[ti], 1) {
							acc.touched = append(acc.touched, ti)
						}
						acc.cost[ti] = cand
						if fixedIsA {
							acc.childA[ti], acc.childB[ti] = fixedLeg, leg
						} else {
							acc.childA[ti], acc.childB[ti] = leg, fixedLeg
						}
					}
				}
			}
			i, j = i2, j2
		}
	}
}

// mergeRelax walks two head-sorted CSR segments in lockstep — the *target*
// segment holding the arcs to relax and the *leg* segment holding v's arcs
// supplying the triangle's second edge — and, for every common head, lowers
// each target arc to base + leg cost. fixedLeg is the triangle edge shared
// by every relaxation of this call (the u→v in-leg when targets are fwd[u],
// the v→w out-leg when targets are bwd[w]); fixedIsA says whether it becomes
// childA (travel-order first half) or childB of an improved arc. Duplicate
// heads on either side (parallel arcs) are cross-relaxed blockwise.
func (o *Overlay) mergeRelax(tHeads []roadnet.NodeID, tArcs []int32,
	lHeads []roadnet.NodeID, lArcs []int32,
	base float64, fixedLeg int32, fixedIsA bool) {
	i, j := 0, 0
	for i < len(tHeads) && j < len(lHeads) {
		switch {
		case tHeads[i] < lHeads[j]:
			i++
		case tHeads[i] > lHeads[j]:
			j++
		default:
			h := tHeads[i]
			i2 := i + 1
			for i2 < len(tHeads) && tHeads[i2] == h {
				i2++
			}
			j2 := j + 1
			for j2 < len(lHeads) && lHeads[j2] == h {
				j2++
			}
			for jj := j; jj < j2; jj++ {
				leg := lArcs[jj]
				cand := base + o.arcs[leg].cost
				if math.IsInf(cand, 1) {
					continue
				}
				for ii := i; ii < i2; ii++ {
					if a := &o.arcs[tArcs[ii]]; cand < a.cost {
						a.cost = cand
						if fixedIsA {
							a.childA, a.childB = fixedLeg, leg
						} else {
							a.childA, a.childB = leg, fixedLeg
						}
					}
				}
			}
			i, j = i2, j2
		}
	}
}
