package ch

import (
	"fmt"
	"math"

	"opaque/internal/roadnet"
)

// This file is the re-customizable weight layer of the overlay — the half a
// live weight update refreshes. The frozen half (contraction order, shortcut
// structure, the two upward CSR views) never changes after Build; what a
// weight update invalidates is every arc cost and every shortcut's unpack
// provenance, and both are recomputed here with the bottom-up triangle pass
// of customizable contraction hierarchies:
//
//	for each node v in increasing contraction rank:
//	    for each arena arc u→v with rank(u) > rank(v)   (v's upward in-arcs)
//	    for each arena arc v→w with rank(w) > rank(v)   (v's upward out-arcs)
//	        relax every arena arc u→w with cost(u→v) + cost(v→w)
//
// Processing nodes bottom-up makes every arc final before it is used as a
// triangle leg: the legs u→v and v→w have lower endpoint v, and all
// triangles that could still improve them route through nodes ranked below
// v, which were already processed. Customizable contraction guarantees the
// structure is closed under these triangles (contracting v inserted an arc
// x→w for every in/out pair), which is exactly the property that makes the
// relaxation sufficient for any weight assignment: after the pass, every
// shortest path of the current graph is realised by an up-down path over
// the overlay, so the bidirectional query and the many-to-many sweeps
// return current-graph distances.
//
// When a relaxation improves an arc it also rewrites the arc's unpack
// children to the two triangle legs, so path unpacking follows the metric:
// a "direct" road segment undercut by a detour through a lower-ranked node
// unpacks into that detour. Recursion terminates because a child's via node
// is always ranked below both of its endpoints.
//
// The pass is linear in the number of triangles of the structure — on
// road-shaped graphs a few multiples of the arena size — and runs orders of
// magnitude faster than a re-contraction (experiment E16 measures the
// ratio), which is the whole point: weight updates cost milliseconds, not a
// rebuild.

// Recustomize derives a fresh overlay whose weight layer matches g's current
// arc costs, sharing the frozen topology (ranks, levels, CSR structure) with
// the receiver. The receiver is not modified and keeps serving its own
// metric; callers swap the returned overlay in atomically.
//
// g must be weight-update-compatible with the overlay's source graph: same
// node count, same arc structure (topology checksum), only costs may differ.
// The overlay must have been built customizable (BuildCustomizable); a
// witness-pruned overlay's shortcut set is bound to the metric it was
// contracted under and cannot be refreshed without a full Build.
func (o *Overlay) Recustomize(g *roadnet.Graph) (*Overlay, error) {
	if !o.customizable {
		return nil, fmt.Errorf("ch: overlay was built witness-pruned and cannot be re-customized; rebuild with BuildCustomizable to absorb weight updates")
	}
	if g == nil {
		return nil, fmt.Errorf("ch: recustomize against nil graph")
	}
	if g.NumNodes() != o.n || g.NumArcs() != o.graphArcs {
		return nil, fmt.Errorf("ch: overlay topology is %d nodes/%d arcs, graph has %d/%d",
			o.n, o.graphArcs, g.NumNodes(), g.NumArcs())
	}
	if ts := g.TopologyChecksum(); ts != o.topoSum {
		return nil, fmt.Errorf("ch: graph topology checksum %016x does not match overlay topology %016x (arc structure changed; weight updates may only change costs)", ts, o.topoSum)
	}
	out := &Overlay{
		n:            o.n,
		nOriginal:    o.nOriginal,
		rank:         o.rank,
		level:        o.level,
		arcs:         append([]arc(nil), o.arcs...),
		fwdOff:       o.fwdOff,
		bwdOff:       o.bwdOff,
		fwdTo:        o.fwdTo,
		bwdTo:        o.bwdTo,
		fwdArc:       o.fwdArc,
		bwdArc:       o.bwdArc,
		fwdCost:      make([]float64, len(o.fwdCost)),
		bwdCost:      make([]float64, len(o.bwdCost)),
		graphArcs:    o.graphArcs,
		checksum:     GraphChecksum(g),
		topoSum:      o.topoSum,
		customizable: true,
	}
	if err := out.customize(g); err != nil {
		return nil, err
	}
	return out, nil
}

// customizeInPlace is the build-time variant: the overlay is still private
// to the builder, so the pass runs directly on its arrays. It panics on the
// structural errors customize reports, which for a freshly contracted arena
// are internal invariant violations.
func (o *Overlay) customizeInPlace(g *roadnet.Graph) {
	if err := o.customize(g); err != nil {
		panic(err)
	}
}

// customize recomputes o.arcs costs and children for g's weights and
// refreshes the CSR cost copies. The caller owns o.arcs, o.fwdCost and
// o.bwdCost exclusively; all other arrays are only read.
func (o *Overlay) customize(g *roadnet.Graph) error {
	// Base weights: original arena arcs take their road segment's current
	// cost, shortcuts start unreachable. The arena seeded originals in CSR
	// order with self-loops dropped, which is re-walked here — and verified
	// arc by arc, so a mismatched graph fails loudly instead of producing a
	// silently wrong metric.
	idx := 0
	for v := 0; v < o.n; v++ {
		for _, ga := range g.Arcs(roadnet.NodeID(v)) {
			if ga.To == roadnet.NodeID(v) {
				continue // self-loops never enter the arena
			}
			if idx >= o.nOriginal {
				return fmt.Errorf("ch: customize: graph has more non-loop arcs than the overlay's %d originals", o.nOriginal)
			}
			a := &o.arcs[idx]
			if a.from != int32(v) || a.to != int32(ga.To) {
				return fmt.Errorf("ch: customize: arena arc %d is %d→%d but graph walk expects %d→%d", idx, a.from, a.to, v, ga.To)
			}
			a.cost = ga.Cost
			a.childA, a.childB = -1, -1
			idx++
		}
	}
	if idx != o.nOriginal {
		return fmt.Errorf("ch: customize: graph has %d non-loop arcs, overlay has %d originals", idx, o.nOriginal)
	}
	for i := o.nOriginal; i < len(o.arcs); i++ {
		o.arcs[i].cost = math.Inf(1)
	}

	// Bottom-up triangle relaxation in contraction order. byRank inverts the
	// rank permutation: byRank[r] is the node contracted r-th.
	byRank := make([]int32, o.n)
	for v, r := range o.rank {
		byRank[r] = int32(v)
	}
	// Each triangle (u→v, v→w) relaxes the arena arc u→w, which is stored
	// under its lower-ranked endpoint: in fwd[u] when rank(w) > rank(u), in
	// bwd[w] otherwise. Both cases are handled as sorted merge-joins against
	// v's own segments (buildCSR keeps every segment head-sorted), so the
	// pass streams contiguous CSR ranges instead of performing a random
	// lookup per triangle — the difference between a memory-latency-bound
	// and a bandwidth-bound customization on tens of millions of triangles.
	for _, v := range byRank {
		bw0, bw1 := o.bwdOff[v], o.bwdOff[v+1]
		fw0, fw1 := o.fwdOff[v], o.fwdOff[v+1]
		if bw0 == bw1 || fw0 == fw1 {
			continue
		}
		// Arcs u→w with rank(u) < rank(w): merge fwd[u] with fwd[v];
		// childA is the in-leg u→v, childB the matched out-leg v→w.
		for j := bw0; j < bw1; j++ {
			u := o.bwdTo[j]
			aUV := o.bwdArc[j]
			cUV := o.arcs[aUV].cost
			if math.IsInf(cUV, 1) {
				continue
			}
			o.mergeRelax(
				o.fwdTo[o.fwdOff[u]:o.fwdOff[u+1]], o.fwdArc[o.fwdOff[u]:o.fwdOff[u+1]],
				o.fwdTo[fw0:fw1], o.fwdArc[fw0:fw1],
				cUV, aUV, true)
		}
		// Arcs u→w with rank(u) > rank(w): merge bwd[w] with bwd[v];
		// childA is the matched in-leg u→v, childB the out-leg v→w.
		for k := fw0; k < fw1; k++ {
			w := o.fwdTo[k]
			aVW := o.fwdArc[k]
			cVW := o.arcs[aVW].cost
			if math.IsInf(cVW, 1) {
				continue
			}
			o.mergeRelax(
				o.bwdTo[o.bwdOff[w]:o.bwdOff[w+1]], o.bwdArc[o.bwdOff[w]:o.bwdOff[w+1]],
				o.bwdTo[bw0:bw1], o.bwdArc[bw0:bw1],
				cVW, aVW, false)
		}
	}

	// A customizable arena cannot hold an unreachable shortcut: the shortcut
	// x→w inserted when contracting v coexists with arena arcs x→v and v→w,
	// so its own triangle always relaxes it to a finite cost.
	for i := o.nOriginal; i < len(o.arcs); i++ {
		if math.IsInf(o.arcs[i].cost, 1) {
			return fmt.Errorf("ch: customize: shortcut %d (%d→%d) has no supporting triangle", i, o.arcs[i].from, o.arcs[i].to)
		}
	}

	// Refresh the flat CSR cost copies the query inner loops read.
	for i, ai := range o.fwdArc {
		o.fwdCost[i] = o.arcs[ai].cost
	}
	for i, ai := range o.bwdArc {
		o.bwdCost[i] = o.arcs[ai].cost
	}
	return nil
}

// mergeRelax walks two head-sorted CSR segments in lockstep — the *target*
// segment holding the arcs to relax and the *leg* segment holding v's arcs
// supplying the triangle's second edge — and, for every common head, lowers
// each target arc to base + leg cost. fixedLeg is the triangle edge shared
// by every relaxation of this call (the u→v in-leg when targets are fwd[u],
// the v→w out-leg when targets are bwd[w]); fixedIsA says whether it becomes
// childA (travel-order first half) or childB of an improved arc. Duplicate
// heads on either side (parallel arcs) are cross-relaxed blockwise.
func (o *Overlay) mergeRelax(tHeads []roadnet.NodeID, tArcs []int32,
	lHeads []roadnet.NodeID, lArcs []int32,
	base float64, fixedLeg int32, fixedIsA bool) {
	i, j := 0, 0
	for i < len(tHeads) && j < len(lHeads) {
		switch {
		case tHeads[i] < lHeads[j]:
			i++
		case tHeads[i] > lHeads[j]:
			j++
		default:
			h := tHeads[i]
			i2 := i + 1
			for i2 < len(tHeads) && tHeads[i2] == h {
				i2++
			}
			j2 := j + 1
			for j2 < len(lHeads) && lHeads[j2] == h {
				j2++
			}
			for jj := j; jj < j2; jj++ {
				leg := lArcs[jj]
				cand := base + o.arcs[leg].cost
				if math.IsInf(cand, 1) {
					continue
				}
				for ii := i; ii < i2; ii++ {
					if a := &o.arcs[tArcs[ii]]; cand < a.cost {
						a.cost = cand
						if fixedIsA {
							a.childA, a.childB = fixedLeg, leg
						} else {
							a.childA, a.childB = leg, fixedLeg
						}
					}
				}
			}
			i, j = i2, j2
		}
	}
}
