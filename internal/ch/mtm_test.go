package ch

import (
	"bytes"
	"math"
	"math/rand"
	"sync"
	"testing"

	"opaque/internal/roadnet"
	"opaque/internal/search"
	"opaque/internal/storage"
)

// randomComponentsGraph builds a graph of k islands, each a randomIntCostGraph-
// style strongly connected component, with no arcs between islands — so
// cross-island table cells must come out +Inf.
func randomComponentsGraph(t *testing.T, k, nodesPer, extraPer int, seed int64) *roadnet.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	n := k * nodesPer
	g := roadnet.NewGraph(n, 2*n+k*extraPer)
	for i := 0; i < n; i++ {
		g.AddNode(rng.Float64()*1000, rng.Float64()*1000)
	}
	for c := 0; c < k; c++ {
		base := c * nodesPer
		perm := rng.Perm(nodesPer)
		for i := 1; i < nodesPer; i++ {
			g.MustAddBidirectionalEdge(roadnet.NodeID(base+perm[i-1]), roadnet.NodeID(base+perm[i]), float64(1+rng.Intn(20)))
		}
		for i := 0; i < extraPer; i++ {
			a := roadnet.NodeID(base + rng.Intn(nodesPer))
			b := roadnet.NodeID(base + rng.Intn(nodesPer))
			g.MustAddEdge(a, b, float64(1+rng.Intn(20)))
		}
	}
	g.Freeze()
	return g
}

// randomEndpointSet draws k node IDs, deliberately allowing duplicates.
func randomEndpointSet(rng *rand.Rand, n, k int) []roadnet.NodeID {
	out := make([]roadnet.NodeID, k)
	for i := range out {
		out[i] = roadnet.NodeID(rng.Intn(n))
	}
	return out
}

// checkTableAgainstReference asserts every cell of an MTM evaluation —
// distance-only and path-capable — equals per-pair ReferenceDijkstra on the
// same graph, and that every finite cell's path is a valid route realising
// exactly the cell distance.
func checkTableAgainstReference(t *testing.T, g *roadnet.Graph, m *MTM, sources, targets []roadnet.NodeID) {
	t.Helper()
	acc := storage.NewMemoryGraph(g)
	dists, _, err := m.Distances(sources, targets)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := m.Table(sources, targets)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range sources {
		for j, d := range targets {
			want, _, err := search.ReferenceDijkstra(acc, s, d)
			if err != nil {
				t.Fatal(err)
			}
			wantDist := want.Cost
			if len(want.Nodes) == 0 && s != d {
				wantDist = math.Inf(1)
			}
			got := dists[i*len(targets)+j]
			if got != wantDist {
				t.Fatalf("cell (%d,%d) nodes (%d,%d): MTM distance %v, reference %v", i, j, s, d, got, wantDist)
			}
			if tbl.Dist(i, j) != wantDist {
				t.Fatalf("cell (%d,%d): Table distance %v, reference %v", i, j, tbl.Dist(i, j), wantDist)
			}
			p := tbl.Path(i, j)
			if math.IsInf(wantDist, 1) {
				if len(p.Nodes) != 0 {
					t.Fatalf("cell (%d,%d) unreachable but Table returned path %v", i, j, p.Nodes)
				}
				continue
			}
			if p.Cost != wantDist {
				t.Fatalf("cell (%d,%d): Table path cost %v, reference %v", i, j, p.Cost, wantDist)
			}
			checkPathValid(t, g, s, d, p)
		}
	}
}

// TestMTMMatchesReferenceExact is the core many-to-many property on
// integer-cost random graphs: every cell of the table — duplicates, s == t
// cells and all — is byte-identical to per-pair reference Dijkstra, and
// every recorded path is a valid route.
func TestMTMMatchesReferenceExact(t *testing.T) {
	cases := []struct {
		n, extra int
		seed     int64
	}{
		{n: 30, extra: 40, seed: 101},
		{n: 120, extra: 150, seed: 102},
		{n: 300, extra: 200, seed: 103},
		{n: 80, extra: 0, seed: 104},   // tree-ish: unique paths
		{n: 50, extra: 400, seed: 105}, // dense: many witnesses
	}
	for _, tc := range cases {
		g := randomIntCostGraph(t, tc.n, tc.extra, tc.seed)
		o, err := Build(g)
		if err != nil {
			t.Fatalf("Build(n=%d): %v", tc.n, err)
		}
		m := NewMTM(o, nil)
		rng := rand.New(rand.NewSource(tc.seed * 31))
		for round := 0; round < 4; round++ {
			sources := randomEndpointSet(rng, tc.n, 1+rng.Intn(6))
			targets := randomEndpointSet(rng, tc.n, 1+rng.Intn(6))
			// Force degenerate cells into the mix: a source that is also a
			// target.
			if round == 0 {
				targets[0] = sources[0]
			}
			checkTableAgainstReference(t, g, m, sources, targets)
		}
	}
}

// TestMTMDisconnectedPairs evaluates tables spanning strongly connected
// islands with no arcs between them: cross-island cells must be +Inf (and
// pathless) while intra-island cells stay exact.
func TestMTMDisconnectedPairs(t *testing.T) {
	g := randomComponentsGraph(t, 3, 40, 50, 201)
	o, err := Build(g)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMTM(o, nil)
	// Sources from island 0 and 1, targets from island 1 and 2: the table
	// mixes reachable and unreachable cells in both rows and columns.
	sources := []roadnet.NodeID{3, 17, 41, 62}
	targets := []roadnet.NodeID{45, 70, 81, 99, 110}
	checkTableAgainstReference(t, g, m, sources, targets)
}

// TestMTMAfterRoundTrip re-runs the reference property on an overlay that
// went through the OCH1 save/load round trip.
func TestMTMAfterRoundTrip(t *testing.T) {
	g := randomIntCostGraph(t, 150, 180, 301)
	o, err := Build(g)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(o, &buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	m := NewMTM(loaded, nil)
	rng := rand.New(rand.NewSource(302))
	for round := 0; round < 3; round++ {
		checkTableAgainstReference(t, g, m,
			randomEndpointSet(rng, 150, 2+rng.Intn(5)),
			randomEndpointSet(rng, 150, 2+rng.Intn(5)))
	}
}

// TestMTMConcurrentTables runs many tables on one shared engine from
// concurrent goroutines and asserts each matches its precomputed expectation
// — the race detector makes this the concurrency-safety proof.
func TestMTMConcurrentTables(t *testing.T) {
	g := randomIntCostGraph(t, 200, 250, 401)
	acc := storage.NewMemoryGraph(g)
	o, err := Build(g)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMTM(o, nil)

	type job struct {
		sources, targets []roadnet.NodeID
		want             []float64
	}
	rng := rand.New(rand.NewSource(402))
	jobs := make([]job, 12)
	for k := range jobs {
		sources := randomEndpointSet(rng, 200, 2+rng.Intn(4))
		targets := randomEndpointSet(rng, 200, 2+rng.Intn(4))
		want := make([]float64, len(sources)*len(targets))
		for i, s := range sources {
			for j, d := range targets {
				p, _, err := search.ReferenceDijkstra(acc, s, d)
				if err != nil {
					t.Fatal(err)
				}
				if len(p.Nodes) == 0 && s != d {
					want[i*len(targets)+j] = math.Inf(1)
				} else {
					want[i*len(targets)+j] = p.Cost
				}
			}
		}
		jobs[k] = job{sources: sources, targets: targets, want: want}
	}

	var wg sync.WaitGroup
	errs := make(chan error, len(jobs)*3)
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, jb := range jobs {
				got, _, err := m.Distances(jb.sources, jb.targets)
				if err != nil {
					errs <- err
					return
				}
				for c := range got {
					if got[c] != jb.want[c] {
						t.Errorf("concurrent table cell %d: got %v, want %v", c, got[c], jb.want[c])
						return
					}
				}
				tbl, err := m.Table(jb.sources, jb.targets)
				if err != nil {
					errs <- err
					return
				}
				for i := range jb.sources {
					for j := range jb.targets {
						if tbl.Dist(i, j) != jb.want[i*len(jb.targets)+j] {
							t.Errorf("concurrent Table cell (%d,%d) diverged", i, j)
							return
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestMTMDistancesAllocFree pins the steady-state allocation contract of the
// distance-only table: with a reused output buffer, evaluations perform zero
// heap allocations.
func TestMTMDistancesAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates and defeats sync.Pool reuse")
	}
	g := randomIntCostGraph(t, 400, 500, 501)
	o, err := Build(g)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMTM(o, nil)
	sources := []roadnet.NodeID{1, 40, 80, 120, 160, 200, 240, 280}
	targets := []roadnet.NodeID{5, 45, 85, 125, 165, 205, 245, 285}
	var dst []float64
	for i := 0; i < 4; i++ { // warm the state and workspace pools
		if dst, _, err = m.DistancesInto(dst, sources, targets); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(30, func() {
		if dst, _, err = m.DistancesInto(dst, sources, targets); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("distance-only table allocated %v times per run, want 0", allocs)
	}
}

// TestMTMEdgeCases covers input validation and the TableEngine accessor
// binding rules.
func TestMTMEdgeCases(t *testing.T) {
	g := randomIntCostGraph(t, 60, 60, 601)
	o, err := Build(g)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMTM(o, nil)

	if _, _, err := m.Distances(nil, []roadnet.NodeID{1}); err == nil {
		t.Fatal("empty source set accepted")
	}
	if _, _, err := m.Distances([]roadnet.NodeID{1}, nil); err == nil {
		t.Fatal("empty target set accepted")
	}
	if _, _, err := m.Distances([]roadnet.NodeID{-1}, []roadnet.NodeID{1}); err == nil {
		t.Fatal("negative source accepted")
	}
	if _, _, err := m.Distances([]roadnet.NodeID{1}, []roadnet.NodeID{99}); err == nil {
		t.Fatal("out-of-range target accepted")
	}
	if _, err := m.Table([]roadnet.NodeID{1}, []roadnet.NodeID{99}); err == nil {
		t.Fatal("Table accepted an out-of-range target")
	}

	// s == t resolves to the degenerate single-node path.
	tbl, err := m.Table([]roadnet.NodeID{7}, []roadnet.NodeID{7})
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Dist(0, 0) != 0 {
		t.Fatalf("s==t distance = %v, want 0", tbl.Dist(0, 0))
	}
	if p := tbl.Path(0, 0); len(p.Nodes) != 1 || p.Nodes[0] != 7 || p.Cost != 0 {
		t.Fatalf("s==t path = %v", p)
	}

	// TableEngine accessor binding: filtered accessors are rejected, a
	// mismatched graph is rejected, the matching one passes (twice, to cover
	// the memoised path) and the distance-only face carries no paths.
	acc := storage.NewMemoryGraph(g)
	filtered := storage.NewFilteredGraph(acc, storage.AvoidNodes(1))
	if _, err := m.EvaluateTable(filtered, []roadnet.NodeID{2}, []roadnet.NodeID{3}); err == nil {
		t.Fatal("filtered accessor accepted")
	}
	other := randomIntCostGraph(t, 60, 60, 602)
	if _, err := m.EvaluateTable(storage.NewMemoryGraph(other), []roadnet.NodeID{2}, []roadnet.NodeID{3}); err == nil {
		t.Fatal("accessor for a different graph accepted")
	}
	for i := 0; i < 2; i++ {
		res, err := m.EvaluateTable(acc, []roadnet.NodeID{2, 7}, []roadnet.NodeID{3, 9})
		if err != nil {
			t.Fatalf("matching accessor rejected on call %d: %v", i+1, err)
		}
		if !res.HasPaths() {
			t.Fatal("EvaluateTable result has no paths")
		}
		if d, ok := res.Distance(2, 3); !ok || math.IsInf(d, 1) {
			t.Fatalf("Distance(2,3) = %v, %v", d, ok)
		}
	}
	res, err := m.EvaluateDistances(acc, []roadnet.NodeID{2, 7}, []roadnet.NodeID{3, 9})
	if err != nil {
		t.Fatal(err)
	}
	if res.HasPaths() {
		t.Fatal("EvaluateDistances materialised paths")
	}
	if _, ok := res.Path(2, 3); ok {
		t.Fatal("distance-only result claims to hold a path")
	}
	if d, ok := res.Distance(2, 3); !ok || math.IsInf(d, 1) {
		t.Fatalf("distance-only Distance(2,3) = %v, %v", d, ok)
	}

	// Instrumentation moved.
	st := m.Stats()
	if st.Tables == 0 || st.BucketEntries == 0 || st.ArenaHighWater == 0 {
		t.Fatalf("engine stats did not accumulate: %+v", st)
	}
}
