package ch

import (
	"fmt"
	"math"

	"opaque/internal/pqueue"
	"opaque/internal/roadnet"
)

// BuildConfig tunes the offline contraction pass. The zero value is
// normalised to DefaultBuildConfig by Build.
type BuildConfig struct {
	// WitnessSettleLimit bounds every witness search to this many settled
	// nodes. A search that exhausts the budget before ruling a shortcut out
	// inserts it anyway — a correct but possibly redundant arc — so the
	// limit trades overlay size for preprocessing time. Values below 1 use
	// the default (64, plenty on road-shaped graphs whose witness paths are
	// short detours). Ignored when Customizable is set (no witness searches
	// run at all).
	WitnessSettleLimit int
	// Customizable switches the contraction to metric-independent mode:
	// every in/out neighbour pair of a contracted node gets a shortcut
	// (unless an arc between the pair already exists), with no witness
	// pruning, and the arc weights are derived afterwards by the bottom-up
	// customization pass (customize.go). The overlay carries more shortcuts
	// than a witness-pruned one, but its shortcut *structure* is valid for
	// any weight assignment on the same topology — a live weight update is
	// absorbed by Overlay.Recustomize in milliseconds instead of a full
	// re-contraction.
	Customizable bool
	// Partition makes the contraction partition-aware: nodes are contracted
	// cell by cell (each cell's interior nodes form one lazy-ordered group)
	// with every boundary node last, so each cell's interiors occupy a
	// contiguous rank range below all boundary ranks. The overlay then
	// classifies every arena arc into a per-cell weight layer or the
	// boundary top layer (partition.go). Combined with Customizable this
	// unlocks Overlay.RecustomizeIncremental: a weight update re-customizes
	// only the cells it touches. The partition must have been built for the
	// same graph being contracted.
	Partition *roadnet.Partition
}

// DefaultBuildConfig returns the contraction parameters used when none are
// given.
func DefaultBuildConfig() BuildConfig {
	return BuildConfig{WitnessSettleLimit: 64}
}

// Build runs the offline contraction pass over a frozen graph and returns
// the overlay, using DefaultBuildConfig. Preprocessing cost is roughly
// O(n · witness budget) heap operations; on the repository's synthetic road
// networks it contracts tens of thousands of nodes per second.
func Build(g *roadnet.Graph) (*Overlay, error) {
	return BuildWithConfig(g, DefaultBuildConfig())
}

// BuildCustomizable runs the metric-independent contraction pass (see
// BuildConfig.Customizable): the returned overlay answers queries exactly
// like a witness-pruned one, and additionally supports Recustomize after
// live weight updates.
func BuildCustomizable(g *roadnet.Graph) (*Overlay, error) {
	cfg := DefaultBuildConfig()
	cfg.Customizable = true
	return BuildWithConfig(g, cfg)
}

// BuildCustomizablePartitioned runs the metric-independent contraction pass
// with partition-aware node ordering (see BuildConfig.Partition): the
// returned overlay additionally supports cell-local re-customization via
// RecustomizeIncremental. p must have been built for g.
func BuildCustomizablePartitioned(g *roadnet.Graph, p *roadnet.Partition) (*Overlay, error) {
	cfg := DefaultBuildConfig()
	cfg.Customizable = true
	cfg.Partition = p
	return BuildWithConfig(g, cfg)
}

// BuildWithConfig is Build with explicit contraction parameters.
func BuildWithConfig(g *roadnet.Graph, cfg BuildConfig) (*Overlay, error) {
	if g == nil || g.NumNodes() == 0 {
		return nil, fmt.Errorf("ch: need a non-empty graph to contract")
	}
	if !g.Frozen() {
		return nil, fmt.Errorf("ch: graph must be frozen before contraction")
	}
	if cfg.WitnessSettleLimit < 1 {
		cfg.WitnessSettleLimit = DefaultBuildConfig().WitnessSettleLimit
	}
	if p := cfg.Partition; p != nil && len(p.Assignment()) != g.NumNodes() {
		return nil, fmt.Errorf("ch: partition covers %d nodes, graph has %d", len(p.Assignment()), g.NumNodes())
	}
	b := newBuilder(g, cfg)
	b.contractAll()
	return b.finish(), nil
}

// builder holds the mutable state of one contraction pass: the growing arc
// arena, the dynamic adjacency over it, the contraction bookkeeping and the
// epoch-stamped witness-search scratch arrays.
type builder struct {
	g   *roadnet.Graph
	n   int
	cfg BuildConfig

	arcs      []arc     // arena: original arcs first, shortcuts appended
	nOriginal int       // seeded original-arc count (arena prefix length)
	out       [][]int32 // per node: arena indices of out-arcs (stale entries allowed)
	in        [][]int32 // per node: arena indices of in-arcs

	contracted []bool
	rank       []int32
	level      []int32
	deleted    []int32 // number of already-contracted neighbours
	order      int32

	// Witness-search scratch, epoch-stamped like search.Workspace so each
	// of the O(n) witness runs resets in O(1).
	wdist  []float64
	wstamp []uint32
	wepoch uint32
	wheap  *pqueue.DenseHeap

	// Per-contraction scratch: the minimal in/out neighbour sets of the
	// node being contracted, reused across calls.
	ins  []neighbour
	outs []neighbour

	// simulate caches its result so the contraction that immediately
	// follows a priority recomputation does not repeat the witness
	// searches: simNode is the node pending describes, -1 when stale.
	simNode int32
	pending []pendingShortcut
}

// pendingShortcut is one shortcut a simulated contraction found necessary.
type pendingShortcut struct {
	x, w neighbour
	cost float64
}

// neighbour is one entry of a contraction candidate's minimal neighbour set:
// the cheapest live arc between the contracted node and node id.
type neighbour struct {
	id      int32
	cost    float64
	arenaID int32
}

func newBuilder(g *roadnet.Graph, cfg BuildConfig) *builder {
	n := g.NumNodes()
	b := &builder{
		g:          g,
		n:          n,
		cfg:        cfg,
		out:        make([][]int32, n),
		in:         make([][]int32, n),
		contracted: make([]bool, n),
		rank:       make([]int32, n),
		level:      make([]int32, n),
		deleted:    make([]int32, n),
		wdist:      make([]float64, n),
		wstamp:     make([]uint32, n),
		wheap:      pqueue.NewDenseHeap(n),
		simNode:    -1,
	}
	// Seed the arena with the original arcs. Self-loops are dropped: with
	// non-negative costs they can never lie on a shortest path, and keeping
	// them out makes every arena arc connect two distinctly ranked nodes.
	for v := 0; v < n; v++ {
		for _, a := range g.Arcs(roadnet.NodeID(v)) {
			if a.To == roadnet.NodeID(v) {
				continue
			}
			idx := int32(len(b.arcs))
			b.arcs = append(b.arcs, arc{from: int32(v), to: int32(a.To), childA: -1, childB: -1, cost: a.Cost})
			b.out[v] = append(b.out[v], idx)
			b.in[a.To] = append(b.in[a.To], idx)
		}
	}
	b.nOriginal = len(b.arcs)
	return b
}

// contractAll orders and contracts every node. Without a partition every
// node competes in one lazy-ordered queue; with one, each cell's interior
// nodes form their own group contracted to completion before the next cell
// starts, and all boundary nodes come last — giving every cell a contiguous
// rank range below every boundary rank, which is the layering cell-local
// re-customization depends on.
func (b *builder) contractAll() {
	p := b.cfg.Partition
	if p == nil {
		group := make([]int32, b.n)
		for v := range group {
			group[v] = int32(v)
		}
		b.contractGroup(group)
		return
	}
	var group []int32
	for c := 0; c < p.NumCells(); c++ {
		group = group[:0]
		for _, v := range p.CellNodes(c) {
			if !p.IsBoundary(v) {
				group = append(group, int32(v))
			}
		}
		b.contractGroup(group)
	}
	group = group[:0]
	for v := 0; v < b.n; v++ {
		if p.IsBoundary(roadnet.NodeID(v)) {
			group = append(group, int32(v))
		}
	}
	b.contractGroup(group)
}

// contractGroup orders and contracts the given nodes. Ordering is lazy: the
// queue holds possibly stale priorities; the top node's priority is
// recomputed on pop and the node is re-queued if it no longer belongs at the
// front.
func (b *builder) contractGroup(nodes []int32) {
	if len(nodes) == 0 {
		return
	}
	queue := pqueue.NewDenseHeap(b.n)
	for _, v := range nodes {
		queue.Push(v, b.priority(v))
	}
	last := int32(-1)
	for !queue.Empty() {
		it := queue.Pop()
		v := it.Value
		p := b.priority(v)
		// Re-queue when the recomputed priority falls behind the next
		// candidate — unless v was just re-queued, which guards against
		// livelock between candidates with oscillating equal priorities.
		if !queue.Empty() && p > queue.Peek().Priority && v != last {
			queue.Push(v, p)
			last = v
			continue
		}
		last = -1
		b.contract(v)
	}
}

// priority returns the lazy ordering key for v: a blend of edge difference
// (shortcuts the contraction would insert minus arcs it removes), the number
// of already-contracted neighbours, and v's current level. Lower contracts
// earlier.
func (b *builder) priority(v int32) float64 {
	shortcuts := b.simulate(v)
	degree := len(b.ins) + len(b.outs)
	return float64(2*(shortcuts-degree) + int(b.deleted[v]) + int(b.level[v]))
}

// gatherNeighbours fills b.ins and b.outs with the minimal live neighbour
// sets of v: per distinct uncontracted neighbour, the cheapest arena arc.
func (b *builder) gatherNeighbours(v int32) {
	b.ins = b.ins[:0]
	b.outs = b.outs[:0]
	for _, ai := range b.in[v] {
		a := &b.arcs[ai]
		if b.contracted[a.from] || a.from == v {
			continue
		}
		b.ins = addMinNeighbour(b.ins, a.from, a.cost, ai)
	}
	for _, ai := range b.out[v] {
		a := &b.arcs[ai]
		if b.contracted[a.to] || a.to == v {
			continue
		}
		b.outs = addMinNeighbour(b.outs, a.to, a.cost, ai)
	}
}

// addMinNeighbour inserts (id, cost) into set, keeping only the cheapest arc
// per neighbour id. Neighbour sets are tiny (road-network degrees), so the
// linear scan beats any map.
func addMinNeighbour(set []neighbour, id int32, cost float64, arenaID int32) []neighbour {
	for i := range set {
		if set[i].id == id {
			if cost < set[i].cost {
				set[i].cost = cost
				set[i].arenaID = arenaID
			}
			return set
		}
	}
	return append(set, neighbour{id: id, cost: cost, arenaID: arenaID})
}

// contract removes v from the remaining graph: inserts the witnessed
// shortcuts, stamps v's rank, and updates neighbour levels and
// deleted-neighbour counts. The shortcut set comes from the simulate cache
// when the preceding priority recomputation already paid for the witness
// searches — in contractAll that is always the case.
func (b *builder) contract(v int32) {
	if b.simNode != v {
		b.simulate(v)
	}
	for i := range b.pending {
		b.addShortcut(b.pending[i].x, b.pending[i].w, b.pending[i].cost)
	}
	b.simNode = -1
	b.contracted[v] = true
	b.rank[v] = b.order
	b.order++
	bump := func(u int32) {
		b.deleted[u]++
		if b.level[v]+1 > b.level[u] {
			b.level[u] = b.level[v] + 1
		}
	}
	for _, nb := range b.ins {
		bump(nb.id)
	}
	for _, nb := range b.outs {
		// An undirected road segment yields the same neighbour in both
		// sets; only bump nodes not already counted as in-neighbours.
		if !containsNeighbour(b.ins, nb.id) {
			bump(nb.id)
		}
	}
}

func containsNeighbour(set []neighbour, id int32) bool {
	for i := range set {
		if set[i].id == id {
			return true
		}
	}
	return false
}

// simulate enumerates the shortcuts contracting v requires right now into
// b.pending, leaving the graph untouched, and returns their count. In the
// default (witness-pruned) mode those are the pairs (x, w) of in/out
// neighbours whose best path through v is not witnessed by a path avoiding
// v. In customizable mode no witness searches run: every pair without an
// existing live arc x→w needs a shortcut, because the structure must
// preserve distances under *any* future weight assignment, and the cheapest
// witness under one metric proves nothing about the next. simulate fills
// b.ins/b.outs as a side effect; contract consumes both.
func (b *builder) simulate(v int32) int {
	b.pending = b.pending[:0]
	b.simNode = v
	b.gatherNeighbours(v)
	if len(b.ins) == 0 || len(b.outs) == 0 {
		return 0
	}
	if b.cfg.Customizable {
		for _, x := range b.ins {
			for _, w := range b.outs {
				if w.id == x.id || b.arcExists(x.id, w.id) {
					continue
				}
				b.pending = append(b.pending, pendingShortcut{x: x, w: w, cost: x.cost + w.cost})
			}
		}
		return len(b.pending)
	}
	maxOut := 0.0
	for _, nb := range b.outs {
		if nb.cost > maxOut {
			maxOut = nb.cost
		}
	}
	for _, x := range b.ins {
		b.runWitness(x.id, v, x.cost+maxOut)
		for _, w := range b.outs {
			if w.id == x.id {
				continue
			}
			through := x.cost + w.cost
			if b.witnessDist(w.id) <= through {
				continue // a path avoiding v is at least as good
			}
			b.pending = append(b.pending, pendingShortcut{x: x, w: w, cost: through})
		}
	}
	return len(b.pending)
}

// arcExists reports whether any arena arc x→w exists, whatever its cost.
// Customizable contraction needs existence only: the customization pass
// assigns the final weight as a minimum over all lower triangles, so one arc
// per pair suffices and parallels would only inflate the arena.
func (b *builder) arcExists(x, w int32) bool {
	for _, ai := range b.out[x] {
		if b.arcs[ai].to == w {
			return true
		}
	}
	return false
}

// addShortcut inserts the shortcut x→w with the given cost unless a live arc
// x→w that is at least as cheap already exists. The more expensive parallel
// arc, when one exists, is left in place: parallels are harmless to the
// query (Push degrades to a decrease-key) and may be referenced as unpack
// children of earlier shortcuts.
func (b *builder) addShortcut(x, w neighbour, cost float64) {
	for _, ai := range b.out[x.id] {
		a := &b.arcs[ai]
		if a.to == w.id && a.cost <= cost {
			return
		}
	}
	idx := int32(len(b.arcs))
	b.arcs = append(b.arcs, arc{from: x.id, to: w.id, childA: x.arenaID, childB: w.arenaID, cost: cost})
	b.out[x.id] = append(b.out[x.id], idx)
	b.in[w.id] = append(b.in[w.id], idx)
}

// runWitness grows a bounded Dijkstra ball from source on the live graph
// with v excluded, stopping at the witness budget or once the frontier
// passes maxCost. Labels are epoch-stamped; witnessDist reads them.
func (b *builder) runWitness(source, excluded int32, maxCost float64) {
	if b.wepoch == ^uint32(0) {
		for i := range b.wstamp {
			b.wstamp[i] = 0
		}
		b.wepoch = 0
	}
	b.wepoch++
	b.wheap.Reset(b.n)
	b.wdist[source] = 0
	b.wstamp[source] = b.wepoch
	b.wheap.Push(source, 0)
	settled := 0
	for !b.wheap.Empty() {
		it := b.wheap.Pop()
		if it.Priority > maxCost {
			break
		}
		u := it.Value
		if it.Priority > b.wdist[u] {
			continue // stale entry
		}
		settled++
		if settled > b.cfg.WitnessSettleLimit {
			break
		}
		for _, ai := range b.out[u] {
			a := &b.arcs[ai]
			if a.to == excluded || b.contracted[a.to] {
				continue
			}
			nd := it.Priority + a.cost
			if b.wstamp[a.to] != b.wepoch || nd < b.wdist[a.to] {
				b.wdist[a.to] = nd
				b.wstamp[a.to] = b.wepoch
				b.wheap.Push(a.to, nd)
			}
		}
	}
}

// witnessDist returns the latest witness search's distance bound for w
// (+Inf when w was never labelled). Labelled-but-unsettled values are upper
// bounds, which is exactly the conservative direction: an upper bound that
// already beats the shortcut proves the witness.
func (b *builder) witnessDist(w int32) float64 {
	if b.wstamp[w] != b.wepoch {
		return math.Inf(1)
	}
	return b.wdist[w]
}

// finish freezes the builder's output into an immutable Overlay. For a
// customizable build the contraction above fixed only the structure; the
// weight layer (arc costs and unpack children) is derived here by the same
// customization pass a live weight update reruns.
func (b *builder) finish() *Overlay {
	o := &Overlay{
		n:            b.n,
		nOriginal:    b.nOriginal,
		rank:         b.rank,
		level:        b.level,
		arcs:         b.arcs,
		graphArcs:    b.g.NumArcs(),
		checksum:     GraphChecksum(b.g),
		topoSum:      b.g.TopologyChecksum(),
		customizable: b.cfg.Customizable,
	}
	if p := b.cfg.Partition; p != nil {
		cellOf := append([]int32(nil), p.Assignment()...)
		cp, err := deriveChPartition(b.n, b.rank, b.arcs, b.nOriginal, cellOf, p.NumCells())
		if err != nil {
			// The contraction order above guarantees the layering invariants;
			// a violation here is a builder bug, not bad input.
			panic(err)
		}
		o.part = cp
	}
	o.buildCSR()
	if o.customizable {
		o.customizeInPlace(b.g)
	}
	return o
}
