package ch

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"

	"opaque/internal/gen"
	"opaque/internal/roadnet"
	"opaque/internal/search"
	"opaque/internal/storage"
)

// randomIntCostGraph builds a random connected directed graph whose costs are
// small integers. Integer costs make every shortest-path distance exactly
// representable however the additions associate, so CH distances (sums of
// shortcut costs) must be byte-identical to reference Dijkstra distances.
func randomIntCostGraph(t *testing.T, n int, extraArcs int, seed int64) *roadnet.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := roadnet.NewGraph(n, 2*n+extraArcs)
	for i := 0; i < n; i++ {
		g.AddNode(rng.Float64()*1000, rng.Float64()*1000)
	}
	// A bidirectional random chain guarantees strong connectivity.
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		g.MustAddBidirectionalEdge(roadnet.NodeID(perm[i-1]), roadnet.NodeID(perm[i]), float64(1+rng.Intn(20)))
	}
	for i := 0; i < extraArcs; i++ {
		a := roadnet.NodeID(rng.Intn(n))
		b := roadnet.NodeID(rng.Intn(n))
		g.MustAddEdge(a, b, float64(1+rng.Intn(20))) // directed extras, self-loops included
	}
	g.Freeze()
	return g
}

// checkPathValid asserts p is a real route on g from s to t whose arc costs
// sum to its Cost.
func checkPathValid(t *testing.T, g *roadnet.Graph, s, d roadnet.NodeID, p search.Path) {
	t.Helper()
	if len(p.Nodes) == 0 {
		t.Fatalf("empty path for reachable pair (%d,%d)", s, d)
	}
	if p.Nodes[0] != s || p.Nodes[len(p.Nodes)-1] != d {
		t.Fatalf("path (%d,%d) has endpoints %d..%d", s, d, p.Nodes[0], p.Nodes[len(p.Nodes)-1])
	}
	sum := 0.0
	for i := 1; i < len(p.Nodes); i++ {
		c, ok := g.ArcCost(p.Nodes[i-1], p.Nodes[i])
		if !ok {
			t.Fatalf("path (%d,%d) uses nonexistent arc %d→%d", s, d, p.Nodes[i-1], p.Nodes[i])
		}
		sum += c
	}
	if math.Abs(sum-p.Cost) > 1e-9*(1+p.Cost) {
		t.Fatalf("path (%d,%d) cost %v but arcs sum to %v", s, d, p.Cost, sum)
	}
}

// TestCHMatchesReferenceExact is the core correctness property on
// integer-cost random graphs: CH distances are byte-identical to the
// fresh-slice reference Dijkstra for every sampled pair, and CH paths are
// valid routes realising exactly that distance. (Node sequences may differ
// when several shortest paths tie; cost equality is the contract.)
func TestCHMatchesReferenceExact(t *testing.T) {
	cases := []struct {
		n, extra int
		seed     int64
	}{
		{n: 30, extra: 40, seed: 1},
		{n: 120, extra: 150, seed: 2},
		{n: 300, extra: 200, seed: 3},
		{n: 80, extra: 0, seed: 4},   // tree-ish: unique paths
		{n: 50, extra: 400, seed: 5}, // dense: many witnesses
	}
	for _, tc := range cases {
		g := randomIntCostGraph(t, tc.n, tc.extra, tc.seed)
		acc := storage.NewMemoryGraph(g)
		o, err := Build(g)
		if err != nil {
			t.Fatalf("Build(n=%d): %v", tc.n, err)
		}
		eng := NewEngine(o, nil)
		rng := rand.New(rand.NewSource(tc.seed * 977))
		for q := 0; q < 150; q++ {
			s := roadnet.NodeID(rng.Intn(tc.n))
			d := roadnet.NodeID(rng.Intn(tc.n))
			want, _, err := search.ReferenceDijkstra(acc, s, d)
			if err != nil {
				t.Fatal(err)
			}
			gotDist, _, err := eng.Distance(s, d)
			if err != nil {
				t.Fatal(err)
			}
			wantDist := want.Cost
			if len(want.Nodes) == 0 && s != d {
				wantDist = math.Inf(1)
			}
			if gotDist != wantDist {
				t.Fatalf("n=%d seed=%d pair (%d,%d): CH distance %v, reference %v", tc.n, tc.seed, s, d, gotDist, wantDist)
			}
			gotPath, _, err := eng.Path(s, d)
			if err != nil {
				t.Fatal(err)
			}
			if math.IsInf(wantDist, 1) {
				if len(gotPath.Nodes) != 0 {
					t.Fatalf("pair (%d,%d) unreachable but CH returned path %v", s, d, gotPath.Nodes)
				}
				continue
			}
			if gotPath.Cost != wantDist {
				t.Fatalf("pair (%d,%d): CH path cost %v, reference %v", s, d, gotPath.Cost, wantDist)
			}
			checkPathValid(t, g, s, d, gotPath)
		}
	}
}

// TestCHOnGeneratedRoadNetwork runs the same property on the repository's
// tiger-like generator, whose float costs make ulp-level divergence between
// differently associated sums possible; distances must agree to relative
// 1e-9.
func TestCHOnGeneratedRoadNetwork(t *testing.T) {
	cfg := gen.DefaultNetworkConfig()
	cfg.Kind = gen.TigerLike
	cfg.Nodes = 1500
	cfg.Seed = 99
	g, err := gen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	acc := storage.NewMemoryGraph(g)
	o, err := Build(g)
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(o, nil)
	rng := rand.New(rand.NewSource(991))
	for q := 0; q < 80; q++ {
		s := roadnet.NodeID(rng.Intn(g.NumNodes()))
		d := roadnet.NodeID(rng.Intn(g.NumNodes()))
		want, _, err := search.ReferenceDijkstra(acc, s, d)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := eng.Path(s, d)
		if err != nil {
			t.Fatal(err)
		}
		if len(want.Nodes) == 0 {
			if len(got.Nodes) != 0 && s != d {
				t.Fatalf("pair (%d,%d): reference unreachable, CH found %v", s, d, got.Cost)
			}
			continue
		}
		if math.Abs(got.Cost-want.Cost) > 1e-9*(1+want.Cost) {
			t.Fatalf("pair (%d,%d): CH %v vs reference %v", s, d, got.Cost, want.Cost)
		}
		checkPathValid(t, g, s, d, got)
	}
}

// TestCHRoundTrip persists an overlay and asserts the loaded copy is
// structurally identical and answers every sampled query byte-identically to
// the original — the save/load half of the acceptance property.
func TestCHRoundTrip(t *testing.T) {
	g := randomIntCostGraph(t, 200, 250, 7)
	o, err := Build(g)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(o, &buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if err := loaded.Matches(g); err != nil {
		t.Fatalf("loaded overlay does not match source graph: %v", err)
	}
	if loaded.NumNodes() != o.NumNodes() || loaded.NumShortcuts() != o.NumShortcuts() ||
		loaded.NumOriginalArcs() != o.NumOriginalArcs() || loaded.MaxLevel() != o.MaxLevel() {
		t.Fatalf("loaded overlay shape differs: %v vs %v", loaded, o)
	}
	for v := 0; v < o.NumNodes(); v++ {
		id := roadnet.NodeID(v)
		if loaded.Rank(id) != o.Rank(id) || loaded.Level(id) != o.Level(id) {
			t.Fatalf("node %d: rank/level differ after round-trip", v)
		}
	}
	orig := NewEngine(o, nil)
	reread := NewEngine(loaded, nil)
	rng := rand.New(rand.NewSource(71))
	for q := 0; q < 120; q++ {
		s := roadnet.NodeID(rng.Intn(200))
		d := roadnet.NodeID(rng.Intn(200))
		d1, _, err1 := orig.Distance(s, d)
		d2, _, err2 := reread.Distance(s, d)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if d1 != d2 && !(math.IsInf(d1, 1) && math.IsInf(d2, 1)) {
			t.Fatalf("pair (%d,%d): distance %v before save, %v after load", s, d, d1, d2)
		}
		p1, _, _ := orig.Path(s, d)
		p2, _, _ := reread.Path(s, d)
		if len(p1.Nodes) != len(p2.Nodes) || p1.Cost != p2.Cost {
			t.Fatalf("pair (%d,%d): path changed across round-trip", s, d)
		}
		for i := range p1.Nodes {
			if p1.Nodes[i] != p2.Nodes[i] {
				t.Fatalf("pair (%d,%d): path node %d changed across round-trip", s, d, i)
			}
		}
	}
}

// TestReadRejectsCorruption covers the envelope validation: bad magic, a
// flipped payload byte (checksum), truncation, and a version from the
// future.
func TestReadRejectsCorruption(t *testing.T) {
	g := randomIntCostGraph(t, 40, 40, 11)
	o, err := Build(g)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(o, &buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	t.Run("bad magic", func(t *testing.T) {
		bad := append([]byte{}, good...)
		bad[0] = 'X'
		if _, err := Read(bytes.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "magic") {
			t.Fatalf("want magic error, got %v", err)
		}
	})
	t.Run("future version", func(t *testing.T) {
		bad := append([]byte{}, good...)
		bad[4] = 0xFF // little-endian version low byte
		if _, err := Read(bytes.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "version") {
			t.Fatalf("want version error, got %v", err)
		}
	})
	t.Run("flipped payload byte", func(t *testing.T) {
		bad := append([]byte{}, good...)
		bad[len(bad)/2] ^= 0x40
		if _, err := Read(bytes.NewReader(bad)); err == nil {
			t.Fatal("corrupted payload accepted")
		}
	})
	t.Run("truncated", func(t *testing.T) {
		if _, err := Read(bytes.NewReader(good[:len(good)-10])); err == nil {
			t.Fatal("truncated file accepted")
		}
	})
	t.Run("trailing garbage", func(t *testing.T) {
		bad := append(append([]byte{}, good...), 0xAB)
		if _, err := Read(bytes.NewReader(bad)); err == nil {
			t.Fatal("file with data after the checksum trailer accepted")
		}
	})
	t.Run("non-chaining shortcut children", func(t *testing.T) {
		// A 3-cycle forces exactly one shortcut (2→1 via 0). Repoint its
		// second child at an arc that does not continue from the first:
		// the file's CRC is rewritten honestly, so only the chaining
		// validation can catch it.
		cyc := roadnet.NewGraph(3, 3)
		for i := 0; i < 3; i++ {
			cyc.AddNode(float64(i), 0)
		}
		cyc.MustAddEdge(0, 1, 3)
		cyc.MustAddEdge(1, 2, 4)
		cyc.MustAddEdge(2, 0, 5)
		cyc.Freeze()
		o, err := Build(cyc)
		if err != nil {
			t.Fatal(err)
		}
		if o.NumShortcuts() != 1 {
			t.Fatalf("expected exactly 1 shortcut, got %d", o.NumShortcuts())
		}
		sc := &o.arcs[len(o.arcs)-1]
		sc.childB = 1 // arc 1→2 does not chain after childA's head
		var buf bytes.Buffer
		if err := Write(o, &buf); err != nil {
			t.Fatal(err)
		}
		if _, err := Read(bytes.NewReader(buf.Bytes())); err == nil {
			t.Fatal("shortcut with non-chaining children accepted")
		}
	})
	t.Run("lying header counts", func(t *testing.T) {
		// A header advertising huge (but individually plausible) counts with
		// no data behind it must fail on the stream running dry — quickly
		// and without committing gigabytes of slices up front.
		var buf bytes.Buffer
		bw, err := storage.NewBinaryWriter(&buf, OverlayMagic, OverlayVersion)
		if err != nil {
			t.Fatal(err)
		}
		bw.U32(1 << 29) // nodes
		bw.U32(1 << 29) // graphArcs
		bw.U64(0)       // checksum
		bw.U32(1 << 20) // nOriginal
		bw.U32(1 << 29) // totalArcs
		if err := bw.Close(); err != nil {
			t.Fatal(err)
		}
		if _, err := Read(bytes.NewReader(buf.Bytes())); err == nil {
			t.Fatal("header with absent payload accepted")
		}
	})
	t.Run("wrong graph", func(t *testing.T) {
		other := randomIntCostGraph(t, 40, 40, 12)
		loaded, err := Read(bytes.NewReader(good))
		if err != nil {
			t.Fatal(err)
		}
		if err := loaded.Matches(other); err == nil {
			t.Fatal("overlay matched a different graph")
		}
	})
}

// TestEngineEdgeCases covers s == t, invalid endpoints, unreachable pairs on
// a disconnected graph, and accessor mismatch through the PointEngine face.
func TestEngineEdgeCases(t *testing.T) {
	g := roadnet.NewGraph(4, 2)
	for i := 0; i < 4; i++ {
		g.AddNode(float64(i), 0)
	}
	g.MustAddBidirectionalEdge(0, 1, 5) // component {0,1}; {2,3} disconnected
	g.MustAddBidirectionalEdge(2, 3, 7)
	g.Freeze()
	o, err := Build(g)
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(o, nil)

	p, _, err := eng.Path(1, 1)
	if err != nil || len(p.Nodes) != 1 || p.Cost != 0 {
		t.Fatalf("s==t: got %v, %v", p, err)
	}
	d, _, err := eng.Distance(0, 2)
	if err != nil || !math.IsInf(d, 1) {
		t.Fatalf("disconnected pair: got %v, %v", d, err)
	}
	p, _, err = eng.Path(0, 2)
	if err != nil || len(p.Nodes) != 0 {
		t.Fatalf("disconnected pair path: got %v, %v", p, err)
	}
	if _, _, err := eng.Distance(-1, 0); err == nil {
		t.Fatal("negative source accepted")
	}
	if _, _, err := eng.Distance(0, 99); err == nil {
		t.Fatal("out-of-range dest accepted")
	}
	bigger := randomIntCostGraph(t, 10, 5, 3)
	if _, _, err := eng.ShortestPath(storage.NewMemoryGraph(bigger), 0, 1); err == nil {
		t.Fatal("accessor with mismatched node count accepted")
	}
	// Same node count, different arcs: the checksum binding must refuse.
	same := roadnet.NewGraph(4, 2)
	for i := 0; i < 4; i++ {
		same.AddNode(float64(i), 0)
	}
	same.MustAddBidirectionalEdge(0, 1, 6) // cost differs from the build graph
	same.MustAddBidirectionalEdge(2, 3, 7)
	same.Freeze()
	if _, _, err := eng.ShortestPath(storage.NewMemoryGraph(same), 0, 1); err == nil {
		t.Fatal("accessor with same shape but different arcs accepted")
	}
	// Filtered accessors report the unfiltered graph but traverse a subset
	// of its arcs, so the overlay must refuse them outright.
	filtered := storage.NewFilteredGraph(storage.NewMemoryGraph(g), storage.AvoidNodes(1))
	if _, _, err := eng.ShortestPath(filtered, 0, 1); err == nil {
		t.Fatal("filtered accessor accepted")
	}
	// The matching unfiltered accessor passes, including on the memoised
	// second call.
	acc := storage.NewMemoryGraph(g)
	for i := 0; i < 2; i++ {
		if _, _, err := eng.ShortestPath(acc, 0, 1); err != nil {
			t.Fatalf("matching accessor rejected on call %d: %v", i+1, err)
		}
	}
}

// TestEngineThroughProcessor installs the overlay as the processor's point
// engine and asserts Q(S, T) answers match the SSMD strategy — the exact
// wiring the server uses for StrategyCH.
func TestEngineThroughProcessor(t *testing.T) {
	g := randomIntCostGraph(t, 150, 200, 21)
	acc := storage.NewMemoryGraph(g)
	o, err := Build(g)
	if err != nil {
		t.Fatal(err)
	}
	chProc := search.NewProcessor(acc,
		search.WithStrategy(search.StrategyPointEngine),
		search.WithPointEngine(NewEngine(o, nil)))
	ssmdProc := search.NewProcessor(acc, search.WithStrategy(search.StrategySSMD))

	sources := []roadnet.NodeID{3, 77, 140}
	dests := []roadnet.NodeID{9, 58, 101, 3}
	got, err := chProc.Evaluate(sources, dests)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ssmdProc.Evaluate(sources, dests)
	if err != nil {
		t.Fatal(err)
	}
	for i := range sources {
		for j := range dests {
			gp, wp := got.Paths[i][j], want.Paths[i][j]
			if (len(gp.Nodes) == 0) != (len(wp.Nodes) == 0) {
				t.Fatalf("pair (%d,%d): reachability disagrees", sources[i], dests[j])
			}
			if len(gp.Nodes) != 0 && gp.Cost != wp.Cost {
				t.Fatalf("pair (%d,%d): CH %v vs SSMD %v", sources[i], dests[j], gp.Cost, wp.Cost)
			}
		}
	}
	if _, err := search.NewProcessor(acc, search.WithStrategy(search.StrategyPointEngine)).Evaluate(sources, dests); err == nil {
		t.Fatal("StrategyPointEngine without WithPointEngine accepted")
	}
}

// TestDistanceQueryAllocFree pins the steady-state allocation contract of
// the bidirectional query: after warmup, distance queries on pooled
// workspaces perform zero heap allocations.
func TestDistanceQueryAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates and defeats sync.Pool reuse")
	}
	g := randomIntCostGraph(t, 400, 500, 31)
	o, err := Build(g)
	if err != nil {
		t.Fatal(err)
	}
	pool := search.NewWorkspacePool()
	eng := NewEngine(o, pool)
	// Warm the pool so the measured runs reuse sized workspaces. Two
	// sequential queries suffice: each checks out and returns two
	// workspaces.
	for i := 0; i < 4; i++ {
		if _, _, err := eng.Distance(1, 200); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, _, err := eng.Distance(1, 200); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("distance query allocated %v times per run, want 0", allocs)
	}
}

// TestBuildRejectsBadInput covers the builder's input validation.
func TestBuildRejectsBadInput(t *testing.T) {
	if _, err := Build(nil); err == nil {
		t.Fatal("nil graph accepted")
	}
	g := roadnet.NewGraph(2, 1)
	g.AddNode(0, 0)
	g.AddNode(1, 1)
	g.MustAddEdge(0, 1, 1)
	if _, err := Build(g); err == nil {
		t.Fatal("unfrozen graph accepted")
	}
	g.Freeze()
	if _, err := Build(g); err != nil {
		t.Fatalf("valid graph rejected: %v", err)
	}
}
