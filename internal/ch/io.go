package ch

import (
	"fmt"
	"io"
	"math"
	"os"

	"opaque/internal/storage"
)

// The persisted overlay format ("OCH1", version 3), documented with a worked
// hex example in docs/FORMATS.md. The file stores exactly the preprocessing
// products that cannot be recomputed cheaply — ranks, levels, the arc arena
// and (for partition-aware overlays) the node→cell assignment — inside the
// storage layer's checksummed binary envelope (storage.BinaryWriter); the
// two upward CSR views, the boundary set and the arena's layer
// classification are derived deterministically from those on load, so a
// loaded overlay is bit-for-bit the structure the builder produced.
//
// Version 3 added the partition section (flagPartitioned + trailing cell
// assignment); version 2 files — always unpartitioned — still load and
// behave exactly as before (a v2 overlay simply has no cells to localise
// re-customization to). Version 2 itself added the topology checksum and
// the customizable flag (live weight updates), and moved the graph-binding
// checksum to the incremental roadnet content checksum. Version 1 files
// bind with the retired checksum algorithm and cannot be verified against a
// graph any more; they are rejected by version, and re-running
// cmd/opaque-preprocess regenerates them.
const (
	// OverlayMagic is the 4-byte magic of persisted CH overlays.
	OverlayMagic = "OCH1"
	// OverlayVersion is the newest overlay format version this build
	// understands (and the one Write produces). Version 2 files are still
	// accepted by Read.
	OverlayVersion = 3
	// overlayVersionCompat is the oldest version Read still accepts.
	overlayVersionCompat = 2
)

// Flag bits of the flags word.
const (
	flagCustomizable = 1 << 0
	// flagPartitioned marks a version-3 file carrying the partition section:
	// a cell count and the node→cell assignment after the arena records.
	flagPartitioned = 1 << 1
)

// Write persists the overlay to w in the versioned OCH1 binary format.
func Write(o *Overlay, w io.Writer) error {
	bw, err := storage.NewBinaryWriter(w, OverlayMagic, OverlayVersion)
	if err != nil {
		return fmt.Errorf("ch: writing overlay header: %w", err)
	}
	bw.U32(uint32(o.n))
	bw.U32(uint32(o.graphArcs))
	bw.U64(o.checksum)
	bw.U64(o.topoSum)
	flags := uint32(0)
	if o.customizable {
		flags |= flagCustomizable
	}
	if o.part != nil {
		flags |= flagPartitioned
	}
	bw.U32(flags)
	bw.U32(uint32(o.nOriginal))
	bw.U32(uint32(len(o.arcs)))
	for _, r := range o.rank {
		bw.U32(uint32(r))
	}
	for _, l := range o.level {
		bw.U32(uint32(l))
	}
	for i := range o.arcs {
		a := &o.arcs[i]
		bw.U32(uint32(a.from))
		bw.U32(uint32(a.to))
		bw.I32(a.childA)
		bw.I32(a.childB)
		bw.F64(a.cost)
	}
	if o.part != nil {
		bw.U32(uint32(o.part.cells))
		for _, c := range o.part.cellOf {
			bw.U32(uint32(c))
		}
	}
	if err := bw.Close(); err != nil {
		return fmt.Errorf("ch: writing overlay: %w", err)
	}
	return nil
}

// Read loads an overlay previously persisted with Write, validating the
// envelope (magic, version, checksum trailer) and every structural
// invariant: in-range endpoints, ranks forming a permutation, finite
// non-negative costs, and shortcut children that precede their shortcut in
// the arena. The upward CSR views are rebuilt from the arena, so the result
// is identical to the freshly built overlay. Bind it to a graph with
// Overlay.Matches before serving queries.
func Read(r io.Reader) (*Overlay, error) {
	br, err := storage.NewBinaryReader(r, OverlayMagic, OverlayVersion)
	if err != nil {
		return nil, fmt.Errorf("ch: reading overlay header: %w", err)
	}
	// The envelope only rejects versions from the future; below the compat
	// floor sits only the retired version 1 (dead checksum algorithm), so
	// anything else is a crafted or corrupted header.
	if br.Version() < overlayVersionCompat || br.Version() > OverlayVersion {
		return nil, fmt.Errorf("ch: unsupported overlay version %d (this build reads versions %d-%d)", br.Version(), overlayVersionCompat, OverlayVersion)
	}
	n := int(br.U32())
	graphArcs := int(br.U32())
	checksum := br.U64()
	topoSum := br.U64()
	flags := br.U32()
	nOriginal := int(br.U32())
	totalArcs := int(br.U32())
	if err := br.Err(); err != nil {
		return nil, fmt.Errorf("ch: reading overlay counts: %w", err)
	}
	if flags&flagPartitioned != 0 && br.Version() < 3 {
		return nil, fmt.Errorf("ch: version %d overlay claims a partition section, which version 3 introduced", br.Version())
	}
	const maxReasonable = 1 << 30
	if n <= 0 || n > maxReasonable || totalArcs < 0 || totalArcs > maxReasonable || nOriginal < 0 || nOriginal > totalArcs {
		return nil, fmt.Errorf("ch: implausible overlay counts (nodes=%d, arcs=%d, original=%d)", n, totalArcs, nOriginal)
	}
	// The arrays below grow by append as records are actually decoded, with
	// deliberately small initial capacities: a corrupted header whose count
	// fields are garbage (but within maxReasonable) must fail on the stream
	// running dry — a clean read error — instead of committing gigabytes up
	// front for data the file never contained.
	const initialCap = 1 << 16
	o := &Overlay{
		n:            n,
		nOriginal:    nOriginal,
		rank:         make([]int32, 0, min(n, initialCap)),
		level:        make([]int32, 0, min(n, initialCap)),
		arcs:         make([]arc, 0, min(totalArcs, initialCap)),
		graphArcs:    graphArcs,
		checksum:     checksum,
		topoSum:      topoSum,
		customizable: flags&flagCustomizable != 0,
	}
	for v := 0; v < n; v++ {
		rk := br.U32()
		if br.Err() != nil {
			break
		}
		if rk >= uint32(n) {
			return nil, fmt.Errorf("ch: node %d has invalid rank %d", v, rk)
		}
		o.rank = append(o.rank, int32(rk))
	}
	if br.Err() == nil {
		// Every rank is in range and on disk; now the O(n) permutation
		// check is safe to allocate for.
		seen := make([]bool, n)
		for v, rk := range o.rank {
			if seen[rk] {
				return nil, fmt.Errorf("ch: node %d has duplicate rank %d", v, rk)
			}
			seen[rk] = true
		}
	}
	for v := 0; v < n; v++ {
		l := br.U32()
		if br.Err() != nil {
			break
		}
		o.level = append(o.level, int32(l))
	}
	for i := 0; i < totalArcs; i++ {
		a := arc{
			from:   int32(br.U32()),
			to:     int32(br.U32()),
			childA: br.I32(),
			childB: br.I32(),
			cost:   br.F64(),
		}
		if br.Err() != nil {
			break
		}
		if a.from < 0 || int(a.from) >= n || a.to < 0 || int(a.to) >= n || a.from == a.to {
			return nil, fmt.Errorf("ch: arc %d has invalid endpoints (%d→%d)", i, a.from, a.to)
		}
		if a.cost < 0 || math.IsNaN(a.cost) || math.IsInf(a.cost, 0) {
			return nil, fmt.Errorf("ch: arc %d has invalid cost %v", i, a.cost)
		}
		o.arcs = append(o.arcs, a)
	}
	var partCells int
	var cellOf []int32
	if flags&flagPartitioned != 0 {
		partCells = int(br.U32())
		if br.Err() == nil {
			if partCells < 1 || partCells > n {
				return nil, fmt.Errorf("ch: implausible partition cell count %d for %d nodes", partCells, n)
			}
			cellOf = make([]int32, 0, min(n, initialCap))
			for v := 0; v < n; v++ {
				c := br.U32()
				if br.Err() != nil {
					break
				}
				if c >= uint32(partCells) {
					return nil, fmt.Errorf("ch: node %d assigned to cell %d, file declares %d cells", v, c, partCells)
				}
				cellOf = append(cellOf, int32(c))
			}
		}
	}
	if err := br.Close(); err != nil {
		return nil, fmt.Errorf("ch: reading overlay: %w", err)
	}
	// Unpack provenance is validated after the whole arena is in memory:
	// customization may point an arc's children at *later* arena entries
	// (the triangle legs of a cheaper detour), so child references cannot be
	// checked while streaming. Termination of the unpack recursion is
	// guaranteed structurally instead — every child pair's via node ranks
	// strictly below both of the parent's endpoints.
	for i := range o.arcs {
		a := &o.arcs[i]
		hasChildren := a.childA >= 0 && a.childB >= 0
		if !hasChildren {
			if a.childA >= 0 || a.childB >= 0 {
				return nil, fmt.Errorf("ch: arc %d has half-set unpack children (%d, %d)", i, a.childA, a.childB)
			}
			if i >= nOriginal {
				return nil, fmt.Errorf("ch: shortcut arc %d has no unpack children", i)
			}
			continue
		}
		if i < nOriginal && !o.customizable {
			// Only customization reroutes original arcs through detours; a
			// witness-pruned arena keeps originals child-free.
			return nil, fmt.Errorf("ch: arc %d breaks the originals-then-shortcuts arena layout", i)
		}
		if int(a.childA) >= totalArcs || int(a.childB) >= totalArcs {
			return nil, fmt.Errorf("ch: arc %d has out-of-range unpack children (%d, %d)", i, a.childA, a.childB)
		}
		// The children must chain from→via→to, or unpacking would emit a
		// disconnected node sequence; the via must rank below both endpoints,
		// or unpacking could recurse forever.
		ca, cb := &o.arcs[a.childA], &o.arcs[a.childB]
		if ca.from != a.from || ca.to != cb.from || cb.to != a.to {
			return nil, fmt.Errorf("ch: arc %d (%d→%d) has non-chaining children %d→%d, %d→%d",
				i, a.from, a.to, ca.from, ca.to, cb.from, cb.to)
		}
		if via := ca.to; o.rank[via] >= o.rank[a.from] || o.rank[via] >= o.rank[a.to] {
			return nil, fmt.Errorf("ch: arc %d (%d→%d) unpacks via node %d, which does not rank below both endpoints", i, a.from, a.to, ca.to)
		}
	}
	if cellOf != nil {
		// Re-derive the partition structure from the persisted assignment,
		// which re-checks the layering invariants of partitioned contraction
		// (boundary nodes ranked last, no arena arc between interiors of
		// different cells) against this file's ranks and arena. The overlay's
		// incremental state (base costs, per-cell exports) is not persisted;
		// the first RecustomizeIncremental primes it with one full pass.
		cp, err := deriveChPartition(n, o.rank, o.arcs, nOriginal, cellOf, partCells)
		if err != nil {
			return nil, fmt.Errorf("ch: overlay partition: %w", err)
		}
		o.part = cp
	}
	o.buildCSR()
	return o, nil
}

// WriteFile persists the overlay to a file (created or truncated).
func WriteFile(o *Overlay, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("ch: creating overlay file: %w", err)
	}
	if err := Write(o, f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("ch: closing overlay file: %w", err)
	}
	return nil
}

// ReadFile loads an overlay from a file written by WriteFile.
func ReadFile(path string) (*Overlay, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("ch: opening overlay file: %w", err)
	}
	defer f.Close()
	return Read(f)
}
