package ch

import (
	"fmt"
	"math"
	"sync/atomic"

	"opaque/internal/roadnet"
	"opaque/internal/search"
	"opaque/internal/storage"
)

// Engine answers point shortest-path queries on an Overlay with a
// bidirectional upward Dijkstra: the forward search from s relaxes only
// overlay arcs toward higher-ranked nodes, the backward search from t only
// reversed arcs from higher-ranked nodes, and the two meet at the apex of
// the optimal up-down path. Each direction runs on an epoch-stamped
// search.Workspace checked out of the engine's pool, so a distance query
// performs zero heap allocations in steady state; path queries additionally
// unpack the shortcut chain into the original-arc route.
//
// Engine implements search.PointEngine and is safe for concurrent use: the
// overlay is read-only and all per-query state lives in the two pooled
// workspaces.
type Engine struct {
	o    *Overlay
	pool *search.WorkspacePool
	// verified memoises the last accessor graph proven (by checksum) to be
	// the one the overlay was built from, so the O(arcs) Matches check runs
	// once per graph instead of once per query.
	verified atomic.Pointer[roadnet.Graph]
	// gen is the accessor data generation the overlay's weights are valid
	// for (search.Generational): the installer binds it with BindGeneration
	// so the processor refuses the engine once the accessor's generation
	// moves past it, without waiting for the checksum check to fail.
	gen atomic.Uint64
}

// NewEngine returns a query engine over o drawing workspaces from wp. A nil
// wp gets a private pool; servers pass their own so CH queries, SSMD
// searches and cached trees all recycle the same workspaces.
func NewEngine(o *Overlay, wp *search.WorkspacePool) *Engine {
	if wp == nil {
		wp = search.NewWorkspacePool()
	}
	return &Engine{o: o, pool: wp}
}

// Overlay returns the overlay the engine queries.
func (e *Engine) Overlay() *Overlay { return e.o }

// BindGeneration records the accessor data generation the overlay's weights
// were customized for. Servers call it when installing or swapping the
// engine; see search.Generational.
func (e *Engine) BindGeneration(gen uint64) { e.gen.Store(gen) }

// Generation implements search.Generational.
func (e *Engine) Generation() uint64 { return e.gen.Load() }

// ShortestPath implements search.PointEngine: the full shortest path from
// source to dest with shortcuts unpacked, or an empty path when dest is
// unreachable. CH reads the preprocessed index, not the graph — which is the
// whole point — so the accessor must present exactly the arcs the overlay
// was contracted over: its underlying graph is checksum-verified against the
// overlay (once per graph, memoised), and arc-filtering accessors
// (storage.FilteredGraph), whose effective arc set differs from the graph
// they report, are rejected outright. acc may be nil for direct callers that
// take responsibility for the binding themselves.
func (e *Engine) ShortestPath(acc storage.Accessor, source, dest roadnet.NodeID) (search.Path, search.Stats, error) {
	if acc != nil {
		if _, filtered := acc.(*storage.FilteredGraph); filtered {
			return search.Path{}, search.Stats{}, fmt.Errorf("ch: overlay cannot serve a filtered accessor — the hierarchy was contracted over the unfiltered arcs; query the filtered graph with the flat searches instead")
		}
		g := acc.Graph()
		if e.verified.Load() != g {
			if err := e.o.Matches(g); err != nil {
				return search.Path{}, search.Stats{}, fmt.Errorf("ch: accessor does not present the overlay's graph (%v): %w", err, search.ErrStaleEngine)
			}
			e.verified.Store(g)
		}
	}
	return e.Path(source, dest)
}

// Path returns the shortest path from source to dest with shortcuts
// unpacked, or an empty path when dest is unreachable.
func (e *Engine) Path(source, dest roadnet.NodeID) (search.Path, search.Stats, error) {
	path, _, stats, err := e.query(source, dest, true)
	return path, stats, err
}

// Distance returns only the shortest-path distance from source to dest
// (+Inf when unreachable). It skips meeting-node bookkeeping for the path
// and performs no heap allocation in steady state.
func (e *Engine) Distance(source, dest roadnet.NodeID) (float64, search.Stats, error) {
	_, d, stats, err := e.query(source, dest, false)
	return d, stats, err
}

// query is the bidirectional upward search shared by Path and Distance.
func (e *Engine) query(source, dest roadnet.NodeID, needPath bool) (search.Path, float64, search.Stats, error) {
	o := e.o
	var stats search.Stats
	if !validNode(o, source) {
		return search.Path{}, 0, stats, fmt.Errorf("ch: invalid source node %d", source)
	}
	if !validNode(o, dest) {
		return search.Path{}, 0, stats, fmt.Errorf("ch: invalid destination node %d", dest)
	}
	if source == dest {
		if !needPath {
			return search.Path{}, 0, stats, nil
		}
		return search.Path{Nodes: []roadnet.NodeID{source}, Cost: 0}, 0, stats, nil
	}

	fw := e.pool.Get(o.n)
	defer fw.Release()
	bw := e.pool.Get(o.n)
	defer bw.Release()

	fw.Label(source, 0, roadnet.InvalidNode)
	fw.Heap().Push(int32(source), 0)
	bw.Label(dest, 0, roadnet.InvalidNode)
	bw.Heap().Push(int32(dest), 0)
	stats.QueueOps += 2

	best := math.Inf(1)
	meet := roadnet.InvalidNode
	fDone, bDone := false, false
	for !fDone || !bDone {
		if f := fw.Heap().Len() + bw.Heap().Len(); f > stats.MaxFrontier {
			stats.MaxFrontier = f
		}
		if !fDone {
			fDone = !o.step(fw, bw, o.fwdOff, o.fwdTo, o.fwdCost, &best, &meet, &stats)
		}
		if !bDone {
			bDone = !o.step(bw, fw, o.bwdOff, o.bwdTo, o.bwdCost, &best, &meet, &stats)
		}
	}

	if meet == roadnet.InvalidNode {
		return search.Path{}, math.Inf(1), stats, nil
	}
	if !needPath {
		return search.Path{}, best, stats, nil
	}
	nodes, err := o.unpackRoute(fw, bw, source, dest, meet)
	if err != nil {
		return search.Path{}, 0, stats, err
	}
	return search.Path{Nodes: nodes, Cost: best}, best, stats, nil
}

// step advances one direction of the bidirectional search by one settled
// node: pop the frontier minimum of this, relax its upward arcs (the CSR
// triple passed in selects the direction), and tighten best/meet against
// other's label on the settled node. It returns false once this direction is
// exhausted — queue empty or frontier minimum at least best, the standard CH
// stopping rule.
func (o *Overlay) step(this, other *search.Workspace,
	off []int32, heads []roadnet.NodeID, costs []float64,
	best *float64, meet *roadnet.NodeID, stats *search.Stats) bool {
	h := this.Heap()
	if h.Empty() || h.Peek().Priority >= *best {
		return false
	}
	item := h.Pop()
	u := roadnet.NodeID(item.Value)
	if item.Priority > this.DistOf(u) {
		return true // stale entry; the direction is still live
	}
	stats.SettledNodes++
	// An up-down path through u costs df(u)+db(u); other's label may still
	// be tentative, but a tentative label is realised by some up-path, so
	// the candidate is always valid — and the optimum is guaranteed to be
	// seen because both directions run until their frontier passes best.
	if d := other.DistOf(u); item.Priority+d < *best {
		*best = item.Priority + d
		*meet = u
	}
	for i := off[u]; i < off[u+1]; i++ {
		stats.RelaxedArcs++
		head := heads[i]
		nd := item.Priority + costs[i]
		if nd < this.DistOf(head) {
			this.Label(head, nd, u)
			h.Push(int32(head), nd)
			stats.QueueOps++
		}
	}
	return true
}

// unpackRoute rebuilds the full original-arc path source→…→meet→…→dest from
// the two search trees, expanding every shortcut through the arena.
func (o *Overlay) unpackRoute(fw, bw *search.Workspace, source, dest, meet roadnet.NodeID) ([]roadnet.NodeID, error) {
	nodes := []roadnet.NodeID{source}
	emit := func(v roadnet.NodeID) { nodes = append(nodes, v) }

	// Forward half: walk meet→source through fw's parents, then unpack each
	// up-arc in source→meet order.
	var chain []roadnet.NodeID
	for at := meet; at != roadnet.InvalidNode; at = fw.ParentOf(at) {
		chain = append(chain, at)
	}
	if chain[len(chain)-1] != source {
		return nil, fmt.Errorf("ch: internal error: forward search tree does not reach source %d", source)
	}
	for i := len(chain) - 1; i > 0; i-- {
		from, to := chain[i], chain[i-1]
		idx := o.findArc(o.fwdOff, o.fwdTo, o.fwdCost, o.fwdArc, from, to, fw.DistOf(from), fw.DistOf(to))
		if idx < 0 {
			return nil, fmt.Errorf("ch: internal error: no upward arc %d→%d on forward path", from, to)
		}
		o.unpackArc(idx, emit)
	}

	// Backward half: bw's parent chain already runs meet→dest in original
	// travel direction; each step (u, parent) is the original arc u→parent,
	// stored in parent's upward in-arcs keyed by head u.
	for at := meet; at != dest; {
		next := bw.ParentOf(at)
		if next == roadnet.InvalidNode {
			return nil, fmt.Errorf("ch: internal error: backward search tree does not reach destination %d", dest)
		}
		idx := o.findArc(o.bwdOff, o.bwdTo, o.bwdCost, o.bwdArc, next, at, bw.DistOf(next), bw.DistOf(at))
		if idx < 0 {
			return nil, fmt.Errorf("ch: internal error: no upward arc %d→%d on backward path", at, next)
		}
		o.unpackArc(idx, emit)
		at = next
	}
	return nodes, nil
}

// findArc locates the arena index of the CSR arc at owner whose head is head
// and whose cost closes the labelled distance gap dOwner→dHead exactly — the
// arc the search relaxed when it labelled the child, recovered without
// storing per-node arc provenance. owner is the CSR node the arc is stored
// under (the tail in the forward view, the original head in the backward
// view).
func (o *Overlay) findArc(off []int32, heads []roadnet.NodeID, costs []float64, arcIDs []int32,
	owner, head roadnet.NodeID, dOwner, dHead float64) int32 {
	for i := off[owner]; i < off[owner+1]; i++ {
		if heads[i] == head && dOwner+costs[i] == dHead {
			return arcIDs[i]
		}
	}
	return -1
}

// unpackArc emits the node sequence of arena arc idx excluding its tail:
// original arcs emit their head, shortcuts recurse into their two halves in
// travel order.
func (o *Overlay) unpackArc(idx int32, emit func(roadnet.NodeID)) {
	a := &o.arcs[idx]
	if a.childA < 0 {
		emit(roadnet.NodeID(a.to))
		return
	}
	o.unpackArc(a.childA, emit)
	o.unpackArc(a.childB, emit)
}

func validNode(o *Overlay, v roadnet.NodeID) bool {
	return v >= 0 && int(v) < o.n
}
