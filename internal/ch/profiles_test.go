package ch

import (
	"math"
	"math/rand"
	"testing"

	"opaque/internal/costmodel"
	"opaque/internal/gen"
	"opaque/internal/roadnet"
	"opaque/internal/search"
	"opaque/internal/storage"
)

func profileSetGraph(t *testing.T) *roadnet.Graph {
	t.Helper()
	cfg := gen.DefaultNetworkConfig()
	cfg.Kind = gen.TigerLike
	cfg.Nodes = 600
	cfg.Seed = 4242
	g, err := gen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestProfileSetLayersAnswerTheirMetric(t *testing.T) {
	g := profileSetGraph(t)
	base, err := BuildCustomizable(g)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := NewProfileSet(base, 8)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(55))
	for _, p := range costmodel.TimeOfDayProfiles() {
		pg, err := p.Apply(g)
		if err != nil {
			t.Fatal(err)
		}
		layer, err := ps.Install(p.Name, pg)
		if err != nil {
			t.Fatal(err)
		}
		if layer.TopologyChecksum() != base.TopologyChecksum() {
			t.Fatalf("%s: layer does not share the frozen topology", p.Name)
		}
		// Every layer must answer distances for its own profile metric,
		// verified against reference Dijkstra on the profile graph.
		acc := storage.NewMemoryGraph(pg)
		eng := NewEngine(layer, nil)
		for i := 0; i < 15; i++ {
			s := roadnet.NodeID(rng.Intn(g.NumNodes()))
			d := roadnet.NodeID(rng.Intn(g.NumNodes()))
			want, _, err := search.ReferenceDijkstra(acc, s, d)
			if err != nil {
				t.Fatal(err)
			}
			wantDist := want.Cost
			if len(want.Nodes) == 0 && s != d {
				wantDist = math.Inf(1)
			}
			got, _, err := eng.Distance(s, d)
			if err != nil {
				t.Fatal(err)
			}
			if got != wantDist && math.Abs(got-wantDist) > 1e-9*(1+math.Abs(wantDist)) {
				t.Fatalf("%s: pair (%d,%d) layer says %v, reference says %v", p.Name, s, d, got, wantDist)
			}
		}
	}
	if st := ps.Stats(); st.Layers != 4 || st.Misses != 4 {
		t.Errorf("stats = %+v, want 4 layers / 4 misses", st)
	}
}

func TestProfileSetLRUAndStats(t *testing.T) {
	g := profileSetGraph(t)
	base, err := BuildCustomizable(g)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := NewProfileSet(base, 2)
	if err != nil {
		t.Fatal(err)
	}
	var evicted []string
	ps.SetOnEvict(func(name string) { evicted = append(evicted, name) })

	uniformGraph := func(m float64) *roadnet.Graph {
		p := costmodel.WeightProfile{
			Name:       "u",
			Multiplier: func(*roadnet.Graph, roadnet.NodeID, roadnet.NodeID) float64 { return m },
		}
		pg, err := p.Apply(g)
		if err != nil {
			t.Fatal(err)
		}
		return pg
	}

	if _, err := ps.Install("a", uniformGraph(0.5)); err != nil {
		t.Fatal(err)
	}
	if _, err := ps.Install("b", uniformGraph(0.6)); err != nil {
		t.Fatal(err)
	}
	// Touch a so b becomes the LRU victim when c lands.
	if _, _, ok := ps.Layer("a"); !ok {
		t.Fatal("layer a missing")
	}
	if _, err := ps.Install("c", uniformGraph(0.7)); err != nil {
		t.Fatal(err)
	}
	if len(evicted) != 1 || evicted[0] != "b" {
		t.Errorf("evicted %v, want [b]", evicted)
	}
	if _, _, ok := ps.Layer("b"); ok {
		t.Error("evicted layer b still resident")
	}
	st := ps.Stats()
	if st.Layers != 2 || st.Evictions != 1 {
		t.Errorf("stats = %+v, want 2 layers / 1 eviction", st)
	}
	// One hit (Layer("a")), three Installs counted as misses; the failed
	// Layer("b") probe counts nothing — its rebuild would count via Install.
	if st.Hits != 1 || st.Misses != 3 {
		t.Errorf("hits=%d misses=%d, want 1/3", st.Hits, st.Misses)
	}
	names := ps.Names()
	if len(names) != 2 || names[len(names)-1] != "c" {
		t.Errorf("names = %v, want c most recently used", names)
	}
}

func TestProfileSetRefusesWitnessPrunedBase(t *testing.T) {
	g := profileSetGraph(t)
	pruned, err := Build(g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewProfileSet(pruned, 4); err == nil {
		t.Error("witness-pruned base must be refused; its shortcuts are valid for one metric only")
	}
}

func TestProfileSetRejectsForeignTopology(t *testing.T) {
	g := profileSetGraph(t)
	base, err := BuildCustomizable(g)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := NewProfileSet(base, 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := gen.DefaultNetworkConfig()
	cfg.Kind = gen.TigerLike
	cfg.Nodes = 300
	cfg.Seed = 777
	other, err := gen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ps.Install("x", other); err == nil {
		t.Error("installing a layer for a different topology must fail")
	}
}
