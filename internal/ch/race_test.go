//go:build race

package ch

// raceEnabled reports whether this test binary was built with the race
// detector, which instruments allocations and defeats sync.Pool reuse —
// allocation-count assertions are skipped under it.
const raceEnabled = true
