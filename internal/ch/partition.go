package ch

import (
	"fmt"
	"sync"

	"opaque/internal/roadnet"
)

// This file is the partition awareness of the overlay: the frozen mapping
// from nodes and arena arcs to partition cells that makes cell-local
// re-customization (customize.go) sound.
//
// A partitioned build contracts nodes cell by cell — all interiors of cell
// 0, then all interiors of cell 1, …, and finally every boundary node — so
// boundary nodes occupy the top of the hierarchy. Every arena arc is then
// owned by its lower-ranked endpoint and inherits that endpoint's layer:
//
//   - interior endpoint of cell c → the arc belongs to cell c's weight layer
//   - boundary endpoint           → the arc belongs to the boundary "top" layer
//
// The invariant that makes this a partition of the arena into independent
// layers is that no arena arc ever connects interiors of two different
// cells. Original arcs cannot (an arc crossing cells makes both endpoints
// boundary by definition), and contraction preserves the property: while
// interiors of cell c are contracted, every neighbour of the contracted
// node lies in cell c or on the boundary, so every inserted shortcut does
// too; shortcuts inserted while contracting boundary nodes connect boundary
// nodes. Consequently:
//
//   - every triangle leg of the customization pass at an interior node of
//     cell c is a cell-c arc, and every relaxation target is either a cell-c
//     arc or a boundary–boundary (top) arc;
//   - cell passes touch disjoint arc sets and can run in parallel;
//   - relaxations of top arcs discovered inside a cell pass are recorded as
//     that cell's *exports* and folded into the top layer afterwards, which
//     reproduces the global bottom-up order exactly (all interiors rank
//     below all boundary nodes).
//
// chPartition holds only metric-independent structure; it is shared by every
// re-customized generation of an overlay, exactly like the ranks and CSR
// views.
type chPartition struct {
	cells      int
	cellOf     []int32
	isBoundary []bool
	nBoundary  int

	// cellRank[c] lists cell c's interior nodes in ascending contraction
	// rank; boundaryByRank lists the boundary nodes the same way. These are
	// the iteration orders of the cell passes and the top pass.
	cellRank       [][]int32
	boundaryByRank []int32

	// arcLayer[i] is the layer of arena arc i: a cell index, or cells for
	// the top layer. layerOff/layerArcs group the arena indices by layer
	// (cells+1 groups, top last), so a pass can reset exactly its layer's
	// shortcuts. topIndex maps arena indices of top arcs to a dense
	// 0..numTop-1 numbering used by the export accumulators (-1 elsewhere);
	// topArcs is the inverse map.
	arcLayer  []int32
	layerOff  []int32
	layerArcs []int32
	topIndex  []int32
	topArcs   []int32
	numTop    int

	// csrPos[i] locates arena arc i's single CSR cost slot: j for fwdCost[j],
	// ^j for bwdCost[j]. Pure topology, so it is built once (lazily, the
	// first time an incremental pass patches CSR costs) and shared by every
	// generation like the CSR views themselves.
	csrOnce sync.Once
	csrPos  []int32
}

// csrPositions returns the arena→CSR slot map, building it on first use.
// Safe for concurrent callers: the CSR index arrays it derives from are
// frozen topology shared by all generations.
func (o *Overlay) csrPositions() []int32 {
	p := o.part
	p.csrOnce.Do(func() {
		pos := make([]int32, len(o.arcs))
		for j, ai := range o.fwdArc {
			pos[ai] = int32(j)
		}
		for j, ai := range o.bwdArc {
			pos[ai] = ^int32(j)
		}
		p.csrPos = pos
	})
	return p.csrPos
}

// topLayer returns the layer index of the boundary top layer.
func (p *chPartition) topLayer() int32 { return int32(p.cells) }

// deriveChPartition classifies nodes and arena arcs into layers from a
// node→cell assignment, validating the two structural prerequisites of
// cell-local customization: boundary nodes rank above every interior node,
// and no arena arc connects interiors of two different cells. It is called
// by the builder (assignment from roadnet.Partition) and by the OCH1 v3
// loader (assignment from the file), so a loaded overlay is checked against
// exactly the invariants the builder guarantees.
func deriveChPartition(n int, rank []int32, arcs []arc, nOriginal int, cellOf []int32, cells int) (*chPartition, error) {
	if cells < 1 {
		return nil, fmt.Errorf("ch: partition needs at least one cell, got %d", cells)
	}
	if len(cellOf) != n {
		return nil, fmt.Errorf("ch: partition assignment covers %d nodes, overlay has %d", len(cellOf), n)
	}
	for v, c := range cellOf {
		if c < 0 || int(c) >= cells {
			return nil, fmt.Errorf("ch: node %d assigned to cell %d, valid range [0,%d)", v, c, cells)
		}
	}
	p := &chPartition{
		cells:      cells,
		cellOf:     cellOf,
		isBoundary: make([]bool, n),
	}
	// The boundary is derived from the original arcs of the arena — the
	// graph's non-loop arcs — matching roadnet.Partition's definition of
	// the cut exactly.
	for i := 0; i < nOriginal; i++ {
		a := &arcs[i]
		if cellOf[a.from] != cellOf[a.to] {
			p.isBoundary[a.from] = true
			p.isBoundary[a.to] = true
		}
	}
	for _, b := range p.isBoundary {
		if b {
			p.nBoundary++
		}
	}

	// Iteration orders, and the rank-layering check: partitioned contraction
	// puts every boundary node above every interior node.
	byRank := make([]int32, n)
	for v, r := range rank {
		byRank[r] = int32(v)
	}
	p.cellRank = make([][]int32, cells)
	seenBoundary := false
	for _, v := range byRank {
		if p.isBoundary[v] {
			seenBoundary = true
			p.boundaryByRank = append(p.boundaryByRank, v)
			continue
		}
		if seenBoundary {
			return nil, fmt.Errorf("ch: interior node %d ranks above a boundary node; partitioned overlays contract boundary nodes last", v)
		}
		c := cellOf[v]
		p.cellRank[c] = append(p.cellRank[c], v)
	}

	// Arc layers: owner = lower-ranked endpoint. Reject interior–interior
	// arcs across cells — their existence would break pass independence.
	p.arcLayer = make([]int32, len(arcs))
	p.topIndex = make([]int32, len(arcs))
	top := p.topLayer()
	for i := range arcs {
		a := &arcs[i]
		lo := a.from
		if rank[a.to] < rank[a.from] {
			lo = a.to
		}
		p.topIndex[i] = -1
		if p.isBoundary[lo] {
			p.arcLayer[i] = top
			p.topIndex[i] = int32(p.numTop)
			p.topArcs = append(p.topArcs, int32(i))
			p.numTop++
			continue
		}
		p.arcLayer[i] = cellOf[lo]
		if !p.isBoundary[a.from] && !p.isBoundary[a.to] && cellOf[a.from] != cellOf[a.to] {
			return nil, fmt.Errorf("ch: arena arc %d connects interiors of cells %d and %d; partitioned contraction never creates such arcs",
				i, cellOf[a.from], cellOf[a.to])
		}
	}

	// Group arena indices by layer (counting sort; top group last).
	p.layerOff = make([]int32, cells+2)
	for _, l := range p.arcLayer {
		p.layerOff[l+1]++
	}
	for l := 0; l <= cells; l++ {
		p.layerOff[l+1] += p.layerOff[l]
	}
	p.layerArcs = make([]int32, len(arcs))
	fill := make([]int32, cells+1)
	copy(fill, p.layerOff[:cells+1])
	for i, l := range p.arcLayer {
		p.layerArcs[fill[l]] = int32(i)
		fill[l]++
	}
	return p, nil
}

// layerShortcuts calls fn for every shortcut arena index of the given layer.
func (p *chPartition) layerShortcuts(nOriginal int, layer int32, fn func(int32)) {
	for _, ai := range p.layerArcs[p.layerOff[layer]:p.layerOff[layer+1]] {
		if int(ai) >= nOriginal {
			fn(ai)
		}
	}
}

// PartitionCells returns the number of partition cells of the overlay, or 0
// for an unpartitioned overlay.
func (o *Overlay) PartitionCells() int {
	if o.part == nil {
		return 0
	}
	return o.part.cells
}

// CellOfNode returns the partition cell of v and whether v is a boundary
// node. For unpartitioned overlays it returns (0, false).
func (o *Overlay) CellOfNode(v roadnet.NodeID) (cell int, boundary bool) {
	if o.part == nil {
		return 0, false
	}
	return int(o.part.cellOf[v]), o.part.isBoundary[v]
}

// NumBoundaryNodes returns the number of boundary nodes of the partition
// (0 for unpartitioned overlays).
func (o *Overlay) NumBoundaryNodes() int {
	if o.part == nil {
		return 0
	}
	return o.part.nBoundary
}

// LayerArcCount returns the number of arena arcs owned by the given layer —
// a cell index in [0, PartitionCells()), or PartitionCells() for the
// boundary top layer. It is what paged deployments use to size per-cell
// overlay layer residency.
func (o *Overlay) LayerArcCount(layer int) int {
	if o.part == nil {
		return 0
	}
	return int(o.part.layerOff[layer+1] - o.part.layerOff[layer])
}

// PartitionAssignment returns the node→cell assignment of a partitioned
// overlay (nil for unpartitioned ones). The slice aliases overlay storage
// and must not be modified.
func (o *Overlay) PartitionAssignment() []int32 {
	if o.part == nil {
		return nil
	}
	return o.part.cellOf
}
