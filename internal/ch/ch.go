// Package ch implements a contraction-hierarchies (CH) overlay for the
// OPAQUE road network: an offline preprocessing pass that orders the nodes by
// importance, contracts them in that order while inserting shortcut arcs that
// preserve all shortest-path distances, and a bidirectional online query that
// only ever relaxes arcs leading to more important nodes. On road-shaped
// graphs the upward search spaces are tiny (hundreds of nodes on maps where
// plain Dijkstra settles tens of thousands), which is what lets the
// directions search server answer point queries orders of magnitude faster
// than the flat-graph searches in internal/search — the same offline/online
// trade the OPAQUE paper makes with its CCAM page layout, pushed one level
// further up the stack.
//
// # The pieces
//
//   - Build (build.go) runs the offline pass over a frozen roadnet.Graph:
//     lazy edge-difference node ordering, witness-search-guarded shortcut
//     insertion, node levels. The result is an Overlay.
//   - Overlay (this file) is the immutable preprocessed index: the node
//     ranks, the upward forward/backward CSR adjacency, and the arc arena
//     every shortcut can be recursively unpacked through.
//   - Engine (query.go) answers point queries on the overlay with a
//     bidirectional upward Dijkstra running on two pooled epoch-stamped
//     search.Workspace instances — 0 allocs/op for distance queries in
//     steady state, and full path unpacking for path queries. Engine
//     implements search.PointEngine, which is how the server installs it.
//   - MTM (mtm.go) answers whole Q(S, T) tables with the many-to-many
//     bucket algorithm — |S|+|T| upward sweeps joined at per-node bucket
//     entries instead of |S|·|T| point queries, 0 allocs/op for
//     distance-only tables. MTM implements search.TableEngine, which is
//     how the server routes wide obfuscated queries to it.
//   - Recustomize (customize.go) is the live-update half: a customizable
//     overlay (BuildCustomizable) separates the metric-independent
//     contraction structure from a weight layer that a bottom-up triangle
//     pass recomputes in milliseconds after arc costs change — no
//     re-contraction, same query engines.
//   - Write/Read (io.go) persist an Overlay in the versioned, checksummed
//     binary format documented in docs/FORMATS.md, so deployments build the
//     hierarchy once (cmd/opaque-preprocess) and serve from it everywhere.
//
// # Correctness
//
// Contraction preserves shortest-path distances among the not-yet-contracted
// nodes at every step: before node v is removed, a witness search checks for
// every in-neighbour x and out-neighbour w whether a path x→…→w avoiding v
// exists that is no longer than the path x→v→w; when none is found (or the
// bounded search gives up looking), the shortcut x→w with cost
// c(x,v)+c(v,w) is inserted. Witness searches are deliberately budgeted —
// giving up early inserts a redundant (never a wrong) shortcut, trading
// overlay size for preprocessing time. The query property tests assert CH
// results equal search.ReferenceDijkstra across random graphs, including
// after a save/load round-trip.
package ch

import (
	"fmt"

	"opaque/internal/roadnet"
)

// arc is one entry of the overlay's arc arena: an original road segment or a
// shortcut, in original traversal direction. Shortcuts reference the two
// arena arcs they bypass (childA: from→via, childB: via→to), so any arc
// recursively unpacks into the original-arc path it represents regardless of
// how deeply shortcuts nest.
type arc struct {
	from, to       int32
	childA, childB int32 // arena indices of the bypassed halves; <0 for original arcs
	cost           float64
}

// Overlay is an immutable contraction-hierarchy over one frozen road
// network. It stores the contraction order (rank), the hierarchy levels, the
// arc arena, and two CSR adjacency views of the arena: the upward forward
// view (out-arcs to higher-ranked nodes, relaxed by the forward search) and
// the upward backward view (in-arcs from higher-ranked nodes, relaxed by the
// backward search). Every arena arc appears in exactly one of the two views.
//
// An Overlay is safe for concurrent use — queries only read it; all mutable
// per-query state lives in search workspaces. It is bound to the graph it
// was built from by node/arc counts and a content checksum (Matches), so a
// persisted overlay cannot silently be served against the wrong map.
type Overlay struct {
	n         int // node count
	nOriginal int // arcs[:nOriginal] are original graph arcs (no children)
	rank      []int32
	level     []int32
	arcs      []arc

	// Upward CSR views over the arena. fwd holds, per node u, the arcs
	// u→w with rank(w) > rank(u); bwd holds, per node u, the arcs x→u with
	// rank(x) > rank(u), keyed by head x (the node the backward search
	// steps to). The cost/head copies keep the query's inner loop on two
	// flat arrays; the arena index is carried for path unpacking.
	fwdOff, bwdOff   []int32
	fwdTo, bwdTo     []roadnet.NodeID
	fwdCost, bwdCost []float64
	fwdArc, bwdArc   []int32

	graphArcs int    // NumArcs of the source graph (self-loops included)
	checksum  uint64 // GraphChecksum (content) of the source graph
	// topoSum is the weight-independent topology checksum of the source
	// graph (roadnet.Graph.TopologyChecksum). It is what the frozen half of
	// the overlay — contraction order and shortcut structure — is bound to:
	// a weight update moves checksum but not topoSum, and Recustomize
	// accepts any graph whose topoSum matches.
	topoSum uint64
	// customizable marks overlays whose contraction inserted a shortcut for
	// every in/out neighbour pair (no witness pruning), making the shortcut
	// structure metric-independent: after a weight update, Recustomize can
	// recompute the weight layer bottom-up instead of re-contracting.
	// Witness-pruned overlays are smaller but bound to one metric forever.
	customizable bool

	// part is the frozen partition structure of a partition-aware overlay
	// (nil when unpartitioned): node→cell assignment, boundary set and the
	// arena's layer classification. It is shared across re-customized
	// generations exactly like the ranks and CSR views; see partition.go.
	part *chPartition
	// The remaining fields are per-generation incremental-customization
	// state of a partitioned overlay: the graph costs the weight layer was
	// derived from (diffed by RecustomizeIncremental to find the touched
	// cells), each cell's exported top-arc relaxations (folded into the top
	// layer without re-running unchanged cells), and whether both are primed
	// — false on overlays freshly loaded from disk, whose first incremental
	// call therefore falls back to a full pass.
	baseCost []float64
	exports  [][]topExport
	incReady bool
}

// NumNodes returns the number of nodes the overlay covers.
func (o *Overlay) NumNodes() int { return o.n }

// NumOriginalArcs returns how many arena arcs are original road segments.
func (o *Overlay) NumOriginalArcs() int { return o.nOriginal }

// NumShortcuts returns how many shortcut arcs contraction inserted.
func (o *Overlay) NumShortcuts() int { return len(o.arcs) - o.nOriginal }

// Rank returns v's contraction rank: 0 for the first node contracted, n-1
// for the most important node. Both query searches only relax arcs toward
// higher ranks.
func (o *Overlay) Rank(v roadnet.NodeID) int { return int(o.rank[v]) }

// Level returns v's hierarchy level — 0 for nodes contracted with no
// previously contracted neighbour, and 1 + max(level of contracted
// neighbours) otherwise. The maximum level bounds shortcut nesting depth.
func (o *Overlay) Level(v roadnet.NodeID) int { return int(o.level[v]) }

// MaxLevel returns the deepest hierarchy level in the overlay.
func (o *Overlay) MaxLevel() int {
	maxL := 0
	for _, l := range o.level {
		if int(l) > maxL {
			maxL = int(l)
		}
	}
	return maxL
}

// Checksum returns the content checksum of the graph the overlay's weights
// were (re)customized for (see GraphChecksum). A weight update on the served
// graph moves the graph's checksum away from this value; serving the overlay
// past that point returns distances from a dead metric.
func (o *Overlay) Checksum() uint64 { return o.checksum }

// TopologyChecksum returns the weight-independent topology checksum of the
// source graph — the identity of the overlay's frozen half.
func (o *Overlay) TopologyChecksum() uint64 { return o.topoSum }

// Customizable reports whether the overlay's shortcut structure is
// metric-independent, i.e. whether Recustomize can refresh its weights after
// a weight update without re-contracting.
func (o *Overlay) Customizable() bool { return o.customizable }

// Matches verifies the overlay was built from exactly this graph — node
// count, arc count and content checksum — and returns a descriptive error
// when it was not. Servers call this before installing a persisted overlay.
func (o *Overlay) Matches(g *roadnet.Graph) error {
	if g == nil {
		return fmt.Errorf("ch: overlay match check against nil graph")
	}
	if g.NumNodes() != o.n || g.NumArcs() != o.graphArcs {
		return fmt.Errorf("ch: overlay was built for a %d-node/%d-arc graph, got %d nodes/%d arcs",
			o.n, o.graphArcs, g.NumNodes(), g.NumArcs())
	}
	if sum := GraphChecksum(g); sum != o.checksum {
		return fmt.Errorf("ch: overlay checksum %016x does not match graph checksum %016x (same shape, different content)", o.checksum, sum)
	}
	return nil
}

// GraphChecksum returns the content checksum overlays bind to: the graph's
// cached roadnet ContentChecksum, which covers node count, every node's
// adjacency heads and every arc's cost bit pattern. Two graphs with the same
// checksum, node count and arc count are treated as identical for overlay
// binding purposes. The value is maintained incrementally across live weight
// updates (roadnet.Graph.WithUpdatedWeights), so comparing it per query is
// O(1), not O(arcs).
func GraphChecksum(g *roadnet.Graph) uint64 { return g.ContentChecksum() }

// buildCSR derives the two upward CSR views from the arena and the ranks.
// It is called by the builder and by Read, so the in-memory layout of a
// loaded overlay is guaranteed identical to a freshly built one.
func (o *Overlay) buildCSR() {
	n := o.n
	fwdCnt := make([]int32, n+1)
	bwdCnt := make([]int32, n+1)
	for i := range o.arcs {
		a := &o.arcs[i]
		if o.rank[a.to] > o.rank[a.from] {
			fwdCnt[a.from+1]++
		} else {
			bwdCnt[a.to+1]++
		}
	}
	for v := 0; v < n; v++ {
		fwdCnt[v+1] += fwdCnt[v]
		bwdCnt[v+1] += bwdCnt[v]
	}
	o.fwdOff, o.bwdOff = fwdCnt, bwdCnt
	nf, nb := o.fwdOff[n], o.bwdOff[n]
	o.fwdTo = make([]roadnet.NodeID, nf)
	o.fwdCost = make([]float64, nf)
	o.fwdArc = make([]int32, nf)
	o.bwdTo = make([]roadnet.NodeID, nb)
	o.bwdCost = make([]float64, nb)
	o.bwdArc = make([]int32, nb)
	nextF := make([]int32, n)
	nextB := make([]int32, n)
	copy(nextF, o.fwdOff[:n])
	copy(nextB, o.bwdOff[:n])
	for i := range o.arcs {
		a := &o.arcs[i]
		if o.rank[a.to] > o.rank[a.from] {
			j := nextF[a.from]
			o.fwdTo[j] = roadnet.NodeID(a.to)
			o.fwdCost[j] = a.cost
			o.fwdArc[j] = int32(i)
			nextF[a.from]++
		} else {
			j := nextB[a.to]
			o.bwdTo[j] = roadnet.NodeID(a.from)
			o.bwdCost[j] = a.cost
			o.bwdArc[j] = int32(i)
			nextB[a.to]++
		}
	}
	// Sort each node's segment by head. Queries scan whole segments, so the
	// order is semantically free — sorted segments are what lets the
	// customization pass binary-search "the arc u→w" out of tens of millions
	// of triangle relaxations instead of scanning adjacency linearly.
	for v := 0; v < n; v++ {
		sortSegmentByHead(o.fwdTo, o.fwdCost, o.fwdArc, int(o.fwdOff[v]), int(o.fwdOff[v+1]))
		sortSegmentByHead(o.bwdTo, o.bwdCost, o.bwdArc, int(o.bwdOff[v]), int(o.bwdOff[v+1]))
	}
}

// sortSegmentByHead insertion-sorts the CSR triple (heads, costs, arcIDs) on
// heads within [lo, hi). Segments are node degrees — small — and nearly
// sorted already (the arena seeds originals in adjacency order), which is
// insertion sort's best case.
func sortSegmentByHead(heads []roadnet.NodeID, costs []float64, arcIDs []int32, lo, hi int) {
	for i := lo + 1; i < hi; i++ {
		h, c, a := heads[i], costs[i], arcIDs[i]
		j := i
		for j > lo && heads[j-1] > h {
			heads[j], costs[j], arcIDs[j] = heads[j-1], costs[j-1], arcIDs[j-1]
			j--
		}
		heads[j], costs[j], arcIDs[j] = h, c, a
	}
}

// String summarises the overlay.
func (o *Overlay) String() string {
	return fmt.Sprintf("ch.Overlay{nodes: %d, original: %d, shortcuts: %d, maxLevel: %d}",
		o.n, o.nOriginal, o.NumShortcuts(), o.MaxLevel())
}
