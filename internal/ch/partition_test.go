package ch

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"opaque/internal/roadnet"
	"opaque/internal/storage"
)

// buildTestPartition returns partitions exercising the battery's shapes:
// the trivial single cell, a two-way cut, many tiny cells, and a crafted
// assignment with cells that have no internal arcs (round-robin by node ID,
// which makes nearly every node a boundary node).
func buildTestPartitions(t *testing.T, g *roadnet.Graph) map[string]*roadnet.Partition {
	t.Helper()
	out := map[string]*roadnet.Partition{}
	for name, cells := range map[string]int{"one-cell": 1, "two-cells": 2, "many-tiny": g.NumNodes() / 3} {
		p, err := roadnet.BuildPartition(g, roadnet.PartitionConfig{Cells: cells, Seed: 99})
		if err != nil {
			t.Fatalf("BuildPartition(%s): %v", name, err)
		}
		out[name] = p
	}
	asg := make([]int32, g.NumNodes())
	for v := range asg {
		asg[v] = int32(v % 4) // round-robin: cells are ID classes, no internal arcs on ring-ish graphs
	}
	p, err := roadnet.NewPartitionFromAssignment(g, asg, 4)
	if err != nil {
		t.Fatal(err)
	}
	out["no-internal-arcs"] = p
	return out
}

// TestPartitionedBuildMatchesReference: a partition-aware customizable
// overlay answers point and many-to-many queries exactly like reference
// Dijkstra, across partition shapes from one cell to degenerate all-boundary
// assignments.
func TestPartitionedBuildMatchesReference(t *testing.T) {
	cases := []struct {
		n, extra int
		seed     int64
	}{
		{n: 40, extra: 60, seed: 21},
		{n: 150, extra: 200, seed: 22},
		{n: 90, extra: 0, seed: 23}, // tree-ish: unique paths
	}
	for _, tc := range cases {
		g := randomIntCostGraph(t, tc.n, tc.extra, tc.seed)
		for name, p := range buildTestPartitions(t, g) {
			o, err := BuildCustomizablePartitioned(g, p)
			if err != nil {
				t.Fatalf("BuildCustomizablePartitioned(n=%d, %s): %v", tc.n, name, err)
			}
			if o.PartitionCells() != p.NumCells() {
				t.Fatalf("%s: overlay reports %d cells, partition has %d", name, o.PartitionCells(), p.NumCells())
			}
			if o.NumBoundaryNodes() != p.NumBoundary() {
				t.Fatalf("%s: overlay reports %d boundary nodes, partition has %d", name, o.NumBoundaryNodes(), p.NumBoundary())
			}
			total := 0
			for l := 0; l <= o.PartitionCells(); l++ {
				total += o.LayerArcCount(l)
			}
			if total != o.NumOriginalArcs()+o.NumShortcuts() {
				t.Fatalf("%s: layer arc counts sum to %d, arena has %d", name, total, o.NumOriginalArcs()+o.NumShortcuts())
			}
			checkAgainstReference(t, storage.NewMemoryGraph(g), o, 40, tc.seed+1000)
		}
	}
}

// classifiedChanges builds a change sequence that deliberately hits boundary
// arcs, cross-cell (cut) arcs and interior arcs, and ends with no-op reverts
// back to the current cost of previously changed arcs.
func classifiedChanges(g *roadnet.Graph, p *roadnet.Partition, rng *rand.Rand) []roadnet.ArcWeightChange {
	var interior, boundary, cross []roadnet.ArcWeightChange
	for v := 0; v < g.NumNodes(); v++ {
		for _, a := range g.Arcs(roadnet.NodeID(v)) {
			if a.To == roadnet.NodeID(v) {
				continue
			}
			ch := roadnet.ArcWeightChange{From: roadnet.NodeID(v), To: a.To, NewCost: float64(1 + rng.Intn(30))}
			switch {
			case p.CellOf(roadnet.NodeID(v)) != p.CellOf(a.To):
				cross = append(cross, ch)
			case p.IsBoundary(roadnet.NodeID(v)) && p.IsBoundary(a.To):
				boundary = append(boundary, ch)
			default:
				interior = append(interior, ch)
			}
		}
	}
	var out []roadnet.ArcWeightChange
	pick := func(pool []roadnet.ArcWeightChange, k int) {
		for i := 0; i < k && len(pool) > 0; i++ {
			out = append(out, pool[rng.Intn(len(pool))])
		}
	}
	pick(interior, 3)
	pick(boundary, 2)
	pick(cross, 2)
	// No-op reverts: re-state the cost an arc already has.
	for i := 0; i < 2 && len(out) > 0; i++ {
		prev := out[rng.Intn(len(out))]
		if c, ok := g.ArcCost(prev.From, prev.To); ok {
			out = append(out, roadnet.ArcWeightChange{From: prev.From, To: prev.To, NewCost: c})
		}
	}
	return out
}

// TestPartitionedRecustomizeIncremental drives random weight-update
// sequences through both RecustomizeIncremental and the full Recustomize
// and asserts the two produce identical arena costs — and that both track
// reference Dijkstra on the updated graph.
func TestPartitionedRecustomizeIncremental(t *testing.T) {
	g := randomIntCostGraph(t, 140, 180, 31)
	rng := rand.New(rand.NewSource(32))
	for name, p := range buildTestPartitions(t, g) {
		o, err := BuildCustomizablePartitioned(g, p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		cur := g
		for round := 0; round < 5; round++ {
			changes := classifiedChanges(cur, p, rng)
			if len(changes) == 0 {
				t.Fatalf("%s: empty change sequence", name)
			}
			next, err := cur.WithUpdatedWeights(changes)
			if err != nil {
				t.Fatal(err)
			}
			inc, stats, err := o.RecustomizeIncremental(next)
			if err != nil {
				t.Fatalf("%s round %d: incremental: %v", name, round, err)
			}
			if stats.Full {
				t.Fatalf("%s round %d: primed overlay fell back to full re-customization", name, round)
			}
			full, err := o.Recustomize(next)
			if err != nil {
				t.Fatalf("%s round %d: full: %v", name, round, err)
			}
			for i := range full.arcs {
				if inc.arcs[i].cost != full.arcs[i].cost {
					t.Fatalf("%s round %d: arena arc %d: incremental cost %v, full cost %v",
						name, round, i, inc.arcs[i].cost, full.arcs[i].cost)
				}
			}
			checkAgainstReference(t, storage.NewMemoryGraph(next), inc, 25, int64(round)*17+41)
			cur, o = next, inc
		}
	}
}

// gridIntCostGraph builds a w×h lattice with integer costs: spatially
// coherent, so an inertial partition has genuinely interior arcs (unlike
// randomIntCostGraph, whose random chain a spatial cut crosses everywhere).
func gridIntCostGraph(t *testing.T, w, h int, seed int64) *roadnet.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := roadnet.NewGraph(w*h, 4*w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			g.AddNode(float64(x)*100, float64(y)*100)
		}
	}
	id := func(x, y int) roadnet.NodeID { return roadnet.NodeID(y*w + x) }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				g.MustAddBidirectionalEdge(id(x, y), id(x+1, y), float64(1+rng.Intn(9)))
			}
			if y+1 < h {
				g.MustAddBidirectionalEdge(id(x, y), id(x, y+1), float64(1+rng.Intn(9)))
			}
		}
	}
	g.Freeze()
	return g
}

// TestRecustomizeIncrementalTouchesOnlyChangedCells pins the cell-locality
// contract: a change confined to one cell's interior re-runs exactly that
// cell, and a change confined to boundary–boundary arcs re-runs no cell at
// all (top refresh only).
func TestRecustomizeIncrementalTouchesOnlyChangedCells(t *testing.T) {
	g := gridIntCostGraph(t, 16, 12, 51)
	p, err := roadnet.BuildPartition(g, roadnet.PartitionConfig{Cells: 8, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	o, err := BuildCustomizablePartitioned(g, p)
	if err != nil {
		t.Fatal(err)
	}

	// Find an arc strictly inside a cell (neither endpoint boundary).
	var interiorChange *roadnet.ArcWeightChange
	var wantCell int
	var boundaryChange *roadnet.ArcWeightChange
	for v := 0; v < g.NumNodes() && (interiorChange == nil || boundaryChange == nil); v++ {
		for _, a := range g.Arcs(roadnet.NodeID(v)) {
			if a.To == roadnet.NodeID(v) {
				continue
			}
			vb, tb := p.IsBoundary(roadnet.NodeID(v)), p.IsBoundary(a.To)
			if interiorChange == nil && !vb && !tb {
				interiorChange = &roadnet.ArcWeightChange{From: roadnet.NodeID(v), To: a.To, NewCost: a.Cost + 7}
				wantCell = p.CellOf(roadnet.NodeID(v))
			}
			if boundaryChange == nil && vb && tb {
				boundaryChange = &roadnet.ArcWeightChange{From: roadnet.NodeID(v), To: a.To, NewCost: a.Cost + 5}
			}
		}
	}
	if interiorChange == nil || boundaryChange == nil {
		t.Fatalf("grid graph/partition produced no suitable arcs (interior=%v boundary=%v)",
			interiorChange != nil, boundaryChange != nil)
	}

	g2, err := g.WithUpdatedWeights([]roadnet.ArcWeightChange{*interiorChange})
	if err != nil {
		t.Fatal(err)
	}
	o2, stats, err := o.RecustomizeIncremental(g2)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Recustomized) != 1 || stats.Recustomized[0] != wantCell {
		t.Fatalf("interior change in cell %d re-customized cells %v", wantCell, stats.Recustomized)
	}
	// TopRefreshed is diff-accurate: a touched cell triggers top work only
	// when one of its boundary exports actually moved, which this particular
	// interior arc may or may not do — correctness is pinned by the reference
	// check below either way.
	if len(stats.CellDuration) != len(stats.Recustomized) {
		t.Fatalf("stats misaligned: %d cells, %d durations", len(stats.Recustomized), len(stats.CellDuration))
	}
	checkAgainstReference(t, storage.NewMemoryGraph(g2), o2, 20, 61)

	g3, err := g2.WithUpdatedWeights([]roadnet.ArcWeightChange{*boundaryChange})
	if err != nil {
		t.Fatal(err)
	}
	o3, stats, err := o2.RecustomizeIncremental(g3)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Recustomized) != 0 {
		t.Fatalf("boundary-only change re-customized cells %v, want none", stats.Recustomized)
	}
	if !stats.TopRefreshed {
		t.Fatal("boundary-only change must refresh the top layer")
	}
	checkAgainstReference(t, storage.NewMemoryGraph(g3), o3, 20, 62)

	// A no-op "update" (same costs) touches nothing.
	g4, err := g3.WithUpdatedWeights([]roadnet.ArcWeightChange{{From: boundaryChange.From, To: boundaryChange.To, NewCost: boundaryChange.NewCost}})
	if err != nil {
		t.Fatal(err)
	}
	_, stats, err = o3.RecustomizeIncremental(g4)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Recustomized) != 0 || stats.TopRefreshed {
		t.Fatalf("no-op update did work: cells %v, top=%v", stats.Recustomized, stats.TopRefreshed)
	}
}

// TestPartitionedOverlayV3RoundTrip: a partitioned overlay survives the
// OCH1 v3 save/load round-trip — partition metadata intact, queries equal
// reference — and the first incremental re-customization after a load falls
// back to one full pass (priming), after which updates are cell-local again.
func TestPartitionedOverlayV3RoundTrip(t *testing.T) {
	g := randomIntCostGraph(t, 120, 150, 71)
	p, err := roadnet.BuildPartition(g, roadnet.PartitionConfig{Cells: 6, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	o, err := BuildCustomizablePartitioned(g, p)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(o, &buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.PartitionCells() != o.PartitionCells() {
		t.Fatalf("loaded overlay has %d cells, want %d", loaded.PartitionCells(), o.PartitionCells())
	}
	for v := 0; v < g.NumNodes(); v++ {
		wc, wb := o.CellOfNode(roadnet.NodeID(v))
		gc, gb := loaded.CellOfNode(roadnet.NodeID(v))
		if wc != gc || wb != gb {
			t.Fatalf("node %d: loaded cell/boundary (%d,%v), want (%d,%v)", v, gc, gb, wc, wb)
		}
	}
	if err := loaded.Matches(g); err != nil {
		t.Fatal(err)
	}
	checkAgainstReference(t, storage.NewMemoryGraph(g), loaded, 25, 72)

	// Loaded overlays have no incremental state: first incremental primes.
	rng := rand.New(rand.NewSource(73))
	g2, err := g.WithUpdatedWeights(randomWeightChanges(g, rng, 3))
	if err != nil {
		t.Fatal(err)
	}
	primed, stats, err := loaded.RecustomizeIncremental(g2)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Full {
		t.Fatal("first incremental after load must report a full fall-back")
	}
	checkAgainstReference(t, storage.NewMemoryGraph(g2), primed, 20, 74)
	g3, err := g2.WithUpdatedWeights(randomWeightChanges(g2, rng, 2))
	if err != nil {
		t.Fatal(err)
	}
	o3, stats, err := primed.RecustomizeIncremental(g3)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Full {
		t.Fatal("second incremental after priming must be cell-local")
	}
	checkAgainstReference(t, storage.NewMemoryGraph(g3), o3, 20, 75)
}

// writeV2 replicates the retired version-2 writer byte for byte: the same
// payload as version 3 minus the partition section, inside a version-2
// envelope. It exists so the compatibility test reads a genuine v2 stream
// rather than a fixture that silently drifts.
func writeV2(t *testing.T, o *Overlay, buf *bytes.Buffer) {
	t.Helper()
	bw, err := storage.NewBinaryWriter(buf, OverlayMagic, 2)
	if err != nil {
		t.Fatal(err)
	}
	bw.U32(uint32(o.n))
	bw.U32(uint32(o.graphArcs))
	bw.U64(o.checksum)
	bw.U64(o.topoSum)
	flags := uint32(0)
	if o.customizable {
		flags |= flagCustomizable
	}
	bw.U32(flags)
	bw.U32(uint32(o.nOriginal))
	bw.U32(uint32(len(o.arcs)))
	for _, r := range o.rank {
		bw.U32(uint32(r))
	}
	for _, l := range o.level {
		bw.U32(uint32(l))
	}
	for i := range o.arcs {
		a := &o.arcs[i]
		bw.U32(uint32(a.from))
		bw.U32(uint32(a.to))
		bw.I32(a.childA)
		bw.I32(a.childB)
		bw.F64(a.cost)
	}
	if err := bw.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestOverlayV2Compatibility: a pre-partition version-2 file still loads,
// answers queries, and re-customizes — as a single-cell (unpartitioned)
// overlay.
func TestOverlayV2Compatibility(t *testing.T) {
	g := randomIntCostGraph(t, 80, 100, 81)
	o, err := BuildCustomizable(g)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	writeV2(t, o, &buf)
	loaded, err := Read(&buf)
	if err != nil {
		t.Fatalf("reading v2 overlay: %v", err)
	}
	if loaded.PartitionCells() != 0 {
		t.Fatalf("v2 overlay reports %d partition cells, want 0 (unpartitioned)", loaded.PartitionCells())
	}
	if !loaded.Customizable() {
		t.Fatal("v2 overlay lost its customizable flag")
	}
	if err := loaded.Matches(g); err != nil {
		t.Fatal(err)
	}
	checkAgainstReference(t, storage.NewMemoryGraph(g), loaded, 25, 82)

	rng := rand.New(rand.NewSource(83))
	g2, err := g.WithUpdatedWeights(randomWeightChanges(g, rng, 4))
	if err != nil {
		t.Fatal(err)
	}
	re, stats, err := loaded.RecustomizeIncremental(g2)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Full || stats.Cells != 0 {
		t.Fatalf("v2 overlay incremental stats = %+v, want full fall-back with 0 cells", stats)
	}
	checkAgainstReference(t, storage.NewMemoryGraph(g2), re, 20, 84)

	// A v2 envelope claiming the partition flag is corrupt: version 3
	// introduced that section, so Read must refuse before decoding records.
	var bad bytes.Buffer
	bw, err := storage.NewBinaryWriter(&bad, OverlayMagic, 2)
	if err != nil {
		t.Fatal(err)
	}
	bw.U32(uint32(o.n))
	bw.U32(uint32(o.graphArcs))
	bw.U64(o.checksum)
	bw.U64(o.topoSum)
	bw.U32(flagCustomizable | flagPartitioned)
	bw.U32(uint32(o.nOriginal))
	bw.U32(uint32(len(o.arcs)))
	if err := bw.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(&bad); err == nil || !strings.Contains(err.Error(), "partition section") {
		t.Fatalf("v2 file with partition flag: got %v, want partition-section error", err)
	}
}

// FuzzPartitionedRecustomize is the partition fuzz target: random graph
// shape, random cell count, random change set — incremental re-customization
// must equal the full pass arc for arc, and spot queries must equal
// reference Dijkstra.
func FuzzPartitionedRecustomize(f *testing.F) {
	f.Add(int64(1), uint8(40), uint8(60), uint8(4), uint8(3))
	f.Add(int64(2), uint8(12), uint8(0), uint8(12), uint8(1))
	f.Add(int64(3), uint8(90), uint8(120), uint8(1), uint8(5))
	f.Add(int64(4), uint8(25), uint8(30), uint8(25), uint8(2))
	f.Fuzz(func(t *testing.T, seed int64, n, extra, cells, nChanges uint8) {
		nn := int(n)%180 + 4
		g := randomIntCostGraph(t, nn, int(extra), seed)
		p, err := roadnet.BuildPartition(g, roadnet.PartitionConfig{Cells: int(cells), Seed: seed})
		if err != nil {
			t.Fatalf("BuildPartition: %v", err)
		}
		o, err := BuildCustomizablePartitioned(g, p)
		if err != nil {
			t.Fatalf("BuildCustomizablePartitioned: %v", err)
		}
		rng := rand.New(rand.NewSource(seed ^ 0x5eed))
		g2, err := g.WithUpdatedWeights(randomWeightChanges(g, rng, int(nChanges)%8+1))
		if err != nil {
			t.Fatal(err)
		}
		inc, stats, err := o.RecustomizeIncremental(g2)
		if err != nil {
			t.Fatalf("incremental: %v", err)
		}
		if stats.Full {
			t.Fatal("primed overlay fell back to full re-customization")
		}
		full, err := o.Recustomize(g2)
		if err != nil {
			t.Fatalf("full: %v", err)
		}
		for i := range full.arcs {
			if inc.arcs[i].cost != full.arcs[i].cost {
				t.Fatalf("arena arc %d: incremental %v, full %v", i, inc.arcs[i].cost, full.arcs[i].cost)
			}
		}
		checkAgainstReference(t, storage.NewMemoryGraph(g2), inc, 10, seed+9)
	})
}
