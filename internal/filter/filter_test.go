package filter

import (
	"testing"

	"opaque/internal/obfuscate"
	"opaque/internal/roadnet"
	"opaque/internal/search"
)

// mapCandidates is a CandidateSet backed by a map, used to feed the filter
// arbitrary server replies.
type mapCandidates map[[2]roadnet.NodeID]search.Path

func (m mapCandidates) Path(s, t roadnet.NodeID) (search.Path, bool) {
	p, ok := m[[2]roadnet.NodeID{s, t}]
	return p, ok
}

func lineGraph(t *testing.T) *roadnet.Graph {
	t.Helper()
	g := roadnet.NewGraph(5, 8)
	for i := 0; i < 5; i++ {
		g.AddNode(float64(i), 0)
	}
	for i := 0; i < 4; i++ {
		g.MustAddBidirectionalEdge(roadnet.NodeID(i), roadnet.NodeID(i+1), 1)
	}
	g.Freeze()
	return g
}

func TestExtract(t *testing.T) {
	g := lineGraph(t)
	q := obfuscate.ObfuscatedQuery{
		Sources: []roadnet.NodeID{0, 1},
		Dests:   []roadnet.NodeID{3, 4},
		Members: []obfuscate.Request{
			{User: "alice", Source: 0, Dest: 4},
			{User: "bob", Source: 1, Dest: 3},
		},
	}
	candidates := mapCandidates{
		{0, 3}: {Nodes: []roadnet.NodeID{0, 1, 2, 3}, Cost: 3},
		{0, 4}: {Nodes: []roadnet.NodeID{0, 1, 2, 3, 4}, Cost: 4},
		{1, 3}: {Nodes: []roadnet.NodeID{1, 2, 3}, Cost: 2},
		{1, 4}: {Nodes: []roadnet.NodeID{1, 2, 3, 4}, Cost: 3},
	}
	results, err := NewVerifying(g).Extract(q, candidates)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results, want 2", len(results))
	}
	if !results[0].Found || results[0].Path.Cost != 4 || results[0].Request.User != "alice" {
		t.Errorf("alice result = %+v", results[0])
	}
	if !results[1].Found || results[1].Path.Cost != 2 || results[1].Request.User != "bob" {
		t.Errorf("bob result = %+v", results[1])
	}
}

func TestExtractMissingPair(t *testing.T) {
	g := lineGraph(t)
	q := obfuscate.ObfuscatedQuery{
		Sources: []roadnet.NodeID{0},
		Dests:   []roadnet.NodeID{4},
		Members: []obfuscate.Request{{User: "alice", Source: 0, Dest: 4}},
	}
	results, err := New().Extract(q, mapCandidates{})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Found {
		t.Error("missing candidate reported as found")
	}
	_ = g
}

func TestExtractUnreachableDestination(t *testing.T) {
	q := obfuscate.ObfuscatedQuery{
		Sources: []roadnet.NodeID{0},
		Dests:   []roadnet.NodeID{4},
		Members: []obfuscate.Request{{User: "alice", Source: 0, Dest: 4}},
	}
	candidates := mapCandidates{{0, 4}: {}} // empty path = unreachable
	results, err := New().Extract(q, candidates)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Found {
		t.Error("unreachable destination reported as found")
	}
}

func TestExtractVerificationRejectsFabricatedPath(t *testing.T) {
	g := lineGraph(t)
	q := obfuscate.ObfuscatedQuery{
		Sources: []roadnet.NodeID{0},
		Dests:   []roadnet.NodeID{4},
		Members: []obfuscate.Request{{User: "alice", Source: 0, Dest: 4}},
	}
	// The "server" returns a path using a road that does not exist (0 -> 4
	// directly).
	candidates := mapCandidates{{0, 4}: {Nodes: []roadnet.NodeID{0, 4}, Cost: 1}}
	if _, err := NewVerifying(g).Extract(q, candidates); err == nil {
		t.Error("fabricated path passed verification")
	}
	// The non-verifying filter accepts it (it trusts the server).
	if _, err := New().Extract(q, candidates); err != nil {
		t.Errorf("non-verifying filter should not error: %v", err)
	}
}

func TestExtractVerificationAcceptsDifferentCosts(t *testing.T) {
	// The server's live-traffic costs may differ from the obfuscator map's
	// static costs; structural verification must still pass.
	g := lineGraph(t)
	q := obfuscate.ObfuscatedQuery{
		Sources: []roadnet.NodeID{0},
		Dests:   []roadnet.NodeID{2},
		Members: []obfuscate.Request{{User: "alice", Source: 0, Dest: 2}},
	}
	candidates := mapCandidates{{0, 2}: {Nodes: []roadnet.NodeID{0, 1, 2}, Cost: 97}}
	results, err := NewVerifying(g).Extract(q, candidates)
	if err != nil {
		t.Fatalf("structurally valid path with different cost rejected: %v", err)
	}
	if !results[0].Found {
		t.Error("result not found")
	}
}

func TestExtractOneAndNilCandidates(t *testing.T) {
	g := lineGraph(t)
	req := obfuscate.Request{User: "alice", Source: 0, Dest: 3}
	res, err := NewVerifying(g).ExtractOne(req, mapCandidates{{0, 3}: {Nodes: []roadnet.NodeID{0, 1, 2, 3}, Cost: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || res.Path.Cost != 3 {
		t.Errorf("ExtractOne = %+v", res)
	}
	if _, err := New().Extract(obfuscate.ObfuscatedQuery{}, nil); err == nil {
		t.Error("nil candidate set accepted")
	}
}
