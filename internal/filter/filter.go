// Package filter implements the candidate result path filter of the OPAQUE
// obfuscator (Figures 5 and 6 of the paper): after the directions search
// server returns the candidate result paths of an obfuscated path query
// Q(S, T), the filter picks out, for each pending request, the path that
// answers its true query Q(s, t), optionally verifying the path against the
// obfuscator's own road map, and then discards the satisfied request.
package filter

import (
	"fmt"

	"opaque/internal/obfuscate"
	"opaque/internal/roadnet"
	"opaque/internal/search"
)

// CandidateSet is what the server returns for one obfuscated query: the
// candidate result paths addressable by (source, destination).
type CandidateSet interface {
	// Path returns the candidate path for the pair and whether the pair was
	// part of the query.
	Path(source, dest roadnet.NodeID) (search.Path, bool)
}

// Result pairs one request with its extracted path.
type Result struct {
	Request obfuscate.Request
	Path    search.Path
	// Found is false when the server's candidate set did not contain the
	// request's pair (a protocol violation) or contained an empty path
	// (destination unreachable).
	Found bool
}

// Filter extracts each member's true path from a candidate set. When verify
// is non-nil, each extracted path is additionally validated as a real walk on
// that graph; validation failures are reported as errors because they mean
// the server returned a corrupt or fabricated path.
type Filter struct {
	verify *roadnet.Graph
}

// New returns a filter without path verification.
func New() *Filter { return &Filter{} }

// NewVerifying returns a filter that validates extracted paths against g (the
// obfuscator's simple road map). Costs may legitimately differ from the
// obfuscator's map when the server has better data, so only structural
// validity (consecutive nodes connected) is enforced, not cost equality.
func NewVerifying(g *roadnet.Graph) *Filter { return &Filter{verify: g} }

// Extract returns the result for each member of the obfuscated query, in
// member order.
func (f *Filter) Extract(q obfuscate.ObfuscatedQuery, candidates CandidateSet) ([]Result, error) {
	if candidates == nil {
		return nil, fmt.Errorf("filter: nil candidate set")
	}
	out := make([]Result, 0, len(q.Members))
	for _, m := range q.Members {
		p, ok := candidates.Path(m.Source, m.Dest)
		res := Result{Request: m, Path: p, Found: ok && !p.Empty()}
		if res.Found && f.verify != nil {
			if err := verifyWalk(f.verify, p); err != nil {
				return nil, fmt.Errorf("filter: path for user %q failed verification: %w", m.User, err)
			}
		}
		out = append(out, res)
	}
	return out, nil
}

// ExtractOne returns the path answering a single request from the candidate
// set.
func (f *Filter) ExtractOne(req obfuscate.Request, candidates CandidateSet) (Result, error) {
	results, err := f.Extract(obfuscate.ObfuscatedQuery{Members: []obfuscate.Request{req}}, candidates)
	if err != nil {
		return Result{}, err
	}
	return results[0], nil
}

// verifyWalk checks structural validity: the path's endpoints and that each
// consecutive pair is connected by an arc in g. Unlike search.Path.Validate
// it does not compare costs, because the server's edge costs (live traffic)
// may differ from the obfuscator's static map.
func verifyWalk(g *roadnet.Graph, p search.Path) error {
	if p.Empty() {
		return nil
	}
	for i := 0; i+1 < len(p.Nodes); i++ {
		if !g.ValidNode(p.Nodes[i]) || !g.ValidNode(p.Nodes[i+1]) {
			return fmt.Errorf("step %d references unknown node", i)
		}
		if _, ok := g.ArcCost(p.Nodes[i], p.Nodes[i+1]); !ok {
			return fmt.Errorf("step %d: no road segment from %d to %d", i, p.Nodes[i], p.Nodes[i+1])
		}
	}
	return nil
}
