package search

import (
	"math"
	"testing"

	"opaque/internal/roadnet"
	"opaque/internal/storage"
)

// stubTableEngine is a TableEngine that answers from per-pair Dijkstra,
// recording which face was called — enough to test the processor wiring
// without importing internal/ch (which would invert the dependency).
type stubTableEngine struct {
	tableCalls, distCalls int
}

func (e *stubTableEngine) evaluate(acc storage.Accessor, sources, dests []roadnet.NodeID, needPaths bool) (MSMDResult, error) {
	res := MSMDResult{
		Sources: append([]roadnet.NodeID(nil), sources...),
		Dests:   append([]roadnet.NodeID(nil), dests...),
		Dists:   make([][]float64, len(sources)),
	}
	if needPaths {
		res.Paths = make([][]Path, len(sources))
	}
	for i, s := range sources {
		res.Dists[i] = make([]float64, len(dests))
		if needPaths {
			res.Paths[i] = make([]Path, len(dests))
		}
		for j, d := range dests {
			p, st, err := Dijkstra(acc, s, d)
			if err != nil {
				return MSMDResult{}, err
			}
			res.Stats = res.Stats.Add(st)
			if p.Empty() && s != d {
				res.Dists[i][j] = math.Inf(1)
			} else {
				res.Dists[i][j] = p.Cost
			}
			if needPaths {
				res.Paths[i][j] = p
			}
		}
	}
	return res, nil
}

func (e *stubTableEngine) EvaluateTable(acc storage.Accessor, sources, dests []roadnet.NodeID) (MSMDResult, error) {
	e.tableCalls++
	return e.evaluate(acc, sources, dests, true)
}

func (e *stubTableEngine) EvaluateDistances(acc storage.Accessor, sources, dests []roadnet.NodeID) (MSMDResult, error) {
	e.distCalls++
	return e.evaluate(acc, sources, dests, false)
}

// TestStrategyTableEngine exercises the table-engine strategy end to end:
// Evaluate routes to EvaluateTable, EvaluateDistances to the distance-only
// face, results match SSMD, and the strategy without an engine is rejected.
func TestStrategyTableEngine(t *testing.T) {
	acc := storage.NewMemoryGraph(mediumGraph(t))
	eng := &stubTableEngine{}
	proc := NewProcessor(acc, WithStrategy(StrategyTableEngine), WithTableEngine(eng))
	ssmd := NewProcessor(acc)

	sources := []roadnet.NodeID{0, 5}
	dests := []roadnet.NodeID{10, 20, 0}
	got, err := proc.Evaluate(sources, dests)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ssmd.Evaluate(sources, dests)
	if err != nil {
		t.Fatal(err)
	}
	if eng.tableCalls != 1 || eng.distCalls != 0 {
		t.Fatalf("Evaluate called (table=%d, dist=%d), want (1, 0)", eng.tableCalls, eng.distCalls)
	}
	if !got.HasPaths() {
		t.Fatal("Evaluate result has no paths")
	}
	for i := range sources {
		for j := range dests {
			if got.Dists[i][j] != want.Dists[i][j] {
				t.Fatalf("cell (%d,%d): table engine %v, SSMD %v", i, j, got.Dists[i][j], want.Dists[i][j])
			}
		}
	}

	dist, err := proc.EvaluateDistances(sources, dests)
	if err != nil {
		t.Fatal(err)
	}
	if eng.distCalls != 1 {
		t.Fatalf("EvaluateDistances did not hit the distance-only face (dist=%d)", eng.distCalls)
	}
	if dist.HasPaths() {
		t.Fatal("distance-only result carries paths")
	}
	if d, ok := dist.Distance(sources[0], dests[0]); !ok || d != want.Dists[0][0] {
		t.Fatalf("Distance accessor = %v, %v; want %v", d, ok, want.Dists[0][0])
	}
	if _, ok := dist.Path(sources[0], dests[0]); ok {
		t.Fatal("Path accessor claims a path on a distance-only result")
	}

	if _, err := NewProcessor(acc, WithStrategy(StrategyTableEngine)).Evaluate(sources, dests); err == nil {
		t.Fatal("StrategyTableEngine without WithTableEngine accepted")
	}
	if _, err := proc.Evaluate(nil, dests); err == nil {
		t.Fatal("empty source set accepted")
	}
}

// TestEvaluateFillsDists asserts every ordinary strategy's Evaluate result
// carries the derived distance matrix, +Inf for unreachable cells.
func TestEvaluateFillsDists(t *testing.T) {
	// Two disconnected islands: 0-1 and 2-3.
	g := roadnet.NewGraph(4, 2)
	for i := 0; i < 4; i++ {
		g.AddNode(float64(i), 0)
	}
	g.MustAddBidirectionalEdge(0, 1, 5)
	g.MustAddBidirectionalEdge(2, 3, 7)
	g.Freeze()
	acc := storage.NewMemoryGraph(g)
	for _, strat := range []Strategy{StrategySSMD, StrategyPairwise} {
		res, err := NewProcessor(acc, WithStrategy(strat)).Evaluate([]roadnet.NodeID{0}, []roadnet.NodeID{1, 2, 0})
		if err != nil {
			t.Fatal(err)
		}
		if res.Dists == nil {
			t.Fatalf("%s: Evaluate left Dists nil", strat)
		}
		if res.Dists[0][0] != 5 {
			t.Fatalf("%s: d(0,1) = %v, want 5", strat, res.Dists[0][0])
		}
		if !math.IsInf(res.Dists[0][1], 1) {
			t.Fatalf("%s: d(0,2) = %v, want +Inf", strat, res.Dists[0][1])
		}
		if res.Dists[0][2] != 0 {
			t.Fatalf("%s: d(0,0) = %v, want 0", strat, res.Dists[0][2])
		}
	}
}
