package search

import (
	"container/list"
	"sync"
	"sync/atomic"

	"opaque/internal/roadnet"
	"opaque/internal/storage"
)

// TreeCacheStats is a snapshot of the cache's effectiveness counters.
type TreeCacheStats struct {
	// Hits counts Evaluate calls served by an existing tree (possibly after
	// resuming its growth); Misses counts calls that had to build a tree.
	Hits, Misses int64
	// Resumes counts hits that still had to grow the tree further because a
	// destination was not settled yet (a partial hit).
	Resumes int64
	// Evictions counts trees dropped to respect the capacity bound;
	// Invalidations counts trees dropped because the accessor's data
	// generation moved past them.
	Evictions, Invalidations int64
}

// HitRatio returns Hits / (Hits + Misses), or 0 before any lookup.
func (s TreeCacheStats) HitRatio() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// TreeCache is an LRU cache of resumable SSMD spanning trees keyed by
// (source node, accessor data generation). The directions search server uses
// it to share settled shortest-path trees across obfuscated queries whose
// source sets overlap — under shared-mode obfuscation the obfuscator
// deliberately reuses endpoints, so consecutive Q(S, T) batches hit the same
// sources again and again. A hit turns a full Dijkstra run into (at worst) an
// incremental frontier expansion and (at best) pure path reconstruction.
//
// Entries computed under an older accessor generation (see storage.Versioned)
// are dropped the moment the same source is requested again, so a
// BumpGeneration on the accessor invalidates the cache without any
// coordination.
//
// TreeCache is safe for concurrent use. The cache lock is held only for
// lookup bookkeeping — the O(n) label allocation of a new tree happens
// outside it, and tree growth runs under the individual tree's lock — so
// queries on distinct sources proceed in parallel while queries on the same
// source serialise and share each other's work.
type TreeCache struct {
	capacity int

	mu      sync.Mutex
	entries map[roadnet.NodeID]*list.Element // at most one entry per source
	lru     *list.List                       // front = most recently used; values are *cacheEntry

	hits          atomic.Int64
	misses        atomic.Int64
	resumes       atomic.Int64
	evictions     atomic.Int64
	invalidations atomic.Int64
}

type cacheEntry struct {
	source roadnet.NodeID
	gen    uint64
	tree   *Tree
}

// DefaultTreeCacheSize is the tree capacity used when a caller enables the
// cache without choosing a size. Each tree costs O(n) memory for the distance
// and parent labels of an n-node graph.
const DefaultTreeCacheSize = 256

// NewTreeCache returns a cache holding at most capacity trees (values < 1 use
// DefaultTreeCacheSize).
func NewTreeCache(capacity int) *TreeCache {
	if capacity < 1 {
		capacity = DefaultTreeCacheSize
	}
	return &TreeCache{
		capacity: capacity,
		entries:  make(map[roadnet.NodeID]*list.Element, capacity),
		lru:      list.New(),
	}
}

// Capacity returns the maximum number of trees the cache retains.
func (c *TreeCache) Capacity() int { return c.capacity }

// Len returns the number of trees currently cached.
func (c *TreeCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Stats returns a snapshot of the cache counters.
func (c *TreeCache) Stats() TreeCacheStats {
	return TreeCacheStats{
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Resumes:       c.resumes.Load(),
		Evictions:     c.evictions.Load(),
		Invalidations: c.invalidations.Load(),
	}
}

// Evaluate answers the single-source multi-destination query (source, dests)
// from the cache, building or resuming the source's spanning tree as needed.
// Results are identical to a cold SSMD call; the Stats inside the result
// count only the incremental work performed.
func (c *TreeCache) Evaluate(acc storage.Accessor, source roadnet.NodeID, dests []roadnet.NodeID) (SSMDResult, error) {
	tree, hit, err := c.lookup(acc, source)
	if err != nil {
		return SSMDResult{}, err
	}
	res, err := tree.Paths(dests)
	if err != nil {
		return SSMDResult{}, err
	}
	if hit {
		c.hits.Add(1)
		if res.Stats.SettledNodes > 0 || res.Stats.RelaxedArcs > 0 {
			c.resumes.Add(1) // partial hit: the tree had to grow further
		}
	} else {
		c.misses.Add(1)
	}
	return res, nil
}

// lookup returns the cached tree for (source, current generation), creating
// it on a miss, and reports whether it was already present.
func (c *TreeCache) lookup(acc storage.Accessor, source roadnet.NodeID) (*Tree, bool, error) {
	gen := storage.GenerationOf(acc)
	if tree, ok := c.fetch(source, gen, false); ok {
		return tree, true, nil
	}
	// Build outside the lock: NewTree allocates the O(n) distance and parent
	// labels, which must not serialise unrelated lookups.
	tree, err := NewTree(acc, source)
	if err != nil {
		return nil, false, err
	}
	if shared, ok := c.fetch(source, gen, true); ok {
		// A concurrent miss for the same source inserted first; share its
		// tree (and whatever growth it has already paid for) instead.
		return shared, true, nil
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	el := c.lru.PushFront(&cacheEntry{source: source, gen: gen, tree: tree})
	c.entries[source] = el
	for c.lru.Len() > c.capacity {
		c.removeLocked(c.lru.Back())
		c.evictions.Add(1)
	}
	return tree, false, nil
}

// fetch returns the cached current-generation tree for source, dropping a
// stale-generation entry when it finds one instead. The drop is recorded as
// an invalidation unless this is the recheck after an unlocked tree build,
// which must not double-count a bump the first fetch already charged.
func (c *TreeCache) fetch(source roadnet.NodeID, gen uint64, recheck bool) (*Tree, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[source]
	if !ok {
		return nil, false
	}
	entry := el.Value.(*cacheEntry)
	if entry.gen != gen {
		c.removeLocked(el)
		if !recheck {
			c.invalidations.Add(1)
		}
		return nil, false
	}
	c.lru.MoveToFront(el)
	return entry.tree, true
}

// removeLocked removes one LRU element. Caller holds c.mu.
func (c *TreeCache) removeLocked(el *list.Element) {
	entry := el.Value.(*cacheEntry)
	delete(c.entries, entry.source)
	c.lru.Remove(el)
}

// Purge drops every cached tree (used by tests and by servers that swap
// their accessor wholesale).
func (c *TreeCache) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[roadnet.NodeID]*list.Element, c.capacity)
	c.lru.Init()
}
