package search

import (
	"container/list"
	"sync"
	"sync/atomic"

	"opaque/internal/roadnet"
	"opaque/internal/storage"
)

// TreeCacheStats is a snapshot of the cache's effectiveness counters.
type TreeCacheStats struct {
	// Hits counts Evaluate calls served by an existing tree (possibly after
	// resuming its growth); Misses counts calls that had to build a tree.
	Hits, Misses int64
	// Resumes counts hits that still had to grow the tree further because a
	// destination was not settled yet (a partial hit).
	Resumes int64
	// Evictions counts trees dropped to respect the capacity bound;
	// Invalidations counts trees dropped because the accessor's data
	// generation moved past them.
	Evictions, Invalidations int64
}

// HitRatio returns Hits / (Hits + Misses), or 0 before any lookup.
func (s TreeCacheStats) HitRatio() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// TreeCache is an LRU cache of resumable SSMD spanning trees keyed by
// (source node, accessor data generation). The directions search server uses
// it to share settled shortest-path trees across obfuscated queries whose
// source sets overlap — under shared-mode obfuscation the obfuscator
// deliberately reuses endpoints, so consecutive Q(S, T) batches hit the same
// sources again and again. A hit turns a full Dijkstra run into (at worst) an
// incremental frontier expansion and (at best) pure path reconstruction.
//
// Entries computed under an older accessor generation (see storage.Versioned)
// are dropped the moment the same source is requested again, so a
// BumpGeneration on the accessor invalidates the cache without any
// coordination.
//
// TreeCache is safe for concurrent use. The cache lock is held only for
// lookup bookkeeping — building a new tree (an O(1) epoch-stamped workspace
// checkout) happens outside it, and tree growth runs under the individual
// tree's lock — so queries on distinct sources proceed in parallel while
// queries on the same source serialise and share each other's work.
//
// Cached trees hold their label arrays in pooled search workspaces rather
// than private O(n) slices: the cache retains one reference per entry and
// every Evaluate pins the tree for the duration of the call, so an eviction
// or invalidation recycles the workspace to the pool as soon as the last
// in-flight query on that tree finishes.
type TreeCache struct {
	capacity int
	// wsPool supplies the workspaces new trees live on; evicted trees
	// recycle theirs back into the same pool.
	wsPool *WorkspacePool

	mu      sync.Mutex
	entries map[roadnet.NodeID]*list.Element // at most one entry per source
	lru     *list.List                       // front = most recently used; values are *cacheEntry

	hits          atomic.Int64
	misses        atomic.Int64
	resumes       atomic.Int64
	evictions     atomic.Int64
	invalidations atomic.Int64
}

type cacheEntry struct {
	source roadnet.NodeID
	gen    uint64
	tree   *Tree
}

// DefaultTreeCacheSize is the tree capacity used when a caller enables the
// cache without choosing a size. Each tree costs O(n) memory for the distance
// and parent labels of an n-node graph.
const DefaultTreeCacheSize = 256

// NewTreeCache returns a cache holding at most capacity trees (values < 1 use
// DefaultTreeCacheSize), drawing tree workspaces from the package's shared
// pool.
func NewTreeCache(capacity int) *TreeCache {
	return NewTreeCacheWithPool(capacity, sharedWorkspaces)
}

// NewTreeCacheWithPool is NewTreeCache with an explicit workspace pool, so a
// server can keep its cached spanning trees on the same pool its batch
// workers draw per-query workspaces from.
func NewTreeCacheWithPool(capacity int, wp *WorkspacePool) *TreeCache {
	if capacity < 1 {
		capacity = DefaultTreeCacheSize
	}
	if wp == nil {
		wp = sharedWorkspaces
	}
	return &TreeCache{
		capacity: capacity,
		wsPool:   wp,
		entries:  make(map[roadnet.NodeID]*list.Element, capacity),
		lru:      list.New(),
	}
}

// Capacity returns the maximum number of trees the cache retains.
func (c *TreeCache) Capacity() int { return c.capacity }

// Len returns the number of trees currently cached.
func (c *TreeCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Stats returns a snapshot of the cache counters.
func (c *TreeCache) Stats() TreeCacheStats {
	return TreeCacheStats{
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Resumes:       c.resumes.Load(),
		Evictions:     c.evictions.Load(),
		Invalidations: c.invalidations.Load(),
	}
}

// Evaluate answers the single-source multi-destination query (source, dests)
// from the cache, building or resuming the source's spanning tree as needed.
// Results are identical to a cold SSMD call; the Stats inside the result
// count only the incremental work performed.
func (c *TreeCache) Evaluate(acc storage.Accessor, source roadnet.NodeID, dests []roadnet.NodeID) (SSMDResult, error) {
	tree, hit, err := c.lookup(acc, source)
	if err != nil {
		return SSMDResult{}, err
	}
	// lookup pinned the tree for us; let go once the paths are extracted so
	// an eviction that raced this call can recycle the tree's workspace.
	defer tree.Release()
	res, err := tree.Paths(dests)
	if err != nil {
		return SSMDResult{}, err
	}
	if hit {
		c.hits.Add(1)
		if res.Stats.SettledNodes > 0 || res.Stats.RelaxedArcs > 0 {
			c.resumes.Add(1) // partial hit: the tree had to grow further
		}
	} else {
		c.misses.Add(1)
	}
	return res, nil
}

// lookup returns the cached tree for (source, current generation), creating
// it on a miss, and reports whether it was already present. The returned
// tree is pinned (reference held) for the caller, who must Release it.
func (c *TreeCache) lookup(acc storage.Accessor, source roadnet.NodeID) (*Tree, bool, error) {
	gen := storage.GenerationOf(acc)
	if tree, ok := c.fetch(source, gen); ok {
		return tree, true, nil
	}
	// Build outside the lock: checking the tree's workspace out of the pool
	// (and any array growth it triggers) must not serialise unrelated
	// lookups.
	tree, err := newTreeFromPool(c.wsPool, acc, source)
	if err != nil {
		return nil, false, err
	}

	// Recheck and insert under ONE lock acquisition: with separate ones,
	// two concurrent misses for the same source could both pass the recheck
	// and both insert, stranding a duplicate LRU element whose eventual
	// eviction would delete the live map entry.
	c.mu.Lock()
	if el, ok := c.entries[source]; ok {
		entry := el.Value.(*cacheEntry)
		if entry.gen == gen {
			// A concurrent miss for the same source inserted first; share
			// its tree (and whatever growth it has already paid for), and
			// recycle the tree we built for nothing.
			c.lru.MoveToFront(el)
			entry.tree.retain()
			c.mu.Unlock()
			tree.Release()
			return entry.tree, true, nil
		}
		// Stale generation: drop it without recounting the invalidation the
		// first fetch already charged.
		c.removeLocked(el)
	}
	el := c.lru.PushFront(&cacheEntry{source: source, gen: gen, tree: tree})
	c.entries[source] = el
	// The creator reference now belongs to the cache entry; pin once more
	// for the caller.
	tree.retain()
	for c.lru.Len() > c.capacity {
		c.removeLocked(c.lru.Back())
		c.evictions.Add(1)
	}
	c.mu.Unlock()
	return tree, false, nil
}

// fetch returns the cached current-generation tree for source pinned for the
// caller, dropping a stale-generation entry (recorded as an invalidation)
// when it finds one instead.
func (c *TreeCache) fetch(source roadnet.NodeID, gen uint64) (*Tree, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[source]
	if !ok {
		return nil, false
	}
	entry := el.Value.(*cacheEntry)
	if entry.gen != gen {
		c.removeLocked(el)
		c.invalidations.Add(1)
		return nil, false
	}
	c.lru.MoveToFront(el)
	// Pin under the cache lock: the cache's own reference is only ever
	// dropped under the same lock, so the tree is guaranteed live here.
	entry.tree.retain()
	return entry.tree, true
}

// removeLocked removes one LRU element and drops the cache's reference to
// its tree, recycling the tree's workspace once any in-flight queries are
// done with it. Caller holds c.mu.
func (c *TreeCache) removeLocked(el *list.Element) {
	entry := el.Value.(*cacheEntry)
	delete(c.entries, entry.source)
	c.lru.Remove(el)
	entry.tree.Release()
}

// Purge drops every cached tree (used by tests and by servers that swap
// their accessor wholesale).
func (c *TreeCache) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, el := range c.entries {
		el.Value.(*cacheEntry).tree.Release()
	}
	c.entries = make(map[roadnet.NodeID]*list.Element, c.capacity)
	c.lru.Init()
}
