package search

import (
	"math"

	"opaque/internal/roadnet"
	"opaque/internal/storage"
)

// SSMDResult is the outcome of a single-source multi-destination search: one
// path per requested destination (empty when unreachable), in the same order
// as the destinations passed in.
type SSMDResult struct {
	Source roadnet.NodeID
	Dests  []roadnet.NodeID
	Paths  []Path
	Stats  Stats
}

// PathTo returns the path to dest and whether dest was one of the requested
// destinations.
func (r SSMDResult) PathTo(dest roadnet.NodeID) (Path, bool) {
	for i, d := range r.Dests {
		if d == dest {
			return r.Paths[i], true
		}
	}
	return Path{}, false
}

// SSMD performs the single-source multi-destination search of Section III-B:
// a Dijkstra spanning tree grown from source until every destination in dests
// has been settled (or the frontier is exhausted). This is the primitive the
// obfuscated path query processor uses: with destinations of similar radius,
// its cost is close to a single 1-to-1 search, i.e. O(max_t ||s,t||^2), which
// is what Lemma 1 builds on.
//
// Duplicate destinations are allowed and each receives the same path.
//
// The wrapper borrows an epoch-stamped Workspace from the package pool; the
// SSMD evaluation itself (tentative labels, settled set, pending-destination
// set, priority queue) runs entirely on reused storage.
func SSMD(acc storage.Accessor, source roadnet.NodeID, dests []roadnet.NodeID) (SSMDResult, error) {
	w := AcquireWorkspace(acc.NumNodes())
	defer w.Release()
	return w.SSMD(acc, source, dests)
}

// SSMDDistances runs an SSMD search and returns only the distances to each
// destination (+Inf when unreachable), in destination order.
func SSMDDistances(acc storage.Accessor, source roadnet.NodeID, dests []roadnet.NodeID) ([]float64, Stats, error) {
	res, err := SSMD(acc, source, dests)
	if err != nil {
		return nil, Stats{}, err
	}
	out := make([]float64, len(dests))
	for i, p := range res.Paths {
		if p.Empty() && dests[i] != source {
			out[i] = math.Inf(1)
		} else {
			out[i] = p.Cost
		}
	}
	return out, res.Stats, nil
}
