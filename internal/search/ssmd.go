package search

import (
	"fmt"
	"math"

	"opaque/internal/pqueue"
	"opaque/internal/roadnet"
	"opaque/internal/storage"
)

// SSMDResult is the outcome of a single-source multi-destination search: one
// path per requested destination (empty when unreachable), in the same order
// as the destinations passed in.
type SSMDResult struct {
	Source roadnet.NodeID
	Dests  []roadnet.NodeID
	Paths  []Path
	Stats  Stats
}

// PathTo returns the path to dest and whether dest was one of the requested
// destinations.
func (r SSMDResult) PathTo(dest roadnet.NodeID) (Path, bool) {
	for i, d := range r.Dests {
		if d == dest {
			return r.Paths[i], true
		}
	}
	return Path{}, false
}

// SSMD performs the single-source multi-destination search of Section III-B:
// a Dijkstra spanning tree grown from source until every destination in dests
// has been settled (or the frontier is exhausted). This is the primitive the
// obfuscated path query processor uses: with destinations of similar radius,
// its cost is close to a single 1-to-1 search, i.e. O(max_t ||s,t||^2), which
// is what Lemma 1 builds on.
//
// Duplicate destinations are allowed and each receives the same path.
func SSMD(acc storage.Accessor, source roadnet.NodeID, dests []roadnet.NodeID) (SSMDResult, error) {
	if !validNode(acc, source) {
		return SSMDResult{}, fmt.Errorf("search: invalid source node %d", source)
	}
	if len(dests) == 0 {
		return SSMDResult{}, fmt.Errorf("search: SSMD needs at least one destination")
	}
	for _, d := range dests {
		if !validNode(acc, d) {
			return SSMDResult{}, fmt.Errorf("search: invalid destination node %d", d)
		}
	}
	n := acc.NumNodes()
	dist := newDistSlice(n)
	parent := newParentSlice(n)
	var stats Stats

	// Count distinct destinations still unsettled.
	pending := make(map[roadnet.NodeID]struct{}, len(dests))
	for _, d := range dests {
		pending[d] = struct{}{}
	}

	pq := pqueue.NewWithCapacity(64)
	dist[source] = 0
	pq.Push(int32(source), 0)
	stats.QueueOps++
	if _, ok := pending[source]; ok {
		delete(pending, source)
	}

	for !pq.Empty() && len(pending) > 0 {
		if pq.Len() > stats.MaxFrontier {
			stats.MaxFrontier = pq.Len()
		}
		item := pq.Pop()
		u := roadnet.NodeID(item.Value)
		if item.Priority > dist[u] {
			continue
		}
		stats.SettledNodes++
		if _, ok := pending[u]; ok {
			delete(pending, u)
			if len(pending) == 0 {
				break
			}
		}
		for _, a := range acc.Arcs(u) {
			stats.RelaxedArcs++
			nd := dist[u] + a.Cost
			if nd < dist[a.To] {
				dist[a.To] = nd
				parent[a.To] = u
				pq.Push(int32(a.To), nd)
				stats.QueueOps++
			}
		}
	}

	res := SSMDResult{
		Source: source,
		Dests:  append([]roadnet.NodeID(nil), dests...),
		Paths:  make([]Path, len(dests)),
		Stats:  stats,
	}
	for i, d := range dests {
		if d == source {
			res.Paths[i] = Path{Nodes: []roadnet.NodeID{source}, Cost: 0}
			continue
		}
		if math.IsInf(dist[d], 1) {
			res.Paths[i] = Path{}
			continue
		}
		res.Paths[i] = reconstruct(parent, dist, source, d)
	}
	return res, nil
}

// SSMDDistances runs an SSMD search and returns only the distances to each
// destination (+Inf when unreachable), in destination order.
func SSMDDistances(acc storage.Accessor, source roadnet.NodeID, dests []roadnet.NodeID) ([]float64, Stats, error) {
	res, err := SSMD(acc, source, dests)
	if err != nil {
		return nil, Stats{}, err
	}
	out := make([]float64, len(dests))
	for i, p := range res.Paths {
		if p.Empty() && dests[i] != source {
			out[i] = math.Inf(1)
		} else {
			out[i] = p.Cost
		}
	}
	return out, res.Stats, nil
}
