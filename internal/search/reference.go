package search

import (
	"math"

	"opaque/internal/pqueue"
	"opaque/internal/roadnet"
	"opaque/internal/storage"
)

// This file preserves the pre-workspace, fresh-slice search implementations:
// every call allocates two O(n) arrays, Inf-fills them, and builds a
// map-indexed priority queue from scratch. They are retained deliberately —
// not as dead code — for two jobs:
//
//   - executable specification: the workspace equivalence property tests
//     assert that a pooled, epoch-stamped Workspace reused across randomized
//     queries (and across graph generations) returns byte-identical paths
//     and statistics to these references;
//   - measured baseline: experiment E13 and BenchmarkWorkspaceReuse quantify
//     the hot-path win (allocs/op, queries/sec) against exactly the code the
//     refactor replaced.
//
// They must not be used on any serving path.

// ReferenceDijkstra is the fresh-slice Dijkstra the workspace refactor
// replaced: identical semantics to Dijkstra, O(n) setup cost per call.
func ReferenceDijkstra(acc storage.Accessor, source, dest roadnet.NodeID) (Path, Stats, error) {
	if err := checkEndpoints(acc, source, dest); err != nil {
		return Path{}, Stats{}, err
	}
	n := acc.NumNodes()
	dist := newDistSlice(n)
	parent := newParentSlice(n)
	var stats Stats

	pq := pqueue.NewWithCapacity(64)
	dist[source] = 0
	pq.Push(int32(source), 0)
	stats.QueueOps++

	for !pq.Empty() {
		if pq.Len() > stats.MaxFrontier {
			stats.MaxFrontier = pq.Len()
		}
		item := pq.Pop()
		u := roadnet.NodeID(item.Value)
		if item.Priority > dist[u] {
			continue // stale entry
		}
		stats.SettledNodes++
		if u == dest {
			return reconstruct(parent, dist, source, dest), stats, nil
		}
		for _, a := range acc.Arcs(u) {
			stats.RelaxedArcs++
			nd := dist[u] + a.Cost
			if nd < dist[a.To] {
				dist[a.To] = nd
				parent[a.To] = u
				pq.Push(int32(a.To), nd)
				stats.QueueOps++
			}
		}
	}
	return Path{}, stats, nil
}

// ReferenceAStarScaled is the fresh-slice A* the workspace refactor
// replaced: identical semantics to AStarScaled.
func ReferenceAStarScaled(acc storage.Accessor, source, dest roadnet.NodeID, scale float64) (Path, Stats, error) {
	if err := checkEndpoints(acc, source, dest); err != nil {
		return Path{}, Stats{}, err
	}
	if scale < 0 {
		scale = 0
	}
	n := acc.NumNodes()
	dist := newDistSlice(n)
	parent := newParentSlice(n)
	settled := make([]bool, n)
	var stats Stats

	h := func(id roadnet.NodeID) float64 { return scale * acc.Euclid(id, dest) }

	pq := pqueue.NewWithCapacity(64)
	dist[source] = 0
	pq.Push(int32(source), h(source))
	stats.QueueOps++

	for !pq.Empty() {
		if pq.Len() > stats.MaxFrontier {
			stats.MaxFrontier = pq.Len()
		}
		item := pq.Pop()
		u := roadnet.NodeID(item.Value)
		if settled[u] {
			continue
		}
		settled[u] = true
		stats.SettledNodes++
		if u == dest {
			return reconstruct(parent, dist, source, dest), stats, nil
		}
		for _, a := range acc.Arcs(u) {
			stats.RelaxedArcs++
			if settled[a.To] {
				continue
			}
			nd := dist[u] + a.Cost
			if nd < dist[a.To] {
				dist[a.To] = nd
				parent[a.To] = u
				pq.Push(int32(a.To), nd+h(a.To))
				stats.QueueOps++
			}
		}
	}
	return Path{}, stats, nil
}

// ReferenceSSMD is the fresh-slice SSMD the workspace refactor replaced:
// identical semantics to SSMD, including the map-based pending-destination
// set.
func ReferenceSSMD(acc storage.Accessor, source roadnet.NodeID, dests []roadnet.NodeID) (SSMDResult, error) {
	if err := checkSSMDEndpoints(acc, source, dests); err != nil {
		return SSMDResult{}, err
	}
	n := acc.NumNodes()
	dist := newDistSlice(n)
	parent := newParentSlice(n)
	var stats Stats

	pending := make(map[roadnet.NodeID]struct{}, len(dests))
	for _, d := range dests {
		pending[d] = struct{}{}
	}

	pq := pqueue.NewWithCapacity(64)
	dist[source] = 0
	pq.Push(int32(source), 0)
	stats.QueueOps++
	delete(pending, source)

	for !pq.Empty() && len(pending) > 0 {
		if pq.Len() > stats.MaxFrontier {
			stats.MaxFrontier = pq.Len()
		}
		item := pq.Pop()
		u := roadnet.NodeID(item.Value)
		if item.Priority > dist[u] {
			continue
		}
		stats.SettledNodes++
		if _, ok := pending[u]; ok {
			delete(pending, u)
			if len(pending) == 0 {
				break
			}
		}
		for _, a := range acc.Arcs(u) {
			stats.RelaxedArcs++
			nd := dist[u] + a.Cost
			if nd < dist[a.To] {
				dist[a.To] = nd
				parent[a.To] = u
				pq.Push(int32(a.To), nd)
				stats.QueueOps++
			}
		}
	}

	res := SSMDResult{
		Source: source,
		Dests:  append([]roadnet.NodeID(nil), dests...),
		Paths:  make([]Path, len(dests)),
		Stats:  stats,
	}
	for i, d := range dests {
		if d == source {
			res.Paths[i] = Path{Nodes: []roadnet.NodeID{source}, Cost: 0}
			continue
		}
		if math.IsInf(dist[d], 1) {
			res.Paths[i] = Path{}
			continue
		}
		res.Paths[i] = reconstruct(parent, dist, source, d)
	}
	return res, nil
}

// newDistSlice allocates a fresh Inf-filled distance array — the per-query
// O(n) cost the workspace refactor eliminated from the serving path.
func newDistSlice(n int) []float64 {
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	return dist
}

// newParentSlice allocates a fresh InvalidNode-filled parent array.
func newParentSlice(n int) []roadnet.NodeID {
	parent := make([]roadnet.NodeID, n)
	for i := range parent {
		parent[i] = roadnet.InvalidNode
	}
	return parent
}
