package search

import (
	"math"
	"testing"

	"opaque/internal/roadnet"
	"opaque/internal/storage"
)

func TestProcessorPairwiseALT(t *testing.T) {
	g := mediumGraph(t)
	acc := storage.NewMemoryGraph(g)
	lm, err := PrepareLandmarks(acc, 4, LandmarksFarthest)
	if err != nil {
		t.Fatal(err)
	}
	sources := []roadnet.NodeID{5, 205}
	dests := []roadnet.NodeID{77, 301, 512}

	alt := NewProcessor(acc, WithStrategy(StrategyPairwiseALT), WithLandmarks(lm))
	base := NewProcessor(acc, WithStrategy(StrategySSMD))
	resALT, err := alt.Evaluate(sources, dests)
	if err != nil {
		t.Fatal(err)
	}
	resBase, err := base.Evaluate(sources, dests)
	if err != nil {
		t.Fatal(err)
	}
	for i := range sources {
		for j := range dests {
			a, b := resALT.Paths[i][j], resBase.Paths[i][j]
			if a.Empty() != b.Empty() {
				t.Fatalf("reachability mismatch at (%d,%d)", i, j)
			}
			if !a.Empty() && math.Abs(a.Cost-b.Cost) > 1e-6 {
				t.Fatalf("ALT strategy cost %v != SSMD cost %v", a.Cost, b.Cost)
			}
		}
	}
	// Without landmarks the strategy must fail loudly.
	broken := NewProcessor(acc, WithStrategy(StrategyPairwiseALT))
	if _, err := broken.Evaluate(sources, dests); err == nil {
		t.Error("pairwise-alt without landmarks accepted")
	}
}

// TestFilteredSearchAvoidsNodes exercises the constrained-search accessor
// end to end: the avoided node never appears on the returned path and the
// detour is at least as costly as the unconstrained optimum.
func TestFilteredSearchAvoidsNodes(t *testing.T) {
	g := mediumGraph(t)
	plain := storage.NewMemoryGraph(g)
	// Find an unconstrained path with at least one interior node, then ban
	// one of its interior nodes and re-search.
	p, _, err := Dijkstra(plain, 3, roadnet.NodeID(g.NumNodes()-5))
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() < 3 {
		t.Skip("path too short to have an interior node to avoid")
	}
	banned := p.Nodes[p.Len()/2]
	filtered := storage.NewFilteredGraph(plain, storage.AvoidNodes(banned))
	q, _, err := Dijkstra(filtered, 3, roadnet.NodeID(g.NumNodes()-5))
	if err != nil {
		t.Fatal(err)
	}
	if q.Empty() {
		t.Skip("avoiding the node disconnects the pair on this instance")
	}
	for _, n := range q.Nodes {
		if n == banned {
			t.Fatalf("avoided node %d appears on the constrained path", banned)
		}
	}
	if q.Cost < p.Cost-1e-9 {
		t.Errorf("constrained path cost %v is cheaper than the unconstrained optimum %v", q.Cost, p.Cost)
	}
	if err := q.Validate(g); err != nil {
		t.Errorf("constrained path invalid: %v", err)
	}
}
