package search

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"opaque/internal/gen"
	"opaque/internal/roadnet"
	"opaque/internal/storage"
)

// testGraph generates a small frozen network for workspace tests.
func testGraph(t testing.TB, nodes int, seed uint64) *roadnet.Graph {
	t.Helper()
	cfg := gen.DefaultNetworkConfig()
	cfg.Nodes = nodes
	cfg.Seed = seed
	g, err := gen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestWorkspaceReuseMatchesReference is the workspace-equivalence property
// test: a single pooled workspace reused across a long randomized sequence
// of queries — mixing algorithms, graphs of different sizes (simulating
// graph-generation changes) and duplicate-destination SSMD sets — must
// return byte-identical paths and statistics to the fresh-slice reference
// implementations.
func TestWorkspaceReuseMatchesReference(t *testing.T) {
	graphs := []*roadnet.Graph{
		testGraph(t, 300, 11),
		testGraph(t, 900, 12), // larger: forces workspace growth mid-sequence
		testGraph(t, 150, 13), // smaller again: stale labels must not leak
	}
	accs := make([]storage.Accessor, len(graphs))
	for i, g := range graphs {
		accs[i] = storage.NewMemoryGraph(g)
	}

	r := rand.New(rand.NewSource(99))
	w := AcquireWorkspace(accs[0].NumNodes())
	defer w.Release()

	for iter := 0; iter < 400; iter++ {
		gi := r.Intn(len(accs))
		acc := accs[gi]
		n := acc.NumNodes()
		s := roadnet.NodeID(r.Intn(n))
		d := roadnet.NodeID(r.Intn(n))
		switch r.Intn(4) {
		case 0:
			got, gotStats, err := w.Dijkstra(acc, s, d)
			want, wantStats, refErr := ReferenceDijkstra(acc, s, d)
			if err != nil || refErr != nil {
				t.Fatalf("iter %d: dijkstra errs %v / %v", iter, err, refErr)
			}
			if !reflect.DeepEqual(got, want) || gotStats != wantStats {
				t.Fatalf("iter %d: Dijkstra(%d,%d) on graph %d diverged:\n got %v %+v\nwant %v %+v",
					iter, s, d, gi, got, gotStats, want, wantStats)
			}
		case 1:
			got, gotStats, err := w.AStarScaled(acc, s, d, 0.8)
			want, wantStats, refErr := ReferenceAStarScaled(acc, s, d, 0.8)
			if err != nil || refErr != nil {
				t.Fatalf("iter %d: astar errs %v / %v", iter, err, refErr)
			}
			if !reflect.DeepEqual(got, want) || gotStats != wantStats {
				t.Fatalf("iter %d: AStar(%d,%d) on graph %d diverged", iter, s, d, gi)
			}
		case 2:
			dests := make([]roadnet.NodeID, 1+r.Intn(6))
			for j := range dests {
				dests[j] = roadnet.NodeID(r.Intn(n))
			}
			if r.Intn(3) == 0 { // duplicates must collapse identically
				dests = append(dests, dests[0])
			}
			got, err := w.SSMD(acc, s, dests)
			want, refErr := ReferenceSSMD(acc, s, dests)
			if err != nil || refErr != nil {
				t.Fatalf("iter %d: ssmd errs %v / %v", iter, err, refErr)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("iter %d: SSMD(%d,%v) on graph %d diverged:\n got %+v\nwant %+v",
					iter, s, dests, gi, got, want)
			}
		case 3:
			gd, _, err := w.DijkstraDistance(acc, s, d)
			want, wantStats, refErr := ReferenceDijkstra(acc, s, d)
			if err != nil || refErr != nil {
				t.Fatalf("iter %d: distance errs %v / %v", iter, err, refErr)
			}
			_ = wantStats
			if want.Empty() && s != d {
				if !isInf(gd) {
					t.Fatalf("iter %d: DijkstraDistance(%d,%d) = %v, want +Inf", iter, s, d, gd)
				}
			} else if gd != want.Cost {
				t.Fatalf("iter %d: DijkstraDistance(%d,%d) = %v, want %v", iter, s, d, gd, want.Cost)
			}
		}
	}
}

func isInf(v float64) bool { return v > 1e300 }

// TestWorkspacePoolConcurrentReuse hammers one shared pool (and one shared
// FilteredGraph accessor, whose ForEachArc path must be concurrency-safe)
// from many goroutines under the race detector, checking every result
// against the fresh-slice reference.
func TestWorkspacePoolConcurrentReuse(t *testing.T) {
	g := testGraph(t, 500, 21)
	mem := storage.NewMemoryGraph(g)
	// A pass-all filter still exercises the streaming filter path.
	filtered := storage.NewFilteredGraph(mem, func(roadnet.NodeID, roadnet.Arc) bool { return true })
	pool := NewWorkspacePool()

	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for wk := 0; wk < workers; wk++ {
		wk := wk
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(1000 + wk)))
			for iter := 0; iter < 60; iter++ {
				s := roadnet.NodeID(r.Intn(g.NumNodes()))
				d := roadnet.NodeID(r.Intn(g.NumNodes()))
				var acc storage.Accessor = mem
				if iter%2 == 1 {
					acc = filtered
				}
				w := pool.Get(acc.NumNodes())
				got, gotStats, err := w.Dijkstra(acc, s, d)
				w.Release()
				if err != nil {
					errs <- err
					return
				}
				want, wantStats, err := ReferenceDijkstra(mem, s, d)
				if err != nil {
					errs <- err
					return
				}
				if !reflect.DeepEqual(got, want) || gotStats != wantStats {
					errs <- fmt.Errorf("worker %d iter %d: pooled Dijkstra(%d,%d) diverged from reference", wk, iter, s, d)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestWorkspaceSurvivesGenerationBump checks the pool across accessor
// generation changes: after BumpGeneration the tree cache rebuilds its trees
// on recycled workspaces, and results still match cold reference SSMD runs.
func TestWorkspaceSurvivesGenerationBump(t *testing.T) {
	g := testGraph(t, 400, 31)
	acc := storage.NewMemoryGraph(g)
	cache := NewTreeCache(4)
	r := rand.New(rand.NewSource(7))

	for round := 0; round < 5; round++ {
		for q := 0; q < 20; q++ {
			// Few distinct sources: cache hits within a round, guaranteed
			// stale-generation lookups after each bump.
			s := roadnet.NodeID(r.Intn(4))
			dests := []roadnet.NodeID{
				roadnet.NodeID(r.Intn(g.NumNodes())),
				roadnet.NodeID(r.Intn(g.NumNodes())),
			}
			got, err := cache.Evaluate(acc, s, dests)
			if err != nil {
				t.Fatal(err)
			}
			want, err := ReferenceSSMD(acc, s, dests)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got.Paths, want.Paths) {
				t.Fatalf("round %d: cached SSMD(%d,%v) paths diverge from reference", round, s, dests)
			}
		}
		acc.BumpGeneration() // invalidate: next round must rebuild trees
	}
	if inv := cache.Stats().Invalidations; inv == 0 {
		t.Fatal("expected generation bumps to invalidate cached trees")
	}
}

// TestTreeCacheConcurrentMissSingleEntry hammers concurrent misses for the
// same sources and checks the cache never double-inserts a source: the LRU
// list and the entries map must stay the same size (one element per source)
// and within capacity. Guards the recheck-and-insert critical section in
// TreeCache.lookup.
func TestTreeCacheConcurrentMissSingleEntry(t *testing.T) {
	g := testGraph(t, 300, 51)
	acc := storage.NewMemoryGraph(g)
	cache := NewTreeCache(8)

	const workers = 8
	for round := 0; round < 20; round++ {
		cache.Purge()
		var wg sync.WaitGroup
		for wk := 0; wk < workers; wk++ {
			wk := wk
			wg.Add(1)
			go func() {
				defer wg.Done()
				// All workers miss on the same few sources at once.
				for s := roadnet.NodeID(0); s < 4; s++ {
					d := roadnet.NodeID((int(s)*7 + wk + 13) % g.NumNodes())
					if _, err := cache.Evaluate(acc, s, []roadnet.NodeID{d}); err != nil {
						t.Error(err)
						return
					}
				}
			}()
		}
		wg.Wait()
		cache.mu.Lock()
		lruLen, mapLen := cache.lru.Len(), len(cache.entries)
		cache.mu.Unlock()
		if lruLen != mapLen {
			t.Fatalf("round %d: LRU has %d elements, map has %d — duplicate insert", round, lruLen, mapLen)
		}
		if lruLen > cache.Capacity() {
			t.Fatalf("round %d: %d entries exceed capacity %d", round, lruLen, cache.Capacity())
		}
	}
}

// TestTreeReleaseRecyclesWorkspace checks the refcounted release: a tree
// evicted while a query is in flight keeps its workspace alive until the
// query finishes, and a released tree reports an error instead of touching
// recycled state.
func TestTreeReleaseRecyclesWorkspace(t *testing.T) {
	g := testGraph(t, 200, 41)
	acc := storage.NewMemoryGraph(g)

	tree, err := NewTree(acc, 5)
	if err != nil {
		t.Fatal(err)
	}
	tree.retain() // simulate an in-flight query pin
	tree.Release()
	if _, err := tree.Paths([]roadnet.NodeID{10}); err != nil {
		t.Fatalf("pinned tree must stay usable: %v", err)
	}
	tree.Release() // drop the pin: workspace goes back to the pool
	if _, err := tree.Paths([]roadnet.NodeID{10}); err == nil {
		t.Fatal("released tree must refuse Paths")
	}

	// Eviction churn through a tiny cache: every evicted tree recycles its
	// workspace, and the cache still answers correctly.
	cache := NewTreeCache(2)
	for s := roadnet.NodeID(0); s < 20; s++ {
		res, err := cache.Evaluate(acc, s, []roadnet.NodeID{roadnet.NodeID(150)})
		if err != nil {
			t.Fatal(err)
		}
		want, err := ReferenceSSMD(acc, s, []roadnet.NodeID{roadnet.NodeID(150)})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res.Paths, want.Paths) {
			t.Fatalf("source %d: post-eviction cache result diverges", s)
		}
	}
	if ev := cache.Stats().Evictions; ev == 0 {
		t.Fatal("expected evictions in a capacity-2 cache fed 20 sources")
	}
}
