package search

import "opaque/internal/pqueue"

// newHeapForSearch centralises priority-queue construction for the search
// algorithms so capacity tuning happens in one place.
func newHeapForSearch() *pqueue.IndexedHeap {
	return pqueue.NewWithCapacity(64)
}
