package search

import (
	"errors"

	"opaque/internal/storage"
)

// Typed error conditions of the query-evaluation contract. Callers branch on
// these with errors.Is; the wrapped messages carry the specifics.

// ErrEmptyQuery marks an obfuscated query with an empty source or
// destination set. Q(S, T) is defined over non-empty endpoint sets — an
// empty side would make the candidate table vacuous and leak that the query
// carried no real endpoint — so every evaluation surface (Processor.Evaluate
// / EvaluateDistances on every strategy, the table engines' EvaluateTable /
// EvaluateDistances, ch.MTM's direct table entry points, and the SSMD
// primitives' empty-destination case) rejects it with an error wrapping this
// sentinel. No surface returns a silent empty table.
var ErrEmptyQuery = errors.New("search: query has an empty source or destination set")

// ErrStaleEngine marks an evaluation refused because the engine's
// preprocessed index no longer matches the accessor's current data — the
// graph's weights (or the accessor's generation) moved past the snapshot the
// index was built for. Serving would return distances from a dead graph;
// callers fall back to an index-free strategy and refresh the engine (the
// server re-customizes its CH overlay in the background).
var ErrStaleEngine = errors.New("search: engine index is stale for the accessor's current data")

// Generational is the validity contract for plug-in engines backed by a
// preprocessed index (PointEngine, TableEngine): Generation returns the
// accessor data generation (storage.Versioned) the index was built or last
// refreshed under. The processor refuses to evaluate on an engine whose
// generation trails a versioned accessor's current one — the index is stale
// by definition, whatever its checksums say — returning an error wrapping
// ErrStaleEngine. Engines on immutable accessors may simply return 0, the
// immutable generation.
type Generational interface {
	Generation() uint64
}

// engineCurrent reports whether engine (any value; typically a PointEngine
// or TableEngine) is current for acc under the Generational contract.
// Engines that do not implement Generational are treated as always current,
// as are accessors that are not Versioned.
func engineCurrent(engine any, acc storage.Accessor) bool {
	g, ok := engine.(Generational)
	if !ok {
		return true
	}
	v, ok := acc.(storage.Versioned)
	if !ok {
		return true
	}
	return g.Generation() == v.Generation()
}
