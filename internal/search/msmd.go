package search

import (
	"fmt"
	"math"
	"sync"

	"opaque/internal/roadnet"
	"opaque/internal/storage"
)

// Strategy selects how the obfuscated path query processor evaluates Q(S, T).
type Strategy string

const (
	// StrategySSMD runs one single-source multi-destination Dijkstra per
	// source, sharing the spanning tree across all destinations — the
	// evaluation the paper designs OPAQUE around (cost
	// O(Σ_s max_t ||s,t||²), Lemma 1).
	StrategySSMD Strategy = "ssmd"
	// StrategyPairwise runs an independent point-to-point Dijkstra for every
	// (s, t) pair in S×T — the naive evaluation an oblivious server would
	// perform; used as the comparison baseline in experiments E3–E5.
	StrategyPairwise Strategy = "pairwise"
	// StrategyPairwiseAStar runs an independent A* search per pair; a
	// stronger pairwise baseline that still pays the |S|·|T| multiplier.
	StrategyPairwiseAStar Strategy = "pairwise-astar"
	// StrategyPairwiseALT runs an independent A* search per pair using the
	// precomputed landmark (ALT) lower bounds; requires WithLandmarks. The
	// strongest per-pair engine, used by the ablation that asks whether a
	// very good point-to-point search can close the gap to SSMD sharing.
	StrategyPairwiseALT Strategy = "pairwise-alt"
	// StrategyPointEngine runs an independent query per (s, t) pair on a
	// pluggable point-to-point engine supplied with WithPointEngine. This is
	// the hook the server uses to install the contraction-hierarchy overlay
	// (internal/ch) without this package depending on it; any preprocessed
	// point-to-point index can be threaded through the same option.
	StrategyPointEngine Strategy = "point-engine"
	// StrategyTableEngine evaluates the whole Q(S, T) table in one shot on a
	// pluggable many-to-many engine supplied with WithTableEngine — no
	// per-source fan-out, the engine owns the entire evaluation. This is how
	// the server installs the CH many-to-many bucket engine (internal/ch's
	// MTM) for wide obfuscated queries.
	StrategyTableEngine Strategy = "table-engine"
)

// PointEngine is a pluggable point-to-point shortest-path engine the
// processor can evaluate Q(S, T) pairwise on (StrategyPointEngine). The
// contraction-hierarchy overlay of internal/ch implements it.
//
// ShortestPath must return results semantically identical to Dijkstra on the
// same accessor: the shortest-path cost and one optimal path (an empty Path
// when dest is unreachable). An engine backed by a preprocessed index must
// verify the accessor presents exactly the data it was built from and return
// an error wrapping ErrStaleEngine otherwise, rather than answer from a
// stale or mismatched index (internal/ch checksum-binds its overlay this
// way); engines additionally implementing Generational get that staleness
// check performed by the processor up front, before any per-pair work.
// Implementations must be safe for concurrent use — the processor calls
// them from its per-source worker fan-out.
type PointEngine interface {
	ShortestPath(acc storage.Accessor, source, dest roadnet.NodeID) (Path, Stats, error)
}

// TableEngine is a pluggable many-to-many engine the processor can hand a
// whole Q(S, T) evaluation to (StrategyTableEngine). The contraction-
// hierarchy bucket engine (internal/ch's MTM) implements it.
//
// EvaluateTable must return an MSMDResult whose Paths and Dists agree with
// per-pair Dijkstra on the same accessor; EvaluateDistances is the
// distance-only fast path — Dists filled, Paths nil — for callers that
// never read routes. Like PointEngine, an implementation backed by a
// preprocessed index must verify the accessor presents exactly the data it
// was built from (erroring with ErrStaleEngine when it does not; engines
// implementing Generational get the generation half of that check performed
// by the processor up front), must reject empty source or destination sets
// with ErrEmptyQuery, and must be safe for concurrent use.
type TableEngine interface {
	EvaluateTable(acc storage.Accessor, sources, dests []roadnet.NodeID) (MSMDResult, error)
	EvaluateDistances(acc storage.Accessor, sources, dests []roadnet.NodeID) (MSMDResult, error)
}

// MSMDResult is the result of evaluating one obfuscated path query Q(S, T):
// the |S|·|T| candidate result paths and distances, addressable by
// (source, dest).
type MSMDResult struct {
	Sources []roadnet.NodeID
	Dests   []roadnet.NodeID
	// Paths[i][j] is the path from Sources[i] to Dests[j]; empty when
	// unreachable. Nil (no rows at all) on distance-only evaluations
	// (EvaluateDistances), whose callers never pay for path
	// materialisation.
	Paths [][]Path
	// Dists[i][j] is the shortest-path distance from Sources[i] to
	// Dests[j], +Inf when unreachable. Filled by every evaluation, so
	// distance-only consumers (candidate filtering, cost experiments) need
	// not walk Paths.
	Dists [][]float64
	Stats Stats
}

// Path returns the candidate path for the (source, dest) pair and whether the
// pair belongs to the query. The second return is false for distance-only
// results, which carry no paths.
func (r MSMDResult) Path(source, dest roadnet.NodeID) (Path, bool) {
	si, sok := indexOf(r.Sources, source)
	di, dok := indexOf(r.Dests, dest)
	if !sok || !dok || r.Paths == nil {
		return Path{}, false
	}
	return r.Paths[si][di], true
}

// Distance returns the candidate distance for the (source, dest) pair (+Inf
// when unreachable) and whether the pair belongs to the query.
func (r MSMDResult) Distance(source, dest roadnet.NodeID) (float64, bool) {
	si, sok := indexOf(r.Sources, source)
	di, dok := indexOf(r.Dests, dest)
	if !sok || !dok || r.Dists == nil {
		return 0, false
	}
	return r.Dists[si][di], true
}

// HasPaths reports whether the result carries materialised candidate paths
// (false for distance-only evaluations).
func (r MSMDResult) HasPaths() bool { return r.Paths != nil }

// NumCandidates returns the number of candidate result paths (|S|·|T|).
func (r MSMDResult) NumCandidates() int { return len(r.Sources) * len(r.Dests) }

// AllPaths returns every candidate path in row-major (source, dest) order.
func (r MSMDResult) AllPaths() []Path {
	out := make([]Path, 0, r.NumCandidates())
	for _, row := range r.Paths {
		out = append(out, row...)
	}
	return out
}

func indexOf(ids []roadnet.NodeID, id roadnet.NodeID) (int, bool) {
	for i, v := range ids {
		if v == id {
			return i, true
		}
	}
	return -1, false
}

// Processor is the obfuscated path query processor installed in the
// directions search server (Figure 5/6 of the paper). It evaluates Q(S, T)
// queries against an Accessor using a configurable strategy, optionally
// fanning the per-source searches out over a bounded number of goroutines.
type Processor struct {
	acc         storage.Accessor
	strategy    Strategy
	workers     int
	landmarks   *Landmarks
	engine      PointEngine
	tableEngine TableEngine
	cache       *TreeCache
	gate        Gate
	// wsPool supplies the epoch-stamped search workspaces the per-source
	// searches run on: each evaluation row checks one workspace out for its
	// whole lifetime (every destination of a pairwise row reuses the same
	// workspace), so the steady-state hot path allocates no label arrays.
	wsPool *WorkspacePool
}

// ProcessorOption customises a Processor.
type ProcessorOption func(*Processor)

// WithStrategy selects the evaluation strategy (default StrategySSMD).
func WithStrategy(s Strategy) ProcessorOption {
	return func(p *Processor) { p.strategy = s }
}

// WithWorkers sets the number of concurrent per-source searches (default 1 =
// sequential). Concurrency changes wall-clock time but not the algorithmic
// work counted in Stats.
func WithWorkers(n int) ProcessorOption {
	return func(p *Processor) {
		if n > 0 {
			p.workers = n
		}
	}
}

// WithLandmarks supplies precomputed ALT landmark tables, required by
// StrategyPairwiseALT.
func WithLandmarks(lm *Landmarks) ProcessorOption {
	return func(p *Processor) { p.landmarks = lm }
}

// WithPointEngine installs a pluggable point-to-point engine, required by
// StrategyPointEngine. The engine answers every (s, t) pair of an obfuscated
// query independently; the processor contributes only the fan-out, the gate
// and the statistics accounting.
func WithPointEngine(pe PointEngine) ProcessorOption {
	return func(p *Processor) { p.engine = pe }
}

// WithTableEngine installs a pluggable many-to-many engine, required by
// StrategyTableEngine. The engine evaluates the whole Q(S, T) table in one
// call; the processor contributes validation, the gate and nothing else.
func WithTableEngine(te TableEngine) ProcessorOption {
	return func(p *Processor) { p.tableEngine = te }
}

// WithTreeCache installs an SSMD tree cache: StrategySSMD evaluations answer
// each per-source search from cached resumable spanning trees keyed by
// (source, accessor generation) instead of running Dijkstra from scratch.
// Other strategies ignore the cache. Cached evaluation changes the reported
// Stats (only incremental work is counted) but never the resulting paths.
func WithTreeCache(c *TreeCache) ProcessorOption {
	return func(p *Processor) { p.cache = c }
}

// WithGate bounds the processor's per-source searches with a shared
// semaphore, composing per-query parallelism under a server-wide concurrency
// cap. A nil gate (the default) imposes no bound.
func WithGate(g Gate) ProcessorOption {
	return func(p *Processor) { p.gate = g }
}

// WithWorkspacePool shares a workspace pool with the processor, letting a
// server reuse one pool across every processor, batch worker and query it
// runs. The default is the package's shared pool.
func WithWorkspacePool(wp *WorkspacePool) ProcessorOption {
	return func(p *Processor) {
		if wp != nil {
			p.wsPool = wp
		}
	}
}

// NewProcessor builds a processor over acc.
func NewProcessor(acc storage.Accessor, opts ...ProcessorOption) *Processor {
	p := &Processor{acc: acc, strategy: StrategySSMD, workers: 1, wsPool: sharedWorkspaces}
	for _, o := range opts {
		o(p)
	}
	return p
}

// Strategy returns the configured evaluation strategy.
func (p *Processor) Strategy() Strategy { return p.strategy }

// Accessor returns the graph accessor the processor evaluates against.
func (p *Processor) Accessor() storage.Accessor { return p.acc }

// pin resolves the accessor one whole evaluation runs against. For mutable
// accessors (storage.Snapshotter) this is an immutable snapshot of the
// current data, so a query admitted while weight updates land concurrently
// still computes an internally consistent table: every cell reflects one
// generation, all-old or all-new, never a mix.
func (p *Processor) pin() storage.Accessor { return storage.SnapshotOf(p.acc) }

// validateQuery rejects empty (ErrEmptyQuery) or out-of-range endpoint sets.
func (p *Processor) validateQuery(acc storage.Accessor, sources, dests []roadnet.NodeID) error {
	if len(sources) == 0 || len(dests) == 0 {
		return fmt.Errorf("search: obfuscated query needs at least one source and one destination (got |S|=%d, |T|=%d): %w",
			len(sources), len(dests), ErrEmptyQuery)
	}
	for _, s := range sources {
		if !validNode(acc, s) {
			return fmt.Errorf("search: invalid source node %d", s)
		}
	}
	for _, t := range dests {
		if !validNode(acc, t) {
			return fmt.Errorf("search: invalid destination node %d", t)
		}
	}
	return nil
}

// evaluateOnTableEngine hands the whole query to the installed TableEngine
// under one gate slot, distance-only or with paths.
func (p *Processor) evaluateOnTableEngine(acc storage.Accessor, sources, dests []roadnet.NodeID, distancesOnly bool) (MSMDResult, error) {
	if p.tableEngine == nil {
		return MSMDResult{}, fmt.Errorf("search: strategy %q requires WithTableEngine", StrategyTableEngine)
	}
	if !engineCurrent(p.tableEngine, acc) {
		return MSMDResult{}, fmt.Errorf("search: table engine generation trails the accessor: %w", ErrStaleEngine)
	}
	p.gate.Acquire()
	defer p.gate.Release()
	if distancesOnly {
		return p.tableEngine.EvaluateDistances(acc, sources, dests)
	}
	return p.tableEngine.EvaluateTable(acc, sources, dests)
}

// fillDists derives the distance matrix from materialised paths: the path
// cost, or +Inf for an empty path of a non-degenerate pair.
func fillDists(res *MSMDResult) {
	res.Dists = make([][]float64, len(res.Sources))
	for i := range res.Paths {
		row := make([]float64, len(res.Dests))
		for j, pth := range res.Paths[i] {
			if pth.Empty() && res.Sources[i] != res.Dests[j] {
				row[j] = math.Inf(1)
			} else {
				row[j] = pth.Cost
			}
		}
		res.Dists[i] = row
	}
}

// Evaluate processes the obfuscated path query Q(sources, dests) and returns
// every candidate result path (and the derived distance matrix). The whole
// evaluation runs against one pinned snapshot of the accessor's data (see
// pin), so concurrent weight updates never produce a mixed-generation table.
func (p *Processor) Evaluate(sources, dests []roadnet.NodeID) (MSMDResult, error) {
	acc := p.pin()
	if err := p.validateQuery(acc, sources, dests); err != nil {
		return MSMDResult{}, err
	}
	if p.strategy == StrategyTableEngine {
		return p.evaluateOnTableEngine(acc, sources, dests, false)
	}
	if p.strategy == StrategyPointEngine && p.engine != nil && !engineCurrent(p.engine, acc) {
		return MSMDResult{}, fmt.Errorf("search: point engine generation trails the accessor: %w", ErrStaleEngine)
	}
	res := MSMDResult{
		Sources: append([]roadnet.NodeID(nil), sources...),
		Dests:   append([]roadnet.NodeID(nil), dests...),
		Paths:   make([][]Path, len(sources)),
	}

	type rowResult struct {
		idx   int
		paths []Path
		stats Stats
		err   error
	}

	evalRow := func(i int) rowResult {
		p.gate.Acquire()
		defer p.gate.Release()
		s := sources[i]
		switch p.strategy {
		case StrategySSMD, "":
			var r SSMDResult
			var err error
			if p.cache != nil {
				// Cached trees carry their own long-lived workspaces; no
				// per-row checkout is needed.
				r, err = p.cache.Evaluate(acc, s, dests)
			} else {
				w := p.wsPool.Get(acc.NumNodes())
				r, err = w.SSMD(acc, s, dests)
				w.Release()
			}
			if err != nil {
				return rowResult{idx: i, err: err}
			}
			return rowResult{idx: i, paths: r.Paths, stats: r.Stats}
		case StrategyPairwise:
			w := p.wsPool.Get(acc.NumNodes())
			defer w.Release()
			paths := make([]Path, len(dests))
			var stats Stats
			for j, t := range dests {
				path, st, err := w.Dijkstra(acc, s, t)
				if err != nil {
					return rowResult{idx: i, err: err}
				}
				paths[j] = path
				stats = stats.Add(st)
			}
			return rowResult{idx: i, paths: paths, stats: stats}
		case StrategyPairwiseAStar:
			w := p.wsPool.Get(acc.NumNodes())
			defer w.Release()
			paths := make([]Path, len(dests))
			var stats Stats
			for j, t := range dests {
				path, st, err := w.AStarScaled(acc, s, t, 0.8)
				if err != nil {
					return rowResult{idx: i, err: err}
				}
				paths[j] = path
				stats = stats.Add(st)
			}
			return rowResult{idx: i, paths: paths, stats: stats}
		case StrategyPointEngine:
			if p.engine == nil {
				return rowResult{idx: i, err: fmt.Errorf("search: strategy %q requires WithPointEngine", StrategyPointEngine)}
			}
			paths := make([]Path, len(dests))
			var stats Stats
			for j, t := range dests {
				path, st, err := p.engine.ShortestPath(acc, s, t)
				if err != nil {
					return rowResult{idx: i, err: err}
				}
				paths[j] = path
				stats = stats.Add(st)
			}
			return rowResult{idx: i, paths: paths, stats: stats}
		case StrategyPairwiseALT:
			if p.landmarks == nil {
				return rowResult{idx: i, err: fmt.Errorf("search: strategy %q requires WithLandmarks", StrategyPairwiseALT)}
			}
			w := p.wsPool.Get(acc.NumNodes())
			defer w.Release()
			paths := make([]Path, len(dests))
			var stats Stats
			for j, t := range dests {
				path, st, err := w.AStarALT(acc, p.landmarks, s, t)
				if err != nil {
					return rowResult{idx: i, err: err}
				}
				paths[j] = path
				stats = stats.Add(st)
			}
			return rowResult{idx: i, paths: paths, stats: stats}
		default:
			return rowResult{idx: i, err: fmt.Errorf("search: unknown strategy %q", p.strategy)}
		}
	}

	if p.workers <= 1 || len(sources) == 1 {
		for i := range sources {
			rr := evalRow(i)
			if rr.err != nil {
				return MSMDResult{}, rr.err
			}
			res.Paths[rr.idx] = rr.paths
			res.Stats = res.Stats.Add(rr.stats)
		}
		fillDists(&res)
		return res, nil
	}

	// Bounded fan-out over sources.
	jobs := make(chan int)
	results := make(chan rowResult, len(sources))
	var wg sync.WaitGroup
	workers := p.workers
	if workers > len(sources) {
		workers = len(sources)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				results <- evalRow(i)
			}
		}()
	}
	for i := range sources {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	close(results)
	var firstErr error
	for rr := range results {
		if rr.err != nil {
			if firstErr == nil {
				firstErr = rr.err
			}
			continue
		}
		res.Paths[rr.idx] = rr.paths
		res.Stats = res.Stats.Add(rr.stats)
	}
	if firstErr != nil {
		return MSMDResult{}, firstErr
	}
	fillDists(&res)
	return res, nil
}

// EvaluateDistances processes Q(sources, dests) for callers that only need
// the |S|×|T| distance matrix. With a table engine installed
// (StrategyTableEngine) this is a genuine fast path — no route is unpacked
// or materialised anywhere; other strategies fall back to Evaluate, whose
// result already carries Dists alongside the paths.
func (p *Processor) EvaluateDistances(sources, dests []roadnet.NodeID) (MSMDResult, error) {
	if p.strategy == StrategyTableEngine {
		acc := p.pin()
		if err := p.validateQuery(acc, sources, dests); err != nil {
			return MSMDResult{}, err
		}
		return p.evaluateOnTableEngine(acc, sources, dests, true)
	}
	return p.Evaluate(sources, dests)
}
