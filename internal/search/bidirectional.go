package search

import (
	"math"

	"opaque/internal/roadnet"
	"opaque/internal/storage"
)

// BidirectionalDijkstra runs Dijkstra simultaneously from the source (on the
// forward graph) and from the destination (on the reverse graph), stopping
// when the two frontiers prove the optimal meeting point. It is included as
// the strongest conventional single-pair baseline: it shows what the server
// could do per query if no destination sharing were exploited.
//
// The reverse accessor must present the reverse graph of acc (see
// roadnet.Graph.Reverse). Both accessors may share a buffer pool so I/O is
// charged once. Each direction runs on its own pooled epoch-stamped
// Workspace, so neither side pays an O(n) label fill.
func BidirectionalDijkstra(acc, rev storage.Accessor, source, dest roadnet.NodeID) (Path, Stats, error) {
	if err := checkEndpoints(acc, source, dest); err != nil {
		return Path{}, Stats{}, err
	}
	if source == dest {
		return Path{Nodes: []roadnet.NodeID{source}, Cost: 0}, Stats{}, nil
	}
	wf := AcquireWorkspace(acc.NumNodes())
	defer wf.Release()
	wb := AcquireWorkspace(rev.NumNodes())
	defer wb.Release()

	var stats Stats
	wf.label(source, 0, roadnet.InvalidNode)
	wb.label(dest, 0, roadnet.InvalidNode)
	wf.heap.Push(int32(source), 0)
	wb.heap.Push(int32(dest), 0)
	stats.QueueOps += 2

	best := math.Inf(1)
	meet := roadnet.InvalidNode

	// The meeting-point update needs both label sets at once, so the relax
	// closures are built per call (capturing best/meet/stats) instead of
	// reusing the workspace-resident single-sided closures.
	makeRelax := func(w, other *Workspace) func(roadnet.Arc) bool {
		return func(a roadnet.Arc) bool {
			stats.RelaxedArcs++
			nd := w.du + a.Cost
			if nd < w.distOf(a.To) {
				w.label(a.To, nd, w.u)
				w.heap.Push(int32(a.To), nd)
				stats.QueueOps++
			}
			if total := nd + other.distOf(a.To); total < best {
				best = total
				meet = a.To
			}
			return true
		}
	}
	relaxF := makeRelax(wf, wb)
	relaxB := makeRelax(wb, wf)

	for !wf.heap.Empty() || !wb.heap.Empty() {
		if wf.heap.Len()+wb.heap.Len() > stats.MaxFrontier {
			stats.MaxFrontier = wf.heap.Len() + wb.heap.Len()
		}
		topF, topB := math.Inf(1), math.Inf(1)
		if !wf.heap.Empty() {
			topF = wf.heap.Peek().Priority
		}
		if !wb.heap.Empty() {
			topB = wb.heap.Peek().Priority
		}
		// Standard stopping criterion: once the sum of the two frontier
		// minima reaches the best meeting cost, no better path exists.
		if topF+topB >= best {
			break
		}
		if topF <= topB {
			item := wf.heap.Pop()
			u := roadnet.NodeID(item.Value)
			if wf.settled(u) || item.Priority > wf.dist[u] {
				continue
			}
			wf.settle(u)
			stats.SettledNodes++
			wf.u, wf.du = u, wf.dist[u]
			acc.ForEachArc(u, relaxF)
		} else {
			item := wb.heap.Pop()
			u := roadnet.NodeID(item.Value)
			if wb.settled(u) || item.Priority > wb.dist[u] {
				continue
			}
			wb.settle(u)
			stats.SettledNodes++
			wb.u, wb.du = u, wb.dist[u]
			rev.ForEachArc(u, relaxB)
		}
	}

	if meet == roadnet.InvalidNode {
		return Path{}, stats, nil
	}
	// Stitch the forward path source->meet with the backward path meet->dest.
	forward := wf.reconstruct(source, meet)
	if forward.Empty() && source != meet {
		return Path{}, stats, nil
	}
	nodes := append([]roadnet.NodeID{}, forward.Nodes...)
	if len(nodes) == 0 {
		nodes = append(nodes, source)
	}
	for at := wb.parentOf(meet); at != roadnet.InvalidNode; {
		nodes = append(nodes, at)
		if at == dest {
			break
		}
		at = wb.parentOf(at)
	}
	if nodes[len(nodes)-1] != dest {
		// meet == dest case: the backward walk added nothing.
		if meet != dest {
			return Path{}, stats, nil
		}
	}
	return Path{Nodes: nodes, Cost: best}, stats, nil
}
