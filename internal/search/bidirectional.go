package search

import (
	"math"

	"opaque/internal/pqueue"
	"opaque/internal/roadnet"
	"opaque/internal/storage"
)

// BidirectionalDijkstra runs Dijkstra simultaneously from the source (on the
// forward graph) and from the destination (on the reverse graph), stopping
// when the two frontiers prove the optimal meeting point. It is included as
// the strongest conventional single-pair baseline: it shows what the server
// could do per query if no destination sharing were exploited.
//
// The reverse accessor must present the reverse graph of acc (see
// roadnet.Graph.Reverse). Both accessors may share a buffer pool so I/O is
// charged once.
func BidirectionalDijkstra(acc, rev storage.Accessor, source, dest roadnet.NodeID) (Path, Stats, error) {
	if err := checkEndpoints(acc, source, dest); err != nil {
		return Path{}, Stats{}, err
	}
	if source == dest {
		return Path{Nodes: []roadnet.NodeID{source}, Cost: 0}, Stats{}, nil
	}
	n := acc.NumNodes()
	distF := newDistSlice(n)
	distB := newDistSlice(n)
	parentF := newParentSlice(n)
	parentB := newParentSlice(n)
	settledF := make([]bool, n)
	settledB := make([]bool, n)
	var stats Stats

	pqF := pqueue.NewWithCapacity(64)
	pqB := pqueue.NewWithCapacity(64)
	distF[source] = 0
	distB[dest] = 0
	pqF.Push(int32(source), 0)
	pqB.Push(int32(dest), 0)
	stats.QueueOps += 2

	best := math.Inf(1)
	meet := roadnet.InvalidNode

	relax := func(forward bool, u roadnet.NodeID) {
		var a storage.Accessor
		var dist []float64
		var parent []roadnet.NodeID
		var pq *pqueue.IndexedHeap
		var otherDist []float64
		if forward {
			a, dist, parent, pq, otherDist = acc, distF, parentF, pqF, distB
		} else {
			a, dist, parent, pq, otherDist = rev, distB, parentB, pqB, distF
		}
		for _, arc := range a.Arcs(u) {
			stats.RelaxedArcs++
			nd := dist[u] + arc.Cost
			if nd < dist[arc.To] {
				dist[arc.To] = nd
				parent[arc.To] = u
				pq.Push(int32(arc.To), nd)
				stats.QueueOps++
			}
			if total := nd + otherDist[arc.To]; total < best {
				best = total
				meet = arc.To
			}
		}
	}

	for !pqF.Empty() || !pqB.Empty() {
		if pqF.Len()+pqB.Len() > stats.MaxFrontier {
			stats.MaxFrontier = pqF.Len() + pqB.Len()
		}
		topF, topB := math.Inf(1), math.Inf(1)
		if !pqF.Empty() {
			topF = pqF.Peek().Priority
		}
		if !pqB.Empty() {
			topB = pqB.Peek().Priority
		}
		// Standard stopping criterion: once the sum of the two frontier
		// minima reaches the best meeting cost, no better path exists.
		if topF+topB >= best {
			break
		}
		if topF <= topB {
			item := pqF.Pop()
			u := roadnet.NodeID(item.Value)
			if settledF[u] || item.Priority > distF[u] {
				continue
			}
			settledF[u] = true
			stats.SettledNodes++
			relax(true, u)
		} else {
			item := pqB.Pop()
			u := roadnet.NodeID(item.Value)
			if settledB[u] || item.Priority > distB[u] {
				continue
			}
			settledB[u] = true
			stats.SettledNodes++
			relax(false, u)
		}
	}

	if meet == roadnet.InvalidNode {
		return Path{}, stats, nil
	}
	// Stitch the forward path source->meet with the backward path meet->dest.
	forward := reconstruct(parentF, distF, source, meet)
	if forward.Empty() && source != meet {
		return Path{}, stats, nil
	}
	nodes := append([]roadnet.NodeID{}, forward.Nodes...)
	if len(nodes) == 0 {
		nodes = append(nodes, source)
	}
	for at := parentB[meet]; at != roadnet.InvalidNode; {
		nodes = append(nodes, at)
		if at == dest {
			break
		}
		at = parentB[at]
	}
	if nodes[len(nodes)-1] != dest {
		// meet == dest case: the backward walk added nothing.
		if meet != dest {
			return Path{}, stats, nil
		}
	}
	return Path{Nodes: nodes, Cost: best}, stats, nil
}
