package search

// Gate is a counting semaphore bounding how many per-source searches run
// concurrently across an entire server, no matter how many queries are in
// flight. The batch engine composes per-query parallelism (Processor workers)
// under one shared Gate so a large batch cannot oversubscribe the CPU: each
// per-source search acquires a slot for its duration.
//
// A nil Gate imposes no bound; Acquire and Release on it are no-ops.
type Gate chan struct{}

// NewGate returns a gate admitting at most n concurrent holders (n < 1
// returns a nil, unbounded gate).
func NewGate(n int) Gate {
	if n < 1 {
		return nil
	}
	return make(Gate, n)
}

// Acquire blocks until a slot is free.
func (g Gate) Acquire() {
	if g != nil {
		g <- struct{}{}
	}
}

// Release frees a slot previously acquired.
func (g Gate) Release() {
	if g != nil {
		<-g
	}
}
