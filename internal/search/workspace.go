package search

import (
	"math"
	"sync"
	"sync/atomic"

	"opaque/internal/pqueue"
	"opaque/internal/roadnet"
	"opaque/internal/storage"
)

// Workspace holds every piece of per-search state a Dijkstra-family
// algorithm needs — distance labels, parent pointers, settled flags, the
// priority queue — in epoch-stamped arrays, so that "resetting" the
// workspace for the next query is a single counter bump instead of an O(n)
// Inf-fill. This is what makes per-query cost proportional to the nodes a
// search actually touches: a point query that settles 500 nodes of a
// 500,000-node map reads and writes ~500 label slots, while the pre-workspace
// fresh-slice path paid two O(n) allocations and fills before relaxing its
// first arc.
//
// A label slot v is valid only when stamp[v] equals the current epoch;
// distOf treats every other slot as +Inf, exactly like the old Inf-filled
// slices. The settled set (done) and the SSMD destination set (mark) use the
// same trick with their own epochs.
//
// The relaxation closures (relaxPlain, relaxAStar) are allocated once per
// workspace, with the in-flight expansion state (acc, u, du, h) passed
// through workspace fields rather than captures. Combined with the
// storage.Accessor.ForEachArc streaming iteration this keeps the
// steady-state relax loop allocation-free: BenchmarkWorkspaceReuse reports 0
// allocs/op for pooled distance queries.
//
// A Workspace is not safe for concurrent use; check one out per goroutine
// from a WorkspacePool. Every one-shot search method (Dijkstra, AStar, SSMD,
// …) resets the workspace itself, so a worker can reuse one workspace across
// any sequence of queries — and across graph generations, since Reset sizes
// the arrays to the accessor it is given.
type Workspace struct {
	pool *WorkspacePool // set while checked out of a pool; nil otherwise

	epoch  uint32
	dist   []float64
	parent []roadnet.NodeID
	stamp  []uint32 // dist/parent valid iff stamp[v] == epoch
	done   []uint32 // v settled iff done[v] == epoch

	markEpoch uint32
	mark      []uint32 // scratch node-set membership (SSMD pending dests)

	heap  *pqueue.DenseHeap
	stats Stats

	// In-flight relaxation state read by the prebuilt closures below.
	acc storage.Accessor
	u   roadnet.NodeID
	du  float64
	h   func(roadnet.NodeID) float64

	// Euclidean heuristic parameters for AStarScaled, so the common A*
	// configuration needs no per-call closure either.
	hScale float64
	hDest  roadnet.NodeID

	relaxPlain func(roadnet.Arc) bool
	relaxAStar func(roadnet.Arc) bool
	euclidH    func(roadnet.NodeID) float64
}

// NewWorkspace returns a workspace sized for an n-node graph. It grows
// automatically when reset against a larger accessor.
func NewWorkspace(n int) *Workspace {
	w := &Workspace{heap: pqueue.NewDenseHeap(n)}
	w.relaxPlain = func(a roadnet.Arc) bool {
		w.stats.RelaxedArcs++
		nd := w.du + a.Cost
		if nd < w.distOf(a.To) {
			w.label(a.To, nd, w.u)
			w.heap.Push(int32(a.To), nd)
			w.stats.QueueOps++
		}
		return true
	}
	w.relaxAStar = func(a roadnet.Arc) bool {
		w.stats.RelaxedArcs++
		if w.done[a.To] == w.epoch {
			return true
		}
		nd := w.du + a.Cost
		if nd < w.distOf(a.To) {
			w.label(a.To, nd, w.u)
			w.heap.Push(int32(a.To), nd+w.h(a.To))
			w.stats.QueueOps++
		}
		return true
	}
	w.euclidH = func(v roadnet.NodeID) float64 {
		return w.hScale * w.acc.Euclid(v, w.hDest)
	}
	w.Reset(n)
	return w
}

// Reset invalidates every label, settled flag and queue entry and ensures
// the workspace addresses nodes 0..n-1. It runs in O(1) amortised — the
// arrays are invalidated by bumping the epoch, not by filling them.
func (w *Workspace) Reset(n int) {
	w.ensure(n)
	if w.epoch == ^uint32(0) {
		// Epoch wrap: one O(n) clear per 2^32 resets so stale stamps can
		// never collide with a reused epoch value.
		for i := range w.stamp {
			w.stamp[i] = 0
			w.done[i] = 0
		}
		w.epoch = 0
	}
	w.epoch++
	w.heap.Reset(n)
	w.stats = Stats{}
	w.acc = nil
	w.h = nil
}

// ensure grows the label arrays to cover nodes 0..n-1. Grown slots carry
// stamp 0, which never equals a live epoch (epochs start at 1).
func (w *Workspace) ensure(n int) {
	if n <= len(w.stamp) {
		return
	}
	grow := n - len(w.stamp)
	w.dist = append(w.dist, make([]float64, grow)...)
	w.parent = append(w.parent, make([]roadnet.NodeID, grow)...)
	w.stamp = append(w.stamp, make([]uint32, grow)...)
	w.done = append(w.done, make([]uint32, grow)...)
	w.mark = append(w.mark, make([]uint32, grow)...)
}

// begin resets the workspace for a one-shot search against acc.
func (w *Workspace) begin(acc storage.Accessor) {
	w.Reset(acc.NumNodes())
	w.acc = acc
}

// distOf returns v's tentative distance, +Inf when unlabelled this epoch.
//
//opaque:noalloc
func (w *Workspace) distOf(v roadnet.NodeID) float64 {
	if w.stamp[v] != w.epoch {
		return math.Inf(1)
	}
	return w.dist[v]
}

// label records a tentative distance and parent for v.
//
//opaque:noalloc
func (w *Workspace) label(v roadnet.NodeID, d float64, parent roadnet.NodeID) {
	w.dist[v] = d
	w.parent[v] = parent
	w.stamp[v] = w.epoch
}

// parentOf returns v's parent pointer, InvalidNode when unlabelled.
//
//opaque:noalloc
func (w *Workspace) parentOf(v roadnet.NodeID) roadnet.NodeID {
	if w.stamp[v] != w.epoch {
		return roadnet.InvalidNode
	}
	return w.parent[v]
}

// Heap returns the workspace's dense priority queue. It is exposed for
// algorithms composed outside this package (the contraction-hierarchy query
// in internal/ch drives two workspaces directly); Reset empties it, so
// callers that use Reset + Heap + Label + DistOf get the same O(1)
// preparation cost as the built-in searches. The heap must not be used after
// the workspace is released to its pool.
func (w *Workspace) Heap() *pqueue.DenseHeap { return w.heap }

// DistOf returns v's tentative distance this epoch, +Inf when unlabelled.
// Exported for externally composed algorithms; identical to the check the
// internal searches perform before relaxing an arc.
//
//opaque:noalloc
func (w *Workspace) DistOf(v roadnet.NodeID) float64 { return w.distOf(v) }

// Label records a tentative distance and parent pointer for v in the current
// epoch. Exported counterpart of the internal labelling step for externally
// composed algorithms; it does not touch the heap — callers push v with its
// priority themselves.
//
//opaque:noalloc
func (w *Workspace) Label(v roadnet.NodeID, d float64, parent roadnet.NodeID) {
	w.label(v, d, parent)
}

// ParentOf returns v's parent pointer this epoch, roadnet.InvalidNode when v
// is unlabelled. Exported so externally composed algorithms can walk the
// shortest-path tree they built through Label.
//
//opaque:noalloc
func (w *Workspace) ParentOf(v roadnet.NodeID) roadnet.NodeID { return w.parentOf(v) }

// settled reports whether v has been marked settled this epoch.
//
//opaque:noalloc
func (w *Workspace) settled(v roadnet.NodeID) bool { return w.done[v] == w.epoch }

// settle marks v settled.
//
//opaque:noalloc
func (w *Workspace) settle(v roadnet.NodeID) { w.done[v] = w.epoch }

// bumpMark invalidates the scratch node set (SSMD pending destinations).
//
//opaque:noalloc
func (w *Workspace) bumpMark() {
	if w.markEpoch == ^uint32(0) {
		for i := range w.mark {
			w.mark[i] = 0
		}
		w.markEpoch = 0
	}
	w.markEpoch++
}

// expand relaxes every outgoing arc of u with the plain Dijkstra rule.
//
//opaque:noalloc
func (w *Workspace) expand(u roadnet.NodeID) {
	w.u, w.du = u, w.dist[u]
	w.acc.ForEachArc(u, w.relaxPlain)
}

// reconstruct walks parent pointers backward from dest and returns the path,
// mirroring the package-level reconstruct but on the stamped arrays.
func (w *Workspace) reconstruct(source, dest roadnet.NodeID) Path {
	if w.stamp[dest] != w.epoch || math.IsInf(w.dist[dest], 1) {
		return Path{}
	}
	var rev []roadnet.NodeID
	for at := dest; at != roadnet.InvalidNode; at = w.parentOf(at) {
		rev = append(rev, at)
		if at == source {
			break
		}
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	if len(rev) == 0 || rev[0] != source {
		return Path{}
	}
	return Path{Nodes: rev, Cost: w.dist[dest]}
}

// Dijkstra computes the shortest path from source to dest with early
// termination when dest is settled, reusing this workspace's storage. It is
// the workspace form of the package-level Dijkstra and returns identical
// paths and statistics.
func (w *Workspace) Dijkstra(acc storage.Accessor, source, dest roadnet.NodeID) (Path, Stats, error) {
	if err := checkEndpoints(acc, source, dest); err != nil {
		return Path{}, Stats{}, err
	}
	w.begin(acc)
	w.label(source, 0, roadnet.InvalidNode)
	w.heap.Push(int32(source), 0)
	w.stats.QueueOps++

	for !w.heap.Empty() {
		if w.heap.Len() > w.stats.MaxFrontier {
			w.stats.MaxFrontier = w.heap.Len()
		}
		item := w.heap.Pop()
		u := roadnet.NodeID(item.Value)
		if item.Priority > w.dist[u] {
			continue // stale entry
		}
		w.stats.SettledNodes++
		if u == dest {
			return w.reconstruct(source, dest), w.stats, nil
		}
		w.expand(u)
	}
	return Path{}, w.stats, nil
}

// DijkstraDistance returns only the shortest-path distance from source to
// dest (+Inf when unreachable), terminating as soon as dest is settled and
// skipping path reconstruction entirely. In steady state it performs no heap
// allocation at all.
//
//opaque:noalloc
func (w *Workspace) DijkstraDistance(acc storage.Accessor, source, dest roadnet.NodeID) (float64, Stats, error) {
	if err := checkEndpoints(acc, source, dest); err != nil {
		return 0, Stats{}, err
	}
	w.begin(acc)
	w.label(source, 0, roadnet.InvalidNode)
	w.heap.Push(int32(source), 0)
	w.stats.QueueOps++

	for !w.heap.Empty() {
		if w.heap.Len() > w.stats.MaxFrontier {
			w.stats.MaxFrontier = w.heap.Len()
		}
		item := w.heap.Pop()
		u := roadnet.NodeID(item.Value)
		if item.Priority > w.dist[u] {
			continue
		}
		w.stats.SettledNodes++
		if u == dest {
			return w.dist[u], w.stats, nil
		}
		w.expand(u)
	}
	return math.Inf(1), w.stats, nil
}

// AStarScaled is A* with the Euclidean heuristic multiplied by scale, the
// workspace form of the package-level AStarScaled.
func (w *Workspace) AStarScaled(acc storage.Accessor, source, dest roadnet.NodeID, scale float64) (Path, Stats, error) {
	if err := checkEndpoints(acc, source, dest); err != nil {
		return Path{}, Stats{}, err
	}
	if scale < 0 {
		scale = 0
	}
	w.begin(acc)
	w.hScale, w.hDest = scale, dest
	w.h = w.euclidH
	return w.runAStar(source, dest), w.stats, nil
}

// AStarHeuristic is A* with an arbitrary admissible heuristic; AStarALT and
// the ALT strategy use it with the landmark lower bound.
func (w *Workspace) AStarHeuristic(acc storage.Accessor, source, dest roadnet.NodeID, h func(roadnet.NodeID) float64) (Path, Stats, error) {
	if err := checkEndpoints(acc, source, dest); err != nil {
		return Path{}, Stats{}, err
	}
	w.begin(acc)
	w.h = h
	return w.runAStar(source, dest), w.stats, nil
}

// runAStar is the A* core: the workspace must have been begun and w.h set.
func (w *Workspace) runAStar(source, dest roadnet.NodeID) Path {
	w.label(source, 0, roadnet.InvalidNode)
	w.heap.Push(int32(source), w.h(source))
	w.stats.QueueOps++

	for !w.heap.Empty() {
		if w.heap.Len() > w.stats.MaxFrontier {
			w.stats.MaxFrontier = w.heap.Len()
		}
		item := w.heap.Pop()
		u := roadnet.NodeID(item.Value)
		if w.settled(u) {
			continue
		}
		w.settle(u)
		w.stats.SettledNodes++
		if u == dest {
			return w.reconstruct(source, dest)
		}
		w.u, w.du = u, w.dist[u]
		w.acc.ForEachArc(u, w.relaxAStar)
	}
	return Path{}
}

// SSMD performs the single-source multi-destination search of Section III-B
// on this workspace: a Dijkstra spanning tree grown from source until every
// destination has been settled (or the frontier is exhausted). Results and
// statistics are identical to the package-level SSMD.
func (w *Workspace) SSMD(acc storage.Accessor, source roadnet.NodeID, dests []roadnet.NodeID) (SSMDResult, error) {
	if err := checkSSMDEndpoints(acc, source, dests); err != nil {
		return SSMDResult{}, err
	}
	w.begin(acc)

	// The pending-destination set lives in the mark array: O(1) to reset,
	// duplicates collapse exactly like the reference map-based set.
	w.bumpMark()
	pending := 0
	for _, d := range dests {
		if w.mark[d] != w.markEpoch {
			w.mark[d] = w.markEpoch
			pending++
		}
	}

	w.label(source, 0, roadnet.InvalidNode)
	w.heap.Push(int32(source), 0)
	w.stats.QueueOps++
	if w.mark[source] == w.markEpoch {
		w.mark[source] = w.markEpoch - 1 // un-mark: source is served trivially
		pending--
	}

	for !w.heap.Empty() && pending > 0 {
		if w.heap.Len() > w.stats.MaxFrontier {
			w.stats.MaxFrontier = w.heap.Len()
		}
		item := w.heap.Pop()
		u := roadnet.NodeID(item.Value)
		if item.Priority > w.dist[u] {
			continue
		}
		w.stats.SettledNodes++
		if w.mark[u] == w.markEpoch {
			w.mark[u] = w.markEpoch - 1
			pending--
			if pending == 0 {
				break
			}
		}
		w.expand(u)
	}

	res := SSMDResult{
		Source: source,
		Dests:  append([]roadnet.NodeID(nil), dests...),
		Paths:  make([]Path, len(dests)),
		Stats:  w.stats,
	}
	for i, d := range dests {
		if d == source {
			res.Paths[i] = Path{Nodes: []roadnet.NodeID{source}, Cost: 0}
			continue
		}
		res.Paths[i] = w.reconstruct(source, d)
	}
	return res, nil
}

// SingleSourceTree computes shortest-path distances from source to every
// reachable node (a full Dijkstra run with no early termination) on this
// workspace, then copies the labels out into freshly allocated full-size
// arrays — the contract callers such as landmark preprocessing rely on.
func (w *Workspace) SingleSourceTree(acc storage.Accessor, source roadnet.NodeID) ([]float64, []roadnet.NodeID, Stats, error) {
	if !validNode(acc, source) {
		return nil, nil, Stats{}, errInvalidSource(source)
	}
	w.begin(acc)
	w.label(source, 0, roadnet.InvalidNode)
	w.heap.Push(int32(source), 0)
	w.stats.QueueOps++
	for !w.heap.Empty() {
		if w.heap.Len() > w.stats.MaxFrontier {
			w.stats.MaxFrontier = w.heap.Len()
		}
		item := w.heap.Pop()
		u := roadnet.NodeID(item.Value)
		if item.Priority > w.dist[u] {
			continue
		}
		w.stats.SettledNodes++
		w.expand(u)
	}
	n := acc.NumNodes()
	dist := make([]float64, n)
	parent := make([]roadnet.NodeID, n)
	for v := 0; v < n; v++ {
		if w.stamp[v] == w.epoch {
			dist[v] = w.dist[v]
			parent[v] = w.parent[v]
		} else {
			dist[v] = math.Inf(1)
			parent[v] = roadnet.InvalidNode
		}
	}
	return dist, parent, w.stats, nil
}

// checkSSMDEndpoints validates an SSMD query's endpoints.
func checkSSMDEndpoints(acc storage.Accessor, source roadnet.NodeID, dests []roadnet.NodeID) error {
	if !validNode(acc, source) {
		return errInvalidSource(source)
	}
	if len(dests) == 0 {
		return errNoDestinations()
	}
	for _, d := range dests {
		if !validNode(acc, d) {
			return errInvalidDest(d)
		}
	}
	return nil
}

// WorkspacePool hands out Workspaces for the duration of one query (or one
// resumable spanning tree). It is backed by a sync.Pool, so idle workspaces
// are reclaimed under memory pressure and each P keeps a hot workspace whose
// arrays are already sized for the graph — the steady-state acquire/release
// pair performs no allocation.
//
// One pool serves mixed graph sizes and graph generations: Get resets the
// workspace against the requested node count, growing the arrays when a
// larger graph (or a new, bigger generation) arrives, and the epoch bump
// guarantees no label from an earlier graph can leak into the next search.
type WorkspacePool struct {
	p sync.Pool

	gets  atomic.Int64
	puts  atomic.Int64
	fresh atomic.Int64
}

// WorkspacePoolStats is a snapshot of a pool's checkout counters; the server
// surfaces them as gauges and in its periodic stats log.
type WorkspacePoolStats struct {
	// Gets counts checkouts; Puts counts returns. Gets - Puts is the number
	// of workspaces in flight at snapshot time — which, on a server with the
	// tree cache enabled, includes the workspaces cached spanning trees
	// deliberately hold for their cache lifetime, not just searches
	// mid-query.
	Gets, Puts int64
	// Fresh counts Gets that had to construct a new workspace because the
	// pool was empty (a cold start or GC reclaim). In steady state Fresh
	// stays flat while Gets keeps climbing — the zero-allocation hot path.
	Fresh int64
}

// InFlight returns the number of workspaces currently checked out.
func (s WorkspacePoolStats) InFlight() int64 { return s.Gets - s.Puts }

// ReuseRatio returns the fraction of checkouts served by a recycled
// workspace, (Gets - Fresh) / Gets, or 0 before any checkout.
func (s WorkspacePoolStats) ReuseRatio() float64 {
	if s.Gets == 0 {
		return 0
	}
	return float64(s.Gets-s.Fresh) / float64(s.Gets)
}

// NewWorkspacePool returns an empty pool.
func NewWorkspacePool() *WorkspacePool {
	wp := &WorkspacePool{}
	wp.p.New = func() any {
		wp.fresh.Add(1)
		return NewWorkspace(0)
	}
	return wp
}

// Get checks a workspace out of the pool, reset and sized for an n-node
// graph.
func (wp *WorkspacePool) Get(n int) *Workspace {
	wp.gets.Add(1)
	w := wp.p.Get().(*Workspace)
	w.pool = wp
	w.Reset(n)
	return w
}

// Put returns a workspace to the pool. The workspace must not be used after
// Put; the next Get invalidates all of its state.
func (wp *WorkspacePool) Put(w *Workspace) {
	if w == nil {
		return
	}
	wp.puts.Add(1)
	w.pool = nil
	w.acc = nil // do not pin graphs from inside the pool
	w.h = nil
	wp.p.Put(w)
}

// Stats returns a snapshot of the pool's checkout counters.
func (wp *WorkspacePool) Stats() WorkspacePoolStats {
	return WorkspacePoolStats{
		Gets:  wp.gets.Load(),
		Puts:  wp.puts.Load(),
		Fresh: wp.fresh.Load(),
	}
}

// sharedWorkspaces backs the package-level wrappers (Dijkstra, SSMD, …) and
// any caller that does not manage its own pool.
var sharedWorkspaces = NewWorkspacePool()

// AcquireWorkspace checks a workspace sized for n nodes out of the package's
// shared pool. Release it with Workspace.Release when the query is done.
func AcquireWorkspace(n int) *Workspace { return sharedWorkspaces.Get(n) }

// Release returns the workspace to the pool it was checked out of (a no-op
// for workspaces constructed directly with NewWorkspace).
func (w *Workspace) Release() {
	if w.pool != nil {
		w.pool.Put(w)
	}
}
