package search

import (
	"fmt"
	"sync"
	"sync/atomic"

	"opaque/internal/roadnet"
	"opaque/internal/storage"
)

// Tree is a resumable single-source Dijkstra spanning tree: the settled part
// of the tree the SSMD search of Section III-B grows. Unlike the one-shot
// SSMD function, a Tree keeps its distance labels, parent pointers and
// priority queue between calls, so a later query from the same source only
// pays for the frontier expansion beyond what earlier queries already
// settled. This is what makes the SSMD tree cache effective: obfuscated
// queries that share a source (common in shared mode, where the obfuscator
// deliberately reuses endpoints across users) reuse the settled prefix
// instead of re-running Dijkstra from scratch.
//
// The tree's state lives in an epoch-stamped Workspace checked out of a
// WorkspacePool for the tree's whole lifetime: creating a tree is O(1) — an
// epoch bump on recycled arrays — instead of allocating and Inf-filling two
// O(n) label arrays, and releasing the tree hands the arrays to the next
// tree instead of the garbage collector. Release is refcounted so a cache
// can drop its entry while a concurrent query is still reading the tree; the
// workspace returns to the pool only when the last holder lets go.
//
// Growing the tree replays exactly the relaxation sequence an uninterrupted
// search would perform: Paths stops, like cold SSMD, right after settling the
// last requested destination (before expanding its arcs), records that node
// as the pending expansion, and the next growth step starts by expanding it.
// Distances and parent pointers therefore evolve identically to a single
// long-running search, and paths extracted from a resumed tree match cold
// SSMD results.
//
// A Tree serialises its own growth with an internal mutex; concurrent Paths
// calls are safe and each observes a tree at least as grown as it needs.
type Tree struct {
	mu     sync.Mutex
	acc    storage.Accessor
	source roadnet.NodeID
	ws     *Workspace
	// refs counts live holders of the tree: its creator (or the cache that
	// adopted it) plus every in-flight Paths caller pinned via retain. The
	// workspace is recycled when the count reaches zero.
	refs atomic.Int32
	// unexpanded is the most recently settled node whose arcs have not been
	// relaxed yet (cold SSMD stops before expanding the last destination);
	// InvalidNode when none is outstanding.
	unexpanded roadnet.NodeID
	// grown accumulates the total work spent growing this tree across all
	// calls; Paths reports only the incremental work of each call.
	grown Stats
}

// NewTree initialises an empty spanning tree rooted at source, drawing its
// workspace from the package's shared pool. It performs no search work; the
// first Paths call grows the tree. Callers that are done with the tree may
// call Release to recycle its workspace (the garbage collector reclaims
// unreleased trees eventually, just without reuse).
func NewTree(acc storage.Accessor, source roadnet.NodeID) (*Tree, error) {
	return newTreeFromPool(sharedWorkspaces, acc, source)
}

// newTreeFromPool is NewTree with an explicit workspace pool.
func newTreeFromPool(pool *WorkspacePool, acc storage.Accessor, source roadnet.NodeID) (*Tree, error) {
	if !validNode(acc, source) {
		return nil, errInvalidSource(source)
	}
	w := pool.Get(acc.NumNodes())
	w.acc = acc
	t := &Tree{
		acc:        acc,
		source:     source,
		ws:         w,
		unexpanded: roadnet.InvalidNode,
	}
	t.refs.Store(1)
	w.label(source, 0, roadnet.InvalidNode)
	w.heap.Push(int32(source), 0)
	t.grown.QueueOps++
	return t, nil
}

// Source returns the root of the tree.
func (t *Tree) Source() roadnet.NodeID { return t.source }

// GrownStats returns the cumulative work spent growing the tree so far.
func (t *Tree) GrownStats() Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.grown
}

// retain pins the tree for a caller about to use it; pair with Release.
func (t *Tree) retain() { t.refs.Add(1) }

// Release drops one holder's reference. When the last reference is dropped
// the tree's workspace is returned to its pool and the tree becomes
// unusable; further Paths calls return an error.
func (t *Tree) Release() {
	if t.refs.Add(-1) != 0 {
		return
	}
	t.mu.Lock()
	w := t.ws
	t.ws = nil
	t.mu.Unlock()
	if w != nil {
		w.Release()
	}
}

// Paths returns the shortest path from the tree's source to every requested
// destination (empty when unreachable), growing the tree just far enough to
// settle them all. The returned Stats count only the incremental work this
// call performed — zero when every destination was already settled, which is
// exactly the saving the tree cache exists to harvest.
func (t *Tree) Paths(dests []roadnet.NodeID) (SSMDResult, error) {
	if len(dests) == 0 {
		return SSMDResult{}, errNoDestinations()
	}
	for _, d := range dests {
		if !validNode(t.acc, d) {
			return SSMDResult{}, errInvalidDest(d)
		}
	}

	t.mu.Lock()
	defer t.mu.Unlock()
	if t.ws == nil {
		return SSMDResult{}, fmt.Errorf("search: Paths on a released tree (source %d)", t.source)
	}

	stats := t.grow(dests)

	res := SSMDResult{
		Source: t.source,
		Dests:  append([]roadnet.NodeID(nil), dests...),
		Paths:  make([]Path, len(dests)),
		Stats:  stats,
	}
	for i, d := range dests {
		if d == t.source {
			res.Paths[i] = Path{Nodes: []roadnet.NodeID{t.source}, Cost: 0}
			continue
		}
		if !t.ws.settled(d) {
			res.Paths[i] = Path{} // frontier exhausted without reaching d
			continue
		}
		res.Paths[i] = t.ws.reconstruct(t.source, d)
	}
	return res, nil
}

// grow continues the Dijkstra expansion until every destination is settled or
// the frontier is exhausted, returning the incremental work. Caller holds
// t.mu.
func (t *Tree) grow(dests []roadnet.NodeID) Stats {
	w := t.ws
	w.stats = Stats{}
	w.bumpMark()
	pending := 0
	for _, d := range dests {
		if d != t.source && !w.settled(d) && w.mark[d] != w.markEpoch {
			w.mark[d] = w.markEpoch
			pending++
		}
	}
	if pending == 0 {
		return w.stats // fully served from the settled prefix
	}
	if t.unexpanded != roadnet.InvalidNode {
		w.expand(t.unexpanded)
		t.unexpanded = roadnet.InvalidNode
	}
	for pending > 0 && !w.heap.Empty() {
		if w.heap.Len() > w.stats.MaxFrontier {
			w.stats.MaxFrontier = w.heap.Len()
		}
		item := w.heap.Pop()
		u := roadnet.NodeID(item.Value)
		if item.Priority > w.dist[u] {
			continue // stale entry
		}
		w.settle(u)
		w.stats.SettledNodes++
		if w.mark[u] == w.markEpoch {
			w.mark[u] = w.markEpoch - 1
			pending--
			if pending == 0 {
				// Stop exactly where cold SSMD stops: after settling the
				// last destination, before expanding its arcs. The next
				// grow call performs the deferred expansion first.
				t.unexpanded = u
				break
			}
		}
		w.expand(u)
	}
	t.grown = t.grown.Add(w.stats)
	return w.stats
}
