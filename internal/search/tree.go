package search

import (
	"fmt"
	"sync"

	"opaque/internal/pqueue"
	"opaque/internal/roadnet"
	"opaque/internal/storage"
)

// Tree is a resumable single-source Dijkstra spanning tree: the settled part
// of the tree the SSMD search of Section III-B grows. Unlike the one-shot
// SSMD function, a Tree keeps its distance labels, parent pointers and
// priority queue between calls, so a later query from the same source only
// pays for the frontier expansion beyond what earlier queries already
// settled. This is what makes the SSMD tree cache effective: obfuscated
// queries that share a source (common in shared mode, where the obfuscator
// deliberately reuses endpoints across users) reuse the settled prefix
// instead of re-running Dijkstra from scratch.
//
// Growing the tree replays exactly the relaxation sequence an uninterrupted
// search would perform: Paths stops, like cold SSMD, right after settling the
// last requested destination (before expanding its arcs), records that node
// as the pending expansion, and the next growth step starts by expanding it.
// Distances and parent pointers therefore evolve identically to a single
// long-running search, and paths extracted from a resumed tree match cold
// SSMD results.
//
// A Tree serialises its own growth with an internal mutex; concurrent Paths
// calls are safe and each observes a tree at least as grown as it needs.
type Tree struct {
	mu      sync.Mutex
	acc     storage.Accessor
	source  roadnet.NodeID
	dist    []float64
	parent  []roadnet.NodeID
	settled []bool
	pq      *pqueue.IndexedHeap
	// unexpanded is the most recently settled node whose arcs have not been
	// relaxed yet (cold SSMD stops before expanding the last destination);
	// InvalidNode when none is outstanding.
	unexpanded roadnet.NodeID
	// grown accumulates the total work spent growing this tree across all
	// calls; Paths reports only the incremental work of each call.
	grown Stats
}

// NewTree initialises an empty spanning tree rooted at source. It performs no
// search work; the first Paths call grows the tree.
func NewTree(acc storage.Accessor, source roadnet.NodeID) (*Tree, error) {
	if !validNode(acc, source) {
		return nil, fmt.Errorf("search: invalid source node %d", source)
	}
	n := acc.NumNodes()
	t := &Tree{
		acc:        acc,
		source:     source,
		dist:       newDistSlice(n),
		parent:     newParentSlice(n),
		settled:    make([]bool, n),
		pq:         pqueue.NewWithCapacity(64),
		unexpanded: roadnet.InvalidNode,
	}
	t.dist[source] = 0
	t.pq.Push(int32(source), 0)
	t.grown.QueueOps++
	return t, nil
}

// Source returns the root of the tree.
func (t *Tree) Source() roadnet.NodeID { return t.source }

// GrownStats returns the cumulative work spent growing the tree so far.
func (t *Tree) GrownStats() Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.grown
}

// Paths returns the shortest path from the tree's source to every requested
// destination (empty when unreachable), growing the tree just far enough to
// settle them all. The returned Stats count only the incremental work this
// call performed — zero when every destination was already settled, which is
// exactly the saving the tree cache exists to harvest.
func (t *Tree) Paths(dests []roadnet.NodeID) (SSMDResult, error) {
	if len(dests) == 0 {
		return SSMDResult{}, fmt.Errorf("search: SSMD needs at least one destination")
	}
	for _, d := range dests {
		if !validNode(t.acc, d) {
			return SSMDResult{}, fmt.Errorf("search: invalid destination node %d", d)
		}
	}

	t.mu.Lock()
	defer t.mu.Unlock()

	stats := t.grow(dests)

	res := SSMDResult{
		Source: t.source,
		Dests:  append([]roadnet.NodeID(nil), dests...),
		Paths:  make([]Path, len(dests)),
		Stats:  stats,
	}
	for i, d := range dests {
		if d == t.source {
			res.Paths[i] = Path{Nodes: []roadnet.NodeID{t.source}, Cost: 0}
			continue
		}
		if !t.settled[d] {
			res.Paths[i] = Path{} // frontier exhausted without reaching d
			continue
		}
		res.Paths[i] = reconstruct(t.parent, t.dist, t.source, d)
	}
	return res, nil
}

// grow continues the Dijkstra expansion until every destination is settled or
// the frontier is exhausted, returning the incremental work. Caller holds
// t.mu.
func (t *Tree) grow(dests []roadnet.NodeID) Stats {
	pendingSet := make(map[roadnet.NodeID]struct{}, len(dests))
	for _, d := range dests {
		if !t.settled[d] && d != t.source {
			pendingSet[d] = struct{}{}
		}
	}
	var stats Stats
	if len(pendingSet) == 0 {
		return stats // fully served from the settled prefix
	}
	if t.unexpanded != roadnet.InvalidNode {
		t.relax(t.unexpanded, &stats)
		t.unexpanded = roadnet.InvalidNode
	}
	for len(pendingSet) > 0 && !t.pq.Empty() {
		if t.pq.Len() > stats.MaxFrontier {
			stats.MaxFrontier = t.pq.Len()
		}
		item := t.pq.Pop()
		u := roadnet.NodeID(item.Value)
		if item.Priority > t.dist[u] {
			continue // stale entry
		}
		t.settled[u] = true
		stats.SettledNodes++
		if _, ok := pendingSet[u]; ok {
			delete(pendingSet, u)
			if len(pendingSet) == 0 {
				// Stop exactly where cold SSMD stops: after settling the
				// last destination, before expanding its arcs. The next
				// grow call performs the deferred expansion first.
				t.unexpanded = u
				break
			}
		}
		t.relax(u, &stats)
	}
	t.grown = t.grown.Add(stats)
	return stats
}

// relax expands u's outgoing arcs, updating tentative distances.
func (t *Tree) relax(u roadnet.NodeID, stats *Stats) {
	for _, a := range t.acc.Arcs(u) {
		stats.RelaxedArcs++
		nd := t.dist[u] + a.Cost
		if nd < t.dist[a.To] {
			t.dist[a.To] = nd
			t.parent[a.To] = u
			t.pq.Push(int32(a.To), nd)
			stats.QueueOps++
		}
	}
}
