package search

import (
	"math"
	"testing"

	"opaque/internal/gen"
	"opaque/internal/roadnet"
	"opaque/internal/storage"
)

func TestPrepareLandmarksValidation(t *testing.T) {
	g := mediumGraph(t)
	acc := storage.NewMemoryGraph(g)
	if _, err := PrepareLandmarks(acc, 0, LandmarksFarthest); err == nil {
		t.Error("zero landmarks accepted")
	}
	empty := roadnet.NewGraph(0, 0)
	empty.Freeze()
	if _, err := PrepareLandmarks(storage.NewMemoryGraph(empty), 2, LandmarksFarthest); err == nil {
		t.Error("empty graph accepted")
	}
	if _, err := PrepareLandmarks(acc, 2, "bogus"); err == nil {
		t.Error("unknown strategy accepted")
	}
	// k larger than the node count is clamped, not an error.
	tiny := lineGraph(t)
	lm, err := PrepareLandmarks(storage.NewMemoryGraph(tiny), 50, LandmarksFarthest)
	if err != nil {
		t.Fatal(err)
	}
	if len(lm.Nodes()) > tiny.NumNodes() {
		t.Errorf("landmarks %d exceed node count %d", len(lm.Nodes()), tiny.NumNodes())
	}
}

func TestLandmarkStrategiesPickDistinctNodes(t *testing.T) {
	g := mediumGraph(t)
	acc := storage.NewMemoryGraph(g)
	for _, strategy := range []LandmarkStrategy{LandmarksFarthest, LandmarksPerimeter} {
		lm, err := PrepareLandmarks(acc, 6, strategy)
		if err != nil {
			t.Fatalf("%s: %v", strategy, err)
		}
		seen := map[roadnet.NodeID]struct{}{}
		for _, id := range lm.Nodes() {
			if _, dup := seen[id]; dup {
				t.Errorf("%s: duplicate landmark %d", strategy, id)
			}
			seen[id] = struct{}{}
			if !g.ValidNode(id) {
				t.Errorf("%s: invalid landmark %d", strategy, id)
			}
		}
	}
}

// TestALTLowerBoundAdmissible checks the ALT bound never exceeds the true
// network distance — the property that makes A* with it exact.
func TestALTLowerBoundAdmissible(t *testing.T) {
	g := mediumGraph(t)
	acc := storage.NewMemoryGraph(g)
	lm, err := PrepareLandmarks(acc, 4, LandmarksFarthest)
	if err != nil {
		t.Fatal(err)
	}
	pairs := gen.MustGenerateWorkload(g, gen.WorkloadConfig{Kind: gen.Uniform, Queries: 30, Seed: 71})
	for _, pr := range pairs {
		true_, err := DijkstraDistance(acc, pr.Source, pr.Dest)
		if err != nil {
			t.Fatal(err)
		}
		if math.IsInf(true_, 1) {
			continue
		}
		lb := lm.LowerBound(pr.Source, pr.Dest)
		if lb > true_+1e-6 {
			t.Fatalf("ALT bound %v exceeds true distance %v for %d->%d", lb, true_, pr.Source, pr.Dest)
		}
		if lb < 0 {
			t.Fatalf("negative lower bound %v", lb)
		}
	}
}

func TestAStarALTMatchesDijkstraAndSettlesFewer(t *testing.T) {
	g := mediumGraph(t)
	acc := storage.NewMemoryGraph(g)
	lm, err := PrepareLandmarks(acc, 6, LandmarksFarthest)
	if err != nil {
		t.Fatal(err)
	}
	pairs := gen.MustGenerateWorkload(g, gen.WorkloadConfig{Kind: gen.Uniform, Queries: 30, Seed: 73})
	var altSettled, dijkstraSettled int
	for _, pr := range pairs {
		pd, sd, err := Dijkstra(acc, pr.Source, pr.Dest)
		if err != nil {
			t.Fatal(err)
		}
		pa, sa, err := AStarALT(acc, lm, pr.Source, pr.Dest)
		if err != nil {
			t.Fatal(err)
		}
		if pd.Empty() != pa.Empty() {
			t.Fatalf("reachability mismatch for %d->%d", pr.Source, pr.Dest)
		}
		if !pd.Empty() && math.Abs(pd.Cost-pa.Cost) > 1e-6 {
			t.Fatalf("ALT cost %v != Dijkstra cost %v for %d->%d", pa.Cost, pd.Cost, pr.Source, pr.Dest)
		}
		if err := pa.Validate(g); err != nil {
			t.Errorf("ALT path invalid: %v", err)
		}
		altSettled += sa.SettledNodes
		dijkstraSettled += sd.SettledNodes
	}
	if altSettled >= dijkstraSettled {
		t.Errorf("ALT settled %d nodes, Dijkstra %d — landmarks should prune the search", altSettled, dijkstraSettled)
	}
}

func TestAStarALTErrors(t *testing.T) {
	g := mediumGraph(t)
	acc := storage.NewMemoryGraph(g)
	lm, err := PrepareLandmarks(acc, 2, LandmarksPerimeter)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := AStarALT(acc, nil, 0, 1); err == nil {
		t.Error("nil landmarks accepted")
	}
	if _, _, err := AStarALT(acc, lm, -1, 1); err == nil {
		t.Error("invalid source accepted")
	}
	// Tables prepared on a different graph are rejected.
	other := storage.NewMemoryGraph(lineGraph(t))
	if _, _, err := AStarALT(other, lm, 0, 1); err == nil {
		t.Error("landmark tables for a different graph accepted")
	}
}
