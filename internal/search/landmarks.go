package search

import (
	"fmt"
	"math"

	"opaque/internal/roadnet"
	"opaque/internal/storage"
)

// Landmarks holds the precomputed distance tables of the ALT heuristic (A*,
// Landmarks, Triangle inequality): for a set of landmark nodes L, the exact
// network distances d(l, v) from every landmark to every node. During an A*
// search towards destination t, the admissible lower bound for node v is
//
//	h(v) = max_{l ∈ L} |d(l, t) − d(l, v)|
//
// which by the triangle inequality never overestimates the true network
// distance from v to t on symmetric road networks. ALT is the strongest
// point-to-point engine in this repository; the server can use it for the
// pairwise strategies, and the ablation benchmark compares it against plain
// A* and Dijkstra.
//
// Preprocessing runs |L| full Dijkstra trees, so it is a one-time cost paid
// when the server loads the map — exactly the kind of work a production
// directions service precomputes offline.
type Landmarks struct {
	nodes []roadnet.NodeID
	// dist[i][v] is the network distance from landmark i to node v.
	dist [][]float64
}

// LandmarkStrategy selects how landmark nodes are chosen.
type LandmarkStrategy string

const (
	// LandmarksFarthest picks landmarks greedily: start from an arbitrary
	// node, then repeatedly add the node farthest (in network distance) from
	// the already chosen set. Standard and effective for road networks.
	LandmarksFarthest LandmarkStrategy = "farthest"
	// LandmarksPerimeter picks nodes closest to the corners and edge
	// midpoints of the bounding box; cheap and geometry-driven.
	LandmarksPerimeter LandmarkStrategy = "perimeter"
)

// PrepareLandmarks computes the distance tables for k landmarks chosen by the
// given strategy. k is clamped to the node count.
func PrepareLandmarks(acc storage.Accessor, k int, strategy LandmarkStrategy) (*Landmarks, error) {
	n := acc.NumNodes()
	if n == 0 {
		return nil, fmt.Errorf("search: cannot prepare landmarks on an empty graph")
	}
	if k <= 0 {
		return nil, fmt.Errorf("search: landmark count must be positive, got %d", k)
	}
	if k > n {
		k = n
	}
	var picks []roadnet.NodeID
	var err error
	switch strategy {
	case LandmarksFarthest, "":
		picks, err = farthestLandmarks(acc, k)
	case LandmarksPerimeter:
		picks = perimeterLandmarks(acc.Graph(), k)
	default:
		return nil, fmt.Errorf("search: unknown landmark strategy %q", strategy)
	}
	if err != nil {
		return nil, err
	}
	lm := &Landmarks{nodes: picks, dist: make([][]float64, len(picks))}
	for i, l := range picks {
		dist, _, _, err := SingleSourceTree(acc, l)
		if err != nil {
			return nil, err
		}
		lm.dist[i] = dist
	}
	return lm, nil
}

// Nodes returns the chosen landmark nodes.
func (lm *Landmarks) Nodes() []roadnet.NodeID { return lm.nodes }

// LowerBound returns the ALT lower bound on the network distance from v to t.
// Unreachable table entries contribute nothing (a landmark in another
// component gives no information).
func (lm *Landmarks) LowerBound(v, t roadnet.NodeID) float64 {
	best := 0.0
	for i := range lm.dist {
		dv, dt := lm.dist[i][v], lm.dist[i][t]
		if math.IsInf(dv, 1) || math.IsInf(dt, 1) {
			continue
		}
		if diff := math.Abs(dt - dv); diff > best {
			best = diff
		}
	}
	return best
}

// farthestLandmarks implements the farthest-point heuristic using network
// distances.
func farthestLandmarks(acc storage.Accessor, k int) ([]roadnet.NodeID, error) {
	n := acc.NumNodes()
	// Start from node 0 (any node works; the first pick is discarded in the
	// classic formulation, but keeping it is fine for small k).
	minDist := make([]float64, n)
	for i := range minDist {
		minDist[i] = math.Inf(1)
	}
	picks := make([]roadnet.NodeID, 0, k)
	current := roadnet.NodeID(0)
	for len(picks) < k {
		picks = append(picks, current)
		dist, _, _, err := SingleSourceTree(acc, current)
		if err != nil {
			return nil, err
		}
		next := roadnet.InvalidNode
		nextDist := -1.0
		for v := 0; v < n; v++ {
			if dist[v] < minDist[v] {
				minDist[v] = dist[v]
			}
			if math.IsInf(minDist[v], 1) {
				continue // other component; never pick unreachable nodes
			}
			if minDist[v] > nextDist {
				nextDist = minDist[v]
				next = roadnet.NodeID(v)
			}
		}
		if next == roadnet.InvalidNode || containsID(picks, next) {
			break
		}
		current = next
	}
	return picks, nil
}

// perimeterLandmarks picks the nodes nearest to the bounding-box corners and
// edge midpoints.
func perimeterLandmarks(g *roadnet.Graph, k int) []roadnet.NodeID {
	minX, minY, maxX, maxY := g.Bounds()
	midX, midY := (minX+maxX)/2, (minY+maxY)/2
	anchors := [][2]float64{
		{minX, minY}, {maxX, maxY}, {minX, maxY}, {maxX, minY},
		{midX, minY}, {midX, maxY}, {minX, midY}, {maxX, midY},
	}
	var picks []roadnet.NodeID
	for _, a := range anchors {
		if len(picks) >= k {
			break
		}
		id := g.NearestNode(a[0], a[1])
		if id != roadnet.InvalidNode && !containsID(picks, id) {
			picks = append(picks, id)
		}
	}
	// Fill any remainder with evenly spaced node IDs.
	for id := 0; len(picks) < k && id < g.NumNodes(); id += 1 + g.NumNodes()/k {
		nid := roadnet.NodeID(id)
		if !containsID(picks, nid) {
			picks = append(picks, nid)
		}
	}
	return picks
}

func containsID(ids []roadnet.NodeID, id roadnet.NodeID) bool {
	for _, v := range ids {
		if v == id {
			return true
		}
	}
	return false
}

// AStarALT runs A* from source to dest using the ALT lower bound as the
// heuristic. The landmark tables must have been prepared on the same graph.
// The search runs on a pooled Workspace through the generic AStarHeuristic
// core.
func AStarALT(acc storage.Accessor, lm *Landmarks, source, dest roadnet.NodeID) (Path, Stats, error) {
	w := AcquireWorkspace(acc.NumNodes())
	defer w.Release()
	return w.AStarALT(acc, lm, source, dest)
}

// AStarALT is the workspace form of the package-level AStarALT, letting a
// worker reuse one workspace across many ALT searches.
func (w *Workspace) AStarALT(acc storage.Accessor, lm *Landmarks, source, dest roadnet.NodeID) (Path, Stats, error) {
	if lm == nil || len(lm.dist) == 0 {
		return Path{}, Stats{}, fmt.Errorf("search: AStarALT needs prepared landmarks")
	}
	if err := checkEndpoints(acc, source, dest); err != nil {
		return Path{}, Stats{}, err
	}
	if len(lm.dist[0]) != acc.NumNodes() {
		return Path{}, Stats{}, fmt.Errorf("search: landmark tables cover %d nodes, graph has %d", len(lm.dist[0]), acc.NumNodes())
	}
	return w.AStarHeuristic(acc, source, dest, func(v roadnet.NodeID) float64 {
		return lm.LowerBound(v, dest)
	})
}
