package search

import (
	"math"
	"testing"

	"opaque/internal/gen"
	"opaque/internal/roadnet"
	"opaque/internal/storage"
)

func TestSSMDMatchesIndividualDijkstra(t *testing.T) {
	g := mediumGraph(t)
	acc := storage.NewMemoryGraph(g)
	pairs := gen.MustGenerateWorkload(g, gen.WorkloadConfig{Kind: gen.Uniform, Queries: 10, Seed: 9})
	for _, pr := range pairs {
		dests := []roadnet.NodeID{pr.Dest, (pr.Dest + 17) % roadnet.NodeID(g.NumNodes()), (pr.Dest + 91) % roadnet.NodeID(g.NumNodes())}
		res, err := SSMD(acc, pr.Source, dests)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Paths) != len(dests) {
			t.Fatalf("got %d paths, want %d", len(res.Paths), len(dests))
		}
		for i, d := range dests {
			ref, _, err := Dijkstra(acc, pr.Source, d)
			if err != nil {
				t.Fatal(err)
			}
			got := res.Paths[i]
			if ref.Empty() != got.Empty() {
				t.Fatalf("reachability mismatch for %d->%d", pr.Source, d)
			}
			if !ref.Empty() && math.Abs(ref.Cost-got.Cost) > 1e-6 {
				t.Fatalf("SSMD cost %v != Dijkstra cost %v for %d->%d", got.Cost, ref.Cost, pr.Source, d)
			}
			if err := got.Validate(g); err != nil {
				t.Errorf("SSMD path invalid: %v", err)
			}
		}
	}
}

func TestSSMDDuplicateAndSelfDestinations(t *testing.T) {
	g := lineGraph(t)
	acc := storage.NewMemoryGraph(g)
	res, err := SSMD(acc, 0, []roadnet.NodeID{3, 3, 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.Paths[0].Cost != res.Paths[1].Cost {
		t.Error("duplicate destinations should receive identical paths")
	}
	if res.Paths[2].Cost != 0 || len(res.Paths[2].Nodes) != 1 {
		t.Errorf("self destination path = %+v, want zero-cost single node", res.Paths[2])
	}
	if p, ok := res.PathTo(3); !ok || p.Cost != 3 {
		t.Errorf("PathTo(3) = %+v, %v", p, ok)
	}
	if _, ok := res.PathTo(99); ok {
		t.Error("PathTo for a non-requested destination should report false")
	}
}

func TestSSMDErrors(t *testing.T) {
	acc := storage.NewMemoryGraph(lineGraph(t))
	if _, err := SSMD(acc, 0, nil); err == nil {
		t.Error("SSMD with no destinations accepted")
	}
	if _, err := SSMD(acc, 99, []roadnet.NodeID{1}); err == nil {
		t.Error("SSMD with invalid source accepted")
	}
	if _, err := SSMD(acc, 0, []roadnet.NodeID{99}); err == nil {
		t.Error("SSMD with invalid destination accepted")
	}
}

// TestSSMDSharingCheaperThanPairwise verifies the Section III-B claim the
// design rests on: one spanning tree to nearby destinations costs much less
// than one Dijkstra per destination.
func TestSSMDSharingCheaperThanPairwise(t *testing.T) {
	g := mediumGraph(t)
	acc := storage.NewMemoryGraph(g)
	pairs := gen.MustGenerateWorkload(g, gen.WorkloadConfig{Kind: gen.Uniform, Queries: 10, Seed: 11})
	var ssmdTotal, pairwiseTotal int
	for _, pr := range pairs {
		// Destinations clustered around the true one.
		tn := g.Node(pr.Dest)
		near := g.NodesWithin(tn.X, tn.Y, 10000)
		dests := []roadnet.NodeID{pr.Dest}
		for _, id := range near {
			if id != pr.Dest && len(dests) < 6 {
				dests = append(dests, id)
			}
		}
		res, err := SSMD(acc, pr.Source, dests)
		if err != nil {
			t.Fatal(err)
		}
		ssmdTotal += res.Stats.SettledNodes
		for _, d := range dests {
			_, st, err := Dijkstra(acc, pr.Source, d)
			if err != nil {
				t.Fatal(err)
			}
			pairwiseTotal += st.SettledNodes
		}
	}
	if ssmdTotal*2 >= pairwiseTotal {
		t.Errorf("SSMD settled %d nodes, pairwise %d — expected SSMD to be at least 2x cheaper for clustered destinations", ssmdTotal, pairwiseTotal)
	}
}

func TestSSMDDistances(t *testing.T) {
	g := lineGraph(t)
	acc := storage.NewMemoryGraph(g)
	d, _, err := SSMDDistances(acc, 0, []roadnet.NodeID{1, 4, 0})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 4, 0}
	for i := range want {
		if d[i] != want[i] {
			t.Errorf("distance[%d] = %v, want %v", i, d[i], want[i])
		}
	}
}

func TestProcessorStrategiesAgree(t *testing.T) {
	g := mediumGraph(t)
	acc := storage.NewMemoryGraph(g)
	sources := []roadnet.NodeID{5, 105, 305}
	dests := []roadnet.NodeID{77, 301, 512, 640}

	results := map[Strategy]MSMDResult{}
	for _, strat := range []Strategy{StrategySSMD, StrategyPairwise, StrategyPairwiseAStar} {
		proc := NewProcessor(acc, WithStrategy(strat))
		res, err := proc.Evaluate(sources, dests)
		if err != nil {
			t.Fatalf("%s: %v", strat, err)
		}
		if res.NumCandidates() != len(sources)*len(dests) {
			t.Fatalf("%s produced %d candidates, want %d", strat, res.NumCandidates(), len(sources)*len(dests))
		}
		results[strat] = res
	}
	base := results[StrategySSMD]
	for _, strat := range []Strategy{StrategyPairwise, StrategyPairwiseAStar} {
		other := results[strat]
		for i := range sources {
			for j := range dests {
				a, b := base.Paths[i][j], other.Paths[i][j]
				if a.Empty() != b.Empty() {
					t.Fatalf("%s reachability differs for (%d,%d)", strat, sources[i], dests[j])
				}
				if !a.Empty() && math.Abs(a.Cost-b.Cost) > 1e-6 {
					t.Fatalf("%s cost %v != SSMD cost %v for (%d,%d)", strat, b.Cost, a.Cost, sources[i], dests[j])
				}
			}
		}
	}
	// The sharing strategy must do less work than pairwise Dijkstra.
	if results[StrategySSMD].Stats.SettledNodes >= results[StrategyPairwise].Stats.SettledNodes {
		t.Errorf("SSMD settled %d nodes, pairwise %d — sharing should be cheaper",
			results[StrategySSMD].Stats.SettledNodes, results[StrategyPairwise].Stats.SettledNodes)
	}
}

func TestProcessorConcurrentWorkersMatchSequential(t *testing.T) {
	g := mediumGraph(t)
	acc := storage.NewMemoryGraph(g)
	sources := []roadnet.NodeID{3, 33, 333, 603}
	dests := []roadnet.NodeID{10, 20, 30}
	seq, err := NewProcessor(acc).Evaluate(sources, dests)
	if err != nil {
		t.Fatal(err)
	}
	par, err := NewProcessor(acc, WithWorkers(4)).Evaluate(sources, dests)
	if err != nil {
		t.Fatal(err)
	}
	for i := range sources {
		for j := range dests {
			if math.Abs(seq.Paths[i][j].Cost-par.Paths[i][j].Cost) > 1e-9 {
				t.Fatalf("worker result differs at (%d,%d)", i, j)
			}
		}
	}
	if seq.Stats.SettledNodes != par.Stats.SettledNodes {
		t.Errorf("algorithmic work differs: %d vs %d settled nodes", seq.Stats.SettledNodes, par.Stats.SettledNodes)
	}
}

func TestProcessorErrors(t *testing.T) {
	acc := storage.NewMemoryGraph(lineGraph(t))
	proc := NewProcessor(acc)
	if _, err := proc.Evaluate(nil, []roadnet.NodeID{1}); err == nil {
		t.Error("empty source set accepted")
	}
	if _, err := proc.Evaluate([]roadnet.NodeID{0}, nil); err == nil {
		t.Error("empty destination set accepted")
	}
	if _, err := proc.Evaluate([]roadnet.NodeID{99}, []roadnet.NodeID{1}); err == nil {
		t.Error("invalid source accepted")
	}
	if _, err := proc.Evaluate([]roadnet.NodeID{0}, []roadnet.NodeID{99}); err == nil {
		t.Error("invalid destination accepted")
	}
	bad := NewProcessor(acc, WithStrategy("nonsense"))
	if _, err := bad.Evaluate([]roadnet.NodeID{0}, []roadnet.NodeID{1}); err == nil {
		t.Error("unknown strategy accepted")
	}
}

func TestMSMDResultLookup(t *testing.T) {
	acc := storage.NewMemoryGraph(lineGraph(t))
	res, err := NewProcessor(acc).Evaluate([]roadnet.NodeID{0, 1}, []roadnet.NodeID{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if p, ok := res.Path(0, 3); !ok || p.Cost != 3 {
		t.Errorf("Path(0,3) = %+v, %v", p, ok)
	}
	if _, ok := res.Path(0, 2); ok {
		t.Error("Path for a pair outside the query should report false")
	}
	all := res.AllPaths()
	if len(all) != 4 {
		t.Errorf("AllPaths returned %d, want 4", len(all))
	}
}
