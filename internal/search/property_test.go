package search

import (
	"math"
	"testing"
	"testing/quick"

	"opaque/internal/roadnet"
	"opaque/internal/storage"
)

// Property: on the shared medium graph, for arbitrary (source, dest) index
// pairs, the network distance returned by Dijkstra is never below the
// Euclidean lower bound (edge costs are at least 0.8× Euclidean length and
// non-highway edges at least 1×; 0.8 is the safe global factor), is symmetric
// for this bidirectional generator, and satisfies the triangle inequality
// through a random waypoint.
func TestNetworkDistanceProperties(t *testing.T) {
	g := mediumGraph(t)
	acc := storage.NewMemoryGraph(g)
	n := g.NumNodes()
	f := func(aRaw, bRaw, cRaw uint16) bool {
		a := roadnet.NodeID(int(aRaw) % n)
		b := roadnet.NodeID(int(bRaw) % n)
		c := roadnet.NodeID(int(cRaw) % n)
		dab, err := DijkstraDistance(acc, a, b)
		if err != nil {
			return false
		}
		dba, err := DijkstraDistance(acc, b, a)
		if err != nil {
			return false
		}
		if math.IsInf(dab, 1) || math.IsInf(dba, 1) {
			// The generator guarantees connectivity, so this should not
			// happen; treat it as a failure.
			return false
		}
		// Lower bound.
		if dab < 0.8*g.Euclid(a, b)-1e-6 {
			return false
		}
		// Symmetry (all generator edges are bidirectional with equal cost).
		if math.Abs(dab-dba) > 1e-6*(1+dab) {
			return false
		}
		// Triangle inequality through c.
		dac, err := DijkstraDistance(acc, a, c)
		if err != nil {
			return false
		}
		dcb, err := DijkstraDistance(acc, c, b)
		if err != nil {
			return false
		}
		return dab <= dac+dcb+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: SSMD distances agree with single-pair Dijkstra for every
// requested destination, for arbitrary destination index triples.
func TestSSMDConsistencyProperty(t *testing.T) {
	g := mediumGraph(t)
	acc := storage.NewMemoryGraph(g)
	n := g.NumNodes()
	f := func(sRaw, d1Raw, d2Raw, d3Raw uint16) bool {
		s := roadnet.NodeID(int(sRaw) % n)
		dests := []roadnet.NodeID{
			roadnet.NodeID(int(d1Raw) % n),
			roadnet.NodeID(int(d2Raw) % n),
			roadnet.NodeID(int(d3Raw) % n),
		}
		got, _, err := SSMDDistances(acc, s, dests)
		if err != nil {
			return false
		}
		for i, d := range dests {
			want, err := DijkstraDistance(acc, s, d)
			if err != nil {
				return false
			}
			if math.IsInf(want, 1) != math.IsInf(got[i], 1) {
				return false
			}
			if !math.IsInf(want, 1) && math.Abs(want-got[i]) > 1e-6*(1+want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
