// Package search implements the shortest-path machinery the OPAQUE server
// needs: classic point-to-point searches (Dijkstra, A*, bidirectional
// Dijkstra), the single-source multi-destination (SSMD) search the paper
// builds its cost argument on (Section III-B), and the multi-source
// multi-destination (MSMD) obfuscated path query processor (Section IV) that
// evaluates Q(S, T) by running one SSMD spanning tree per source.
//
// Every algorithm runs against a storage.Accessor, so the same code paths are
// measured both in memory and against the paged disk simulation, and every
// search reports Stats (settled nodes, relaxed arcs, page I/O via the
// accessor's buffer pool) that the experiments consume.
//
// # The query hot path
//
// All searches execute on an epoch-stamped Workspace: distance labels,
// parent pointers, settled flags and the priority queue live in arrays whose
// entries are valid only for the current epoch, so preparing a workspace for
// the next query is a counter bump instead of an O(n) Inf-fill, and per-query
// cost is proportional to the nodes the search actually touches. Workspaces
// are checked out of a sync.Pool-backed WorkspacePool per query (the
// package-level functions do this transparently); the inner relax loop
// streams arcs through storage.Accessor.ForEachArc over the road network's
// CSR arc array and allocates nothing in steady state. The pre-workspace
// fresh-slice implementations are preserved in reference.go as the
// executable specification the equivalence property tests and the E13
// experiment compare against.
//
// Preprocessed point-to-point engines plug into the Q(S, T) processor
// through the PointEngine interface (StrategyPointEngine); the
// contraction-hierarchy overlay of internal/ch is the first such engine,
// and it composes its bidirectional search out of this package's exported
// Workspace primitives (Heap, DistOf, Label, ParentOf).
package search

import (
	"fmt"
	"math"

	"opaque/internal/roadnet"
)

// Path is a route through the network: the ordered node sequence from source
// to destination and its total cost. A Path with a single node and zero cost
// is the degenerate s == t case.
type Path struct {
	Nodes []roadnet.NodeID
	Cost  float64
}

// Source returns the first node of the path, or InvalidNode when empty.
func (p Path) Source() roadnet.NodeID {
	if len(p.Nodes) == 0 {
		return roadnet.InvalidNode
	}
	return p.Nodes[0]
}

// Dest returns the last node of the path, or InvalidNode when empty.
func (p Path) Dest() roadnet.NodeID {
	if len(p.Nodes) == 0 {
		return roadnet.InvalidNode
	}
	return p.Nodes[len(p.Nodes)-1]
}

// Len returns the number of edges on the path.
func (p Path) Len() int {
	if len(p.Nodes) == 0 {
		return 0
	}
	return len(p.Nodes) - 1
}

// Empty reports whether the path has no nodes (no route found).
func (p Path) Empty() bool { return len(p.Nodes) == 0 }

// String renders a short human-readable form.
func (p Path) String() string {
	if p.Empty() {
		return "Path{unreachable}"
	}
	return fmt.Sprintf("Path{%d->%d, %d edges, cost %.1f}", p.Source(), p.Dest(), p.Len(), p.Cost)
}

// Validate checks that the path is a real walk in g (every consecutive pair is
// connected by an arc) and that Cost equals the sum of the cheapest arc costs
// along it within tolerance. It returns nil for the empty path.
func (p Path) Validate(g *roadnet.Graph) error {
	if p.Empty() {
		return nil
	}
	total := 0.0
	for i := 0; i+1 < len(p.Nodes); i++ {
		cost, ok := g.ArcCost(p.Nodes[i], p.Nodes[i+1])
		if !ok {
			return fmt.Errorf("search: path step %d: no arc from %d to %d", i, p.Nodes[i], p.Nodes[i+1])
		}
		total += cost
	}
	if math.Abs(total-p.Cost) > 1e-6*(1+math.Abs(total)) {
		return fmt.Errorf("search: path cost %v does not match sum of arc costs %v", p.Cost, total)
	}
	return nil
}

// reconstruct walks parent pointers backward from dest and returns the path.
// parent[source] must be InvalidNode.
func reconstruct(parent []roadnet.NodeID, dist []float64, source, dest roadnet.NodeID) Path {
	if math.IsInf(dist[dest], 1) {
		return Path{}
	}
	var rev []roadnet.NodeID
	for at := dest; at != roadnet.InvalidNode; at = parent[at] {
		rev = append(rev, at)
		if at == source {
			break
		}
	}
	// Reverse in place.
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	if len(rev) == 0 || rev[0] != source {
		return Path{}
	}
	return Path{Nodes: rev, Cost: dist[dest]}
}

// Stats describes the work one search performed. PageAccesses/PageFaults are
// filled in by the caller from the accessor's buffer pool when the search ran
// against paged storage; the algorithms themselves only count algorithmic
// work.
type Stats struct {
	// SettledNodes is the number of nodes whose final shortest distance was
	// fixed (popped from the priority queue).
	SettledNodes int
	// RelaxedArcs is the number of arcs examined.
	RelaxedArcs int
	// QueueOps is the number of priority-queue pushes and decrease-keys.
	QueueOps int
	// MaxFrontier is the peak size of the priority queue.
	MaxFrontier int
}

// Add accumulates other into s and returns the sum.
func (s Stats) Add(other Stats) Stats {
	return Stats{
		SettledNodes: s.SettledNodes + other.SettledNodes,
		RelaxedArcs:  s.RelaxedArcs + other.RelaxedArcs,
		QueueOps:     s.QueueOps + other.QueueOps,
		MaxFrontier:  maxInt(s.MaxFrontier, other.MaxFrontier),
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
