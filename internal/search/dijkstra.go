package search

import (
	"fmt"

	"opaque/internal/roadnet"
	"opaque/internal/storage"
)

// Dijkstra computes the shortest path from source to dest on acc using
// Dijkstra's algorithm with early termination when dest is settled. It
// returns an empty path when dest is unreachable.
//
// This is a thin wrapper that checks an epoch-stamped Workspace out of the
// package's shared pool for the duration of the query; callers that run many
// searches on one goroutine can hold a Workspace (or a WorkspacePool) and
// call its methods directly to skip even the pool round trip.
func Dijkstra(acc storage.Accessor, source, dest roadnet.NodeID) (Path, Stats, error) {
	w := AcquireWorkspace(acc.NumNodes())
	defer w.Release()
	return w.Dijkstra(acc, source, dest)
}

// DijkstraDistance returns only the shortest-path distance from source to
// dest, or +Inf when unreachable. Unlike Dijkstra it stops the moment dest
// is settled and never reconstructs the path it would otherwise throw away,
// so it allocates nothing in steady state.
func DijkstraDistance(acc storage.Accessor, source, dest roadnet.NodeID) (float64, error) {
	w := AcquireWorkspace(acc.NumNodes())
	defer w.Release()
	d, _, err := w.DijkstraDistance(acc, source, dest)
	return d, err
}

// SingleSourceTree computes shortest-path distances from source to every
// reachable node (a full Dijkstra run with no early termination). It returns
// the distance and parent arrays; unreachable nodes have distance +Inf. It is
// used by experiments that need exact network distances as ground truth.
func SingleSourceTree(acc storage.Accessor, source roadnet.NodeID) ([]float64, []roadnet.NodeID, Stats, error) {
	w := AcquireWorkspace(acc.NumNodes())
	defer w.Release()
	return w.SingleSourceTree(acc, source)
}

func checkEndpoints(acc storage.Accessor, source, dest roadnet.NodeID) error {
	if !validNode(acc, source) {
		return errInvalidSource(source)
	}
	if !validNode(acc, dest) {
		return errInvalidDest(dest)
	}
	return nil
}

func validNode(acc storage.Accessor, id roadnet.NodeID) bool {
	return id >= 0 && int(id) < acc.NumNodes()
}

func errInvalidSource(id roadnet.NodeID) error {
	return fmt.Errorf("search: invalid source node %d", id)
}

func errInvalidDest(id roadnet.NodeID) error {
	return fmt.Errorf("search: invalid destination node %d", id)
}

func errNoDestinations() error {
	return fmt.Errorf("search: SSMD needs at least one destination: %w", ErrEmptyQuery)
}
