package search

import (
	"fmt"
	"math"

	"opaque/internal/pqueue"
	"opaque/internal/roadnet"
	"opaque/internal/storage"
)

// Dijkstra computes the shortest path from source to dest on acc using
// Dijkstra's algorithm with early termination when dest is settled. It
// returns an empty path when dest is unreachable.
func Dijkstra(acc storage.Accessor, source, dest roadnet.NodeID) (Path, Stats, error) {
	if err := checkEndpoints(acc, source, dest); err != nil {
		return Path{}, Stats{}, err
	}
	n := acc.NumNodes()
	dist := newDistSlice(n)
	parent := newParentSlice(n)
	var stats Stats

	pq := pqueue.NewWithCapacity(64)
	dist[source] = 0
	pq.Push(int32(source), 0)
	stats.QueueOps++

	for !pq.Empty() {
		if pq.Len() > stats.MaxFrontier {
			stats.MaxFrontier = pq.Len()
		}
		item := pq.Pop()
		u := roadnet.NodeID(item.Value)
		if item.Priority > dist[u] {
			continue // stale entry
		}
		stats.SettledNodes++
		if u == dest {
			return reconstruct(parent, dist, source, dest), stats, nil
		}
		for _, a := range acc.Arcs(u) {
			stats.RelaxedArcs++
			nd := dist[u] + a.Cost
			if nd < dist[a.To] {
				dist[a.To] = nd
				parent[a.To] = u
				pq.Push(int32(a.To), nd)
				stats.QueueOps++
			}
		}
	}
	return Path{}, stats, nil
}

// DijkstraDistance returns only the shortest-path distance from source to
// dest, or +Inf when unreachable.
func DijkstraDistance(acc storage.Accessor, source, dest roadnet.NodeID) (float64, error) {
	p, _, err := Dijkstra(acc, source, dest)
	if err != nil {
		return 0, err
	}
	if p.Empty() && source != dest {
		return math.Inf(1), nil
	}
	return p.Cost, nil
}

// SingleSourceTree computes shortest-path distances from source to every
// reachable node (a full Dijkstra run with no early termination). It returns
// the distance and parent arrays; unreachable nodes have distance +Inf. It is
// used by experiments that need exact network distances as ground truth.
func SingleSourceTree(acc storage.Accessor, source roadnet.NodeID) ([]float64, []roadnet.NodeID, Stats, error) {
	if !validNode(acc, source) {
		return nil, nil, Stats{}, fmt.Errorf("search: invalid source node %d", source)
	}
	n := acc.NumNodes()
	dist := newDistSlice(n)
	parent := newParentSlice(n)
	var stats Stats

	pq := pqueue.NewWithCapacity(64)
	dist[source] = 0
	pq.Push(int32(source), 0)
	stats.QueueOps++
	for !pq.Empty() {
		if pq.Len() > stats.MaxFrontier {
			stats.MaxFrontier = pq.Len()
		}
		item := pq.Pop()
		u := roadnet.NodeID(item.Value)
		if item.Priority > dist[u] {
			continue
		}
		stats.SettledNodes++
		for _, a := range acc.Arcs(u) {
			stats.RelaxedArcs++
			nd := dist[u] + a.Cost
			if nd < dist[a.To] {
				dist[a.To] = nd
				parent[a.To] = u
				pq.Push(int32(a.To), nd)
				stats.QueueOps++
			}
		}
	}
	return dist, parent, stats, nil
}

func checkEndpoints(acc storage.Accessor, source, dest roadnet.NodeID) error {
	if !validNode(acc, source) {
		return fmt.Errorf("search: invalid source node %d", source)
	}
	if !validNode(acc, dest) {
		return fmt.Errorf("search: invalid destination node %d", dest)
	}
	return nil
}

func validNode(acc storage.Accessor, id roadnet.NodeID) bool {
	return id >= 0 && int(id) < acc.NumNodes()
}

func newDistSlice(n int) []float64 {
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	return dist
}

func newParentSlice(n int) []roadnet.NodeID {
	parent := make([]roadnet.NodeID, n)
	for i := range parent {
		parent[i] = roadnet.InvalidNode
	}
	return parent
}
