package search

import (
	"opaque/internal/pqueue"
	"opaque/internal/roadnet"
	"opaque/internal/storage"
)

// AStar computes the shortest path from source to dest using A* with the
// Euclidean distance heuristic. The heuristic is admissible as long as every
// arc cost is at least the Euclidean distance between its endpoints, which
// holds for the generators in internal/gen (costs are Euclidean length times
// a factor >= 0.8 for highways; highway shortcuts keep the heuristic
// admissible because the straight-line distance never exceeds any path
// length when the per-unit cost factor is >= 1 — for highway factors < 1 the
// caller should scale the heuristic, which HeuristicScale supports).
func AStar(acc storage.Accessor, source, dest roadnet.NodeID) (Path, Stats, error) {
	return AStarScaled(acc, source, dest, 0.8)
}

// AStarScaled is A* with the Euclidean heuristic multiplied by scale. Use
// scale <= (minimum cost per unit Euclidean length) to keep the heuristic
// admissible; 0.8 is safe for all generators in this repository. scale = 0
// degenerates to Dijkstra.
func AStarScaled(acc storage.Accessor, source, dest roadnet.NodeID, scale float64) (Path, Stats, error) {
	if err := checkEndpoints(acc, source, dest); err != nil {
		return Path{}, Stats{}, err
	}
	if scale < 0 {
		scale = 0
	}
	n := acc.NumNodes()
	dist := newDistSlice(n)
	parent := newParentSlice(n)
	settled := make([]bool, n)
	var stats Stats

	h := func(id roadnet.NodeID) float64 { return scale * acc.Euclid(id, dest) }

	pq := pqueue.NewWithCapacity(64)
	dist[source] = 0
	pq.Push(int32(source), h(source))
	stats.QueueOps++

	for !pq.Empty() {
		if pq.Len() > stats.MaxFrontier {
			stats.MaxFrontier = pq.Len()
		}
		item := pq.Pop()
		u := roadnet.NodeID(item.Value)
		if settled[u] {
			continue
		}
		settled[u] = true
		stats.SettledNodes++
		if u == dest {
			return reconstruct(parent, dist, source, dest), stats, nil
		}
		for _, a := range acc.Arcs(u) {
			stats.RelaxedArcs++
			if settled[a.To] {
				continue
			}
			nd := dist[u] + a.Cost
			if nd < dist[a.To] {
				dist[a.To] = nd
				parent[a.To] = u
				pq.Push(int32(a.To), nd+h(a.To))
				stats.QueueOps++
			}
		}
	}
	return Path{}, stats, nil
}
