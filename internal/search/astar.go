package search

import (
	"opaque/internal/roadnet"
	"opaque/internal/storage"
)

// AStar computes the shortest path from source to dest using A* with the
// Euclidean distance heuristic. The heuristic is admissible as long as every
// arc cost is at least the Euclidean distance between its endpoints, which
// holds for the generators in internal/gen (costs are Euclidean length times
// a factor >= 0.8 for highways; highway shortcuts keep the heuristic
// admissible because the straight-line distance never exceeds any path
// length when the per-unit cost factor is >= 1 — for highway factors < 1 the
// caller should scale the heuristic, which HeuristicScale supports).
func AStar(acc storage.Accessor, source, dest roadnet.NodeID) (Path, Stats, error) {
	return AStarScaled(acc, source, dest, 0.8)
}

// AStarScaled is A* with the Euclidean heuristic multiplied by scale. Use
// scale <= (minimum cost per unit Euclidean length) to keep the heuristic
// admissible; 0.8 is safe for all generators in this repository. scale = 0
// degenerates to Dijkstra.
//
// Like every search wrapper it borrows an epoch-stamped Workspace from the
// package pool; the Euclidean heuristic is evaluated through a closure
// prebuilt on the workspace, so the hot loop allocates nothing.
func AStarScaled(acc storage.Accessor, source, dest roadnet.NodeID, scale float64) (Path, Stats, error) {
	w := AcquireWorkspace(acc.NumNodes())
	defer w.Release()
	return w.AStarScaled(acc, source, dest, scale)
}
