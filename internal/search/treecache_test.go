package search

import (
	"reflect"
	"testing"

	"opaque/internal/roadnet"
	"opaque/internal/storage"
)

// overlappingQueries builds a workload of (source, dests) queries whose source
// and destination sets overlap heavily, the access pattern shared-mode
// obfuscation produces.
func overlappingQueries(g *roadnet.Graph) []struct {
	source roadnet.NodeID
	dests  []roadnet.NodeID
} {
	n := g.NumNodes()
	pick := func(i int) roadnet.NodeID { return roadnet.NodeID(i % n) }
	var out []struct {
		source roadnet.NodeID
		dests  []roadnet.NodeID
	}
	// Three sources, each queried several times with growing/rotating
	// destination sets; later queries repeat earlier destinations.
	for round := 0; round < 4; round++ {
		for s := 0; s < 3; s++ {
			dests := []roadnet.NodeID{
				pick(100 + 31*round),
				pick(350 + 17*round),
				pick(500 + 13*s),
			}
			out = append(out, struct {
				source roadnet.NodeID
				dests  []roadnet.NodeID
			}{source: pick(7 * s), dests: dests})
		}
	}
	return out
}

// TestTreeCacheMatchesColdSSMD is the cache-correctness contract: every
// cached (hit, resumed, or cold) evaluation must return exactly the paths a
// cold SSMD run returns.
func TestTreeCacheMatchesColdSSMD(t *testing.T) {
	g := mediumGraph(t)
	acc := storage.NewMemoryGraph(g)
	cache := NewTreeCache(8)

	for i, q := range overlappingQueries(g) {
		got, err := cache.Evaluate(acc, q.source, q.dests)
		if err != nil {
			t.Fatalf("query %d: cache.Evaluate: %v", i, err)
		}
		want, err := SSMD(acc, q.source, q.dests)
		if err != nil {
			t.Fatalf("query %d: cold SSMD: %v", i, err)
		}
		if len(got.Paths) != len(want.Paths) {
			t.Fatalf("query %d: %d paths, want %d", i, len(got.Paths), len(want.Paths))
		}
		for j := range want.Paths {
			if got.Paths[j].Cost != want.Paths[j].Cost {
				t.Errorf("query %d dest %d: cached cost %v, cold cost %v", i, j, got.Paths[j].Cost, want.Paths[j].Cost)
			}
			if !reflect.DeepEqual(got.Paths[j].Nodes, want.Paths[j].Nodes) {
				t.Errorf("query %d dest %d: cached path %v != cold path %v", i, j, got.Paths[j].Nodes, want.Paths[j].Nodes)
			}
		}
	}

	st := cache.Stats()
	if st.Misses != 3 {
		t.Errorf("misses = %d, want 3 (one cold build per distinct source)", st.Misses)
	}
	if st.Hits == 0 {
		t.Error("no cache hits on a workload that repeats its sources")
	}
	if st.HitRatio() <= 0.5 {
		t.Errorf("hit ratio = %v, want > 0.5 on 12 queries over 3 sources", st.HitRatio())
	}
}

// TestTreeCacheRepeatIsFree asserts a full hit performs no incremental search
// work: repeating an identical query settles zero additional nodes.
func TestTreeCacheRepeatIsFree(t *testing.T) {
	g := mediumGraph(t)
	acc := storage.NewMemoryGraph(g)
	cache := NewTreeCache(4)
	dests := []roadnet.NodeID{300, 420, 555}

	first, err := cache.Evaluate(acc, 5, dests)
	if err != nil {
		t.Fatal(err)
	}
	if first.Stats.SettledNodes == 0 {
		t.Fatal("cold evaluation settled no nodes")
	}
	second, err := cache.Evaluate(acc, 5, dests)
	if err != nil {
		t.Fatal(err)
	}
	if second.Stats.SettledNodes != 0 || second.Stats.RelaxedArcs != 0 {
		t.Errorf("repeat evaluation did work: settled=%d relaxed=%d, want 0/0",
			second.Stats.SettledNodes, second.Stats.RelaxedArcs)
	}
	st := cache.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Resumes != 0 {
		t.Errorf("stats = %+v, want exactly 1 hit, 1 miss, 0 resumes", st)
	}
}

// TestTreeCacheInvalidation asserts that bumping the accessor's data
// generation makes the cache drop stale trees and rebuild from the current
// data, still matching cold evaluation.
func TestTreeCacheInvalidation(t *testing.T) {
	g := mediumGraph(t)
	acc := storage.NewMemoryGraph(g)
	cache := NewTreeCache(4)
	dests := []roadnet.NodeID{300, 420}

	if _, err := cache.Evaluate(acc, 9, dests); err != nil {
		t.Fatal(err)
	}
	if got := storage.GenerationOf(acc); got != 0 {
		t.Fatalf("fresh accessor generation = %d, want 0", got)
	}
	acc.BumpGeneration()
	if got := storage.GenerationOf(acc); got != 1 {
		t.Fatalf("bumped accessor generation = %d, want 1", got)
	}

	res, err := cache.Evaluate(acc, 9, dests)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.SettledNodes == 0 {
		t.Error("evaluation after invalidation did no work; stale tree was reused")
	}
	want, err := SSMD(acc, 9, dests)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Paths, want.Paths) {
		t.Error("post-invalidation paths differ from cold SSMD")
	}
	st := cache.Stats()
	if st.Invalidations != 1 {
		t.Errorf("invalidations = %d, want 1", st.Invalidations)
	}
	if st.Hits != 0 || st.Misses != 2 {
		t.Errorf("stats = %+v, want 0 hits and 2 misses across the generation change", st)
	}
	if cache.Len() != 1 {
		t.Errorf("cache holds %d trees, want 1 (the stale one must be gone)", cache.Len())
	}
}

// TestTreeCacheEviction asserts the LRU bound holds and evictions are counted.
func TestTreeCacheEviction(t *testing.T) {
	g := mediumGraph(t)
	acc := storage.NewMemoryGraph(g)
	cache := NewTreeCache(2)
	dests := []roadnet.NodeID{100}

	for s := roadnet.NodeID(0); s < 5; s++ {
		if _, err := cache.Evaluate(acc, s, dests); err != nil {
			t.Fatal(err)
		}
	}
	if cache.Len() > 2 {
		t.Errorf("cache holds %d trees, capacity is 2", cache.Len())
	}
	st := cache.Stats()
	if st.Evictions != 3 {
		t.Errorf("evictions = %d, want 3 (5 sources through capacity 2)", st.Evictions)
	}

	cache.Purge()
	if cache.Len() != 0 {
		t.Errorf("cache holds %d trees after Purge, want 0", cache.Len())
	}
}

// TestTreeResumeMatchesCold grows one tree incrementally over several
// destination sets and checks every answer against an independent cold SSMD
// run — the resumability contract of Tree.
func TestTreeResumeMatchesCold(t *testing.T) {
	g := mediumGraph(t)
	acc := storage.NewMemoryGraph(g)
	tree, err := NewTree(acc, 3)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Source() != 3 {
		t.Fatalf("Source() = %d, want 3", tree.Source())
	}

	sets := [][]roadnet.NodeID{
		{50},                // near: small first growth
		{50, 200},           // repeat + extend
		{650, 3},            // far + the source itself
		{50, 200, 650, 600}, // mostly settled already
	}
	for i, dests := range sets {
		got, err := tree.Paths(dests)
		if err != nil {
			t.Fatalf("set %d: %v", i, err)
		}
		want, err := SSMD(acc, 3, dests)
		if err != nil {
			t.Fatalf("set %d: cold SSMD: %v", i, err)
		}
		if !reflect.DeepEqual(got.Paths, want.Paths) {
			t.Errorf("set %d: resumed paths differ from cold SSMD", i)
		}
	}
	if grown := tree.GrownStats(); grown.SettledNodes == 0 {
		t.Error("GrownStats reports no settled nodes after growing the tree")
	}
}
