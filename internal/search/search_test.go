package search

import (
	"math"
	"testing"

	"opaque/internal/gen"
	"opaque/internal/roadnet"
	"opaque/internal/storage"
)

// lineGraph builds 0-1-2-3-4 with unit costs plus a 0-4 shortcut of cost 10.
func lineGraph(t testing.TB) *roadnet.Graph {
	t.Helper()
	g := roadnet.NewGraph(5, 10)
	for i := 0; i < 5; i++ {
		g.AddNode(float64(i), 0)
	}
	for i := 0; i < 4; i++ {
		g.MustAddBidirectionalEdge(roadnet.NodeID(i), roadnet.NodeID(i+1), 1)
	}
	g.MustAddBidirectionalEdge(0, 4, 10)
	g.Freeze()
	return g
}

// mediumGraph is a 700-node grid network shared by the heavier tests.
func mediumGraph(t testing.TB) *roadnet.Graph {
	t.Helper()
	cfg := gen.DefaultNetworkConfig()
	cfg.Nodes = 700
	cfg.Seed = 21
	return gen.MustGenerate(cfg)
}

// bellmanFord is the reference shortest-distance implementation tests compare
// against: simple, obviously correct, O(VE).
func bellmanFord(g *roadnet.Graph, source roadnet.NodeID) []float64 {
	n := g.NumNodes()
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[source] = 0
	for iter := 0; iter < n; iter++ {
		changed := false
		for u := 0; u < n; u++ {
			if math.IsInf(dist[u], 1) {
				continue
			}
			for _, a := range g.Arcs(roadnet.NodeID(u)) {
				if nd := dist[u] + a.Cost; nd < dist[a.To] {
					dist[a.To] = nd
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	return dist
}

func TestDijkstraSimple(t *testing.T) {
	g := lineGraph(t)
	acc := storage.NewMemoryGraph(g)
	p, stats, err := Dijkstra(acc, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if p.Cost != 4 {
		t.Errorf("cost = %v, want 4 (via the chain, not the cost-10 shortcut)", p.Cost)
	}
	if p.Len() != 4 {
		t.Errorf("edges = %d, want 4", p.Len())
	}
	if err := p.Validate(g); err != nil {
		t.Errorf("Validate: %v", err)
	}
	if stats.SettledNodes == 0 || stats.RelaxedArcs == 0 {
		t.Error("stats not collected")
	}
}

func TestDijkstraSourceEqualsDest(t *testing.T) {
	g := lineGraph(t)
	acc := storage.NewMemoryGraph(g)
	p, _, err := Dijkstra(acc, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p.Cost != 0 || len(p.Nodes) != 1 || p.Nodes[0] != 2 {
		t.Errorf("self path = %+v, want single node, zero cost", p)
	}
}

func TestDijkstraUnreachable(t *testing.T) {
	g := roadnet.NewGraph(3, 2)
	g.AddNode(0, 0)
	g.AddNode(1, 0)
	g.AddNode(5, 5)
	g.MustAddBidirectionalEdge(0, 1, 1)
	g.Freeze()
	acc := storage.NewMemoryGraph(g)
	p, _, err := Dijkstra(acc, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Empty() {
		t.Errorf("expected empty path for unreachable destination, got %+v", p)
	}
	d, err := DijkstraDistance(acc, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(d, 1) {
		t.Errorf("distance = %v, want +Inf", d)
	}
}

func TestDijkstraInvalidEndpoints(t *testing.T) {
	acc := storage.NewMemoryGraph(lineGraph(t))
	if _, _, err := Dijkstra(acc, -1, 2); err == nil {
		t.Error("negative source accepted")
	}
	if _, _, err := Dijkstra(acc, 0, 99); err == nil {
		t.Error("out-of-range destination accepted")
	}
}

func TestDijkstraMatchesBellmanFord(t *testing.T) {
	g := mediumGraph(t)
	acc := storage.NewMemoryGraph(g)
	sources := []roadnet.NodeID{0, roadnet.NodeID(g.NumNodes() / 2), roadnet.NodeID(g.NumNodes() - 1)}
	for _, s := range sources {
		ref := bellmanFord(g, s)
		dist, _, _, err := SingleSourceTree(acc, s)
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < g.NumNodes(); v += 13 {
			if math.Abs(ref[v]-dist[v]) > 1e-6 && !(math.IsInf(ref[v], 1) && math.IsInf(dist[v], 1)) {
				t.Fatalf("source %d dest %d: Dijkstra %v, Bellman-Ford %v", s, v, dist[v], ref[v])
			}
		}
	}
}

func TestDijkstraPathCostsConsistent(t *testing.T) {
	g := mediumGraph(t)
	acc := storage.NewMemoryGraph(g)
	pairs := gen.MustGenerateWorkload(g, gen.WorkloadConfig{Kind: gen.Uniform, Queries: 25, Seed: 3})
	for _, pr := range pairs {
		p, _, err := Dijkstra(acc, pr.Source, pr.Dest)
		if err != nil {
			t.Fatal(err)
		}
		if p.Empty() {
			continue
		}
		if err := p.Validate(g); err != nil {
			t.Errorf("path %v invalid: %v", p, err)
		}
		if p.Source() != pr.Source || p.Dest() != pr.Dest {
			t.Errorf("path endpoints %d->%d, want %d->%d", p.Source(), p.Dest(), pr.Source, pr.Dest)
		}
	}
}

func TestAStarMatchesDijkstra(t *testing.T) {
	g := mediumGraph(t)
	acc := storage.NewMemoryGraph(g)
	pairs := gen.MustGenerateWorkload(g, gen.WorkloadConfig{Kind: gen.Uniform, Queries: 30, Seed: 5})
	var astarSettled, dijkstraSettled int
	for _, pr := range pairs {
		pd, sd, err := Dijkstra(acc, pr.Source, pr.Dest)
		if err != nil {
			t.Fatal(err)
		}
		pa, sa, err := AStar(acc, pr.Source, pr.Dest)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(pd.Cost-pa.Cost) > 1e-6 {
			t.Fatalf("A* cost %v != Dijkstra cost %v for %d->%d", pa.Cost, pd.Cost, pr.Source, pr.Dest)
		}
		if err := pa.Validate(g); err != nil {
			t.Errorf("A* path invalid: %v", err)
		}
		astarSettled += sa.SettledNodes
		dijkstraSettled += sd.SettledNodes
	}
	if astarSettled >= dijkstraSettled {
		t.Errorf("A* settled %d nodes, expected fewer than Dijkstra's %d", astarSettled, dijkstraSettled)
	}
}

func TestAStarScaledZeroIsDijkstra(t *testing.T) {
	g := lineGraph(t)
	acc := storage.NewMemoryGraph(g)
	p, _, err := AStarScaled(acc, 0, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.Cost != 4 {
		t.Errorf("cost = %v, want 4", p.Cost)
	}
	// Negative scale is clamped to zero rather than producing an
	// inadmissible negative heuristic.
	p2, _, err := AStarScaled(acc, 0, 4, -3)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Cost != 4 {
		t.Errorf("cost with negative scale = %v, want 4", p2.Cost)
	}
}

func TestBidirectionalMatchesDijkstra(t *testing.T) {
	g := mediumGraph(t)
	acc := storage.NewMemoryGraph(g)
	rev := storage.NewMemoryGraph(g.Reverse())
	pairs := gen.MustGenerateWorkload(g, gen.WorkloadConfig{Kind: gen.Uniform, Queries: 30, Seed: 6})
	for _, pr := range pairs {
		pd, _, err := Dijkstra(acc, pr.Source, pr.Dest)
		if err != nil {
			t.Fatal(err)
		}
		pb, _, err := BidirectionalDijkstra(acc, rev, pr.Source, pr.Dest)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(pd.Cost-pb.Cost) > 1e-6 {
			t.Fatalf("bidirectional cost %v != Dijkstra cost %v for %d->%d", pb.Cost, pd.Cost, pr.Source, pr.Dest)
		}
		if err := pb.Validate(g); err != nil {
			t.Errorf("bidirectional path invalid for %d->%d: %v", pr.Source, pr.Dest, err)
		}
	}
}

func TestBidirectionalTrivialAndUnreachable(t *testing.T) {
	g := roadnet.NewGraph(3, 2)
	g.AddNode(0, 0)
	g.AddNode(1, 0)
	g.AddNode(9, 9)
	g.MustAddBidirectionalEdge(0, 1, 2)
	g.Freeze()
	acc := storage.NewMemoryGraph(g)
	rev := storage.NewMemoryGraph(g.Reverse())
	p, _, err := BidirectionalDijkstra(acc, rev, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Cost != 0 || p.Len() != 0 {
		t.Errorf("self path = %+v", p)
	}
	p, _, err = BidirectionalDijkstra(acc, rev, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Empty() {
		t.Errorf("unreachable pair returned %+v", p)
	}
}

func TestPathValidateDetectsCorruption(t *testing.T) {
	g := lineGraph(t)
	good := Path{Nodes: []roadnet.NodeID{0, 1, 2}, Cost: 2}
	if err := good.Validate(g); err != nil {
		t.Errorf("valid path rejected: %v", err)
	}
	disconnected := Path{Nodes: []roadnet.NodeID{0, 2}, Cost: 2}
	if err := disconnected.Validate(g); err == nil {
		t.Error("disconnected path accepted")
	}
	wrongCost := Path{Nodes: []roadnet.NodeID{0, 1, 2}, Cost: 5}
	if err := wrongCost.Validate(g); err == nil {
		t.Error("path with wrong cost accepted")
	}
	empty := Path{}
	if err := empty.Validate(g); err != nil {
		t.Errorf("empty path should validate: %v", err)
	}
	if empty.Source() != roadnet.InvalidNode || empty.Dest() != roadnet.InvalidNode {
		t.Error("empty path endpoints should be InvalidNode")
	}
	if empty.String() == "" || good.String() == "" {
		t.Error("String() should not be empty")
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{SettledNodes: 1, RelaxedArcs: 2, QueueOps: 3, MaxFrontier: 4}
	b := Stats{SettledNodes: 10, RelaxedArcs: 20, QueueOps: 30, MaxFrontier: 2}
	sum := a.Add(b)
	if sum.SettledNodes != 11 || sum.RelaxedArcs != 22 || sum.QueueOps != 33 || sum.MaxFrontier != 4 {
		t.Errorf("Add = %+v", sum)
	}
}
