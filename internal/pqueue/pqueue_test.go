package pqueue

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmptyHeap(t *testing.T) {
	h := New()
	if !h.Empty() || h.Len() != 0 {
		t.Error("new heap should be empty")
	}
	if h.Contains(3) {
		t.Error("Contains on empty heap returned true")
	}
	if _, ok := h.Priority(3); ok {
		t.Error("Priority on empty heap returned ok")
	}
}

func TestPushPopOrder(t *testing.T) {
	h := NewWithCapacity(8)
	input := map[int32]float64{1: 5, 2: 1, 3: 3, 4: 4, 5: 2}
	for v, p := range input {
		if !h.Push(v, p) {
			t.Errorf("Push(%d,%v) returned false", v, p)
		}
	}
	if h.Len() != len(input) {
		t.Fatalf("Len = %d, want %d", h.Len(), len(input))
	}
	var prev float64 = math.Inf(-1)
	for !h.Empty() {
		item := h.Pop()
		if item.Priority < prev {
			t.Errorf("Pop out of order: %v after %v", item.Priority, prev)
		}
		if input[item.Value] != item.Priority {
			t.Errorf("Pop returned value %d with priority %v, want %v", item.Value, item.Priority, input[item.Value])
		}
		prev = item.Priority
	}
}

func TestPushExistingActsAsDecreaseKey(t *testing.T) {
	h := New()
	h.Push(7, 10)
	if h.Push(7, 20) {
		t.Error("Push with a higher priority on existing value should be a no-op")
	}
	if p, _ := h.Priority(7); p != 10 {
		t.Errorf("priority changed to %v after no-op push, want 10", p)
	}
	if !h.Push(7, 4) {
		t.Error("Push with a lower priority should succeed as decrease-key")
	}
	if p, _ := h.Priority(7); p != 4 {
		t.Errorf("priority = %v after decrease, want 4", p)
	}
	if h.Len() != 1 {
		t.Errorf("Len = %d after duplicate pushes, want 1", h.Len())
	}
}

func TestDecreaseKey(t *testing.T) {
	h := New()
	h.Push(1, 10)
	h.Push(2, 20)
	if h.DecreaseKey(2, 25) {
		t.Error("DecreaseKey to a larger priority should fail")
	}
	if h.DecreaseKey(99, 1) {
		t.Error("DecreaseKey on a missing value should fail")
	}
	if !h.DecreaseKey(2, 5) {
		t.Error("DecreaseKey to a smaller priority should succeed")
	}
	if top := h.Peek(); top.Value != 2 || top.Priority != 5 {
		t.Errorf("Peek = %+v, want value 2 priority 5", top)
	}
}

func TestRemove(t *testing.T) {
	h := New()
	for i := int32(0); i < 10; i++ {
		h.Push(i, float64(10-i))
	}
	if !h.Remove(5) {
		t.Error("Remove(5) failed")
	}
	if h.Remove(5) {
		t.Error("second Remove(5) should fail")
	}
	if h.Contains(5) {
		t.Error("heap still contains removed value")
	}
	// Remaining pops must still be ordered.
	prev := math.Inf(-1)
	for !h.Empty() {
		it := h.Pop()
		if it.Value == 5 {
			t.Error("popped a removed value")
		}
		if it.Priority < prev {
			t.Errorf("order violated after Remove: %v < %v", it.Priority, prev)
		}
		prev = it.Priority
	}
}

func TestReset(t *testing.T) {
	h := New()
	h.Push(1, 1)
	h.Push(2, 2)
	h.Reset()
	if !h.Empty() {
		t.Error("heap not empty after Reset")
	}
	if h.Contains(1) {
		t.Error("heap still indexes values after Reset")
	}
	h.Push(3, 3)
	if h.Pop().Value != 3 {
		t.Error("heap unusable after Reset")
	}
}

func TestPopPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Pop on empty heap did not panic")
		}
	}()
	New().Pop()
}

func TestPeekPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Peek on empty heap did not panic")
		}
	}()
	New().Peek()
}

// Property: pushing arbitrary (value, priority) pairs (last write wins only
// when lower) and popping everything yields priorities in non-decreasing
// order, and each value appears at most once.
func TestHeapSortProperty(t *testing.T) {
	f := func(priorities []float64) bool {
		h := NewWithCapacity(len(priorities))
		want := make([]float64, 0, len(priorities))
		for i, p := range priorities {
			if math.IsNaN(p) {
				continue
			}
			h.Push(int32(i), p)
			want = append(want, p)
		}
		sort.Float64s(want)
		got := make([]float64, 0, len(want))
		seen := make(map[int32]bool)
		for !h.Empty() {
			it := h.Pop()
			if seen[it.Value] {
				return false
			}
			seen[it.Value] = true
			got = append(got, it.Priority)
		}
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: after arbitrary interleavings of Push and DecreaseKey, the heap's
// reported priority for every value equals the minimum priority ever pushed
// for it.
func TestDecreaseKeyProperty(t *testing.T) {
	f := func(ops []struct {
		Value uint8
		Prio  float64
	}) bool {
		h := New()
		min := make(map[int32]float64)
		for _, op := range ops {
			if math.IsNaN(op.Prio) {
				continue
			}
			v := int32(op.Value % 16)
			h.Push(v, op.Prio)
			if cur, ok := min[v]; !ok || op.Prio < cur {
				min[v] = op.Prio
			}
		}
		for v, want := range min {
			got, ok := h.Priority(v)
			if !ok || got != want {
				return false
			}
		}
		return h.Len() == len(min)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
