package pqueue

// DenseHeap is a binary min-heap over dense int32 values (node IDs in
// 0..n-1) with float64 priorities. It is the allocation-free counterpart of
// IndexedHeap: the position index is a flat array instead of a map, and the
// index is invalidated by bumping an epoch counter, so Reset costs O(1)
// regardless of how many entries the previous search pushed. This is the
// queue the epoch-stamped search workspaces (internal/search.Workspace) keep
// across queries: in steady state Push/Pop/Reset touch only preallocated
// storage.
//
// Like IndexedHeap, each value may appear at most once; Push on a queued
// value behaves like DecreaseKey when the new priority is lower and is a
// no-op otherwise. The sift operations are intentionally identical to
// IndexedHeap's so that the two heaps pop equal-priority items in the same
// order — the workspace equivalence tests rely on the search result (paths
// and work statistics) being byte-identical between the two implementations.
//
// The zero value is not usable; construct with NewDenseHeap.
type DenseHeap struct {
	items []Item
	// pos[v] is the index of value v in items, valid iff stamp[v] == epoch.
	pos   []int32
	stamp []uint32
	epoch uint32
}

// NewDenseHeap returns an empty heap addressing values 0..n-1. The heap grows
// automatically if larger values are pushed.
func NewDenseHeap(n int) *DenseHeap {
	h := &DenseHeap{}
	h.Reset(n)
	return h
}

// Reset empties the heap and ensures values 0..n-1 are addressable. It runs
// in O(1) amortised: the position index is invalidated by bumping the epoch,
// not by clearing it.
func (h *DenseHeap) Reset(n int) {
	h.items = h.items[:0]
	h.ensure(n)
	if h.epoch == ^uint32(0) {
		// Epoch wrap: every stamp could collide with a future epoch, so pay
		// the one O(n) clear per 2^32 resets.
		for i := range h.stamp {
			h.stamp[i] = 0
		}
		h.epoch = 0
	}
	h.epoch++
}

// ensure grows the position index to cover values 0..n-1. New entries carry
// stamp 0, which never equals the current epoch (epochs start at 1).
func (h *DenseHeap) ensure(n int) {
	if n <= len(h.pos) {
		return
	}
	h.pos = append(h.pos, make([]int32, n-len(h.pos))...)
	h.stamp = append(h.stamp, make([]uint32, n-len(h.stamp))...)
}

// Len returns the number of queued items.
func (h *DenseHeap) Len() int { return len(h.items) }

// Empty reports whether the heap has no items.
func (h *DenseHeap) Empty() bool { return len(h.items) == 0 }

// index returns the items position of value and whether it is queued.
func (h *DenseHeap) index(value int32) (int, bool) {
	if int(value) >= len(h.stamp) || h.stamp[value] != h.epoch {
		return 0, false
	}
	return int(h.pos[value]), true
}

// Contains reports whether value is currently queued.
func (h *DenseHeap) Contains(value int32) bool {
	_, ok := h.index(value)
	return ok
}

// Priority returns the current priority of value and whether it is queued.
func (h *DenseHeap) Priority(value int32) (float64, bool) {
	i, ok := h.index(value)
	if !ok {
		return 0, false
	}
	return h.items[i].Priority, true
}

// Push inserts value with the given priority. If value is already queued the
// call degrades to DecreaseKey: the priority is lowered if the new one is
// smaller, otherwise nothing happens. It returns true if the heap changed.
func (h *DenseHeap) Push(value int32, priority float64) bool {
	if i, ok := h.index(value); ok {
		if priority < h.items[i].Priority {
			h.items[i].Priority = priority
			h.up(i)
			return true
		}
		return false
	}
	h.ensure(int(value) + 1)
	h.items = append(h.items, Item{Value: value, Priority: priority})
	i := len(h.items) - 1
	h.pos[value] = int32(i)
	h.stamp[value] = h.epoch
	h.up(i)
	return true
}

// Pop removes and returns the item with the smallest priority. It panics on
// an empty heap; callers check Empty or Len first.
func (h *DenseHeap) Pop() Item {
	if len(h.items) == 0 {
		panic("pqueue: Pop on empty DenseHeap")
	}
	top := h.items[0]
	last := len(h.items) - 1
	h.swap(0, last)
	h.items = h.items[:last]
	h.stamp[top.Value] = h.epoch - 1 // anything != epoch marks "not queued"
	if last > 0 {
		h.down(0)
	}
	return top
}

// Peek returns the minimum item without removing it. It panics on an empty
// heap.
func (h *DenseHeap) Peek() Item {
	if len(h.items) == 0 {
		panic("pqueue: Peek on empty DenseHeap")
	}
	return h.items[0]
}

func (h *DenseHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if h.items[i].Priority >= h.items[parent].Priority {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *DenseHeap) down(i int) {
	n := len(h.items)
	for {
		left := 2*i + 1
		right := left + 1
		smallest := i
		if left < n && h.items[left].Priority < h.items[smallest].Priority {
			smallest = left
		}
		if right < n && h.items[right].Priority < h.items[smallest].Priority {
			smallest = right
		}
		if smallest == i {
			return
		}
		h.swap(i, smallest)
		i = smallest
	}
}

func (h *DenseHeap) swap(i, j int) {
	h.items[i], h.items[j] = h.items[j], h.items[i]
	h.pos[h.items[i].Value] = int32(i)
	h.pos[h.items[j].Value] = int32(j)
}
