// Package pqueue provides binary min-heaps keyed by float64 priorities, both
// supporting DecreaseKey, which Dijkstra-style searches use to update
// tentative distances in place:
//
//   - IndexedHeap tracks positions in a map, works for arbitrarily sparse
//     value spaces, and backs the fresh-slice reference searches;
//   - DenseHeap tracks positions in flat epoch-stamped arrays, resets in
//     O(1) and allocates nothing in steady state — it is the queue inside
//     the epoch-stamped search workspaces every serving-path algorithm in
//     the repository runs on: the point-to-point baselines, the
//     single-source multi-destination search the OPAQUE paper's cost
//     argument rests on (Section III-B), and the resumable spanning trees
//     of the server's SSMD tree cache, whose suspended frontier is simply a
//     retained heap.
package pqueue

// Item is a queue entry: an integer payload (typically a node ID) with a
// float64 priority.
type Item struct {
	Value    int32
	Priority float64
}

// IndexedHeap is a binary min-heap over int32 values with float64 priorities.
// Each value may appear at most once; Push on an existing value behaves like
// DecreaseKey when the new priority is lower and is a no-op otherwise.
//
// The zero value is not usable; construct with New or NewWithCapacity. The
// position index is a map so the heap works for arbitrarily sparse value
// spaces; for dense node IDs the map stays small relative to graph storage.
type IndexedHeap struct {
	items []Item
	pos   map[int32]int
}

// New returns an empty heap.
func New() *IndexedHeap {
	return NewWithCapacity(0)
}

// NewWithCapacity returns an empty heap with storage preallocated for n
// entries.
func NewWithCapacity(n int) *IndexedHeap {
	return &IndexedHeap{
		items: make([]Item, 0, n),
		pos:   make(map[int32]int, n),
	}
}

// Len returns the number of queued items.
func (h *IndexedHeap) Len() int { return len(h.items) }

// Empty reports whether the heap has no items.
func (h *IndexedHeap) Empty() bool { return len(h.items) == 0 }

// Reset removes all items but keeps allocated storage.
func (h *IndexedHeap) Reset() {
	h.items = h.items[:0]
	for k := range h.pos {
		delete(h.pos, k)
	}
}

// Contains reports whether value is currently queued.
func (h *IndexedHeap) Contains(value int32) bool {
	_, ok := h.pos[value]
	return ok
}

// Priority returns the current priority of value and whether it is queued.
func (h *IndexedHeap) Priority(value int32) (float64, bool) {
	i, ok := h.pos[value]
	if !ok {
		return 0, false
	}
	return h.items[i].Priority, true
}

// Push inserts value with the given priority. If value is already queued the
// call degrades to DecreaseKey: the priority is lowered if the new one is
// smaller, otherwise nothing happens. It returns true if the heap changed.
func (h *IndexedHeap) Push(value int32, priority float64) bool {
	if i, ok := h.pos[value]; ok {
		if priority < h.items[i].Priority {
			h.items[i].Priority = priority
			h.up(i)
			return true
		}
		return false
	}
	h.items = append(h.items, Item{Value: value, Priority: priority})
	i := len(h.items) - 1
	h.pos[value] = i
	h.up(i)
	return true
}

// DecreaseKey lowers the priority of a queued value. It returns false when
// the value is not queued or the new priority is not lower.
func (h *IndexedHeap) DecreaseKey(value int32, priority float64) bool {
	i, ok := h.pos[value]
	if !ok || priority >= h.items[i].Priority {
		return false
	}
	h.items[i].Priority = priority
	h.up(i)
	return true
}

// Pop removes and returns the item with the smallest priority. It panics on
// an empty heap; callers check Empty or Len first.
func (h *IndexedHeap) Pop() Item {
	if len(h.items) == 0 {
		panic("pqueue: Pop on empty heap")
	}
	top := h.items[0]
	last := len(h.items) - 1
	h.swap(0, last)
	h.items = h.items[:last]
	delete(h.pos, top.Value)
	if last > 0 {
		h.down(0)
	}
	return top
}

// Peek returns the minimum item without removing it. It panics on an empty
// heap.
func (h *IndexedHeap) Peek() Item {
	if len(h.items) == 0 {
		panic("pqueue: Peek on empty heap")
	}
	return h.items[0]
}

// Remove deletes value from the heap, returning true if it was present.
func (h *IndexedHeap) Remove(value int32) bool {
	i, ok := h.pos[value]
	if !ok {
		return false
	}
	last := len(h.items) - 1
	h.swap(i, last)
	h.items = h.items[:last]
	delete(h.pos, value)
	if i < last {
		h.down(i)
		h.up(i)
	}
	return true
}

func (h *IndexedHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if h.items[i].Priority >= h.items[parent].Priority {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *IndexedHeap) down(i int) {
	n := len(h.items)
	for {
		left := 2*i + 1
		right := left + 1
		smallest := i
		if left < n && h.items[left].Priority < h.items[smallest].Priority {
			smallest = left
		}
		if right < n && h.items[right].Priority < h.items[smallest].Priority {
			smallest = right
		}
		if smallest == i {
			return
		}
		h.swap(i, smallest)
		i = smallest
	}
}

func (h *IndexedHeap) swap(i, j int) {
	h.items[i], h.items[j] = h.items[j], h.items[i]
	h.pos[h.items[i].Value] = i
	h.pos[h.items[j].Value] = j
}
