package pqueue

import (
	"math/rand"
	"testing"
)

// TestDenseHeapMatchesIndexedHeap drives a DenseHeap and an IndexedHeap with
// the same randomized operation sequence and asserts identical observable
// behaviour: Push return values, Pop order (including ties), Len, Contains and
// Priority. The search workspaces rely on this equivalence to produce
// byte-identical results to the fresh-slice reference implementations.
func TestDenseHeapMatchesIndexedHeap(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	const n = 200
	dh := NewDenseHeap(n)
	ih := NewWithCapacity(n)
	for round := 0; round < 50; round++ {
		ops := 1 + r.Intn(300)
		for k := 0; k < ops; k++ {
			switch r.Intn(5) {
			case 0, 1, 2: // push (ties are common: few distinct priorities)
				v := int32(r.Intn(n))
				p := float64(r.Intn(8))
				if got, want := dh.Push(v, p), ih.Push(v, p); got != want {
					t.Fatalf("round %d: Push(%d,%v) dense=%v indexed=%v", round, v, p, got, want)
				}
			case 3: // pop
				if dh.Empty() != ih.Empty() {
					t.Fatalf("round %d: Empty dense=%v indexed=%v", round, dh.Empty(), ih.Empty())
				}
				if !dh.Empty() {
					got, want := dh.Pop(), ih.Pop()
					if got != want {
						t.Fatalf("round %d: Pop dense=%+v indexed=%+v", round, got, want)
					}
				}
			case 4: // probes
				v := int32(r.Intn(n))
				if got, want := dh.Contains(v), ih.Contains(v); got != want {
					t.Fatalf("round %d: Contains(%d) dense=%v indexed=%v", round, v, got, want)
				}
				gp, gok := dh.Priority(v)
				wp, wok := ih.Priority(v)
				if gp != wp || gok != wok {
					t.Fatalf("round %d: Priority(%d) dense=(%v,%v) indexed=(%v,%v)", round, v, gp, gok, wp, wok)
				}
			}
			if dh.Len() != ih.Len() {
				t.Fatalf("round %d: Len dense=%d indexed=%d", round, dh.Len(), ih.Len())
			}
		}
		// Drain both and compare the full pop order.
		for !ih.Empty() {
			got, want := dh.Pop(), ih.Pop()
			if got != want {
				t.Fatalf("round %d drain: Pop dense=%+v indexed=%+v", round, got, want)
			}
		}
		if !dh.Empty() {
			t.Fatalf("round %d: dense heap not drained", round)
		}
		// O(1) reset between rounds; the indexed heap resets the classic way.
		dh.Reset(n)
		ih.Reset()
	}
}

// TestDenseHeapReset checks that Reset invalidates queued entries without
// clearing storage and that entries pushed before a reset never leak into the
// next epoch.
func TestDenseHeapReset(t *testing.T) {
	h := NewDenseHeap(8)
	h.Push(3, 1.0)
	h.Push(5, 0.5)
	h.Reset(8)
	if !h.Empty() || h.Len() != 0 {
		t.Fatalf("heap not empty after Reset: len=%d", h.Len())
	}
	if h.Contains(3) || h.Contains(5) {
		t.Fatal("stale entries survive Reset")
	}
	if _, ok := h.Priority(5); ok {
		t.Fatal("stale priority survives Reset")
	}
	if !h.Push(3, 2.0) {
		t.Fatal("push after Reset failed")
	}
	if got := h.Pop(); got.Value != 3 || got.Priority != 2.0 {
		t.Fatalf("pop after Reset = %+v", got)
	}
}

// TestDenseHeapGrows checks that values beyond the initial capacity are
// handled by growing the position index.
func TestDenseHeapGrows(t *testing.T) {
	h := NewDenseHeap(2)
	h.Push(100, 1)
	h.Push(7, 0.25)
	h.Reset(200) // larger graph generation
	h.Push(150, 3)
	h.Push(150, 2) // decrease-key
	if p, ok := h.Priority(150); !ok || p != 2 {
		t.Fatalf("Priority(150) = %v,%v", p, ok)
	}
	if got := h.Pop(); got.Value != 150 || got.Priority != 2 {
		t.Fatalf("Pop = %+v", got)
	}
}
