package privacy

import (
	"opaque/internal/obfuscate"
	"opaque/internal/roadnet"
)

// CollusionScenario models the attack the paper's abstract raises: some users
// whose queries were merged into a shared obfuscated query collude with the
// server and reveal their own true (s, t) pairs. The server can then discount
// those endpoints when guessing the remaining (victim) members' pairs.
//
// For an independent obfuscated query, every non-member endpoint is a fake
// the obfuscator invented, so a colluding coalition that includes the lone
// member reveals everything and a coalition that excludes the member reveals
// nothing about it; the interesting comparison is the shared case, where the
// coalition's endpoints are real but belong to other people, shrinking —
// though never collapsing — the victims' anonymity sets.
type CollusionScenario struct {
	Query obfuscate.ObfuscatedQuery
	// Colluders are the member requests that defected (revealed their true
	// endpoints to the adversary).
	Colluders []obfuscate.Request
}

// victims returns the members of the query that did not collude.
func (c CollusionScenario) victims() []obfuscate.Request {
	colluding := make(map[obfuscate.UserID]struct{}, len(c.Colluders))
	for _, r := range c.Colluders {
		colluding[r.User] = struct{}{}
	}
	var out []obfuscate.Request
	for _, m := range c.Query.Members {
		if _, ok := colluding[m.User]; !ok {
			out = append(out, m)
		}
	}
	return out
}

// ResidualQuery returns the obfuscated query as the colluding adversary sees
// it after removing every endpoint claimed by a colluder (unless another
// member shares the endpoint, which the adversary cannot rule out and
// therefore must keep).
func (c CollusionScenario) ResidualQuery() obfuscate.ObfuscatedQuery {
	claimedSrc := make(map[roadnet.NodeID]int)
	claimedDst := make(map[roadnet.NodeID]int)
	for _, r := range c.Colluders {
		claimedSrc[r.Source]++
		claimedDst[r.Dest]++
	}
	// Count how many non-colluding members also use each endpoint; those
	// endpoints stay in the residual sets.
	sharedSrc := make(map[roadnet.NodeID]bool)
	sharedDst := make(map[roadnet.NodeID]bool)
	for _, v := range c.victims() {
		sharedSrc[v.Source] = true
		sharedDst[v.Dest] = true
	}
	res := obfuscate.ObfuscatedQuery{ID: c.Query.ID, Members: c.victims()}
	for _, s := range c.Query.Sources {
		if n, claimed := claimedSrc[s]; claimed && n > 0 && !sharedSrc[s] {
			continue
		}
		res.Sources = append(res.Sources, s)
	}
	for _, t := range c.Query.Dests {
		if n, claimed := claimedDst[t]; claimed && n > 0 && !sharedDst[t] {
			continue
		}
		res.Dests = append(res.Dests, t)
	}
	// Degenerate safety: a residual set can never be empty while victims
	// remain, because each victim's own endpoint survives the filter above.
	return res
}

// CollusionReport summarises the privacy loss a coalition inflicts on the
// remaining members.
type CollusionReport struct {
	Colluders int
	Victims   int
	// BreachBefore and BreachAfter are the mean probability the adversary
	// assigns to each victim's true pair before and after using the
	// coalition's knowledge.
	BreachBefore float64
	BreachAfter  float64
	// ResidualSources and ResidualDests are the sizes of the anonymity sets
	// the victims retain.
	ResidualSources int
	ResidualDests   int
}

// EvaluateCollusion measures the collusion attack: adversary a first guesses
// using the full query, then using the residual query with colluder endpoints
// removed.
func (a *Adversary) EvaluateCollusion(sc CollusionScenario) CollusionReport {
	victims := sc.victims()
	rep := CollusionReport{Colluders: len(sc.Colluders), Victims: len(victims)}
	if len(victims) == 0 {
		return rep
	}
	residual := sc.ResidualQuery()
	rep.ResidualSources = len(residual.Sources)
	rep.ResidualDests = len(residual.Dests)
	before, after := 0.0, 0.0
	for _, v := range victims {
		before += a.BreachProbability(sc.Query, v)
		after += a.PairProbability(residual, v.Source, v.Dest)
	}
	rep.BreachBefore = before / float64(len(victims))
	rep.BreachAfter = after / float64(len(victims))
	return rep
}

// CollusionSweep runs the collusion attack for every coalition size from 0 to
// len(q.Members)-1, taking colluders in member order, and returns one report
// per coalition size. It is the primitive behind experiment E9.
func (a *Adversary) CollusionSweep(q obfuscate.ObfuscatedQuery) []CollusionReport {
	n := len(q.Members)
	if n == 0 {
		return nil
	}
	out := make([]CollusionReport, 0, n)
	for c := 0; c < n; c++ {
		sc := CollusionScenario{Query: q, Colluders: q.Members[:c]}
		out = append(out, a.EvaluateCollusion(sc))
	}
	return out
}

// LinkageReport quantifies how much repeated queries from the same user leak
// when the obfuscator picks fresh fakes each time: endpoints that appear in
// every one of the user's obfuscated queries are more likely to be true.
type LinkageReport struct {
	Queries int
	// PersistentSources/Dests are the endpoints present in every query.
	PersistentSources []roadnet.NodeID
	PersistentDests   []roadnet.NodeID
	// SourceIdentified/DestIdentified report whether intersection alone
	// pinned the true endpoint uniquely.
	SourceIdentified bool
	DestIdentified   bool
}

// AnalyzeLinkage intersects the source and destination sets of several
// obfuscated queries known (to the analyst) to belong to the same user with
// the same true endpoints. It models the paper's observation that the server
// "can accumulate all the path queries received" (Section II).
func AnalyzeLinkage(queries []obfuscate.ObfuscatedQuery, truth obfuscate.Request) LinkageReport {
	rep := LinkageReport{Queries: len(queries)}
	if len(queries) == 0 {
		return rep
	}
	srcCount := make(map[roadnet.NodeID]int)
	dstCount := make(map[roadnet.NodeID]int)
	for _, q := range queries {
		seenS := make(map[roadnet.NodeID]struct{})
		for _, s := range q.Sources {
			if _, dup := seenS[s]; !dup {
				srcCount[s]++
				seenS[s] = struct{}{}
			}
		}
		seenT := make(map[roadnet.NodeID]struct{})
		for _, t := range q.Dests {
			if _, dup := seenT[t]; !dup {
				dstCount[t]++
				seenT[t] = struct{}{}
			}
		}
	}
	for id, c := range srcCount {
		if c == len(queries) {
			rep.PersistentSources = append(rep.PersistentSources, id)
		}
	}
	for id, c := range dstCount {
		if c == len(queries) {
			rep.PersistentDests = append(rep.PersistentDests, id)
		}
	}
	rep.SourceIdentified = len(rep.PersistentSources) == 1 && len(rep.PersistentSources) > 0 && rep.PersistentSources[0] == truth.Source
	rep.DestIdentified = len(rep.PersistentDests) == 1 && len(rep.PersistentDests) > 0 && rep.PersistentDests[0] == truth.Dest
	return rep
}
