package privacy

import (
	"math"
	"sort"

	"opaque/internal/roadnet"
)

// ObservedQuery is one query as recorded in the directions search server's
// log: just the endpoint sets it received, with no user attribution. Both the
// no-privacy deployment (1×1 sets) and OPAQUE (obfuscated sets) produce logs
// of this shape, which makes them directly comparable.
type ObservedQuery struct {
	Sources []roadnet.NodeID
	Dests   []roadnet.NodeID
}

// LogReport summarises what an honest-but-curious operator can mine from its
// accumulated query log (Section II: "the server can accumulate all the path
// queries received to learn where individuals travel").
type LogReport struct {
	Queries int
	// DistinctSources and DistinctDests are the numbers of distinct endpoint
	// nodes appearing anywhere in the log.
	DistinctSources int
	DistinctDests   int
	// SourceEntropy and DestEntropy are the Shannon entropies (bits) of the
	// endpoint occurrence distributions. Higher entropy means the log is
	// less concentrated and individual hotspots stand out less.
	SourceEntropy float64
	DestEntropy   float64
	// TopDests are the most frequently observed destination nodes with their
	// occurrence shares — what the operator would flag as "popular places
	// users travel to".
	TopDests []EndpointFrequency
	// MeanCandidatesPerQuery is the mean |S|·|T| per logged query; 1 for a
	// no-privacy log.
	MeanCandidatesPerQuery float64
}

// EndpointFrequency is one node with its share of log occurrences.
type EndpointFrequency struct {
	Node  roadnet.NodeID
	Share float64
}

// AnalyzeLog mines an observed query log. topK bounds the TopDests list.
func AnalyzeLog(log []ObservedQuery, topK int) LogReport {
	rep := LogReport{Queries: len(log)}
	if len(log) == 0 {
		return rep
	}
	srcCount := make(map[roadnet.NodeID]float64)
	dstCount := make(map[roadnet.NodeID]float64)
	totalPairs := 0
	for _, q := range log {
		totalPairs += len(q.Sources) * len(q.Dests)
		// Each query contributes one observation split evenly over its
		// candidate endpoints, so an obfuscated query dilutes every endpoint
		// it mentions instead of incriminating each equally with a direct
		// query.
		if len(q.Sources) > 0 {
			w := 1.0 / float64(len(q.Sources))
			for _, s := range q.Sources {
				srcCount[s] += w
			}
		}
		if len(q.Dests) > 0 {
			w := 1.0 / float64(len(q.Dests))
			for _, d := range q.Dests {
				dstCount[d] += w
			}
		}
	}
	rep.DistinctSources = len(srcCount)
	rep.DistinctDests = len(dstCount)
	rep.SourceEntropy = distributionEntropy(srcCount)
	rep.DestEntropy = distributionEntropy(dstCount)
	rep.MeanCandidatesPerQuery = float64(totalPairs) / float64(len(log))

	total := 0.0
	for _, c := range dstCount {
		total += c
	}
	freqs := make([]EndpointFrequency, 0, len(dstCount))
	for id, c := range dstCount {
		freqs = append(freqs, EndpointFrequency{Node: id, Share: c / total})
	}
	sort.Slice(freqs, func(i, j int) bool {
		if freqs[i].Share != freqs[j].Share {
			return freqs[i].Share > freqs[j].Share
		}
		return freqs[i].Node < freqs[j].Node
	})
	if topK > 0 && topK < len(freqs) {
		freqs = freqs[:topK]
	}
	rep.TopDests = freqs
	return rep
}

// distributionEntropy computes the Shannon entropy (bits) of a weighted
// occurrence map.
func distributionEntropy(counts map[roadnet.NodeID]float64) float64 {
	total := 0.0
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	h := 0.0
	for _, c := range counts {
		if c <= 0 {
			continue
		}
		p := c / total
		h -= p * math.Log2(p)
	}
	return h
}

// HotspotExposure measures how much a specific destination node (say, the
// clinic of the paper's example) stands out in the log: the probability mass
// the operator's weighted endpoint count assigns to that node among all
// logged destinations. A direct (no-privacy) log concentrates the clinic's
// true popularity into this share; obfuscation dilutes each query's
// observation across its |T| candidates, so the share shrinks towards the
// background level even though the clinic still appears in the log.
func HotspotExposure(log []ObservedQuery, node roadnet.NodeID) float64 {
	dstCount := make(map[roadnet.NodeID]float64)
	for _, q := range log {
		if len(q.Dests) == 0 {
			continue
		}
		w := 1.0 / float64(len(q.Dests))
		for _, d := range q.Dests {
			dstCount[d] += w
		}
	}
	total := 0.0
	for _, c := range dstCount {
		total += c
	}
	if total == 0 {
		return 0
	}
	return dstCount[node] / total
}
