package privacy

import (
	"math"
	"testing"
	"testing/quick"

	"opaque/internal/gen"
	"opaque/internal/obfuscate"
	"opaque/internal/roadnet"
)

func testGraph(t testing.TB) *roadnet.Graph {
	t.Helper()
	cfg := gen.DefaultNetworkConfig()
	cfg.Kind = gen.TigerLike
	cfg.Nodes = 1000
	cfg.Seed = 51
	return gen.MustGenerate(cfg)
}

func testSelector(g *roadnet.Graph, seed uint64) obfuscate.EndpointSelector {
	minX, minY, maxX, maxY := g.Bounds()
	extent := math.Max(maxX-minX, maxY-minY)
	return obfuscate.MustNewRingBandSelector(0.02*extent, 0.2*extent, seed)
}

func makeQuery(t *testing.T, g *roadnet.Graph, fs, ft int) (obfuscate.ObfuscatedQuery, obfuscate.Request) {
	t.Helper()
	req := obfuscate.Request{User: "alice", Source: 3, Dest: 500, FS: fs, FT: ft}
	o := obfuscate.MustNew(g, obfuscate.Config{Mode: obfuscate.Independent, Cluster: obfuscate.ClusterNone, Selector: testSelector(g, 5), Seed: 6})
	plan, err := o.Obfuscate([]obfuscate.Request{req})
	if err != nil {
		t.Fatal(err)
	}
	return plan.Queries[0], req
}

func TestUniformAdversaryMatchesDefinition2(t *testing.T) {
	g := testGraph(t)
	for _, sizes := range [][2]int{{1, 1}, {2, 3}, {4, 4}, {8, 2}} {
		q, req := makeQuery(t, g, sizes[0], sizes[1])
		adv := NewUniformAdversary(g)
		got := adv.BreachProbability(q, req)
		want := obfuscate.BreachProbability(len(q.Sources), len(q.Dests))
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("fS=%d fT=%d: uniform adversary breach %v, Definition 2 gives %v", sizes[0], sizes[1], got, want)
		}
	}
}

func TestPairProbabilityProperties(t *testing.T) {
	g := testGraph(t)
	q, req := makeQuery(t, g, 4, 4)
	adv := NewWeightedAdversary(g)
	// Probabilities over S×T sum to 1.
	sum := 0.0
	for _, s := range q.Sources {
		for _, d := range q.Dests {
			p := adv.PairProbability(q, s, d)
			if p < 0 || p > 1 {
				t.Fatalf("pair probability %v out of range", p)
			}
			sum += p
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("pair probabilities sum to %v, want 1", sum)
	}
	// A pair outside S×T has probability 0.
	if p := adv.PairProbability(q, req.Source, req.Source); p != 0 {
		t.Errorf("outside pair probability = %v, want 0", p)
	}
}

func TestWeightedAdversaryGainsOnSkewedPriors(t *testing.T) {
	// Build a tiny graph where the true destination is far more popular than
	// the fake: the weighted adversary should assign it more probability than
	// the uniform adversary does.
	g := roadnet.NewGraph(4, 4)
	g.AddWeightedNode(0, 0, 1)   // true source
	g.AddWeightedNode(1, 0, 1)   // fake source
	g.AddWeightedNode(0, 1, 10)  // true dest: popular clinic
	g.AddWeightedNode(1, 1, 0.1) // fake dest: empty lot
	g.MustAddBidirectionalEdge(0, 2, 1)
	g.MustAddBidirectionalEdge(1, 3, 1)
	g.Freeze()
	q := obfuscate.ObfuscatedQuery{
		Sources: []roadnet.NodeID{0, 1},
		Dests:   []roadnet.NodeID{2, 3},
		Members: []obfuscate.Request{{User: "a", Source: 0, Dest: 2}},
	}
	uni := NewUniformAdversary(g).BreachProbability(q, q.Members[0])
	wei := NewWeightedAdversary(g).BreachProbability(q, q.Members[0])
	if wei <= uni {
		t.Errorf("weighted adversary breach %v should exceed uniform %v when the true destination is popular", wei, uni)
	}
	if wei >= 1 {
		t.Errorf("weighted breach %v should remain below certainty", wei)
	}
}

func TestEntropy(t *testing.T) {
	g := testGraph(t)
	q, _ := makeQuery(t, g, 4, 4)
	adv := NewUniformAdversary(g)
	h := adv.Entropy(q)
	want := math.Log2(float64(len(q.Sources) * len(q.Dests)))
	if math.Abs(h-want) > 1e-9 {
		t.Errorf("uniform entropy = %v, want log2(|S||T|) = %v", h, want)
	}
	// Skewed priors reduce entropy.
	weighted := NewWeightedAdversary(g)
	if weighted.Entropy(q) > h+1e-9 {
		t.Error("weighted-prior entropy should not exceed uniform entropy")
	}
}

func TestGuessSuccessProbability(t *testing.T) {
	g := testGraph(t)
	q, _ := makeQuery(t, g, 2, 2)
	adv := NewUniformAdversary(g)
	got := adv.GuessSuccessProbability(q)
	// With a uniform prior and one member, every pair ties, so guessing
	// succeeds with probability 1/(|S||T|).
	want := 1 / float64(len(q.Sources)*len(q.Dests))
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("guess success = %v, want %v", got, want)
	}
	if adv.GuessSuccessProbability(obfuscate.ObfuscatedQuery{}) != 0 {
		t.Error("guess success for a memberless query should be 0")
	}
}

func TestNewCustomAdversary(t *testing.T) {
	g := testGraph(t)
	if _, err := NewCustomAdversary(g, nil); err == nil {
		t.Error("nil prior accepted")
	}
	adv, err := NewCustomAdversary(g, func(id roadnet.NodeID) float64 { return 1 })
	if err != nil {
		t.Fatal(err)
	}
	q, req := makeQuery(t, g, 2, 2)
	if p := adv.BreachProbability(q, req); math.Abs(p-0.25) > 1e-9 {
		t.Errorf("custom uniform adversary breach = %v, want 0.25", p)
	}
}

func TestEvaluatePlan(t *testing.T) {
	g := testGraph(t)
	o := obfuscate.MustNew(g, obfuscate.Config{Mode: obfuscate.Shared, Cluster: obfuscate.ClusterRandom, Selector: testSelector(g, 7), MaxClusterSize: 4, Seed: 8})
	wl := gen.MustGenerateWorkload(g, gen.WorkloadConfig{Kind: gen.Uniform, Queries: 8, Seed: 9})
	reqs := make([]obfuscate.Request, len(wl))
	for i, p := range wl {
		reqs[i] = obfuscate.Request{User: obfuscate.UserID(string(rune('a' + i))), Source: p.Source, Dest: p.Dest, FS: 3, FT: 3}
	}
	plan, err := o.Obfuscate(reqs)
	if err != nil {
		t.Fatal(err)
	}
	rep := NewUniformAdversary(g).EvaluatePlan(plan)
	if rep.Members != len(reqs) {
		t.Errorf("report covers %d members, want %d", rep.Members, len(reqs))
	}
	if rep.Queries != len(plan.Queries) {
		t.Errorf("report covers %d queries, want %d", rep.Queries, len(plan.Queries))
	}
	if rep.MeanBreach <= 0 || rep.MeanBreach > obfuscate.BreachProbability(3, 3)+1e-9 {
		t.Errorf("mean breach %v outside (0, %v]", rep.MeanBreach, obfuscate.BreachProbability(3, 3))
	}
	if rep.MaxBreach < rep.MeanBreach {
		t.Error("max breach below mean breach")
	}
	if rep.MeanEntropy <= 0 {
		t.Error("mean entropy should be positive")
	}
	empty := NewUniformAdversary(g).EvaluatePlan(obfuscate.Plan{})
	if empty.Queries != 0 || empty.MeanBreach != 0 {
		t.Errorf("empty plan report = %+v", empty)
	}
}

// Property: for any obfuscation sizes, the uniform adversary's breach equals
// 1/(|S|·|T|) and entropy equals log2(|S|·|T|).
func TestUniformAdversaryProperty(t *testing.T) {
	g := testGraph(t)
	adv := NewUniformAdversary(g)
	f := func(fsRaw, ftRaw uint8) bool {
		fs := int(fsRaw%6) + 1
		ft := int(ftRaw%6) + 1
		req := obfuscate.Request{User: "p", Source: 1, Dest: 700, FS: fs, FT: ft}
		o := obfuscate.MustNew(g, obfuscate.Config{Mode: obfuscate.Independent, Cluster: obfuscate.ClusterNone, Selector: testSelector(g, uint64(fs*100+ft)), Seed: uint64(fs + ft)})
		plan, err := o.Obfuscate([]obfuscate.Request{req})
		if err != nil {
			return false
		}
		q := plan.Queries[0]
		breach := adv.BreachProbability(q, req)
		entropy := adv.Entropy(q)
		wantBreach := 1 / float64(len(q.Sources)*len(q.Dests))
		wantEntropy := math.Log2(float64(len(q.Sources) * len(q.Dests)))
		return math.Abs(breach-wantBreach) < 1e-9 && math.Abs(entropy-wantEntropy) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
