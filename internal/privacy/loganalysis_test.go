package privacy

import (
	"math"
	"testing"

	"opaque/internal/roadnet"
)

func TestAnalyzeLogEmpty(t *testing.T) {
	rep := AnalyzeLog(nil, 5)
	if rep.Queries != 0 || rep.DistinctDests != 0 || rep.DestEntropy != 0 {
		t.Errorf("empty log report = %+v", rep)
	}
}

func TestAnalyzeLogDirectQueries(t *testing.T) {
	// Three direct queries, two of them to destination 9.
	log := []ObservedQuery{
		{Sources: []roadnet.NodeID{1}, Dests: []roadnet.NodeID{9}},
		{Sources: []roadnet.NodeID{2}, Dests: []roadnet.NodeID{9}},
		{Sources: []roadnet.NodeID{3}, Dests: []roadnet.NodeID{7}},
	}
	rep := AnalyzeLog(log, 2)
	if rep.Queries != 3 || rep.DistinctSources != 3 || rep.DistinctDests != 2 {
		t.Errorf("report = %+v", rep)
	}
	if rep.MeanCandidatesPerQuery != 1 {
		t.Errorf("mean candidates = %v, want 1", rep.MeanCandidatesPerQuery)
	}
	if len(rep.TopDests) != 2 || rep.TopDests[0].Node != 9 {
		t.Errorf("top destinations = %+v, want node 9 first", rep.TopDests)
	}
	if math.Abs(rep.TopDests[0].Share-2.0/3) > 1e-9 {
		t.Errorf("node 9 share = %v, want 2/3", rep.TopDests[0].Share)
	}
	// Destination entropy of distribution {2/3, 1/3}.
	wantH := -(2.0/3)*math.Log2(2.0/3) - (1.0/3)*math.Log2(1.0/3)
	if math.Abs(rep.DestEntropy-wantH) > 1e-9 {
		t.Errorf("dest entropy = %v, want %v", rep.DestEntropy, wantH)
	}
}

func TestAnalyzeLogObfuscationDilutesShares(t *testing.T) {
	// The same three trips, but each query carries three candidate
	// destinations; the clinic's (node 9) weighted share must drop.
	direct := []ObservedQuery{
		{Sources: []roadnet.NodeID{1}, Dests: []roadnet.NodeID{9}},
		{Sources: []roadnet.NodeID{2}, Dests: []roadnet.NodeID{9}},
		{Sources: []roadnet.NodeID{3}, Dests: []roadnet.NodeID{7}},
	}
	obfuscated := []ObservedQuery{
		{Sources: []roadnet.NodeID{1, 11}, Dests: []roadnet.NodeID{9, 20, 21}},
		{Sources: []roadnet.NodeID{2, 12}, Dests: []roadnet.NodeID{9, 22, 23}},
		{Sources: []roadnet.NodeID{3, 13}, Dests: []roadnet.NodeID{7, 24, 25}},
	}
	directRep := AnalyzeLog(direct, 1)
	obfRep := AnalyzeLog(obfuscated, 1)
	if obfRep.DestEntropy <= directRep.DestEntropy {
		t.Errorf("obfuscated log entropy %v should exceed direct log entropy %v", obfRep.DestEntropy, directRep.DestEntropy)
	}
	if obfRep.MeanCandidatesPerQuery <= directRep.MeanCandidatesPerQuery {
		t.Error("obfuscated log should show more candidate pairs per query")
	}
	if HotspotExposure(obfuscated, 9) >= HotspotExposure(direct, 9) {
		t.Errorf("clinic exposure under obfuscation (%v) should be below direct exposure (%v)",
			HotspotExposure(obfuscated, 9), HotspotExposure(direct, 9))
	}
}

func TestHotspotExposure(t *testing.T) {
	if HotspotExposure(nil, 1) != 0 {
		t.Error("exposure on empty log should be 0")
	}
	// Two direct queries to two different destinations: each holds half the
	// observed destination mass.
	log := []ObservedQuery{
		{Sources: []roadnet.NodeID{1}, Dests: []roadnet.NodeID{5}},
		{Sources: []roadnet.NodeID{2}, Dests: []roadnet.NodeID{6}},
	}
	if got := HotspotExposure(log, 5); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("exposure = %v, want 0.5", got)
	}
	// A node absent from the log has exposure 0.
	if got := HotspotExposure(log, 99); got != 0 {
		t.Errorf("absent node exposure = %v, want 0", got)
	}
}

func TestDistributionEntropyDegenerate(t *testing.T) {
	if distributionEntropy(nil) != 0 {
		t.Error("entropy of empty distribution should be 0")
	}
	if distributionEntropy(map[roadnet.NodeID]float64{1: 5}) != 0 {
		t.Error("entropy of a single-point distribution should be 0")
	}
}
