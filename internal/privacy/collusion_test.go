package privacy

import (
	"testing"

	"opaque/internal/gen"
	"opaque/internal/obfuscate"
	"opaque/internal/roadnet"
)

// sharedQuery builds one shared obfuscated query over k users.
func sharedQuery(t *testing.T, g *roadnet.Graph, k int) (obfuscate.ObfuscatedQuery, []obfuscate.Request) {
	t.Helper()
	wl := gen.MustGenerateWorkload(g, gen.WorkloadConfig{Kind: gen.Hotspot, Queries: k, Hotspots: 2, HotspotSpread: 0.05, Seed: 61})
	reqs := make([]obfuscate.Request, k)
	for i, p := range wl {
		reqs[i] = obfuscate.Request{User: obfuscate.UserID(string(rune('a' + i))), Source: p.Source, Dest: p.Dest, FS: 4, FT: 4}
	}
	o := obfuscate.MustNew(g, obfuscate.Config{
		Mode:           obfuscate.Shared,
		Cluster:        obfuscate.ClusterRandom,
		Selector:       testSelector(g, 62),
		MaxClusterSize: k,
		Seed:           63,
	})
	plan, err := o.Obfuscate(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Queries) != 1 {
		t.Fatalf("expected a single shared query, got %d", len(plan.Queries))
	}
	return plan.Queries[0], reqs
}

func TestResidualQueryKeepsVictimEndpoints(t *testing.T) {
	g := testGraph(t)
	q, reqs := sharedQuery(t, g, 6)
	sc := CollusionScenario{Query: q, Colluders: reqs[:2]}
	residual := sc.ResidualQuery()
	// Every victim's endpoints must survive the filter.
	for _, v := range reqs[2:] {
		if !residual.ContainsPair(v.Source, v.Dest) {
			t.Errorf("victim %s endpoints missing from residual query", v.User)
		}
	}
	// Residual sets are never larger than the original.
	if len(residual.Sources) > len(q.Sources) || len(residual.Dests) > len(q.Dests) {
		t.Error("residual sets grew")
	}
	if len(residual.Members) != len(reqs)-2 {
		t.Errorf("residual members = %d, want %d", len(residual.Members), len(reqs)-2)
	}
}

func TestCollusionIncreasesButBoundsBreach(t *testing.T) {
	g := testGraph(t)
	q, reqs := sharedQuery(t, g, 6)
	adv := NewUniformAdversary(g)
	sc := CollusionScenario{Query: q, Colluders: reqs[:3]}
	rep := adv.EvaluateCollusion(sc)
	if rep.Colluders != 3 || rep.Victims != 3 {
		t.Fatalf("report counted %d colluders / %d victims", rep.Colluders, rep.Victims)
	}
	if rep.BreachAfter < rep.BreachBefore {
		t.Errorf("collusion decreased breach: before %v, after %v", rep.BreachBefore, rep.BreachAfter)
	}
	if rep.BreachAfter >= 1 {
		t.Errorf("breach after collusion = %v, must remain below certainty while victims share the query", rep.BreachAfter)
	}
	if rep.ResidualSources < 1 || rep.ResidualDests < 1 {
		t.Error("residual anonymity sets must stay non-empty")
	}
}

func TestCollusionSweepMonotonicResidualSets(t *testing.T) {
	g := testGraph(t)
	q, _ := sharedQuery(t, g, 6)
	adv := NewUniformAdversary(g)
	reports := adv.CollusionSweep(q)
	if len(reports) != len(q.Members) {
		t.Fatalf("sweep produced %d reports, want %d", len(reports), len(q.Members))
	}
	for i := 1; i < len(reports); i++ {
		if reports[i].ResidualSources > reports[i-1].ResidualSources {
			t.Errorf("residual |S| increased from %d to %d as the coalition grew", reports[i-1].ResidualSources, reports[i].ResidualSources)
		}
		if reports[i].Victims > reports[i-1].Victims {
			t.Errorf("victims grew from %d to %d as the coalition grew", reports[i-1].Victims, reports[i].Victims)
		}
	}
	if got := adv.CollusionSweep(obfuscate.ObfuscatedQuery{}); got != nil {
		t.Error("sweep of memberless query should be nil")
	}
}

func TestCollusionAllButOne(t *testing.T) {
	g := testGraph(t)
	q, reqs := sharedQuery(t, g, 4)
	adv := NewUniformAdversary(g)
	rep := adv.EvaluateCollusion(CollusionScenario{Query: q, Colluders: reqs[:3]})
	if rep.Victims != 1 {
		t.Fatalf("victims = %d, want 1", rep.Victims)
	}
	// The lone victim's breach rises substantially, but as long as any fake
	// endpoints remain in the residual sets it stays below 1.
	if rep.BreachAfter <= rep.BreachBefore {
		t.Errorf("expected breach to rise when all but one member collude (before %v, after %v)", rep.BreachBefore, rep.BreachAfter)
	}
	if rep.ResidualSources > 1 && rep.ResidualDests > 1 && rep.BreachAfter >= 1 {
		t.Errorf("breach %v should stay below 1 with residual sets %dx%d", rep.BreachAfter, rep.ResidualSources, rep.ResidualDests)
	}
}

func TestEvaluateCollusionNoVictims(t *testing.T) {
	g := testGraph(t)
	q, reqs := sharedQuery(t, g, 3)
	adv := NewUniformAdversary(g)
	rep := adv.EvaluateCollusion(CollusionScenario{Query: q, Colluders: reqs})
	if rep.Victims != 0 {
		t.Errorf("victims = %d, want 0", rep.Victims)
	}
	if rep.BreachBefore != 0 || rep.BreachAfter != 0 {
		t.Errorf("breach values for no victims should be 0, got %v/%v", rep.BreachBefore, rep.BreachAfter)
	}
}

func TestAnalyzeLinkage(t *testing.T) {
	g := testGraph(t)
	truth := obfuscate.Request{User: "alice", Source: 10, Dest: 800, FS: 3, FT: 3}
	var observed []obfuscate.ObfuscatedQuery
	for day := 0; day < 4; day++ {
		o := obfuscate.MustNew(g, obfuscate.Config{
			Mode:     obfuscate.Independent,
			Cluster:  obfuscate.ClusterNone,
			Selector: testSelector(g, uint64(100+day)),
			Seed:     uint64(200 + day),
		})
		plan, err := o.Obfuscate([]obfuscate.Request{truth})
		if err != nil {
			t.Fatal(err)
		}
		observed = append(observed, plan.Queries[0])
	}
	rep := AnalyzeLinkage(observed, truth)
	if rep.Queries != 4 {
		t.Errorf("queries = %d, want 4", rep.Queries)
	}
	// The true endpoints persist across every observation.
	foundSrc, foundDst := false, false
	for _, s := range rep.PersistentSources {
		if s == truth.Source {
			foundSrc = true
		}
	}
	for _, d := range rep.PersistentDests {
		if d == truth.Dest {
			foundDst = true
		}
	}
	if !foundSrc || !foundDst {
		t.Error("true endpoints missing from the persistent intersection")
	}
	// With fresh random fakes each day, intersection over 4 observations
	// almost surely pins the endpoints uniquely.
	if !rep.SourceIdentified || !rep.DestIdentified {
		t.Logf("linkage did not uniquely identify endpoints (persistent S=%d, T=%d) — acceptable but unusual",
			len(rep.PersistentSources), len(rep.PersistentDests))
	}
	if empty := AnalyzeLinkage(nil, truth); empty.Queries != 0 {
		t.Error("empty observation set should produce an empty report")
	}
}
