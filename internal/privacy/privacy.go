// Package privacy quantifies how much an adversary observing the directions
// search server learns about users' true path queries.
//
// The paper's metric is the breach probability of Definition 2 (1/(|S|·|T|)
// under a uniform guess). This package generalises it to adversaries with
// prior knowledge ("public information such as voter registration lists and
// yellow pages", Section II): each node carries an association weight, and
// the adversary weighs candidate (s, t) pairs by the product of endpoint
// weights. It also models collusion attacks: colluding users reveal their own
// true endpoints, shrinking the effective anonymity sets of a shared query —
// the scenario that motivates the shared obfuscated path query variant.
package privacy

import (
	"fmt"
	"math"

	"opaque/internal/obfuscate"
	"opaque/internal/roadnet"
)

// Adversary models the semi-trusted directions search server's inference
// power. It sees obfuscated queries Q(S, T) only; Prior supplies its side
// knowledge about how likely each node is to be a true endpoint.
type Adversary struct {
	g *roadnet.Graph
	// prior returns the adversary's prior weight for node id being a true
	// endpoint; higher means more plausible. Must be positive.
	prior func(id roadnet.NodeID) float64
}

// NewUniformAdversary returns an adversary with no side knowledge: every node
// is equally plausible, so its best guess is uniform over S×T and its success
// probability equals the paper's breach probability.
func NewUniformAdversary(g *roadnet.Graph) *Adversary {
	return &Adversary{g: g, prior: func(roadnet.NodeID) float64 { return 1 }}
}

// NewWeightedAdversary returns an adversary whose prior for each node is the
// node's association weight (internal/gen assigns higher weights to town
// centres and popular areas, standing in for yellow-pages knowledge).
func NewWeightedAdversary(g *roadnet.Graph) *Adversary {
	return &Adversary{g: g, prior: func(id roadnet.NodeID) float64 {
		w := g.Node(id).Weight
		if w <= 0 {
			return 1e-9
		}
		return w
	}}
}

// NewCustomAdversary returns an adversary with an arbitrary positive prior.
func NewCustomAdversary(g *roadnet.Graph, prior func(id roadnet.NodeID) float64) (*Adversary, error) {
	if prior == nil {
		return nil, fmt.Errorf("privacy: nil prior")
	}
	return &Adversary{g: g, prior: prior}, nil
}

// PairProbability returns the probability the adversary assigns to (s, t)
// being a true pair hidden in q, under the prior-weighted model
// P(s,t) ∝ prior(s)·prior(t) over S×T. It returns 0 when the pair is not in
// S×T.
func (a *Adversary) PairProbability(q obfuscate.ObfuscatedQuery, s, t roadnet.NodeID) float64 {
	if !q.ContainsPair(s, t) {
		return 0
	}
	total := 0.0
	for _, ss := range q.Sources {
		for _, tt := range q.Dests {
			total += a.prior(ss) * a.prior(tt)
		}
	}
	if total == 0 {
		return 0
	}
	return a.prior(s) * a.prior(t) / total
}

// BreachProbability returns the probability that the adversary's single best
// guess identifies the true pair of the given member request: the maximum
// pair probability is its rational guess, but what matters for the member is
// the probability mass the adversary assigns to the member's own pair.
func (a *Adversary) BreachProbability(q obfuscate.ObfuscatedQuery, member obfuscate.Request) float64 {
	return a.PairProbability(q, member.Source, member.Dest)
}

// GuessSuccessProbability returns the probability that the adversary's
// maximum-probability guess is correct for a uniformly chosen member of the
// query (ties broken uniformly). With a uniform prior and a single member it
// reduces to Definition 2's 1/(|S|·|T|).
func (a *Adversary) GuessSuccessProbability(q obfuscate.ObfuscatedQuery) float64 {
	if len(q.Members) == 0 {
		return 0
	}
	// Find the set of (s,t) pairs attaining the maximum probability.
	best := -1.0
	var bestPairs [][2]roadnet.NodeID
	for _, s := range q.Sources {
		for _, t := range q.Dests {
			p := a.PairProbability(q, s, t)
			switch {
			case p > best+1e-15:
				best = p
				bestPairs = [][2]roadnet.NodeID{{s, t}}
			case math.Abs(p-best) <= 1e-15:
				bestPairs = append(bestPairs, [2]roadnet.NodeID{s, t})
			}
		}
	}
	if len(bestPairs) == 0 {
		return 0
	}
	// Probability the guessed pair (uniform among ties) equals a uniformly
	// chosen member's true pair.
	hit := 0.0
	for _, m := range q.Members {
		for _, bp := range bestPairs {
			if bp[0] == m.Source && bp[1] == m.Dest {
				hit += 1.0 / float64(len(bestPairs))
			}
		}
	}
	return hit / float64(len(q.Members))
}

// Entropy returns the Shannon entropy (in bits) of the adversary's posterior
// over candidate pairs of q: log2(|S|·|T|) under a uniform prior, lower when
// the prior is skewed. Higher entropy means stronger protection.
func (a *Adversary) Entropy(q obfuscate.ObfuscatedQuery) float64 {
	h := 0.0
	for _, s := range q.Sources {
		for _, t := range q.Dests {
			p := a.PairProbability(q, s, t)
			if p > 0 {
				h -= p * math.Log2(p)
			}
		}
	}
	return h
}

// PlanReport aggregates privacy metrics over a whole obfuscation plan.
type PlanReport struct {
	Queries int
	Members int
	// MeanBreach and MaxBreach are over members: the probability the
	// adversary assigns to each member's true pair.
	MeanBreach float64
	MaxBreach  float64
	// MeanEntropy is the mean posterior entropy over queries, in bits.
	MeanEntropy float64
	// MeanCandidatePairs is the mean |S|·|T| per query.
	MeanCandidatePairs float64
}

// EvaluatePlan computes a PlanReport for plan under adversary a.
func (a *Adversary) EvaluatePlan(plan obfuscate.Plan) PlanReport {
	rep := PlanReport{Queries: len(plan.Queries)}
	if len(plan.Queries) == 0 {
		return rep
	}
	sumEntropy := 0.0
	sumPairs := 0
	for _, q := range plan.Queries {
		sumEntropy += a.Entropy(q)
		sumPairs += q.NumCandidatePairs()
	}
	rep.MeanEntropy = sumEntropy / float64(len(plan.Queries))
	rep.MeanCandidatePairs = float64(sumPairs) / float64(len(plan.Queries))
	sumBreach := 0.0
	for i, r := range plan.Requests {
		q, ok := plan.QueryFor(i)
		if !ok {
			continue
		}
		b := a.BreachProbability(q, r)
		sumBreach += b
		if b > rep.MaxBreach {
			rep.MaxBreach = b
		}
		rep.Members++
	}
	if rep.Members > 0 {
		rep.MeanBreach = sumBreach / float64(rep.Members)
	}
	return rep
}
