package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// WSPool flags search.Workspace checkouts that can leave the pool without a
// matching return. A leaked workspace is silent: the sync.Pool backing
// WorkspacePool simply constructs a fresh one next time, the Fresh counter
// creeps and the 0 allocs/op steady state PR 2 bought is gone — no test
// fails, the benchmark just regresses. The analyzer walks every function
// path-sensitively:
//
//   - an acquisition is a (*WorkspacePool).Get or AcquireWorkspace result
//     assigned to a variable;
//   - a release is (*WorkspacePool).Put(w) or w.Release(), directly,
//     deferred, or inside a deferred closure;
//   - ownership transfers stop tracking: returning the workspace, storing
//     it into a struct/slice/map composite or field, or sending it on a
//     channel hands responsibility to the new holder (the TreeCache pattern
//     — cached trees deliberately keep their workspaces until eviction).
//
// Every return statement (and the fall-off-the-end exit) on which a tracked
// workspace is still held is reported. The check is intraprocedural; a
// workspace passed as a plain call argument is treated as borrowed, not
// transferred.
var WSPool = &Analyzer{
	Name: "wspool",
	Doc:  "every WorkspacePool.Get must be matched by Put/Release on all return paths",
	Run:  runWSPool,
}

func runWSPool(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		// Each function literal is its own flow universe: a closure's body
		// runs at a different time than its enclosing function, so holds and
		// releases do not mix across the boundary.
		var visit func(n ast.Node) bool
		visit = func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					newWSFlow(pass, declName(n)).analyze(n.Body)
				}
				return true
			case *ast.FuncLit:
				newWSFlow(pass, "function literal").analyze(n.Body)
				return true
			}
			return true
		}
		ast.Inspect(file, visit)
	}
}

// wsState maps each held workspace variable to its acquisition position.
type wsState map[types.Object]token.Pos

func (s wsState) clone() wsState {
	c := make(wsState, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

// merge unions two states, keeping the earlier acquisition position.
func merge(a, b wsState) wsState {
	out := a.clone()
	for k, v := range b {
		if old, ok := out[k]; !ok || v < old {
			out[k] = v
		}
	}
	return out
}

// wsBreakCtx collects the states of break/continue statements targeting one
// enclosing loop or switch, to be unioned into its exit state.
type wsBreakCtx struct {
	isLoop bool
	states []wsState
}

// wsFlow is the per-function analysis state.
type wsFlow struct {
	pass   *Pass
	fn     string
	ctxs   []*wsBreakCtx         // innermost breakable construct last
	report map[[2]token.Pos]bool // dedupe: one finding per (site, acquisition)
}

func newWSFlow(pass *Pass, fn string) *wsFlow {
	return &wsFlow{pass: pass, fn: fn, report: map[[2]token.Pos]bool{}}
}

// analyze flows the whole function body and checks the implicit exit.
func (fl *wsFlow) analyze(body *ast.BlockStmt) {
	out, falls := fl.stmts(body.List, wsState{})
	if falls {
		for _, pos := range sortedHeld(out) {
			fl.leak(body.Rbrace, out, pos)
		}
	}
}

// leak reports one held workspace at a return site.
func (fl *wsFlow) leak(site token.Pos, held wsState, acq token.Pos) {
	key := [2]token.Pos{site, acq}
	if fl.report[key] {
		return
	}
	fl.report[key] = true
	fl.pass.Reportf(site,
		"workspace acquired at line %d is still held when %s exits here; release it with Put/Release (defer) or transfer ownership",
		fl.pass.Mod.Fset.Position(acq).Line, fl.fn)
}

// sortedHeld returns the acquisition positions of a state in source order.
func sortedHeld(s wsState) []token.Pos {
	var out []token.Pos
	for _, pos := range s {
		out = append(out, pos)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// stmts flows a statement sequence. It returns the fall-through state and
// whether control can reach past the sequence.
func (fl *wsFlow) stmts(list []ast.Stmt, st wsState) (wsState, bool) {
	for _, s := range list {
		var falls bool
		st, falls = fl.stmt(s, st)
		if !falls {
			return st, false
		}
	}
	return st, true
}

// stmt flows one statement.
func (fl *wsFlow) stmt(s ast.Stmt, st wsState) (wsState, bool) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		return fl.assign(s, st), true

	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Names) != len(vs.Values) {
					continue
				}
				for i, val := range vs.Values {
					if call, ok := ast.Unparen(val).(*ast.CallExpr); ok && fl.isAcquire(call) {
						if obj := fl.pass.Pkg.Info.Defs[vs.Names[i]]; obj != nil {
							st[obj] = call.Pos()
							continue
						}
					}
					st = fl.transfers(val, st)
				}
			}
		}
		return st, true

	case *ast.SendStmt:
		// Sending a tracked workspace on a channel transfers ownership.
		fl.claimIdents(s.Value, st)
		return st, true

	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if obj := fl.releasedObj(call); obj != nil {
				delete(st, obj)
				return st, true
			}
			if fl.isAcquire(call) {
				fl.pass.Reportf(call.Pos(),
					"workspace checked out of the pool is dropped on the floor; bind it and release it")
				return st, true
			}
		}
		return fl.transfers(s.X, st), true

	case *ast.DeferStmt:
		return fl.deferred(s.Call, st), true

	case *ast.GoStmt:
		// A goroutine that releases the workspace owns it from here on.
		return fl.deferred(s.Call, st), true

	case *ast.ReturnStmt:
		held := st.clone()
		for _, res := range s.Results {
			held = fl.transfers(res, held)
			// A workspace named in the results is handed to the caller.
			fl.claimIdents(res, held)
		}
		for _, pos := range sortedHeld(held) {
			fl.leak(s.Pos(), held, pos)
		}
		return st, false

	case *ast.IfStmt:
		if s.Init != nil {
			st, _ = fl.stmt(s.Init, st)
		}
		thenOut, thenFalls := fl.stmts(s.Body.List, st.clone())
		elseOut, elseFalls := st.clone(), true
		if s.Else != nil {
			elseOut, elseFalls = fl.stmt(s.Else, st.clone())
		}
		switch {
		case thenFalls && elseFalls:
			return merge(thenOut, elseOut), true
		case thenFalls:
			return thenOut, true
		case elseFalls:
			return elseOut, true
		default:
			return st, false
		}

	case *ast.BlockStmt:
		return fl.stmts(s.List, st)

	case *ast.LabeledStmt:
		return fl.stmt(s.Stmt, st)

	case *ast.ForStmt:
		if s.Init != nil {
			st, _ = fl.stmt(s.Init, st)
		}
		ctx := &wsBreakCtx{isLoop: true}
		fl.ctxs = append(fl.ctxs, ctx)
		bodyOut, bodyFalls := fl.stmts(s.Body.List, st.clone())
		fl.ctxs = fl.ctxs[:len(fl.ctxs)-1]
		exit, reachable := loopExit(st, bodyOut, bodyFalls, ctx, s.Cond != nil)
		return exit, reachable

	case *ast.RangeStmt:
		ctx := &wsBreakCtx{isLoop: true}
		fl.ctxs = append(fl.ctxs, ctx)
		bodyOut, bodyFalls := fl.stmts(s.Body.List, st.clone())
		fl.ctxs = fl.ctxs[:len(fl.ctxs)-1]
		exit, _ := loopExit(st, bodyOut, bodyFalls, ctx, true)
		return exit, true

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			if ctx := fl.innermost(false); ctx != nil {
				ctx.states = append(ctx.states, st.clone())
			}
			return st, false
		case token.CONTINUE:
			if ctx := fl.innermost(true); ctx != nil {
				ctx.states = append(ctx.states, st.clone())
			}
			return st, false
		default: // goto, fallthrough: fall out conservatively
			return st, true
		}

	case *ast.SwitchStmt:
		return fl.switchLike(s.Init, clauseBodies(s.Body), hasDefaultClause(s.Body), st)
	case *ast.TypeSwitchStmt:
		return fl.switchLike(s.Init, clauseBodies(s.Body), hasDefaultClause(s.Body), st)
	case *ast.SelectStmt:
		var bodies [][]ast.Stmt
		hasDefault := false
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			if cc.Comm == nil {
				hasDefault = true
			}
			bodies = append(bodies, cc.Body)
		}
		return fl.switchLike(nil, bodies, hasDefault, st)

	default:
		return st, true
	}
}

// loopExit assembles the state after a loop: the pre-loop state when the
// loop can run zero times, the body's looping-back state, and every break.
func loopExit(pre, bodyOut wsState, bodyFalls bool, ctx *wsBreakCtx, mayskip bool) (wsState, bool) {
	var exit wsState
	reachable := false
	add := func(s wsState) {
		if exit == nil {
			exit = s.clone()
		} else {
			exit = merge(exit, s)
		}
		reachable = true
	}
	if mayskip {
		add(pre)
		// The body's looping-back state reaches the exit through the next
		// condition check.
		if bodyFalls {
			add(bodyOut)
		}
	}
	for _, s := range ctx.states {
		add(s)
	}
	if !reachable {
		return pre, false
	}
	return exit, true
}

// switchLike flows switch/type-switch/select clause bodies.
func (fl *wsFlow) switchLike(init ast.Stmt, bodies [][]ast.Stmt, hasDefault bool, st wsState) (wsState, bool) {
	if init != nil {
		st, _ = fl.stmt(init, st)
	}
	ctx := &wsBreakCtx{}
	fl.ctxs = append(fl.ctxs, ctx)
	var exit wsState
	falls := false
	for _, body := range bodies {
		out, f := fl.stmts(body, st.clone())
		if f {
			if exit == nil {
				exit = out
			} else {
				exit = merge(exit, out)
			}
			falls = true
		}
	}
	fl.ctxs = fl.ctxs[:len(fl.ctxs)-1]
	if !hasDefault {
		// No default: the switch can select no clause and fall through as-is.
		if exit == nil {
			exit = st.clone()
		} else {
			exit = merge(exit, st)
		}
		falls = true
	}
	for _, s := range ctx.states {
		if exit == nil {
			exit = s.clone()
		} else {
			exit = merge(exit, s)
		}
		falls = true
	}
	if !falls {
		return st, false
	}
	return exit, true
}

// clauseBodies returns the body of each case clause of a switch body.
func clauseBodies(body *ast.BlockStmt) [][]ast.Stmt {
	var bodies [][]ast.Stmt
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok {
			bodies = append(bodies, cc.Body)
		}
	}
	return bodies
}

// hasDefaultClause reports whether a switch body has a default clause.
func hasDefaultClause(body *ast.BlockStmt) bool {
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok && cc.List == nil {
			return true
		}
	}
	return false
}

// innermost returns the nearest breakable context (loopOnly restricts to
// loops, for continue).
func (fl *wsFlow) innermost(loopOnly bool) *wsBreakCtx {
	for i := len(fl.ctxs) - 1; i >= 0; i-- {
		if !loopOnly || fl.ctxs[i].isLoop {
			return fl.ctxs[i]
		}
	}
	return nil
}

// assign processes acquisitions, alias moves, transfers and releases on one
// assignment statement.
func (fl *wsFlow) assign(s *ast.AssignStmt, st wsState) wsState {
	// Pair lhs/rhs when the counts line up; `x, y := f()` has one rhs.
	pairwise := len(s.Lhs) == len(s.Rhs)
	for i, rhs := range s.Rhs {
		rhs = ast.Unparen(rhs)
		var lhs ast.Expr
		if pairwise {
			lhs = ast.Unparen(s.Lhs[i])
		}

		if call, ok := rhs.(*ast.CallExpr); ok && fl.isAcquire(call) {
			id, _ := lhs.(*ast.Ident)
			if id == nil || id.Name == "_" {
				fl.pass.Reportf(call.Pos(),
					"workspace checked out of the pool is not bound to a variable; release cannot be verified")
				continue
			}
			obj := fl.pass.ObjectOf(id)
			if obj == nil {
				continue
			}
			if prev, ok := st[obj]; ok {
				fl.pass.Reportf(call.Pos(),
					"workspace variable reassigned while the workspace acquired at line %d is still held",
					fl.pass.Mod.Fset.Position(prev).Line)
			}
			st[obj] = call.Pos()
			continue
		}

		// Alias move / escape of a tracked workspace appearing as the rhs.
		if id, ok := rhs.(*ast.Ident); ok {
			if obj := fl.pass.ObjectOf(id); obj != nil {
				if pos, held := st[obj]; held {
					if lid, ok := lhs.(*ast.Ident); ok && lid.Name != "_" {
						// Plain rename: ownership moves to the new variable.
						if newObj := fl.pass.ObjectOf(lid); newObj != nil {
							delete(st, obj)
							st[newObj] = pos
						}
					} else {
						// Stored into a field, element or blank: transferred.
						delete(st, obj)
					}
					continue
				}
			}
		}

		st = fl.transfers(rhs, st)
	}
	return st
}

// deferred handles a defer/go call: a direct release, or releases inside a
// deferred closure, settle the obligation for every path from here on.
func (fl *wsFlow) deferred(call *ast.CallExpr, st wsState) wsState {
	if obj := fl.releasedObj(call); obj != nil {
		delete(st, obj)
		return st
	}
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if c, ok := n.(*ast.CallExpr); ok {
				if obj := fl.releasedObj(c); obj != nil {
					delete(st, obj)
				}
			}
			return true
		})
	}
	return st
}

// transfers removes from st every tracked workspace that escapes through e
// into a composite literal (struct/slice/map element) — ownership follows
// the containing value.
func (fl *wsFlow) transfers(e ast.Expr, st wsState) wsState {
	if e == nil {
		return st
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if lit, ok := n.(*ast.CompositeLit); ok {
			fl.claimIdents(lit, st)
		}
		return true
	})
	return st
}

// claimIdents deletes every tracked workspace referenced by an identifier
// anywhere under n.
func (fl *wsFlow) claimIdents(n ast.Node, st wsState) {
	ast.Inspect(n, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := fl.pass.ObjectOf(id); obj != nil {
				delete(st, obj)
			}
		}
		return true
	})
}

// isAcquire reports whether call checks a workspace out of a pool:
// (*search.WorkspacePool).Get or search.AcquireWorkspace.
func (fl *wsFlow) isAcquire(call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if sel := fl.pass.Pkg.Info.Selections[fun]; sel != nil && sel.Kind() == types.MethodVal {
			return fun.Sel.Name == "Get" &&
				fl.pass.isNamed(sel.Recv(), "internal/search", "WorkspacePool")
		}
		// Package-qualified search.AcquireWorkspace.
		return fl.isAcquireFunc(fl.pass.ObjectOf(fun.Sel))
	case *ast.Ident:
		return fl.isAcquireFunc(fl.pass.ObjectOf(fun))
	}
	return false
}

func (fl *wsFlow) isAcquireFunc(obj types.Object) bool {
	fn, ok := obj.(*types.Func)
	return ok && fn.Name() == "AcquireWorkspace" && fn.Pkg() != nil &&
		fn.Pkg().Path() == fl.pass.Mod.Path+"/internal/search"
}

// releasedObj returns the workspace variable a call releases, or nil:
// pool.Put(w) returns w's object, w.Release() returns w's.
func (fl *wsFlow) releasedObj(call *ast.CallExpr) types.Object {
	fun, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	sel := fl.pass.Pkg.Info.Selections[fun]
	if sel == nil || sel.Kind() != types.MethodVal {
		return nil
	}
	switch {
	case fun.Sel.Name == "Put" && fl.pass.isNamed(sel.Recv(), "internal/search", "WorkspacePool"):
		if len(call.Args) == 1 {
			if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
				return fl.pass.ObjectOf(id)
			}
		}
	case fun.Sel.Name == "Release" && fl.pass.isNamed(sel.Recv(), "internal/search", "Workspace"):
		if id, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			return fl.pass.ObjectOf(id)
		}
	}
	return nil
}
