package analysis

import (
	"fmt"
	"path/filepath"
	"regexp"
	"sync"
	"testing"
)

// The testdata tree under testdata/src/opaque is loaded once — the source
// importer typechecks stdlib dependencies from GOROOT, which is the slow
// part — and shared by every assertion test.
var (
	testdataOnce sync.Once
	testdataMod  *Module
	testdataErr  error
)

func loadTestdata(t *testing.T) *Module {
	t.Helper()
	testdataOnce.Do(func() {
		testdataMod, testdataErr = LoadTree(filepath.Join("testdata", "src", "opaque"), "opaque")
	})
	if testdataErr != nil {
		t.Fatalf("loading testdata tree: %v", testdataErr)
	}
	return testdataMod
}

// wantRe matches one expectation comment: // want `regex`. The regex is
// matched against "[analyzer] message" of a finding on the same line.
var wantRe = regexp.MustCompile("// want `([^`]*)`")

type want struct {
	file string
	line int
	re   *regexp.Regexp
}

// collectWants scans every comment of the loaded tree for // want
// expectations.
func collectWants(t *testing.T, mod *Module) []want {
	t.Helper()
	var wants []want
	for _, pkg := range mod.Packages {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
						re, err := regexp.Compile(m[1])
						if err != nil {
							t.Fatalf("%s: bad want regex %q: %v", mod.Fset.Position(c.Pos()), m[1], err)
						}
						pos := mod.Fset.Position(c.Pos())
						wants = append(wants, want{file: pos.Filename, line: pos.Line, re: re})
					}
				}
			}
		}
	}
	return wants
}

// TestAnalyzersAgainstWants runs the whole suite over the testdata tree and
// requires an exact bipartite match between findings and // want
// expectations: every finding must be wanted, every want must be found.
// Waiver lines carry a violation but no want, so a broken waiver surfaces as
// an unexpected finding.
func TestAnalyzersAgainstWants(t *testing.T) {
	mod := loadTestdata(t)
	wants := collectWants(t, mod)
	if len(wants) == 0 {
		t.Fatal("no // want expectations collected from testdata")
	}

	findings := Run(mod, All())
	if len(findings) == 0 {
		t.Fatal("suite produced no findings over testdata")
	}

	unmatched := make([]bool, len(findings))
	for i := range unmatched {
		unmatched[i] = true
	}
	for _, w := range wants {
		matched := false
		for i, f := range findings {
			if !unmatched[i] || f.Pos.Filename != w.file || f.Pos.Line != w.line {
				continue
			}
			if w.re.MatchString(fmt.Sprintf("[%s] %s", f.Analyzer, f.Message)) {
				unmatched[i] = false
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s:%d: wanted finding matching %q, got none", w.file, w.line, w.re)
		}
	}
	for i, f := range findings {
		if unmatched[i] {
			t.Errorf("unexpected finding: %s", f)
		}
	}
}

// TestWaiversAreExercised guards the waiver fixtures themselves: each
// analyzer's testdata contains at least one //opaque:allow waiver, so the
// suppression path above is actually covered for all five.
func TestWaiversAreExercised(t *testing.T) {
	mod := loadTestdata(t)
	byAnalyzer := map[string]int{}
	for _, pkg := range mod.Packages {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					for _, m := range allowRe.FindAllStringSubmatch(c.Text, -1) {
						byAnalyzer[m[1]]++
					}
				}
			}
		}
	}
	for _, a := range All() {
		if byAnalyzer[a.Name] == 0 {
			t.Errorf("testdata has no //opaque:allow(%s) waiver fixture", a.Name)
		}
	}
}

// TestByName covers the -only name resolution.
func TestByName(t *testing.T) {
	got, err := ByName("wspool, noalloc")
	if err != nil {
		t.Fatalf("ByName: %v", err)
	}
	if len(got) != 2 || got[0].Name != "wspool" || got[1].Name != "noalloc" {
		t.Errorf("ByName returned %v", got)
	}
	if _, err := ByName("nosuch"); err == nil {
		t.Error("ByName accepted an unknown analyzer name")
	}
	if _, err := ByName(" , "); err == nil {
		t.Error("ByName accepted an empty list")
	}
}

// TestOnlySelectedAnalyzerRuns ensures Run respects the analyzer subset: a
// wspool-only run over testdata must produce no sentinelis findings.
func TestOnlySelectedAnalyzerRuns(t *testing.T) {
	mod := loadTestdata(t)
	only, err := ByName("wspool")
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range Run(mod, only) {
		if f.Analyzer != "wspool" {
			t.Errorf("wspool-only run produced %s", f)
		}
	}
}

// TestFindingString pins the canonical file:line: [name] message rendering
// the CI log and the waiver docs rely on.
func TestFindingString(t *testing.T) {
	f := Finding{Analyzer: "wspool", Message: "leak"}
	f.Pos.Filename = "a/b.go"
	f.Pos.Line = 7
	if got, wantStr := f.String(), "a/b.go:7: [wspool] leak"; got != wantStr {
		t.Errorf("Finding.String() = %q, want %q", got, wantStr)
	}
}

// TestTestdataPackagesLoaded guards the fixture layout: the loader must see
// one package per analyzer plus the three fakes.
func TestTestdataPackagesLoaded(t *testing.T) {
	mod := loadTestdata(t)
	for _, path := range []string{
		"opaque/internal/storage",
		"opaque/internal/search",
		"opaque/internal/protocol",
		"opaque/snapshotpin",
		"opaque/wspool",
		"opaque/noalloc",
		"opaque/framecase",
		"opaque/sentinelis",
	} {
		if mod.Lookup(path) == nil {
			t.Errorf("testdata package %s not loaded", path)
		}
	}
}
