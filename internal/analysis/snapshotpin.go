package analysis

import (
	"go/ast"
	"go/types"
)

// accessorMethods are the storage.Accessor methods. Calling one of them on a
// *storage.MutableGraph reads whatever snapshot is current at that instant —
// two such calls can straddle a concurrent weight update and observe
// different generations, which is exactly the mixed-generation-table bug the
// PR 5 snapshot discipline exists to prevent.
var accessorMethods = map[string]bool{
	"NumNodes":   true,
	"Arcs":       true,
	"ForEachArc": true,
	"Euclid":     true,
	"Graph":      true,
}

// SnapshotPin flags storage.Accessor method calls made directly on a
// *storage.MutableGraph outside the storage package itself. Evaluation code
// must pin one immutable view first — storage.SnapshotOf(m) or m.Snapshot()
// — and read through the snapshot, so everything it computes reflects one
// generation. Snapshot, UpdateWeights and Generation remain callable on the
// mutable value: they are the snapshot-discipline entry points, not reads.
var SnapshotPin = &Analyzer{
	Name: "snapshotpin",
	Doc:  "storage.Accessor reads on *storage.MutableGraph must go through storage.SnapshotOf / Snapshot",
	Run:  runSnapshotPin,
}

func runSnapshotPin(pass *Pass) {
	if pass.Pkg.Path == pass.Mod.Path+"/internal/storage" {
		return // the accessor's own implementation reads m.cur by design
	}
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			selection := pass.Pkg.Info.Selections[sel]
			if selection == nil || selection.Kind() != types.MethodVal {
				return true
			}
			if !accessorMethods[sel.Sel.Name] {
				return true
			}
			if !pass.isNamed(selection.Recv(), "internal/storage", "MutableGraph") {
				return true
			}
			pass.Reportf(call.Pos(),
				"%s called directly on *storage.MutableGraph; pin a snapshot first (storage.SnapshotOf) so the evaluation sees one generation",
				sel.Sel.Name)
			return true
		})
	}
}
