package analysis

import "testing"

// TestRepoIsClean runs the full suite over the repository itself — the same
// invocation CI makes via `go run ./cmd/opaque-vet ./...` — and asserts zero
// findings. Every invariant the suite enforces holds on the committed tree;
// a new violation fails this test before it fails CI.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("typechecks the whole module; skipped in -short mode")
	}
	mod, err := LoadModule("../..")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	findings := Run(mod, All())
	for _, f := range findings {
		t.Errorf("%s", f)
	}
	if len(findings) > 0 {
		t.Logf("%d finding(s); fix them or waive with //opaque:allow(<name>) plus a justifying comment", len(findings))
	}
}
