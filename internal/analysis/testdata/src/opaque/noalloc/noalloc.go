// Package noalloc exercises the noalloc analyzer: functions annotated
// //opaque:noalloc must contain no allocating constructs.
package noalloc

import "fmt"

type rec struct{ a, b int }

//opaque:noalloc
func bad(xs []int, m map[int]int, s string) int {
	ys := make([]int, 4) // want `\[noalloc\] make allocates in //opaque:noalloc function bad`
	_ = ys
	p := new(rec) // want `\[noalloc\] new allocates in //opaque:noalloc function bad`
	_ = p
	q := &rec{a: 1} // want `\[noalloc\] &rec\{\} literal allocates in //opaque:noalloc function bad`
	_ = q
	sl := []int{1, 2} // want `\[noalloc\] slice literal allocates in //opaque:noalloc function bad`
	_ = sl
	mp := map[int]int{} // want `\[noalloc\] map literal allocates in //opaque:noalloc function bad`
	_ = mp
	xs = append(xs, 1) // want `\[noalloc\] append allocates in //opaque:noalloc function bad`
	fmt.Println(s)     // want `\[noalloc\] fmt\.Println allocates in //opaque:noalloc function bad`
	t := s + "!"       // want `\[noalloc\] string concatenation allocates in //opaque:noalloc function bad`
	_ = t
	m[1] = 2       // want `\[noalloc\] map write may allocate in //opaque:noalloc function bad`
	b := []byte(s) // want `\[noalloc\] \[\]byte conversion allocates in //opaque:noalloc function bad`
	_ = b
	f := func() {} // want `\[noalloc\] closure allocates in //opaque:noalloc function bad`
	_ = f
	return len(xs)
}

//opaque:noalloc
func badConcatAssign(s, suffix string) string {
	s += suffix // want `\[noalloc\] string concatenation allocates in //opaque:noalloc function badConcatAssign`
	return s
}

//opaque:noalloc
func good(xs []int, w rec) int {
	// Struct and array value literals live on the stack: not flagged.
	v := rec{a: 1, b: 2}
	var arr [4]int
	for i := range arr {
		arr[i] = xs[0] + v.a + w.b
	}
	xs[0] = arr[1] // slice element write: no allocation
	return arr[0]
}

//opaque:noalloc
func (r *rec) goodMethod(xs []int) int {
	r.a = xs[0]
	return r.a + r.b
}

func unannotated() []int {
	// No annotation, no check.
	return make([]int, 8)
}

//opaque:noalloc
func waived(s string) []byte {
	//opaque:allow(noalloc) cold error path: runs only when the frame is already rejected
	return []byte(s)
}
