// Package search is a miniature stand-in for the real internal/search: the
// pooled Workspace and its checkout/return surface, which the wspool
// analyzer matches by package path and type name, plus one module sentinel
// for the sentinelis tests.
package search

import "errors"

// ErrStaleEngine mirrors the real module sentinel of the same name.
var ErrStaleEngine = errors.New("engine snapshot is stale")

// Workspace is a pooled scratch buffer.
type Workspace struct{ n int }

// Release returns the workspace to its pool.
func (w *Workspace) Release() {}

// Resize is a borrowing method: calling it does not move ownership.
func (w *Workspace) Resize(n int) { w.n = n }

// WorkspacePool checks workspaces out and back in.
type WorkspacePool struct{}

func (p *WorkspacePool) Get(n int) *Workspace { return &Workspace{n: n} }
func (p *WorkspacePool) Put(w *Workspace)     {}

// AcquireWorkspace checks a workspace out of the package-level pool.
func AcquireWorkspace(n int) *Workspace { return &Workspace{n: n} }
