// Package protocol is a miniature stand-in for the real internal/protocol:
// the FrameType enumeration the framecase analyzer checks switches against,
// and one frame-level sentinel for the sentinelis tests.
package protocol

import "errors"

// ErrFrameTooLarge mirrors the real module's frame errors.
var ErrFrameTooLarge = errors.New("frame exceeds size limit")

// FrameType tags each frame of the wire protocol.
type FrameType uint8

// The declared frame types. The framecase analyzer requires every switch
// over FrameType to handle all four or carry a default clause.
const (
	FrameHello FrameType = iota + 1
	FrameMsg
	FrameErr
	FramePing
)
