// Package storage is a miniature stand-in for the real internal/storage,
// carrying just enough surface for the analyzer tests: the Accessor read
// interface, the atomically swapped MutableGraph and the SnapshotOf pin
// helper. The snapshotpin analyzer matches these by package path and type
// name, so the testdata tree is loaded under the same pseudo-module path
// "opaque" as the real module.
package storage

// Graph is the immutable topology a snapshot exposes.
type Graph struct{ N int }

// Accessor is the read interface evaluation code sees.
type Accessor interface {
	NumNodes() int
	Arcs(v int32) []int32
	ForEachArc(v int32, fn func(int32))
	Euclid(a, b int32) float64
	Graph() *Graph
}

// GraphSnapshot is one pinned generation.
type GraphSnapshot struct{ g *Graph }

func (s *GraphSnapshot) NumNodes() int                      { return s.g.N }
func (s *GraphSnapshot) Arcs(v int32) []int32               { return nil }
func (s *GraphSnapshot) ForEachArc(v int32, fn func(int32)) {}
func (s *GraphSnapshot) Euclid(a, b int32) float64          { return 0 }
func (s *GraphSnapshot) Graph() *Graph                      { return s.g }

// MutableGraph swaps snapshots under concurrent weight updates.
type MutableGraph struct{ cur *GraphSnapshot }

func (m *MutableGraph) NumNodes() int                      { return m.cur.NumNodes() }
func (m *MutableGraph) Arcs(v int32) []int32               { return m.cur.Arcs(v) }
func (m *MutableGraph) ForEachArc(v int32, fn func(int32)) { m.cur.ForEachArc(v, fn) }
func (m *MutableGraph) Euclid(a, b int32) float64          { return m.cur.Euclid(a, b) }
func (m *MutableGraph) Graph() *Graph                      { return m.cur.Graph() }

// Snapshot, Generation and UpdateWeights are the snapshot-discipline entry
// points; calling them on the mutable value is the point.
func (m *MutableGraph) Snapshot() *GraphSnapshot { return m.cur }
func (m *MutableGraph) Generation() uint64       { return 0 }
func (m *MutableGraph) UpdateWeights(gen uint64) {}

// Snapshotter pins mutable accessors.
type Snapshotter interface{ Snapshot() *GraphSnapshot }

// SnapshotOf returns a pinned view of acc.
func SnapshotOf(acc Accessor) Accessor {
	if s, ok := acc.(Snapshotter); ok {
		return s.Snapshot()
	}
	return acc
}
