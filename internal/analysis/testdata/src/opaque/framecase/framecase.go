// Package framecase exercises the framecase analyzer: switches over
// protocol.FrameType must handle every declared Frame* constant or carry a
// default clause.
package framecase

import "opaque/internal/protocol"

func bad(t protocol.FrameType) int {
	switch t { // want `\[framecase\] switch on protocol\.FrameType does not handle FrameErr, FramePing and has no default`
	case protocol.FrameHello:
		return 1
	case protocol.FrameMsg:
		return 2
	}
	return 0
}

func exhaustive(t protocol.FrameType) int {
	switch t {
	case protocol.FrameHello, protocol.FrameMsg:
		return 1
	case protocol.FrameErr:
		return 2
	case protocol.FramePing:
		return 3
	}
	return 0
}

func defaulted(t protocol.FrameType) int {
	switch t {
	case protocol.FrameHello:
		return 1
	default:
		return 0
	}
}

func otherSwitch(n int) int {
	// Switches over other types are out of scope.
	switch n {
	case 1:
		return 1
	}
	return 0
}

func waived(t protocol.FrameType) int {
	//opaque:allow(framecase) handshake dispatch: post-hello frames are handled by the stream loop
	switch t {
	case protocol.FrameHello:
		return 1
	}
	return 0
}
