// Package snapshotpin exercises the snapshotpin analyzer: storage.Accessor
// reads on a *storage.MutableGraph must go through a pinned snapshot.
package snapshotpin

import "opaque/internal/storage"

func bad(m *storage.MutableGraph) int {
	n := m.NumNodes() // want `\[snapshotpin\] NumNodes called directly on \*storage\.MutableGraph`
	g := m.Graph()    // want `\[snapshotpin\] Graph called directly on \*storage\.MutableGraph`
	_ = g
	m.ForEachArc(0, func(int32) {}) // want `\[snapshotpin\] ForEachArc called directly on \*storage\.MutableGraph`
	if m.Euclid(0, 1) > 0 {         // want `\[snapshotpin\] Euclid called directly on \*storage\.MutableGraph`
		n++
	}
	return n
}

func good(m *storage.MutableGraph) int {
	snap := storage.SnapshotOf(m)
	n := snap.NumNodes()
	pinned := m.Snapshot() // Snapshot is the pin, not a read: allowed.
	_ = pinned.Graph()
	_ = m.Generation() // generation bookkeeping, not an accessor read
	m.UpdateWeights(1) // the write path stays on the mutable value
	return n
}

func goodViaAccessor(acc storage.Accessor) int {
	// Reads through the Accessor interface are fine: the analyzer targets
	// the concrete mutable type, where the generation can move underfoot.
	return acc.NumNodes()
}

func waived(m *storage.MutableGraph) int {
	// A justified direct read stays silent under a waiver.
	return m.NumNodes() //opaque:allow(snapshotpin) single monotone read; generation skew is harmless here
}
