// Package sentinelis exercises the sentinelis analyzer: module error
// sentinels must be matched with errors.Is and wrapped with %w.
package sentinelis

import (
	"errors"
	"fmt"
	"io"

	"opaque/internal/protocol"
	"opaque/internal/search"
)

// ErrLocal is a package-local module sentinel.
var ErrLocal = errors.New("local failure")

func badCompare(err error) bool {
	if err == search.ErrStaleEngine { // want `\[sentinelis\] comparison with sentinel ErrStaleEngine using == misses wrapped errors`
		return true
	}
	if err != ErrLocal { // want `\[sentinelis\] comparison with sentinel ErrLocal using != misses wrapped errors`
		return false
	}
	return false
}

func badSwitch(err error) int {
	switch err {
	case search.ErrStaleEngine: // want `\[sentinelis\] switch case compares error against sentinel ErrStaleEngine by identity`
		return 1
	case protocol.ErrFrameTooLarge: // want `\[sentinelis\] switch case compares error against sentinel ErrFrameTooLarge by identity`
		return 2
	default:
		return 0
	}
}

func badWrap() error {
	return fmt.Errorf("refresh failed: %v", search.ErrStaleEngine) // want `\[sentinelis\] sentinel ErrStaleEngine wrapped with %v loses the error chain`
}

func badWrapSecondArg(gen uint64) error {
	return fmt.Errorf("generation %d: %s", gen, ErrLocal) // want `\[sentinelis\] sentinel ErrLocal wrapped with %s loses the error chain`
}

func good(err error, gen uint64) error {
	if errors.Is(err, search.ErrStaleEngine) {
		return fmt.Errorf("generation %d: %w", gen, search.ErrStaleEngine)
	}
	if err == io.EOF { // stdlib identity: out of scope by design
		return nil
	}
	return err
}

func goodNonSentinel(err, other error) bool {
	// Comparing two plain error values is not a sentinel check.
	return err == other
}

func waived(err error) bool {
	//opaque:allow(sentinelis) identity intended: this sentinel is never wrapped on this path
	return err == ErrLocal
}
