// Package wspool exercises the wspool analyzer: every workspace checked out
// of the pool must be returned (Put/Release) on all paths, or its ownership
// explicitly transferred.
package wspool

import "opaque/internal/search"

var pool search.WorkspacePool

func use(w *search.Workspace) {}

// holder models the TreeCache pattern: a struct that keeps a workspace.
type holder struct{ ws *search.Workspace }

func earlyReturnLeak(n int) int {
	w := pool.Get(n)
	if n < 0 {
		return 0 // want `\[wspool\] workspace acquired at line \d+ is still held when earlyReturnLeak exits here`
	}
	w.Release()
	return n
}

func fallOffEndLeak(n int) {
	w := pool.Get(n)
	use(w)
} // want `\[wspool\] workspace acquired at line \d+ is still held when fallOffEndLeak exits here`

func droppedOnFloor(n int) {
	pool.Get(n) // want `\[wspool\] workspace checked out of the pool is dropped on the floor`
}

func blankBound(n int) {
	_ = pool.Get(n) // want `\[wspool\] workspace checked out of the pool is not bound to a variable`
}

func reassignedWhileHeld(n int) {
	w := pool.Get(n)
	w = pool.Get(n + 1) // want `\[wspool\] workspace variable reassigned while the workspace acquired at line \d+ is still held`
	w.Release()
}

func acquireFuncLeak(n int) {
	w := search.AcquireWorkspace(n)
	use(w)
} // want `\[wspool\] workspace acquired at line \d+ is still held when acquireFuncLeak exits here`

func breakLeak(items []int) {
	for _, it := range items {
		w := pool.Get(it)
		if it > 3 {
			break
		}
		w.Release()
	}
} // want `\[wspool\] workspace acquired at line \d+ is still held when breakLeak exits here`

func goodDeferredRelease(n int) int {
	w := pool.Get(n)
	defer w.Release()
	use(w)
	return n
}

func goodDeferredPut(n int) int {
	w := pool.Get(n)
	defer pool.Put(w)
	return n
}

func goodDeferClosure(n int) {
	w := pool.Get(n)
	defer func() { w.Release() }()
	use(w)
}

func goodBranches(n int) {
	w := pool.Get(n)
	if n > 0 {
		pool.Put(w)
	} else {
		w.Release()
	}
}

func goodHandoff(n int) *search.Workspace {
	// Returning the workspace transfers ownership to the caller.
	w := pool.Get(n)
	return w
}

func goodTransferToStruct(n int) *holder {
	// Storing into a composite transfers ownership to the holder.
	w := pool.Get(n)
	return &holder{ws: w}
}

func goodAliasMove(n int) {
	w := pool.Get(n)
	v := w
	v.Release()
}

func goodChannelSend(n int, ch chan *search.Workspace) {
	// Sending on a channel hands the workspace to the receiver.
	w := pool.Get(n)
	ch <- w
}

func waivedLeak(n int) {
	w := pool.Get(n)
	use(w)
	//opaque:allow(wspool) deliberately leaked: the process exits right after this benchmark probe
}
