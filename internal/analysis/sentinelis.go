package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
)

// Sentinelis flags error-identity checks that break under wrapping. The
// module's error contract (PR 5's ErrStaleEngine/ErrEmptyQuery, the fleet's
// ErrGenerationSkew/ErrQuorumNotReached, the OPMX1 frame errors) wraps every
// sentinel with fmt.Errorf("%w: detail", ...) as it crosses layers, so
//
//   - comparing err against a sentinel with == or != (including switch
//     cases over an error value) misses every wrapped occurrence: callers
//     must use errors.Is;
//   - wrapping a sentinel with a verb other than %w strips it from the
//     chain, so downstream errors.Is checks stop matching.
//
// A sentinel here is any package-level `var Err… error` declared in this
// module; stdlib identities like io.EOF (compared unwrapped by the
// io.Reader contract) are deliberately out of scope.
var Sentinelis = &Analyzer{
	Name: "sentinelis",
	Doc:  "module error sentinels must be matched with errors.Is and wrapped with %w",
	Run:  runSentinelis,
}

func runSentinelis(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				for _, side := range []ast.Expr{n.X, n.Y} {
					if name, ok := pass.sentinelRef(side); ok {
						pass.Reportf(n.Pos(),
							"comparison with sentinel %s using %s misses wrapped errors; use errors.Is", name, n.Op)
					}
				}
			case *ast.SwitchStmt:
				pass.checkErrorSwitch(n)
			case *ast.CallExpr:
				pass.checkErrorfWrap(n)
			}
			return true
		})
	}
}

// sentinelRef reports whether e is a direct reference to a module error
// sentinel, returning its display name.
func (p *Pass) sentinelRef(e ast.Expr) (string, bool) {
	var id *ast.Ident
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return "", false
	}
	obj := p.ObjectOf(id)
	if obj == nil || !p.moduleSentinel(obj) {
		return "", false
	}
	return obj.Name(), true
}

// checkErrorSwitch flags `switch err { case ErrFoo: }`, the == comparison in
// switch clothing.
func (p *Pass) checkErrorSwitch(sw *ast.SwitchStmt) {
	if sw.Tag == nil {
		return
	}
	tagType := p.TypeOf(sw.Tag)
	if tagType == nil {
		return
	}
	errType := types.Universe.Lookup("error").Type()
	if !types.AssignableTo(tagType, errType) {
		return
	}
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			if name, ok := p.sentinelRef(e); ok {
				p.Reportf(e.Pos(),
					"switch case compares error against sentinel %s by identity; use if errors.Is(err, %s)", name, name)
			}
		}
	}
}

// checkErrorfWrap flags fmt.Errorf calls that pass a module sentinel under a
// verb other than %w.
func (p *Pass) checkErrorfWrap(call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	obj := p.ObjectOf(sel.Sel)
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" || fn.Name() != "Errorf" || len(call.Args) < 2 {
		return
	}
	tv, ok := p.Pkg.Info.Types[call.Args[0]]
	if !ok || tv.Value == nil {
		return // non-constant format: nothing to line verbs up against
	}
	format, err := strconv.Unquote(tv.Value.ExactString())
	if err != nil {
		return
	}
	verbs, ok := formatVerbs(format)
	if !ok {
		return // explicit argument indexes etc.: too clever to line up
	}
	for i, arg := range call.Args[1:] {
		name, isSentinel := p.sentinelRef(arg)
		if !isSentinel {
			continue
		}
		if i >= len(verbs) {
			continue // vet already complains about missing verbs
		}
		if verbs[i] != 'w' {
			p.Reportf(arg.Pos(),
				"sentinel %s wrapped with %%%c loses the error chain; use %%w so errors.Is keeps matching", name, verbs[i])
		}
	}
}

// formatVerbs extracts the verb letter for each argument of a format string,
// in argument order. It reports !ok for formats using explicit argument
// indexes (%[1]v), which do not line up positionally.
func formatVerbs(format string) ([]byte, bool) {
	var verbs []byte
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		// Skip flags, width and precision.
		for i < len(format) {
			c := format[i]
			if c == '[' {
				return nil, false
			}
			if (c >= '0' && c <= '9') || c == '+' || c == '-' || c == '#' || c == ' ' || c == '.' {
				i++
				continue
			}
			break
		}
		if i >= len(format) {
			break
		}
		if format[i] == '%' {
			continue // literal %%, consumes no argument
		}
		if format[i] == '*' {
			verbs = append(verbs, '*') // width argument
			i++
			if i < len(format) && format[i] != '%' {
				verbs = append(verbs, format[i])
			}
			continue
		}
		verbs = append(verbs, format[i])
	}
	return verbs, true
}
