package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// FrameCase flags switch statements over protocol.FrameType that neither
// handle every declared Frame* constant nor carry a default clause. PR 9
// added FramePing/FramePong and every switch in mux.go had to be found and
// audited by hand; this analyzer makes the next frame type a compile-gate
// instead of a hunt.
var FrameCase = &Analyzer{
	Name: "framecase",
	Doc:  "switches over protocol.FrameType must handle every Frame* constant or have a default",
	Run:  runFrameCase,
}

func runFrameCase(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			tagType := pass.TypeOf(sw.Tag)
			if tagType == nil || !pass.isNamed(tagType, "internal/protocol", "FrameType") {
				return true
			}
			named := namedType(tagType)
			declared := declaredFrameConsts(named)

			handled := map[string]bool{} // by exact constant value
			hasDefault := false
			for _, stmt := range sw.Body.List {
				cc, ok := stmt.(*ast.CaseClause)
				if !ok {
					continue
				}
				if cc.List == nil {
					hasDefault = true
					continue
				}
				for _, e := range cc.List {
					if tv, ok := pass.Pkg.Info.Types[e]; ok && tv.Value != nil {
						handled[tv.Value.ExactString()] = true
					}
				}
			}
			if hasDefault {
				return true
			}
			var missing []string
			for _, c := range declared {
				if !handled[c.value] {
					missing = append(missing, c.name)
				}
			}
			if len(missing) > 0 {
				pass.Reportf(sw.Pos(),
					"switch on protocol.FrameType does not handle %s and has no default",
					strings.Join(missing, ", "))
			}
			return true
		})
	}
}

// frameConst is one declared frame-type constant, keyed by its exact value
// so aliases of the same value (none today) would count as one case.
type frameConst struct {
	name  string
	value string
}

// declaredFrameConsts lists the exported constants of the FrameType type
// from its declaring package, one per distinct value, in value order.
func declaredFrameConsts(named *types.Named) []frameConst {
	scope := named.Obj().Pkg().Scope()
	seen := map[string]bool{}
	var consts []frameConst
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !c.Exported() || !types.Identical(c.Type(), named) {
			continue
		}
		v := c.Val().ExactString()
		if seen[v] {
			continue
		}
		seen[v] = true
		consts = append(consts, frameConst{name: name, value: v})
	}
	sort.Slice(consts, func(i, j int) bool {
		a, _ := constant.Int64Val(constant.MakeFromLiteral(consts[i].value, token.INT, 0))
		b, _ := constant.Int64Val(constant.MakeFromLiteral(consts[j].value, token.INT, 0))
		return a < b
	})
	return consts
}
