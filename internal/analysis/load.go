package analysis

// This file is the suite's package loader: a stdlib-only substitute for
// golang.org/x/tools/go/packages, good enough for one module with no
// external dependencies. It walks the module tree, parses every non-test
// .go file, topologically sorts the module-internal import graph and
// typechecks each package with go/types. Standard-library imports are
// resolved by the source importer (go/importer "source" mode), which
// typechecks the stdlib from GOROOT sources — slower than export data but
// requiring no toolchain cooperation and no third-party code.
//
// Test files (_test.go) and testdata/ trees are deliberately out of scope:
// the invariants the suite enforces are about serving code, and external
// test packages would complicate single-pass typechecking for no analyzer
// coverage the runtime test suite does not already provide.

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one typechecked package of the module under analysis.
type Package struct {
	// Path is the package's import path (module path + relative directory).
	Path string
	// Dir is the directory the package's files live in.
	Dir string
	// Files are the parsed non-test files, sorted by file name.
	Files []*ast.File
	// Types and Info carry the go/types results for the files.
	Types *types.Package
	Info  *types.Info
}

// Module is the loaded analysis universe: every package of one module,
// typechecked, in dependency order.
type Module struct {
	// Path is the module path from go.mod (or the pseudo-module path a test
	// harness loads a file tree under).
	Path string
	// Dir is the module root directory.
	Dir string
	// Fset positions every parsed file (including stdlib sources pulled in
	// by the source importer).
	Fset *token.FileSet
	// Packages holds every loaded package in topological (dependency-first)
	// order.
	Packages []*Package

	byPath map[string]*Package
}

// Lookup returns the loaded package with the given import path, or nil.
func (m *Module) Lookup(path string) *Package { return m.byPath[path] }

// LoadModule locates go.mod in dir, reads the module path from it and loads
// every package under dir.
func LoadModule(dir string) (*Module, error) {
	data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("analysis: reading go.mod: %w", err)
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("analysis: no module directive in %s/go.mod", dir)
	}
	return LoadTree(dir, modPath)
}

// LoadTree loads every package in the file tree rooted at dir, treating dir
// as the root of a module named modPath. The analyzer tests use it to load
// testdata trees under a pseudo-module path.
func LoadTree(dir, modPath string) (*Module, error) {
	// The source importer typechecks stdlib packages from GOROOT source via
	// go/build; with cgo enabled it would try to run the C preprocessor on
	// packages like net. The pure-Go fallbacks typecheck identically for
	// analysis purposes, so force them.
	build.Default.CgoEnabled = false

	dirs, err := packageDirs(dir)
	if err != nil {
		return nil, err
	}
	mod := &Module{
		Path:   modPath,
		Dir:    dir,
		Fset:   token.NewFileSet(),
		byPath: make(map[string]*Package),
	}

	var all []*parsedPkg
	for _, d := range dirs {
		p, err := parsePackage(mod, d)
		if err != nil {
			return nil, err
		}
		if p == nil {
			continue // no buildable non-test files
		}
		deps := map[string]bool{}
		for _, f := range p.pkg.Files {
			for _, imp := range f.Imports {
				path := strings.Trim(imp.Path.Value, `"`)
				if path == modPath || strings.HasPrefix(path, modPath+"/") {
					deps[path] = true
				}
			}
		}
		for d := range deps {
			p.imports = append(p.imports, d)
		}
		sort.Strings(p.imports)
		all = append(all, p)
	}

	order, err := topoSort(all, func(p *parsedPkg) (string, []string) { return p.pkg.Path, p.imports })
	if err != nil {
		return nil, err
	}

	imp := &chainImporter{
		mod: mod,
		std: importer.ForCompiler(mod.Fset, "source", nil),
	}
	for _, p := range order {
		if err := typecheck(mod, p.pkg, imp); err != nil {
			return nil, err
		}
		mod.Packages = append(mod.Packages, p.pkg)
		mod.byPath[p.pkg.Path] = p.pkg
	}
	return mod, nil
}

// packageDirs returns every directory under root that may hold a package,
// skipping VCS metadata, vendor trees, testdata trees and hidden entries.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("analysis: walking %s: %w", root, err)
	}
	sort.Strings(dirs)
	return dirs, nil
}

// parsedPkg pairs a parsed-but-not-yet-typechecked package with its
// module-internal imports, the edges the topological sort orders by.
type parsedPkg struct {
	pkg     *Package
	imports []string
}

// parsePackage parses the non-test files of one directory. It returns nil
// when the directory holds no buildable Go files.
func parsePackage(mod *Module, dir string) (*parsedPkg, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: reading %s: %w", dir, err)
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	if len(names) == 0 {
		return nil, nil
	}
	sort.Strings(names)

	rel, err := filepath.Rel(mod.Dir, dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: %w", err)
	}
	importPath := mod.Path
	if rel != "." {
		importPath = mod.Path + "/" + filepath.ToSlash(rel)
	}

	p := &Package{Path: importPath, Dir: dir}
	for _, name := range names {
		f, err := parser.ParseFile(mod.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		p.Files = append(p.Files, f)
	}
	return &parsedPkg{pkg: p}, nil
}

// topoSort orders items dependency-first, failing on import cycles.
func topoSort[T any](items []T, key func(T) (string, []string)) ([]T, error) {
	byPath := make(map[string]T, len(items))
	for _, it := range items {
		p, _ := key(it)
		byPath[p] = it
	}
	const (
		unvisited = 0
		visiting  = 1
		done      = 2
	)
	state := make(map[string]int, len(items))
	var order []T
	var visit func(path string) error
	visit = func(path string) error {
		switch state[path] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("analysis: import cycle through %s", path)
		}
		state[path] = visiting
		it, ok := byPath[path]
		if !ok {
			// An internal import of a directory with no buildable files would
			// already have failed typechecking; nothing to order here.
			state[path] = done
			return nil
		}
		_, deps := key(it)
		for _, d := range deps {
			if err := visit(d); err != nil {
				return err
			}
		}
		state[path] = done
		order = append(order, it)
		return nil
	}
	var paths []string
	for p := range byPath {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// chainImporter resolves module-internal imports to already-typechecked
// packages (the loader works in dependency order, so they are ready) and
// hands everything else — the standard library — to the source importer.
type chainImporter struct {
	mod *Module
	std types.Importer
}

// Import implements types.Importer.
func (ci *chainImporter) Import(path string) (*types.Package, error) {
	if path == ci.mod.Path || strings.HasPrefix(path, ci.mod.Path+"/") {
		if p := ci.mod.Lookup(path); p != nil {
			return p.Types, nil
		}
		return nil, fmt.Errorf("analysis: internal import %q not loaded", path)
	}
	return ci.std.Import(path)
}

// typecheck runs go/types over one parsed package.
func typecheck(mod *Module, p *Package, imp types.Importer) error {
	conf := types.Config{Importer: imp}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	tp, err := conf.Check(p.Path, mod.Fset, p.Files, info)
	if err != nil {
		return fmt.Errorf("analysis: typechecking %s: %w", p.Path, err)
	}
	p.Types = tp
	p.Info = info
	return nil
}
