// Package analysis is opaque-vet: a project-specific static-analysis suite
// that machine-checks the invariants the hot-path and fault-tolerance work
// left behind — snapshot pinning on mutable graphs, workspace pool hygiene,
// zero-allocation kernels, exhaustive frame-type switches and errors.Is on
// typed sentinels. Each analyzer is documented in docs/LINTS.md; the suite
// runs in CI (`go run ./cmd/opaque-vet ./...`) next to go vet and
// staticcheck, and must stay clean on every PR.
//
// The suite is deliberately stdlib-only (go/parser + go/types with the
// source importer, see load.go): the module has no dependencies and the
// linters must not be the first.
//
// A finding can be waived line by line with a justifying comment:
//
//	//opaque:allow(wspool) ownership moves to the cache entry below
//
// The waiver names the analyzer and covers the line it is written on and
// the line immediately below it, so it works both as a trailing comment on
// the offending line and as a comment of its own directly above it.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one named invariant check over a typechecked package.
type Analyzer struct {
	// Name tags findings ([name]) and is the argument of -only and of
	// //opaque:allow(name) waivers.
	Name string
	// Doc is a one-line description shown by opaque-vet -list.
	Doc string
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass)
}

// Pass carries one analyzer's view of one package plus the report sink.
type Pass struct {
	Analyzer *Analyzer
	Mod      *Module
	Pkg      *Package

	report func(Finding)
}

// Reportf records one finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Finding{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Mod.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of e, or nil when the typechecker recorded none.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Pkg.Info.TypeOf(e) }

// ObjectOf resolves id to the object it uses or defines, or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object { return p.Pkg.Info.ObjectOf(id) }

// Finding is one reported invariant violation.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the finding in the suite's canonical file:line form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Analyzer, f.Message)
}

// All returns the suite: every analyzer, in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		SnapshotPin,
		WSPool,
		NoAlloc,
		FrameCase,
		Sentinelis,
	}
}

// ByName resolves a comma-separated analyzer name list against the suite.
func ByName(names string) ([]*Analyzer, error) {
	byName := map[string]*Analyzer{}
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("analysis: unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("analysis: empty analyzer list %q", names)
	}
	return out, nil
}

// allowRe matches one waiver comment; the group is the comma-separated
// analyzer name list.
var allowRe = regexp.MustCompile(`opaque:allow\(([^)]*)\)`)

// waivers maps file name → line → analyzer names waived on that line.
type waivers map[string]map[int]map[string]bool

// collect registers every //opaque:allow comment of f.
func (w waivers) collect(fset *token.FileSet, f *ast.File) {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			for _, m := range allowRe.FindAllStringSubmatch(c.Text, -1) {
				pos := fset.Position(c.Pos())
				end := fset.Position(c.End())
				byLine := w[pos.Filename]
				if byLine == nil {
					byLine = map[int]map[string]bool{}
					w[pos.Filename] = byLine
				}
				// The waiver covers its own line(s) and the line below the
				// comment, so it works trailing and standalone-above alike.
				for line := pos.Line; line <= end.Line+1; line++ {
					names := byLine[line]
					if names == nil {
						names = map[string]bool{}
						byLine[line] = names
					}
					for _, name := range strings.Split(m[1], ",") {
						names[strings.TrimSpace(name)] = true
					}
				}
			}
		}
	}
}

// allowed reports whether a finding is waived.
func (w waivers) allowed(f Finding) bool {
	return w[f.Pos.Filename][f.Pos.Line][f.Analyzer]
}

// Run applies the analyzers to every package of the module and returns the
// surviving (non-waived) findings, sorted by position.
func Run(mod *Module, analyzers []*Analyzer) []Finding {
	w := waivers{}
	for _, pkg := range mod.Packages {
		for _, f := range pkg.Files {
			w.collect(mod.Fset, f)
		}
	}
	var findings []Finding
	for _, pkg := range mod.Packages {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Mod:      mod,
				Pkg:      pkg,
				report: func(f Finding) {
					if !w.allowed(f) {
						findings = append(findings, f)
					}
				},
			}
			a.Run(pass)
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Message < b.Message
	})
	return findings
}

// --- shared type-inspection helpers used by several analyzers ---

// namedType unwraps pointers and aliases and returns the named type of t,
// or nil when t has none.
func namedType(t types.Type) *types.Named {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Alias:
			t = types.Unalias(tt)
		case *types.Named:
			return tt
		default:
			return nil
		}
	}
}

// isNamed reports whether t (through pointers) is the named type
// modulePath-relative pkgSuffix.name — e.g. ("internal/storage",
// "MutableGraph"). Matching is done against the module path of the pass so
// the testdata trees, loaded under the same pseudo-module path, match too.
func (p *Pass) isNamed(t types.Type, pkgSuffix, name string) bool {
	n := namedType(t)
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Name() == name && n.Obj().Pkg().Path() == p.Mod.Path+"/"+pkgSuffix
}

// moduleSentinel reports whether obj is a package-level error variable named
// Err* declared inside the module under analysis.
func (p *Pass) moduleSentinel(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil {
		return false
	}
	if v.Parent() != v.Pkg().Scope() {
		return false
	}
	if !strings.HasPrefix(v.Name(), "Err") {
		return false
	}
	path := v.Pkg().Path()
	if path != p.Mod.Path && !strings.HasPrefix(path, p.Mod.Path+"/") {
		return false
	}
	errType := types.Universe.Lookup("error").Type()
	return types.AssignableTo(v.Type(), errType)
}

// funcNoalloc reports whether a function declaration carries the
// //opaque:noalloc annotation in its doc comment.
func funcNoalloc(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.HasPrefix(strings.TrimSpace(strings.TrimPrefix(c.Text, "//")), "opaque:noalloc") {
			return true
		}
	}
	return false
}

// declName renders a function declaration's name including any receiver,
// for findings ("(*Workspace).expand").
func declName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	recv := fd.Recv.List[0].Type
	var b strings.Builder
	if star, ok := recv.(*ast.StarExpr); ok {
		b.WriteString("(*")
		writeTypeName(&b, star.X)
		b.WriteString(")")
	} else {
		writeTypeName(&b, recv)
	}
	b.WriteString(".")
	b.WriteString(fd.Name.Name)
	return b.String()
}

// writeTypeName renders the identifier core of a receiver type expression.
func writeTypeName(b *strings.Builder, e ast.Expr) {
	switch t := e.(type) {
	case *ast.Ident:
		b.WriteString(t.Name)
	case *ast.IndexExpr: // generic receiver
		writeTypeName(b, t.X)
	case *ast.IndexListExpr:
		writeTypeName(b, t.X)
	default:
		b.WriteString("?")
	}
}
