package analysis

import (
	"go/ast"
	"go/types"
)

// NoAlloc flags allocating constructs inside functions annotated
// //opaque:noalloc. The annotation marks the measured zero-allocation hot
// paths — the workspace search kernels, the MTM sweep loops, the OPMX1
// frame encode/decode — whose 0 allocs/op property the benchmarks pin; the
// analyzer makes the property reviewable at the call site instead of only
// falsifiable by running the benchmark.
//
// Flagged constructs, each of which allocates (or may allocate) on every
// execution: make and new, &composite{} literals, slice and map composite
// literals, append, closures (func literals), calls into package fmt,
// string concatenation (+ and +=), map writes, and string<->[]byte/[]rune
// conversions. Struct and array *value* literals are not flagged — they
// live in registers or on the stack.
//
// The check is intraprocedural: a call to an allocating helper is not
// followed. Error paths that allocate only when the invariant they report
// is already broken are waived per line with //opaque:allow(noalloc) and a
// justifying comment.
var NoAlloc = &Analyzer{
	Name: "noalloc",
	Doc:  "functions annotated //opaque:noalloc must contain no allocating constructs",
	Run:  runNoAlloc,
}

func runNoAlloc(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !funcNoalloc(fd) {
				continue
			}
			name := declName(fd)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				return pass.checkAllocNode(n, name)
			})
		}
	}
}

// checkAllocNode reports n if it is an allocating construct; the return
// value steers ast.Inspect (false stops descent below a reported closure).
func (p *Pass) checkAllocNode(n ast.Node, fn string) bool {
	switch n := n.(type) {
	case *ast.FuncLit:
		p.Reportf(n.Pos(), "closure allocates in //opaque:noalloc function %s", fn)
		return false // one finding per closure, not one per construct inside
	case *ast.CallExpr:
		p.checkAllocCall(n, fn)
	case *ast.UnaryExpr:
		if lit, ok := n.X.(*ast.CompositeLit); ok && n.Op.String() == "&" {
			p.Reportf(n.Pos(), "&%s{} literal allocates in //opaque:noalloc function %s", typeLabel(p, lit), fn)
			return false
		}
	case *ast.CompositeLit:
		t := p.TypeOf(n)
		if t != nil {
			switch t.Underlying().(type) {
			case *types.Slice:
				p.Reportf(n.Pos(), "slice literal allocates in //opaque:noalloc function %s", fn)
			case *types.Map:
				p.Reportf(n.Pos(), "map literal allocates in //opaque:noalloc function %s", fn)
			}
		}
	case *ast.BinaryExpr:
		if n.Op.String() == "+" && p.isString(n.X) {
			p.Reportf(n.Pos(), "string concatenation allocates in //opaque:noalloc function %s", fn)
		}
	case *ast.AssignStmt:
		if n.Tok.String() == "+=" && len(n.Lhs) == 1 && p.isString(n.Lhs[0]) {
			p.Reportf(n.Pos(), "string concatenation allocates in //opaque:noalloc function %s", fn)
		}
		for _, lhs := range n.Lhs {
			if idx, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
				if t := p.TypeOf(idx.X); t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap {
						p.Reportf(lhs.Pos(), "map write may allocate in //opaque:noalloc function %s", fn)
					}
				}
			}
		}
	}
	return true
}

// checkAllocCall reports allocating calls: the make/new/append builtins,
// fmt.* and allocating string conversions.
func (p *Pass) checkAllocCall(call *ast.CallExpr, fn string) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if b, ok := p.ObjectOf(fun).(*types.Builtin); ok {
			switch b.Name() {
			case "make", "new", "append":
				p.Reportf(call.Pos(), "%s allocates in //opaque:noalloc function %s", b.Name(), fn)
			}
			return
		}
	case *ast.SelectorExpr:
		if obj := p.ObjectOf(fun.Sel); obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "fmt" {
			p.Reportf(call.Pos(), "fmt.%s allocates in //opaque:noalloc function %s", fun.Sel.Name, fn)
			return
		}
	}
	// Conversions T(x) where T and x disagree across string/byte boundaries.
	if tv, ok := p.Pkg.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to, from := p.TypeOf(call.Fun), p.TypeOf(call.Args[0])
		if to != nil && from != nil && allocatingConversion(to, from) {
			p.Reportf(call.Pos(), "%s conversion allocates in //opaque:noalloc function %s", types.TypeString(to, nil), fn)
		}
	}
}

// allocatingConversion reports string <-> []byte / []rune conversions, which
// copy their operand.
func allocatingConversion(to, from types.Type) bool {
	return (isStringType(to) && isByteOrRuneSlice(from)) ||
		(isByteOrRuneSlice(to) && isStringType(from))
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	e, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (e.Kind() == types.Byte || e.Kind() == types.Rune ||
		e.Kind() == types.Uint8 || e.Kind() == types.Int32)
}

// isString reports whether e has string type.
func (p *Pass) isString(e ast.Expr) bool {
	t := p.TypeOf(e)
	return t != nil && isStringType(t)
}

// typeLabel renders the type expression of a composite literal for findings.
func typeLabel(p *Pass, lit *ast.CompositeLit) string {
	if t := p.TypeOf(lit); t != nil {
		if n := namedType(t); n != nil {
			return n.Obj().Name()
		}
	}
	return "composite"
}
