// Package client is the user-side library of OPAQUE: it formulates path
// queries ⟨u, (s, t), fS, fT⟩, submits them to the trusted obfuscator (either
// in-process or over TCP), and returns the requested path. It can also talk
// to a directions search server directly with no privacy protection, which
// the baselines and experiments use as the reference behaviour.
package client

import (
	"fmt"
	"sync/atomic"

	"opaque/internal/obfsvc"
	"opaque/internal/obfuscate"
	"opaque/internal/protocol"
	"opaque/internal/roadnet"
	"opaque/internal/search"
)

// Result is the answer to one path query.
type Result struct {
	Path  search.Path
	Found bool
}

// Client submits path queries on behalf of one user.
type Client struct {
	user      obfuscate.UserID
	fs, ft    int
	profile   string
	legacy    bool
	requestID atomic.Uint64

	// exactly one of the following is set
	local   *obfsvc.Service
	remote  *protocol.MuxClient
	oneshot *protocol.Conn
}

// Option customises a Client.
type Option func(*Client)

// WithLegacyOneShot makes Dial use the legacy one-shot gob protocol instead
// of the multiplexed framed transport — the compatibility path for talking
// to an obfuscator started with -legacy-oneshot.
func WithLegacyOneShot() Option {
	return func(c *Client) {
		c.legacy = true
	}
}

// WithProtection sets the user's desired obfuscation power (fS, fT).
func WithProtection(fs, ft int) Option {
	return func(c *Client) {
		c.fs, c.ft = fs, ft
	}
}

// WithProfile asks for the client's queries to be answered under a named
// server-side weight profile — a precustomized time-of-day metric such as
// "am-peak" — instead of the live metric. The profile names a traffic regime,
// not a user: the obfuscator only groups the request with other requests of
// the same profile, and the server resolves the name against its configured
// catalog (unknown names fail the query). Empty restores the live metric.
func WithProfile(name string) Option {
	return func(c *Client) {
		c.profile = name
	}
}

// NewLocal returns a client wired directly to an in-process obfuscator
// service.
func NewLocal(user string, svc *obfsvc.Service, opts ...Option) (*Client, error) {
	if user == "" {
		return nil, fmt.Errorf("client: empty user id")
	}
	if svc == nil {
		return nil, fmt.Errorf("client: nil obfuscator service")
	}
	c := &Client{user: obfuscate.UserID(user), fs: 2, ft: 2, local: svc}
	for _, o := range opts {
		o(c)
	}
	return c, nil
}

// MustNewLocal is NewLocal but panics on error.
func MustNewLocal(user string, svc *obfsvc.Service, opts ...Option) *Client {
	c, err := NewLocal(user, svc, opts...)
	if err != nil {
		panic(err)
	}
	return c
}

// Dial returns a client connected to a networked obfuscator at addr over the
// multiplexed framed transport (or the legacy one-shot protocol with
// WithLegacyOneShot).
func Dial(user, addr string, opts ...Option) (*Client, error) {
	if user == "" {
		return nil, fmt.Errorf("client: empty user id")
	}
	c := &Client{user: obfuscate.UserID(user), fs: 2, ft: 2}
	for _, o := range opts {
		o(c)
	}
	if c.legacy {
		conn, err := protocol.Dial(addr)
		if err != nil {
			return nil, err
		}
		c.oneshot = conn
		return c, nil
	}
	conn, err := protocol.DialMux(addr, protocol.Hello{Node: user, Role: "client"})
	if err != nil {
		return nil, err
	}
	c.remote = conn
	return c, nil
}

// Close releases the network connection of a dialled client; it is a no-op
// for local clients.
func (c *Client) Close() error {
	if c.remote != nil {
		return c.remote.Close()
	}
	if c.oneshot != nil {
		return c.oneshot.Close()
	}
	return nil
}

// Protection returns the client's configured (fS, fT).
func (c *Client) Protection() (fs, ft int) { return c.fs, c.ft }

// Query requests the shortest path from source to dest with the client's
// configured protection settings.
func (c *Client) Query(source, dest roadnet.NodeID) (Result, error) {
	return c.QueryWithProtection(source, dest, c.fs, c.ft)
}

// QueryWithProtection requests the shortest path from source to dest with
// explicit protection settings for this query only.
func (c *Client) QueryWithProtection(source, dest roadnet.NodeID, fs, ft int) (Result, error) {
	switch {
	case c.local != nil:
		res := <-c.local.Submit(obfuscate.Request{
			User:    c.user,
			Source:  source,
			Dest:    dest,
			FS:      fs,
			FT:      ft,
			Profile: c.profile,
		})
		if res.Err != nil {
			return Result{}, res.Err
		}
		return Result{Path: res.Path, Found: res.Found}, nil
	case c.remote != nil, c.oneshot != nil:
		req := protocol.ClientRequest{
			RequestID: c.requestID.Add(1),
			User:      string(c.user),
			Source:    source,
			Dest:      dest,
			FS:        fs,
			FT:        ft,
			Profile:   c.profile,
		}
		var reply any
		var err error
		if c.remote != nil {
			reply, err = c.remote.Do(req)
		} else {
			reply, err = c.oneshot.Call(req)
		}
		if err != nil {
			return Result{}, err
		}
		switch m := reply.(type) {
		case protocol.ClientReply:
			if m.Error != "" {
				return Result{}, fmt.Errorf("client: obfuscator error: %s", m.Error)
			}
			if !m.Found {
				return Result{Found: false}, nil
			}
			return Result{Path: search.Path{Nodes: m.Path, Cost: m.Cost}, Found: true}, nil
		case protocol.ErrorReply:
			return Result{}, fmt.Errorf("client: obfuscator error: %s", m.Message)
		default:
			return Result{}, fmt.Errorf("client: unexpected reply type %T", reply)
		}
	default:
		return Result{}, fmt.Errorf("client: not connected")
	}
}

// DirectClient bypasses the obfuscator and queries a directions search server
// directly, exposing the true (s, t) pair — the no-privacy reference used by
// the baselines and as the "exact path" ground truth in experiments.
type DirectClient struct {
	exec    obfsvc.QueryExecutor
	queryID atomic.Uint64
}

// NewDirect wraps a query executor (an in-process server or a remote
// connection) as a no-privacy client.
func NewDirect(exec obfsvc.QueryExecutor) (*DirectClient, error) {
	if exec == nil {
		return nil, fmt.Errorf("client: nil executor")
	}
	return &DirectClient{exec: exec}, nil
}

// MustNewDirect is NewDirect but panics on error.
func MustNewDirect(exec obfsvc.QueryExecutor) *DirectClient {
	c, err := NewDirect(exec)
	if err != nil {
		panic(err)
	}
	return c
}

// Query asks the server for the exact path from source to dest.
func (c *DirectClient) Query(source, dest roadnet.NodeID) (Result, error) {
	reply, err := c.exec.Execute(protocol.ServerQuery{
		QueryID: c.queryID.Add(1),
		Sources: []roadnet.NodeID{source},
		Dests:   []roadnet.NodeID{dest},
	})
	if err != nil {
		return Result{}, err
	}
	for _, cand := range reply.Paths {
		if cand.Source == source && cand.Dest == dest {
			return Result{Path: protocol.PathFromCandidate(cand), Found: cand.Found}, nil
		}
	}
	return Result{}, fmt.Errorf("client: server reply missing pair (%d,%d)", source, dest)
}
