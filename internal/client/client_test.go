package client

import (
	"math"
	"net"
	"testing"

	"opaque/internal/gen"
	"opaque/internal/obfsvc"
	"opaque/internal/obfuscate"
	"opaque/internal/protocol"
	"opaque/internal/roadnet"
	"opaque/internal/search"
	"opaque/internal/server"
	"opaque/internal/storage"
)

func testSetup(t testing.TB) (*roadnet.Graph, *obfsvc.Service, *server.Server) {
	t.Helper()
	cfg := gen.DefaultNetworkConfig()
	cfg.Nodes = 700
	cfg.Seed = 91
	g := gen.MustGenerate(cfg)
	srv := server.MustNew(g, server.DefaultConfig())
	svcCfg := obfsvc.DefaultConfig()
	svcCfg.BatchWindow = 0
	minX, minY, maxX, maxY := g.Bounds()
	extent := math.Max(maxX-minX, maxY-minY)
	svcCfg.Obfuscation.Selector = obfuscate.MustNewRingBandSelector(0.02*extent, 0.2*extent, 93)
	svc := obfsvc.MustNew(g, obfsvc.ExecutorFunc(srv.Evaluate), svcCfg)
	return g, svc, srv
}

func TestNewLocalValidation(t *testing.T) {
	_, svc, _ := testSetup(t)
	if _, err := NewLocal("", svc); err == nil {
		t.Error("empty user accepted")
	}
	if _, err := NewLocal("alice", nil); err == nil {
		t.Error("nil service accepted")
	}
	c := MustNewLocal("alice", svc, WithProtection(3, 5))
	if fs, ft := c.Protection(); fs != 3 || ft != 5 {
		t.Errorf("protection = %d/%d, want 3/5", fs, ft)
	}
	if err := c.Close(); err != nil {
		t.Errorf("Close on local client: %v", err)
	}
}

func TestLocalClientQuery(t *testing.T) {
	g, svc, srv := testSetup(t)
	c := MustNewLocal("alice", svc, WithProtection(2, 3))
	wl := gen.MustGenerateWorkload(g, gen.WorkloadConfig{Kind: gen.Uniform, Queries: 5, Seed: 95})
	acc := storage.NewMemoryGraph(g)
	for _, pr := range wl {
		res, err := c.Query(pr.Source, pr.Dest)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Found {
			t.Fatalf("no path for %d->%d", pr.Source, pr.Dest)
		}
		truth, _, err := search.Dijkstra(acc, pr.Source, pr.Dest)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(truth.Cost-res.Path.Cost) > 1e-6 {
			t.Errorf("client got cost %v, shortest is %v", res.Path.Cost, truth.Cost)
		}
	}
	// The server only ever saw obfuscated queries with the requested sizes.
	for _, entry := range srv.QueryLog() {
		if len(entry.Sources) < 2 || len(entry.Dests) < 3 {
			t.Errorf("server saw an under-protected query |S|=%d |T|=%d", len(entry.Sources), len(entry.Dests))
		}
	}
}

func TestRemoteClientOverTCP(t *testing.T) {
	g, svc, _ := testSetup(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = svc.ServeMux(ln, protocol.MuxServerConfig{}) }()
	defer ln.Close()

	c, err := Dial("bob", ln.Addr().String(), WithProtection(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	wl := gen.MustGenerateWorkload(g, gen.WorkloadConfig{Kind: gen.Uniform, Queries: 1, Seed: 96})
	res, err := c.Query(wl[0].Source, wl[0].Dest)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || res.Path.Empty() {
		t.Errorf("remote query result = %+v", res)
	}
	acc := storage.NewMemoryGraph(g)
	truth, _, err := search.Dijkstra(acc, wl[0].Source, wl[0].Dest)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(truth.Cost-res.Path.Cost) > 1e-6 {
		t.Errorf("remote client cost %v, shortest %v", res.Path.Cost, truth.Cost)
	}
}

// TestLegacyOneShotRoundTrip pins the -legacy-oneshot compatibility path: an
// obfuscator serving the one-shot gob protocol, a client dialled with
// WithLegacyOneShot, one full query round trip.
func TestLegacyOneShotRoundTrip(t *testing.T) {
	g, svc, _ := testSetup(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = svc.Serve(ln) }()
	defer ln.Close()

	c, err := Dial("carol", ln.Addr().String(), WithProtection(2, 2), WithLegacyOneShot())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	wl := gen.MustGenerateWorkload(g, gen.WorkloadConfig{Kind: gen.Uniform, Queries: 2, Seed: 98})
	acc := storage.NewMemoryGraph(g)
	for _, pr := range wl {
		res, err := c.Query(pr.Source, pr.Dest)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Found || res.Path.Empty() {
			t.Fatalf("legacy query result = %+v", res)
		}
		truth, _, err := search.Dijkstra(acc, pr.Source, pr.Dest)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(truth.Cost-res.Path.Cost) > 1e-6 {
			t.Errorf("legacy client cost %v, shortest %v", res.Path.Cost, truth.Cost)
		}
	}
}

func TestDialValidation(t *testing.T) {
	if _, err := Dial("", "127.0.0.1:1"); err == nil {
		t.Error("empty user accepted")
	}
	if _, err := Dial("alice", "127.0.0.1:1"); err == nil {
		t.Error("dial to a closed port succeeded")
	}
}

func TestDirectClient(t *testing.T) {
	g, _, srv := testSetup(t)
	if _, err := NewDirect(nil); err == nil {
		t.Error("nil executor accepted")
	}
	c := MustNewDirect(obfsvc.ExecutorFunc(srv.Evaluate))
	wl := gen.MustGenerateWorkload(g, gen.WorkloadConfig{Kind: gen.Uniform, Queries: 3, Seed: 97})
	acc := storage.NewMemoryGraph(g)
	for _, pr := range wl {
		res, err := c.Query(pr.Source, pr.Dest)
		if err != nil {
			t.Fatal(err)
		}
		truth, _, err := search.Dijkstra(acc, pr.Source, pr.Dest)
		if err != nil {
			t.Fatal(err)
		}
		if res.Found != !truth.Empty() {
			t.Errorf("reachability mismatch for %d->%d", pr.Source, pr.Dest)
		}
		if res.Found && math.Abs(truth.Cost-res.Path.Cost) > 1e-6 {
			t.Errorf("direct client cost %v, shortest %v", res.Path.Cost, truth.Cost)
		}
	}
	// The direct client exposes the true pair to the server (breach = 1).
	found := false
	for _, entry := range srv.QueryLog() {
		if len(entry.Sources) == 1 && len(entry.Dests) == 1 {
			found = true
		}
	}
	if !found {
		t.Error("direct queries should appear in the log as bare 1x1 queries")
	}
}

func TestQueryNotConnected(t *testing.T) {
	var c Client
	if _, err := c.Query(0, 1); err == nil {
		t.Error("query on an unconnected client succeeded")
	}
}
