package costmodel

import (
	"math"
	"testing"

	"opaque/internal/gen"
	"opaque/internal/roadnet"
	"opaque/internal/search"
	"opaque/internal/storage"
)

func testGraph(t *testing.T) *roadnet.Graph {
	t.Helper()
	cfg := gen.DefaultNetworkConfig()
	cfg.Nodes = 900
	cfg.Seed = 31
	return gen.MustGenerate(cfg)
}

func TestSingleSearchCost(t *testing.T) {
	g := testGraph(t)
	dist := EuclideanDistance(g)
	s := roadnet.NodeID(0)
	dests := []roadnet.NodeID{10, 200, 400}
	got, err := SingleSearchCost(dist, s, dests)
	if err != nil {
		t.Fatal(err)
	}
	maxD := 0.0
	for _, d := range dests {
		if e := g.Euclid(s, d); e > maxD {
			maxD = e
		}
	}
	if math.Abs(got-maxD*maxD) > 1e-6 {
		t.Errorf("SingleSearchCost = %v, want %v", got, maxD*maxD)
	}
	if _, err := SingleSearchCost(dist, s, nil); err == nil {
		t.Error("empty destination set accepted")
	}
}

func TestObfuscatedQueryCostLemma1Shape(t *testing.T) {
	g := testGraph(t)
	dist := EuclideanDistance(g)
	sources := []roadnet.NodeID{0, 100}
	dests := []roadnet.NodeID{300, 500}
	total, err := ObfuscatedQueryCost(dist, sources, dests)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, s := range sources {
		c, err := SingleSearchCost(dist, s, dests)
		if err != nil {
			t.Fatal(err)
		}
		sum += c
	}
	if math.Abs(total-sum) > 1e-9 {
		t.Errorf("ObfuscatedQueryCost = %v, want sum of per-source costs %v", total, sum)
	}
	// Pairwise cost is always >= the Lemma 1 (max-based) cost.
	pair, err := PairwiseQueryCost(dist, sources, dests)
	if err != nil {
		t.Fatal(err)
	}
	if pair < total {
		t.Errorf("pairwise cost %v < shared cost %v", pair, total)
	}
	if _, err := ObfuscatedQueryCost(dist, nil, dests); err == nil {
		t.Error("empty source set accepted")
	}
	if _, err := PairwiseQueryCost(dist, sources, nil); err == nil {
		t.Error("empty destination set accepted")
	}
}

func TestNetworkDistanceFunc(t *testing.T) {
	g := testGraph(t)
	acc := storage.NewMemoryGraph(g)
	nd := NetworkDistance(acc)
	got, err := nd(0, 50)
	if err != nil {
		t.Fatal(err)
	}
	want, err := search.DijkstraDistance(acc, 0, 50)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("NetworkDistance = %v, want %v", got, want)
	}
	// Network distance is never below the Euclidean lower bound for
	// planar-cost generators.
	if got < g.Euclid(0, 50)-1e-6 {
		t.Errorf("network distance %v below Euclidean %v", got, g.Euclid(0, 50))
	}
	ed := EuclideanDistance(g)
	if _, err := ed(-1, 2); err == nil {
		t.Error("EuclideanDistance accepted an invalid node")
	}
}

func TestCalibrate(t *testing.T) {
	// measured = 3 * model exactly: factor 3, correlation 1, error 0.
	samples := make([]Sample, 20)
	for i := range samples {
		m := float64(i + 1)
		samples[i] = Sample{Model: m, Measured: 3 * m}
	}
	cal := Calibrate(samples)
	if cal.Samples != 20 {
		t.Errorf("samples = %d, want 20", cal.Samples)
	}
	if math.Abs(cal.Factor-3) > 1e-9 {
		t.Errorf("factor = %v, want 3", cal.Factor)
	}
	if math.Abs(cal.Correlation-1) > 1e-9 {
		t.Errorf("correlation = %v, want 1", cal.Correlation)
	}
	if cal.MeanAbsRelErr > 1e-9 {
		t.Errorf("error = %v, want 0", cal.MeanAbsRelErr)
	}
}

func TestCalibrateSkipsNonFinite(t *testing.T) {
	samples := []Sample{
		{Model: 1, Measured: 2},
		{Model: math.Inf(1), Measured: 5},
		{Model: 3, Measured: math.NaN()},
		{Model: 2, Measured: 4},
	}
	cal := Calibrate(samples)
	if cal.Samples != 2 {
		t.Errorf("samples = %d, want 2 (non-finite skipped)", cal.Samples)
	}
	if math.Abs(cal.Factor-2) > 1e-9 {
		t.Errorf("factor = %v, want 2", cal.Factor)
	}
}

func TestCalibrateEmptyAndDegenerate(t *testing.T) {
	if cal := Calibrate(nil); cal.Samples != 0 || cal.Factor != 0 {
		t.Errorf("empty calibration = %+v", cal)
	}
	// Constant series: correlation undefined, reported as 0.
	samples := []Sample{{Model: 1, Measured: 5}, {Model: 1, Measured: 5}}
	if cal := Calibrate(samples); cal.Correlation != 0 {
		t.Errorf("constant-series correlation = %v, want 0", cal.Correlation)
	}
}

// TestModelTracksMeasuredCost is the unit-level version of experiment E3: on
// a uniform grid, the measured settled-node count must correlate strongly
// with the Lemma 1 estimate across queries of different radii.
func TestModelTracksMeasuredCost(t *testing.T) {
	g := testGraph(t)
	acc := storage.NewMemoryGraph(g)
	dist := EuclideanDistance(g)
	pairs := gen.MustGenerateWorkload(g, gen.WorkloadConfig{Kind: gen.Uniform, Queries: 40, Seed: 33})
	var samples []Sample
	for _, pr := range pairs {
		model, err := SingleSearchCost(dist, pr.Source, []roadnet.NodeID{pr.Dest})
		if err != nil {
			t.Fatal(err)
		}
		_, st, err := search.Dijkstra(acc, pr.Source, pr.Dest)
		if err != nil {
			t.Fatal(err)
		}
		samples = append(samples, Sample{Model: model, Measured: float64(st.SettledNodes)})
	}
	cal := Calibrate(samples)
	if cal.Correlation < 0.6 {
		t.Errorf("correlation between Lemma 1 model and settled nodes = %v, want >= 0.6", cal.Correlation)
	}
}
