package costmodel

import (
	"math"
	"testing"

	"opaque/internal/gen"
	"opaque/internal/roadnet"
)

func profileTestGraph(t *testing.T) *roadnet.Graph {
	t.Helper()
	cfg := gen.DefaultNetworkConfig()
	cfg.Kind = gen.TigerLike
	cfg.Nodes = 500
	cfg.Seed = 2024
	g, err := gen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestTimeOfDayProfilesApply(t *testing.T) {
	g := profileTestGraph(t)
	for _, p := range TimeOfDayProfiles() {
		pg, err := p.Apply(g)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if pg.TopologyChecksum() != g.TopologyChecksum() {
			t.Errorf("%s: topology checksum changed; profile graphs must share the frozen topology", p.Name)
		}
		if pg.ContentChecksum() == g.ContentChecksum() {
			t.Errorf("%s: content checksum unchanged; profile applied no reweighting", p.Name)
		}
		// Every arc cost must be the base cost times the profile factor.
		checked := 0
		for v := 0; v < g.NumNodes() && checked < 200; v++ {
			from := roadnet.NodeID(v)
			for _, a := range g.Arcs(from) {
				m := p.Multiplier(g, from, a.To)
				got, ok := pg.ArcCost(from, a.To)
				if !ok {
					t.Fatalf("%s: arc %d→%d vanished", p.Name, from, a.To)
				}
				base, _ := g.ArcCost(from, a.To)
				want := base * m
				if math.Abs(got-want) > 1e-9*(1+want) {
					t.Fatalf("%s: arc %d→%d cost %v, want %v (factor %v)", p.Name, from, a.To, got, want, m)
				}
				checked++
			}
		}
	}
}

func TestProfileApplyIsDeterministic(t *testing.T) {
	g := profileTestGraph(t)
	p, ok := ProfileByName(ProfileAMPeak)
	if !ok {
		t.Fatal("am-peak missing from catalog")
	}
	a, err := p.Apply(g)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Apply(g)
	if err != nil {
		t.Fatal(err)
	}
	if a.ContentChecksum() != b.ContentChecksum() {
		t.Error("applying the same profile twice produced different metrics; profiles must be deterministic")
	}
}

func TestPeakProfilesAreSpatial(t *testing.T) {
	g := profileTestGraph(t)
	p, _ := ProfileByName(ProfileAMPeak)
	minX, minY, maxX, maxY := g.Bounds()
	cx, cy := (minX+maxX)/2, (minY+maxY)/2
	// Find a node near the centre and one near a corner; the congestion
	// factor must be strictly higher at the centre.
	var central, corner roadnet.NodeID
	bestC, bestE := math.Inf(1), math.Inf(-1)
	for v := 0; v < g.NumNodes(); v++ {
		n := g.Node(roadnet.NodeID(v))
		d := math.Hypot(n.X-cx, n.Y-cy)
		if d < bestC && len(g.Arcs(roadnet.NodeID(v))) > 0 {
			bestC, central = d, roadnet.NodeID(v)
		}
		if d > bestE && len(g.Arcs(roadnet.NodeID(v))) > 0 {
			bestE, corner = d, roadnet.NodeID(v)
		}
	}
	mc := p.Multiplier(g, central, g.Arcs(central)[0].To)
	me := p.Multiplier(g, corner, g.Arcs(corner)[0].To)
	if mc <= me {
		t.Errorf("am-peak factor at centre %v <= at edge %v; peak congestion must concentrate on the core", mc, me)
	}
	if mc <= 1 {
		t.Errorf("am-peak factor at centre %v, want > 1", mc)
	}
}

func TestProfileErrors(t *testing.T) {
	g := profileTestGraph(t)
	if _, err := (WeightProfile{Name: "x"}).Apply(g); err == nil {
		t.Error("profile without multiplier must refuse to apply")
	}
	bad := WeightProfile{Name: "neg", Multiplier: func(*roadnet.Graph, roadnet.NodeID, roadnet.NodeID) float64 { return -1 }}
	if _, err := bad.Apply(g); err == nil {
		t.Error("negative multiplier must refuse to apply")
	}
	nan := WeightProfile{Name: "nan", Multiplier: func(*roadnet.Graph, roadnet.NodeID, roadnet.NodeID) float64 { return math.NaN() }}
	if _, err := nan.Apply(g); err == nil {
		t.Error("NaN multiplier must refuse to apply")
	}
}

func TestProfileCatalogLookup(t *testing.T) {
	names := ProfileNames()
	if len(names) != 4 {
		t.Fatalf("catalog has %d profiles, want 4", len(names))
	}
	for _, n := range names {
		p, ok := ProfileByName(n)
		if !ok || p.Name != n {
			t.Errorf("ProfileByName(%q) = %+v, %v", n, p, ok)
		}
	}
	if _, ok := ProfileByName("rush-hour-on-mars"); ok {
		t.Error("unknown profile name must not resolve")
	}
}
