package costmodel

import (
	"math"
	"sort"

	"opaque/internal/roadnet"
)

// This file defines weight profiles: named, deterministic reweightings of a
// road network that model recurring traffic regimes (the morning peak, the
// evening peak, free-flowing night roads). A profile is a pure function of
// the map — applying it to the same graph always yields the same weights —
// which is what lets the server precustomize one CH overlay weight layer per
// profile at startup and serve "leave at 8am" queries from that layer with
// zero customization work on the query path (see ch.ProfileSet and the
// server's profile routing).
//
// Profiles reweight the reference free-flow metric, not the live traffic
// snapshot: a time-of-day plan asks "what does this trip usually cost at
// 8am", which is a property of the recurring regime, while the live metric
// answers "what does it cost right now". The two serve different questions
// and the server keeps them on separate layers.

// WeightProfile is one named reweighting. Multiplier must be deterministic:
// the same (g, from, to) always yields the same factor.
type WeightProfile struct {
	// Name identifies the profile on the wire (protocol.ServerQuery.Profile)
	// and in the server's layer cache.
	Name string
	// Description is a one-line human-readable summary for listings.
	Description string
	// Multiplier returns the cost factor (> 0, finite) applied to every arc
	// from→to. It receives the graph so spatial profiles can derive factors
	// from node coordinates.
	Multiplier func(g *roadnet.Graph, from, to roadnet.NodeID) float64
}

// Apply returns a new frozen graph carrying the profile's metric: every
// arc's cost multiplied by the profile factor. The returned graph shares
// g's topology (same topology checksum), so a customizable CH overlay built
// over g can be re-customized for it directly. Parallel arcs between the
// same node pair collapse to their minimum cost times the factor — weight
// changes address road segments, not individual lanes (see
// roadnet.ArcWeightChange), and shortest paths only ever use the cheapest
// parallel.
func (p WeightProfile) Apply(g *roadnet.Graph) (*roadnet.Graph, error) {
	if p.Multiplier == nil {
		return nil, errProfile(p.Name, "has no multiplier function")
	}
	if g == nil || !g.Frozen() {
		return nil, errProfile(p.Name, "requires a frozen graph")
	}
	changes := make([]roadnet.ArcWeightChange, 0, g.NumArcs())
	for v := 0; v < g.NumNodes(); v++ {
		from := roadnet.NodeID(v)
		arcs := g.Arcs(from)
		for i, a := range arcs {
			dup := false
			for j := 0; j < i; j++ {
				if arcs[j].To == a.To {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			cost := a.Cost
			for j := i + 1; j < len(arcs); j++ {
				if arcs[j].To == a.To && arcs[j].Cost < cost {
					cost = arcs[j].Cost
				}
			}
			m := p.Multiplier(g, from, a.To)
			if m <= 0 || math.IsNaN(m) || math.IsInf(m, 0) {
				return nil, errProfile(p.Name, "produced invalid multiplier for arc")
			}
			changes = append(changes, roadnet.ArcWeightChange{From: from, To: a.To, NewCost: cost * m})
		}
	}
	return g.WithUpdatedWeights(changes)
}

type profileError struct {
	name, msg string
}

func (e *profileError) Error() string { return "costmodel: profile " + e.name + " " + e.msg }

func errProfile(name, msg string) error { return &profileError{name: name, msg: msg} }

// The built-in time-of-day catalog. The peak profiles are spatial: congestion
// concentrates around the map centre (where generated and real networks put
// their densest connectivity) and decays with distance, so peak-hour shortest
// paths genuinely route around the core instead of just rescaling uniformly.
const (
	ProfileAMPeak  = "am-peak"
	ProfilePMPeak  = "pm-peak"
	ProfileOffPeak = "offpeak"
	ProfileNight   = "night"
)

// TimeOfDayProfiles returns the built-in catalog: am-peak, pm-peak, offpeak,
// night. The slice is freshly allocated; callers may reorder or subset it.
func TimeOfDayProfiles() []WeightProfile {
	return []WeightProfile{
		{
			Name:        ProfileAMPeak,
			Description: "morning peak: up to 2.5x cost near the map core, decaying outward",
			Multiplier:  coreCongestion(1.5, 0.35),
		},
		{
			Name:        ProfilePMPeak,
			Description: "evening peak: up to 2.1x cost, congestion spread wider than the morning",
			Multiplier:  coreCongestion(1.1, 0.55),
		},
		{
			Name:        ProfileOffPeak,
			Description: "off-peak daytime: uniform 0.9x of free-flow cost",
			Multiplier:  uniform(0.9),
		},
		{
			Name:        ProfileNight,
			Description: "night: uniform 0.75x of free-flow cost",
			Multiplier:  uniform(0.75),
		},
	}
}

// ProfileByName looks a profile up in the built-in catalog.
func ProfileByName(name string) (WeightProfile, bool) {
	for _, p := range TimeOfDayProfiles() {
		if p.Name == name {
			return p, true
		}
	}
	return WeightProfile{}, false
}

// ProfileNames returns the built-in catalog's names, sorted.
func ProfileNames() []string {
	ps := TimeOfDayProfiles()
	names := make([]string, len(ps))
	for i, p := range ps {
		names[i] = p.Name
	}
	sort.Strings(names)
	return names
}

// uniform multiplies every arc by the same factor.
func uniform(m float64) func(*roadnet.Graph, roadnet.NodeID, roadnet.NodeID) float64 {
	return func(*roadnet.Graph, roadnet.NodeID, roadnet.NodeID) float64 { return m }
}

// coreCongestion builds a Gaussian congestion bump over the map centre:
// factor 1+peak at the centre, decaying with the arc midpoint's distance r
// as exp(-(r/(width·R))²) where R is half the map extent.
func coreCongestion(peak, width float64) func(*roadnet.Graph, roadnet.NodeID, roadnet.NodeID) float64 {
	return func(g *roadnet.Graph, from, to roadnet.NodeID) float64 {
		minX, minY, maxX, maxY := g.Bounds()
		cx, cy := (minX+maxX)/2, (minY+maxY)/2
		r2 := math.Max(maxX-minX, maxY-minY) / 2
		if r2 <= 0 {
			return 1 + peak
		}
		a, b := g.Node(from), g.Node(to)
		mx, my := (a.X+b.X)/2, (a.Y+b.Y)/2
		d := math.Hypot(mx-cx, my-cy) / (width * r2)
		return 1 + peak*math.Exp(-d*d)
	}
}
