// Package costmodel implements the analytical processing-cost model of the
// OPAQUE paper (Section III-B, Lemma 1) and utilities to compare it against
// measured search work.
//
// The paper models the cost of a Dijkstra search from s towards t as the area
// of the network region the spanning tree covers, O(||s,t||²), assuming the
// road network has roughly uniform node density and nodes are stored in
// connectivity-clustered pages. Extending the search from a single source to
// a destination set T costs O(max_{t∈T} ||s,t||²), and an obfuscated path
// query Q(S,T) evaluated by one SSMD search per source costs
//
//	O( Σ_{s∈S}  max_{t∈T} ||s,t||² )          (Lemma 1)
//
// The estimators below compute that quantity using either exact network
// distances or the Euclidean lower bound, and Calibration fits the constant
// factor that links the model to a measured cost metric (settled nodes or
// page faults), so experiments can report how well the shape of the model
// tracks reality.
package costmodel

import (
	"fmt"
	"math"

	"opaque/internal/roadnet"
	"opaque/internal/search"
	"opaque/internal/storage"
)

// DistanceFunc returns the distance between two nodes used by the model;
// either Euclidean (cheap, lower bound) or exact network distance.
type DistanceFunc func(s, t roadnet.NodeID) (float64, error)

// EuclideanDistance builds a DistanceFunc from straight-line distances.
func EuclideanDistance(g *roadnet.Graph) DistanceFunc {
	return func(s, t roadnet.NodeID) (float64, error) {
		if !g.ValidNode(s) || !g.ValidNode(t) {
			return 0, fmt.Errorf("costmodel: invalid node pair (%d,%d)", s, t)
		}
		return g.Euclid(s, t), nil
	}
}

// NetworkDistance builds a DistanceFunc that computes exact shortest-path
// distances on acc (one Dijkstra per call; use for small experiments or wrap
// with a cache).
func NetworkDistance(acc storage.Accessor) DistanceFunc {
	return func(s, t roadnet.NodeID) (float64, error) {
		return search.DijkstraDistance(acc, s, t)
	}
}

// SingleSearchCost returns the modelled cost of one search from s that must
// reach every destination in T: max_{t∈T} d(s,t)².
func SingleSearchCost(dist DistanceFunc, s roadnet.NodeID, dests []roadnet.NodeID) (float64, error) {
	if len(dests) == 0 {
		return 0, fmt.Errorf("costmodel: need at least one destination")
	}
	maxD := 0.0
	for _, t := range dests {
		d, err := dist(s, t)
		if err != nil {
			return 0, err
		}
		if math.IsInf(d, 1) {
			return math.Inf(1), nil
		}
		if d > maxD {
			maxD = d
		}
	}
	return maxD * maxD, nil
}

// ObfuscatedQueryCost returns the Lemma 1 estimate for Q(S, T):
// Σ_{s∈S} max_{t∈T} d(s,t)².
func ObfuscatedQueryCost(dist DistanceFunc, sources, dests []roadnet.NodeID) (float64, error) {
	if len(sources) == 0 {
		return 0, fmt.Errorf("costmodel: need at least one source")
	}
	total := 0.0
	for _, s := range sources {
		c, err := SingleSearchCost(dist, s, dests)
		if err != nil {
			return 0, err
		}
		total += c
	}
	return total, nil
}

// PairwiseQueryCost returns the model estimate when the server evaluates
// every (s, t) pair independently: Σ_{s∈S} Σ_{t∈T} d(s,t)². This is the cost
// the naive-obfuscation baseline pays and what Lemma 1's sharing avoids.
func PairwiseQueryCost(dist DistanceFunc, sources, dests []roadnet.NodeID) (float64, error) {
	if len(sources) == 0 || len(dests) == 0 {
		return 0, fmt.Errorf("costmodel: need at least one source and destination")
	}
	total := 0.0
	for _, s := range sources {
		for _, t := range dests {
			d, err := dist(s, t)
			if err != nil {
				return 0, err
			}
			total += d * d
		}
	}
	return total, nil
}

// Sample pairs one model estimate with one measured cost.
type Sample struct {
	Model    float64
	Measured float64
}

// Calibration summarises how well the analytical model tracks a measured
// cost metric over a set of samples: the least-squares constant factor c in
// measured ≈ c·model, and the Pearson correlation between the two series.
type Calibration struct {
	Samples     int
	Factor      float64
	Correlation float64
	// MeanAbsErr is the mean |measured - Factor*model| relative to the mean
	// measured value; a shape-match indicator.
	MeanAbsRelErr float64
}

// Calibrate fits the proportionality factor and correlation for the samples.
// Samples with non-finite values are skipped.
func Calibrate(samples []Sample) Calibration {
	var xs, ys []float64
	for _, s := range samples {
		if math.IsInf(s.Model, 0) || math.IsNaN(s.Model) || math.IsInf(s.Measured, 0) || math.IsNaN(s.Measured) {
			continue
		}
		xs = append(xs, s.Model)
		ys = append(ys, s.Measured)
	}
	cal := Calibration{Samples: len(xs)}
	if len(xs) == 0 {
		return cal
	}
	// Least squares through the origin: c = Σxy / Σx².
	var sxy, sxx float64
	for i := range xs {
		sxy += xs[i] * ys[i]
		sxx += xs[i] * xs[i]
	}
	if sxx > 0 {
		cal.Factor = sxy / sxx
	}
	cal.Correlation = pearson(xs, ys)
	meanY := mean(ys)
	if meanY > 0 {
		sumErr := 0.0
		for i := range xs {
			sumErr += math.Abs(ys[i] - cal.Factor*xs[i])
		}
		cal.MeanAbsRelErr = (sumErr / float64(len(xs))) / meanY
	}
	return cal
}

func mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

func pearson(x, y []float64) float64 {
	n := len(x)
	if n < 2 {
		return 0
	}
	mx, my := mean(x), mean(y)
	var sxy, sxx, syy float64
	for i := 0; i < n; i++ {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}
