package storage

import "opaque/internal/roadnet"

// Accessor is the graph view the search algorithms run against. It exposes
// adjacency exactly like roadnet.Graph but lets the storage layer observe (and
// charge for) every node expansion. search.* takes an Accessor so the same
// algorithms run both purely in memory (MemoryGraph) and against the paged
// simulation (PagedGraph).
type Accessor interface {
	// NumNodes returns the node count of the underlying graph.
	NumNodes() int
	// Arcs returns the outgoing arcs of id, charging any I/O cost the
	// implementation models.
	Arcs(id roadnet.NodeID) []roadnet.Arc
	// ForEachArc streams the outgoing arcs of id to yield in adjacency
	// order, stopping early when yield returns false, and charges the same
	// I/O as Arcs. This is the arc iteration the search hot path uses: it
	// walks the graph's CSR arc array in place, never materialises an
	// adjacency slice, and — unlike Arcs on buffering implementations such
	// as FilteredGraph — is safe for concurrent use.
	ForEachArc(id roadnet.NodeID, yield func(roadnet.Arc) bool)
	// Euclid returns the Euclidean distance between two nodes (used as the
	// A* heuristic); it is free of I/O charges because coordinates of the
	// two query endpoints are known to the query itself.
	Euclid(a, b roadnet.NodeID) float64
	// Graph exposes the underlying road network for result validation and
	// coordinate lookups that are not charged as I/O.
	Graph() *roadnet.Graph
}

// MemoryGraph is an Accessor with no I/O accounting: every access is free.
// It carries a data generation (Versioned/Invalidator) so caches built over
// it can be invalidated when the wrapped graph is replaced or re-weighted.
type MemoryGraph struct {
	generation
	g *roadnet.Graph
}

// NewMemoryGraph wraps a frozen graph in a free-access Accessor.
func NewMemoryGraph(g *roadnet.Graph) *MemoryGraph { return &MemoryGraph{g: g} }

// NumNodes implements Accessor.
func (m *MemoryGraph) NumNodes() int { return m.g.NumNodes() }

// Arcs implements Accessor.
func (m *MemoryGraph) Arcs(id roadnet.NodeID) []roadnet.Arc { return m.g.Arcs(id) }

// ForEachArc implements Accessor by walking the graph's CSR arc array.
func (m *MemoryGraph) ForEachArc(id roadnet.NodeID, yield func(roadnet.Arc) bool) {
	m.g.ForEachArc(id, yield)
}

// Euclid implements Accessor.
func (m *MemoryGraph) Euclid(a, b roadnet.NodeID) float64 { return m.g.Euclid(a, b) }

// Graph implements Accessor.
func (m *MemoryGraph) Graph() *roadnet.Graph { return m.g }

// PagedGraph is an Accessor that charges a buffer-pool access for the page of
// every node whose adjacency list is read, modelling a disk-resident road
// network laid out by a PageStore. Like MemoryGraph it carries a data
// generation for cache invalidation.
type PagedGraph struct {
	generation
	store *PageStore
	pool  *BufferPool
}

// NewPagedGraph combines a page layout with a buffer pool.
func NewPagedGraph(store *PageStore, pool *BufferPool) *PagedGraph {
	return &PagedGraph{store: store, pool: pool}
}

// NumNodes implements Accessor.
func (p *PagedGraph) NumNodes() int { return p.store.graph.NumNodes() }

// Arcs implements Accessor. Reading a node's adjacency list requires its page
// to be resident, so the access is charged to the buffer pool.
func (p *PagedGraph) Arcs(id roadnet.NodeID) []roadnet.Arc {
	p.pool.Access(p.store.PageOf(id))
	return p.store.graph.Arcs(id)
}

// ForEachArc implements Accessor. The node's page is charged once per
// iteration, exactly like Arcs.
func (p *PagedGraph) ForEachArc(id roadnet.NodeID, yield func(roadnet.Arc) bool) {
	p.pool.Access(p.store.PageOf(id))
	p.store.graph.ForEachArc(id, yield)
}

// Euclid implements Accessor.
func (p *PagedGraph) Euclid(a, b roadnet.NodeID) float64 { return p.store.graph.Euclid(a, b) }

// Graph implements Accessor.
func (p *PagedGraph) Graph() *roadnet.Graph { return p.store.graph }

// Pool returns the buffer pool used for accounting.
func (p *PagedGraph) Pool() *BufferPool { return p.pool }

// Store returns the page layout.
func (p *PagedGraph) Store() *PageStore { return p.store }
