package storage

import "opaque/internal/roadnet"

// ArcFilter decides whether an arc may be traversed. The OPAQUE paper's
// introduction mentions that a directions search may carry additional
// conditions such as "avoid highways"; FilteredGraph implements such
// conditions as a view over any Accessor without copying the graph.
type ArcFilter func(from roadnet.NodeID, arc roadnet.Arc) bool

// FilteredGraph is an Accessor that hides the arcs rejected by the filter.
// I/O accounting of the underlying accessor is preserved: a node's page is
// charged when its adjacency list is read, regardless of how many arcs
// survive the filter, matching how a real server would read the page and then
// skip unwanted road segments.
//
// ForEachArc filters inline with no buffering and is safe for concurrent
// use; since every search in internal/search iterates arcs through
// ForEachArc, a single FilteredGraph can serve concurrent searches. Arcs, by
// contrast, materialises the surviving arcs into a reused buffer and remains
// unsafe for concurrent use — callers that need the slice form from multiple
// goroutines must wrap each worker with its own instance.
type FilteredGraph struct {
	inner  Accessor
	filter ArcFilter
	// buf is reused across Arcs calls (not used by ForEachArc).
	buf []roadnet.Arc
}

// NewFilteredGraph wraps an accessor with an arc filter. A nil filter admits
// every arc.
func NewFilteredGraph(inner Accessor, filter ArcFilter) *FilteredGraph {
	return &FilteredGraph{inner: inner, filter: filter}
}

// AvoidNodes returns a filter that rejects arcs entering any of the given
// nodes, e.g. to route around closed intersections.
func AvoidNodes(nodes ...roadnet.NodeID) ArcFilter {
	blocked := make(map[roadnet.NodeID]struct{}, len(nodes))
	for _, id := range nodes {
		blocked[id] = struct{}{}
	}
	return func(_ roadnet.NodeID, arc roadnet.Arc) bool {
		_, hit := blocked[arc.To]
		return !hit
	}
}

// MaxArcCost returns a filter that rejects arcs costlier than the limit —
// a simple stand-in for "avoid highways" on networks where highways are the
// long, high-cost shortcut edges.
func MaxArcCost(limit float64) ArcFilter {
	return func(_ roadnet.NodeID, arc roadnet.Arc) bool {
		return arc.Cost <= limit
	}
}

// NumNodes implements Accessor.
func (f *FilteredGraph) NumNodes() int { return f.inner.NumNodes() }

// Arcs implements Accessor, returning only the arcs admitted by the filter.
// The returned slice is valid until the next Arcs call on this instance.
func (f *FilteredGraph) Arcs(id roadnet.NodeID) []roadnet.Arc {
	arcs := f.inner.Arcs(id)
	if f.filter == nil {
		return arcs
	}
	f.buf = f.buf[:0]
	for _, a := range arcs {
		if f.filter(id, a) {
			f.buf = append(f.buf, a)
		}
	}
	return f.buf
}

// ForEachArc implements Accessor, streaming only the arcs admitted by the
// filter. No buffer is involved, so this path is safe for concurrent use.
func (f *FilteredGraph) ForEachArc(id roadnet.NodeID, yield func(roadnet.Arc) bool) {
	if f.filter == nil {
		f.inner.ForEachArc(id, yield)
		return
	}
	f.inner.ForEachArc(id, func(a roadnet.Arc) bool {
		if !f.filter(id, a) {
			return true
		}
		return yield(a)
	})
}

// Euclid implements Accessor.
func (f *FilteredGraph) Euclid(a, b roadnet.NodeID) float64 { return f.inner.Euclid(a, b) }

// Graph implements Accessor.
func (f *FilteredGraph) Graph() *roadnet.Graph { return f.inner.Graph() }
