// Package storage simulates the disk organisation the OPAQUE paper assumes
// for the directions-search server: nodes and their adjacency lists are
// clustered into disk pages by connectivity (after CCAM, Shekhar & Liu,
// reference [9] of the paper) and accessed through a buffer manager.
//
// The point of the simulation is measurement, not persistence. Lemma 1
// argues that the I/O cost of a path search is bounded by the area of the
// subgraph covered by the search's spanning tree *assuming nodes and their
// edges are clustered and stored on disk*. This package provides exactly that
// accounting: every node expansion goes through a PagedGraph that records
// which page the node lives on, and a BufferPool with an LRU policy that
// turns the access stream into page-fault counts.
package storage

import (
	"fmt"
	"sort"

	"opaque/internal/roadnet"
)

// PageID identifies a disk page.
type PageID int32

// InvalidPage marks "no page".
const InvalidPage PageID = -1

// Partitioning selects how nodes are assigned to pages.
type Partitioning string

const (
	// ConnectivityClustered groups nodes into pages by breadth-first growth
	// from seed nodes, the CCAM-style layout: neighbouring nodes share a
	// page, so a search that expands a compact subgraph touches few pages.
	ConnectivityClustered Partitioning = "ccam"
	// RandomAssignment scatters nodes across pages uniformly; the ablation
	// layout that destroys locality (used by experiment E3's storage
	// ablation).
	RandomAssignment Partitioning = "random"
	// HilbertOrder assigns nodes to pages in spatial (Z-order approximation)
	// order; locality-preserving but geometry- rather than
	// connectivity-based.
	HilbertOrder Partitioning = "hilbert"
)

// Config parameterises the page layout.
type Config struct {
	// NodesPerPage is the page capacity in nodes. The paper's cost argument
	// only needs "some constant number of nodes per page"; 64 roughly
	// matches an 8 KiB page holding 64 nodes with ~4 adjacent edges each.
	NodesPerPage int
	Partitioning Partitioning
	// Seed drives the random layout.
	Seed uint64
}

// DefaultConfig returns the CCAM-style layout with 64 nodes per page.
func DefaultConfig() Config {
	return Config{NodesPerPage: 64, Partitioning: ConnectivityClustered, Seed: 1}
}

// PageStore maps every node of a graph to a page.
type PageStore struct {
	graph      *roadnet.Graph
	cfg        Config
	nodeToPage []PageID
	pages      [][]roadnet.NodeID
}

// Build partitions the nodes of g into pages according to cfg.
func Build(g *roadnet.Graph, cfg Config) (*PageStore, error) {
	if cfg.NodesPerPage <= 0 {
		return nil, fmt.Errorf("storage: NodesPerPage must be positive, got %d", cfg.NodesPerPage)
	}
	if !g.Frozen() {
		return nil, fmt.Errorf("storage: graph must be frozen before building a page store")
	}
	ps := &PageStore{
		graph:      g,
		cfg:        cfg,
		nodeToPage: make([]PageID, g.NumNodes()),
	}
	for i := range ps.nodeToPage {
		ps.nodeToPage[i] = InvalidPage
	}
	switch cfg.Partitioning {
	case ConnectivityClustered, "":
		ps.buildConnectivityClustered()
	case RandomAssignment:
		ps.buildRandom()
	case HilbertOrder:
		ps.buildSpatial()
	default:
		return nil, fmt.Errorf("storage: unknown partitioning %q", cfg.Partitioning)
	}
	return ps, nil
}

// MustBuild is Build but panics on error.
func MustBuild(g *roadnet.Graph, cfg Config) *PageStore {
	ps, err := Build(g, cfg)
	if err != nil {
		panic(err)
	}
	return ps
}

// buildConnectivityClustered grows pages by breadth-first search from unvisited
// seeds, packing NodesPerPage connected nodes per page (CCAM-style).
func (ps *PageStore) buildConnectivityClustered() {
	g := ps.graph
	n := g.NumNodes()
	visited := make([]bool, n)
	queue := make([]roadnet.NodeID, 0, ps.cfg.NodesPerPage*2)
	for seed := 0; seed < n; seed++ {
		if visited[seed] {
			continue
		}
		// Start a BFS frontier; nodes are assigned to consecutive pages as
		// they are dequeued, so each page holds a compact BFS region.
		queue = queue[:0]
		queue = append(queue, roadnet.NodeID(seed))
		visited[seed] = true
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			ps.assign(u)
			for _, a := range g.Arcs(u) {
				if !visited[a.To] {
					visited[a.To] = true
					queue = append(queue, a.To)
				}
			}
		}
	}
}

// buildRandom scatters nodes uniformly across ceil(n/NodesPerPage) pages.
func (ps *PageStore) buildRandom() {
	n := ps.graph.NumNodes()
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	// Deterministic shuffle (SplitMix64, same scheme as internal/gen).
	state := ps.cfg.Seed
	if state == 0 {
		state = 0x9e3779b97f4a7c15
	}
	next := func() uint64 {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := n - 1; i > 0; i-- {
		j := int(next() % uint64(i+1))
		perm[i], perm[j] = perm[j], perm[i]
	}
	for _, id := range perm {
		ps.assign(roadnet.NodeID(id))
	}
}

// buildSpatial assigns nodes to pages in interleaved-bit (Z-order) sequence.
func (ps *PageStore) buildSpatial() {
	g := ps.graph
	minX, minY, maxX, maxY := g.Bounds()
	spanX, spanY := maxX-minX, maxY-minY
	if spanX <= 0 {
		spanX = 1
	}
	if spanY <= 0 {
		spanY = 1
	}
	type keyed struct {
		id  roadnet.NodeID
		key uint64
	}
	nodes := make([]keyed, g.NumNodes())
	for i, n := range g.Nodes() {
		x := uint32((n.X - minX) / spanX * 65535)
		y := uint32((n.Y - minY) / spanY * 65535)
		nodes[i] = keyed{n.ID, interleave(x, y)}
	}
	sort.Slice(nodes, func(i, j int) bool {
		if nodes[i].key != nodes[j].key {
			return nodes[i].key < nodes[j].key
		}
		return nodes[i].id < nodes[j].id
	})
	for _, k := range nodes {
		ps.assign(k.id)
	}
}

// interleave interleaves the low 16 bits of x and y into a Z-order key.
func interleave(x, y uint32) uint64 {
	var z uint64
	for i := uint(0); i < 16; i++ {
		z |= uint64(x>>i&1) << (2 * i)
		z |= uint64(y>>i&1) << (2*i + 1)
	}
	return z
}

// assign appends the node to the current (last) page, opening a new page when
// the last one is full.
func (ps *PageStore) assign(id roadnet.NodeID) {
	if ps.nodeToPage[id] != InvalidPage {
		return
	}
	if len(ps.pages) == 0 || len(ps.pages[len(ps.pages)-1]) >= ps.cfg.NodesPerPage {
		ps.pages = append(ps.pages, make([]roadnet.NodeID, 0, ps.cfg.NodesPerPage))
	}
	last := PageID(len(ps.pages) - 1)
	ps.pages[last] = append(ps.pages[last], id)
	ps.nodeToPage[id] = last
}

// PageOf returns the page holding node id.
func (ps *PageStore) PageOf(id roadnet.NodeID) PageID { return ps.nodeToPage[id] }

// NumPages returns the number of pages in the layout.
func (ps *PageStore) NumPages() int { return len(ps.pages) }

// PageNodes returns the nodes stored on page p. The slice must not be
// modified.
func (ps *PageStore) PageNodes(p PageID) []roadnet.NodeID { return ps.pages[p] }

// Graph returns the underlying graph.
func (ps *PageStore) Graph() *roadnet.Graph { return ps.graph }

// Config returns the layout configuration.
func (ps *PageStore) Config() Config { return ps.cfg }
