package storage

import (
	"sync"
	"testing"
	"testing/quick"

	"opaque/internal/gen"
	"opaque/internal/roadnet"
)

func testGraph(t *testing.T) *roadnet.Graph {
	t.Helper()
	cfg := gen.DefaultNetworkConfig()
	cfg.Nodes = 400
	cfg.Seed = 13
	return gen.MustGenerate(cfg)
}

func TestBuildPartitionings(t *testing.T) {
	g := testGraph(t)
	for _, part := range []Partitioning{ConnectivityClustered, RandomAssignment, HilbertOrder} {
		t.Run(string(part), func(t *testing.T) {
			ps, err := Build(g, Config{NodesPerPage: 32, Partitioning: part, Seed: 2})
			if err != nil {
				t.Fatal(err)
			}
			// Every node assigned to exactly one page, no page over capacity.
			seen := make(map[roadnet.NodeID]int)
			for p := PageID(0); int(p) < ps.NumPages(); p++ {
				nodes := ps.PageNodes(p)
				if len(nodes) > 32 {
					t.Errorf("page %d holds %d nodes, capacity 32", p, len(nodes))
				}
				for _, id := range nodes {
					seen[id]++
					if ps.PageOf(id) != p {
						t.Errorf("PageOf(%d) = %d, but node listed on page %d", id, ps.PageOf(id), p)
					}
				}
			}
			if len(seen) != g.NumNodes() {
				t.Errorf("%d nodes assigned, want %d", len(seen), g.NumNodes())
			}
			for id, count := range seen {
				if count != 1 {
					t.Errorf("node %d assigned %d times", id, count)
				}
			}
		})
	}
}

func TestBuildErrors(t *testing.T) {
	g := testGraph(t)
	if _, err := Build(g, Config{NodesPerPage: 0}); err == nil {
		t.Error("Build with zero page size succeeded")
	}
	if _, err := Build(g, Config{NodesPerPage: 16, Partitioning: "bogus"}); err == nil {
		t.Error("Build with unknown partitioning succeeded")
	}
	mutable := roadnet.NewGraph(1, 0)
	mutable.AddNode(0, 0)
	if _, err := Build(mutable, DefaultConfig()); err == nil {
		t.Error("Build on unfrozen graph succeeded")
	}
}

// TestClusteredLocality verifies the point of the CCAM layout: neighbours in
// the graph tend to share pages far more often than under random assignment.
func TestClusteredLocality(t *testing.T) {
	g := testGraph(t)
	samePageFraction := func(part Partitioning) float64 {
		ps := MustBuild(g, Config{NodesPerPage: 32, Partitioning: part, Seed: 3})
		same, total := 0, 0
		for id := 0; id < g.NumNodes(); id++ {
			for _, a := range g.Arcs(roadnet.NodeID(id)) {
				total++
				if ps.PageOf(roadnet.NodeID(id)) == ps.PageOf(a.To) {
					same++
				}
			}
		}
		return float64(same) / float64(total)
	}
	clustered := samePageFraction(ConnectivityClustered)
	random := samePageFraction(RandomAssignment)
	if clustered <= random {
		t.Errorf("clustered same-page fraction %.3f should exceed random %.3f", clustered, random)
	}
	if clustered < 0.3 {
		t.Errorf("clustered same-page fraction %.3f unexpectedly low", clustered)
	}
}

func TestBufferPoolBasics(t *testing.T) {
	bp, err := NewBufferPool(2)
	if err != nil {
		t.Fatal(err)
	}
	if hit := bp.Access(1); hit {
		t.Error("first access reported as hit")
	}
	if hit := bp.Access(1); !hit {
		t.Error("repeat access reported as miss")
	}
	bp.Access(2)
	bp.Access(3) // evicts 1 (LRU)
	if hit := bp.Access(1); hit {
		t.Error("evicted page reported as hit")
	}
	st := bp.Stats()
	if st.Accesses != 5 {
		t.Errorf("accesses = %d, want 5", st.Accesses)
	}
	if st.Faults != 4 {
		t.Errorf("faults = %d, want 4", st.Faults)
	}
	if st.Evictions < 1 {
		t.Errorf("evictions = %d, want >= 1", st.Evictions)
	}
	if got := st.HitRatio(); got <= 0 || got >= 1 {
		t.Errorf("hit ratio = %v, want in (0,1)", got)
	}
}

func TestBufferPoolLRUOrder(t *testing.T) {
	bp := MustNewBufferPool(2)
	bp.Access(1)
	bp.Access(2)
	bp.Access(1) // 1 becomes most recent; 2 is LRU
	bp.Access(3) // should evict 2
	if hit := bp.Access(1); !hit {
		t.Error("page 1 should still be resident")
	}
	if hit := bp.Access(2); hit {
		t.Error("page 2 should have been evicted")
	}
}

func TestBufferPoolErrorsAndReset(t *testing.T) {
	if _, err := NewBufferPool(0); err == nil {
		t.Error("NewBufferPool(0) succeeded")
	}
	bp := MustNewBufferPool(4)
	bp.Access(1)
	bp.ResetStats()
	if st := bp.Stats(); st.Accesses != 0 || st.Faults != 0 {
		t.Errorf("stats not zeroed: %+v", st)
	}
	if !bp.Access(1) {
		t.Error("ResetStats should not drop cached pages")
	}
	bp.Flush()
	if bp.Resident() != 0 {
		t.Error("Flush should drop cached pages")
	}
	if bp.Capacity() != 4 {
		t.Errorf("capacity = %d, want 4", bp.Capacity())
	}
}

func TestBufferPoolConcurrentAccess(t *testing.T) {
	bp := MustNewBufferPool(16)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				bp.Access(PageID((i * (w + 1)) % 64))
			}
		}(w)
	}
	wg.Wait()
	st := bp.Stats()
	if st.Accesses != 8*500 {
		t.Errorf("accesses = %d, want %d", st.Accesses, 8*500)
	}
	if bp.Resident() > 16 {
		t.Errorf("resident pages %d exceed capacity 16", bp.Resident())
	}
}

// Property: IOStats counters never go negative and faults never exceed
// accesses, under arbitrary access sequences and pool sizes.
func TestBufferPoolInvariantProperty(t *testing.T) {
	f := func(pages []uint8, capRaw uint8) bool {
		capacity := int(capRaw%16) + 1
		bp := MustNewBufferPool(capacity)
		for _, p := range pages {
			bp.Access(PageID(p % 32))
		}
		st := bp.Stats()
		return st.Faults <= st.Accesses && st.Evictions <= st.Faults && bp.Resident() <= capacity
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPagedGraphAccounting(t *testing.T) {
	g := testGraph(t)
	ps := MustBuild(g, DefaultConfig())
	pool := MustNewBufferPool(8)
	pg := NewPagedGraph(ps, pool)

	if pg.NumNodes() != g.NumNodes() {
		t.Errorf("NumNodes = %d, want %d", pg.NumNodes(), g.NumNodes())
	}
	before := pool.Stats().Accesses
	_ = pg.Arcs(0)
	_ = pg.Arcs(1)
	after := pool.Stats().Accesses
	if after-before != 2 {
		t.Errorf("2 adjacency reads charged %d accesses, want 2", after-before)
	}
	// Euclid and Graph are not charged.
	before = pool.Stats().Accesses
	_ = pg.Euclid(0, 1)
	_ = pg.Graph()
	if pool.Stats().Accesses != before {
		t.Error("Euclid/Graph should not be charged as page accesses")
	}
	if pg.Store() != ps || pg.Pool() != pool {
		t.Error("accessors should expose their store and pool")
	}
}

func TestMemoryGraphAccessor(t *testing.T) {
	g := testGraph(t)
	m := NewMemoryGraph(g)
	if m.NumNodes() != g.NumNodes() {
		t.Errorf("NumNodes = %d, want %d", m.NumNodes(), g.NumNodes())
	}
	if len(m.Arcs(0)) != len(g.Arcs(0)) {
		t.Error("MemoryGraph.Arcs disagrees with the graph")
	}
	if m.Graph() != g {
		t.Error("MemoryGraph.Graph should return the wrapped graph")
	}
	if m.Euclid(0, 1) != g.Euclid(0, 1) {
		t.Error("MemoryGraph.Euclid disagrees with the graph")
	}
}

func TestIOStatsAdd(t *testing.T) {
	a := IOStats{Accesses: 1, Faults: 2, Evictions: 3}
	b := IOStats{Accesses: 10, Faults: 20, Evictions: 30}
	sum := a.Add(b)
	if sum.Accesses != 11 || sum.Faults != 22 || sum.Evictions != 33 {
		t.Errorf("Add = %+v", sum)
	}
	if (IOStats{}).HitRatio() != 0 {
		t.Error("HitRatio of zero stats should be 0")
	}
}
