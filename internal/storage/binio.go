package storage

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// This file is the storage layer's binary persistence codec: a small,
// sticky-error reader/writer pair for versioned, checksummed binary sections.
// Preprocessed overlays (the contraction-hierarchy overlay of internal/ch is
// the first client) are persisted through it so every on-disk artefact of the
// system shares one envelope convention, documented in docs/FORMATS.md:
//
//	magic [4]byte | version uint16 | payload … | crc32 uint32
//
// All integers and floats are little-endian. The CRC-32 (IEEE) trailer covers
// the magic, the version and the whole payload, so a truncated or corrupted
// file is rejected at load time instead of producing a silently wrong index.

// BinaryWriter writes one versioned binary section. Errors are sticky: the
// first write failure is retained and every later call is a no-op, so callers
// write the whole payload unconditionally and check Close once.
type BinaryWriter struct {
	w   *bufio.Writer
	crc uint32
	err error
	buf [8]byte
}

// NewBinaryWriter starts a binary section on w with the given 4-byte magic
// and format version. The header is written (and checksummed) immediately.
func NewBinaryWriter(w io.Writer, magic string, version uint16) (*BinaryWriter, error) {
	if len(magic) != 4 {
		return nil, fmt.Errorf("storage: binary section magic must be 4 bytes, got %q", magic)
	}
	bw := &BinaryWriter{w: bufio.NewWriter(w)}
	bw.write([]byte(magic))
	bw.U16(version)
	return bw, bw.err
}

// write appends raw bytes to the section, folding them into the checksum.
func (bw *BinaryWriter) write(p []byte) {
	if bw.err != nil {
		return
	}
	bw.crc = crc32.Update(bw.crc, crc32.IEEETable, p)
	_, bw.err = bw.w.Write(p)
}

// U16 writes a little-endian uint16.
func (bw *BinaryWriter) U16(v uint16) {
	binary.LittleEndian.PutUint16(bw.buf[:2], v)
	bw.write(bw.buf[:2])
}

// U32 writes a little-endian uint32.
func (bw *BinaryWriter) U32(v uint32) {
	binary.LittleEndian.PutUint32(bw.buf[:4], v)
	bw.write(bw.buf[:4])
}

// I32 writes a little-endian int32 (two's complement).
func (bw *BinaryWriter) I32(v int32) { bw.U32(uint32(v)) }

// U64 writes a little-endian uint64.
func (bw *BinaryWriter) U64(v uint64) {
	binary.LittleEndian.PutUint64(bw.buf[:8], v)
	bw.write(bw.buf[:8])
}

// F64 writes a float64 as its little-endian IEEE-754 bit pattern.
func (bw *BinaryWriter) F64(v float64) { bw.U64(math.Float64bits(v)) }

// Close appends the CRC-32 trailer and flushes. It returns the first error
// encountered anywhere in the section, so a single check suffices.
func (bw *BinaryWriter) Close() error {
	if bw.err == nil {
		binary.LittleEndian.PutUint32(bw.buf[:4], bw.crc)
		if _, err := bw.w.Write(bw.buf[:4]); err != nil {
			bw.err = err
		}
	}
	if bw.err == nil {
		bw.err = bw.w.Flush()
	}
	return bw.err
}

// BinaryReader reads one versioned binary section written by BinaryWriter.
// Like the writer it is sticky-error: decode the whole payload
// unconditionally, then let Close verify the checksum and report the first
// failure.
type BinaryReader struct {
	r       *bufio.Reader
	crc     uint32
	err     error
	version uint16
	buf     [8]byte
}

// NewBinaryReader opens a binary section on r, validating the magic and that
// the file's version is at most maxVersion (newer files are rejected rather
// than misparsed; older versions are the caller's compatibility problem and
// exposed through Version).
func NewBinaryReader(r io.Reader, magic string, maxVersion uint16) (*BinaryReader, error) {
	if len(magic) != 4 {
		return nil, fmt.Errorf("storage: binary section magic must be 4 bytes, got %q", magic)
	}
	br := &BinaryReader{r: bufio.NewReader(r)}
	var got [4]byte
	br.read(got[:])
	if br.err != nil {
		return nil, fmt.Errorf("storage: reading binary section header: %w", br.err)
	}
	if string(got[:]) != magic {
		return nil, fmt.Errorf("storage: bad magic %q (want %q) — not a %s file", got[:], magic, magic)
	}
	br.version = br.U16()
	if br.err != nil {
		return nil, fmt.Errorf("storage: reading binary section version: %w", br.err)
	}
	if br.version > maxVersion {
		return nil, fmt.Errorf("storage: %s file has version %d, newest understood is %d", magic, br.version, maxVersion)
	}
	return br, nil
}

// Version returns the version number found in the section header.
func (br *BinaryReader) Version() uint16 { return br.version }

// Err returns the first error encountered so far (nil while healthy). Close
// also reports it; Err lets decoders bail out of large loops early.
func (br *BinaryReader) Err() error { return br.err }

// read fills p from the section, folding the bytes into the checksum.
func (br *BinaryReader) read(p []byte) {
	if br.err != nil {
		return
	}
	if _, err := io.ReadFull(br.r, p); err != nil {
		br.err = err
		return
	}
	br.crc = crc32.Update(br.crc, crc32.IEEETable, p)
}

// U16 reads a little-endian uint16.
func (br *BinaryReader) U16() uint16 {
	br.read(br.buf[:2])
	if br.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint16(br.buf[:2])
}

// U32 reads a little-endian uint32.
func (br *BinaryReader) U32() uint32 {
	br.read(br.buf[:4])
	if br.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint32(br.buf[:4])
}

// I32 reads a little-endian int32.
func (br *BinaryReader) I32() int32 { return int32(br.U32()) }

// U64 reads a little-endian uint64.
func (br *BinaryReader) U64() uint64 {
	br.read(br.buf[:8])
	if br.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint64(br.buf[:8])
}

// F64 reads a float64 from its little-endian IEEE-754 bit pattern.
func (br *BinaryReader) F64() float64 { return math.Float64frombits(br.U64()) }

// Close reads the CRC-32 trailer and verifies it against the running
// checksum, then confirms the stream ends there, returning the first error
// of the whole section (decode errors take precedence over checksum
// mismatch, which in turn precedes trailing garbage).
func (br *BinaryReader) Close() error {
	if br.err != nil {
		return br.err
	}
	computed := br.crc
	var trailer [4]byte
	if _, err := io.ReadFull(br.r, trailer[:]); err != nil {
		return fmt.Errorf("storage: reading checksum trailer: %w", err)
	}
	stored := binary.LittleEndian.Uint32(trailer[:])
	if stored != computed {
		return fmt.Errorf("storage: checksum mismatch: file says %08x, payload hashes to %08x (corrupted or truncated file)", stored, computed)
	}
	if _, err := br.r.ReadByte(); err != io.EOF {
		if err != nil {
			return fmt.Errorf("storage: checking for end of section: %w", err)
		}
		return fmt.Errorf("storage: trailing data after the checksum trailer (corrupted or concatenated file)")
	}
	return nil
}
