package storage

import (
	"sync"
	"testing"

	"opaque/internal/roadnet"
)

func mutableFixture(t *testing.T) *roadnet.Graph {
	t.Helper()
	g := roadnet.NewGraph(3, 4)
	g.AddNode(0, 0)
	g.AddNode(1, 0)
	g.AddNode(2, 0)
	g.MustAddBidirectionalEdge(0, 1, 2)
	g.MustAddBidirectionalEdge(1, 2, 3)
	g.Freeze()
	return g
}

func TestMutableGraphSnapshotPinning(t *testing.T) {
	g := mutableFixture(t)
	m := NewMutableGraph(g)
	if GenerationOf(m) != 0 {
		t.Fatalf("fresh mutable graph at generation %d", GenerationOf(m))
	}
	snap := SnapshotOf(m)
	gen, err := m.UpdateWeights([]roadnet.ArcWeightChange{{From: 0, To: 1, NewCost: 7}})
	if err != nil {
		t.Fatal(err)
	}
	if gen != 1 || GenerationOf(m) != 1 {
		t.Fatalf("generation after update: returned %d, accessor %d, want 1", gen, GenerationOf(m))
	}
	// The pinned snapshot still serves the pre-update weights and keeps its
	// generation; the mutable view serves the new ones.
	if c := snap.Arcs(0)[0].Cost; c != 2 {
		t.Fatalf("pinned snapshot sees updated cost %v", c)
	}
	if GenerationOf(snap) != 0 {
		t.Fatalf("pinned snapshot generation moved to %d", GenerationOf(snap))
	}
	if c := m.Arcs(0)[0].Cost; c != 7 {
		t.Fatalf("mutable view serves stale cost %v", c)
	}
	// SnapshotOf on an immutable accessor is the accessor itself.
	mem := NewMemoryGraph(g)
	if SnapshotOf(mem) != Accessor(mem) {
		t.Fatal("SnapshotOf wrapped an immutable accessor")
	}
}

func TestMutableGraphFailedUpdateKeepsState(t *testing.T) {
	g := mutableFixture(t)
	m := NewMutableGraph(g)
	before := m.Graph()
	if _, err := m.UpdateWeights([]roadnet.ArcWeightChange{{From: 0, To: 2, NewCost: 1}}); err == nil {
		t.Fatal("nonexistent arc accepted")
	}
	if m.Graph() != before || GenerationOf(m) != 0 {
		t.Fatal("failed update moved the snapshot or generation")
	}
}

// TestMutableGraphConcurrentReadersAndWriters is a -race smoke test: readers
// iterate arcs while writers update weights. Every read must observe one of
// the two alternating costs, never anything else.
func TestMutableGraphConcurrentReadersAndWriters(t *testing.T) {
	g := mutableFixture(t)
	m := NewMutableGraph(g)
	var writers, readers sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 2; w++ {
		writers.Add(1)
		go func(seed int) {
			defer writers.Done()
			cost := float64(seed + 10)
			for i := 0; i < 200; i++ {
				if _, err := m.UpdateWeights([]roadnet.ArcWeightChange{{From: 1, To: 2, NewCost: cost}}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			snap := SnapshotOf(m)
			var got float64
			snap.ForEachArc(1, func(a roadnet.Arc) bool {
				if a.To == 2 {
					got = a.Cost
					return false
				}
				return true
			})
			if got != 3 && got != 10 && got != 11 {
				t.Errorf("observed impossible cost %v", got)
				return
			}
		}
	}()
	writers.Wait()
	close(stop)
	readers.Wait()
	if gen := GenerationOf(m); gen != 400 {
		t.Fatalf("generation %d after 400 updates", gen)
	}
}
