package storage

import (
	"testing"

	"opaque/internal/roadnet"
)

func filteredTestGraph(t *testing.T) *roadnet.Graph {
	t.Helper()
	// 0 -1- 1 -1- 2, plus a long "highway" 0 -10- 2.
	g := roadnet.NewGraph(3, 6)
	for i := 0; i < 3; i++ {
		g.AddNode(float64(i), 0)
	}
	g.MustAddBidirectionalEdge(0, 1, 1)
	g.MustAddBidirectionalEdge(1, 2, 1)
	g.MustAddBidirectionalEdge(0, 2, 10)
	g.Freeze()
	return g
}

func TestFilteredGraphNilFilterPassesThrough(t *testing.T) {
	g := filteredTestGraph(t)
	f := NewFilteredGraph(NewMemoryGraph(g), nil)
	if len(f.Arcs(0)) != len(g.Arcs(0)) {
		t.Error("nil filter altered adjacency")
	}
	if f.NumNodes() != g.NumNodes() || f.Graph() != g {
		t.Error("accessor plumbing broken")
	}
	if f.Euclid(0, 2) != g.Euclid(0, 2) {
		t.Error("Euclid plumbing broken")
	}
}

func TestAvoidNodesFilter(t *testing.T) {
	g := filteredTestGraph(t)
	f := NewFilteredGraph(NewMemoryGraph(g), AvoidNodes(1))
	for _, a := range f.Arcs(0) {
		if a.To == 1 {
			t.Error("arc into avoided node survived the filter")
		}
	}
	// Node 2 remains reachable via the highway arc.
	found := false
	for _, a := range f.Arcs(0) {
		if a.To == 2 {
			found = true
		}
	}
	if !found {
		t.Error("unrelated arcs were dropped")
	}
}

func TestMaxArcCostFilter(t *testing.T) {
	g := filteredTestGraph(t)
	f := NewFilteredGraph(NewMemoryGraph(g), MaxArcCost(5))
	for _, a := range f.Arcs(0) {
		if a.Cost > 5 {
			t.Errorf("arc of cost %v survived a limit of 5", a.Cost)
		}
	}
	if len(f.Arcs(0)) != 1 {
		t.Errorf("node 0 should keep exactly one arc under the limit, got %d", len(f.Arcs(0)))
	}
}

func TestFilteredGraphChargesIO(t *testing.T) {
	g := filteredTestGraph(t)
	ps := MustBuild(g, DefaultConfig())
	pool := MustNewBufferPool(4)
	paged := NewPagedGraph(ps, pool)
	f := NewFilteredGraph(paged, MaxArcCost(5))
	before := pool.Stats().Accesses
	_ = f.Arcs(0)
	if pool.Stats().Accesses != before+1 {
		t.Error("filtered access did not charge the underlying page read")
	}
}
