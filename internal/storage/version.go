package storage

import "sync/atomic"

// Versioned is an optional extension of Accessor implemented by accessors
// whose underlying data can change over the lifetime of a server (live
// traffic updates, road closures, a reloaded map). The generation number is a
// monotonically increasing counter: any derived structure (such as the SSMD
// tree cache in internal/search) that was computed under an older generation
// must be discarded.
//
// Accessors that do not implement Versioned are treated as immutable
// (generation 0 forever) by GenerationOf.
type Versioned interface {
	// Generation returns the current data generation of the accessor.
	Generation() uint64
}

// Invalidator is implemented by accessors that allow external code to signal
// a data change, bumping the generation returned by Generation.
type Invalidator interface {
	// BumpGeneration marks the accessor's data as changed, invalidating any
	// cached structures keyed by the previous generation.
	BumpGeneration()
}

// GenerationOf returns acc's current generation, or 0 when the accessor does
// not implement Versioned (i.e. is immutable).
func GenerationOf(acc Accessor) uint64 {
	if v, ok := acc.(Versioned); ok {
		return v.Generation()
	}
	return 0
}

// generation is an embeddable atomic generation counter implementing both
// Versioned and Invalidator.
type generation struct {
	gen atomic.Uint64
}

// Generation implements Versioned.
func (g *generation) Generation() uint64 { return g.gen.Load() }

// BumpGeneration implements Invalidator.
func (g *generation) BumpGeneration() { g.gen.Add(1) }
