package storage

import (
	"fmt"
	"sync"
	"sync/atomic"

	"opaque/internal/roadnet"
)

// This file is the storage layer's mutable weight view: the accessor a
// server installs when the road network's costs can change while queries are
// in flight (live traffic, closures). The design is snapshot-based:
//
//   - MutableGraph holds an atomic pointer to the current (graph,
//     generation) pair. UpdateWeights derives a new graph copy-on-write
//     (roadnet.Graph.WithUpdatedWeights), bumps the generation and swaps the
//     pointer — readers never observe a half-applied update.
//   - GraphSnapshot is one immutable (graph, generation) pair. A query that
//     pins a snapshot at admission (see Snapshotter) evaluates entirely
//     against one generation: the table it returns is all-old or all-new,
//     never mixed, no matter how many updates land mid-flight.
//
// Generation numbers drive cache invalidation exactly as for the other
// versioned accessors (search.TreeCache keys trees by generation); the
// graph's ContentChecksum — re-derived incrementally by the copy-on-write
// update — is what checksum-bound structures (the CH overlay) compare
// against to detect staleness.

// WeightUpdater is implemented by accessors that accept live weight updates.
// UpdateWeights applies every change atomically with respect to concurrent
// readers and returns the data generation the updated weights carry.
type WeightUpdater interface {
	UpdateWeights(changes []roadnet.ArcWeightChange) (uint64, error)
}

// Snapshotter is implemented by accessors whose data can move under them.
// Snapshot returns an immutable view of the current data: an Accessor whose
// graph and generation never change, so one query evaluated entirely against
// it is internally consistent even while updates land concurrently.
// Accessors that do not implement Snapshotter are themselves immutable
// enough to serve as their own snapshot.
type Snapshotter interface {
	Snapshot() Accessor
}

// SnapshotOf returns the accessor itself, or — when it supports snapshotting
// — an immutable view of its current data. Query evaluations call this once
// at admission and use the result throughout.
func SnapshotOf(acc Accessor) Accessor {
	if s, ok := acc.(Snapshotter); ok {
		return s.Snapshot()
	}
	return acc
}

// GraphSnapshot is one immutable (graph, generation) pair of a MutableGraph.
// It is a free-access Accessor like MemoryGraph, plus a fixed Versioned
// generation.
type GraphSnapshot struct {
	g   *roadnet.Graph
	gen uint64
}

// NumNodes implements Accessor.
func (s *GraphSnapshot) NumNodes() int { return s.g.NumNodes() }

// Arcs implements Accessor.
func (s *GraphSnapshot) Arcs(id roadnet.NodeID) []roadnet.Arc { return s.g.Arcs(id) }

// ForEachArc implements Accessor.
func (s *GraphSnapshot) ForEachArc(id roadnet.NodeID, yield func(roadnet.Arc) bool) {
	s.g.ForEachArc(id, yield)
}

// Euclid implements Accessor.
func (s *GraphSnapshot) Euclid(a, b roadnet.NodeID) float64 { return s.g.Euclid(a, b) }

// Graph implements Accessor.
func (s *GraphSnapshot) Graph() *roadnet.Graph { return s.g }

// Generation implements Versioned: the generation is fixed for the
// snapshot's lifetime.
func (s *GraphSnapshot) Generation() uint64 { return s.gen }

// MutableGraph is an Accessor over an in-memory road network whose weights
// can be updated while queries run. Reads (the Accessor methods) are served
// from the current snapshot; UpdateWeights swaps in a copy-on-write
// successor graph and bumps the generation. All methods are safe for
// concurrent use.
//
// Note that two Accessor calls on a MutableGraph may observe different
// snapshots when an update lands between them. Query evaluations that must
// be internally consistent pin one snapshot up front via Snapshot (the
// search.Processor does this automatically through storage.SnapshotOf).
type MutableGraph struct {
	mu  sync.Mutex // serialises writers; readers go through cur only
	cur atomic.Pointer[GraphSnapshot]
}

// NewMutableGraph wraps a frozen graph as generation 0.
func NewMutableGraph(g *roadnet.Graph) *MutableGraph {
	m := &MutableGraph{}
	m.cur.Store(&GraphSnapshot{g: g, gen: 0})
	return m
}

// Snapshot implements Snapshotter: the current immutable (graph, generation)
// view. The returned value is shared and allocation-free — snapshots are
// created by updates, not by readers.
func (m *MutableGraph) Snapshot() Accessor { return m.cur.Load() }

// UpdateWeights implements WeightUpdater: it derives a copy-on-write graph
// with the changes applied (see roadnet.Graph.WithUpdatedWeights for the
// change semantics and validation), bumps the generation and atomically
// publishes the new snapshot. Concurrent readers keep their pinned snapshots;
// no reader ever observes a partially applied update. On error nothing is
// published and the generation does not move.
func (m *MutableGraph) UpdateWeights(changes []roadnet.ArcWeightChange) (uint64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	cur := m.cur.Load()
	g, err := cur.g.WithUpdatedWeights(changes)
	if err != nil {
		return cur.gen, fmt.Errorf("storage: updating weights: %w", err)
	}
	next := &GraphSnapshot{g: g, gen: cur.gen + 1}
	m.cur.Store(next)
	return next.gen, nil
}

// NumNodes implements Accessor.
func (m *MutableGraph) NumNodes() int { return m.cur.Load().NumNodes() }

// Arcs implements Accessor.
func (m *MutableGraph) Arcs(id roadnet.NodeID) []roadnet.Arc { return m.cur.Load().Arcs(id) }

// ForEachArc implements Accessor.
func (m *MutableGraph) ForEachArc(id roadnet.NodeID, yield func(roadnet.Arc) bool) {
	m.cur.Load().ForEachArc(id, yield)
}

// Euclid implements Accessor.
func (m *MutableGraph) Euclid(a, b roadnet.NodeID) float64 { return m.cur.Load().Euclid(a, b) }

// Graph implements Accessor: the current graph snapshot.
func (m *MutableGraph) Graph() *roadnet.Graph { return m.cur.Load().g }

// Generation implements Versioned: the generation of the current snapshot.
func (m *MutableGraph) Generation() uint64 { return m.cur.Load().gen }
