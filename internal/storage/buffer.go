package storage

import (
	"container/list"
	"fmt"
	"sync"
)

// IOStats counts logical and physical page accesses observed by a BufferPool.
type IOStats struct {
	// Accesses is the number of logical page requests.
	Accesses int64
	// Faults is the number of requests that missed the buffer and would have
	// caused a physical disk read.
	Faults int64
	// Evictions is the number of pages evicted to make room.
	Evictions int64
}

// HitRatio returns the fraction of accesses served from the buffer.
func (s IOStats) HitRatio() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return 1 - float64(s.Faults)/float64(s.Accesses)
}

// Add accumulates other into s and returns the sum.
func (s IOStats) Add(other IOStats) IOStats {
	return IOStats{
		Accesses:  s.Accesses + other.Accesses,
		Faults:    s.Faults + other.Faults,
		Evictions: s.Evictions + other.Evictions,
	}
}

// BufferPool is an LRU page buffer of fixed capacity that records access and
// fault counts. It is safe for concurrent use; the server shares one pool
// across queries to model a shared database buffer.
type BufferPool struct {
	mu       sync.Mutex
	capacity int
	lru      *list.List               // front = most recently used
	index    map[PageID]*list.Element // page -> list element
	stats    IOStats
}

// NewBufferPool returns a pool that caches up to capacity pages. Capacity
// must be at least 1.
func NewBufferPool(capacity int) (*BufferPool, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("storage: buffer pool capacity must be >= 1, got %d", capacity)
	}
	return &BufferPool{
		capacity: capacity,
		lru:      list.New(),
		index:    make(map[PageID]*list.Element, capacity),
	}, nil
}

// MustNewBufferPool is NewBufferPool but panics on error.
func MustNewBufferPool(capacity int) *BufferPool {
	bp, err := NewBufferPool(capacity)
	if err != nil {
		panic(err)
	}
	return bp
}

// Access records a logical access to page p, faulting it in if absent and
// evicting the least recently used page when full. It returns true when the
// access was a buffer hit.
func (bp *BufferPool) Access(p PageID) bool {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	bp.stats.Accesses++
	if el, ok := bp.index[p]; ok {
		bp.lru.MoveToFront(el)
		return true
	}
	bp.stats.Faults++
	if bp.lru.Len() >= bp.capacity {
		back := bp.lru.Back()
		bp.lru.Remove(back)
		delete(bp.index, back.Value.(PageID))
		bp.stats.Evictions++
	}
	bp.index[p] = bp.lru.PushFront(p)
	return false
}

// Stats returns a snapshot of the accumulated counters.
func (bp *BufferPool) Stats() IOStats {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return bp.stats
}

// ResetStats zeroes the counters without dropping cached pages.
func (bp *BufferPool) ResetStats() {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	bp.stats = IOStats{}
}

// Flush drops all cached pages and zeroes the counters.
func (bp *BufferPool) Flush() {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	bp.lru.Init()
	bp.index = make(map[PageID]*list.Element, bp.capacity)
	bp.stats = IOStats{}
}

// Capacity returns the pool capacity in pages.
func (bp *BufferPool) Capacity() int { return bp.capacity }

// Resident returns the number of pages currently cached.
func (bp *BufferPool) Resident() int {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return bp.lru.Len()
}
