package protocol

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
)

// ErrConnBroken reports a one-shot Conn whose gob stream desynchronised on an
// earlier Send or Recv failure. The connection is closed and unusable; callers
// must redial instead of retrying on it.
var ErrConnBroken = errors.New("protocol: connection broken by earlier error")

// Conn is a message-oriented wrapper around a stream connection. It is safe
// for use by one reader and one writer goroutine concurrently; Call serialises
// whole request/response exchanges for simple RPC-style use.
type Conn struct {
	raw     net.Conn
	codec   Codec
	sendMu  sync.Mutex
	recvMu  sync.Mutex
	callMu  sync.Mutex
	closeMu sync.Once
	closed  chan struct{}
	broken  atomic.Bool
}

// NewConn wraps a stream connection with the gob codec.
func NewConn(raw net.Conn) *Conn {
	return &Conn{
		raw:    raw,
		codec:  NewGobCodec(raw, raw),
		closed: make(chan struct{}),
	}
}

// Send encodes and writes one message. A write failure leaves the gob stream
// in an unknown state, so the connection is marked broken and closed.
func (c *Conn) Send(msg any) error {
	if c.broken.Load() {
		return ErrConnBroken
	}
	env, err := Wrap(msg)
	if err != nil {
		return err
	}
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	if err := c.codec.Encode(env); err != nil {
		c.breakConn()
		return err
	}
	return nil
}

// Recv reads and decodes one message. A decode failure (other than a clean
// close) desynchronises the stream, so the connection is marked broken and
// closed.
func (c *Conn) Recv() (any, error) {
	if c.broken.Load() {
		return nil, ErrConnBroken
	}
	c.recvMu.Lock()
	defer c.recvMu.Unlock()
	var env Envelope
	if err := c.codec.Decode(&env); err != nil {
		c.breakConn()
		return nil, err
	}
	return env.Unwrap()
}

// breakConn marks the connection unusable after a stream error and closes it,
// so later callers fail fast with ErrConnBroken instead of reading replies
// that belong to an earlier, half-finished exchange.
func (c *Conn) breakConn() {
	c.broken.Store(true)
	c.Close()
}

// Call sends a request and waits for the next message as its response. Calls
// are serialised, which is sufficient for the obfuscator-to-server and
// client-to-obfuscator request/response flows. After any transport failure
// the connection is broken and Call refuses further use — without this, a
// failed exchange would leave the next Call reading the previous call's
// late-arriving reply.
func (c *Conn) Call(msg any) (any, error) {
	c.callMu.Lock()
	defer c.callMu.Unlock()
	if c.broken.Load() {
		return nil, ErrConnBroken
	}
	if err := c.Send(msg); err != nil {
		return nil, err
	}
	return c.Recv()
}

// Broken reports whether the connection failed a Send or Recv and was closed.
func (c *Conn) Broken() bool { return c.broken.Load() }

// Close closes the underlying connection. It is safe to call multiple times.
func (c *Conn) Close() error {
	var err error
	c.closeMu.Do(func() {
		close(c.closed)
		err = c.raw.Close()
	})
	return err
}

// RemoteAddr returns the remote address of the underlying connection.
func (c *Conn) RemoteAddr() net.Addr { return c.raw.RemoteAddr() }

// Dial connects to addr over TCP and wraps the connection.
func Dial(addr string) (*Conn, error) {
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("protocol: dial %s: %w", addr, err)
	}
	return NewConn(raw), nil
}

// Handler processes one received message and returns the reply to send, or
// nil for no reply.
type Handler func(msg any) (reply any, err error)

// ServeConn reads messages from the connection and answers each with the
// handler's reply until the connection fails or closes. Handler errors are
// reported to the peer as ErrorReply messages and do not terminate the loop.
func ServeConn(c *Conn, handle Handler) error {
	defer c.Close()
	for {
		msg, err := c.Recv()
		if err != nil {
			return err
		}
		reply, herr := handle(msg)
		if herr != nil {
			if sendErr := c.Send(ErrorReply{Message: herr.Error()}); sendErr != nil {
				return sendErr
			}
			continue
		}
		if reply == nil {
			continue
		}
		if err := c.Send(reply); err != nil {
			return err
		}
	}
}

// ServeListener accepts connections from ln and serves each with the handler
// on its own goroutine until the listener is closed. It returns the accept
// error that terminated the loop.
func ServeListener(ln net.Listener, handle Handler) error {
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		raw, err := ln.Accept()
		if err != nil {
			return err
		}
		conn := NewConn(raw)
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = ServeConn(conn, handle)
		}()
	}
}
