package protocol

// This file is the multiplexed transport that replaces the one-shot
// request/response Conn for production serving: one persistent connection
// carries many concurrent requests as OPMX1 frames (frame.go), correlated by
// request ID. On top of the frame layer it provides
//
//   - a Hello/Welcome handshake: the dialling side announces itself, the
//     accepting side answers with its identity, data generation, weight
//     content checksum, partition shape and profile catalog — what a fleet
//     router needs to admit a shard;
//   - streaming batch replies: a BatchQuery is answered as one
//     FrameStreamItem per query, emitted as each query completes, closed by
//     FrameStreamEnd — the client reassembles the BatchReply;
//   - per-connection admission control: at most MaxInFlight requests run
//     concurrently (further frames stay unread, pushing back on the peer via
//     the transport), and above the ShedAt watermark incoming work is marked
//     for degradation so the handler can shed to distance-only evaluation.
//
// Payloads are gob-encoded Envelopes on one persistent stream per direction
// (type descriptions travel once per connection, not once per frame); a
// payload that fails to decode poisons the stream and closes the connection.

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Hello is the handshake message both ends of a multiplexed connection
// exchange: the dialler sends its own (FrameHello), the accepter answers
// with its serving identity (FrameWelcome).
type Hello struct {
	// Node names the peer (an address or configured identity); Role is
	// "client", "obfuscator", "router" or "server".
	Node string
	Role string
	// Generation and ContentSum identify the metric a serving peer currently
	// answers under (see ServerReply.Generation/ContentSum); zero for peers
	// that do not serve queries.
	Generation uint64
	ContentSum uint64
	// Cells is the partition cell count of the serving peer's overlay (0 =
	// unpartitioned); Profiles its precustomized weight-profile catalog.
	Cells    int
	Profiles []string
	// MaxInFlight advertises the per-connection admission window the serving
	// peer enforces.
	MaxInFlight int
}

// Mux transport errors.
var (
	// ErrMuxClosed reports an operation on a multiplexed connection that has
	// failed or been closed; pending and future calls all return it (wrapped
	// around the terminal cause).
	ErrMuxClosed = errors.New("protocol: mux connection closed")
	// ErrHandshake reports a handshake that did not follow Hello/Welcome.
	ErrHandshake = errors.New("protocol: mux handshake failed")
	// ErrDeadlineExceeded reports a request whose deadline passed before a
	// reply arrived. The connection itself may be healthy (a slow peer) or
	// silently dead (a blackholed route) — the caller cannot tell, so fleet
	// routers treat it as a shard health failure.
	ErrDeadlineExceeded = errors.New("protocol: deadline exceeded")
)

// DeadlineExceededMsg is the RemoteError message the serving side answers
// with when it drops a request whose envelope deadline expired before
// evaluation started.
const DeadlineExceededMsg = "deadline exceeded before evaluation"

// IsDeadlineExceeded reports whether err is a deadline failure — either the
// local ErrDeadlineExceeded (no reply in time) or the peer's remote drop of
// expired work.
func IsDeadlineExceeded(err error) bool {
	if errors.Is(err, ErrDeadlineExceeded) {
		return true
	}
	var re *RemoteError
	return errors.As(err, &re) && strings.Contains(re.Msg, DeadlineExceededMsg)
}

// RemoteError is a failure reported by the peer's handler (a FrameErr
// answer). It is distinct from transport errors: the connection remains
// healthy and retrying on another connection will not help unless the
// request itself changes.
type RemoteError struct {
	Msg string
}

// Error implements error.
func (e *RemoteError) Error() string { return "protocol: remote error: " + e.Msg }

// envelopeCodec encodes and decodes envelopes on one persistent gob stream,
// buffering each message so it can travel as a frame payload. Not safe for
// concurrent use; callers serialise.
type envelopeCodec struct {
	buf bytes.Buffer
	enc *gob.Encoder
	dec *gob.Decoder
}

func newEnvelopeCodec() *envelopeCodec {
	c := &envelopeCodec{}
	c.enc = gob.NewEncoder(&c.buf)
	c.dec = gob.NewDecoder(&c.buf)
	return c
}

// encode appends msg's envelope (stamped with the request deadline, 0 =
// none) to the stream and returns its bytes, valid until the next encode
// call.
func (c *envelopeCodec) encode(msg any, deadline int64) ([]byte, error) {
	env, err := Wrap(msg)
	if err != nil {
		return nil, err
	}
	env.Deadline = deadline
	c.buf.Reset()
	if err := c.enc.Encode(env); err != nil {
		return nil, fmt.Errorf("protocol: encoding envelope: %w", err)
	}
	return c.buf.Bytes(), nil
}

// decode feeds one frame payload into the stream and decodes the envelope it
// carries, returning the message and the envelope deadline (Unix nanos, 0 =
// none).
func (c *envelopeCodec) decode(payload []byte) (any, int64, error) {
	c.buf.Write(payload)
	var env Envelope
	if err := c.dec.Decode(&env); err != nil {
		return nil, 0, fmt.Errorf("protocol: decoding envelope: %w", err)
	}
	msg, err := env.Unwrap()
	return msg, env.Deadline, err
}

// helloCodec carries the handshake Hellos on their own self-contained gob
// payloads (the envelope streams start after the handshake).
func encodeHello(h Hello) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(h); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func decodeHello(payload []byte) (Hello, error) {
	var h Hello
	err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&h)
	return h, err
}

// muxEvent is one frame delivered to a waiting call.
type muxEvent struct {
	frameType FrameType
	msg       any
}

// muxCall is one in-flight request on a MuxClient. Streaming replies deliver
// several events; unary replies exactly one.
type muxCall struct {
	events chan muxEvent
}

// MuxClient is the dialling side of a multiplexed connection: any number of
// goroutines issue requests concurrently over one persistent framed
// connection. A transport failure fails every pending and future call with
// ErrMuxClosed (wrapping the cause); the client is then dead and a new one
// must be dialled.
type MuxClient struct {
	raw  net.Conn
	peer Hello

	sendMu sync.Mutex
	enc    *envelopeCodec

	nextID atomic.Uint64

	mu      sync.Mutex
	pending map[uint64]*muxCall
	err     error // terminal cause, set once under mu

	closeOnce sync.Once
	done      chan struct{}
}

// DialMux connects to addr over TCP and performs the multiplexed handshake,
// announcing hello.
func DialMux(addr string, hello Hello) (*MuxClient, error) {
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("protocol: dial %s: %w", addr, err)
	}
	c, err := NewMuxClient(raw, hello)
	if err != nil {
		raw.Close()
		return nil, err
	}
	return c, nil
}

// NewMuxClient wraps an established stream connection, sends hello and waits
// for the peer's welcome. On error the raw connection is left to the caller.
func NewMuxClient(raw net.Conn, hello Hello) (*MuxClient, error) {
	payload, err := encodeHello(hello)
	if err != nil {
		return nil, fmt.Errorf("%w: encoding hello: %v", ErrHandshake, err)
	}
	if err := WriteFrame(raw, Frame{Type: FrameHello, Payload: payload}); err != nil {
		return nil, fmt.Errorf("%w: sending hello: %v", ErrHandshake, err)
	}
	f, err := ReadFrame(raw)
	if err != nil {
		return nil, fmt.Errorf("%w: reading welcome: %v", ErrHandshake, err)
	}
	if f.Type != FrameWelcome {
		return nil, fmt.Errorf("%w: expected welcome frame, got type %d", ErrHandshake, f.Type)
	}
	peer, err := decodeHello(f.Payload)
	if err != nil {
		return nil, fmt.Errorf("%w: decoding welcome: %v", ErrHandshake, err)
	}
	c := &MuxClient{
		raw:     raw,
		peer:    peer,
		enc:     newEnvelopeCodec(),
		pending: make(map[uint64]*muxCall),
		done:    make(chan struct{}),
	}
	go c.readLoop()
	return c, nil
}

// Peer returns the accepting side's Hello: its identity, generation, content
// checksum, partition shape and profile catalog — as of the handshake, or of
// the latest Ping pong, whichever is fresher.
func (c *MuxClient) Peer() Hello {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.peer
}

// Err returns the terminal transport error, or nil while the connection is
// healthy.
func (c *MuxClient) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// Close tears the connection down; pending calls fail with ErrMuxClosed.
func (c *MuxClient) Close() error {
	c.fail(ErrMuxClosed)
	return nil
}

// fail records the terminal cause once, closes the raw connection and fails
// every pending call.
func (c *MuxClient) fail(cause error) {
	c.closeOnce.Do(func() {
		c.mu.Lock()
		c.err = cause
		pending := c.pending
		c.pending = nil
		c.mu.Unlock()
		close(c.done)
		c.raw.Close()
		for _, call := range pending {
			close(call.events)
		}
	})
}

// readLoop delivers reply frames to their pending calls until the connection
// dies.
func (c *MuxClient) readLoop() {
	dec := newEnvelopeCodec()
	for {
		f, err := ReadFrame(c.raw)
		if err != nil {
			c.fail(fmt.Errorf("%w: %v", ErrMuxClosed, err))
			return
		}
		if f.Type == FrameGoAway {
			c.fail(fmt.Errorf("%w: peer sent go-away", ErrMuxClosed))
			return
		}
		var msg any
		switch f.Type {
		case FrameStreamEnd:
			// No payload.
		case FramePong:
			// Pongs carry a self-contained Hello gob, outside the envelope
			// stream; a bad pong only fails the probe, not the connection.
			h, derr := decodeHello(f.Payload)
			if derr == nil {
				c.mu.Lock()
				c.peer = h
				c.mu.Unlock()
			}
			msg = h
		default:
			msg, _, err = dec.decode(f.Payload)
			if err != nil {
				// The per-direction gob stream is poisoned; nothing after
				// this frame can decode.
				c.fail(fmt.Errorf("%w: %v", ErrMuxClosed, err))
				return
			}
		}
		terminal := f.Type == FrameMsg || f.Type == FrameErr || f.Type == FrameStreamEnd || f.Type == FramePong
		c.mu.Lock()
		call := c.pending[f.ID]
		if call != nil && terminal {
			// Terminal frame for this ID: no more events will follow.
			delete(c.pending, f.ID)
		}
		c.mu.Unlock()
		if call == nil {
			continue // reply for a caller that gave up; drop
		}
		call.events <- muxEvent{frameType: f.Type, msg: msg}
		if terminal {
			close(call.events)
		}
	}
}

// register allocates a request ID and its pending call.
func (c *MuxClient) register() (uint64, *muxCall, error) {
	id := c.nextID.Add(1)
	// Stream replies can deliver many items before the caller drains them;
	// size the channel generously so the read loop never blocks on a slow
	// caller of a unary request (streaming callers drain promptly).
	call := &muxCall{events: make(chan muxEvent, 64)}
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return 0, nil, fmt.Errorf("%w: %v", ErrMuxClosed, err)
	}
	c.pending[id] = call
	c.mu.Unlock()
	return id, call, nil
}

// send encodes and writes one request frame, stamping the envelope deadline
// (Unix nanos, 0 = none). When a deadline is set it doubles as the raw
// connection's write deadline, so a peer that stopped reading (a blackholed
// route pushing back through the transport) cannot wedge the sender forever.
func (c *MuxClient) send(id uint64, msg any, deadline int64) error {
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	payload, err := c.enc.encode(msg, deadline)
	if err != nil {
		return err
	}
	if deadline != 0 {
		_ = c.raw.SetWriteDeadline(time.Unix(0, deadline))
		defer func() { _ = c.raw.SetWriteDeadline(time.Time{}) }()
	}
	if err := WriteFrame(c.raw, Frame{Type: FrameMsg, ID: id, Payload: payload}); err != nil {
		// A failed or timed-out write leaves a partial frame on the wire; the
		// connection is unusable either way.
		c.fail(fmt.Errorf("%w: %v", ErrMuxClosed, err))
		return fmt.Errorf("%w: %v", ErrMuxClosed, err)
	}
	return nil
}

// abandon forgets an in-flight call after a send failure.
func (c *MuxClient) abandon(id uint64) {
	c.mu.Lock()
	delete(c.pending, id)
	c.mu.Unlock()
}

// deadlineNanos validates a deadline and converts it to envelope form. It
// returns an error when the deadline has already passed — the request must
// not be sent at all.
func deadlineNanos(deadline time.Time) (int64, error) {
	if deadline.IsZero() {
		return 0, nil
	}
	if !time.Now().Before(deadline) {
		return 0, fmt.Errorf("%w: before send", ErrDeadlineExceeded)
	}
	return deadline.UnixNano(), nil
}

// wait blocks for the next event of an in-flight call, bounded by deadline
// (zero = wait forever). A timeout abandons the call — a late reply is
// dropped by the read loop — and returns ErrDeadlineExceeded.
func (c *MuxClient) wait(id uint64, call *muxCall, timeout <-chan time.Time) (muxEvent, error) {
	select {
	case ev, ok := <-call.events:
		if !ok {
			return muxEvent{}, fmt.Errorf("%w: %v", ErrMuxClosed, c.Err())
		}
		return ev, nil
	case <-timeout:
		c.abandon(id)
		return muxEvent{}, fmt.Errorf("%w: no reply for request %d", ErrDeadlineExceeded, id)
	}
}

// deadlineTimer returns a channel firing at deadline (nil = never) and its
// stop function.
func deadlineTimer(deadline time.Time) (<-chan time.Time, func()) {
	if deadline.IsZero() {
		return nil, func() {}
	}
	tm := time.NewTimer(time.Until(deadline))
	return tm.C, func() { tm.Stop() }
}

// Do sends one unary request and waits for its reply. A FrameErr answer is
// returned as *RemoteError; a transport failure as ErrMuxClosed.
func (c *MuxClient) Do(msg any) (any, error) { return c.DoDeadline(msg, time.Time{}) }

// DoDeadline is Do with an absolute deadline (zero = none): the deadline
// rides in the request envelope so the serving side drops the work if it
// expires before evaluation, and the wait for the reply is bounded by the
// same clock — ErrDeadlineExceeded either way.
func (c *MuxClient) DoDeadline(msg any, deadline time.Time) (any, error) {
	dl, err := deadlineNanos(deadline)
	if err != nil {
		return nil, err
	}
	id, call, err := c.register()
	if err != nil {
		return nil, err
	}
	if err := c.send(id, msg, dl); err != nil {
		c.abandon(id)
		return nil, err
	}
	timeout, stop := deadlineTimer(deadline)
	defer stop()
	ev, err := c.wait(id, call, timeout)
	if err != nil {
		return nil, err
	}
	switch ev.frameType {
	case FrameMsg:
		return ev.msg, nil
	case FrameErr:
		if er, isErr := ev.msg.(ErrorReply); isErr {
			return nil, &RemoteError{Msg: er.Message}
		}
		return nil, &RemoteError{Msg: fmt.Sprintf("malformed error reply %T", ev.msg)}
	default:
		return nil, fmt.Errorf("protocol: unexpected %d frame answering unary request", ev.frameType)
	}
}

// Ping probes the peer over the identity stream: a FramePing is answered
// inline by the serving side — before admission control, so a saturated but
// alive peer still pongs — with its current Hello, which also refreshes
// Peer(). The deadline bounds the whole probe (zero = wait forever, which is
// almost never what a health checker wants).
func (c *MuxClient) Ping(deadline time.Time) (Hello, error) {
	if _, err := deadlineNanos(deadline); err != nil {
		return Hello{}, err
	}
	id, call, err := c.register()
	if err != nil {
		return Hello{}, err
	}
	c.sendMu.Lock()
	if !deadline.IsZero() {
		_ = c.raw.SetWriteDeadline(deadline)
	}
	err = WriteFrame(c.raw, Frame{Type: FramePing, ID: id})
	if !deadline.IsZero() {
		_ = c.raw.SetWriteDeadline(time.Time{})
	}
	c.sendMu.Unlock()
	if err != nil {
		c.abandon(id)
		c.fail(fmt.Errorf("%w: %v", ErrMuxClosed, err))
		return Hello{}, fmt.Errorf("%w: %v", ErrMuxClosed, err)
	}
	timeout, stop := deadlineTimer(deadline)
	defer stop()
	ev, err := c.wait(id, call, timeout)
	if err != nil {
		return Hello{}, err
	}
	if ev.frameType != FramePong {
		return Hello{}, fmt.Errorf("protocol: unexpected %d frame answering ping", ev.frameType)
	}
	h, ok := ev.msg.(Hello)
	if !ok {
		return Hello{}, fmt.Errorf("protocol: malformed pong payload %T", ev.msg)
	}
	return h, nil
}

// DoBatch sends a batch query and reassembles its streamed reply: one
// BatchItem per query in any completion order, closed by a stream end. A
// server answering with a buffered BatchReply (one FrameMsg) is accepted
// too. Per-query failures land in the returned BatchReply.Errors; the error
// return is reserved for whole-batch and transport failures.
func (c *MuxClient) DoBatch(b BatchQuery) (BatchReply, error) {
	return c.DoBatchDeadline(b, time.Time{})
}

// DoBatchDeadline is DoBatch with an absolute deadline (zero = none)
// stamped into the request envelope and bounding the streamed reply drain.
func (c *MuxClient) DoBatchDeadline(b BatchQuery, deadline time.Time) (BatchReply, error) {
	dl, err := deadlineNanos(deadline)
	if err != nil {
		return BatchReply{}, err
	}
	id, call, err := c.register()
	if err != nil {
		return BatchReply{}, err
	}
	if err := c.send(id, b, dl); err != nil {
		c.abandon(id)
		return BatchReply{}, err
	}
	timeout, stop := deadlineTimer(deadline)
	defer stop()
	reply := BatchReply{
		BatchID: b.BatchID,
		Replies: make([]ServerReply, len(b.Queries)),
		Errors:  make([]string, len(b.Queries)),
	}
	for {
		ev, werr := c.wait(id, call, timeout)
		if werr != nil {
			return BatchReply{}, werr
		}
		switch ev.frameType {
		case FrameStreamItem:
			item, ok := ev.msg.(BatchItem)
			if !ok {
				return BatchReply{}, fmt.Errorf("protocol: unexpected stream item %T", ev.msg)
			}
			if item.Index < 0 || item.Index >= len(b.Queries) {
				return BatchReply{}, fmt.Errorf("protocol: stream item index %d outside batch of %d", item.Index, len(b.Queries))
			}
			reply.Replies[item.Index] = item.Reply
			reply.Errors[item.Index] = item.Error
		case FrameStreamEnd:
			return reply, nil
		case FrameMsg:
			// Buffered whole-batch answer from a non-streaming server.
			if br, ok := ev.msg.(BatchReply); ok {
				return br, nil
			}
			return BatchReply{}, fmt.Errorf("protocol: unexpected batch reply %T", ev.msg)
		case FrameErr:
			if er, ok := ev.msg.(ErrorReply); ok {
				return BatchReply{}, &RemoteError{Msg: er.Message}
			}
			return BatchReply{}, &RemoteError{Msg: fmt.Sprintf("malformed error reply %T", ev.msg)}
		default:
			// Connection-level frames never reach a registered call; anything
			// else here is a peer protocol bug, not something to spin on.
			return BatchReply{}, fmt.Errorf("protocol: unexpected %d frame in batch reply stream", ev.frameType)
		}
	}
}

// ReqInfo carries per-request serving context to a MuxHandler.
type ReqInfo struct {
	// Shed is true when the connection is above its ShedAt watermark: the
	// handler should degrade the answer (distance-only evaluation) rather
	// than refuse it.
	Shed bool
	// Deadline is the request's absolute deadline (zero = none). The serve
	// loop already drops work whose deadline passed before evaluation began;
	// handlers may use the remaining budget to bound their own work.
	Deadline time.Time
}

// MuxHandler answers unary messages arriving on a multiplexed connection.
type MuxHandler interface {
	HandleMux(msg any, info ReqInfo) (any, error)
}

// MuxHandlerFunc adapts a function to MuxHandler.
type MuxHandlerFunc func(msg any, info ReqInfo) (any, error)

// HandleMux implements MuxHandler.
func (f MuxHandlerFunc) HandleMux(msg any, info ReqInfo) (any, error) { return f(msg, info) }

// MuxBatchStreamer is an optional MuxHandler extension for serving sides
// that stream batch replies: emit is called once per query as it completes
// (safe to call concurrently), and the transport closes the stream when
// HandleMuxBatch returns. Returning an error fails the whole batch with one
// FrameErr instead.
type MuxBatchStreamer interface {
	HandleMuxBatch(b BatchQuery, info ReqInfo, emit func(BatchItem)) error
}

// MuxServerConfig parameterises the serving side of the multiplexed
// transport.
type MuxServerConfig struct {
	// Hello produces the welcome sent to each connecting peer; re-evaluated
	// per connection so it carries the current generation. Nil sends a zero
	// Hello.
	Hello func() Hello
	// MaxInFlight caps concurrently executing requests per connection;
	// further frames stay unread (transport backpressure). <= 0 means
	// DefaultMaxInFlight.
	MaxInFlight int
	// ShedAt is the admission-control watermark: when, counting itself, at
	// least ShedAt requests are in flight on the connection, the request is
	// marked for degradation (shed=true — servers answer distance-only from
	// the many-to-many engine instead of queueing full path unpacking).
	// 0 disables shedding; 1 sheds everything.
	ShedAt int
}

// DefaultMaxInFlight is the per-connection admission window used when
// MuxServerConfig.MaxInFlight is unset.
const DefaultMaxInFlight = 64

// muxServerConn is the serving side of one multiplexed connection.
type muxServerConn struct {
	raw    net.Conn
	sendMu sync.Mutex
	enc    *envelopeCodec
}

// reply writes one frame, serialising with all other writers on the
// connection.
func (sc *muxServerConn) reply(f FrameType, id uint64, msg any) error {
	sc.sendMu.Lock()
	defer sc.sendMu.Unlock()
	var payload []byte
	if msg != nil {
		var err error
		payload, err = sc.enc.encode(msg, 0)
		if err != nil {
			return err
		}
	}
	return WriteFrame(sc.raw, Frame{Type: f, ID: id, Payload: payload})
}

// replyRaw writes one frame with a pre-encoded payload (a self-contained gob,
// like the handshake frames), bypassing the per-connection envelope stream.
func (sc *muxServerConn) replyRaw(f FrameType, id uint64, payload []byte) error {
	sc.sendMu.Lock()
	defer sc.sendMu.Unlock()
	return WriteFrame(sc.raw, Frame{Type: f, ID: id, Payload: payload})
}

// ServeMuxConn serves one multiplexed connection: handshake, then one
// goroutine per request under the admission window, until the connection
// fails or closes. Handler errors are reported to the peer as FrameErr and
// do not terminate the connection.
func ServeMuxConn(raw net.Conn, h MuxHandler, cfg MuxServerConfig) error {
	defer raw.Close()
	f, err := ReadFrame(raw)
	if err != nil {
		return fmt.Errorf("%w: reading hello: %v", ErrHandshake, err)
	}
	if f.Type != FrameHello {
		return fmt.Errorf("%w: expected hello frame, got type %d", ErrHandshake, f.Type)
	}
	if _, err := decodeHello(f.Payload); err != nil {
		return fmt.Errorf("%w: decoding hello: %v", ErrHandshake, err)
	}
	var hello Hello
	if cfg.Hello != nil {
		hello = cfg.Hello()
	}
	maxInFlight := cfg.MaxInFlight
	if maxInFlight <= 0 {
		maxInFlight = DefaultMaxInFlight
	}
	if hello.MaxInFlight == 0 {
		hello.MaxInFlight = maxInFlight
	}
	payload, err := encodeHello(hello)
	if err != nil {
		return fmt.Errorf("%w: encoding welcome: %v", ErrHandshake, err)
	}
	if err := WriteFrame(raw, Frame{Type: FrameWelcome, Payload: payload}); err != nil {
		return fmt.Errorf("%w: sending welcome: %v", ErrHandshake, err)
	}

	sc := &muxServerConn{raw: raw, enc: newEnvelopeCodec()}
	dec := newEnvelopeCodec()
	slots := make(chan struct{}, maxInFlight)
	var inFlight atomic.Int64
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		f, err := ReadFrame(raw)
		if err != nil {
			if err == io.EOF {
				return nil
			}
			return err
		}
		if f.Type == FrameGoAway {
			return nil
		}
		if f.Type == FramePing {
			// Answered inline, before the admission slot gate, so a shard
			// saturated with work still heartbeats. The pong carries a fresh
			// Hello — every probe refreshes the peer's view of our identity.
			var hello Hello
			if cfg.Hello != nil {
				hello = cfg.Hello()
			}
			if hello.MaxInFlight == 0 {
				hello.MaxInFlight = maxInFlight
			}
			payload, err := encodeHello(hello)
			if err != nil {
				return fmt.Errorf("protocol: encoding pong: %v", err)
			}
			if err := sc.replyRaw(FramePong, f.ID, payload); err != nil {
				return err
			}
			continue
		}
		if f.Type != FrameMsg {
			return fmt.Errorf("protocol: unexpected %d frame from mux peer", f.Type)
		}
		// Decode in read order — the per-direction gob stream demands it —
		// then hand off to a bounded worker.
		msg, dlNanos, err := dec.decode(f.Payload)
		if err != nil {
			return err
		}
		var deadline time.Time
		if dlNanos != 0 {
			deadline = time.Unix(0, dlNanos)
			if !time.Now().Before(deadline) {
				// Expired before admission: refuse without burning a slot.
				_ = sc.reply(FrameErr, f.ID, ErrorReply{Message: DeadlineExceededMsg})
				continue
			}
		}
		slots <- struct{}{} // blocks at MaxInFlight: transport backpressure
		n := inFlight.Add(1)
		shed := cfg.ShedAt > 0 && n >= int64(cfg.ShedAt)
		wg.Add(1)
		go func(id uint64, msg any, info ReqInfo) {
			defer func() {
				inFlight.Add(-1)
				<-slots
				wg.Done()
			}()
			if !info.Deadline.IsZero() && !time.Now().Before(info.Deadline) {
				// Expired while queued behind the slot gate: drop the work
				// instead of evaluating an answer nobody is waiting for.
				_ = sc.reply(FrameErr, id, ErrorReply{Message: DeadlineExceededMsg})
				return
			}
			if b, ok := msg.(BatchQuery); ok {
				if streamer, ok := h.(MuxBatchStreamer); ok {
					err := streamer.HandleMuxBatch(b, info, func(item BatchItem) {
						_ = sc.reply(FrameStreamItem, id, item)
					})
					if err != nil {
						_ = sc.reply(FrameErr, id, ErrorReply{RefID: b.BatchID, Message: err.Error()})
						return
					}
					_ = sc.reply(FrameStreamEnd, id, nil)
					return
				}
			}
			res, err := h.HandleMux(msg, info)
			if err != nil {
				_ = sc.reply(FrameErr, id, ErrorReply{Message: err.Error()})
				return
			}
			_ = sc.reply(FrameMsg, id, res)
		}(f.ID, msg, ReqInfo{Shed: shed, Deadline: deadline})
	}
}

// ServeMux accepts connections from ln and serves each as a multiplexed
// connection on its own goroutine until the listener closes. It returns the
// accept error that terminated the loop.
func ServeMux(ln net.Listener, h MuxHandler, cfg MuxServerConfig) error {
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		raw, err := ln.Accept()
		if err != nil {
			return err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = ServeMuxConn(raw, h, cfg)
		}()
	}
}
