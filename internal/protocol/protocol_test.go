package protocol

import (
	"bytes"
	"net"
	"reflect"
	"testing"

	"opaque/internal/roadnet"
	"opaque/internal/search"
)

func TestWrapUnwrapRoundTrip(t *testing.T) {
	messages := []any{
		ClientRequest{RequestID: 1, User: "alice", Source: 2, Dest: 3, FS: 4, FT: 5},
		ClientReply{RequestID: 1, Found: true, Path: []roadnet.NodeID{1, 2, 3}, Cost: 7},
		ServerQuery{QueryID: 9, Sources: []roadnet.NodeID{1, 2}, Dests: []roadnet.NodeID{3}},
		ServerReply{QueryID: 9, SettledNodes: 10, Paths: []CandidatePath{{Source: 1, Dest: 3, Found: true, Nodes: []roadnet.NodeID{1, 3}, Cost: 2}}},
		ErrorReply{RefID: 4, Message: "boom"},
	}
	for _, msg := range messages {
		env, err := Wrap(msg)
		if err != nil {
			t.Fatalf("Wrap(%T): %v", msg, err)
		}
		got, err := env.Unwrap()
		if err != nil {
			t.Fatalf("Unwrap(%T): %v", msg, err)
		}
		if !reflect.DeepEqual(got, msg) {
			t.Errorf("round trip of %T: got %+v, want %+v", msg, got, msg)
		}
	}
}

func TestWrapPointerAndUnsupported(t *testing.T) {
	req := &ClientRequest{RequestID: 2}
	env, err := Wrap(req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := env.Unwrap()
	if err != nil {
		t.Fatal(err)
	}
	if got.(ClientRequest).RequestID != 2 {
		t.Error("pointer wrap lost data")
	}
	if _, err := Wrap(42); err == nil {
		t.Error("unsupported type accepted")
	}
	if _, err := (Envelope{Type: TypeClientRequest}).Unwrap(); err == nil {
		t.Error("envelope without payload accepted")
	}
	if _, err := (Envelope{Type: 99}).Unwrap(); err == nil {
		t.Error("unknown envelope type accepted")
	}
}

func TestGobCodecRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	codec := NewGobCodec(&buf, &buf)
	want, err := Wrap(ServerQuery{QueryID: 7, Sources: []roadnet.NodeID{1}, Dests: []roadnet.NodeID{2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if err := codec.Encode(want); err != nil {
		t.Fatal(err)
	}
	var got Envelope
	if err := codec.Decode(&got); err != nil {
		t.Fatal(err)
	}
	gm, err := got.Unwrap()
	if err != nil {
		t.Fatal(err)
	}
	wm, _ := want.Unwrap()
	if !reflect.DeepEqual(gm, wm) {
		t.Errorf("gob round trip: got %+v, want %+v", gm, wm)
	}
}

func TestJSONCodecRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	codec := NewJSONCodec(&buf, &buf)
	want, err := Wrap(ClientReply{RequestID: 3, Found: true, Path: []roadnet.NodeID{5, 6}, Cost: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	if err := codec.Encode(want); err != nil {
		t.Fatal(err)
	}
	var got Envelope
	if err := codec.Decode(&got); err != nil {
		t.Fatal(err)
	}
	gm, err := got.Unwrap()
	if err != nil {
		t.Fatal(err)
	}
	wm, _ := want.Unwrap()
	if !reflect.DeepEqual(gm, wm) {
		t.Errorf("json round trip: got %+v, want %+v", gm, wm)
	}
}

func TestPathConversions(t *testing.T) {
	p := search.Path{Nodes: []roadnet.NodeID{1, 2, 3}, Cost: 9}
	c := CandidateFromPath(1, 3, p)
	if !c.Found || c.Source != 1 || c.Dest != 3 || c.Cost != 9 {
		t.Errorf("CandidateFromPath = %+v", c)
	}
	back := PathFromCandidate(c)
	if !reflect.DeepEqual(back.Nodes, p.Nodes) || back.Cost != p.Cost {
		t.Errorf("PathFromCandidate = %+v", back)
	}
	emptyCand := CandidateFromPath(1, 3, search.Path{})
	if emptyCand.Found {
		t.Error("empty path should convert to Found=false")
	}
	if !PathFromCandidate(emptyCand).Empty() {
		t.Error("not-found candidate should convert to empty path")
	}
}

func TestConnCallOverPipe(t *testing.T) {
	clientRaw, serverRaw := net.Pipe()
	clientConn := NewConn(clientRaw)
	serverConn := NewConn(serverRaw)
	defer clientConn.Close()

	// Echo-style server: answers every ServerQuery with a reply carrying the
	// same query id.
	go func() {
		_ = ServeConn(serverConn, func(msg any) (any, error) {
			q, ok := msg.(ServerQuery)
			if !ok {
				return nil, nil
			}
			return ServerReply{QueryID: q.QueryID, SettledNodes: 42}, nil
		})
	}()

	reply, err := clientConn.Call(ServerQuery{QueryID: 11, Sources: []roadnet.NodeID{1}, Dests: []roadnet.NodeID{2}})
	if err != nil {
		t.Fatal(err)
	}
	sr, ok := reply.(ServerReply)
	if !ok || sr.QueryID != 11 || sr.SettledNodes != 42 {
		t.Errorf("Call reply = %+v", reply)
	}
}

func TestServeConnReportsHandlerErrors(t *testing.T) {
	clientRaw, serverRaw := net.Pipe()
	clientConn := NewConn(clientRaw)
	serverConn := NewConn(serverRaw)
	defer clientConn.Close()

	go func() {
		_ = ServeConn(serverConn, func(msg any) (any, error) {
			return nil, &net.AddrError{Err: "handler exploded", Addr: "x"}
		})
	}()

	reply, err := clientConn.Call(ServerQuery{QueryID: 1, Sources: []roadnet.NodeID{1}, Dests: []roadnet.NodeID{1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := reply.(ErrorReply); !ok {
		t.Errorf("expected ErrorReply, got %T", reply)
	}
}

func TestServeListenerAndDial(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		_ = ServeListener(ln, func(msg any) (any, error) {
			q := msg.(ServerQuery)
			return ServerReply{QueryID: q.QueryID}, nil
		})
	}()
	defer ln.Close()

	conn, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	reply, err := conn.Call(ServerQuery{QueryID: 5, Sources: []roadnet.NodeID{0}, Dests: []roadnet.NodeID{1}})
	if err != nil {
		t.Fatal(err)
	}
	if reply.(ServerReply).QueryID != 5 {
		t.Errorf("reply = %+v", reply)
	}
	if conn.RemoteAddr() == nil {
		t.Error("RemoteAddr is nil")
	}
	// Double close must be safe.
	if err := conn.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

func TestDialFailure(t *testing.T) {
	if _, err := Dial("127.0.0.1:1"); err == nil {
		t.Error("Dial to a closed port succeeded")
	}
}
