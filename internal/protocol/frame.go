package protocol

// This file defines the OPMX1 framed wire format used by the multiplexed
// transport (mux.go): length-prefixed frames carrying a type tag and a
// request ID, so one persistent connection can interleave many in-flight
// requests, stream the per-query items of a batch reply as they complete,
// and carry the generation handshake of the fleet serving tier. The layout
// is documented with a worked hex example in docs/FORMATS.md.
//
// Layout (all integers big-endian):
//
//	offset  size  field
//	0       4     frame length N = 9 + len(payload) (uint32)
//	4       1     frame type (FrameType)
//	5       8     request ID (uint64)
//	13      N-9   payload
//
// The length field counts every byte after itself, so a whole frame occupies
// 4+N bytes. Decoding is defensive: truncated, oversized and garbage frames
// return typed errors (ErrFrameTruncated, ErrFrameTooLarge, ErrFrameHeader,
// ErrFrameType) and never panic or allocate beyond the declared, validated
// payload bound — the contract FuzzDecodeFrame pins.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// FrameType tags one frame on the multiplexed wire.
type FrameType uint8

// Frame types.
const (
	// FrameHello opens a connection: the dialling side announces itself
	// (payload: gob Hello).
	FrameHello FrameType = iota + 1
	// FrameWelcome answers a FrameHello: the accepting side's Hello, carrying
	// its data generation and content checksum for the fleet handshake.
	FrameWelcome
	// FrameMsg carries one protocol Envelope; requests and unary replies are
	// correlated by the request ID.
	FrameMsg
	// FrameStreamItem carries one item of a streaming reply (a BatchItem
	// envelope): batch replies stream per-query results as they complete
	// instead of buffering the whole batch.
	FrameStreamItem
	// FrameStreamEnd closes a streaming reply; its payload is empty.
	FrameStreamEnd
	// FrameErr reports a failure answering the request ID (payload: an
	// ErrorReply envelope). The connection stays usable.
	FrameErr
	// FrameGoAway tells the peer the sender is shutting down and will answer
	// no further requests on this connection.
	FrameGoAway
	// FramePing probes the peer's liveness on the identity stream: the serving
	// side answers inline (before admission control, so a saturated shard
	// still heartbeats) with a FramePong. The payload is empty.
	FramePing
	// FramePong answers a FramePing; the payload is the sender's current Hello
	// (a self-contained gob, like the handshake frames), so every heartbeat
	// refreshes the peer's identity — generation, content checksum, partition
	// shape — without a reconnect.
	FramePong

	maxFrameType = FramePong
)

// MaxFramePayload bounds a frame's payload. A declared length beyond it is
// rejected before any allocation, so a hostile or corrupt peer cannot make
// the receiver allocate unbounded memory.
const MaxFramePayload = 8 << 20

// frameIDLen + the type byte precede the payload inside the length-counted
// region; frameHeaderLen is the fixed on-wire prefix of every frame.
const (
	frameOverhead  = 9  // type byte + request ID, counted by the length field
	frameHeaderLen = 13 // length field + type byte + request ID
)

// Typed frame decoding errors.
var (
	// ErrFrameTruncated reports input that ends before the declared frame
	// does (including inputs shorter than a frame header).
	ErrFrameTruncated = errors.New("protocol: truncated frame")
	// ErrFrameTooLarge reports a declared payload beyond MaxFramePayload.
	ErrFrameTooLarge = errors.New("protocol: frame exceeds max payload")
	// ErrFrameHeader reports a length field too small to cover the type byte
	// and request ID — garbage that cannot be a frame at all.
	ErrFrameHeader = errors.New("protocol: malformed frame header")
	// ErrFrameType reports an unknown frame type byte.
	ErrFrameType = errors.New("protocol: unknown frame type")
)

// Frame is one decoded frame.
type Frame struct {
	Type    FrameType
	ID      uint64
	Payload []byte
}

// AppendFrame appends f's wire encoding to dst and returns the extended
// slice. It refuses oversized payloads.
//
//opaque:noalloc
func AppendFrame(dst []byte, f Frame) ([]byte, error) {
	if len(f.Payload) > MaxFramePayload {
		//opaque:allow(noalloc) refusal path: the frame is never sent, steady state never gets here
		return dst, fmt.Errorf("%w: payload %d > %d", ErrFrameTooLarge, len(f.Payload), MaxFramePayload)
	}
	var hdr [frameHeaderLen]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(frameOverhead+len(f.Payload)))
	hdr[4] = byte(f.Type)
	binary.BigEndian.PutUint64(hdr[5:13], f.ID)
	dst = append(dst, hdr[:]...) //opaque:allow(noalloc) appends into the caller's reused write buffer; no growth once warm
	//opaque:allow(noalloc) same reused buffer as the header append above
	return append(dst, f.Payload...), nil
}

// DecodeFrame decodes one frame from the front of b, returning the frame and
// the number of bytes it occupied. The returned payload aliases b. Truncated,
// oversized and malformed inputs return typed errors; no input panics, and no
// call allocates beyond b itself.
//
//opaque:noalloc
func DecodeFrame(b []byte) (Frame, int, error) {
	if len(b) < frameHeaderLen {
		//opaque:allow(noalloc) rejection path for garbage input; a well-formed stream never takes it
		return Frame{}, 0, fmt.Errorf("%w: %d bytes, need at least %d", ErrFrameTruncated, len(b), frameHeaderLen)
	}
	n := binary.BigEndian.Uint32(b[0:4])
	if n < frameOverhead {
		//opaque:allow(noalloc) rejection path for garbage input; a well-formed stream never takes it
		return Frame{}, 0, fmt.Errorf("%w: declared length %d < %d", ErrFrameHeader, n, frameOverhead)
	}
	if n-frameOverhead > MaxFramePayload {
		//opaque:allow(noalloc) rejection path for garbage input; a well-formed stream never takes it
		return Frame{}, 0, fmt.Errorf("%w: declared payload %d > %d", ErrFrameTooLarge, n-frameOverhead, MaxFramePayload)
	}
	total := 4 + int(n)
	if len(b) < total {
		//opaque:allow(noalloc) rejection path for garbage input; a well-formed stream never takes it
		return Frame{}, 0, fmt.Errorf("%w: have %d bytes of a %d-byte frame", ErrFrameTruncated, len(b), total)
	}
	ft := FrameType(b[4])
	if ft == 0 || ft > maxFrameType {
		//opaque:allow(noalloc) rejection path for garbage input; a well-formed stream never takes it
		return Frame{}, 0, fmt.Errorf("%w: %d", ErrFrameType, b[4])
	}
	return Frame{
		Type:    ft,
		ID:      binary.BigEndian.Uint64(b[5:13]),
		Payload: b[frameHeaderLen:total],
	}, total, nil
}

// WriteFrame writes f to w as one frame.
func WriteFrame(w io.Writer, f Frame) error {
	buf, err := AppendFrame(make([]byte, 0, frameHeaderLen+len(f.Payload)), f)
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// ReadFrame reads one frame from r. The declared length is validated before
// the payload is allocated, so a corrupt length prefix cannot trigger an
// oversized allocation. io.EOF is returned unwrapped when the stream ends
// cleanly between frames; a stream ending mid-frame returns
// ErrFrameTruncated.
func ReadFrame(r io.Reader) (Frame, error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[0:4]); err != nil {
		if err == io.EOF {
			return Frame{}, io.EOF
		}
		return Frame{}, fmt.Errorf("%w: reading length: %v", ErrFrameTruncated, err)
	}
	n := binary.BigEndian.Uint32(hdr[0:4])
	if n < frameOverhead {
		return Frame{}, fmt.Errorf("%w: declared length %d < %d", ErrFrameHeader, n, frameOverhead)
	}
	if n-frameOverhead > MaxFramePayload {
		return Frame{}, fmt.Errorf("%w: declared payload %d > %d", ErrFrameTooLarge, n-frameOverhead, MaxFramePayload)
	}
	if _, err := io.ReadFull(r, hdr[4:frameHeaderLen]); err != nil {
		return Frame{}, fmt.Errorf("%w: reading header: %v", ErrFrameTruncated, err)
	}
	ft := FrameType(hdr[4])
	if ft == 0 || ft > maxFrameType {
		return Frame{}, fmt.Errorf("%w: %d", ErrFrameType, hdr[4])
	}
	payload := make([]byte, n-frameOverhead)
	if _, err := io.ReadFull(r, payload); err != nil {
		return Frame{}, fmt.Errorf("%w: reading payload: %v", ErrFrameTruncated, err)
	}
	return Frame{Type: ft, ID: binary.BigEndian.Uint64(hdr[5:13]), Payload: payload}, nil
}
