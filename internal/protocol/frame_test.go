package protocol

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	cases := []Frame{
		{Type: FrameHello, ID: 0, Payload: nil},
		{Type: FrameMsg, ID: 1, Payload: []byte("hello")},
		{Type: FrameStreamItem, ID: 1<<64 - 1, Payload: bytes.Repeat([]byte{0xAB}, 4096)},
		{Type: FrameStreamEnd, ID: 7, Payload: nil},
		{Type: FrameGoAway, ID: 0, Payload: []byte{0}},
	}
	for _, want := range cases {
		buf, err := AppendFrame(nil, want)
		if err != nil {
			t.Fatalf("AppendFrame(%v): %v", want.Type, err)
		}
		got, n, err := DecodeFrame(buf)
		if err != nil {
			t.Fatalf("DecodeFrame(%v): %v", want.Type, err)
		}
		if n != len(buf) {
			t.Errorf("DecodeFrame consumed %d of %d bytes", n, len(buf))
		}
		if got.Type != want.Type || got.ID != want.ID || !bytes.Equal(got.Payload, want.Payload) {
			t.Errorf("round trip: got %+v, want %+v", got, want)
		}

		// The stream codec agrees with the in-memory codec.
		var w bytes.Buffer
		if err := WriteFrame(&w, want); err != nil {
			t.Fatalf("WriteFrame: %v", err)
		}
		if !bytes.Equal(w.Bytes(), buf) {
			t.Errorf("WriteFrame and AppendFrame disagree for %v", want.Type)
		}
		rf, err := ReadFrame(&w)
		if err != nil {
			t.Fatalf("ReadFrame: %v", err)
		}
		if rf.Type != want.Type || rf.ID != want.ID || !bytes.Equal(rf.Payload, want.Payload) {
			t.Errorf("ReadFrame: got %+v, want %+v", rf, want)
		}
	}
}

func TestFrameDecodeConsecutive(t *testing.T) {
	var buf []byte
	var err error
	frames := []Frame{
		{Type: FrameMsg, ID: 1, Payload: []byte("one")},
		{Type: FrameStreamItem, ID: 2, Payload: []byte("two")},
		{Type: FrameStreamEnd, ID: 2},
	}
	for _, f := range frames {
		if buf, err = AppendFrame(buf, f); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range frames {
		got, n, err := DecodeFrame(buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Type != want.Type || got.ID != want.ID || !bytes.Equal(got.Payload, want.Payload) {
			t.Errorf("frame %d: got %+v, want %+v", i, got, want)
		}
		buf = buf[n:]
	}
	if len(buf) != 0 {
		t.Errorf("%d trailing bytes after decoding every frame", len(buf))
	}
}

func TestFrameDecodeErrors(t *testing.T) {
	valid, err := AppendFrame(nil, Frame{Type: FrameMsg, ID: 9, Payload: []byte("payload")})
	if err != nil {
		t.Fatal(err)
	}

	oversized := make([]byte, 13)
	binary.BigEndian.PutUint32(oversized, uint32(9+MaxFramePayload+1))
	oversized[4] = byte(FrameMsg)

	badLength := make([]byte, 13)
	binary.BigEndian.PutUint32(badLength, 3) // < frameOverhead: cannot be a frame

	badType := append([]byte(nil), valid...)
	badType[4] = 0xEE
	zeroType := append([]byte(nil), valid...)
	zeroType[4] = 0

	cases := []struct {
		name string
		in   []byte
		want error
	}{
		{"empty", nil, ErrFrameTruncated},
		{"short header", valid[:7], ErrFrameTruncated},
		{"truncated payload", valid[:len(valid)-3], ErrFrameTruncated},
		{"oversized declared payload", oversized, ErrFrameTooLarge},
		{"length below overhead", badLength, ErrFrameHeader},
		{"unknown type", badType, ErrFrameType},
		{"zero type", zeroType, ErrFrameType},
	}
	for _, tc := range cases {
		if _, _, err := DecodeFrame(tc.in); !errors.Is(err, tc.want) {
			t.Errorf("DecodeFrame(%s): err = %v, want %v", tc.name, err, tc.want)
		}
		if tc.in == nil {
			continue
		}
		if _, err := ReadFrame(bytes.NewReader(tc.in)); err == nil {
			t.Errorf("ReadFrame(%s): no error", tc.name)
		}
	}

	// A stream that ends cleanly between frames reports bare io.EOF, which the
	// read loop uses to distinguish shutdown from corruption.
	if _, err := ReadFrame(bytes.NewReader(nil)); err != io.EOF {
		t.Errorf("ReadFrame(empty stream): err = %v, want io.EOF", err)
	}

	// AppendFrame refuses oversized payloads symmetrically.
	if _, err := AppendFrame(nil, Frame{Type: FrameMsg, Payload: make([]byte, MaxFramePayload+1)}); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("AppendFrame(oversized): err = %v, want ErrFrameTooLarge", err)
	}
}

// FuzzDecodeFrame pins the defensive-decoding contract: arbitrary input never
// panics, never allocates beyond the validated payload bound, returns only
// typed errors, and every successful decode re-encodes to the bytes it
// consumed.
func FuzzDecodeFrame(f *testing.F) {
	seed, _ := AppendFrame(nil, Frame{Type: FrameMsg, ID: 42, Payload: []byte("seed payload")})
	f.Add(seed)
	hello, _ := AppendFrame(nil, Frame{Type: FrameHello, ID: 0, Payload: nil})
	f.Add(hello)
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Add(seed[:5])

	f.Fuzz(func(t *testing.T, b []byte) {
		fr, n, err := DecodeFrame(b)
		if err != nil {
			if !errors.Is(err, ErrFrameTruncated) && !errors.Is(err, ErrFrameTooLarge) &&
				!errors.Is(err, ErrFrameHeader) && !errors.Is(err, ErrFrameType) {
				t.Fatalf("untyped error: %v", err)
			}
			return
		}
		if n < frameHeaderLen || n > len(b) {
			t.Fatalf("consumed %d bytes of %d", n, len(b))
		}
		if len(fr.Payload) > MaxFramePayload {
			t.Fatalf("payload %d beyond MaxFramePayload", len(fr.Payload))
		}
		re, err := AppendFrame(nil, fr)
		if err != nil {
			t.Fatalf("re-encoding a decoded frame: %v", err)
		}
		if !bytes.Equal(re, b[:n]) {
			t.Fatalf("re-encode mismatch:\n got %x\nwant %x", re, b[:n])
		}

		// The stream decoder agrees with the in-memory decoder on valid input.
		sf, err := ReadFrame(bytes.NewReader(b))
		if err != nil {
			t.Fatalf("ReadFrame rejects what DecodeFrame accepted: %v", err)
		}
		if sf.Type != fr.Type || sf.ID != fr.ID || !bytes.Equal(sf.Payload, fr.Payload) {
			t.Fatalf("ReadFrame disagrees with DecodeFrame: %+v vs %+v", sf, fr)
		}
	})
}
